package approxsel

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/declarative"
	"repro/internal/native"
)

// Realization names one way of executing the predicates: the fast in-memory
// algorithms of package native, or the paper's declarative realization —
// plain SQL plus UDFs over the bundled engine.
type Realization string

const (
	// Native is the in-memory realization (the default of New).
	Native Realization = "native"
	// Declarative is the paper's realization: Appendix A/B SQL statements
	// executed by the bundled sqldb engine.
	Declarative Realization = "declarative"
)

// BuilderFunc constructs a predicate over a base relation. Registering one
// under a name makes that name constructible through New — the paper's
// extensibility story: new similarity predicates plug into the framework
// and are benchmarked through the same interface as the built-in thirteen.
type BuilderFunc = core.BuilderFunc

// CorpusBuilderFunc constructs a predicate attached to a shared Corpus —
// the corpus-aware counterpart of BuilderFunc. Native built-ins resolve to
// CorpusBuilderFuncs; legacy BuilderFuncs (the declarative realization and
// Register-ed predicates) are adapted automatically when attached to a
// corpus, so every registered predicate works with both construction paths.
type CorpusBuilderFunc = core.CorpusBuilderFunc

// predicateRegistry resolves (realization, name) to a builder. Built-in
// predicates live in per-realization tables; Register-ed predicates are
// realization-agnostic — how a custom predicate computes (in memory, over
// the SQL engine, over an external service) is its own business.
type predicateRegistry struct {
	mu       sync.RWMutex
	builtins map[Realization]map[string]BuilderFunc
	// corpus holds the corpus-aware builders of realizations that support
	// attaching directly to shared corpus state (the native realization).
	corpus map[Realization]map[string]CorpusBuilderFunc
	custom map[string]BuilderFunc
	order  []string // custom names in registration order
}

var registry = &predicateRegistry{
	builtins: map[Realization]map[string]BuilderFunc{
		Native:      native.Builders(),
		Declarative: declarative.Builders(),
	},
	corpus: map[Realization]map[string]CorpusBuilderFunc{
		Native: native.CorpusBuilders(),
	},
	custom: make(map[string]BuilderFunc),
}

// Register makes a custom predicate constructible through New under the
// given name, for every realization. It errors on an empty name, a nil
// builder, or a name already taken by a built-in or a prior registration.
func Register(name string, builder BuilderFunc) error {
	if name == "" {
		return fmt.Errorf("approxsel: Register with empty predicate name")
	}
	if builder == nil {
		return fmt.Errorf("approxsel: Register(%q) with nil builder", name)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for r, table := range registry.builtins {
		if _, ok := table[name]; ok {
			return fmt.Errorf("approxsel: predicate %q is already built in (%s realization)", name, r)
		}
	}
	if _, ok := registry.custom[name]; ok {
		return fmt.Errorf("approxsel: predicate %q already registered", name)
	}
	registry.custom[name] = builder
	registry.order = append(registry.order, name)
	return nil
}

// MustRegister is Register, panicking on error — for use from package init
// functions, the usual place to register predicates.
func MustRegister(name string, builder BuilderFunc) {
	if err := Register(name, builder); err != nil {
		panic(err)
	}
}

// Unregister removes a previously Register-ed predicate so its name can be
// rebound — the hot-swap path for applications that reload predicate
// definitions (and the cleanup path for tests). Built-in predicates cannot
// be unregistered, and unregistering an unknown name is an error.
// Predicates already constructed under the old registration keep working;
// only future New/Predicate calls see the change.
func Unregister(name string) error {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for r, table := range registry.builtins {
		if _, ok := table[name]; ok {
			return fmt.Errorf("approxsel: predicate %q is built in (%s realization) and cannot be unregistered", name, r)
		}
	}
	if _, ok := registry.custom[name]; !ok {
		return fmt.Errorf("approxsel: predicate %q is not registered", name)
	}
	delete(registry.custom, name)
	for i, n := range registry.order {
		if n == name {
			registry.order = append(registry.order[:i:i], registry.order[i+1:]...)
			break
		}
	}
	return nil
}

// Realizations enumerates the registered realizations in lexical order.
func Realizations() []Realization {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Realization, 0, len(registry.builtins))
	for r := range registry.builtins {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PredicateNames enumerates every name New can resolve: the thirteen
// benchmark predicates in the order the paper presents them, followed by
// Register-ed predicates in registration order.
func PredicateNames() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, 0, len(core.PredicateNames)+len(registry.order))
	out = append(out, core.PredicateNames...)
	out = append(out, registry.order...)
	return out
}

// namesLocked returns every predicate name resolvable under the
// realization, sorted — the hint appended to unknown-name errors. Callers
// hold the registry lock.
func (pr *predicateRegistry) namesLocked(r Realization) []string {
	table := pr.builtins[r]
	out := make([]string, 0, len(table)+len(pr.custom))
	for n := range table {
		out = append(out, n)
	}
	for n := range pr.custom {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// unknownPredicate builds the unknown-name error, listing what is actually
// registerable so the caller does not have to guess. Callers hold the
// registry lock.
func unknownPredicate(r Realization, name string) error {
	return fmt.Errorf("approxsel: unknown predicate %q (realization %s); registered predicates: %s",
		name, r, strings.Join(registry.namesLocked(r), ", "))
}

// lookupBuilder resolves a predicate name under a realization.
func lookupBuilder(r Realization, name string) (BuilderFunc, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	table, ok := registry.builtins[r]
	if !ok {
		return nil, fmt.Errorf("approxsel: unknown realization %q", r)
	}
	if b, ok := table[name]; ok {
		return b, nil
	}
	if b, ok := registry.custom[name]; ok {
		return b, nil
	}
	return nil, unknownPredicate(r, name)
}

// lookupAttach resolves a predicate name under a realization for corpus
// attachment. It prefers the corpus-aware builder (native built-ins, which
// share the corpus's precomputed tables); realizations and custom
// predicates without one fall back to their legacy BuilderFunc, which the
// corpus view adapts by rebuilding from the corpus's records on epoch
// change.
func lookupAttach(r Realization, name string) (CorpusBuilderFunc, BuilderFunc, error) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	table, ok := registry.builtins[r]
	if !ok {
		return nil, nil, fmt.Errorf("approxsel: unknown realization %q", r)
	}
	if cb, ok := registry.corpus[r][name]; ok {
		return cb, nil, nil
	}
	if b, ok := table[name]; ok {
		return nil, b, nil
	}
	if b, ok := registry.custom[name]; ok {
		return nil, b, nil
	}
	return nil, nil, unknownPredicate(r, name)
}
