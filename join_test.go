package approxsel

import "testing"

func TestApproximateJoin(t *testing.T) {
	base := []Record{
		{TID: 1, Text: "Morgan Stanley Group Inc."},
		{TID: 2, Text: "Beijing Hotel"},
		{TID: 3, Text: "Pacific Mills Incorporated"},
	}
	probe := []Record{
		{TID: 100, Text: "Morgan Stanley Group Inc"},
		{TID: 200, Text: "Hotel Beijing"},
		{TID: 300, Text: "zzzz qqqq"},
	}
	p, err := New("Jaccard", base, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ApproximateJoin(p, probe, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int]bool{}
	for _, pr := range pairs {
		got[[2]int{pr.ProbeTID, pr.BaseTID}] = true
		if pr.Score < 0.5 {
			t.Fatalf("threshold violated: %+v", pr)
		}
	}
	if !got[[2]int{100, 1}] {
		t.Error("join missed (100, 1)")
	}
	if !got[[2]int{200, 2}] {
		t.Error("join missed the token-swapped (200, 2)")
	}
	for pair := range got {
		if pair[0] == 300 {
			t.Errorf("garbage probe matched: %v", pair)
		}
	}
}

func TestSelfJoinDedup(t *testing.T) {
	records := []Record{
		{TID: 1, Text: "Morgan Stanley Group Inc."},
		{TID: 2, Text: "Morgan Stanley Group Inc"},
		{TID: 3, Text: "Beijing Hotel"},
		{TID: 4, Text: "Beijing Hotel"},
		{TID: 5, Text: "Quantum Widgets Ltd."},
	}
	p, err := New("Jaccard", records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := SelfJoin(p, records, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int]bool{}
	for _, pr := range pairs {
		if pr.ProbeTID >= pr.BaseTID {
			t.Fatalf("pair not ordered: %+v", pr)
		}
		key := [2]int{pr.ProbeTID, pr.BaseTID}
		if got[key] {
			t.Fatalf("duplicate pair: %+v", pr)
		}
		got[key] = true
	}
	if !got[[2]int{1, 2}] || !got[[2]int{3, 4}] {
		t.Fatalf("self-join missed duplicate pairs: %v", got)
	}
	for pair := range got {
		if pair[0] == 5 || pair[1] == 5 {
			t.Errorf("unique record matched: %v", pair)
		}
	}
}
