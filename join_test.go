package approxsel

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestApproximateJoin(t *testing.T) {
	base := []Record{
		{TID: 1, Text: "Morgan Stanley Group Inc."},
		{TID: 2, Text: "Beijing Hotel"},
		{TID: 3, Text: "Pacific Mills Incorporated"},
	}
	probe := []Record{
		{TID: 100, Text: "Morgan Stanley Group Inc"},
		{TID: 200, Text: "Hotel Beijing"},
		{TID: 300, Text: "zzzz qqqq"},
	}
	p, err := New("Jaccard", base, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ApproximateJoin(p, probe, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int]bool{}
	for _, pr := range pairs {
		got[[2]int{pr.ProbeTID, pr.BaseTID}] = true
		if pr.Score < 0.5 {
			t.Fatalf("threshold violated: %+v", pr)
		}
	}
	if !got[[2]int{100, 1}] {
		t.Error("join missed (100, 1)")
	}
	if !got[[2]int{200, 2}] {
		t.Error("join missed the token-swapped (200, 2)")
	}
	for pair := range got {
		if pair[0] == 300 {
			t.Errorf("garbage probe matched: %v", pair)
		}
	}
}

func TestSelfJoinDedup(t *testing.T) {
	records := []Record{
		{TID: 1, Text: "Morgan Stanley Group Inc."},
		{TID: 2, Text: "Morgan Stanley Group Inc"},
		{TID: 3, Text: "Beijing Hotel"},
		{TID: 4, Text: "Beijing Hotel"},
		{TID: 5, Text: "Quantum Widgets Ltd."},
	}
	p, err := New("Jaccard", records, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := SelfJoin(p, records, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int]bool{}
	for _, pr := range pairs {
		if pr.ProbeTID >= pr.BaseTID {
			t.Fatalf("pair not ordered: %+v", pr)
		}
		key := [2]int{pr.ProbeTID, pr.BaseTID}
		if got[key] {
			t.Fatalf("duplicate pair: %+v", pr)
		}
		got[key] = true
	}
	if !got[[2]int{1, 2}] || !got[[2]int{3, 4}] {
		t.Fatalf("self-join missed duplicate pairs: %v", got)
	}
	for pair := range got {
		if pair[0] == 5 || pair[1] == 5 {
			t.Errorf("unique record matched: %v", pair)
		}
	}
}

// TestJoinNativeDeclarativeParity checks that the two realizations produce
// the same join results — the batched probe path must not change scores or
// ordering for either.
func TestJoinNativeDeclarativeParity(t *testing.T) {
	records := facadeRecords()[:15]
	probe := []Record{
		{TID: 100, Text: records[2].Text},
		{TID: 200, Text: records[7].Text + " x"},
		{TID: 300, Text: "zzzz qqqq"},
	}
	for _, name := range []string{"Jaccard", "BM25"} {
		nat, err := New(name, records)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := New(name, records, WithRealization(Declarative))
		if err != nil {
			t.Fatal(err)
		}
		theta := 0.3
		natJoin, err := ApproximateJoin(nat, probe, theta)
		if err != nil {
			t.Fatal(err)
		}
		decJoin, err := ApproximateJoin(dec, probe, theta)
		if err != nil {
			t.Fatal(err)
		}
		if !joinPairsEqual(natJoin, decJoin) {
			t.Errorf("%s: ApproximateJoin parity broken:\nnative:      %+v\ndeclarative: %+v",
				name, natJoin, decJoin)
		}
		natSelf, err := SelfJoin(nat, records, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		decSelf, err := SelfJoin(dec, records, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !joinPairsEqual(natSelf, decSelf) {
			t.Errorf("%s: SelfJoin parity broken:\nnative:      %+v\ndeclarative: %+v",
				name, natSelf, decSelf)
		}
	}
}

// joinPairsEqual compares join results as keyed sets — same pairs, same
// scores within tolerance — plus a positional check that the two score
// sequences agree within tolerance, so gross ordering bugs still fail.
// The exact order of pairs whose scores agree only within float tolerance
// is not a cross-realization contract: the realizations accumulate sums
// in different orders (the native hot path merges posting lists in
// descending-impact order), so near-ties may legitimately swap.
func joinPairsEqual(a, b []JoinPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !scoreClose(a[i].Score, b[i].Score) {
			return false
		}
	}
	key := func(p JoinPair) [2]int { return [2]int{p.ProbeTID, p.BaseTID} }
	byKey := func(ps []JoinPair) []JoinPair {
		out := append([]JoinPair(nil), ps...)
		sort.Slice(out, func(i, j int) bool {
			ki, kj := key(out[i]), key(out[j])
			if ki[0] != kj[0] {
				return ki[0] < kj[0]
			}
			return ki[1] < kj[1]
		})
		return out
	}
	as, bs := byKey(a), byKey(b)
	for i := range as {
		if key(as[i]) != key(bs[i]) {
			return false
		}
		if !scoreClose(as[i].Score, bs[i].Score) {
			return false
		}
	}
	return true
}

func scoreClose(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff <= 1e-9 {
		return true
	}
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestJoinCtxMatchesSequentialWorkers checks that worker count does not
// change join results.
func TestJoinCtxMatchesSequentialWorkers(t *testing.T) {
	records := facadeRecords()
	p, err := New("Jaccard", records)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	seq, err := SelfJoinCtx(ctx, p, records, 0.5, Workers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := SelfJoinCtx(ctx, p, records, 0.5, Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("SelfJoinCtx results depend on worker count")
	}
}

// TestJoinCancellation cancels a join mid-probe and checks it returns
// promptly with the context error instead of a partial result.
func TestJoinCancellation(t *testing.T) {
	p := &slowPredicate{started: make(chan struct{})}
	probe := make([]Record, 5000)
	for i := range probe {
		probe[i] = Record{TID: i + 1, Text: "x"}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-p.started
		cancel()
	}()
	start := time.Now()
	_, err := ApproximateJoinCtx(ctx, p, probe, 0.5, Workers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled join must fail with context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("join cancellation not prompt: %v", elapsed)
	}
	if _, err := SelfJoinCtx(ctx, p, probe, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled self-join: %v", err)
	}
}

// TestJoinErrorNamesProbe checks that a failing probe is reported by its
// TID, not a batch index.
func TestJoinErrorNamesProbe(t *testing.T) {
	probe := []Record{{TID: 41, Text: "ok"}, {TID: 77, Text: "boom"}}
	_, err := ApproximateJoinCtx(context.Background(), failingPredicate{}, probe, 0.5, Workers(1))
	if err == nil || !strings.Contains(err.Error(), "probe tid 77") {
		t.Fatalf("join error must name the probe tid, got %v", err)
	}
}
