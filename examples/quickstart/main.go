// Command quickstart shows the smallest useful program: build one predicate
// over a handful of company names and run approximate selections against it,
// both with the in-memory realization and the declarative (SQL) one.
package main

import (
	"fmt"
	"log"

	approxsel "repro"
)

func main() {
	records := []approxsel.Record{
		{TID: 1, Text: "AT&T Incorporated"},
		{TID: 2, Text: "AT&T Inc."},
		{TID: 3, Text: "IBM Incorporated"},
		{TID: 4, Text: "Morgan Stanley Group Inc."},
		{TID: 5, Text: "Stanley Morgan Group Inc."},
		{TID: 6, Text: "Silicon Valley Group, Inc."},
		{TID: 7, Text: "Beijing Hotel"},
		{TID: 8, Text: "Hotel Beijing"},
		{TID: 9, Text: "Beijing Labs"},
	}
	cfg := approxsel.DefaultConfig()

	// The paper's strongest all-round predicate: BM25 over 2-grams.
	bm25, err := approxsel.New("BM25", records, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BM25 ranking for query 'AT&T Inc':")
	matches, err := bm25.Select("AT&T Inc")
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches[:min(4, len(matches))] {
		fmt.Printf("  tid %d  score %7.3f  %s\n", m.TID, m.Score, text(records, m.TID))
	}

	// The same predicate, realized purely in SQL over the bundled engine.
	decl, err := approxsel.NewDeclarative("BM25", records, cfg)
	if err != nil {
		log.Fatal(err)
	}
	top, err := approxsel.TopK(decl, "AT&T Inc", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDeclarative BM25 agrees: top match is tid %d (%s), score %.3f\n",
		top[0].TID, text(records, top[0].TID), top[0].Score)

	// Thresholded selection: the paper's sim(tq, t) >= theta operation.
	jac, err := approxsel.New("Jaccard", records, cfg)
	if err != nil {
		log.Fatal(err)
	}
	close, err := approxsel.SelectThreshold(jac, "Beijing Hotel", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nJaccard >= 0.5 for 'Beijing Hotel':")
	for _, m := range close {
		fmt.Printf("  tid %d  score %5.3f  %s\n", m.TID, m.Score, text(records, m.TID))
	}
}

func text(records []approxsel.Record, tid int) string {
	for _, r := range records {
		if r.TID == tid {
			return r.Text
		}
	}
	return "?"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
