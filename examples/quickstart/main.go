// Command quickstart shows the smallest useful program: build one predicate
// over a handful of company names and run approximate selections against it,
// both with the in-memory realization and the declarative (SQL) one.
package main

import (
	"context"
	"fmt"
	"log"

	approxsel "repro"
)

func main() {
	records := []approxsel.Record{
		{TID: 1, Text: "AT&T Incorporated"},
		{TID: 2, Text: "AT&T Inc."},
		{TID: 3, Text: "IBM Incorporated"},
		{TID: 4, Text: "Morgan Stanley Group Inc."},
		{TID: 5, Text: "Stanley Morgan Group Inc."},
		{TID: 6, Text: "Silicon Valley Group, Inc."},
		{TID: 7, Text: "Beijing Hotel"},
		{TID: 8, Text: "Hotel Beijing"},
		{TID: 9, Text: "Beijing Labs"},
	}
	ctx := context.Background()

	// The paper's strongest all-round predicate: BM25 over 2-grams. With no
	// options New uses the paper's defaults and the in-memory realization.
	bm25, err := approxsel.New("BM25", records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("BM25 top 4 for query 'AT&T Inc':")
	matches, err := approxsel.SelectCtx(ctx, bm25, "AT&T Inc", approxsel.Limit(4))
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  tid %d  score %7.3f  %s\n", m.TID, m.Score, text(records, m.TID))
	}

	// The same predicate, realized purely in SQL over the bundled engine.
	decl, err := approxsel.New("BM25", records,
		approxsel.WithRealization(approxsel.Declarative))
	if err != nil {
		log.Fatal(err)
	}
	top, err := approxsel.TopK(decl, "AT&T Inc", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDeclarative BM25 agrees: top match is tid %d (%s), score %.3f\n",
		top[0].TID, text(records, top[0].TID), top[0].Score)

	// Thresholded selection: the paper's sim(tq, t) >= theta operation,
	// with a functional option tweaking one parameter on top of the
	// defaults.
	jac, err := approxsel.New("Jaccard", records, approxsel.WithQ(2))
	if err != nil {
		log.Fatal(err)
	}
	close, err := approxsel.SelectCtx(ctx, jac, "Beijing Hotel", approxsel.Threshold(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nJaccard >= 0.5 for 'Beijing Hotel':")
	for _, m := range close {
		fmt.Printf("  tid %d  score %5.3f  %s\n", m.TID, m.Score, text(records, m.TID))
	}

	// Batched probing: every record queries the base relation through a
	// worker pool, here keeping each record's best non-trivial match.
	queries := make([]string, len(records))
	for i, r := range records {
		queries[i] = r.Text
	}
	res, err := approxsel.SelectBatch(ctx, bm25, queries,
		approxsel.Workers(4), approxsel.Limit(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBatch probe, best other match per record:")
	for i, ms := range res {
		for _, m := range ms {
			if m.TID == records[i].TID {
				continue
			}
			fmt.Printf("  %-28s -> tid %d (%s)\n", records[i].Text, m.TID, text(records, m.TID))
			break
		}
	}
}

func text(records []approxsel.Record, tid int) string {
	for _, r := range records {
		if r.TID == tid {
			return r.Text
		}
	}
	return "?"
}
