// Command dblpsearch demonstrates approximate selection as flexible search
// over a bibliography: misspelled, reordered queries against a DBLP-like
// title relation, plus the §5.6 IDF-pruning enhancement and its
// accuracy/speed trade-off.
//
// With -serve the same search runs as an HTTP client against an in-process
// approxserved instance instead of the in-memory library: the example boots
// the serving subsystem on a loopback port, POSTs the queries to
// /v1/select, inserts a record over /v1/insert, and shows the epoch-keyed
// cache hitting on a repeated query.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	approxsel "repro"
	"repro/internal/server"
)

func main() {
	size := flag.Int("size", 5000, "number of titles in the relation")
	serve := flag.Bool("serve", false, "run the search through approxserved over HTTP instead of in-process")
	flag.Parse()

	titles := approxsel.DBLPTitles(*size, 7)
	records := make([]approxsel.Record, len(titles))
	for i, title := range titles {
		records[i] = approxsel.Record{TID: i + 1, Text: title}
	}

	if *serve {
		if err := serveDemo(titles, records); err != nil {
			log.Fatal(err)
		}
		return
	}

	bm25, err := approxsel.New("BM25", records)
	if err != nil {
		log.Fatal(err)
	}

	// Misspelled and word-swapped variants of real titles still match.
	base := titles[123]
	queries := []string{
		base,
		misspell(base),
		swapFirstWords(base),
	}
	fmt.Printf("searching %d titles; target: %q\n", len(records), base)
	for _, q := range queries {
		top, err := approxsel.TopK(bm25, q, 1)
		if err != nil {
			log.Fatal(err)
		}
		hit := "MISS"
		if len(top) > 0 && top[0].TID == 124 {
			hit = "hit "
		}
		fmt.Printf("  [%s] query %q\n", hit, q)
	}

	// The §5.6 enhancement: prune low-IDF grams during preprocessing.
	// Pruning shrinks the token table, speeding queries at a small
	// accuracy cost (or even a gain for unweighted predicates).
	fmt.Println("\nIDF pruning trade-off (BM25):")
	fmt.Println("  rate   preprocess    query-avg   top1-hits/20")
	for _, rate := range []float64{0, 0.2, 0.4} {
		start := time.Now()
		p, err := approxsel.New("BM25", records, approxsel.WithPruneRate(rate))
		if err != nil {
			log.Fatal(err)
		}
		prep := time.Since(start)

		hits := 0
		start = time.Now()
		for i := 0; i < 20; i++ {
			q := misspell(titles[i*37])
			top, err := approxsel.TopK(p, q, 1)
			if err != nil {
				log.Fatal(err)
			}
			if len(top) > 0 && top[0].TID == i*37+1 {
				hits++
			}
		}
		avg := time.Since(start) / 20
		fmt.Printf("  %.1f   %10s   %10s   %d\n", rate, prep.Round(time.Millisecond), avg.Round(time.Microsecond), hits)
	}
}

// serveDemo is the HTTP-client example: everything below talks to
// approxserved's JSON API exactly as a remote client would.
func serveDemo(titles []string, records []approxsel.Record) error {
	srv := server.New(server.Config{})
	if err := srv.AddCorpus("dblp", records); err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("approxserved serving %d titles at %s\n", len(records), ts.URL)

	type match struct {
		TID   int     `json:"tid"`
		Score float64 `json:"score"`
	}
	type selectResponse struct {
		Matches   []match `json:"matches"`
		Cached    bool    `json:"cached"`
		ElapsedUS int64   `json:"elapsed_us"`
	}
	search := func(query string) (selectResponse, error) {
		body, err := json.Marshal(map[string]any{
			"corpus": "dblp", "predicate": "BM25", "query": query, "limit": 1,
		})
		if err != nil {
			return selectResponse{}, err
		}
		resp, err := http.Post(ts.URL+"/v1/select", "application/json", bytes.NewReader(body))
		if err != nil {
			return selectResponse{}, err
		}
		defer resp.Body.Close()
		var out selectResponse
		if resp.StatusCode != http.StatusOK {
			return out, fmt.Errorf("select: status %d", resp.StatusCode)
		}
		return out, json.NewDecoder(resp.Body).Decode(&out)
	}

	base := titles[123]
	fmt.Printf("target: %q\n", base)
	for _, q := range []string{base, misspell(base), swapFirstWords(base), misspell(base)} {
		r, err := search(q)
		if err != nil {
			return err
		}
		hit := "MISS"
		if len(r.Matches) > 0 && r.Matches[0].TID == 124 {
			hit = "hit "
		}
		fmt.Printf("  [%s] cached=%-5v %6dµs  query %q\n", hit, r.Cached, r.ElapsedUS, q)
	}

	// Mutations invalidate by epoch advance: the repeated query misses the
	// cache once, then caches again under the new version.
	ins, err := json.Marshal(map[string]any{
		"corpus":  "dblp",
		"records": []map[string]any{{"tid": len(records) + 1, "text": base + " (extended version)"}},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(ts.URL+"/v1/insert", "application/json", bytes.NewReader(ins))
	if err != nil {
		return err
	}
	resp.Body.Close()
	fmt.Println("inserted one record; epoch advanced")
	for i := 0; i < 2; i++ {
		r, err := search(misspell(base))
		if err != nil {
			return err
		}
		fmt.Printf("  re-query: cached=%-5v %6dµs\n", r.Cached, r.ElapsedUS)
	}
	return nil
}

// misspell introduces two character errors.
func misspell(s string) string {
	r := []rune(s)
	if len(r) > 8 {
		r[3], r[4] = r[4], r[3]     // transpose
		r = append(r[:7], r[8:]...) // delete
	}
	return string(r)
}

// swapFirstWords swaps the first two words.
func swapFirstWords(s string) string {
	var a, b string
	n, _ := fmt.Sscanf(s, "%s %s", &a, &b)
	if n < 2 {
		return s
	}
	if cut := len(a) + len(b) + 2; cut < len(s) {
		return b + " " + a + " " + s[cut:]
	}
	return b + " " + a
}
