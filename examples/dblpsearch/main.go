// Command dblpsearch demonstrates approximate selection as flexible search
// over a bibliography: misspelled, reordered queries against a DBLP-like
// title relation, plus the §5.6 IDF-pruning enhancement and its
// accuracy/speed trade-off.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	approxsel "repro"
)

func main() {
	size := flag.Int("size", 5000, "number of titles in the relation")
	flag.Parse()

	titles := approxsel.DBLPTitles(*size, 7)
	records := make([]approxsel.Record, len(titles))
	for i, title := range titles {
		records[i] = approxsel.Record{TID: i + 1, Text: title}
	}

	bm25, err := approxsel.New("BM25", records)
	if err != nil {
		log.Fatal(err)
	}

	// Misspelled and word-swapped variants of real titles still match.
	base := titles[123]
	queries := []string{
		base,
		misspell(base),
		swapFirstWords(base),
	}
	fmt.Printf("searching %d titles; target: %q\n", len(records), base)
	for _, q := range queries {
		top, err := approxsel.TopK(bm25, q, 1)
		if err != nil {
			log.Fatal(err)
		}
		hit := "MISS"
		if len(top) > 0 && top[0].TID == 124 {
			hit = "hit "
		}
		fmt.Printf("  [%s] query %q\n", hit, q)
	}

	// The §5.6 enhancement: prune low-IDF grams during preprocessing.
	// Pruning shrinks the token table, speeding queries at a small
	// accuracy cost (or even a gain for unweighted predicates).
	fmt.Println("\nIDF pruning trade-off (BM25):")
	fmt.Println("  rate   preprocess    query-avg   top1-hits/20")
	for _, rate := range []float64{0, 0.2, 0.4} {
		start := time.Now()
		p, err := approxsel.New("BM25", records, approxsel.WithPruneRate(rate))
		if err != nil {
			log.Fatal(err)
		}
		prep := time.Since(start)

		hits := 0
		start = time.Now()
		for i := 0; i < 20; i++ {
			q := misspell(titles[i*37])
			top, err := approxsel.TopK(p, q, 1)
			if err != nil {
				log.Fatal(err)
			}
			if len(top) > 0 && top[0].TID == i*37+1 {
				hits++
			}
		}
		avg := time.Since(start) / 20
		fmt.Printf("  %.1f   %10s   %10s   %d\n", rate, prep.Round(time.Millisecond), avg.Round(time.Microsecond), hits)
	}
}

// misspell introduces two character errors.
func misspell(s string) string {
	r := []rune(s)
	if len(r) > 8 {
		r[3], r[4] = r[4], r[3]     // transpose
		r = append(r[:7], r[8:]...) // delete
	}
	return string(r)
}

// swapFirstWords swaps the first two words.
func swapFirstWords(s string) string {
	var a, b string
	n, _ := fmt.Sscanf(s, "%s %s", &a, &b)
	if n < 2 {
		return s
	}
	if cut := len(a) + len(b) + 2; cut < len(s) {
		return b + " " + a + " " + s[cut:]
	}
	return b + " " + a
}
