package main

import (
	"math"
	"strings"
	"testing"

	approxsel "repro"
)

// diceRef computes Dice's coefficient over distinct padded q-grams in Go,
// mirroring the SQL tokenization (uppercase, spaces to '$', q-1 '$' pads).
func diceRef(a, b string, q int) float64 {
	grams := func(s string) map[string]bool {
		pad := strings.Repeat("$", q-1)
		s = pad + strings.ToUpper(strings.ReplaceAll(s, " ", "$")) + pad
		set := map[string]bool{}
		for i := 0; i+q <= len(s); i++ {
			set[s[i:i+q]] = true
		}
		return set
	}
	ga, gb := grams(a), grams(b)
	common := 0
	for g := range ga {
		if gb[g] {
			common++
		}
	}
	return 2 * float64(common) / float64(len(ga)+len(gb))
}

// TestDicePredicate checks the SQL realization against the Go reference,
// including q != 2 and queries longer than every base string — the
// tokenization must cover arbitrary query lengths, not just the base
// relation's.
func TestDicePredicate(t *testing.T) {
	if err := approxsel.Register("DiceTest", newDice); err != nil {
		t.Fatal(err)
	}
	records := []approxsel.Record{
		{TID: 1, Text: "Morgan Stanley Group Inc."},
		{TID: 2, Text: "Beijing Hotel"},
		{TID: 3, Text: "Pacific Mills Incorporated"},
	}
	queries := []string{
		"Morgan Stanley",
		"Hotel Beijing",
		// Longer than every base string: its tail grams must still count.
		"Pacific Mills Incorporated of the Western Territories and Beyond",
	}
	for _, q := range []int{2, 3} {
		p, err := approxsel.New("DiceTest", records, approxsel.WithQ(q))
		if err != nil {
			t.Fatal(err)
		}
		for _, query := range queries {
			ms, err := p.Select(query)
			if err != nil {
				t.Fatalf("q=%d: %v", q, err)
			}
			for _, m := range ms {
				want := diceRef(query, records[m.TID-1].Text, q)
				if math.Abs(m.Score-want) > 1e-9 {
					t.Errorf("q=%d query %q tid %d: dice %.6f, want %.6f",
						q, query, m.TID, m.Score, want)
				}
			}
		}
	}
}
