// Command customsql shows the extensibility story of the declarative
// framework: a *new* similarity predicate built purely from SQL on the
// exposed engine, exactly the way the paper's Chapter 4 realizes its
// predicates — and plugged into the facade through the predicate registry,
// so it is constructed with approxsel.New and probed through the same
// Select/TopK/SelectBatch machinery as the built-in thirteen.
//
// The predicate implemented here is Dice's coefficient
// (2|Q∩D| / (|Q|+|D|)), which the paper does not ship.
package main

import (
	"fmt"
	"log"
	"strings"

	approxsel "repro"
)

// dicePredicate realizes Dice's coefficient declaratively: the base
// relation is tokenized into padded q-grams with the Appendix A INTEGERS
// trick, and every Select scores candidates with one SQL statement.
type dicePredicate struct {
	db *approxsel.SQLDB
	q  int
}

// newDice is the BuilderFunc registered under "Dice": it preprocesses the
// base relation into token tables on a fresh SQL engine.
func newDice(records []approxsel.Record, cfg approxsel.Config) (approxsel.Predicate, error) {
	db := approxsel.NewSQLDB()
	p := &dicePredicate{db: db, q: cfg.Q}

	exec := func(stmt string, args ...approxsel.SQLValue) error {
		_, err := db.Exec(stmt, args...)
		return err
	}

	// Schema + base relation, as in Appendix A.
	if err := exec("CREATE TABLE base_table (tid INT, string VARCHAR(255))"); err != nil {
		return nil, err
	}
	for _, r := range records {
		if err := exec("INSERT INTO base_table VALUES (?, ?)",
			approxsel.SQLInt(int64(r.TID)), approxsel.SQLString(r.Text)); err != nil {
			return nil, err
		}
	}

	// Tokenization in SQL with the INTEGERS trick: q-1 characters of '$'
	// padding on each side, so valid q-gram start positions run to
	// LENGTH + q - 1. The table covers the VARCHAR(255) schema bound, not
	// just the longest base string — Select tokenizes arbitrary queries
	// with it too.
	if err := exec("CREATE TABLE integers (i INT)"); err != nil {
		return nil, err
	}
	for i := 1; i <= 255+p.q; i++ {
		if err := exec("INSERT INTO integers VALUES (?)", approxsel.SQLInt(int64(i))); err != nil {
			return nil, err
		}
	}
	pad := strings.Repeat("$", p.q-1)
	for _, stmt := range []string{
		"CREATE TABLE base_tokens (tid INT, token VARCHAR(8))",
		fmt.Sprintf(`
			INSERT INTO base_tokens (tid, token)
			SELECT B.tid, SUBSTRING(CONCAT('%[1]s', UPPER(REPLACE(B.string, ' ', '$')), '%[1]s'), N.i, %[2]d)
			FROM integers N INNER JOIN base_table B
			  ON N.i <= LENGTH(REPLACE(B.string, ' ', '$')) + %[3]d`, pad, p.q, p.q-1),
		// Distinct tokens + per-record set sizes, then a token index.
		"CREATE TABLE base_distinct (tid INT, token VARCHAR(8))",
		"INSERT INTO base_distinct SELECT T.tid, T.token FROM base_tokens T GROUP BY T.tid, T.token",
		"CREATE TABLE base_card (tid INT, card INT)",
		"INSERT INTO base_card SELECT T.tid, COUNT(*) FROM base_distinct T GROUP BY T.tid",
		"CREATE INDEX bd_token ON base_distinct (token)",
		"CREATE TABLE query_tokens (token VARCHAR(8))",
	} {
		if err := exec(stmt); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Name implements approxsel.Predicate.
func (p *dicePredicate) Name() string { return "Dice" }

// Select implements approxsel.Predicate: the query string is tokenized into
// the QUERY_TOKENS table and candidates sharing a q-gram are scored and
// ranked by one declarative statement.
func (p *dicePredicate) Select(query string) ([]approxsel.Match, error) {
	if _, err := p.db.Exec("DELETE FROM query_tokens"); err != nil {
		return nil, err
	}
	pad := strings.Repeat("$", p.q-1)
	if _, err := p.db.Exec(fmt.Sprintf(`
		INSERT INTO query_tokens (token)
		SELECT SUBSTRING(CONCAT('%[1]s', UPPER(REPLACE(B.string, ' ', '$')), '%[1]s'), N.i, %[2]d) AS token
		FROM integers N INNER JOIN (SELECT ? AS string) B
		  ON N.i <= LENGTH(REPLACE(B.string, ' ', '$')) + %[3]d
		GROUP BY token`, pad, p.q, p.q-1), approxsel.SQLString(query)); err != nil {
		return nil, err
	}
	rows, err := p.db.Query(`
		SELECT D.tid, 2.0 * COUNT(*) / (C.card + QC.card) AS dice
		FROM base_distinct D, query_tokens Q, base_card C,
		     (SELECT COUNT(*) AS card FROM query_tokens) QC
		WHERE D.token = Q.token AND D.tid = C.tid
		GROUP BY D.tid, C.card, QC.card
		ORDER BY dice DESC, D.tid`)
	if err != nil {
		return nil, err
	}
	ms := make([]approxsel.Match, 0, len(rows.Data))
	for _, r := range rows.Data {
		ms = append(ms, approxsel.Match{TID: int(r[0].AsInt()), Score: r[1].AsFloat()})
	}
	return ms, nil
}

func main() {
	// Plug the predicate into the framework; from here on it behaves like
	// the built-in thirteen.
	if err := approxsel.Register("Dice", newDice); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered predicates: %s\n\n", strings.Join(approxsel.PredicateNames(), " "))

	companies := approxsel.CompanyNames(200, 5)
	records := make([]approxsel.Record, len(companies))
	for i, name := range companies {
		records[i] = approxsel.Record{TID: i + 1, Text: name}
	}
	p, err := approxsel.New("Dice", records)
	if err != nil {
		log.Fatal(err)
	}

	query := companies[17]
	fmt.Printf("query: %q\n\n", query)
	top, err := approxsel.TopK(p, query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 by Dice coefficient (user-defined declarative predicate):")
	for _, m := range top {
		fmt.Printf("  tid %-4d dice %.3f  %s\n", m.TID, m.Score, companies[m.TID-1])
	}
}
