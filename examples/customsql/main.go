// Command customsql shows the extensibility story of the declarative
// framework: building a *new* similarity predicate purely from SQL on the
// exposed engine, exactly the way the paper's Chapter 4 realizes its
// predicates. The predicate implemented here is Dice's coefficient
// (2|Q∩D| / (|Q|+|D|)), which the paper does not ship — a user-defined
// predicate built from the same BASE_TOKENS machinery.
package main

import (
	"fmt"
	"log"

	approxsel "repro"
)

func main() {
	db := approxsel.NewSQLDB()

	// Schema + base relation, as in Appendix A.
	must(db.Exec("CREATE TABLE base_table (tid INT, string VARCHAR(255))"))
	companies := approxsel.CompanyNames(200, 5)
	for i, name := range companies {
		must(db.Exec("INSERT INTO base_table VALUES (?, ?)",
			approxsel.SQLInt(int64(i+1)), approxsel.SQLString(name)))
	}

	// Tokenization in SQL with the INTEGERS trick (q = 2, '$' padding).
	must(db.Exec("CREATE TABLE integers (i INT)"))
	for i := 1; i <= 80; i++ {
		must(db.Exec("INSERT INTO integers VALUES (?)", approxsel.SQLInt(int64(i))))
	}
	must(db.Exec(`
		CREATE TABLE base_tokens (tid INT, token VARCHAR(8))`))
	must(db.Exec(`
		INSERT INTO base_tokens (tid, token)
		SELECT B.tid, SUBSTRING(CONCAT('$', UPPER(REPLACE(B.string, ' ', '$')), '$'), N.i, 2)
		FROM integers N INNER JOIN base_table B
		  ON N.i <= LENGTH(REPLACE(B.string, ' ', '$')) + 1`))
	// Distinct tokens + per-record set sizes, then a token index.
	must(db.Exec(`CREATE TABLE base_distinct (tid INT, token VARCHAR(8))`))
	must(db.Exec(`INSERT INTO base_distinct SELECT T.tid, T.token FROM base_tokens T GROUP BY T.tid, T.token`))
	must(db.Exec(`CREATE TABLE base_card (tid INT, card INT)`))
	must(db.Exec(`INSERT INTO base_card SELECT T.tid, COUNT(*) FROM base_distinct T GROUP BY T.tid`))
	must(db.Exec("CREATE INDEX bd_token ON base_distinct (token)"))
	must(db.Exec("CREATE TABLE query_tokens (token VARCHAR(8))"))

	// A query against the user-defined Dice predicate, scored in one SQL
	// statement.
	query := companies[17]
	fmt.Printf("query: %q\n\n", query)
	must(db.Exec("DELETE FROM query_tokens"))
	must(db.Exec(`
		INSERT INTO query_tokens (token)
		SELECT SUBSTRING(CONCAT('$', UPPER(REPLACE(B.string, ' ', '$')), '$'), N.i, 2) AS token
		FROM integers N INNER JOIN (SELECT ? AS string) B
		  ON N.i <= LENGTH(REPLACE(B.string, ' ', '$')) + 1
		GROUP BY token`, approxsel.SQLString(query)))

	rows, err := db.Query(`
		SELECT D.tid, 2.0 * COUNT(*) / (C.card + QC.card) AS dice
		FROM base_distinct D, query_tokens Q, base_card C,
		     (SELECT COUNT(*) AS card FROM query_tokens) QC
		WHERE D.token = Q.token AND D.tid = C.tid
		GROUP BY D.tid, C.card, QC.card
		ORDER BY dice DESC, D.tid
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top 5 by Dice coefficient (user-defined declarative predicate):")
	for _, r := range rows.Data {
		tid := r[0].AsInt()
		fmt.Printf("  tid %-4d dice %.3f  %s\n", tid, r[1].AsFloat(), companies[tid-1])
	}
}

func must(n int, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
