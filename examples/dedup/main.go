// Command dedup runs the paper's motivating scenario end to end: a company
// relation polluted with duplicates (typos, token swaps, abbreviation
// variants) is deduplicated with approximate selections, and the quality of
// several predicates is compared against the generator's ground truth.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	approxsel "repro"
)

func main() {
	size := flag.Int("size", 2000, "number of dirty tuples to generate")
	clean := flag.Int("clean", 200, "number of clean source companies")
	queries := flag.Int("queries", 100, "number of evaluation queries")
	theta := flag.Float64("theta", 0.25, "selection threshold for the dedup report")
	flag.Parse()

	// 1. Build a dirty relation with known ground truth (the paper's CU5
	//    configuration: many duplicates, light edits, swaps, abbreviations).
	ds, err := approxsel.GenerateDirty(
		approxsel.CompanyNames(*clean*2, 1),
		approxsel.Abbreviations(),
		approxsel.DirtyParams{
			Size: *size, NumClean: *clean, Dist: approxsel.Uniform,
			ErroneousPct: 0.9, ErrorExtent: 0.10,
			TokenSwapPct: 0.20, AbbrPct: 0.50, Seed: 42,
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d dirty tuples from %d clean companies\n\n", len(ds.Records), *clean)

	// 2. Compare predicate accuracy (MAP over random queries), as §5.4 does.
	cfg := approxsel.DefaultConfig()
	predNames := []string{"Jaccard", "WeightedJaccard", "Cosine", "BM25", "HMM", "SoftTFIDF"}
	fmt.Println("predicate         MAP")
	fmt.Println("---------------  -----")
	var best approxsel.Predicate
	bestMAP := -1.0
	evalRecs := make([]approxsel.Record, *queries)
	evalQueries := make([]string, *queries)
	for i := range evalRecs {
		evalRecs[i] = ds.Records[(i*7919)%len(ds.Records)]
		evalQueries[i] = evalRecs[i].Text
	}
	for _, name := range predNames {
		p, err := approxsel.New(name, ds.Records, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// All evaluation queries probe through the batch worker pool.
		res, err := approxsel.SelectBatch(context.Background(), p, evalQueries)
		if err != nil {
			log.Fatal(err)
		}
		sum := 0.0
		for i, ms := range res {
			relevant := map[int]bool{}
			for _, tid := range ds.Clusters[ds.Cluster[evalRecs[i].TID]] {
				relevant[tid] = true
			}
			sum += approxsel.AveragePrecision(approxsel.RankedTIDs(ms), relevant)
		}
		mapScore := sum / float64(*queries)
		fmt.Printf("%-15s  %.3f\n", name, mapScore)
		if mapScore > bestMAP {
			bestMAP, best = mapScore, p
		}
	}

	// 3. Deduplicate with the best predicate: for a few sample tuples, show
	//    the duplicate group the thresholded selection recovers.
	fmt.Printf("\ndedup report with %s (threshold %.2f):\n", best.Name(), *theta)
	for i := 0; i < 3; i++ {
		rec := ds.Records[(i*2711)%len(ds.Records)]
		ms, err := approxsel.SelectThreshold(best, rec.Text, *theta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n  query: %q (cluster %d)\n", rec.Text, ds.Cluster[rec.TID])
		shown := 0
		for _, m := range ms {
			if shown >= 5 {
				fmt.Printf("    ... %d more\n", len(ms)-shown)
				break
			}
			mark := " "
			if ds.Cluster[m.TID] == ds.Cluster[rec.TID] {
				mark = "*" // true duplicate per ground truth
			}
			fmt.Printf("   %s tid %-5d score %6.3f  %s\n", mark, m.TID, m.Score, textOf(ds, m.TID))
			shown++
		}
	}
	fmt.Println("\n(* marks true duplicates per the generator's ground truth)")
}

func textOf(ds *approxsel.DirtyDataset, tid int) string {
	for _, r := range ds.Records {
		if r.TID == tid {
			return r.Text
		}
	}
	return "?"
}
