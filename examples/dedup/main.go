// Command dedup runs the paper's motivating scenario end to end: a company
// relation polluted with duplicates (typos, token swaps, abbreviation
// variants) is deduplicated with approximate selections, and the quality of
// several predicates is compared against the generator's ground truth.
//
// With -live the scenario runs online instead: half the relation seeds a
// corpus, a standing watch (approxwatch) is registered on it, and the rest
// streams in one tuple at a time — every insert that duplicates an earlier
// tuple raises an epoch-tagged match alert the moment it lands, with no
// batch re-join anywhere.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	approxsel "repro"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the example with explicit arguments and streams, so tests
// can drive both modes end to end.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dedup", flag.ContinueOnError)
	fs.SetOutput(stderr)
	size := fs.Int("size", 2000, "number of dirty tuples to generate")
	clean := fs.Int("clean", 200, "number of clean source companies")
	queries := fs.Int("queries", 100, "number of evaluation queries")
	theta := fs.Float64("theta", 0.25, "selection threshold for the dedup report")
	live := fs.Bool("live", false, "online dedup: seed half the relation, stream the rest through a standing watch")
	liveTheta := fs.Float64("livetheta", 0.45, "match threshold of the live watch (Jaccard)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// 1. Build a dirty relation with known ground truth (the paper's CU5
	//    configuration: many duplicates, light edits, swaps, abbreviations).
	ds, err := approxsel.GenerateDirty(
		approxsel.CompanyNames(*clean*2, 1),
		approxsel.Abbreviations(),
		approxsel.DirtyParams{
			Size: *size, NumClean: *clean, Dist: approxsel.Uniform,
			ErroneousPct: 0.9, ErrorExtent: 0.10,
			TokenSwapPct: 0.20, AbbrPct: 0.50, Seed: 42,
		})
	if err != nil {
		fmt.Fprintf(stderr, "dedup: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "generated %d dirty tuples from %d clean companies\n\n", len(ds.Records), *clean)

	if *live {
		return runLive(ds, *liveTheta, stdout, stderr)
	}

	// 2. Compare predicate accuracy (MAP over random queries), as §5.4 does.
	cfg := approxsel.DefaultConfig()
	predNames := []string{"Jaccard", "WeightedJaccard", "Cosine", "BM25", "HMM", "SoftTFIDF"}
	fmt.Fprintln(stdout, "predicate         MAP")
	fmt.Fprintln(stdout, "---------------  -----")
	var best approxsel.Predicate
	bestMAP := -1.0
	evalRecs := make([]approxsel.Record, *queries)
	evalQueries := make([]string, *queries)
	for i := range evalRecs {
		evalRecs[i] = ds.Records[(i*7919)%len(ds.Records)]
		evalQueries[i] = evalRecs[i].Text
	}
	for _, name := range predNames {
		p, err := approxsel.New(name, ds.Records, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "dedup: %v\n", err)
			return 1
		}
		// All evaluation queries probe through the batch worker pool.
		res, err := approxsel.SelectBatch(ctx, p, evalQueries)
		if err != nil {
			fmt.Fprintf(stderr, "dedup: %v\n", err)
			return 1
		}
		sum := 0.0
		for i, ms := range res {
			relevant := map[int]bool{}
			for _, tid := range ds.Clusters[ds.Cluster[evalRecs[i].TID]] {
				relevant[tid] = true
			}
			sum += approxsel.AveragePrecision(approxsel.RankedTIDs(ms), relevant)
		}
		mapScore := sum / float64(*queries)
		fmt.Fprintf(stdout, "%-15s  %.3f\n", name, mapScore)
		if mapScore > bestMAP {
			bestMAP, best = mapScore, p
		}
	}

	// 3. Deduplicate with the best predicate: for a few sample tuples, show
	//    the duplicate group the thresholded selection recovers.
	fmt.Fprintf(stdout, "\ndedup report with %s (threshold %.2f):\n", best.Name(), *theta)
	for i := 0; i < 3; i++ {
		rec := ds.Records[(i*2711)%len(ds.Records)]
		ms, err := approxsel.SelectThreshold(best, rec.Text, *theta)
		if err != nil {
			fmt.Fprintf(stderr, "dedup: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "\n  query: %q (cluster %d)\n", rec.Text, ds.Cluster[rec.TID])
		shown := 0
		for _, m := range ms {
			if shown >= 5 {
				fmt.Fprintf(stdout, "    ... %d more\n", len(ms)-shown)
				break
			}
			mark := " "
			if ds.Cluster[m.TID] == ds.Cluster[rec.TID] {
				mark = "*" // true duplicate per ground truth
			}
			fmt.Fprintf(stdout, "   %s tid %-5d score %6.3f  %s\n", mark, m.TID, m.Score, textOf(ds, m.TID))
			shown++
		}
	}
	fmt.Fprintln(stdout, "\n(* marks true duplicates per the generator's ground truth)")
	return 0
}

// runLive is the online scenario: the watch sees only each inserted delta
// through the hot-path selection, yet its alerts are exactly the pairs a
// batch self-join would produce at every epoch.
func runLive(ds *approxsel.DirtyDataset, theta float64, stdout, stderr io.Writer) int {
	recs := ds.Records
	half := len(recs) / 2
	c, err := approxsel.OpenCorpus(recs[:half])
	if err != nil {
		fmt.Fprintf(stderr, "dedup: %v\n", err)
		return 1
	}
	w, err := c.RegisterWatch("Jaccard", theta, approxsel.WithWatchBuffer(1<<16))
	if err != nil {
		fmt.Fprintf(stderr, "dedup: %v\n", err)
		return 1
	}
	defer w.Close()
	fmt.Fprintf(stdout, "live dedup: watching Jaccard >= %.2f over %d seeded tuples, streaming %d more\n\n",
		theta, half, len(recs)-half)

	const maxShown = 12
	alerts, trueDups, shown := 0, 0, 0
	for i := half; i < len(recs); i++ {
		if err := c.Insert(recs[i]); err != nil {
			fmt.Fprintf(stderr, "dedup: insert: %v\n", err)
			return 1
		}
		// Delivery is synchronous with the insert: its alerts are buffered
		// by the time Insert returns.
		for drained := false; !drained; {
			select {
			case e, ok := <-w.Events():
				if !ok {
					fmt.Fprintf(stderr, "dedup: watch died: %v\n", w.Err())
					return 1
				}
				alerts++
				mark := " "
				if ds.Cluster[e.ProbeTID] == ds.Cluster[e.BaseTID] {
					mark = "*"
					trueDups++
				}
				if shown < maxShown {
					fmt.Fprintf(stdout, "  %s epoch %-4d tid %-5d ≈ tid %-5d score %6.3f  %q\n",
						mark, e.Epoch, e.ProbeTID, e.BaseTID, e.Score, textOf(ds, e.BaseTID))
					shown++
					if shown == maxShown {
						fmt.Fprintln(stdout, "  ... (further alerts counted, not shown)")
					}
				}
			default:
				drained = true
			}
		}
	}
	st := c.WatchStats()
	fmt.Fprintf(stdout, "\n%d duplicate alerts (%d true per ground truth) across %d streamed inserts\n",
		alerts, trueDups, len(recs)-half)
	fmt.Fprintf(stdout, "watch derive time: %.2fms total, %.1fus per insert\n",
		float64(st.DeriveNS)/1e6, float64(st.DeriveNS)/1e3/float64(len(recs)-half))
	fmt.Fprintln(stdout, "\n(* marks true duplicates per the generator's ground truth)")
	return 0
}

func textOf(ds *approxsel.DirtyDataset, tid int) string {
	for _, r := range ds.Records {
		if r.TID == tid {
			return r.Text
		}
	}
	return "?"
}
