package main

import (
	"bytes"
	"context"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestDedupSmoke drives the batch scenario end to end on a small relation.
func TestDedupSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-size", "300", "-clean", "40", "-queries", "20"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"generated 300 dirty tuples", "MAP", "dedup report with"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

// TestDedupLiveSmoke drives the -live mode: streamed inserts must raise
// duplicate alerts through the standing watch, including true duplicates
// per the generator's ground truth.
func TestDedupLiveSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-live", "-size", "300", "-clean", "40"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "live dedup: watching Jaccard") {
		t.Fatalf("output missing live banner:\n%s", s)
	}
	m := regexp.MustCompile(`(\d+) duplicate alerts \((\d+) true`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("output missing alert summary:\n%s", s)
	}
	alerts, _ := strconv.Atoi(m[1])
	trueDups, _ := strconv.Atoi(m[2])
	if alerts == 0 || trueDups == 0 {
		t.Fatalf("live run raised %d alerts (%d true), want both > 0:\n%s", alerts, trueDups, s)
	}
}
