package approxsel

import (
	"strings"
	"testing"
)

// equalityPredicate is a minimal custom predicate for registry tests: score
// 1 for case-insensitive exact matches, nothing else.
type equalityPredicate struct {
	records []Record
}

func (p *equalityPredicate) Name() string { return "Equality" }

func (p *equalityPredicate) Select(query string) ([]Match, error) {
	var ms []Match
	for _, r := range p.records {
		if strings.EqualFold(r.Text, query) {
			ms = append(ms, Match{TID: r.TID, Score: 1})
		}
	}
	return ms, nil
}

func buildEquality(records []Record, _ Config) (Predicate, error) {
	return &equalityPredicate{records: records}, nil
}

func TestRegisterCustomPredicate(t *testing.T) {
	if err := Register("Equality", buildEquality); err != nil {
		t.Fatal(err)
	}
	defer Unregister("Equality")

	records := facadeRecords()
	// The custom predicate is constructible through New like a built-in,
	// under any realization (custom predicates are realization-agnostic).
	for _, r := range Realizations() {
		p, err := New("Equality", records, WithRealization(r))
		if err != nil {
			t.Fatalf("New under %s: %v", r, err)
		}
		ms, err := p.Select(strings.ToLower(records[4].Text))
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 1 || ms[0].TID != records[4].TID {
			t.Fatalf("realization %s: %+v", r, ms)
		}
	}
	// And it rides the same helper machinery (TopK via the option path).
	p, err := New("Equality", records)
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopK(p, records[0].Text, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || top[0].TID != records[0].TID {
		t.Fatalf("TopK over custom predicate: %+v", top)
	}
}

func TestRegisterErrors(t *testing.T) {
	if err := Register("", buildEquality); err == nil {
		t.Error("empty name must error")
	}
	if err := Register("NilBuilder", nil); err == nil {
		t.Error("nil builder must error")
	}
	if err := Register("BM25", buildEquality); err == nil {
		t.Error("built-in name collision must error")
	}
	if err := Register("DupCustom", buildEquality); err != nil {
		t.Fatal(err)
	}
	defer Unregister("DupCustom")
	if err := Register("DupCustom", buildEquality); err == nil {
		t.Error("duplicate registration must error")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister on a taken name must panic")
		}
	}()
	MustRegister("BM25", buildEquality)
}

func TestPredicateNamesIncludesCustom(t *testing.T) {
	if err := Register("ZCustom", buildEquality); err != nil {
		t.Fatal(err)
	}
	defer Unregister("ZCustom")
	names := PredicateNames()
	if names[len(names)-1] != "ZCustom" {
		t.Fatalf("custom predicates must follow the built-ins: %v", names)
	}
	if len(names) != 14 {
		t.Fatalf("13 built-ins + 1 custom, got %d", len(names))
	}
}

func TestRealizations(t *testing.T) {
	rs := Realizations()
	if len(rs) != 2 || rs[0] != Declarative || rs[1] != Native {
		t.Fatalf("Realizations() = %v", rs)
	}
}

func TestNewUnknown(t *testing.T) {
	records := facadeRecords()[:5]
	if _, err := New("NoSuchPredicate", records); err == nil {
		t.Error("unknown predicate must error")
	}
	if _, err := New("BM25", records, WithRealization("vectorized")); err == nil {
		t.Error("unknown realization must error")
	}
}

// TestUnknownPredicateListsRegistered pins the discoverability contract:
// the unknown-name error of New and Corpus.Predicate names every
// registerable predicate, sorted, including Register-ed customs.
func TestUnknownPredicateListsRegistered(t *testing.T) {
	MustRegister("AAListedCustom", func(records []Record, cfg Config) (Predicate, error) {
		return New("Jaccard", records, cfg)
	})
	defer func() {
		if err := Unregister("AAListedCustom"); err != nil {
			t.Fatal(err)
		}
	}()
	records := facadeRecords()[:5]
	_, err := New("NoSuchPredicate", records)
	if err == nil {
		t.Fatal("unknown predicate must error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "registered predicates:") {
		t.Fatalf("error must list registered predicates: %s", msg)
	}
	// Sorted: the custom sorts before every built-in, BM25 before Cosine.
	for _, probe := range []string{"AAListedCustom", "BM25", "Cosine", "EditDistance"} {
		if !strings.Contains(msg, probe) {
			t.Fatalf("error must name %s: %s", probe, msg)
		}
	}
	if strings.Index(msg, "AAListedCustom") > strings.Index(msg, "BM25") ||
		strings.Index(msg, "BM25") > strings.Index(msg, "Cosine") {
		t.Fatalf("registered names must be sorted: %s", msg)
	}

	// The corpus attach path reports the same hint.
	c, err := OpenCorpus(records)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Predicate("NoSuchPredicate")
	if err == nil || !strings.Contains(err.Error(), "registered predicates:") {
		t.Fatalf("Corpus.Predicate must list registered predicates: %v", err)
	}
}

func TestBuildOptionsCompose(t *testing.T) {
	records := facadeRecords()
	// WithConfig replaces wholesale; later options still apply on top.
	cfg := DefaultConfig()
	cfg.Q = 4
	p, err := New("Jaccard", records, WithConfig(cfg), WithQ(3))
	if err != nil {
		t.Fatal(err)
	}
	q3, err := New("Jaccard", records, WithQ(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Select(records[1].Text)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q3.Select(records[1].Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("option composition: %d vs %d matches", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("option composition diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
