package approxsel

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/watch"
)

// Corpus is the shared, mutable base relation the paper's framework stores
// inside the DBMS: one set of precomputed token and weight tables that all
// registered predicates read. OpenCorpus tokenizes the relation exactly
// once; Predicate attaches any registered predicate as a lightweight view
// sharing the corpus data (so building the full thirteen-predicate suite
// performs a single tokenization/statistics pass); and Insert, Delete and
// Upsert mutate the relation in place, re-tokenizing only the changed
// records. Mutations are epoch-versioned: attached predicates notice the
// epoch change on their next selection and re-attach to the fresh
// statistics automatically.
//
// A Corpus is safe for concurrent use: selections read immutable
// snapshots, mutations publish new snapshots atomically, and a selection
// racing a mutation observes either the old or the new version — never a
// mix.
type Corpus struct {
	c *core.Corpus
	// log is the attached approxstore write-ahead log when the corpus was
	// opened with WithDataDir; nil for a purely in-memory corpus.
	log *store.Log
	// hub fans the mutation stream out to registered watches (approxwatch);
	// always set, idle until the first RegisterWatch.
	hub *watch.Hub
}

// OpenCorpus tokenizes the base relation once, materializing every
// precomputed layer (q-grams, word grams, counts, document lengths,
// IDF/weight statistics, min-hash signatures, edit-normalized strings) so
// that any registered predicate can attach. Options adjust the
// tokenization parameters exactly as in New; WithRealization and
// WithCorpus are not meaningful here (the realization is chosen per
// Predicate call).
func OpenCorpus(records []Record, opts ...BuildOption) (*Corpus, error) {
	settings := core.BuildSettings{
		Config:      core.DefaultConfig(),
		Realization: string(Native),
	}
	for _, o := range opts {
		o.ApplyBuild(&settings)
	}
	if settings.Corpus != nil {
		return nil, fmt.Errorf("approxsel: WithCorpus is not a valid OpenCorpus option")
	}
	if dir := settings.DataDir; dir != "" {
		// Durable corpus: an existing store wins over the records argument
		// (its segment carries the configuration it was built with); a fresh
		// directory is seeded from records and the WAL attaches either way.
		if store.HasManifest(dir) {
			return nil, fmt.Errorf("approxsel: %s holds a sharded corpus store; open it with OpenShardedCorpus", dir)
		}
		if store.Exists(dir) {
			log, err := store.Open(dir)
			if err != nil {
				return nil, err
			}
			// The WAL window that replayed during the open seeds the watch
			// hub's resumable history: a client reconnecting across the
			// restart with its last-seen epoch gets the missed events.
			c := log.Corpus()
			base, muts := log.TakeReplay()
			hub := wireWatchHub(c, base, log.Stats().SnapshotEpoch, muts)
			return &Corpus{c: c, log: log, hub: hub}, nil
		}
		c, err := core.NewCorpus(records, settings.Config, core.AllLayers)
		if err != nil {
			return nil, err
		}
		log, err := store.Create(dir, c)
		if err != nil {
			return nil, err
		}
		return &Corpus{c: c, log: log, hub: wireWatchHub(c, c.Records(), c.Epoch(), nil)}, nil
	}
	c, err := core.NewCorpus(records, settings.Config, core.AllLayers)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c, hub: wireWatchHub(c, c.Records(), c.Epoch(), nil)}, nil
}

// Predicate attaches the named predicate to the corpus, resolving the name
// through the predicate registry exactly like New. The attach starts from
// the corpus's own configuration; options apply on top, and may change
// scoring-level parameters only (tokenization-level parameters — q-gram
// sizes, pruning, min-hash geometry — are fixed at OpenCorpus).
//
// Native predicates attach as views over the corpus's shared tables; the
// declarative realization and Register-ed predicates are adapted
// automatically, rebuilding from the corpus's records when the epoch
// moves.
func (c *Corpus) Predicate(name string, opts ...BuildOption) (Predicate, error) {
	settings := core.BuildSettings{
		Config:      c.c.Config(),
		Realization: string(Native),
	}
	for _, o := range opts {
		o.ApplyBuild(&settings)
	}
	if settings.Corpus != nil && settings.Corpus != c.c {
		return nil, fmt.Errorf("approxsel: WithCorpus naming a different corpus is not a valid Corpus.Predicate option")
	}
	return attachToCorpus(c.c, Realization(settings.Realization), name, settings.Config)
}

// Insert adds records to the corpus, tokenizing only the new records;
// inserting an existing TID is an error. Attached predicates observe the
// update on their next selection.
func (c *Corpus) Insert(records ...Record) error { return c.c.Insert(records...) }

// Delete removes records by TID; deleting an unknown TID is an error.
// Attached predicates observe the update on their next selection.
func (c *Corpus) Delete(tids ...int) error { return c.c.Delete(tids...) }

// Upsert inserts records, replacing any existing record with the same TID.
func (c *Corpus) Upsert(records ...Record) error { return c.c.Upsert(records...) }

// Len returns the current number of records.
func (c *Corpus) Len() int { return c.c.Len() }

// Epoch returns the corpus's mutation epoch; it increases with every
// applied Insert, Delete or Upsert.
func (c *Corpus) Epoch() uint64 { return c.c.Epoch() }

// Records returns a copy of the current base relation in storage order.
func (c *Corpus) Records() []Record { return c.c.Records() }

// Config returns the configuration the corpus was opened with.
func (c *Corpus) Config() Config { return c.c.Config() }

// attachToCorpus resolves (realization, name) and wraps the resulting
// builder in an epoch-refreshing view.
func attachToCorpus(cc *core.Corpus, r Realization, name string, cfg Config) (Predicate, error) {
	corpusBuilder, legacyBuilder, err := lookupAttach(r, name)
	if err != nil {
		return nil, err
	}
	v := &corpusView{corpus: cc, name: name}
	if corpusBuilder != nil {
		v.build = func() (core.Predicate, error) { return corpusBuilder(cc, cfg) }
	} else {
		// Legacy builders tokenize for themselves, but the documented
		// contract holds for every attach: tokenization-level parameters
		// were fixed at OpenCorpus, and a conflicting override would make
		// this predicate silently diverge from the rest of the suite.
		if err := cc.CompatibleConfig(cfg); err != nil {
			return nil, err
		}
		v.build = func() (core.Predicate, error) { return legacyBuilder(cc.Records(), cfg) }
	}
	inner, err := v.current()
	if err != nil {
		return nil, err
	}
	v.safe = core.ConcurrentSafe(inner)
	return v, nil
}

// corpusView is the lightweight predicate view Corpus.Predicate returns:
// it holds a builder closure plus the inner predicate built for the
// current epoch, and transparently rebuilds the inner predicate when the
// corpus moves to a new epoch. For native predicates the rebuild is a
// cheap re-attach to the corpus's already-updated shared tables; for
// adapted legacy builders it is a rebuild from the corpus's records.
type corpusView struct {
	corpus *core.Corpus
	name   string
	build  func() (core.Predicate, error)
	state  atomic.Pointer[viewState]
	safe   bool
}

type viewState struct {
	epoch uint64
	inner core.Predicate
}

// current returns the inner predicate for the corpus's current epoch,
// rebuilding it if the epoch moved. Concurrent callers may race to
// rebuild; the compare-and-swap keeps exactly one winner and the losers'
// builds are discarded (they are views over immutable snapshots, so this
// is waste, not corruption).
func (v *corpusView) current() (core.Predicate, error) {
	e := v.corpus.Epoch()
	st := v.state.Load()
	if st != nil && st.epoch >= e {
		return st.inner, nil
	}
	inner, err := v.build()
	if err != nil {
		return nil, err
	}
	ns := &viewState{epoch: e, inner: inner}
	for {
		st = v.state.Load()
		if st != nil && st.epoch >= e {
			return st.inner, nil
		}
		if v.state.CompareAndSwap(st, ns) {
			return inner, nil
		}
	}
}

// Name implements core.Predicate.
func (v *corpusView) Name() string { return v.name }

// Select implements core.Predicate against the corpus's current epoch.
func (v *corpusView) Select(query string) ([]Match, error) {
	p, err := v.current()
	if err != nil {
		return nil, err
	}
	return p.Select(query)
}

// SelectCtx implements core.ContextPredicate: options are pushed down into
// the inner predicate when it supports them, post-filtered otherwise.
func (v *corpusView) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]Match, error) {
	p, err := v.current()
	if err != nil {
		return nil, err
	}
	return core.SelectWithOptions(ctx, p, query, opts)
}

// ConcurrentProbeSafe implements core.ConcurrentProber: the view is as
// safe as the predicates it builds (the rebuild handshake itself is
// lock-free and race-clean).
func (v *corpusView) ConcurrentProbeSafe() bool { return v.safe }

// PreprocessPhases implements core.Phased by delegating to the inner
// predicate; adapted predicates that do not track phases report zeros.
func (v *corpusView) PreprocessPhases() (time.Duration, time.Duration) {
	p, err := v.current()
	if err != nil {
		return 0, 0
	}
	if ph, ok := p.(core.Phased); ok {
		return ph.PreprocessPhases()
	}
	return 0, 0
}
