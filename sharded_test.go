package approxsel

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestShardedOneShardParity checks that a single-shard ShardedCorpus is
// bit-identical to the unsharded Corpus for every registered predicate.
func TestShardedOneShardParity(t *testing.T) {
	records := facadeRecords()
	plain, err := OpenCorpus(records)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := OpenShardedCorpus(records, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries := batchQueries(records[:10])
	for _, name := range PredicateNames() {
		pp, err := plain.Predicate(name)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := sharded.Predicate(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want, err := pp.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sp.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s %q: sharded(1) diverged from Corpus", name, q)
			}
		}
	}
}

// TestShardedDeterministicAndPushdown checks that a multi-shard selection
// is deterministic across repeated probes and that Limit/Threshold
// push-down matches post-filtering the full sharded ranking.
func TestShardedDeterministicAndPushdown(t *testing.T) {
	records := facadeRecords()
	sharded, err := OpenShardedCorpus(records, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != 4 || sharded.Len() != len(records) {
		t.Fatalf("shards=%d len=%d", sharded.Shards(), sharded.Len())
	}
	for _, name := range []string{"BM25", "Jaccard", "EditDistance"} {
		p, err := sharded.Predicate(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range batchQueries(records[:5]) {
			full, err := p.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 3; round++ {
				again, err := p.Select(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(again, full) {
					t.Fatalf("%s %q: nondeterministic sharded ranking", name, q)
				}
			}
			top, err := TopK(p, q, 3)
			if err != nil {
				t.Fatal(err)
			}
			want := full
			if len(want) > 3 {
				want = want[:3]
			}
			if !reflect.DeepEqual(top, want) {
				t.Fatalf("%s %q: top-k push-down diverged: got %v want %v", name, q, top, want)
			}
			if len(full) > 0 {
				theta := full[len(full)/2].Score
				th, err := SelectThreshold(p, q, theta)
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range th {
					if m.Score < theta {
						t.Fatalf("%s: threshold leak %v < %v", name, m.Score, theta)
					}
				}
			}
		}
	}
}

// TestShardedBatchAndJoin routes the sharded view through the batch pool
// and the joins, checking sequential equality.
func TestShardedBatchAndJoin(t *testing.T) {
	records := facadeRecords()
	sharded, err := OpenShardedCorpus(records, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sharded.Predicate("BM25")
	if err != nil {
		t.Fatal(err)
	}
	queries := batchQueries(records[:8])
	want := sequentialSelect(t, p, queries)
	got, err := SelectBatch(context.Background(), p, queries, Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded batch diverged from sequential")
	}
	if _, err := ApproximateJoin(p, records[:5], 0.1); err != nil {
		t.Fatalf("sharded join: %v", err)
	}
}

// TestShardedMutationDifferential checks the differential contract: a
// mutated sharded corpus ranks bit-identically to a fresh build over the
// same records, and the epoch vector advances only on touched shards.
func TestShardedMutationDifferential(t *testing.T) {
	records := facadeRecords()
	sharded, err := OpenShardedCorpus(records[:50], 4)
	if err != nil {
		t.Fatal(err)
	}
	before := sharded.Epochs()
	if err := sharded.Insert(records[50:]...); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Delete(records[0].TID, records[3].TID); err != nil {
		t.Fatal(err)
	}
	replaced := Record{TID: records[7].TID, Text: "Replacement Systems Corporation"}
	if err := sharded.Upsert(replaced); err != nil {
		t.Fatal(err)
	}
	after := sharded.Epochs()
	touched := 0
	for i := range after {
		if after[i] > before[i] {
			touched++
		}
	}
	if touched == 0 {
		t.Fatal("mutations advanced no shard epoch")
	}

	fresh, err := OpenShardedCorpus(sharded.Records(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BM25", "Jaccard", "SoftTFIDF"} {
		mp, err := sharded.Predicate(name)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := fresh.Predicate(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []string{records[10].Text, replaced.Text, "zzz unmatched"} {
			got, err := mp.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fp.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s %q: mutated shards diverged from fresh build", name, q)
			}
		}
	}
}

// TestShardedMutationValidation checks that a bad batch is rejected up
// front, leaving every shard's epoch untouched.
func TestShardedMutationValidation(t *testing.T) {
	records := facadeRecords()[:20]
	sharded, err := OpenShardedCorpus(records, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := sharded.Epochs()
	cases := []error{
		sharded.Insert(Record{TID: records[0].TID, Text: "dup"}),
		sharded.Insert(Record{TID: 1000, Text: "a"}, Record{TID: 1000, Text: "b"}),
		sharded.Delete(99999),
		sharded.Delete(records[1].TID, records[1].TID),
	}
	for i, err := range cases {
		if err == nil {
			t.Fatalf("case %d: bad batch accepted", i)
		}
	}
	if !reflect.DeepEqual(sharded.Epochs(), before) {
		t.Fatal("rejected batches must leave every shard epoch untouched")
	}
	if sharded.Len() != len(records) {
		t.Fatalf("rejected batches changed Len: %d", sharded.Len())
	}
}

// TestShardedDeclarative attaches a declarative predicate across shards;
// the view must serialize probing and still match its own sequential run.
func TestShardedDeclarative(t *testing.T) {
	records := facadeRecords()[:20]
	sharded, err := OpenShardedCorpus(records, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sharded.Predicate("Jaccard", WithRealization(Declarative))
	if err != nil {
		t.Fatal(err)
	}
	if p.(interface{ ConcurrentProbeSafe() bool }).ConcurrentProbeSafe() {
		t.Fatal("declarative sharded view must not claim concurrent safety")
	}
	ms, err := p.Select(records[2].Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 || ms[0].TID != records[2].TID {
		t.Fatalf("declarative sharded self-query missed: %v", ms)
	}
}

// TestShardedOpenErrors covers constructor validation.
func TestShardedOpenErrors(t *testing.T) {
	if _, err := OpenShardedCorpus([]Record{{TID: 1}, {TID: 1}}, 2); err == nil ||
		!strings.Contains(err.Error(), "duplicate TID") {
		t.Fatalf("duplicate TIDs must be rejected: %v", err)
	}
	c, err := OpenCorpus(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardedCorpus(nil, 2, WithCorpus(c)); err == nil {
		t.Fatal("WithCorpus must be rejected by OpenShardedCorpus")
	}
}
