package approxsel

import "fmt"

// JoinPair is one result of an approximate join: a probe tuple matched to a
// base tuple with their similarity score.
type JoinPair struct {
	ProbeTID int
	BaseTID  int
	Score    float64
}

// ApproximateJoin evaluates the approximate join R ⋈_sim≥θ S the paper
// describes as the general operation behind approximate selection (§1):
// the base relation is the one the predicate was preprocessed over, and
// every probe record runs as a selection query. Pairs are returned grouped
// by probe record, each group ranked by decreasing score.
func ApproximateJoin(base Predicate, probe []Record, theta float64) ([]JoinPair, error) {
	var out []JoinPair
	for _, r := range probe {
		ms, err := SelectThreshold(base, r.Text, theta)
		if err != nil {
			return nil, fmt.Errorf("approxsel: join probe tid %d: %w", r.TID, err)
		}
		for _, m := range ms {
			out = append(out, JoinPair{ProbeTID: r.TID, BaseTID: m.TID, Score: m.Score})
		}
	}
	return out, nil
}

// SelfJoin evaluates the approximate self-join used for de-duplication:
// every record of the predicate's base relation probes the relation itself.
// Self pairs are dropped and each unordered pair is reported once, with
// the smaller TID first.
func SelfJoin(base Predicate, records []Record, theta float64) ([]JoinPair, error) {
	seen := make(map[[2]int]bool)
	var out []JoinPair
	for _, r := range records {
		ms, err := SelectThreshold(base, r.Text, theta)
		if err != nil {
			return nil, fmt.Errorf("approxsel: self-join tid %d: %w", r.TID, err)
		}
		for _, m := range ms {
			if m.TID == r.TID {
				continue
			}
			a, b := r.TID, m.TID
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, JoinPair{ProbeTID: a, BaseTID: b, Score: m.Score})
		}
	}
	return out, nil
}
