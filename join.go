package approxsel

import (
	"context"
	"errors"
	"fmt"
)

// JoinPair is one result of an approximate join: a probe tuple matched to a
// base tuple with their similarity score.
type JoinPair struct {
	ProbeTID int
	BaseTID  int
	Score    float64
}

// ApproximateJoin evaluates the approximate join R ⋈_sim≥θ S the paper
// describes as the general operation behind approximate selection (§1):
// the base relation is the one the predicate was preprocessed over, and
// every probe record runs as a selection query. Pairs are returned grouped
// by probe record, each group ranked by decreasing score.
//
// It is ApproximateJoinCtx with a background context and the default
// worker pool.
func ApproximateJoin(base Predicate, probe []Record, theta float64) ([]JoinPair, error) {
	return ApproximateJoinCtx(context.Background(), base, probe, theta)
}

// ApproximateJoinCtx is ApproximateJoin with context cancellation and batch
// options: the probe loop is embarrassingly parallel, so it runs on the
// SelectBatch worker pool (Workers sizes it). Results are identical to the
// sequential join regardless of worker count.
func ApproximateJoinCtx(ctx context.Context, base Predicate, probe []Record, theta float64, opts ...BatchOption) ([]JoinPair, error) {
	res, err := joinProbe(ctx, base, probe, theta, opts)
	if err != nil {
		return nil, err
	}
	var out []JoinPair
	for i, ms := range res {
		for _, m := range ms {
			out = append(out, JoinPair{ProbeTID: probe[i].TID, BaseTID: m.TID, Score: m.Score})
		}
	}
	return out, nil
}

// SelfJoin evaluates the approximate self-join used for de-duplication:
// every record of the predicate's base relation probes the relation itself.
// Self pairs are dropped and each unordered pair is reported once, with
// the smaller TID first.
//
// It is SelfJoinCtx with a background context and the default worker pool.
func SelfJoin(base Predicate, records []Record, theta float64) ([]JoinPair, error) {
	return SelfJoinCtx(context.Background(), base, records, theta)
}

// SelfJoinCtx is SelfJoin with context cancellation and batch options,
// probing through the SelectBatch worker pool. Results are identical to the
// sequential self-join regardless of worker count.
func SelfJoinCtx(ctx context.Context, base Predicate, records []Record, theta float64, opts ...BatchOption) ([]JoinPair, error) {
	res, err := joinProbe(ctx, base, records, theta, opts)
	if err != nil {
		return nil, err
	}
	seen := make(map[[2]int]bool)
	var out []JoinPair
	for i, ms := range res {
		for _, m := range ms {
			if m.TID == records[i].TID {
				continue
			}
			a, b := records[i].TID, m.TID
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, JoinPair{ProbeTID: a, BaseTID: b, Score: m.Score})
		}
	}
	return out, nil
}

// joinProbe runs every probe record as a thresholded selection through the
// batch worker pool, returning per-probe rankings in probe order. The
// join's theta argument is applied after the caller's options, so a
// stray Threshold option cannot silently override it.
func joinProbe(ctx context.Context, base Predicate, probe []Record, theta float64, opts []BatchOption) ([][]Match, error) {
	queries := make([]string, len(probe))
	for i, r := range probe {
		queries[i] = r.Text
	}
	batchOpts := make([]BatchOption, 0, len(opts)+1)
	batchOpts = append(batchOpts, opts...)
	batchOpts = append(batchOpts, Threshold(theta))
	res, err := SelectBatch(ctx, base, queries, batchOpts...)
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) && be.Query >= 0 && be.Query < len(probe) {
			return nil, fmt.Errorf("approxsel: join probe tid %d: %w", probe[be.Query].TID, be.Err)
		}
		return nil, fmt.Errorf("approxsel: join: %w", err)
	}
	return res, nil
}
