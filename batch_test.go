package approxsel

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func batchQueries(records []Record) []string {
	qs := make([]string, 0, len(records)+1)
	for _, r := range records {
		qs = append(qs, r.Text)
	}
	return append(qs, "zzzz qqqq unmatched")
}

// sequentialSelect is the reference SelectBatch: one probe at a time.
func sequentialSelect(t *testing.T, p Predicate, queries []string, opts ...SelectOption) [][]Match {
	t.Helper()
	out := make([][]Match, len(queries))
	for i, q := range queries {
		ms, err := SelectCtx(context.Background(), p, q, opts...)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ms
	}
	return out
}

// TestSelectBatchMatchesSequential checks the acceptance contract: a batch
// probed by N workers returns results identical to sequential probing.
func TestSelectBatchMatchesSequential(t *testing.T) {
	records := facadeRecords()
	queries := batchQueries(records)
	for _, name := range []string{"BM25", "Jaccard", "EditDistance", "SoftTFIDF"} {
		p, err := New(name, records)
		if err != nil {
			t.Fatal(err)
		}
		want := sequentialSelect(t, p, queries)
		for _, workers := range []int{1, 2, 8} {
			got, err := SelectBatch(context.Background(), p, queries, Workers(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s workers=%d: batch diverged from sequential", name, workers)
			}
		}
	}
}

// TestSelectBatchDeclarative checks that the declarative realization, which
// does not declare concurrent probing safe, still yields sequential-equal
// results under a large requested worker count (it is serialized).
func TestSelectBatchDeclarative(t *testing.T) {
	records := facadeRecords()[:20]
	queries := batchQueries(records)
	p, err := New("Jaccard", records, WithRealization(Declarative))
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialSelect(t, p, queries)
	got, err := SelectBatch(context.Background(), p, queries, Workers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("declarative batch diverged from sequential")
	}
}

// TestSelectBatchProbeOptions checks that per-probe options apply to every
// query of the batch.
func TestSelectBatchProbeOptions(t *testing.T) {
	records := facadeRecords()
	queries := batchQueries(records)
	p, err := New("BM25", records)
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialSelect(t, p, queries, Limit(3), Threshold(0))
	got, err := SelectBatch(context.Background(), p, queries, Workers(4), Limit(3), Threshold(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("batch with probe options diverged from sequential")
	}
	for _, ms := range got {
		if len(ms) > 3 {
			t.Fatalf("limit not applied: %d matches", len(ms))
		}
		for _, m := range ms {
			if m.Score < 0 {
				t.Fatalf("threshold not applied: %+v", m)
			}
		}
	}
}

func TestSelectBatchEmpty(t *testing.T) {
	p, err := New("Jaccard", facadeRecords()[:5])
	if err != nil {
		t.Fatal(err)
	}
	got, err := SelectBatch(context.Background(), p, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v %v", got, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SelectBatch(ctx, p, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled empty batch: %v", err)
	}
}

func TestSelectBatchPreCancelled(t *testing.T) {
	p, err := New("Jaccard", facadeRecords()[:5])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SelectBatch(ctx, p, []string{"a", "b"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled batch must fail with context.Canceled, got %v", err)
	}
}

// slowPredicate blocks each probe briefly and counts probes; it declares
// concurrent probing safe so the pool actually fans out.
type slowPredicate struct {
	probes  atomic.Int64
	started chan struct{}
	once    atomic.Bool
}

func (p *slowPredicate) Name() string              { return "slow" }
func (p *slowPredicate) ConcurrentProbeSafe() bool { return true }

func (p *slowPredicate) Select(string) ([]Match, error) {
	if p.once.CompareAndSwap(false, true) {
		close(p.started)
	}
	p.probes.Add(1)
	time.Sleep(2 * time.Millisecond)
	return []Match{{TID: 1, Score: 1}}, nil
}

// TestSelectBatchCancellationPrompt cancels a long batch once probing has
// started and checks it returns promptly, without draining the queue.
func TestSelectBatchCancellationPrompt(t *testing.T) {
	p := &slowPredicate{started: make(chan struct{})}
	queries := make([]string, 5000)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-p.started
		cancel()
	}()
	start := time.Now()
	_, err := SelectBatch(ctx, p, queries, Workers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch must fail with context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	if n := p.probes.Load(); n == int64(len(queries)) {
		t.Fatal("cancellation drained the whole queue")
	}
}

// failingPredicate errors on one specific query.
type failingPredicate struct{}

func (failingPredicate) Name() string              { return "failing" }
func (failingPredicate) ConcurrentProbeSafe() bool { return true }

func (failingPredicate) Select(q string) ([]Match, error) {
	if q == "boom" {
		return nil, fmt.Errorf("exploded")
	}
	return []Match{{TID: 1, Score: 1}}, nil
}

func TestSelectBatchError(t *testing.T) {
	_, err := SelectBatch(context.Background(), failingPredicate{},
		[]string{"a", "boom", "b"}, Workers(2))
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("batch must surface the probe error, got %v", err)
	}
}

// racingFailures fails on every query whose text says so; "fast" failures
// return immediately while lower-indexed "slow" failures take longer, so a
// race-based error report would name the wrong query.
type racingFailures struct{}

func (racingFailures) Name() string              { return "racing" }
func (racingFailures) ConcurrentProbeSafe() bool { return true }

func (racingFailures) Select(q string) ([]Match, error) {
	switch {
	case strings.HasPrefix(q, "slowfail"):
		time.Sleep(5 * time.Millisecond)
		return nil, fmt.Errorf("failed %s", q)
	case strings.HasPrefix(q, "fastfail"):
		return nil, fmt.Errorf("failed %s", q)
	}
	return []Match{{TID: 1, Score: 1}}, nil
}

// TestSelectBatchErrorDeterministic checks the BatchError contract: the
// reported query is always the lowest-indexed failing probe, even when a
// later probe fails first on the wall clock.
func TestSelectBatchErrorDeterministic(t *testing.T) {
	queries := []string{"ok", "slowfail-1", "ok", "ok", "fastfail-4", "ok", "fastfail-6"}
	for _, workers := range []int{1, 2, 4, 8} {
		for round := 0; round < 5; round++ {
			_, err := SelectBatch(context.Background(), racingFailures{}, queries, Workers(workers))
			var be *BatchError
			if !errors.As(err, &be) {
				t.Fatalf("workers=%d: want *BatchError, got %v", workers, err)
			}
			if be.Query != 1 {
				t.Fatalf("workers=%d round=%d: want lowest failing query 1, got %d (%v)",
					workers, round, be.Query, err)
			}
		}
	}
}

// TestBatchErrorUnwrap checks that errors.Is/errors.As see through
// BatchError to the probe's cause, end to end through the join path too.
func TestBatchErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel cause")
	p := probeErr{err: sentinel}
	_, err := SelectBatch(context.Background(), p, []string{"a", "b"}, Workers(2))
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is must reach the probe cause through BatchError, got %v", err)
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Query != 0 || be.Unwrap() != sentinel {
		t.Fatalf("errors.As/Unwrap mismatch: %v", err)
	}

	// The joins wrap the same failure naming the probe TID; the cause must
	// still be reachable.
	_, err = ApproximateJoin(p, []Record{{TID: 7, Text: "x"}}, 0.5)
	if !errors.Is(err, sentinel) {
		t.Fatalf("join must keep the probe cause reachable, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "tid 7") {
		t.Fatalf("join error must name the probe tid, got %v", err)
	}
}

// probeErr fails every probe with a fixed error.
type probeErr struct{ err error }

func (probeErr) Name() string                     { return "probeErr" }
func (probeErr) ConcurrentProbeSafe() bool        { return true }
func (p probeErr) Select(string) ([]Match, error) { return nil, p.err }
