package approxsel

import (
	"fmt"
	"sync"
	"testing"
)

// TestCloseStoreDrainAtomic is the regression test for the graceful-drain
// race: CloseStore used to seal shard WALs without holding the corpus
// mutation lock, so a mutation racing the drain could append to some
// shards' logs and fail on already-sealed ones — a durably half-applied
// batch that a cold start would replay even though the writer was never
// acked. With the drain serialized behind the mutation lock, every
// mutation either lands on all its shards before the first log seals or
// fails on all of them: the reopened epoch vector must exactly equal the
// vector of the last acknowledged mutation.
func TestCloseStoreDrainAtomic(t *testing.T) {
	recs := dirtyWatchData(t)
	for round := 0; round < 8; round++ {
		dir := t.TempDir()
		sc, err := OpenShardedCorpus(recs[:40], 4, WithDataDir(dir))
		if err != nil {
			t.Fatalf("open: %v", err)
		}

		var mu sync.Mutex
		var acked []uint64 // epoch vector after the last successful mutation
		acked = append([]uint64(nil), sc.Epochs()...)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				// Multi-record upserts spread one batch across several
				// shards — the shape that could half-land.
				batch := []Record{
					{TID: recs[i%40].TID, Text: fmt.Sprintf("corp %d alpha", i)},
					{TID: recs[(i+7)%40].TID, Text: fmt.Sprintf("corp %d beta", i)},
					{TID: recs[(i+13)%40].TID, Text: fmt.Sprintf("corp %d gamma", i)},
				}
				if err := sc.Upsert(batch...); err != nil {
					// The store sealed under us — expected. Whatever the
					// error shape, the invariant below is the judge: the
					// durable state must match the last acked vector.
					return
				}
				mu.Lock()
				acked = append(acked[:0], sc.Epochs()...)
				mu.Unlock()
			}
		}()

		// Drain while the mutator is mid-flight. No sleep calibration: on
		// any interleaving the invariant below must hold.
		if err := sc.CloseStore(); err != nil {
			t.Fatalf("close: %v", err)
		}
		<-done

		re, err := OpenShardedCorpus(nil, 0, WithDataDir(dir))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		got := re.Epochs()
		mu.Lock()
		want := append([]uint64(nil), acked...)
		mu.Unlock()
		if len(got) != len(want) {
			t.Fatalf("round %d: reopened %d shards, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: reopened at %v, last acked %v — a batch half-landed across the drain", round, got, want)
			}
		}
		if err := re.CloseStore(); err != nil {
			t.Fatalf("final close: %v", err)
		}
	}
}
