package approxsel

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/core"
)

// batchSettings is the state assembled by BatchOptions: the worker-pool
// size and the per-probe selection options shared by every query.
type batchSettings struct {
	workers int
	sel     core.SelectOptions
}

// BatchError is the error SelectBatch returns when one probe fails: it
// records which query failed so callers (the joins, which probe records)
// can name the culprit. It unwraps to the probe's own error, so
// errors.Is/errors.As see through it to the cause.
//
// The reported query is deterministic: always the lowest-indexed failing
// probe, never whichever worker happened to lose the scheduling race.
type BatchError struct {
	// Query is the index into the queries slice of the failing probe.
	Query int
	Err   error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("approxsel: batch query %d: %v", e.Query, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// SelectBatch probes one predicate with many queries through a worker pool
// and returns one ranked match slice per query, in query order. Results are
// identical to probing sequentially: workers only decide which query runs
// where, never the per-query ranking.
//
// The pool size comes from Workers (default GOMAXPROCS). Predicates that do
// not declare concurrent probing safe (the declarative realization, whose
// predicates share mutable query tables in their SQL database) are probed
// by a single worker regardless. Per-probe options (Limit, Threshold) apply
// to every query of the batch.
//
// Cancellation is honored at query granularity: when ctx is cancelled,
// workers finish their in-flight probe, pending queries are abandoned, and
// the context error is returned.
//
// When a probe fails, the returned *BatchError names the lowest-indexed
// failing query deterministically: probes before that index still run (one
// of them could fail earlier in query order), probes after it are skipped.
func SelectBatch(ctx context.Context, p Predicate, queries []string, opts ...BatchOption) ([][]Match, error) {
	var b batchSettings
	for _, o := range opts {
		o.applyBatch(&b)
	}
	workers := b.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !core.ConcurrentSafe(p) {
		workers = 1
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]Match, len(queries))
	idx, err := core.RunJobs(ctx, len(queries), workers, func(i int) error {
		ms, err := core.SelectWithOptions(ctx, p, queries[i], b.sel)
		if err != nil {
			return err
		}
		out[i] = ms
		return nil
	})
	if err != nil {
		// A cancellation is the batch's failure, not any one query's:
		// return the bare context error rather than pinning it on whichever
		// probe happened to observe it first.
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			return nil, ctxErr
		}
		return nil, &BatchError{Query: idx, Err: err}
	}
	// The feeder may have stopped on parent cancellation while every
	// in-flight probe finished cleanly; don't report a partial batch as
	// complete.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
