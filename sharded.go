package approxsel

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/watch"
)

// ShardedCorpus partitions the base relation across N shared Corpus shards
// by a stable hash of the TID, so that preprocessing, mutation maintenance
// and probing all parallelize across cores instead of serializing on one
// snapshot. Shards are ordinary core corpora: attached predicates fan each
// selection out to every shard on the SelectBatch worker pool and merge the
// per-shard top-k rankings with a k-way heap, mutations route each record
// to its home shard, and every shard keeps its own mutation epoch — the
// epoch vector (Epochs) identifies one global version of the relation, the
// invalidation key of the serving subsystem's result cache.
//
// Collection statistics (document frequencies, idf, average document
// length) are computed per shard, the standard practice of partitioned
// search engines: with one shard the scores are bit-identical to an
// unsharded Corpus, and with more shards they converge to it as shards
// grow. The merge itself is deterministic for any shard count.
//
// A ShardedCorpus is safe for concurrent use under the same contract as
// Corpus: selections read immutable per-shard snapshots, mutations are
// serialized and publish atomically per shard.
type ShardedCorpus struct {
	cfg    Config
	shards []*core.Corpus
	mu     sync.Mutex // serializes mutations across shards

	// root and logs hold the approxstore attachment when the corpus was
	// opened with WithDataDir: one per-shard write-ahead log under one
	// manifest keyed by the shard-epoch vector. Both are nil/empty for a
	// purely in-memory corpus.
	root string
	logs []*store.Log

	// hub fans the mutation stream out to registered watches (approxwatch);
	// always set, idle until the first RegisterWatch. seq numbers logical
	// mutation batches corpus-wide, so every shard's sub-batch (and WAL
	// entry) of one mutation carries the same sequence number; it resumes
	// past the largest logged sequence on a durable open.
	hub *watch.Hub
	seq atomic.Uint64

	// replObs, when set, receives every applied logical batch — the
	// replication source hook of approxcluster (SetReplicationObserver).
	replObs func(watch.Batch)
}

// OpenShardedCorpus tokenizes the base relation once, partitioned across
// the given number of shards (values < 1 select GOMAXPROCS) and built in
// parallel. Options adjust the tokenization parameters exactly as in
// OpenCorpus.
func OpenShardedCorpus(records []Record, shards int, opts ...BuildOption) (*ShardedCorpus, error) {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	settings := core.BuildSettings{
		Config:      core.DefaultConfig(),
		Realization: string(Native),
	}
	for _, o := range opts {
		o.ApplyBuild(&settings)
	}
	if settings.Corpus != nil {
		return nil, fmt.Errorf("approxsel: WithCorpus is not a valid OpenShardedCorpus option")
	}
	if root := settings.DataDir; root != "" {
		// Durable sharded corpus: an existing manifest wins over the records
		// and shard-count arguments — the stored layout fixes both (a record's
		// home shard must never change across restarts).
		if store.HasManifest(root) {
			return openStoredShards(root)
		}
		if store.Exists(root) {
			return nil, fmt.Errorf("approxsel: %s holds a plain corpus store; open it with OpenCorpus", root)
		}
		s, err := buildShards(records, shards, settings.Config)
		if err != nil {
			return nil, err
		}
		if err := s.attachStore(root); err != nil {
			return nil, err
		}
		return s, nil
	}
	return buildShards(records, shards, settings.Config)
}

// buildShards partitions and tokenizes the relation across shards in
// parallel — the in-memory construction path of OpenShardedCorpus.
func buildShards(records []Record, shards int, cfg Config) (*ShardedCorpus, error) {
	parts := make([][]Record, shards)
	for _, r := range records {
		i := shardOf(r.TID, shards)
		parts[i] = append(parts[i], r)
	}
	s := &ShardedCorpus{cfg: cfg, shards: make([]*core.Corpus, shards)}
	_, err := core.RunJobs(context.Background(), shards, 0, func(i int) error {
		c, err := core.NewCorpus(parts[i], cfg, core.AllLayers)
		if err != nil {
			return err
		}
		s.shards[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.initWatchHub(s.Records(), s.Epochs(), nil)
	return s, nil
}

// attachStore initializes root as the data directory of a freshly built
// sharded corpus: one store per shard, then the manifest naming the layout
// and the shard-epoch vector.
func (s *ShardedCorpus) attachStore(root string) error {
	s.root = root
	s.logs = make([]*store.Log, len(s.shards))
	_, err := core.RunJobs(context.Background(), len(s.shards), 0, func(i int) error {
		l, err := store.Create(store.ShardDir(root, i), s.shards[i])
		if err != nil {
			return err
		}
		s.logs[i] = l
		return nil
	})
	if err != nil {
		return err
	}
	return store.WriteManifest(root, store.Manifest{Version: 1, Shards: len(s.shards), Epochs: s.Epochs(), Seq: s.seq.Load()})
}

// openStoredShards restores a sharded corpus from its manifest: every shard
// loads its newest segment and replays its WAL in parallel, reaching the
// exact pre-crash shard-epoch vector.
func openStoredShards(root string) (*ShardedCorpus, error) {
	m, err := store.ReadManifest(root)
	if err != nil {
		return nil, err
	}
	s := &ShardedCorpus{
		root:   root,
		shards: make([]*core.Corpus, m.Shards),
		logs:   make([]*store.Log, m.Shards),
	}
	_, err = core.RunJobs(context.Background(), m.Shards, 0, func(i int) error {
		l, err := store.Open(store.ShardDir(root, i))
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards[i] = l.Corpus()
		s.logs[i] = l
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The manifest's epoch vector names the global version of the last
	// checkpoint; every shard must replay to at least it. A shard below it
	// regressed — a corrupt newest segment fell back to an older one whose
	// WAL a checkpoint already truncated — and serving a cross-shard-
	// inconsistent corpus as if healthy is worse than failing the start.
	for i, c := range s.shards {
		if c.Epoch() < m.Epochs[i] {
			return nil, fmt.Errorf("approxsel: shard %d replayed to epoch %d, below the manifest's checkpoint epoch %d — its store has lost acknowledged state", i, c.Epoch(), m.Epochs[i])
		}
	}
	s.cfg = s.shards[0].Config()
	// Seed the watch hub from the per-shard WAL replay windows, regrouped
	// into logical batches by sequence number: a watch resuming across the
	// restart replays the missed events, and the batch counter continues
	// past the largest sequence any shard logged.
	base := make([]core.Record, 0)
	baseEpochs := make([]uint64, m.Shards)
	perShard := make([][]core.Mutation, m.Shards)
	var maxSeq uint64
	for i, l := range s.logs {
		b, muts := l.TakeReplay()
		base = append(base, b...)
		perShard[i] = muts
		baseEpochs[i] = l.Stats().SnapshotEpoch
		if ms := l.MaxSeq(); ms > maxSeq {
			maxSeq = ms
		}
	}
	// The batch counter resumes past the largest sequence any shard logged
	// or the manifest checkpointed (the WAL truncates at a checkpoint, so
	// the manifest carries the floor across it).
	if m.Seq > maxSeq {
		maxSeq = m.Seq
	}
	s.seq.Store(maxSeq)
	s.initWatchHub(base, baseEpochs, watch.GroupBatches(perShard))
	return s, nil
}

// shardOf maps a TID to its home shard with a splitmix64-style finalizer,
// so consecutive TIDs spread evenly and a record's shard never changes.
func shardOf(tid, shards int) int {
	x := uint64(tid)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// Shards returns the shard count.
func (s *ShardedCorpus) Shards() int { return len(s.shards) }

// Len returns the current number of records across all shards.
func (s *ShardedCorpus) Len() int {
	n := 0
	for _, c := range s.shards {
		n += c.Len()
	}
	return n
}

// Epochs returns the per-shard mutation epoch vector. Two equal vectors
// identify bit-identical relation state: any Insert/Delete/Upsert advances
// the epoch of every shard it touches.
func (s *ShardedCorpus) Epochs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, c := range s.shards {
		out[i] = c.Epoch()
	}
	return out
}

// State returns the record count and the epoch vector as one consistent
// pair: it serializes against mutations, so the two values always describe
// the same version of the relation (Len and Epochs called separately can
// straddle a concurrent mutation).
func (s *ShardedCorpus) State() (int, []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Len(), s.Epochs()
}

// Records returns a copy of the current base relation, in shard order and
// per-shard storage order (not global insertion order).
func (s *ShardedCorpus) Records() []Record {
	var out []Record
	for _, c := range s.shards {
		out = append(out, c.Records()...)
	}
	return out
}

// Config returns the configuration the sharded corpus was opened with.
func (s *ShardedCorpus) Config() Config { return s.cfg }

// Predicate attaches the named predicate to every shard, resolving the
// name through the predicate registry exactly like Corpus.Predicate, and
// returns a view that fans selections out across the shards and merges the
// per-shard rankings. Options may change scoring-level parameters only.
func (s *ShardedCorpus) Predicate(name string, opts ...BuildOption) (Predicate, error) {
	settings := core.BuildSettings{
		Config:      s.cfg,
		Realization: string(Native),
	}
	for _, o := range opts {
		o.ApplyBuild(&settings)
	}
	if settings.Corpus != nil {
		return nil, fmt.Errorf("approxsel: WithCorpus is not a valid ShardedCorpus.Predicate option")
	}
	v := &shardedView{name: name, views: make([]Predicate, len(s.shards)), safe: true}
	for i, c := range s.shards {
		p, err := attachToCorpus(c, Realization(settings.Realization), name, settings.Config)
		if err != nil {
			return nil, err
		}
		v.views[i] = p
		if !core.ConcurrentSafe(p) {
			v.safe = false
		}
	}
	return v, nil
}

// ---- mutations ----

// Insert adds records, each routed to its home shard; inserting an
// existing TID is an error and the whole batch is rejected up front.
func (s *ShardedCorpus) Insert(records ...Record) error {
	return s.mutate(records, nil, false)
}

// Delete removes records by TID; deleting an unknown TID is an error and
// the whole batch is rejected up front.
func (s *ShardedCorpus) Delete(tids ...int) error {
	return s.mutate(nil, tids, false)
}

// Upsert inserts records, replacing any existing record with the same TID.
func (s *ShardedCorpus) Upsert(records ...Record) error {
	return s.mutate(records, nil, true)
}

// mutate validates the whole batch against current state first — so a bad
// batch leaves every shard untouched — then applies the per-shard slices in
// parallel. Shards untouched by the batch keep their epoch; touched shards
// advance.
func (s *ShardedCorpus) mutate(add []Record, del []int, upsert bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.shards)
	addBy := make([][]Record, n)
	delBy := make([][]int, n)
	seen := make(map[int]bool, len(add)+len(del))
	for _, tid := range del {
		if seen[tid] {
			return fmt.Errorf("approxsel: duplicate TID %d in delete", tid)
		}
		seen[tid] = true
		sh := shardOf(tid, n)
		if _, ok := s.shards[sh].Snapshot().Index(tid); !ok {
			return fmt.Errorf("approxsel: delete of unknown TID %d", tid)
		}
		delBy[sh] = append(delBy[sh], tid)
	}
	// A batch is adds XOR deletes (Insert/Upsert/Delete each pass one), so
	// a repeated TID here is always a duplicate within the add batch.
	op := "insert"
	if upsert {
		op = "upsert"
	}
	for _, r := range add {
		if seen[r.TID] {
			return fmt.Errorf("approxsel: duplicate TID %d in %s", r.TID, op)
		}
		seen[r.TID] = true
		sh := shardOf(r.TID, n)
		if _, ok := s.shards[sh].Snapshot().Index(r.TID); ok && !upsert {
			return fmt.Errorf("approxsel: insert of existing TID %d (use Upsert to replace)", r.TID)
		}
		addBy[sh] = append(addBy[sh], r)
	}
	seq := s.seq.Add(1)
	applied := make([]bool, n)
	_, err := core.RunJobs(context.Background(), n, 0, func(i int) error {
		if len(addBy[i]) == 0 && len(delBy[i]) == 0 {
			return nil
		}
		// A batch is adds XOR deletes, so each shard's sub-batch is one
		// atomic core mutation: a shard either fully applied or is
		// untouched.
		if len(delBy[i]) > 0 {
			if err := s.shards[i].Delete(delBy[i]...); err != nil {
				return err
			}
		} else if upsert {
			if err := s.shards[i].Upsert(addBy[i]...); err != nil {
				return err
			}
		} else if err := s.shards[i].Insert(addBy[i]...); err != nil {
			return err
		}
		applied[i] = true
		return nil
	})
	// Tell the watch hub exactly what landed — on a partial failure, only
	// the applied shards' sub-batches — before reporting the outcome, so
	// its view of the relation never diverges from the corpus.
	if s.hub != nil {
		var subs []watch.SubMutation
		for i := 0; i < n; i++ {
			if !applied[i] {
				continue
			}
			kind := core.MutationInsert
			if len(delBy[i]) > 0 {
				kind = core.MutationDelete
			} else if upsert {
				kind = core.MutationUpsert
			}
			subs = append(subs, watch.SubMutation{Shard: i, Kind: kind, Add: addBy[i], Del: delBy[i], Epoch: s.shards[i].Epoch()})
		}
		if len(subs) > 0 {
			s.hub.OnBatch(watch.Batch{Seq: seq, Subs: subs})
			// The replication source hook ships exactly what the hub saw:
			// the sub-batches that actually landed, stamped with their
			// post-apply epochs and the shared sequence number.
			if s.replObs != nil {
				s.replObs(watch.Batch{Seq: seq, Subs: subs})
			}
		}
	}
	if err != nil {
		// Validation ran up front against every shard, so a failure here is
		// a persistence/internal error after some shards may already have
		// applied (and logged) their sub-batches. That partial state must
		// not masquerade as a cleanly-retryable failure: report it
		// explicitly so callers (and the server's status mapping) can tell
		// "nothing happened, retry" from "the batch is half-landed".
		var partial []int
		for i, ok := range applied {
			if ok {
				partial = append(partial, i)
			}
		}
		if len(partial) > 0 {
			return &PartialMutationError{Err: err, Applied: partial}
		}
		return err
	}
	return nil
}

// ---- the fan-out predicate view ----

// shardedView is the predicate ShardedCorpus.Predicate returns: one
// epoch-refreshing corpus view per shard, probed concurrently on the
// SelectBatch worker pool, with the per-shard rankings heap-merged into the
// global SortMatches order. Limits and thresholds push down into every
// shard unchanged: the global top k is a subset of the union of per-shard
// top k's, and the merge stops after k.
type shardedView struct {
	name  string
	views []Predicate
	safe  bool
}

// Name implements core.Predicate.
func (v *shardedView) Name() string { return v.name }

// Select implements core.Predicate with the full global ranking.
func (v *shardedView) Select(query string) ([]Match, error) {
	return v.SelectCtx(context.Background(), query, core.SelectOptions{})
}

// SelectCtx implements core.ContextPredicate: the query fans out to every
// shard with the options pushed down, and the merged result is identical
// for any worker schedule.
func (v *shardedView) SelectCtx(ctx context.Context, query string, opts core.SelectOptions) ([]Match, error) {
	if opts.Limit < 0 {
		return nil, fmt.Errorf("approxsel: negative selection limit %d", opts.Limit)
	}
	workers := 0 // GOMAXPROCS
	if !v.safe {
		workers = 1
	}
	// Traced requests get one span per shard probe under a "fanout" parent
	// and a "merge" span for the cross-shard heap merge; untraced requests
	// pay one atomic load per StartSpan.
	fanCtx, fan := obs.StartSpan(ctx, "fanout")
	per := make([][]Match, len(v.views))
	_, err := core.RunJobs(ctx, len(v.views), workers, func(i int) error {
		shCtx, sp := obs.StartSpan(fanCtx, "shard.select")
		if sp != nil {
			sp.SetAttr("shard", strconv.Itoa(i))
			defer sp.End()
		}
		ms, err := core.SelectWithOptions(shCtx, v.views[i], query, opts)
		if err != nil {
			return err
		}
		per[i] = ms
		return nil
	})
	fan.End()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, mg := obs.StartSpan(ctx, "merge")
	ms := core.MergeRanked(per, opts.Limit)
	mg.End()
	return ms, nil
}

// ConcurrentProbeSafe implements core.ConcurrentProber: a sharded view is
// as safe as the least safe of its shard views.
func (v *shardedView) ConcurrentProbeSafe() bool { return v.safe }

// PreprocessPhases implements core.Phased with the summed per-shard phases
// (the total work; shards overlap on the wall clock).
func (v *shardedView) PreprocessPhases() (time.Duration, time.Duration) {
	var tok, w time.Duration
	for _, p := range v.views {
		if ph, ok := p.(core.Phased); ok {
			t0, w0 := ph.PreprocessPhases()
			tok += t0
			w += w0
		}
	}
	return tok, w
}
