package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// This file is the server's observability surface: the instrumentation
// middleware wrapping every route (request IDs, trace roots, per-endpoint
// counters and latency histograms, the structured access log, slow-query
// retention), plus the GET /metrics Prometheus exposition and the
// GET /v1/slowlog span-tree dump.

// reqInfo is the per-request record the middleware and handlers share
// through the request context: the middleware assigns identity and route,
// handlers fill in what they learned (corpus, predicate, shard count,
// cache outcome), and the access log line renders it all after the
// response is written.
type reqInfo struct {
	id        string
	route     string
	corpus    string
	predicate string
	shards    int
	cache     string // "hit", "miss", or "" when no probe ran
}

type reqInfoKey struct{}

// requestInfo returns the context's request record; handlers outside the
// instrumented chain (none today) get a throwaway so call sites never nil
// check.
func requestInfo(ctx context.Context) *reqInfo {
	if ri, ok := ctx.Value(reqInfoKey{}).(*reqInfo); ok {
		return ri
	}
	return &reqInfo{}
}

// statusWriter captures the response status for the access log and error
// counters while passing Flush through for SSE streams.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		if w.status == 0 {
			w.status = http.StatusOK
		}
		fl.Flush()
	}
}

// instrument is the outermost middleware of every named route: it assigns
// the request ID (honoring a client-supplied X-Request-Id) and echoes it
// as the X-Request-Id response header, starts the sampled trace root,
// counts the request per endpoint, observes its latency, retains slow
// traces, and writes one structured access-log line per request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	c := s.met.endpoint(route)
	dur := s.met.endpointDuration(route)
	return func(w http.ResponseWriter, r *http.Request) {
		c.Add(1)
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		ri := &reqInfo{id: id, route: route}
		ctx := context.WithValue(r.Context(), reqInfoKey{}, ri)
		ctx, root := obs.StartTrace(ctx, route, id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		dur.Observe(elapsed)
		if root != nil {
			root.SetAttr("id", id)
			if ri.corpus != "" {
				root.SetAttr("corpus", ri.corpus)
			}
			if ri.predicate != "" {
				root.SetAttr("predicate", ri.predicate)
			}
			tr := root.Trace()
			tr.Finish()
			s.slow.Offer(tr.Snapshot())
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.accessLog(ri, sw.status, elapsed)
	}
}

// accessLog writes the one-line structured (logfmt) record of a request:
// request ID, route, HTTP status, latency, shard count and cache outcome.
func (s *Server) accessLog(ri *reqInfo, status int, elapsed time.Duration) {
	w := s.cfg.AccessLog
	if w == nil {
		return
	}
	line := fmt.Sprintf("ts=%s id=%s route=%s status=%d dur_us=%d corpus=%s predicate=%s shards=%d cache=%s\n",
		time.Now().UTC().Format(time.RFC3339Nano), ri.id, ri.route, status, elapsed.Microseconds(),
		orDash(ri.corpus), orDash(ri.predicate), ri.shards, orDash(ri.cache))
	s.alogMu.Lock()
	io.WriteString(w, line)
	s.alogMu.Unlock()
}

func orDash(v string) string {
	if v == "" {
		return "-"
	}
	return v
}

// handleMetrics serves the unified registry in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.met.reg.WritePrometheus(w)
}

// SlowLogResponse is the GET /v1/slowlog payload: the retained slowest
// traces, slowest first, each with its full span tree.
type SlowLogResponse struct {
	SampleEvery int                 `json:"sample_every"`
	Entries     []obs.TraceSnapshot `json:"entries"`
}

func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SlowLogResponse{
		SampleEvery: obs.TraceSampling(),
		Entries:     s.slow.Snapshot(),
	})
}

// TraceStats is the trace block of /v1/stats: sampling configuration,
// retention counters, and the process-wide per-stage latency aggregates
// (the per-stage attribution future hot-path work baselines against).
type TraceStats struct {
	SampleEvery    int                     `json:"sample_every"`
	Sampled        uint64                  `json:"sampled"`
	SlowLogEntries int                     `json:"slowlog_entries"`
	Stages         map[string]obs.StageAgg `json:"stages"`
}

func (s *Server) traceStats() TraceStats {
	return TraceStats{
		SampleEvery:    obs.TraceSampling(),
		Sampled:        obs.TracesSampled(),
		SlowLogEntries: s.slow.Len(),
		Stages:         obs.StageAggregates(),
	}
}

// registerServerMetrics adds the gauges that read live server state —
// cache, watch and store aggregates across corpora — to the registry.
// They are registered once per server; reads take the corpora lock
// exactly like /v1/stats.
func (s *Server) registerServerMetrics() {
	reg := s.met.reg
	cacheTotal := func(f func(CacheStats) float64) func() float64 {
		return func() float64 { return f(s.cacheTotals()) }
	}
	reg.GaugeFunc("approx_cache_hits_total", "result-cache hits across corpora",
		cacheTotal(func(c CacheStats) float64 { return float64(c.Hits) }))
	reg.GaugeFunc("approx_cache_misses_total", "result-cache misses across corpora",
		cacheTotal(func(c CacheStats) float64 { return float64(c.Misses) }))
	reg.GaugeFunc("approx_cache_evictions_total", "result-cache evictions across corpora",
		cacheTotal(func(c CacheStats) float64 { return float64(c.Evictions) }))
	reg.GaugeFunc("approx_cache_entries", "live result-cache entries across corpora",
		cacheTotal(func(c CacheStats) float64 { return float64(c.Entries) }))

	watchTotal := func(f func(WatchStats) float64) func() float64 {
		return func() float64 { return f(s.watchTotals()) }
	}
	reg.GaugeFunc("approx_watch_active", "registered standing queries",
		watchTotal(func(ws WatchStats) float64 { return float64(ws.Active) }))
	reg.GaugeFunc("approx_watch_events_emitted_total", "watch events delivered or preloaded",
		watchTotal(func(ws WatchStats) float64 { return float64(ws.EventsEmitted) }))
	reg.GaugeFunc("approx_watch_events_replayed_total", "watch events replayed for resuming clients",
		watchTotal(func(ws WatchStats) float64 { return float64(ws.EventsReplayed) }))
	reg.GaugeFunc("approx_watch_max_lag_epochs", "widest consumer lag over active watches",
		watchTotal(func(ws WatchStats) float64 { return float64(ws.MaxLagEpochs) }))
	reg.GaugeFunc("approx_watch_derive_us_total", "cumulative watch event derivation time",
		watchTotal(func(ws WatchStats) float64 { return float64(ws.DeriveUS) }))

	reg.GaugeFunc("approx_corpora", "loaded corpora", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.corpora))
	})
	if s.cfg.DataDir != "" {
		reg.GaugeFunc("approx_wal_entries", "un-checkpointed WAL entries across corpora", func() float64 {
			total := 0
			for _, name := range s.corpusNames() {
				if h, err := s.corpus(name); err == nil {
					if ss, ok := h.sc.StoreStats(); ok {
						total += ss.WALEntries
					}
				}
			}
			return float64(total)
		})
	}
}

// cacheTotals sums the per-corpus result-cache counters.
func (s *Server) cacheTotals() CacheStats {
	var out CacheStats
	for _, name := range s.corpusNames() {
		h, err := s.corpus(name)
		if err != nil || h.cache == nil {
			continue
		}
		cs := h.cache.Stats()
		out.Hits += cs.Hits
		out.Misses += cs.Misses
		out.Evictions += cs.Evictions
		out.Entries += cs.Entries
	}
	if total := out.Hits + out.Misses; total > 0 {
		out.HitRate = float64(out.Hits) / float64(total)
	}
	return out
}

// watchTotals aggregates watch counters across corpora.
func (s *Server) watchTotals() WatchStats {
	var out WatchStats
	for _, name := range s.corpusNames() {
		h, err := s.corpus(name)
		if err != nil {
			continue
		}
		ws := h.sc.WatchStats()
		out.Active += ws.Active
		out.EventsEmitted += ws.Emitted
		out.EventsReplayed += ws.Replayed
		out.DeriveUS += ws.DeriveNS / 1000
		if ws.MaxLagEpochs > out.MaxLagEpochs {
			out.MaxLagEpochs = ws.MaxLagEpochs
		}
	}
	return out
}
