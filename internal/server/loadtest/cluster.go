package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	approxsel "repro"
	"repro/internal/cluster"
	"repro/internal/server"
)

// ClusterOptions configure the approxcluster read-scaling load test: a
// single approxserved instance versus a replicated cluster (leader + N
// followers) serving the same read mix with query-affinity routing.
//
// On a box with one core the cluster cannot scale CPU, so the run is set
// up to measure the resource that does scale with followers regardless of
// core count: aggregate effective cache capacity. Every node gets the same
// per-node cache (CacheEntries), the distinct-query set is chosen larger
// than one node's cache but smaller than the followers' combined caches,
// and the client routes each query to a fixed follower (hash affinity).
// The single node thrashes its LRU on the round-robin mix; each follower
// holds its partition of the query space fully cached. That capacity
// argument is exactly how read replicas scale serving in practice —
// additional cores per replica only widen the gap.
type ClusterOptions struct {
	// Records is the relation size (default 3000).
	Records int
	// Distinct is the number of distinct queries (default 280). Must
	// exceed CacheEntries for the single-node baseline to be
	// capacity-bound.
	Distinct int
	// Requests is the number of timed read requests per path (default 2000).
	Requests int
	// Predicate is the probed predicate (default BM25).
	Predicate string
	// Limit is the per-query top-k (default 10).
	Limit int
	// Shards is the per-corpus shard count (default 2).
	Shards int
	// Followers is the number of read replicas behind the leader
	// (default 2).
	Followers int
	// CacheEntries is the per-node result cache size (default
	// Distinct/Followers + 16: one follower's partition fits, the whole
	// mix does not fit one node).
	CacheEntries int
	// Concurrency is the number of client goroutines (default 8).
	Concurrency int
	// Seed drives data generation and query sampling.
	Seed int64
}

func (o ClusterOptions) withDefaults() ClusterOptions {
	if o.Records <= 0 {
		o.Records = 3000
	}
	if o.Distinct <= 0 {
		o.Distinct = 280
	}
	if o.Requests <= 0 {
		o.Requests = 2000
	}
	if o.Predicate == "" {
		o.Predicate = "BM25"
	}
	if o.Limit <= 0 {
		o.Limit = 10
	}
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Followers <= 0 {
		o.Followers = 2
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = o.Distinct/o.Followers + 16
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ClusterReport is the machine-readable result, written as
// BENCH_cluster.json.
type ClusterReport struct {
	Records      int         `json:"records"`
	Distinct     int         `json:"distinct_queries"`
	Requests     int         `json:"requests"`
	Predicate    string      `json:"predicate"`
	Shards       int         `json:"shards"`
	Followers    int         `json:"followers"`
	CacheEntries int         `json:"cache_entries_per_node"`
	Concurrency  int         `json:"concurrency"`
	Seed         int64       `json:"seed"`
	Entries      []PathEntry `json:"entries"` // "single" and "cluster"
	// ReadScaling is cluster read QPS / single-node read QPS at equal
	// per-node resources.
	ReadScaling float64 `json:"read_scaling"`
	// HashOK reports the differential check: every replica returned the
	// identical result hash for every probe at the same epoch vector.
	HashOK         bool     `json:"hash_ok"`
	HashesVerified int      `json:"hashes_verified"`
	Epochs         []uint64 `json:"epochs"`
}

type benchNode struct {
	id   string
	srv  *server.Server
	node *cluster.Node
	hs   *httptest.Server
}

// mutableHandler lets the httptest listener exist before the server whose
// URL it hands out.
type mutableHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (p *mutableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	h := p.h
	p.mu.Unlock()
	if h == nil {
		http.Error(w, "starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// RunCluster executes the cluster read-scaling load test.
func RunCluster(o ClusterOptions) (ClusterReport, error) {
	o = o.withDefaults()
	r := ClusterReport{
		Records:      o.Records,
		Distinct:     o.Distinct,
		Requests:     o.Requests,
		Predicate:    o.Predicate,
		Shards:       o.Shards,
		Followers:    o.Followers,
		CacheEntries: o.CacheEntries,
		Concurrency:  o.Concurrency,
		Seed:         o.Seed,
	}
	records, err := relation(o.Records, o.Seed)
	if err != nil {
		return r, err
	}
	queries := queryMix(records, o.Distinct, o.Seed)
	r.Distinct = len(queries)
	// Round-robin over the distinct set: the adversarial-for-LRU mix that
	// makes cache capacity, not skew, the bottleneck.
	seq := make([]int, o.Requests)
	for i := range seq {
		seq[i] = i % len(queries)
	}

	single, err := runSingleRead(o, records, queries, seq)
	if err != nil {
		return r, err
	}
	r.Entries = append(r.Entries, single)

	clusterEntry, hashes, epochs, hashOK, err := runClusterRead(o, records, queries, seq)
	if err != nil {
		return r, err
	}
	r.Entries = append(r.Entries, clusterEntry)
	r.HashesVerified = hashes
	r.HashOK = hashOK
	r.Epochs = epochs
	if single.QPS > 0 {
		r.ReadScaling = clusterEntry.QPS / single.QPS
	}
	return r, nil
}

// runSingleRead measures one approxserved node serving the whole mix.
func runSingleRead(o ClusterOptions, records []approxsel.Record, queries []string, seq []int) (PathEntry, error) {
	srv := server.New(server.Config{
		Shards:       o.Shards,
		CacheEntries: o.CacheEntries,
		MaxInFlight:  o.Concurrency * 4,
	})
	if err := srv.AddCorpus("main", records); err != nil {
		return PathEntry{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.Concurrency}}
	targets := func(int) string { return ts.URL }
	if err := warmRead(client, o, queries, targets); err != nil {
		return PathEntry{}, err
	}
	entry, err := timedRead(client, o, queries, seq, targets)
	if err != nil {
		return PathEntry{}, err
	}
	entry.Path = "single"
	var stats server.Stats
	if err := getJSON(client, ts.URL+"/v1/stats", &stats); err != nil {
		return PathEntry{}, err
	}
	entry.CacheHitRate = stats.Cache.HitRate
	return entry, nil
}

// runClusterRead stands up leader + Followers replicas, replicates the
// corpus, differential-checks result hashes across all replicas, then
// measures the followers serving the mix with query-affinity routing.
func runClusterRead(o ClusterOptions, records []approxsel.Record, queries []string, seq []int) (PathEntry, int, []uint64, bool, error) {
	n := o.Followers + 1
	nodes := make([]*benchNode, n)
	proxies := make([]*mutableHandler, n)
	peers := make(map[string]string, n)
	for i := range nodes {
		proxies[i] = &mutableHandler{}
		hs := httptest.NewServer(proxies[i])
		id := fmt.Sprintf("n%d", i)
		nodes[i] = &benchNode{id: id, hs: hs}
		peers[id] = hs.URL
	}
	defer func() {
		for _, bn := range nodes {
			if bn.node != nil {
				bn.node.Stop()
			}
			bn.hs.Close()
		}
	}()
	for i, bn := range nodes {
		srv := server.New(server.Config{
			Shards:       o.Shards,
			CacheEntries: o.CacheEntries,
			MaxInFlight:  o.Concurrency * 4,
		})
		node, err := cluster.NewNode(cluster.Config{
			ID:                bn.id,
			Peers:             peers,
			Backend:           srv.ClusterBackend(),
			HeartbeatInterval: 25 * time.Millisecond,
			ElectionTimeout:   150 * time.Millisecond,
			PullWait:          100 * time.Millisecond,
			Seed:              int64(i + 1),
		})
		if err != nil {
			return PathEntry{}, 0, nil, false, err
		}
		srv.AttachCluster(node)
		bn.srv, bn.node = srv, node
		proxies[i].mu.Lock()
		proxies[i].h = srv.Handler()
		proxies[i].mu.Unlock()
		node.Start()
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.Concurrency * n}}
	if err := awaitLeader(nodes, 15*time.Second); err != nil {
		return PathEntry{}, 0, nil, false, err
	}

	// Create the corpus through the cluster write path (forwarded to the
	// leader, replicated to every follower through snapshot join).
	wire := make([]server.RecordJSON, len(records))
	for i, rec := range records {
		wire[i] = server.RecordJSON{TID: rec.TID, Text: rec.Text}
	}
	body, _ := json.Marshal(server.CreateCorpusRequest{Name: "main", Shards: o.Shards, Records: wire})
	var epochs []uint64
	if err := postRetry(client, nodes[0].hs.URL+"/v1/corpora", body, 15*time.Second, nil); err != nil {
		return PathEntry{}, 0, nil, false, err
	}
	// One mutation pins the bench epoch vector: its ack means a majority
	// holds it, and min_epochs on every probe below makes each replica
	// wait until it has caught up to exactly this version.
	mb, _ := json.Marshal(server.MutateRequest{Corpus: "main", Records: []server.RecordJSON{{TID: 1 << 30, Text: "cluster bench epoch sentinel"}}})
	var mr server.MutateResponse
	if err := postRetry(client, nodes[0].hs.URL+"/v1/insert", mb, 15*time.Second, &mr); err != nil {
		return PathEntry{}, 0, nil, false, err
	}
	epochs = mr.Epochs

	// Differential: every replica answers every probe with the identical
	// result hash at the pinned vector.
	hashes := 0
	hashOK := true
	probeEvery := len(queries) / 24
	if probeEvery == 0 {
		probeEvery = 1
	}
	for qi := 0; qi < len(queries); qi += probeEvery {
		want := ""
		for _, bn := range nodes {
			hb, _ := json.Marshal(server.HashRequest{
				Corpus: "main", Predicate: o.Predicate, Query: queries[qi],
				Limit: o.Limit, MinEpochs: epochs,
			})
			var hr server.HashResponse
			if err := postRetry(client, bn.hs.URL+"/v1/hash", hb, 15*time.Second, &hr); err != nil {
				return PathEntry{}, hashes, epochs, false, err
			}
			if want == "" {
				want = hr.Hash
			} else if hr.Hash != want {
				hashOK = false
			}
			hashes++
		}
	}

	// Query-affinity routing: a query always lands on the same follower,
	// so each follower caches only its partition of the query space.
	followers := nodes[1:]
	if leaderIdx := leaderIndex(nodes); leaderIdx > 0 {
		// Keep the leader out of the read pool whichever node won.
		followers = make([]*benchNode, 0, n-1)
		for i, bn := range nodes {
			if i != leaderIdx {
				followers = append(followers, bn)
			}
		}
	}
	targets := func(queryIdx int) string {
		return followers[queryIdx%len(followers)].hs.URL
	}
	if err := warmRead(client, o, queries, targets); err != nil {
		return PathEntry{}, hashes, epochs, hashOK, err
	}
	entry, err := timedRead(client, o, queries, seq, targets)
	if err != nil {
		return PathEntry{}, hashes, epochs, hashOK, err
	}
	entry.Path = "cluster"
	// Aggregate follower hit rate, weighted by each node's lookups.
	var hits, misses uint64
	for _, bn := range followers {
		var stats server.Stats
		if err := getJSON(client, bn.hs.URL+"/v1/stats", &stats); err != nil {
			return PathEntry{}, hashes, epochs, hashOK, err
		}
		hits += stats.Cache.Hits
		misses += stats.Cache.Misses
	}
	if hits+misses > 0 {
		entry.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return entry, hashes, epochs, hashOK, nil
}

// warmRead fills each target's cache with its share of the distinct set.
func warmRead(client *http.Client, o ClusterOptions, queries []string, target func(int) string) error {
	for qi, q := range queries {
		if err := readOne(client, target(qi), o, q); err != nil {
			return err
		}
	}
	return nil
}

// timedRead replays the mix from Concurrency goroutines, routing each
// request by its query index.
func timedRead(client *http.Client, o ClusterOptions, queries []string, seq []int, target func(int) string) (PathEntry, error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		nextReq int
		runErr  error
	)
	start := time.Now()
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if runErr != nil || nextReq >= len(seq) {
					mu.Unlock()
					return
				}
				i := nextReq
				nextReq++
				mu.Unlock()
				qi := seq[i]
				if err := readOne(client, target(qi), o, queries[qi]); err != nil {
					mu.Lock()
					if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return PathEntry{}, runErr
	}
	return PathEntry{
		Requests: len(seq),
		QPS:      float64(len(seq)) / elapsed.Seconds(),
		AvgNS:    elapsed.Nanoseconds() / int64(len(seq)),
	}, nil
}

func readOne(client *http.Client, base string, o ClusterOptions, query string) error {
	body, err := json.Marshal(server.SelectRequest{Corpus: "main", Predicate: o.Predicate, Query: query, Limit: o.Limit})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/v1/select", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("loadtest: cluster select status %d: %s", resp.StatusCode, b)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func awaitLeader(nodes []*benchNode, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if leaderIndex(nodes) >= 0 {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("loadtest: no leader elected within %v", timeout)
}

func leaderIndex(nodes []*benchNode) int {
	for i, bn := range nodes {
		if bn.node.IsLeader() {
			return i
		}
	}
	return -1
}

// postRetry POSTs body, retrying 503/504 (leaderless or catching-up
// windows) until the deadline, decoding 200 responses into out.
func postRetry(client *http.Client, url string, body []byte, timeout time.Duration, out any) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		switch {
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated:
			defer resp.Body.Close()
			if out != nil {
				return json.NewDecoder(resp.Body).Decode(out)
			}
			_, err = io.Copy(io.Discard, resp.Body)
			return err
		case (resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusGatewayTimeout) && time.Now().Before(deadline):
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(50 * time.Millisecond)
		default:
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return fmt.Errorf("loadtest: POST %s: status %d: %s", url, resp.StatusCode, b)
		}
	}
}

// WriteJSON writes the report as BENCH_cluster.json in dir (created if
// missing).
func (r ClusterReport) WriteJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_cluster.json"), append(data, '\n'), 0o644)
}

// Print writes a human-readable summary.
func (r ClusterReport) Print(w io.Writer) {
	fmt.Fprintf(w, "Cluster read-scaling load test — %d records, %d distinct queries, predicate %s, %d shards, %d followers, %d cache entries/node\n",
		r.Records, r.Distinct, r.Predicate, r.Shards, r.Followers, r.CacheEntries)
	for _, e := range r.Entries {
		fmt.Fprintf(w, "  %-8s %6d req  %9.1f qps  avg %v  hit-rate %.2f\n", e.Path, e.Requests, e.QPS,
			time.Duration(e.AvgNS).Round(time.Microsecond), e.CacheHitRate)
	}
	fmt.Fprintf(w, "  read scaling %.2fx at %d followers  hash ok=%v (%d replica hashes at epochs %v)\n",
		r.ReadScaling, r.Followers, r.HashOK, r.HashesVerified, r.Epochs)
}
