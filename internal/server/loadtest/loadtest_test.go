package loadtest

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadtestSmall runs the full loadtest pipeline at a tiny scale and
// checks the report invariants, including the cached/uncached differential
// across epochs.
func TestLoadtestSmall(t *testing.T) {
	r, err := Run(Options{
		Records:  200,
		Distinct: 20,
		Requests: 120,
		Shards:   2,
		Verify:   5,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 2 || r.Entries[0].Path != "naive" || r.Entries[1].Path != "served" {
		t.Fatalf("entries: %+v", r.Entries)
	}
	for _, e := range r.Entries {
		if e.QPS <= 0 || e.AvgNS <= 0 || e.Requests <= 0 {
			t.Fatalf("degenerate entry: %+v", e)
		}
	}
	if r.Entries[1].CacheHitRate <= 0 {
		t.Fatalf("warm serve path must report cache hits: %+v", r.Entries[1])
	}
	if !r.DifferentialOK || r.EpochsVerified == 0 {
		t.Fatalf("differential failed: ok=%v verified=%d", r.DifferentialOK, r.EpochsVerified)
	}
	if r.Speedup <= 0 {
		t.Fatalf("speedup: %v", r.Speedup)
	}

	dir := t.TempDir()
	if err := r.WriteJSON(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Records != 200 || len(back.Entries) != 2 {
		t.Fatalf("round-trip: %+v", back)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("speedup")) {
		t.Fatalf("summary: %s", buf.String())
	}
}
