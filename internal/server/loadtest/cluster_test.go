package loadtest

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestClusterLoadtestSmall runs the cluster read-scaling pipeline at a
// tiny scale: the report invariants must hold and every replica must hash
// identically at the pinned epoch vector. The ≥1.5x scaling floor is
// asserted only by CI against the committed full-scale BENCH_cluster.json
// — at this scale the election and join overhead dominates.
func TestClusterLoadtestSmall(t *testing.T) {
	r, err := RunCluster(ClusterOptions{
		Records:      300,
		Distinct:     40,
		Requests:     160,
		Shards:       2,
		Followers:    2,
		CacheEntries: 24,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 2 || r.Entries[0].Path != "single" || r.Entries[1].Path != "cluster" {
		t.Fatalf("entries: %+v", r.Entries)
	}
	for _, e := range r.Entries {
		if e.QPS <= 0 || e.AvgNS <= 0 || e.Requests != 160 {
			t.Fatalf("degenerate entry: %+v", e)
		}
	}
	if !r.HashOK || r.HashesVerified == 0 {
		t.Fatalf("hash differential: ok=%v verified=%d", r.HashOK, r.HashesVerified)
	}
	if len(r.Epochs) != 2 {
		t.Fatalf("epoch vector: %v", r.Epochs)
	}
	if r.ReadScaling <= 0 {
		t.Fatalf("read scaling: %v", r.ReadScaling)
	}
	// The per-follower partition (20 queries) fits the 24-entry cache, so
	// the followers must be running warm.
	if r.Entries[1].CacheHitRate <= r.Entries[0].CacheHitRate {
		t.Fatalf("affinity routing must beat the thrashing single node: cluster %.2f vs single %.2f",
			r.Entries[1].CacheHitRate, r.Entries[0].CacheHitRate)
	}

	dir := t.TempDir()
	if err := r.WriteJSON(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_cluster.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back ClusterReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Records != 300 || len(back.Entries) != 2 || !back.HashOK {
		t.Fatalf("round-trip: %+v", back)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "read scaling") {
		t.Fatalf("print: %s", buf.String())
	}
}
