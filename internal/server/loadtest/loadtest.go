// Package loadtest is approxserved's self-contained load generator: it
// builds a dirty relation, replays a zipf-skewed query mix against (a) the
// naive per-request path — Corpus.Predicate(...).Select(...) with no
// sharding and no cache — and (b) a warm approxserved instance over HTTP,
// and reports the QPS of both plus the serving stack's cache hit rate and
// latency quantiles. The report writes as BENCH_serve.json in the same
// machine-readable format family as BENCH_select.json, giving the
// performance trajectory a serving datapoint.
//
// The run also differential-tests the serve path: cached responses must be
// bit-identical to uncached ones, before and after a mutation advances the
// epoch vector.
package loadtest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	approxsel "repro"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dirty"
	"repro/internal/obs"
	"repro/internal/server"
)

// Options configure one load-test run; zero fields select the defaults of
// the acceptance scenario (5k records, zipf-skewed mix, NumCPU shards).
type Options struct {
	// Records is the relation size (default 5000).
	Records int
	// Distinct is the number of distinct queries in the mix (default 200).
	Distinct int
	// Requests is the number of timed serve-path requests (default 2000).
	Requests int
	// NaiveRequests bounds the naive-baseline loop (default Requests/5,
	// min 30): the naive path is the slow one being measured against.
	NaiveRequests int
	// ZipfS is the zipf skew parameter of the query mix (default 1.3).
	ZipfS float64
	// Predicate is the probed predicate (default BM25).
	Predicate string
	// Limit is the per-query top-k (default 10).
	Limit int
	// Shards is the serve-path shard count (default GOMAXPROCS).
	Shards int
	// Concurrency is the number of client goroutines (default 8).
	Concurrency int
	// CacheEntries sizes the serve-path result cache (default: server's).
	CacheEntries int
	// Verify is the number of queries differential-tested per epoch
	// (default 20).
	Verify int
	// Seed drives data generation, query sampling and the zipf draw.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Records <= 0 {
		o.Records = 5000
	}
	if o.Distinct <= 0 {
		o.Distinct = 200
	}
	if o.Requests <= 0 {
		o.Requests = 2000
	}
	if o.NaiveRequests <= 0 {
		o.NaiveRequests = o.Requests / 5
		if o.NaiveRequests < 30 {
			o.NaiveRequests = 30
		}
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.3
	}
	if o.Predicate == "" {
		o.Predicate = "BM25"
	}
	if o.Limit <= 0 {
		o.Limit = 10
	}
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Verify <= 0 {
		o.Verify = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// PathEntry is one measured serving path, the per-path record of
// BENCH_serve.json (the format family of BENCH_select.json entries).
type PathEntry struct {
	Path         string  `json:"path"` // "naive" or "served"
	Requests     int     `json:"requests"`
	QPS          float64 `json:"qps"`
	AvgNS        int64   `json:"avg_ns"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	P50US        int64   `json:"p50_us,omitempty"`
	P99US        int64   `json:"p99_us,omitempty"`
}

// Report is the full machine-readable load-test result.
type Report struct {
	Records        int         `json:"records"`
	Queries        int         `json:"queries"` // timed serve-path requests
	Seed           int64       `json:"seed"`
	Predicate      string      `json:"predicate"`
	Shards         int         `json:"shards"`
	Distinct       int         `json:"distinct_queries"`
	ZipfS          float64     `json:"zipf_s"`
	Limit          int         `json:"limit"`
	Concurrency    int         `json:"concurrency"`
	Entries        []PathEntry `json:"entries"`
	Speedup        float64     `json:"speedup"` // served QPS / naive QPS
	DifferentialOK bool        `json:"differential_ok"`
	EpochsVerified int         `json:"epochs_verified"`
	// MetricsDelta is the change in every /metrics series over the timed
	// replay (after-scrape minus before-scrape, zero deltas dropped) — the
	// serve run's footprint in the unified metrics catalog.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
	// Stages is the per-stage span aggregate over the served phase — warm
	// pass plus timed replay, traced at 1-in-8 sampling — attributing
	// serve-path latency to admission, fan-out, per-shard selection, merge
	// and cache stages.
	Stages map[string]obs.StageAgg `json:"stages,omitempty"`
}

// Run executes the load test and returns the report.
func Run(o Options) (Report, error) {
	if o.ZipfS != 0 && o.ZipfS <= 1 {
		return Report{}, fmt.Errorf("loadtest: zipf s must be > 1, got %v", o.ZipfS)
	}
	o = o.withDefaults()
	r := Report{
		Records:     o.Records,
		Queries:     o.Requests,
		Seed:        o.Seed,
		Predicate:   o.Predicate,
		Shards:      o.Shards,
		Distinct:    o.Distinct,
		ZipfS:       o.ZipfS,
		Limit:       o.Limit,
		Concurrency: o.Concurrency,
	}

	records, err := relation(o.Records, o.Seed)
	if err != nil {
		return r, err
	}
	queries := queryMix(records, o.Distinct, o.Seed)
	r.Distinct = len(queries)
	// The zipf-skewed request sequence, drawn once so both paths and every
	// client goroutine replay the same mix.
	rng := rand.New(rand.NewSource(o.Seed + 17))
	zipf := rand.NewZipf(rng, o.ZipfS, 1, uint64(len(queries)-1))
	seq := make([]int, o.Requests)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}

	naive, err := runNaive(o, records, queries, seq)
	if err != nil {
		return r, err
	}
	r.Entries = append(r.Entries, naive)

	served, verified, diffOK, err := runServed(o, &r, records, queries, seq)
	if err != nil {
		return r, err
	}
	r.Entries = append(r.Entries, served)
	r.EpochsVerified = verified
	r.DifferentialOK = diffOK
	if naive.QPS > 0 {
		r.Speedup = served.QPS / naive.QPS
	}
	return r, nil
}

// relation generates the dirty DBLP-like relation of the benchmark's
// performance experiments (§5.5 error mix).
func relation(size int, seed int64) ([]approxsel.Record, error) {
	numClean := size / 10
	if numClean < 10 {
		numClean = 10
	}
	clean := datasets.DBLPTitles(numClean, seed)
	ds, err := dirty.Generate(clean, nil, dirty.Params{
		Size: size, NumClean: numClean, Dist: dirty.Uniform,
		ErroneousPct: 0.70, ErrorExtent: 0.20, TokenSwapPct: 0.20,
		Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return ds.Records, nil
}

// queryMix samples distinct record texts as the query population — the
// data-cleaning workload probes the relation with (dirty) versions of its
// own tuples.
func queryMix(records []approxsel.Record, distinct int, seed int64) []string {
	if distinct > len(records) {
		distinct = len(records)
	}
	rng := rand.New(rand.NewSource(seed + 29))
	perm := rng.Perm(len(records))
	out := make([]string, distinct)
	for i := 0; i < distinct; i++ {
		out[i] = records[perm[i]].Text
	}
	return out
}

// runNaive times the baseline: every request attaches the predicate to the
// shared corpus anew and probes it, single corpus, no sharding, no cache.
func runNaive(o Options, records []approxsel.Record, queries []string, seq []int) (PathEntry, error) {
	corpus, err := approxsel.OpenCorpus(records)
	if err != nil {
		return PathEntry{}, err
	}
	n := o.NaiveRequests
	if n > len(seq) {
		n = len(seq)
	}
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < n; i++ {
		p, err := corpus.Predicate(o.Predicate)
		if err != nil {
			return PathEntry{}, err
		}
		if _, err := approxsel.SelectCtx(ctx, p, queries[seq[i]], approxsel.Limit(o.Limit)); err != nil {
			return PathEntry{}, err
		}
	}
	elapsed := time.Since(start)
	return PathEntry{
		Path:     "naive",
		Requests: n,
		QPS:      float64(n) / elapsed.Seconds(),
		AvgNS:    elapsed.Nanoseconds() / int64(n),
	}, nil
}

// runServed stands up approxserved over a loopback HTTP listener, warms
// the cache with one pass over the distinct queries, replays the timed mix
// from concurrent clients, and differential-tests cached responses against
// direct computation at the same epoch — before and after a mutation.
func runServed(o Options, r *Report, records []approxsel.Record, queries []string, seq []int) (PathEntry, int, bool, error) {
	srv := server.New(server.Config{
		Shards:       o.Shards,
		CacheEntries: o.CacheEntries,
		Workers:      o.Concurrency,
		MaxInFlight:  o.Concurrency * 4,
		// 1-in-8 sampling during the replay: the report's per-stage span
		// aggregates come from real traced traffic, at a rate low enough
		// not to distort the measured QPS.
		TraceSample: 8,
	})
	defer obs.SetTraceSampling(0)
	if err := srv.AddCorpus("main", records); err != nil {
		return PathEntry{}, 0, false, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.Concurrency}}

	// Warm pass: one request per distinct query fills the cache. Stage
	// aggregates are reset first so the report attributes latency across
	// the whole served phase — the warm pass contributes the miss-path
	// stages (fan-out, per-shard select, merge, cache fill) that the
	// mostly-hit replay rarely exercises.
	obs.ResetStageAggregates()
	for _, q := range queries {
		if _, err := doSelect(client, ts.URL, o, q); err != nil {
			return PathEntry{}, 0, false, err
		}
	}

	// Bracket the timed replay with /metrics scrapes, so the report carries
	// the replay's exact footprint in the metrics catalog.
	before, err := scrapeMetrics(client, ts.URL)
	if err != nil {
		return PathEntry{}, 0, false, err
	}

	// Timed replay from Concurrency client goroutines.
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    = make([]time.Duration, 0, len(seq))
		nextReq int
		runErr  error
	)
	start := time.Now()
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, len(seq)/o.Concurrency+1)
			for {
				mu.Lock()
				if runErr != nil || nextReq >= len(seq) {
					mu.Unlock()
					break
				}
				i := nextReq
				nextReq++
				mu.Unlock()
				t0 := time.Now()
				if _, err := doSelect(client, ts.URL, o, queries[seq[i]]); err != nil {
					mu.Lock()
					if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return PathEntry{}, 0, false, runErr
	}

	entry := PathEntry{
		Path:     "served",
		Requests: len(seq),
		QPS:      float64(len(seq)) / elapsed.Seconds(),
		AvgNS:    elapsed.Nanoseconds() / int64(len(seq)),
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		entry.P50US = lats[len(lats)/2].Microseconds()
		entry.P99US = lats[len(lats)*99/100].Microseconds()
	}
	after, err := scrapeMetrics(client, ts.URL)
	if err != nil {
		return PathEntry{}, 0, false, err
	}
	r.MetricsDelta = metricsDelta(before, after)

	var stats server.Stats
	if err := getJSON(client, ts.URL+"/v1/stats", &stats); err != nil {
		return PathEntry{}, 0, false, err
	}
	entry.CacheHitRate = stats.Cache.HitRate
	r.Stages = stats.Trace.Stages

	verified, diffOK, err := differential(client, ts.URL, o, records, queries)
	if err != nil {
		return PathEntry{}, 0, false, err
	}
	return entry, verified, diffOK, nil
}

// differential checks the acceptance contract: cached responses are
// bit-identical to uncached computation at the same epoch vector, across a
// mutation. The reference is an independent ShardedCorpus sharded
// identically, so scores must agree to the last bit.
func differential(client *http.Client, base string, o Options, records []approxsel.Record, queries []string) (int, bool, error) {
	ref, err := approxsel.OpenShardedCorpus(records, o.Shards)
	if err != nil {
		return 0, false, err
	}
	verified := 0
	check := func() (bool, error) {
		p, err := ref.Predicate(o.Predicate)
		if err != nil {
			return false, err
		}
		n := o.Verify
		if n > len(queries) {
			n = len(queries)
		}
		for _, q := range queries[:n] {
			resp, err := doSelect(client, base, o, q)
			if err != nil {
				return false, err
			}
			want, err := approxsel.SelectCtx(context.Background(), p, q, approxsel.Limit(o.Limit))
			if err != nil {
				return false, err
			}
			got := make([]core.Match, len(resp.Matches))
			for i, m := range resp.Matches {
				got[i] = core.Match{TID: m.TID, Score: m.Score}
			}
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
				return false, nil
			}
			verified++
		}
		return true, nil
	}
	ok1, err := check()
	if err != nil {
		return verified, false, err
	}
	// Advance the epoch: mutate both the served corpus and the reference
	// identically, then re-verify at the new version.
	extra := approxsel.Record{TID: 1 << 30, Text: "epoch advance sentinel title"}
	body, _ := json.Marshal(map[string]any{"records": []map[string]any{{"tid": extra.TID, "text": extra.Text}}})
	resp, err := client.Post(base+"/v1/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		return verified, false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return verified, false, fmt.Errorf("loadtest: mutation failed with status %d", resp.StatusCode)
	}
	if err := ref.Insert(extra); err != nil {
		return verified, false, err
	}
	ok2, err := check()
	if err != nil {
		return verified, false, err
	}
	return verified, ok1 && ok2, nil
}

func doSelect(client *http.Client, base string, o Options, query string) (server.SelectResponse, error) {
	var out server.SelectResponse
	body, err := json.Marshal(server.SelectRequest{Predicate: o.Predicate, Query: query, Limit: o.Limit})
	if err != nil {
		return out, err
	}
	resp, err := client.Post(base+"/v1/select", "application/json", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return out, fmt.Errorf("loadtest: select status %d: %s", resp.StatusCode, b)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// scrapeMetrics parses a /metrics exposition into series-name → value.
func scrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadtest: /metrics status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out, nil
}

// metricsDelta subtracts the before-scrape from the after-scrape, dropping
// zero deltas and series that vanished.
func metricsDelta(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// WriteJSON writes the report as BENCH_serve.json in dir (created if
// missing).
func (r Report) WriteJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_serve.json"), append(data, '\n'), 0o644)
}

// Print writes a human-readable summary.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "Serving load test — %d records, %d distinct queries (zipf s=%.2f), predicate %s, %d shards\n",
		r.Records, r.Distinct, r.ZipfS, r.Predicate, r.Shards)
	for _, e := range r.Entries {
		fmt.Fprintf(w, "  %-7s %6d req  %9.1f qps  avg %v", e.Path, e.Requests, e.QPS,
			time.Duration(e.AvgNS).Round(time.Microsecond))
		if e.Path == "served" {
			fmt.Fprintf(w, "  hit-rate %.2f  p50 %dµs  p99 %dµs", e.CacheHitRate, e.P50US, e.P99US)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  speedup %.1fx  differential ok=%v (%d responses verified)\n",
		r.Speedup, r.DifferentialOK, r.EpochsVerified)
	if len(r.Stages) > 0 {
		names := make([]string, 0, len(r.Stages))
		for name := range r.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "  stages (1-in-8 sampled):")
		for _, name := range names {
			a := r.Stages[name]
			fmt.Fprintf(w, " %s=%dµs", name, a.AvgUS)
		}
		fmt.Fprintln(w)
	}
}
