package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	approxsel "repro"
	"repro/internal/cluster"
	"repro/internal/core"
)

// The served-cluster suite: three full approxserved stacks (server +
// cluster node + durable store) wired over loopback HTTP. It proves the
// acceptance contract end to end — a randomized Insert/Delete/Upsert
// history driven through the HTTP mutation endpoints (landing on random
// nodes, hence exercising leader forwarding), with every replica's
// /v1/hash response at every checkpoint epoch vector bit-identical to a
// single-node corpus replaying the same history; then a leader kill with
// re-election, no acked-write loss, and epoch-consistent reads at the
// pre-failover vector.

type clusterServer struct {
	id    string
	s     *Server
	node  *cluster.Node
	hs    *httptest.Server
	proxy *lateHandler
}

// lateHandler lets the httptest server exist before the Server it fronts.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (p *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	h := p.h
	p.mu.Unlock()
	if h == nil {
		http.Error(w, "starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func startServerCluster(t *testing.T, count, shards int) []*clusterServer {
	t.Helper()
	root := t.TempDir()
	nodes := make([]*clusterServer, count)
	peers := make(map[string]string, count)
	for i := range nodes {
		proxy := &lateHandler{}
		hs := httptest.NewServer(proxy)
		t.Cleanup(hs.Close)
		id := fmt.Sprintf("n%d", i)
		nodes[i] = &clusterServer{id: id, hs: hs, proxy: proxy}
		peers[id] = hs.URL
	}
	for i, cs := range nodes {
		dir := filepath.Join(root, cs.id)
		srv := New(Config{Shards: shards, DataDir: dir, RequestTimeout: 30 * time.Second})
		node, err := cluster.NewNode(cluster.Config{
			ID:                cs.id,
			Peers:             peers,
			DataDir:           dir,
			Backend:           srv.ClusterBackend(),
			HeartbeatInterval: 25 * time.Millisecond,
			ElectionTimeout:   150 * time.Millisecond,
			PullWait:          100 * time.Millisecond,
			Seed:              int64(i + 1),
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatalf("NewNode %s: %v", cs.id, err)
		}
		srv.AttachCluster(node)
		cs.s, cs.node = srv, node
		cs.proxy.mu.Lock()
		cs.proxy.h = srv.Handler()
		cs.proxy.mu.Unlock()
	}
	for _, cs := range nodes {
		cs.node.Start()
		t.Cleanup(cs.node.Stop)
	}
	return nodes
}

func waitServedLeader(t *testing.T, nodes []*clusterServer, dead map[string]bool) *clusterServer {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var leader *clusterServer
		ok := true
		for _, cs := range nodes {
			if dead[cs.id] {
				continue
			}
			role, _, lid := cs.node.Role()
			if role == cluster.RoleLeader {
				if leader != nil {
					ok = false
					break
				}
				leader = cs
			}
			if lid == "" || dead[lid] {
				ok = false
			}
		}
		if ok && leader != nil {
			return leader
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no stable leader")
	return nil
}

// postJSON posts v and decodes the response into out (when non-nil),
// returning the HTTP status.
func postJSON(t *testing.T, baseURL, path string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", path, err)
		}
	}
	return resp.StatusCode
}

// postJSONRetry retries 503s (leaderless windows) up to the deadline.
func postJSONRetry(t *testing.T, baseURL, path string, v, out any) int {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		code := postJSON(t, baseURL, path, v, out)
		if code != http.StatusServiceUnavailable && code != http.StatusGatewayTimeout || time.Now().After(deadline) {
			return code
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func serverClusterData(t *testing.T) []approxsel.Record {
	t.Helper()
	ds, err := approxsel.GenerateDirty(approxsel.CompanyNames(60, 7), approxsel.Abbreviations(), approxsel.DirtyParams{
		Size: 150, NumClean: 30, Dist: approxsel.Uniform,
		ErroneousPct: 0.9, ErrorExtent: 0.08,
		TokenSwapPct: 0.20, AbbrPct: 0.40, Seed: 31,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds.Records
}

func toWireRecords(rs []approxsel.Record) []RecordJSON {
	out := make([]RecordJSON, len(rs))
	for i, r := range rs {
		out[i] = RecordJSON{TID: r.TID, Text: r.Text}
	}
	return out
}

// hashEverywhere asserts every live replica answers the (query, vector)
// request with the same hash, and that it matches want.
func hashEverywhere(t *testing.T, nodes []*clusterServer, dead map[string]bool, query string, vec []uint64, want string) {
	t.Helper()
	for _, cs := range nodes {
		if dead[cs.id] {
			continue
		}
		var hr HashResponse
		code := postJSONRetry(t, cs.hs.URL, "/v1/hash", HashRequest{
			Corpus: "c", Predicate: "Jaccard", Query: query, MinEpochs: vec,
		}, &hr)
		if code != http.StatusOK {
			t.Fatalf("hash on %s: HTTP %d", cs.id, code)
		}
		if hr.Hash != want {
			t.Fatalf("hash on %s for %q at %v = %s, want %s", cs.id, query, vec, hr.Hash, want)
		}
	}
}

func refHash(t *testing.T, ref *approxsel.ShardedCorpus, query string, vec []uint64) string {
	t.Helper()
	p, err := ref.Predicate("Jaccard")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := p.Select(query)
	if err != nil {
		t.Fatal(err)
	}
	return resultHash(ms, vec)
}

func TestServedClusterDifferentialAndFailover(t *testing.T) {
	recs := serverClusterData(t)
	const shards = 3
	nodes := startServerCluster(t, 3, shards)
	leader := waitServedLeader(t, nodes, nil)

	// Create the corpus at the cluster (landing on a random node: corpus
	// creation forwards like any mutation).
	initial := recs[:50]
	code := postJSONRetry(t, nodes[1].hs.URL, "/v1/corpora", CreateCorpusRequest{
		Name: "c", Shards: shards, Records: toWireRecords(initial),
	}, nil)
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("create corpus: HTTP %d", code)
	}

	// The single-node reference replays the identical history locally.
	ref, err := approxsel.OpenShardedCorpus(initial, shards)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(41))
	live := make([]int, 0, len(initial))
	for _, r := range initial {
		live = append(live, r.TID)
	}
	next := 50
	queries := []string{recs[3].Text, recs[17].Text, recs[90].Text}
	var lastVec []uint64

	checkpoint := func() {
		if lastVec == nil {
			return
		}
		for _, q := range queries {
			hashEverywhere(t, nodes, nil, q, lastVec, refHash(t, ref, q, lastVec))
		}
	}

	for step := 0; step < 18; step++ {
		target := nodes[rng.Intn(len(nodes))].hs.URL
		var mr MutateResponse
		switch k := rng.Intn(3); {
		case k == 0 && next+2 <= len(recs):
			batch := recs[next : next+2]
			if code := postJSONRetry(t, target, "/v1/insert", MutateRequest{Corpus: "c", Records: toWireRecords(batch)}, &mr); code != http.StatusOK {
				t.Fatalf("insert: HTTP %d", code)
			}
			if err := ref.Insert(batch...); err != nil {
				t.Fatal(err)
			}
			live = append(live, batch[0].TID, batch[1].TID)
			next += 2
		case k == 1 && len(live) > 4:
			i := rng.Intn(len(live))
			if code := postJSONRetry(t, target, "/v1/delete", DeleteRequest{Corpus: "c", TIDs: []int{live[i]}}, &mr); code != http.StatusOK {
				t.Fatalf("delete: HTTP %d", code)
			}
			if err := ref.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		default:
			i := rng.Intn(len(live))
			rec := approxsel.Record{TID: live[i], Text: recs[rng.Intn(len(recs))].Text}
			if code := postJSONRetry(t, target, "/v1/upsert", MutateRequest{Corpus: "c", Records: []RecordJSON{{TID: rec.TID, Text: rec.Text}}}, &mr); code != http.StatusOK {
				t.Fatalf("upsert: HTTP %d", code)
			}
			if err := ref.Upsert(rec); err != nil {
				t.Fatal(err)
			}
		}
		lastVec = mr.Epochs
		refVec := ref.Epochs()
		for i := range refVec {
			if refVec[i] != lastVec[i] {
				t.Fatalf("step %d: cluster acked %v, reference at %v", step, lastVec, refVec)
			}
		}
		if step%6 == 5 {
			checkpoint()
		}
	}
	checkpoint()

	// Kill the leader without ceremony — the SIGKILL analogue: its loops
	// stop and its socket drops mid-stream. Every mutation above was acked
	// (HTTP 200 ⇒ majority holds it), so nothing may be lost.
	dead := map[string]bool{leader.id: true}
	leader.node.Stop()
	leader.hs.CloseClientConnections()
	leader.hs.Close()

	next2 := waitServedLeader(t, nodes, dead)
	if next2.id == leader.id {
		t.Fatal("dead leader re-elected")
	}
	// Post-failover reads at the pre-failover vector stay bit-identical.
	for _, q := range queries {
		hashEverywhere(t, nodes, dead, q, lastVec, refHash(t, ref, q, lastVec))
	}
	// And the survivors keep accepting acked writes.
	var mr MutateResponse
	if code := postJSONRetry(t, next2.hs.URL, "/v1/insert", MutateRequest{Corpus: "c", Records: toWireRecords(recs[120:121])}, &mr); code != http.StatusOK {
		t.Fatalf("post-failover insert: HTTP %d", code)
	}
	if err := ref.Insert(recs[120]); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		hashEverywhere(t, nodes, dead, q, mr.Epochs, refHash(t, ref, q, mr.Epochs))
	}

	// The stats cluster block and /healthz role are live on every node.
	for _, cs := range nodes {
		if dead[cs.id] {
			continue
		}
		resp, err := http.Get(cs.hs.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st Stats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Cluster == nil {
			t.Fatalf("stats on %s: no cluster block", cs.id)
		}
		if st.Cluster.NodeID != cs.id {
			t.Fatalf("stats on %s: node_id %s", cs.id, st.Cluster.NodeID)
		}
		if _, ok := st.Cluster.Applied["c"]; !ok {
			t.Fatalf("stats on %s: no applied position for corpus", cs.id)
		}
		hresp, err := http.Get(cs.hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hz map[string]string
		if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if hz["role"] != "leader" && hz["role"] != "follower" && hz["role"] != "candidate" {
			t.Fatalf("healthz on %s: role %q", cs.id, hz["role"])
		}
		wantLeader := cs.node.IsLeader()
		if wantLeader != (hz["role"] == "leader") {
			t.Fatalf("healthz on %s: role %q, IsLeader %v", cs.id, hz["role"], wantLeader)
		}
	}
}

// TestEpochConsistentReadWaits: a read carrying a min_epochs vector ahead
// of the replica blocks until the replica catches up (here: forever, so it
// must time out 504 — the stale-replica contract) while a satisfied vector
// answers immediately.
func TestEpochConsistentReadWaits(t *testing.T) {
	recs := serverClusterData(t)
	s := New(Config{Shards: 2, RequestTimeout: 300 * time.Millisecond})
	if err := s.AddCorpus("c", recs[:30]); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	var sr SelectResponse
	code := postJSON(t, hs.URL, "/v1/select", SelectRequest{
		Corpus: "c", Predicate: "Jaccard", Query: recs[0].Text, MinEpochs: []uint64{0, 0},
	}, &sr)
	if code != http.StatusOK {
		t.Fatalf("satisfied min_epochs: HTTP %d", code)
	}
	// A vector the replica will never reach times out with 504.
	code = postJSON(t, hs.URL, "/v1/select", SelectRequest{
		Corpus: "c", Predicate: "Jaccard", Query: recs[0].Text, MinEpochs: []uint64{99, 99},
	}, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("unreachable min_epochs: HTTP %d, want 504", code)
	}
	// A malformed vector (wrong shard count) is the caller's fault.
	code = postJSON(t, hs.URL, "/v1/select", SelectRequest{
		Corpus: "c", Predicate: "Jaccard", Query: recs[0].Text, MinEpochs: []uint64{1, 1, 1},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("malformed min_epochs: HTTP %d, want 400", code)
	}
}

// TestResultHashCanonical pins the hash to content: same ranking and
// vector agree, any perturbation disagrees.
func TestResultHashCanonical(t *testing.T) {
	ms := []core.Match{{TID: 3, Score: 0.75}, {TID: 9, Score: 0.5}}
	vec := []uint64{4, 2}
	h1 := resultHash(ms, vec)
	if h2 := resultHash([]core.Match{{TID: 3, Score: 0.75}, {TID: 9, Score: 0.5}}, []uint64{4, 2}); h2 != h1 {
		t.Fatal("equal inputs, different hash")
	}
	if resultHash(ms[:1], vec) == h1 {
		t.Fatal("truncated ranking, same hash")
	}
	if resultHash([]core.Match{{TID: 3, Score: 0.75}, {TID: 9, Score: 0.5000001}}, vec) == h1 {
		t.Fatal("perturbed score, same hash")
	}
	if resultHash([]core.Match{{TID: 9, Score: 0.5}, {TID: 3, Score: 0.75}}, vec) == h1 {
		t.Fatal("reordered ranking, same hash")
	}
	if resultHash(ms, []uint64{4, 3}) == h1 {
		t.Fatal("different vector, same hash")
	}
}
