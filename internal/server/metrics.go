package server

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
)

// The server's latency histograms are obs.Histogram: lock-free log2
// buckets where bucket i counts observations v (µs) with
// floor(log2(v))+1 == i, i.e. v ∈ [2^(i-1), 2^i), and quantiles report
// the bucket's exclusive upper bound 2^i. (An earlier comment described
// the bucketing as ceil(log2); the arithmetic was always floor-based —
// bits.Len64 — so the wire-visible /v1/stats values are unchanged, only
// the documentation moved to match the code.)

// HistogramStats is the JSON shape of one predicate's latency histogram.
type HistogramStats struct {
	Count uint64 `json:"count"`
	AvgUS uint64 `json:"avg_us"`
	P50US uint64 `json:"p50_us"`
	P90US uint64 `json:"p90_us"`
	P99US uint64 `json:"p99_us"`
}

func toHistogramStats(s obs.HistogramSnapshot) HistogramStats {
	return HistogramStats{Count: s.Count, AvgUS: s.AvgUS, P50US: s.P50US, P90US: s.P90US, P99US: s.P99US}
}

// metrics aggregates the server-wide counters behind /v1/stats and owns
// the obs registry behind GET /metrics — one unified catalog spanning
// request admission, per-predicate latency, the result cache, the
// selection engine's pruning counters, the durable store, watches and
// (when attached) the replication cluster.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	requests   *obs.Counter // admitted requests
	rejected   *obs.Counter // 429s from admission
	errors     *obs.Counter // non-2xx responses other than 429
	selects    *obs.Counter // /v1/select probes served (approx_select_total)
	staleReads *obs.Counter // reads served with X-Approx-Stale while degraded

	mu          sync.Mutex
	byEndpoint  map[string]*obs.Counter
	endpointDur map[string]*obs.Histogram
	byPredicate map[string]*obs.Histogram
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		start:       time.Now(),
		reg:         reg,
		requests:    reg.Counter("approx_requests_total", "requests admitted past the in-flight gate"),
		rejected:    reg.Counter("approx_requests_rejected_total", "requests rejected with 429 at admission"),
		errors:      reg.Counter("approx_request_errors_total", "non-2xx responses other than 429"),
		selects:     reg.Counter("approx_select_total", "/v1/select probes served"),
		staleReads:  reg.Counter("approx_degraded_stale_reads_total", "reads served stale-marked while unable to reach a leader"),
		byEndpoint:  make(map[string]*obs.Counter),
		endpointDur: make(map[string]*obs.Histogram),
		byPredicate: make(map[string]*obs.Histogram),
	}

	// Selection engine: the max-score pruning counters (process-wide, the
	// cost the result cache cannot hide).
	reg.CounterFunc("approx_hotpath_queries_total", "engine selections", func() uint64 {
		return core.HotPathSnapshot().Queries
	})
	reg.CounterFunc("approx_hotpath_pruned_queries_total", "engine selections where admission closed early", func() uint64 {
		return core.HotPathSnapshot().PrunedQueries
	})
	reg.CounterFunc("approx_hotpath_lists_total", "posting lists presented to the engine", func() uint64 {
		return core.HotPathSnapshot().Lists
	})
	reg.CounterFunc("approx_hotpath_lists_skipped_total", "posting lists skipped entirely", func() uint64 {
		return core.HotPathSnapshot().ListsSkipped
	})
	reg.CounterFunc("approx_hotpath_postings_skipped_total", "postings in skipped lists", func() uint64 {
		return core.HotPathSnapshot().PostingsSkipped
	})

	// Durable store: WAL append/fsync and snapshot save/load latency
	// (process-wide obs histograms owned by the store package).
	reg.RegisterHistogram("approx_wal_append_us", "WAL append latency (framing + write)", store.WALAppendUS)
	reg.RegisterHistogram("approx_wal_fsync_us", "WAL fsync latency", store.WALFsyncUS)
	reg.RegisterHistogram("approx_snapshot_save_us", "snapshot segment write+fsync latency", store.SnapshotSaveUS)
	reg.RegisterHistogram("approx_snapshot_load_us", "snapshot load (decode + WAL replay scan) latency", store.SnapshotLoadUS)

	// Tracing: sampled traces since process start.
	reg.CounterFunc("approx_traces_sampled_total", "requests traced by the sampler", obs.TracesSampled)

	return m
}

// endpoint returns the per-endpoint request counter, creating and
// registering it on first use.
func (m *metrics) endpoint(name string) *obs.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byEndpoint[name]
	if !ok {
		c = m.reg.Counter("approx_http_requests_total", "requests by endpoint", obs.Label{Key: "endpoint", Value: name})
		m.byEndpoint[name] = c
	}
	return c
}

// endpointDuration returns the per-endpoint latency histogram.
func (m *metrics) endpointDuration(name string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.endpointDur[name]
	if !ok {
		h = m.reg.Histogram("approx_request_duration_us", "request latency by endpoint", obs.Label{Key: "endpoint", Value: name})
		m.endpointDur[name] = h
	}
	return h
}

// predicate returns the per-predicate selection latency histogram.
func (m *metrics) predicate(name string) *obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.byPredicate[name]
	if !ok {
		h = m.reg.Histogram("approx_predicate_duration_us", "selection latency by predicate", obs.Label{Key: "predicate", Value: name})
		m.byPredicate[name] = h
	}
	return h
}

func (m *metrics) endpointCounts() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.byEndpoint))
	for k, v := range m.byEndpoint {
		out[k] = v.Value()
	}
	return out
}

func (m *metrics) predicateStats() map[string]HistogramStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]HistogramStats, len(m.byPredicate))
	for k, h := range m.byPredicate {
		out[k] = toHistogramStats(h.Snapshot())
	}
	return out
}
