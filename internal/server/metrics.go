package server

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// histogram is a lock-free log2-bucketed latency histogram: bucket i counts
// observations with ceil(log2(µs)) == i, so quantile estimates are accurate
// to a factor of two — plenty for spotting regressions — while observation
// is two atomic adds on the hot path.
type histogram struct {
	count   atomic.Uint64
	sumUS   atomic.Uint64
	buckets [32]atomic.Uint64
}

func bucketOf(us uint64) int {
	if us == 0 {
		return 0
	}
	b := bits.Len64(us) // ceil(log2)+1 for non-powers, fine for bucketing
	if b >= len((&histogram{}).buckets) {
		b = len((&histogram{}).buckets) - 1
	}
	return b
}

func (h *histogram) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	h.count.Add(1)
	h.sumUS.Add(us)
	h.buckets[bucketOf(us)].Add(1)
}

// quantile returns an upper bound (the bucket boundary) for the q-quantile
// latency in microseconds.
func (h *histogram) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > target {
			if i == 0 {
				return 1
			}
			return uint64(1) << i
		}
	}
	return uint64(1) << (len(h.buckets) - 1)
}

// HistogramStats is the JSON shape of one predicate's latency histogram.
type HistogramStats struct {
	Count uint64 `json:"count"`
	AvgUS uint64 `json:"avg_us"`
	P50US uint64 `json:"p50_us"`
	P90US uint64 `json:"p90_us"`
	P99US uint64 `json:"p99_us"`
}

func (h *histogram) snapshot() HistogramStats {
	n := h.count.Load()
	s := HistogramStats{Count: n}
	if n > 0 {
		s.AvgUS = h.sumUS.Load() / n
		s.P50US = h.quantile(0.50)
		s.P90US = h.quantile(0.90)
		s.P99US = h.quantile(0.99)
	}
	return s
}

// metrics aggregates the server-wide counters behind /v1/stats.
type metrics struct {
	start    time.Time
	requests atomic.Uint64 // admitted requests
	rejected atomic.Uint64 // 429s from admission
	errors   atomic.Uint64 // non-2xx responses other than 429

	mu          sync.Mutex
	byEndpoint  map[string]*atomic.Uint64
	byPredicate map[string]*histogram
}

func newMetrics() *metrics {
	return &metrics{
		start:       time.Now(),
		byEndpoint:  make(map[string]*atomic.Uint64),
		byPredicate: make(map[string]*histogram),
	}
}

func (m *metrics) endpoint(name string) *atomic.Uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byEndpoint[name]
	if !ok {
		c = &atomic.Uint64{}
		m.byEndpoint[name] = c
	}
	return c
}

func (m *metrics) predicate(name string) *histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.byPredicate[name]
	if !ok {
		h = &histogram{}
		m.byPredicate[name] = h
	}
	return h
}

func (m *metrics) endpointCounts() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.byEndpoint))
	for k, v := range m.byEndpoint {
		out[k] = v.Load()
	}
	return out
}

func (m *metrics) predicateStats() map[string]HistogramStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]HistogramStats, len(m.byPredicate))
	for k, h := range m.byPredicate {
		out[k] = h.snapshot()
	}
	return out
}
