package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	approxsel "repro"
	"repro/internal/core"
	"repro/internal/obs"
)

// ---- wire types ----

// Match is the wire form of one ranked result.
type Match struct {
	TID   int     `json:"tid"`
	Score float64 `json:"score"`
}

// RecordJSON is the wire form of one base-relation tuple.
type RecordJSON struct {
	TID  int    `json:"tid"`
	Text string `json:"text"`
}

// SelectRequest asks for one approximate selection. An empty corpus name
// resolves when exactly one corpus is loaded; an empty realization selects
// native. Limit 0 means the full ranking; Threshold null means
// un-thresholded.
type SelectRequest struct {
	Corpus      string   `json:"corpus,omitempty"`
	Predicate   string   `json:"predicate"`
	Realization string   `json:"realization,omitempty"`
	Query       string   `json:"query"`
	Limit       int      `json:"limit,omitempty"`
	Threshold   *float64 `json:"threshold,omitempty"`
	// MinEpochs is the client's last-seen epoch vector (epoch-consistent
	// reads): the reply is computed at-or-past it, waiting up to the
	// request deadline on a stale replica (504 → retry elsewhere).
	MinEpochs []uint64 `json:"min_epochs,omitempty"`
}

// SelectResponse carries the ranked matches. Epochs is the shard-epoch
// vector the result corresponds to; it is null when the probe raced a
// mutation (the result is then served uncached and not cached).
type SelectResponse struct {
	Matches   []Match  `json:"matches"`
	Count     int      `json:"count"`
	Cached    bool     `json:"cached"`
	Epochs    []uint64 `json:"epochs,omitempty"`
	ElapsedUS int64    `json:"elapsed_us"`
}

// BatchRequest probes one predicate with many queries.
type BatchRequest struct {
	Corpus      string   `json:"corpus,omitempty"`
	Predicate   string   `json:"predicate"`
	Realization string   `json:"realization,omitempty"`
	Queries     []string `json:"queries"`
	Limit       int      `json:"limit,omitempty"`
	Threshold   *float64 `json:"threshold,omitempty"`
	// MinEpochs: see SelectRequest.
	MinEpochs []uint64 `json:"min_epochs,omitempty"`
}

// BatchResponse carries one ranked match slice per query, in query order.
// Epochs is the shard-epoch vector every result corresponds to; it is null
// when the batch raced a mutation, in which case individual results may
// reflect different relation versions (cache hits from the older one,
// fresh probes from the newer).
type BatchResponse struct {
	Results   [][]Match `json:"results"`
	CacheHits int       `json:"cache_hits"`
	Epochs    []uint64  `json:"epochs,omitempty"`
	ElapsedUS int64     `json:"elapsed_us"`
}

// JoinRequest evaluates the approximate join R ⋈ sim≥θ S with the loaded
// corpus as the base relation and the probe records as R.
type JoinRequest struct {
	Corpus      string       `json:"corpus,omitempty"`
	Predicate   string       `json:"predicate"`
	Realization string       `json:"realization,omitempty"`
	Theta       float64      `json:"theta"`
	Probe       []RecordJSON `json:"probe"`
}

// JoinPair is the wire form of one join result.
type JoinPair struct {
	ProbeTID int     `json:"probe_tid"`
	BaseTID  int     `json:"base_tid"`
	Score    float64 `json:"score"`
}

// JoinResponse carries the join pairs grouped by probe record.
type JoinResponse struct {
	Pairs     []JoinPair `json:"pairs"`
	Count     int        `json:"count"`
	ElapsedUS int64      `json:"elapsed_us"`
}

// MutateRequest inserts or upserts records into a corpus.
type MutateRequest struct {
	Corpus  string       `json:"corpus,omitempty"`
	Records []RecordJSON `json:"records"`
}

// DeleteRequest removes records by TID.
type DeleteRequest struct {
	Corpus string `json:"corpus,omitempty"`
	TIDs   []int  `json:"tids"`
}

// MutateResponse reports the corpus state after a mutation.
type MutateResponse struct {
	Len    int      `json:"len"`
	Epochs []uint64 `json:"epochs"`
}

// CorpusInfo describes one loaded corpus.
type CorpusInfo struct {
	Name   string   `json:"name"`
	Len    int      `json:"len"`
	Shards int      `json:"shards"`
	Epochs []uint64 `json:"epochs"`
}

// CreateCorpusRequest loads a new corpus at runtime.
type CreateCorpusRequest struct {
	Name    string       `json:"name"`
	Shards  int          `json:"shards,omitempty"`
	Records []RecordJSON `json:"records"`
}

// SnapshotRequest checkpoints one corpus's durable store.
type SnapshotRequest struct {
	Corpus string `json:"corpus,omitempty"`
}

// SnapshotResponse reports the durable state right after a checkpoint: the
// WAL is empty and the snapshot epochs equal the corpus's current epochs.
type SnapshotResponse struct {
	Corpus string    `json:"corpus"`
	Store  StoreInfo `json:"store"`
}

// StoreInfo is the wire form of one corpus's durable-state counters.
type StoreInfo struct {
	Corpus         string   `json:"corpus"`
	Dir            string   `json:"dir"`
	SnapshotEpochs []uint64 `json:"snapshot_epochs"`
	SnapshotBytes  int64    `json:"snapshot_bytes"`
	WALEntries     int      `json:"wal_entries"`
	LastLoadUS     int64    `json:"last_load_us"`
}

// StoreStats is the store block of /v1/stats, present when the server runs
// with a data directory.
type StoreStats struct {
	DataDir    string      `json:"data_dir"`
	WALEntries int         `json:"wal_entries"`
	Corpora    []StoreInfo `json:"corpora"`
}

// Stats is the /v1/stats response.
type Stats struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Requests      uint64                    `json:"requests"`
	Rejected      uint64                    `json:"rejected"`
	Errors        uint64                    `json:"errors"`
	QPS           float64                   `json:"qps"`
	Cache         CacheStats                `json:"cache"`
	Endpoints     map[string]uint64         `json:"endpoints"`
	Predicates    map[string]HistogramStats `json:"predicates"`
	Corpora       []CorpusInfo              `json:"corpora"`
	// HotPath reports the selection engine's max-score pruning counters —
	// process-wide (every native selection in this server, across corpora
	// and shards), the cost the result cache cannot hide.
	HotPath HotPathStats `json:"hot_path"`
	// Store reports the durable persistence state (snapshot epochs, WAL
	// entry counts, last load duration) when the server runs with a data
	// directory; omitted for a purely in-memory server.
	Store *StoreStats `json:"store,omitempty"`
	// Watch reports the standing-query subsystem, aggregated across
	// corpora.
	Watch WatchStats `json:"watch"`
	// Cluster reports the replication layer (role, term, applied epoch
	// vectors, follower lag, peer liveness) when the server is part of a
	// cluster; omitted standalone.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Trace reports the span tracer: sampling configuration, traces
	// retained, and the process-wide per-stage latency aggregates.
	Trace TraceStats `json:"trace"`
}

// WatchStats is the watch block of /v1/stats: active standing queries and
// the cost/volume counters of incremental delivery.
type WatchStats struct {
	// Active counts registered watches across all corpora.
	Active int `json:"active"`
	// EventsEmitted counts events delivered or preloaded for replay.
	EventsEmitted uint64 `json:"events_emitted"`
	// EventsReplayed counts events derived from history for resuming
	// clients.
	EventsReplayed uint64 `json:"events_replayed"`
	// MaxLagEpochs is the widest consumer lag, in epochs, over active
	// watches.
	MaxLagEpochs uint64 `json:"max_lag_epochs"`
	// DeriveUS is cumulative wall time spent deriving watch events — the
	// incremental cost mutations pay for standing queries.
	DeriveUS int64 `json:"derive_us"`
}

// HotPathStats is the wire form of the engine's pruning counters, plus the
// derived skipped-list fraction.
type HotPathStats struct {
	core.HotPathStats
	PruneRate float64 `json:"prune_rate"`
}

// CacheStats aggregates result-cache counters across corpora.
type CacheStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

func toWire(ms []core.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{TID: m.TID, Score: m.Score}
	}
	return out
}

func toRecords(rs []RecordJSON) []approxsel.Record {
	out := make([]approxsel.Record, len(rs))
	for i, r := range rs {
		out[i] = approxsel.Record{TID: r.TID, Text: r.Text}
	}
	return out
}

// ---- routing ----

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/select", s.instrument("select", s.admit(s.handleSelect)))
	mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.admit(s.handleBatch)))
	mux.HandleFunc("POST /v1/join", s.instrument("join", s.admit(s.handleJoin)))
	mux.HandleFunc("POST /v1/insert", s.instrument("insert", s.admit(s.handleMutate(insertOp))))
	mux.HandleFunc("POST /v1/upsert", s.instrument("upsert", s.admit(s.handleMutate(upsertOp))))
	mux.HandleFunc("POST /v1/delete", s.instrument("delete", s.admit(s.handleDelete)))
	mux.HandleFunc("POST /v1/snapshot", s.instrument("snapshot", s.admit(s.handleSnapshot)))
	// Watches bypass admit: an SSE stream outlives any request deadline and
	// is admitted against Config.MaxWatches instead of MaxInFlight.
	mux.HandleFunc("POST /v1/watch", s.instrument("watch", s.handleWatch))
	mux.HandleFunc("POST /v1/corpora", s.instrument("corpora", s.admit(s.handleCreateCorpus)))
	mux.HandleFunc("GET /v1/corpora", s.instrument("corpora", s.handleListCorpora))
	mux.HandleFunc("POST /v1/hash", s.instrument("hash", s.admit(s.handleHash)))
	mux.HandleFunc("GET /v1/stats", s.instrument("stats", s.handleStats))
	// The observability surface itself is served bare: scrapes should not
	// perturb the very counters, sampler and slow log they report.
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/slowlog", s.handleSlowlog)
	// The replication and election RPC surface of an attached cluster node;
	// 404 on a standalone server.
	mux.HandleFunc("/cluster/", s.handleClusterRPC)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Role lets a load balancer route writes to the leader without a
		// second request.
		resp := map[string]string{"status": "ok"}
		if n := s.clusterNode(); n != nil {
			role, _, leader := n.Role()
			resp["role"] = string(role)
			resp["leader"] = leader
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	if code != http.StatusTooManyRequests {
		s.met.errors.Add(1)
	}
	writeError(w, code, err)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	body := r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		return fmt.Errorf("server: bad request body: %w", err)
	}
	return nil
}

// selectOptions folds the request limits into the core representation.
func selectOptions(limit int, threshold *float64) (core.SelectOptions, error) {
	if limit < 0 {
		return core.SelectOptions{}, fmt.Errorf("server: negative limit %d", limit)
	}
	opts := core.SelectOptions{Limit: limit}
	if threshold != nil {
		opts.Threshold = *threshold
		opts.HasThreshold = true
	}
	return opts, nil
}

// resolve looks up the corpus and attached predicate of a request.
func (s *Server) resolve(w http.ResponseWriter, corpus, predicate, realization string) (*corpusHandle, *predicateHandle, bool) {
	if predicate == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: missing predicate name"))
		return nil, nil, false
	}
	h, err := s.corpus(corpus)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return nil, nil, false
	}
	ph, err := h.predicate(realization, predicate)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return nil, nil, false
	}
	return h, ph, true
}

// ---- selection endpoints ----

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	req.Realization = normRealization(req.Realization)
	h, ph, ok := s.resolve(w, req.Corpus, req.Predicate, req.Realization)
	if !ok {
		return
	}
	opts, err := selectOptions(req.Limit, req.Threshold)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := h.awaitEpochs(r.Context(), req.MinEpochs); err != nil {
		s.fail(w, epochWaitStatus(err), err)
		return
	}
	if len(req.MinEpochs) == 0 {
		s.markStale(w)
	}
	ri := requestInfo(r.Context())
	ri.corpus, ri.predicate, ri.shards = h.name, req.Predicate, h.sc.Shards()
	start := time.Now()
	ms, epochs, cached, err := h.probe(r.Context(), ph, req.Realization, req.Predicate, req.Query, opts)
	elapsed := time.Since(start)
	if err != nil {
		s.fail(w, status(err), err)
		return
	}
	if cached {
		ri.cache = "hit"
	} else {
		ri.cache = "miss"
	}
	s.met.selects.Add(1)
	s.met.predicate(req.Predicate).Observe(elapsed)
	writeJSON(w, http.StatusOK, SelectResponse{
		Matches:   toWire(ms),
		Count:     len(ms),
		Cached:    cached,
		Epochs:    epochs,
		ElapsedUS: elapsed.Microseconds(),
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	req.Realization = normRealization(req.Realization)
	h, ph, ok := s.resolve(w, req.Corpus, req.Predicate, req.Realization)
	if !ok {
		return
	}
	opts, err := selectOptions(req.Limit, req.Threshold)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := h.awaitEpochs(r.Context(), req.MinEpochs); err != nil {
		s.fail(w, epochWaitStatus(err), err)
		return
	}
	if len(req.MinEpochs) == 0 {
		s.markStale(w)
	}
	ri := requestInfo(r.Context())
	ri.corpus, ri.predicate, ri.shards = h.name, req.Predicate, h.sc.Shards()
	start := time.Now()
	results := make([][]Match, len(req.Queries))
	hits := 0
	// Serve each query from the cache where possible, then fan the misses
	// out through the batch worker pool in one pass.
	e1 := h.sc.Epochs()
	var missIdx []int
	for i, q := range req.Queries {
		if h.cache != nil {
			key := cacheKeyFor(h, req, opts, e1, q)
			if ms, ok := h.cache.Get(key); ok {
				results[i] = toWire(ms)
				hits++
				continue
			}
		}
		missIdx = append(missIdx, i)
	}
	// Cache hits are versioned at e1 by construction; the batch as a whole
	// is e1-consistent when the misses were too.
	stable := true
	if len(missIdx) > 0 {
		queries := make([]string, len(missIdx))
		for j, i := range missIdx {
			queries[j] = req.Queries[i]
		}
		batchOpts := []approxsel.BatchOption{approxsel.Workers(s.cfg.Workers), approxsel.Limit(opts.Limit)}
		if opts.HasThreshold {
			batchOpts = append(batchOpts, approxsel.Threshold(opts.Threshold))
		}
		probed, err := func() ([][]core.Match, error) {
			if ph.mu != nil {
				ph.mu.Lock()
				defer ph.mu.Unlock()
			}
			return approxsel.SelectBatch(r.Context(), ph.p, queries, batchOpts...)
		}()
		if err != nil {
			// BatchError names the lowest failing probe deterministically;
			// translate its index back into the caller's query list.
			var be *approxsel.BatchError
			if errors.As(err, &be) {
				err = fmt.Errorf("server: batch query %d: %w", missIdx[be.Query], be.Unwrap())
			}
			s.fail(w, status(err), err)
			return
		}
		e2 := h.sc.Epochs()
		stable = epochsEqual(e1, e2)
		for j, i := range missIdx {
			results[i] = toWire(probed[j])
			if stable && h.cache != nil && len(probed[j]) <= maxCachedMatches {
				h.cache.Put(cacheKeyFor(h, req, opts, e1, req.Queries[i]), probed[j])
			}
		}
	}
	elapsed := time.Since(start)
	// The predicate histogram tracks per-selection latency: a batch
	// contributes one observation per query at the amortized cost, not a
	// single whole-batch outlier.
	if n := len(req.Queries); n > 0 {
		h := s.met.predicate(req.Predicate)
		per := elapsed / time.Duration(n)
		for i := 0; i < n; i++ {
			h.Observe(per)
		}
	}
	if hits == len(req.Queries) {
		ri.cache = "hit"
	} else {
		ri.cache = "miss"
	}
	resp := BatchResponse{
		Results:   results,
		CacheHits: hits,
		ElapsedUS: elapsed.Microseconds(),
	}
	if stable {
		resp.Epochs = e1
	}
	writeJSON(w, http.StatusOK, resp)
}

func cacheKeyFor(h *corpusHandle, req BatchRequest, opts core.SelectOptions, epochs []uint64, query string) string {
	return cacheKey(h.name, req.Predicate, req.Realization, opts, epochs, query)
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	req.Realization = normRealization(req.Realization)
	h, ph, ok := s.resolve(w, req.Corpus, req.Predicate, req.Realization)
	if !ok {
		return
	}
	ri := requestInfo(r.Context())
	ri.corpus, ri.predicate, ri.shards = h.name, req.Predicate, h.sc.Shards()
	start := time.Now()
	pairs, err := func() ([]approxsel.JoinPair, error) {
		if ph.mu != nil {
			ph.mu.Lock()
			defer ph.mu.Unlock()
		}
		return approxsel.ApproximateJoinCtx(r.Context(), ph.p, toRecords(req.Probe), req.Theta,
			approxsel.Workers(s.cfg.Workers))
	}()
	elapsed := time.Since(start)
	if err != nil {
		s.fail(w, status(err), err)
		return
	}
	// Like /v1/batch: one amortized observation per probe record.
	if n := len(req.Probe); n > 0 {
		h := s.met.predicate(req.Predicate)
		per := elapsed / time.Duration(n)
		for i := 0; i < n; i++ {
			h.Observe(per)
		}
	}
	out := make([]JoinPair, len(pairs))
	for i, p := range pairs {
		out[i] = JoinPair{ProbeTID: p.ProbeTID, BaseTID: p.BaseTID, Score: p.Score}
	}
	writeJSON(w, http.StatusOK, JoinResponse{Pairs: out, Count: len(out), ElapsedUS: elapsed.Microseconds()})
}

// ---- mutation endpoints ----

// mutationStatus distinguishes the failure classes of a mutation:
// validation errors (duplicate TID, unknown TID) are the caller's fault
// and stay 400; a batch that partially landed across shards is a plain
// 500 — NOT retryable, the client must reconcile; an untouched-state
// persistence failure (disk full, log sealed during drain) is 503, which
// clients and load balancers retry.
func mutationStatus(err error) int {
	var part *approxsel.PartialMutationError
	if errors.As(err, &part) {
		return http.StatusInternalServerError
	}
	var pe *core.PersistenceError
	if errors.As(err, &pe) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

type mutateOp int

const (
	insertOp mutateOp = iota
	upsertOp
)

func (s *Server) handleMutate(op mutateOp) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// The body is drained before decoding so a follower can relay it
		// to the leader verbatim (writes are leader-only in a cluster).
		body, err := s.readBody(w, r)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		if s.forwardMutation(w, r, body) {
			return
		}
		var req MutateRequest
		if err := json.Unmarshal(body, &req); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %w", err))
			return
		}
		h, err := s.corpus(req.Corpus)
		if err != nil {
			s.fail(w, http.StatusNotFound, err)
			return
		}
		// Mutations apply atomically and are not interruptible once
		// started; honor an already-expired deadline before beginning.
		if err := r.Context().Err(); err != nil {
			s.fail(w, status(err), err)
			return
		}
		ri := requestInfo(r.Context())
		ri.corpus, ri.shards = h.name, h.sc.Shards()
		records := toRecords(req.Records)
		_, ap := obs.StartSpan(r.Context(), "apply")
		h.mmu.Lock()
		if op == upsertOp {
			err = h.sc.Upsert(records...)
		} else {
			err = h.sc.Insert(records...)
		}
		n, epochs := h.sc.State()
		h.mmu.Unlock()
		ap.End()
		if err != nil {
			s.fail(w, mutationStatus(err), err)
			return
		}
		// Acknowledge only once a majority of the cluster holds the batch;
		// a leader killed after the 200 cannot lose this write.
		if err := s.waitQuorum(r.Context(), h, epochs); err != nil {
			s.fail(w, http.StatusGatewayTimeout, err)
			return
		}
		writeJSON(w, http.StatusOK, MutateResponse{Len: n, Epochs: epochs})
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(w, r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if s.forwardMutation(w, r, body) {
		return
	}
	var req DeleteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %w", err))
		return
	}
	h, err := s.corpus(req.Corpus)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	if err := r.Context().Err(); err != nil {
		s.fail(w, status(err), err)
		return
	}
	ri := requestInfo(r.Context())
	ri.corpus, ri.shards = h.name, h.sc.Shards()
	_, ap := obs.StartSpan(r.Context(), "apply")
	h.mmu.Lock()
	err = h.sc.Delete(req.TIDs...)
	n, epochs := h.sc.State()
	h.mmu.Unlock()
	ap.End()
	if err != nil {
		s.fail(w, mutationStatus(err), err)
		return
	}
	if err := s.waitQuorum(r.Context(), h, epochs); err != nil {
		s.fail(w, http.StatusGatewayTimeout, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Len: n, Epochs: epochs})
}

// handleSnapshot checkpoints one corpus's durable store: a fresh snapshot
// segment per shard at the current epoch, the write-ahead log truncated,
// and the manifest rewritten — the admin lever that bounds the next cold
// start's replay work.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req SnapshotRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	h, err := s.corpus(req.Corpus)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	if !h.sc.Persistent() {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: corpus %q has no data directory", h.name))
		return
	}
	// Checkpoints freeze mutations for the duration and are not
	// interruptible; honor an already-expired deadline before starting.
	if err := r.Context().Err(); err != nil {
		s.fail(w, status(err), err)
		return
	}
	if err := h.sc.Checkpoint(); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	st, _ := h.sc.StoreStats()
	writeJSON(w, http.StatusOK, SnapshotResponse{Corpus: h.name, Store: storeInfo(h.name, st)})
}

func storeInfo(name string, st approxsel.StoreStats) StoreInfo {
	return StoreInfo{
		Corpus:         name,
		Dir:            st.Dir,
		SnapshotEpochs: st.SnapshotEpochs,
		SnapshotBytes:  st.SnapshotBytes,
		WALEntries:     st.WALEntries,
		LastLoadUS:     st.LastLoadDur.Microseconds(),
	}
}

// ---- corpora and observability ----

func (s *Server) handleCreateCorpus(w http.ResponseWriter, r *http.Request) {
	// Corpus creation is a mutation: in a cluster it lands at the leader
	// and reaches followers through the snapshot join path.
	body, err := s.readBody(w, r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if s.forwardMutation(w, r, body) {
		return
	}
	var req CreateCorpusRequest
	if err := json.Unmarshal(body, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: bad request body: %w", err))
		return
	}
	// Corpus builds are not interruptible; honor an already-expired
	// deadline before paying for one.
	if err := r.Context().Err(); err != nil {
		s.fail(w, status(err), err)
		return
	}
	if err := s.addCorpus(req.Name, toRecords(req.Records), req.Shards); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errCorpusExists) {
			code = http.StatusConflict
		}
		s.fail(w, code, err)
		return
	}
	h, _ := s.corpus(req.Name)
	writeJSON(w, http.StatusCreated, h.info())
}

func (h *corpusHandle) info() CorpusInfo {
	n, epochs := h.sc.State()
	return CorpusInfo{Name: h.name, Len: n, Shards: h.sc.Shards(), Epochs: epochs}
}

func (s *Server) handleListCorpora(w http.ResponseWriter, r *http.Request) {
	var out []CorpusInfo
	for _, name := range s.corpusNames() {
		if h, err := s.corpus(name); err == nil {
			out = append(out, h.info())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"corpora": out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// stats assembles the /v1/stats payload.
func (s *Server) stats() Stats {
	uptime := time.Since(s.met.start).Seconds()
	st := Stats{
		UptimeSeconds: uptime,
		Requests:      s.met.requests.Value(),
		Rejected:      s.met.rejected.Value(),
		Errors:        s.met.errors.Value(),
		Endpoints:     s.met.endpointCounts(),
		Predicates:    s.met.predicateStats(),
	}
	if uptime > 0 {
		st.QPS = float64(st.Requests) / uptime
	}
	if s.cfg.DataDir != "" {
		st.Store = &StoreStats{DataDir: s.cfg.DataDir}
	}
	for _, name := range s.corpusNames() {
		h, err := s.corpus(name)
		if err != nil {
			continue
		}
		st.Corpora = append(st.Corpora, h.info())
		if h.cache != nil {
			cs := h.cache.Stats()
			st.Cache.Hits += cs.Hits
			st.Cache.Misses += cs.Misses
			st.Cache.Evictions += cs.Evictions
			st.Cache.Entries += cs.Entries
		}
		if ss, ok := h.sc.StoreStats(); ok && st.Store != nil {
			st.Store.Corpora = append(st.Store.Corpora, storeInfo(name, ss))
			st.Store.WALEntries += ss.WALEntries
		}
		ws := h.sc.WatchStats()
		st.Watch.Active += ws.Active
		st.Watch.EventsEmitted += ws.Emitted
		st.Watch.EventsReplayed += ws.Replayed
		st.Watch.DeriveUS += ws.DeriveNS / 1000
		if ws.MaxLagEpochs > st.Watch.MaxLagEpochs {
			st.Watch.MaxLagEpochs = ws.MaxLagEpochs
		}
	}
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		st.Cache.HitRate = float64(st.Cache.Hits) / float64(total)
	}
	hp := core.HotPathSnapshot()
	st.HotPath = HotPathStats{HotPathStats: hp, PruneRate: hp.PruneRate()}
	st.Cluster = s.clusterStats()
	st.Trace = s.traceStats()
	return st
}
