// Package cache implements the serving subsystem's epoch-keyed LRU result
// cache. Keys embed the corpus's shard-epoch vector (see Key), so any
// Insert/Delete/Upsert invalidates exactly by advancing an epoch — entries
// for the old version simply stop being addressable and age out of the LRU
// tail; nothing ever flushes explicitly. Repeated and overlapping query
// workloads (the hot head of a zipf-skewed mix) are served from the cache
// without re-probing any predicate.
package cache

import (
	"strconv"
	"strings"
	"sync"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// LRU is a fixed-capacity least-recently-used map from string keys to
// values, safe for concurrent use. Values must be treated as immutable by
// callers: Get returns the cached value itself, not a copy.
type LRU[V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*node[V]
	head    *node[V] // most recently used
	tail    *node[V] // least recently used
	stats   Stats
}

type node[V any] struct {
	key        string
	val        V
	prev, next *node[V]
}

// New returns an LRU holding at most capacity entries; capacity < 1 is
// clamped to 1.
func New[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[V]{cap: capacity, entries: make(map[string]*node[V], capacity)}
}

// Get returns the value cached under key, marking it most recently used.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		var zero V
		return zero, false
	}
	c.stats.Hits++
	c.moveToFront(n)
	return n.val, true
}

// Put caches val under key, evicting the least recently used entry when
// the cache is full. An existing entry is replaced in place.
func (c *LRU[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.entries[key]; ok {
		n.val = val
		c.moveToFront(n)
		return
	}
	if len(c.entries) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.stats.Evictions++
	}
	n := &node[V]{key: key, val: val}
	c.entries[key] = n
	c.pushFront(n)
}

// Len returns the current entry count.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the effectiveness counters.
func (c *LRU[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

func (c *LRU[V]) moveToFront(n *node[V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *LRU[V]) pushFront(n *node[V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU[V]) unlink(n *node[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// Key builds a cache key from the request coordinates and the shard-epoch
// vector observed for the result: any mutation advances an epoch and
// thereby changes every future key for that corpus, which is the whole
// invalidation story. Fields are joined with an unprintable separator so
// user-supplied strings cannot collide across fields.
func Key(corpus, predicate, realization string, limit int, threshold float64, hasThreshold bool, epochs []uint64, query string) string {
	var b strings.Builder
	b.Grow(len(corpus) + len(predicate) + len(realization) + len(query) + 16*len(epochs) + 32)
	b.WriteString(corpus)
	b.WriteByte(0x1f)
	b.WriteString(predicate)
	b.WriteByte(0x1f)
	b.WriteString(realization)
	b.WriteByte(0x1f)
	b.WriteString(strconv.Itoa(limit))
	b.WriteByte(0x1f)
	if hasThreshold {
		b.WriteString(strconv.FormatFloat(threshold, 'x', -1, 64))
	}
	b.WriteByte(0x1f)
	for _, e := range epochs {
		b.WriteString(strconv.FormatUint(e, 36))
		b.WriteByte('.')
	}
	b.WriteByte(0x1f)
	b.WriteString(query)
	return b.String()
}
