package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := New[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a: %v %v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a after eviction: %v %v", v, ok)
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("replace in place: %v", v)
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.HitRate() <= 0 || s.HitRate() >= 1 {
		t.Fatalf("hit rate: %v", s.HitRate())
	}
}

func TestLRUCapacityClamp(t *testing.T) {
	c := New[string](0)
	c.Put("a", "x")
	c.Put("b", "y")
	if c.Len() != 1 {
		t.Fatalf("capacity clamp: %d entries", c.Len())
	}
}

// TestKeyEpochInvalidation is the invalidation story in miniature: the same
// request under a moved epoch vector builds a different key, so a mutation
// invalidates without any flush.
func TestKeyEpochInvalidation(t *testing.T) {
	k1 := Key("main", "BM25", "native", 10, 0, false, []uint64{3, 0, 7}, "q")
	k2 := Key("main", "BM25", "native", 10, 0, false, []uint64{3, 1, 7}, "q")
	if k1 == k2 {
		t.Fatal("epoch advance must change the key")
	}
	if k1 != Key("main", "BM25", "native", 10, 0, false, []uint64{3, 0, 7}, "q") {
		t.Fatal("key must be deterministic")
	}
	// Field boundaries must be collision-free even with crafted strings.
	a := Key("c", "pq", "", 0, 0, false, nil, "x")
	b := Key("c", "p", "q", 0, 0, false, nil, "x")
	if a == b {
		t.Fatal("field separator collision")
	}
	// Threshold presence and value are part of the key.
	if Key("c", "p", "n", 0, 0.5, true, nil, "x") == Key("c", "p", "n", 0, 0, false, nil, "x") {
		t.Fatal("threshold must be keyed")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := New[int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}
