// Package server implements approxserved's HTTP/JSON serving subsystem: it
// owns one or more sharded corpora and exposes approximate selection
// (/v1/select, /v1/batch, /v1/join) and relation mutation (/v1/insert,
// /v1/delete, /v1/upsert) over them, with request admission (max in-flight,
// per-request deadline), an epoch-keyed LRU result cache, and a /v1/stats
// endpoint reporting QPS, cache hit rate and per-predicate latency
// histograms.
//
// Consistency contract: every response that reports a shard-epoch vector is
// bit-identical to evaluating the same request against a fresh corpus at
// that version. Results are cached only when the epoch vector is stable
// across the probe (read before and after); a response that raced a
// mutation is returned uncached with no epoch vector. Cache invalidation is
// purely by epoch advance — mutations change every future cache key of the
// corpus, and stale entries age out of the LRU tail.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	approxsel "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server/cache"
	"repro/internal/store"
)

// Config tunes the serving subsystem; the zero value selects sensible
// defaults for every knob.
type Config struct {
	// Shards is the default shard count of corpora the server creates
	// (AddCorpus and POST /v1/corpora without an explicit count).
	// Values < 1 select GOMAXPROCS.
	Shards int
	// CacheEntries caps the per-corpus result cache. 0 selects the default
	// (4096 entries); negative disables result caching.
	CacheEntries int
	// MaxInFlight caps concurrently admitted requests; excess requests are
	// rejected immediately with 429. Values < 1 select 16×GOMAXPROCS.
	MaxInFlight int
	// RequestTimeout bounds every admitted request's context. Values <= 0
	// select 10s.
	RequestTimeout time.Duration
	// Workers sizes the per-request fan-out pool of /v1/batch and /v1/join.
	// Values < 1 select GOMAXPROCS.
	Workers int
	// MaxBodyBytes caps every request body, so one oversized POST cannot
	// exhaust memory regardless of admission. 0 selects 64 MiB; negative
	// disables the cap.
	MaxBodyBytes int64
	// MaxWatches caps concurrently served /v1/watch registrations (SSE
	// streams hold their handler for the stream's lifetime, so they are
	// admitted separately from MaxInFlight). Values < 1 select 64.
	MaxWatches int
	// TraceSample sets the span tracer's sampling rate: one in every
	// TraceSample requests is traced (1 traces everything). 0 selects the
	// default (1 in 16); negative disables tracing, making every span site
	// a single atomic load.
	TraceSample int
	// SlowLogEntries caps the slow-query log (the top-N slowest sampled
	// traces, full span trees, served at GET /v1/slowlog). 0 selects 32.
	SlowLogEntries int
	// AccessLog, when set, receives one structured line per request
	// (request ID, route, status, latency, shard count, cache outcome).
	// Nil disables access logging.
	AccessLog io.Writer
	// DataDir, when set, makes every corpus durable under
	// DataDir/<escaped corpus name>: an existing store there is loaded on
	// AddCorpus instead of rebuilding from records, mutation endpoints are
	// write-ahead logged, POST /v1/snapshot checkpoints, and CloseStores
	// (the daemon's graceful drain) fsyncs and seals the logs. Empty keeps
	// the server purely in-memory.
	DataDir string
}

const defaultCacheEntries = 4096

// errCorpusExists marks name conflicts from addCorpus, so the corpora
// handler can map them to 409 without matching message text.
var errCorpusExists = errors.New("corpus already exists")

// maxCachedMatches bounds the size of one result-cache entry: full or
// near-full rankings over a large corpus are not cached, so the
// entry-count cap (Config.CacheEntries) also bounds cache memory. Hot
// serving traffic uses limits anyway; an uncacheably large ranking is
// recomputed per request.
const maxCachedMatches = 2048

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = defaultCacheEntries
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 16 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxWatches < 1 {
		c.MaxWatches = 64
	}
	if c.TraceSample == 0 {
		c.TraceSample = 16
	}
	if c.TraceSample < 0 {
		c.TraceSample = -1
	}
	if c.SlowLogEntries < 1 {
		c.SlowLogEntries = 32
	}
	return c
}

// Server is the serving subsystem. Construct with New, load relations with
// AddCorpus (or POST /v1/corpora at runtime), and mount Handler on any
// http.Server.
type Server struct {
	cfg Config
	met *metrics
	// slow retains the top-N slowest sampled traces (GET /v1/slowlog);
	// alogMu serializes access-log writes so lines never interleave.
	slow   *obs.SlowLog
	alogMu sync.Mutex
	sem    chan struct{}
	// watchSem admits /v1/watch registrations; draining rejects new ones
	// once graceful shutdown has begun.
	watchSem chan struct{}
	draining atomic.Bool

	mu      sync.RWMutex
	corpora map[string]*corpusHandle
	// cluster is the attached replication node (AttachCluster); nil for a
	// standalone server.
	cluster *cluster.Node
	// creating holds names whose corpus build is in flight, so a racing
	// create of the same name fails fast instead of double-touching one
	// data directory.
	creating map[string]bool

	handler http.Handler
}

// New returns a server with no corpora loaded.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.withDefaults(),
		met:      newMetrics(),
		corpora:  make(map[string]*corpusHandle),
		creating: make(map[string]bool),
	}
	s.slow = obs.NewSlowLog(s.cfg.SlowLogEntries)
	// Sampling is process-wide (the engine's span sites read one global
	// atomic); the last-constructed server's knob wins, which in practice
	// is the daemon's single server.
	if s.cfg.TraceSample < 0 {
		obs.SetTraceSampling(0)
	} else {
		obs.SetTraceSampling(s.cfg.TraceSample)
	}
	s.registerServerMetrics()
	s.sem = make(chan struct{}, s.cfg.MaxInFlight)
	s.watchSem = make(chan struct{}, s.cfg.MaxWatches)
	s.handler = s.routes()
	return s
}

// AddCorpus creates a sharded corpus under the given name with the server's
// default shard count. It errors if the name is taken.
func (s *Server) AddCorpus(name string, records []approxsel.Record, opts ...approxsel.BuildOption) error {
	return s.addCorpus(name, records, s.cfg.Shards, opts...)
}

func (s *Server) addCorpus(name string, records []approxsel.Record, shards int, opts ...approxsel.BuildOption) error {
	if name == "" {
		return fmt.Errorf("server: empty corpus name")
	}
	// Control characters are rejected so corpus names can never spell out
	// the cache-key field separator (cache.Key) and collide across corpora;
	// "." and ".." are rejected because url.PathEscape passes them through
	// unchanged, which would let a durable corpus escape its DataDir.
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("server: corpus name %q contains control characters", name)
		}
	}
	if name == "." || name == ".." {
		return fmt.Errorf("server: corpus name %q is reserved", name)
	}
	if shards < 1 {
		shards = s.cfg.Shards
	}
	if s.cfg.DataDir != "" {
		dir := s.corpusDir(name)
		// Creating with records over an existing store would silently drop
		// the records (the store wins inside OpenShardedCorpus) — refuse
		// instead; loading is a records-free AddCorpus or LoadStoredCorpora.
		if len(records) > 0 && (store.HasManifest(dir) || store.Exists(dir)) {
			return fmt.Errorf("server: corpus %q already has a store in %s; load it with no records (the store wins)", name, dir)
		}
		opts = append(opts, approxsel.WithDataDir(dir))
	}
	// Reserve the name before paying for the build: a durable create has
	// on-disk side effects (segment writes, WAL creation), so two racing
	// creators of one name must never both reach OpenShardedCorpus — the
	// loser would truncate the WAL the winner is already appending to.
	s.mu.Lock()
	if _, ok := s.corpora[name]; ok || s.creating[name] {
		s.mu.Unlock()
		return fmt.Errorf("server: corpus %q: %w", name, errCorpusExists)
	}
	s.creating[name] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.creating, name)
		s.mu.Unlock()
	}()
	sc, err := approxsel.OpenShardedCorpus(records, shards, opts...)
	if err != nil {
		return err
	}
	h := &corpusHandle{
		name:  name,
		sc:    sc,
		preds: make(map[string]*predicateHandle),
	}
	if s.cfg.CacheEntries > 0 {
		h.cache = cache.New[[]core.Match](s.cfg.CacheEntries)
	}
	s.mu.Lock()
	s.corpora[name] = h
	s.mu.Unlock()
	s.wireReplication(h)
	return nil
}

// corpusDir is the data directory of one corpus: the name is path-escaped
// so it can never traverse outside DataDir.
func (s *Server) corpusDir(name string) string {
	return filepath.Join(s.cfg.DataDir, url.PathEscape(name))
}

// HasCorpus reports whether a corpus is loaded under the name.
func (s *Server) HasCorpus(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.corpora[name]
	return ok
}

// LoadStoredCorpora scans the data directory and loads every stored corpus
// found there — the restart path for corpora created at runtime through
// POST /v1/corpora, which would otherwise be unreachable until re-created.
// It returns the loaded names in directory order. A server without a data
// directory is a no-op.
func (s *Server) LoadStoredCorpora() ([]string, error) {
	if s.cfg.DataDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var loaded []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		// Server corpora are always sharded, so a loadable store has a
		// manifest; other directories are not ours to touch.
		if !store.HasManifest(filepath.Join(s.cfg.DataDir, e.Name())) {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil || name == "" {
			continue
		}
		if err := s.addCorpus(name, nil, 0); err != nil {
			return loaded, fmt.Errorf("server: loading stored corpus %q: %w", name, err)
		}
		loaded = append(loaded, name)
	}
	return loaded, nil
}

// DrainWatches ends every live watch stream cleanly (each SSE client gets
// a final epoch frame) and rejects new /v1/watch registrations with 503.
// It is the first step of the daemon's graceful shutdown: SSE handlers
// return only when their watch closes, so draining them is what unblocks
// http.Server.Shutdown.
func (s *Server) DrainWatches() {
	s.draining.Store(true)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, h := range s.corpora {
		h.sc.CloseWatches()
	}
}

// CloseStores fsyncs and seals every durable corpus's write-ahead log —
// the graceful-drain step of the daemon. After it, mutation endpoints fail
// (nothing can land unlogged) while selections keep serving; a purely
// in-memory server is untouched. The first error is reported, but every
// store is still closed.
func (s *Server) CloseStores() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var first error
	for _, h := range s.corpora {
		if err := h.sc.CloseStore(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// corpus resolves a corpus by name; an empty name resolves when exactly one
// corpus is loaded.
func (s *Server) corpus(name string) (*corpusHandle, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if name == "" {
		if len(s.corpora) == 1 {
			for _, h := range s.corpora {
				return h, nil
			}
		}
		return nil, fmt.Errorf("server: request names no corpus and %d are loaded", len(s.corpora))
	}
	h, ok := s.corpora[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown corpus %q", name)
	}
	return h, nil
}

func (s *Server) corpusNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.corpora))
	for n := range s.corpora {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.handler }

// corpusHandle is one served corpus: the sharded relation, its epoch-keyed
// result cache, and the attached predicate views (built once per
// (realization, predicate) and auto-refreshing on epoch advance).
type corpusHandle struct {
	name  string
	sc    *approxsel.ShardedCorpus
	cache *cache.LRU[[]core.Match] // nil when caching is disabled

	// mmu serializes the server's mutations on this corpus, so a mutation
	// response reports exactly the version that mutation produced (not one
	// a concurrent mutator advanced to in between).
	mmu sync.Mutex

	pmu   sync.Mutex
	preds map[string]*predicateHandle
}

// predicateHandle pairs an attached predicate with the mutex that
// serializes probing when the predicate does not declare concurrent probes
// safe (the declarative realization).
type predicateHandle struct {
	p  approxsel.Predicate
	mu *sync.Mutex // nil when concurrent probing is safe
}

// normRealization canonicalizes the request's realization name so cache
// keys and predicate handles agree ("" means native).
func normRealization(r string) string {
	if r == "" {
		return string(approxsel.Native)
	}
	return r
}

// cacheKey builds the epoch-keyed result-cache key of one probe.
func cacheKey(corpus, predicate, realization string, opts core.SelectOptions, epochs []uint64, query string) string {
	return cache.Key(corpus, predicate, realization, opts.Limit, opts.Threshold, opts.HasThreshold, epochs, query)
}

// predicate returns the attached view for (realization, name), building and
// memoizing it on first use.
func (h *corpusHandle) predicate(realization, name string) (*predicateHandle, error) {
	key := realization + "\x1f" + name
	h.pmu.Lock()
	defer h.pmu.Unlock()
	if ph, ok := h.preds[key]; ok {
		return ph, nil
	}
	p, err := h.sc.Predicate(name, approxsel.WithRealization(approxsel.Realization(realization)))
	if err != nil {
		return nil, err
	}
	ph := &predicateHandle{p: p}
	if !core.ConcurrentSafe(p) {
		ph.mu = &sync.Mutex{}
	}
	h.preds[key] = ph
	return ph, nil
}

// probe runs one selection with the epoch-stability handshake: the shard
// epoch vector is read before the cache lookup and again after an uncached
// probe. A stable vector identifies exactly the version the result was
// computed against, so the result is cacheable and the vector is reported;
// an unstable one (the probe raced a mutation) is returned uncached with a
// nil vector.
func (h *corpusHandle) probe(ctx context.Context, ph *predicateHandle, realization, name, query string, opts core.SelectOptions) (ms []core.Match, epochs []uint64, cached bool, err error) {
	e1 := h.sc.Epochs()
	var key string
	if h.cache != nil {
		_, lk := obs.StartSpan(ctx, "cache.lookup")
		key = cacheKey(h.name, name, realization, opts, e1, query)
		if ms, ok := h.cache.Get(key); ok {
			lk.SetAttr("result", "hit")
			lk.End()
			return ms, e1, true, nil
		}
		lk.SetAttr("result", "miss")
		lk.End()
	}
	if ph.mu != nil {
		ph.mu.Lock()
		defer ph.mu.Unlock()
	}
	ms, err = core.SelectWithOptions(ctx, ph.p, query, opts)
	if err != nil {
		return nil, nil, false, err
	}
	e2 := h.sc.Epochs()
	if !epochsEqual(e1, e2) {
		return ms, nil, false, nil
	}
	if h.cache != nil && len(ms) <= maxCachedMatches {
		_, fl := obs.StartSpan(ctx, "cache.fill")
		h.cache.Put(key, ms)
		fl.End()
	}
	return ms, e1, false, nil
}

func epochsEqual(a, b []uint64) bool { return slices.Equal(a, b) }

// admit is the admission middleware of every data endpoint: it bounds
// in-flight requests (immediate 429 beyond MaxInFlight) and attaches the
// per-request deadline.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_, sp := obs.StartSpan(r.Context(), "admit")
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			sp.SetAttr("rejected", "true")
			sp.End()
			s.met.rejected.Add(1)
			writeError(w, http.StatusTooManyRequests, fmt.Errorf("server: at max in-flight requests (%d)", s.cfg.MaxInFlight))
			return
		}
		sp.End()
		s.met.requests.Add(1)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// status maps a probe error to an HTTP status code. Validation and
// resolution failures are reported with explicit 400/404s at their call
// sites; an error surfacing from the probe itself is the server's fault.
func status(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client went away; nginx's convention
	default:
		return http.StatusInternalServerError
	}
}
