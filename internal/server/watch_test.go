package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	approxsel "repro"
)

// ---- SSE client helper ----

type sseClient struct {
	resp *http.Response
	br   *bufio.Reader
}

func openSSE(t *testing.T, ts *httptest.Server, req WatchRequest) *sseClient {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/watch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("watch register: code=%d error=%q", resp.StatusCode, e["error"])
	}
	c := &sseClient{resp: resp, br: bufio.NewReader(resp.Body)}
	t.Cleanup(func() { resp.Body.Close() })
	return c
}

// next reads one SSE frame: its event name and decoded data payload.
func (c *sseClient) next(t *testing.T, v any) string {
	t.Helper()
	var event, data string
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			if err := json.Unmarshal([]byte(data), v); err != nil {
				t.Fatalf("sse frame %q: decode %q: %v", event, data, err)
			}
			return event
		}
	}
}

func corpusEpochs(t *testing.T, ts *httptest.Server) []uint64 {
	t.Helper()
	out, code := get[struct {
		Corpora []CorpusInfo `json:"corpora"`
	}](t, ts, "/v1/corpora")
	if code != http.StatusOK || len(out.Corpora) != 1 {
		t.Fatalf("corpora: code=%d %+v", code, out)
	}
	return out.Corpora[0].Epochs
}

// TestServeWatchSSE is the tentpole's serving contract end to end: an SSE
// watch receives the initial epoch frame, then a mutation's match events
// tagged with exactly the epoch the mutation response reported, and a
// graceful drain ends the stream with a final epoch frame — leaving no
// handler goroutines behind.
func TestServeWatchSSE(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2}, 40)
	// Baseline after the server and a warm keep-alive connection exist, so
	// the post-drain check isolates the SSE stream's own goroutines.
	get[Stats](t, ts, "/v1/stats")
	base := runtime.NumGoroutine()

	c := openSSE(t, ts, WatchRequest{Corpus: "main", Predicate: "Jaccard", Theta: 0.6})
	var hello WatchEpochFrame
	if ev := c.next(t, &hello); ev != "epoch" || len(hello.Epochs) != 2 || hello.Final {
		t.Fatalf("initial frame: event=%q %+v", ev, hello)
	}

	// Insert an exact duplicate of record 5: the self watch must assert the
	// (new, 5) pair at the epoch the insert moved its shard to.
	dup := approxsel.Record{TID: 1000, Text: testRecords(40)[4].Text}
	ins, code := post[MutateResponse](t, ts, "/v1/insert", MutateRequest{Corpus: "main", Records: []RecordJSON{{TID: dup.TID, Text: dup.Text}}})
	if code != http.StatusOK {
		t.Fatalf("insert: code=%d", code)
	}
	var got approxsel.WatchEvent
	found := false
	for !found {
		if ev := c.next(t, &got); ev != "match" {
			t.Fatalf("unexpected frame %q (%+v) before the match", ev, got)
		}
		found = got.ProbeTID == dup.TID && got.BaseTID == 5
	}
	if got.Score != 1 {
		t.Fatalf("duplicate pair score = %v, want 1", got.Score)
	}
	if got.Epoch != ins.Epochs[got.Shard] {
		t.Fatalf("event epoch %d on shard %d, insert reported %v", got.Epoch, got.Shard, ins.Epochs)
	}

	// While the stream is live, /v1/stats reports it.
	st, _ := get[Stats](t, ts, "/v1/stats")
	if st.Watch.Active != 1 || st.Watch.EventsEmitted == 0 {
		t.Fatalf("stats watch block: %+v", st.Watch)
	}

	// Graceful drain: a final epoch frame at the corpus's current vector,
	// then the stream ends and new registrations are refused.
	s.DrainWatches()
	var final WatchEpochFrame
	for {
		var raw json.RawMessage
		ev := c.next(t, &raw)
		if ev == "epoch" {
			if err := json.Unmarshal(raw, &final); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if !final.Final || len(final.Epochs) != 2 {
		t.Fatalf("final frame: %+v", final)
	}
	_, code = post[map[string]string](t, ts, "/v1/watch", WatchRequest{Corpus: "main", Predicate: "Jaccard", Theta: 0.6})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("watch during drain: code=%d, want 503", code)
	}
	c.resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+4 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+4 {
		t.Fatalf("goroutines after drain: %d, started with %d", n, base)
	}
	if st, _ := get[Stats](t, ts, "/v1/stats"); st.Watch.Active != 0 {
		t.Fatalf("watches still active after drain: %+v", st.Watch)
	}
}

// TestServeWatchPoll: the stateless long-poll page resumes exactly once —
// a poll with a pre-mutation vector returns the missed events and the
// vector to continue from; polling again there returns nothing.
func TestServeWatchPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2}, 40)
	before := corpusEpochs(t, ts)

	dup := approxsel.Record{TID: 1000, Text: testRecords(40)[6].Text}
	if _, code := post[MutateResponse](t, ts, "/v1/insert", MutateRequest{Corpus: "main", Records: []RecordJSON{{TID: dup.TID, Text: dup.Text}}}); code != http.StatusOK {
		t.Fatalf("insert: code=%d", code)
	}

	page, code := post[WatchPollResponse](t, ts, "/v1/watch", WatchRequest{
		Corpus: "main", Predicate: "Jaccard", Theta: 0.6, Mode: "poll", Resume: before,
	})
	if code != http.StatusOK {
		t.Fatalf("poll: code=%d", code)
	}
	found := false
	for _, e := range page.Events {
		if e.ProbeTID == dup.TID && e.BaseTID == 7 && e.Score == 1 {
			found = true
		}
	}
	if !found || page.More {
		t.Fatalf("poll page missed the duplicate pair: %+v", page)
	}

	again, code := post[WatchPollResponse](t, ts, "/v1/watch", WatchRequest{
		Corpus: "main", Predicate: "Jaccard", Theta: 0.6, Mode: "poll", Resume: page.Resume,
	})
	if code != http.StatusOK || len(again.Events) != 0 {
		t.Fatalf("poll at the returned resume vector: code=%d events=%d", code, len(again.Events))
	}

	// A waiting poll parks until a live event arrives.
	done := make(chan WatchPollResponse, 1)
	go func() {
		p, _ := post[WatchPollResponse](t, ts, "/v1/watch", WatchRequest{
			Corpus: "main", Predicate: "Jaccard", Theta: 0.6, Mode: "poll", Resume: again.Resume, WaitMS: 10000,
		})
		done <- p
	}()
	time.Sleep(100 * time.Millisecond)
	dup2 := approxsel.Record{TID: 1001, Text: testRecords(40)[7].Text}
	if _, code := post[MutateResponse](t, ts, "/v1/insert", MutateRequest{Corpus: "main", Records: []RecordJSON{{TID: dup2.TID, Text: dup2.Text}}}); code != http.StatusOK {
		t.Fatalf("insert: code=%d", code)
	}
	select {
	case p := <-done:
		found = false
		for _, e := range p.Events {
			if e.ProbeTID == dup2.TID && e.BaseTID == 8 {
				found = true
			}
		}
		if !found {
			t.Fatalf("waiting poll returned without the live event: %+v", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiting poll never returned")
	}
}

// TestServeWatchRejections: the registration guards surface as the right
// status codes, and the watch cap admits independently of MaxInFlight.
func TestServeWatchRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, MaxWatches: 1}, 20)
	if _, code := post[map[string]string](t, ts, "/v1/watch", WatchRequest{Corpus: "main", Predicate: "TFIDF", Theta: 0.5, Mode: "poll"}); code != http.StatusBadRequest {
		t.Fatalf("stats-dependent predicate: code=%d, want 400", code)
	}
	if _, code := post[map[string]string](t, ts, "/v1/watch", WatchRequest{Corpus: "main", Predicate: "Jaccard", Theta: 0.5, Mode: "carrier-pigeon"}); code != http.StatusBadRequest {
		t.Fatalf("unknown mode: code=%d, want 400", code)
	}
	if _, code := post[map[string]string](t, ts, "/v1/watch", WatchRequest{Corpus: "nope", Predicate: "Jaccard", Theta: 0.5, Mode: "poll"}); code != http.StatusNotFound {
		t.Fatalf("unknown corpus: code=%d, want 404", code)
	}
	c := openSSE(t, ts, WatchRequest{Corpus: "main", Predicate: "Jaccard", Theta: 0.6})
	var hello WatchEpochFrame
	c.next(t, &hello)
	if _, code := post[map[string]string](t, ts, "/v1/watch", WatchRequest{Corpus: "main", Predicate: "Jaccard", Theta: 0.6, Mode: "poll"}); code != http.StatusTooManyRequests {
		t.Fatalf("second watch past the cap: code=%d, want 429", code)
	}
}

// TestServeWatchConcurrentSelect races an SSE stream against selection and
// mutation traffic (run under -race) and checks every emitted event is
// tagged with a then-current epoch.
func TestServeWatchConcurrentSelect(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2}, 40)
	c := openSSE(t, ts, WatchRequest{Corpus: "main", Predicate: "Jaccard", Theta: 0.6})
	var hello WatchEpochFrame
	c.next(t, &hello)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	recs := testRecords(40)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, code := post[SelectResponse](t, ts, "/v1/select", SelectRequest{
					Corpus: "main", Predicate: "Jaccard", Query: recs[(g*13+i)%40].Text, Limit: 5,
				})
				if code != http.StatusOK {
					t.Errorf("select: code=%d", code)
					return
				}
			}
		}(g)
	}
	want := 0
	for i := 0; i < 10; i++ {
		dup := RecordJSON{TID: 2000 + i, Text: recs[i].Text}
		if _, code := post[MutateResponse](t, ts, "/v1/insert", MutateRequest{Corpus: "main", Records: []RecordJSON{dup}}); code != http.StatusOK {
			t.Fatalf("insert %d: code=%d", i, code)
		}
		want++
	}
	seen := 0
	for seen < want {
		var e approxsel.WatchEvent
		if ev := c.next(t, &e); ev != "match" {
			t.Fatalf("unexpected frame %q", ev)
		}
		if e.ProbeTID >= 2000 && e.BaseTID == e.ProbeTID-2000+1 {
			seen++
		}
	}
	close(stop)
	wg.Wait()
}
