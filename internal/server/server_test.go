package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	approxsel "repro"
)

func testRecords(n int) []approxsel.Record {
	names := approxsel.CompanyNames(n, 3)
	records := make([]approxsel.Record, len(names))
	for i, name := range names {
		records[i] = approxsel.Record{TID: i + 1, Text: name}
	}
	return records
}

func newTestServer(t *testing.T, cfg Config, n int) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.AddCorpus("main", testRecords(n)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post[T any](t *testing.T, ts *httptest.Server, path string, body any) (T, int) {
	t.Helper()
	var out T
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decode: %v", path, err)
	}
	return out, resp.StatusCode
}

func get[T any](t *testing.T, ts *httptest.Server, path string) (T, int) {
	t.Helper()
	var out T
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: decode: %v", path, err)
	}
	return out, resp.StatusCode
}

// TestServeSelectCacheLifecycle walks the core serving loop: a cold select
// misses, a warm one hits with bit-identical results, a mutation advances
// the epoch vector and invalidates, and /v1/stats reports it all.
func TestServeSelectCacheLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2}, 40)
	query := testRecords(40)[5].Text
	req := SelectRequest{Corpus: "main", Predicate: "BM25", Query: query, Limit: 10}

	cold, code := post[SelectResponse](t, ts, "/v1/select", req)
	if code != http.StatusOK || cold.Cached || len(cold.Epochs) != 2 || cold.Count == 0 {
		t.Fatalf("cold select: code=%d %+v", code, cold)
	}
	warm, _ := post[SelectResponse](t, ts, "/v1/select", req)
	if !warm.Cached {
		t.Fatalf("second select must hit the cache: %+v", warm)
	}
	if !reflect.DeepEqual(warm.Matches, cold.Matches) || !reflect.DeepEqual(warm.Epochs, cold.Epochs) {
		t.Fatal("cached result must be bit-identical to the uncached one")
	}

	ins, code := post[MutateResponse](t, ts, "/v1/insert", MutateRequest{
		Corpus:  "main",
		Records: []RecordJSON{{TID: 9001, Text: query}},
	})
	if code != http.StatusOK || ins.Len != 41 {
		t.Fatalf("insert: code=%d %+v", code, ins)
	}
	if reflect.DeepEqual(ins.Epochs, cold.Epochs) {
		t.Fatal("insert must advance the epoch vector")
	}
	after, _ := post[SelectResponse](t, ts, "/v1/select", req)
	if after.Cached {
		t.Fatal("select after mutation must miss (epoch-keyed invalidation)")
	}
	found := false
	for _, m := range after.Matches {
		if m.TID == 9001 {
			found = true
		}
	}
	if !found {
		t.Fatalf("select after insert must see the new record: %+v", after.Matches)
	}
	again, _ := post[SelectResponse](t, ts, "/v1/select", req)
	if !again.Cached || !reflect.DeepEqual(again.Matches, after.Matches) {
		t.Fatal("post-mutation result must be cached and bit-identical")
	}

	st := s.stats()
	if st.Cache.Hits < 2 || st.Cache.HitRate <= 0 {
		t.Fatalf("stats must report cache hits: %+v", st.Cache)
	}
	if st.Requests == 0 || st.Predicates["BM25"].Count == 0 {
		t.Fatalf("stats must report request and predicate counts: %+v", st)
	}
	if st.HotPath.Queries == 0 || st.HotPath.Lists == 0 {
		t.Fatalf("stats must surface the hot-path pruning counters: %+v", st.HotPath)
	}

	// Upsert and delete round out the mutation endpoints.
	up, code := post[MutateResponse](t, ts, "/v1/upsert", MutateRequest{
		Corpus:  "main",
		Records: []RecordJSON{{TID: 9001, Text: "replaced text"}},
	})
	if code != http.StatusOK || up.Len != 41 {
		t.Fatalf("upsert: code=%d %+v", code, up)
	}
	del, code := post[MutateResponse](t, ts, "/v1/delete", DeleteRequest{Corpus: "main", TIDs: []int{9001}})
	if code != http.StatusOK || del.Len != 40 {
		t.Fatalf("delete: code=%d %+v", code, del)
	}
}

// TestServeBatchAndJoin exercises /v1/batch (with partial cache hits) and
// /v1/join.
func TestServeBatchAndJoin(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2}, 30)
	records := testRecords(30)
	q0 := records[0].Text

	// Prime the cache with one of the batch's queries.
	post[SelectResponse](t, ts, "/v1/select", SelectRequest{Predicate: "Jaccard", Query: q0, Limit: 5})
	batch, code := post[BatchResponse](t, ts, "/v1/batch", BatchRequest{
		Predicate: "Jaccard",
		Queries:   []string{q0, records[1].Text, "zzzz unmatched query"},
		Limit:     5,
	})
	if code != http.StatusOK || len(batch.Results) != 3 {
		t.Fatalf("batch: code=%d %+v", code, batch)
	}
	if batch.CacheHits != 1 {
		t.Fatalf("batch should reuse the primed entry: %+v", batch)
	}
	if len(batch.Epochs) != 2 {
		t.Fatalf("quiescent batch must report its epoch vector: %+v", batch)
	}
	if len(batch.Results[0]) == 0 || batch.Results[0][0].TID != records[0].TID {
		t.Fatalf("batch self-query missed: %+v", batch.Results[0])
	}
	// A repeated batch is now fully cached and identical.
	batch2, _ := post[BatchResponse](t, ts, "/v1/batch", BatchRequest{
		Predicate: "Jaccard",
		Queries:   []string{q0, records[1].Text, "zzzz unmatched query"},
		Limit:     5,
	})
	if batch2.CacheHits != 3 || !reflect.DeepEqual(batch2.Results, batch.Results) {
		t.Fatalf("warm batch must be fully cached and bit-identical: hits=%d", batch2.CacheHits)
	}

	join, code := post[JoinResponse](t, ts, "/v1/join", JoinRequest{
		Predicate: "Jaccard",
		Theta:     0.99,
		Probe:     []RecordJSON{{TID: 1, Text: records[0].Text}},
	})
	if code != http.StatusOK || join.Count == 0 {
		t.Fatalf("join: code=%d %+v", code, join)
	}
}

// TestServeCorporaAndErrors covers runtime corpus creation and the error
// statuses.
func TestServeCorporaAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1}, 10)

	info, code := post[CorpusInfo](t, ts, "/v1/corpora", CreateCorpusRequest{
		Name:    "extra",
		Shards:  2,
		Records: []RecordJSON{{TID: 1, Text: "alpha beta"}, {TID: 2, Text: "gamma delta"}},
	})
	if code != http.StatusCreated || info.Len != 2 || info.Shards != 2 {
		t.Fatalf("create corpus: code=%d %+v", code, info)
	}
	list, code := get[map[string][]CorpusInfo](t, ts, "/v1/corpora")
	if code != http.StatusOK || len(list["corpora"]) != 2 {
		t.Fatalf("list corpora: code=%d %+v", code, list)
	}
	// With two corpora loaded, an empty corpus name is ambiguous.
	if _, code := post[map[string]string](t, ts, "/v1/select", SelectRequest{Predicate: "BM25", Query: "x"}); code != http.StatusNotFound {
		t.Fatalf("ambiguous corpus must 404, got %d", code)
	}
	cases := []struct {
		path string
		body any
		want int
	}{
		{"/v1/corpora", CreateCorpusRequest{Name: "extra"}, http.StatusConflict},
		{"/v1/corpora", CreateCorpusRequest{Name: "bad\x1fname"}, http.StatusBadRequest},
		{"/v1/select", SelectRequest{Corpus: "nope", Predicate: "BM25", Query: "x"}, http.StatusNotFound},
		{"/v1/select", SelectRequest{Corpus: "main", Predicate: "NoSuch", Query: "x"}, http.StatusBadRequest},
		{"/v1/select", SelectRequest{Corpus: "main", Query: "x"}, http.StatusBadRequest},
		{"/v1/select", SelectRequest{Corpus: "main", Predicate: "BM25", Query: "x", Limit: -1}, http.StatusBadRequest},
		{"/v1/insert", MutateRequest{Corpus: "main", Records: []RecordJSON{{TID: 1, Text: "dup"}}}, http.StatusBadRequest},
		{"/v1/delete", DeleteRequest{Corpus: "main", TIDs: []int{424242}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		body, code := post[map[string]string](t, ts, c.path, c.body)
		if code != c.want {
			t.Fatalf("%s %+v: code=%d (%v), want %d", c.path, c.body, code, body, c.want)
		}
		if body["error"] == "" {
			t.Fatalf("%s: error body missing", c.path)
		}
	}
	if _, code := get[map[string]string](t, ts, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz")
	}
}

// TestServeAdmission fills the in-flight semaphore and checks immediate
// 429 rejection, plus the per-request deadline mapping to 504.
func TestServeAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 1, MaxInFlight: 2}, 10)
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	body, code := post[map[string]string](t, ts, "/v1/select", SelectRequest{Predicate: "BM25", Query: "x"})
	if code != http.StatusTooManyRequests || body["error"] == "" {
		t.Fatalf("full server must 429: code=%d %v", code, body)
	}
	<-s.sem
	<-s.sem
	if st := s.stats(); st.Rejected != 1 {
		t.Fatalf("rejected counter: %+v", st)
	}
	// Stats and health stay reachable regardless of admission.
	if _, code := get[Stats](t, ts, "/v1/stats"); code != http.StatusOK {
		t.Fatal("stats must bypass admission")
	}

	slow := New(Config{Shards: 1, RequestTimeout: time.Nanosecond})
	if err := slow.AddCorpus("main", testRecords(10)); err != nil {
		t.Fatal(err)
	}
	tss := httptest.NewServer(slow.Handler())
	defer tss.Close()
	resp, err := http.Post(tss.URL+"/v1/select", "application/json",
		bytes.NewReader([]byte(`{"predicate":"BM25","query":"x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline must 504, got %d", resp.StatusCode)
	}
}

// TestServeConcurrentMutationFreshness is the serving-under-mutation race
// test: clients hammer /v1/select while a mutator flips a marker record in
// and out of the corpus. Every response reporting a shard-epoch vector must
// be consistent with the relation state at exactly that version — the
// cache must never serve a result from a stale epoch under a fresh vector.
// Run under -race this also shakes out data races across the handler, the
// sharded views and the cache.
func TestServeConcurrentMutationFreshness(t *testing.T) {
	s, ts := newTestServer(t, Config{Shards: 2, CacheEntries: 512}, 30)
	const markerTID = 77777
	const markerText = "zzyzx flibber quux corporation"

	// expected maps an epoch-vector fingerprint to whether the marker
	// record exists at that version. Only the mutator writes it, keyed by
	// the vectors returned from its own mutations.
	var (
		expected sync.Map // string -> bool
		wg       sync.WaitGroup
		checked  atomic.Int64
		hits     atomic.Int64
	)
	fingerprint := func(epochs []uint64) string { return fmt.Sprint(epochs) }

	// postE is the goroutine-safe request helper: the workers report
	// failures with t.Error and return instead of calling Fatal off the
	// test goroutine.
	postE := func(path string, body, out any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	// Seed: marker absent at the initial vector.
	expected.Store(fingerprint(s.stats().Corpora[0].Epochs), false)

	wg.Add(1)
	go func() { // mutator
		defer wg.Done()
		present := false
		for i := 0; i < 60; i++ {
			var mr MutateResponse
			var err error
			if !present {
				err = postE("/v1/insert", MutateRequest{
					Records: []RecordJSON{{TID: markerTID, Text: markerText}},
				}, &mr)
			} else {
				err = postE("/v1/delete", DeleteRequest{TIDs: []int{markerTID}}, &mr)
			}
			if err != nil {
				t.Error(err)
				return
			}
			present = !present
			expected.Store(fingerprint(mr.Epochs), present)
			time.Sleep(time.Millisecond)
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() { // selectors
			defer wg.Done()
			for i := 0; i < 150; i++ {
				var resp SelectResponse
				if err := postE("/v1/select", SelectRequest{
					Predicate: "BM25",
					Query:     markerText,
				}, &resp); err != nil {
					t.Error(err)
					return
				}
				if resp.Cached {
					hits.Add(1)
				}
				if resp.Epochs == nil {
					continue // raced a mutation; correctly unversioned and uncached
				}
				want, ok := expected.Load(fingerprint(resp.Epochs))
				if !ok {
					continue // vector not yet recorded by the mutator
				}
				got := false
				for _, m := range resp.Matches {
					if m.TID == markerTID {
						got = true
					}
				}
				if got != want.(bool) {
					t.Errorf("epoch %v: marker present=%v, want %v (cached=%v)",
						resp.Epochs, got, want, resp.Cached)
					return
				}
				checked.Add(1)
			}
		}()
	}
	wg.Wait()
	if checked.Load() == 0 {
		t.Fatal("no epoch-consistent responses were checked; test is vacuous")
	}
	if hits.Load() == 0 {
		t.Fatal("no cache hits under load; test did not exercise the cache")
	}
	t.Logf("checked %d versioned responses, %d cache hits", checked.Load(), hits.Load())
}
