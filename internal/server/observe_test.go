package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
)

// postLocal drives one request through the handler chain without a
// listener, so tests can assert on the server's side effects directly.
func postLocal(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: -1}, 40)
	body := `{"predicate":"BM25","query":"general electric","limit":3}`

	// A client-supplied ID is echoed verbatim.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/select", strings.NewReader(body))
	req.Header.Set("X-Request-Id", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-id-42" {
		t.Fatalf("client ID not echoed: got %q", got)
	}

	// Without one, the server assigns a non-empty ID.
	resp, err = http.Post(ts.URL+"/v1/select", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" {
		t.Fatal("server did not assign a request ID")
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{TraceSample: -1, AccessLog: &buf})
	if err := s.AddCorpus("main", testRecords(40)); err != nil {
		t.Fatal(err)
	}
	w := postLocal(t, s, "/v1/select", `{"predicate":"BM25","query":"general electric","limit":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("select: status %d: %s", w.Code, w.Body)
	}
	line := buf.String()
	if n := strings.Count(line, "\n"); n != 1 {
		t.Fatalf("want exactly one access-log line, got %d: %q", n, line)
	}
	for _, want := range []string{"route=select", "status=200", "corpus=main", "predicate=BM25", "shards=", "cache=miss", "dur_us=", "id="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line missing %q: %q", want, line)
		}
	}
	buf.Reset()
	postLocal(t, s, "/v1/select", `{"predicate":"BM25","query":"general electric","limit":3}`)
	if !strings.Contains(buf.String(), "cache=hit") {
		t.Errorf("repeat select should log cache=hit: %q", buf.String())
	}
}

// expositionLine matches one Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSample: -1}, 40)
	post[map[string]any](t, ts, "/v1/select", map[string]any{"predicate": "BM25", "query": "general electric", "limit": 3})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Every line is either a comment or a well-formed sample.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE approx_requests_total counter",
		"approx_select_total 1",
		`approx_http_requests_total{endpoint="select"} 1`,
		"# TYPE approx_request_duration_us histogram",
		`approx_request_duration_us_count{endpoint="select"} 1`,
		"approx_cache_misses_total 1",
		"approx_corpora 1",
		"approx_hotpath_queries_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSlowlogSpanTree asserts the acceptance shape: with sampling on, a
// /v1/select trace retained in the slow log shows admission → cache lookup
// → shard fan-out → merge.
func TestSlowlogSpanTree(t *testing.T) {
	defer obs.SetTraceSampling(0)
	_, ts := newTestServer(t, Config{TraceSample: 1}, 60)
	post[map[string]any](t, ts, "/v1/select", map[string]any{"predicate": "BM25", "query": "general electric", "limit": 3})

	slow, code := get[SlowLogResponse](t, ts, "/v1/slowlog")
	if code != http.StatusOK {
		t.Fatalf("/v1/slowlog: status %d", code)
	}
	var sel *obs.TraceSnapshot
	for i := range slow.Entries {
		if slow.Entries[i].Name == "select" {
			sel = &slow.Entries[i]
			break
		}
	}
	if sel == nil {
		t.Fatalf("no select trace retained; entries: %+v", slow.Entries)
	}
	if sel.ID == "" || sel.DurUS < 0 {
		t.Fatalf("malformed trace: %+v", sel)
	}
	names := map[string]bool{}
	var walk func(sp obs.SpanSnapshot)
	walk = func(sp obs.SpanSnapshot) {
		names[sp.Name] = true
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(sel.Spans)
	for _, want := range []string{"select", "admit", "cache.lookup", "fanout", "shard.select", "merge"} {
		if !names[want] {
			t.Errorf("span tree missing %q; have %v", want, names)
		}
	}

	// The stage aggregates saw the same stages.
	st, _ := get[Stats](t, ts, "/v1/stats")
	if st.Trace.SampleEvery != 1 || st.Trace.Sampled == 0 {
		t.Fatalf("trace stats not reporting: %+v", st.Trace)
	}
	if _, ok := st.Trace.Stages["shard.select"]; !ok {
		t.Errorf("stage aggregates missing shard.select: %v", st.Trace.Stages)
	}
}

func TestInstrumentStatusRecorded(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{TraceSample: -1, AccessLog: &buf})
	// No corpus loaded: select resolves to 404.
	w := postLocal(t, s, "/v1/select", `{"predicate":"BM25","query":"x"}`)
	if w.Code != http.StatusNotFound {
		t.Fatalf("want 404, got %d", w.Code)
	}
	if !strings.Contains(buf.String(), "status=404") {
		t.Errorf("access log did not record status: %q", buf.String())
	}
}
