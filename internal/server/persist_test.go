package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestServePersistenceLifecycle drives the durable serving path end to end:
// a server with a data directory builds and saves its corpus, mutations are
// write-ahead logged, /v1/snapshot checkpoints (WAL truncates, snapshot
// epochs advance), /v1/stats reports the store block — and a second server
// over the same directory cold-starts to a bit-identical /v1/select
// response at the same epoch vector without being given any records.
func TestServePersistenceLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{Shards: 2, DataDir: dataDir}
	s1 := New(cfg)
	if err := s1.AddCorpus("main", testRecords(40)); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	sel := SelectRequest{Predicate: "BM25", Query: "international business", Limit: 5}
	mut, code := post[MutateResponse](t, ts1, "/v1/insert", MutateRequest{
		Records: []RecordJSON{{TID: 9001, Text: "International Business Machines Corporation"}},
	})
	if code != http.StatusOK {
		t.Fatalf("insert: %d", code)
	}

	// The store block reports the logged mutation before any checkpoint.
	stats, code := get[Stats](t, ts1, "/v1/stats")
	if code != http.StatusOK || stats.Store == nil {
		t.Fatalf("stats must carry a store block: %d %+v", code, stats.Store)
	}
	if stats.Store.DataDir != dataDir || stats.Store.WALEntries != 1 || len(stats.Store.Corpora) != 1 {
		t.Fatalf("store block: %+v", stats.Store)
	}
	info := stats.Store.Corpora[0]
	if info.Corpus != "main" || len(info.SnapshotEpochs) != 2 || info.SnapshotBytes <= 0 {
		t.Fatalf("store info: %+v", info)
	}

	// Checkpoint: WAL truncates and the snapshot epochs catch up to the
	// corpus's current epoch vector.
	snap, code := post[SnapshotResponse](t, ts1, "/v1/snapshot", SnapshotRequest{Corpus: "main"})
	if code != http.StatusOK {
		t.Fatalf("snapshot: %d", code)
	}
	if snap.Store.WALEntries != 0 || !reflect.DeepEqual(snap.Store.SnapshotEpochs, mut.Epochs) {
		t.Fatalf("post-checkpoint store: %+v (mutation epochs %v)", snap.Store, mut.Epochs)
	}

	// One more logged mutation after the checkpoint, so the cold start below
	// exercises segment + WAL splicing, not just segment decode.
	if _, code := post[MutateResponse](t, ts1, "/v1/delete", DeleteRequest{TIDs: []int{7}}); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	want, code := post[SelectResponse](t, ts1, "/v1/select", sel)
	if code != http.StatusOK {
		t.Fatalf("select: %d", code)
	}
	ts1.Close()
	if err := s1.CloseStores(); err != nil {
		t.Fatal(err)
	}

	// Cold start: no records handed over — the store is the only source.
	s2 := New(cfg)
	if err := s2.AddCorpus("main", nil); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	got, code := post[SelectResponse](t, ts2, "/v1/select", sel)
	if code != http.StatusOK {
		t.Fatalf("select after cold start: %d", code)
	}
	if !reflect.DeepEqual(want.Matches, got.Matches) || !reflect.DeepEqual(want.Epochs, got.Epochs) {
		t.Fatalf("cold start diverged:\nwant %+v @%v\ngot  %+v @%v", want.Matches, want.Epochs, got.Matches, got.Epochs)
	}
	stats2, _ := get[Stats](t, ts2, "/v1/stats")
	if stats2.Store == nil || len(stats2.Store.Corpora) != 1 {
		t.Fatalf("cold-start store block: %+v", stats2.Store)
	}
	if stats2.Store.Corpora[0].LastLoadUS <= 0 {
		t.Fatalf("cold start must report a load duration: %+v", stats2.Store.Corpora[0])
	}

	// After CloseStores, the first server's mutation endpoints fail with
	// 503 — the request was valid and retryable, not a caller fault —
	// while selections keep serving (drain semantics).
	ts1b := httptest.NewServer(s1.Handler())
	defer ts1b.Close()
	if _, code := post[MutateResponse](t, ts1b, "/v1/insert", MutateRequest{
		Records: []RecordJSON{{TID: 9500, Text: "Too Late Inc"}},
	}); code != http.StatusServiceUnavailable {
		t.Fatalf("mutation after CloseStores must answer 503, got %d", code)
	}
	if _, code := post[SelectResponse](t, ts1b, "/v1/select", sel); code != http.StatusOK {
		t.Fatalf("selection after CloseStores: %d", code)
	}
}

// TestServeSnapshotErrors covers the admin endpoint's failure modes: no
// data directory, unknown corpus.
func TestServeSnapshotErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2}, 20)
	if _, code := post[map[string]any](t, ts, "/v1/snapshot", SnapshotRequest{}); code != http.StatusBadRequest {
		t.Fatalf("snapshot without a data dir: %d", code)
	}
	if _, code := post[map[string]any](t, ts, "/v1/snapshot", SnapshotRequest{Corpus: "nope"}); code != http.StatusNotFound {
		t.Fatalf("snapshot of unknown corpus: %d", code)
	}
	// In-memory servers carry no store block.
	stats, _ := get[Stats](t, ts, "/v1/stats")
	if stats.Store != nil {
		t.Fatalf("in-memory server must omit the store block: %+v", stats.Store)
	}
}

// TestLoadStoredCorpora pins the restart path for runtime-created corpora:
// every store under the data directory is restored by name — including
// escaped names — and re-creating a stored corpus with records is refused
// rather than silently loading the store and dropping the records.
func TestLoadStoredCorpora(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{Shards: 2, DataDir: dataDir}
	s1 := New(cfg)
	if err := s1.AddCorpus("main", testRecords(20)); err != nil {
		t.Fatal(err)
	}
	if err := s1.AddCorpus("aux/v2", testRecords(10)); err != nil {
		t.Fatal(err)
	}
	if err := s1.CloseStores(); err != nil {
		t.Fatal(err)
	}

	s2 := New(cfg)
	names, err := s2.LoadStoredCorpora()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || !s2.HasCorpus("main") || !s2.HasCorpus("aux/v2") {
		t.Fatalf("restored corpora: %v", names)
	}
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	resp, code := post[SelectResponse](t, ts, "/v1/select", SelectRequest{
		Corpus: "aux/v2", Predicate: "Jaccard", Query: "international", Limit: 3,
	})
	if code != http.StatusOK || len(resp.Epochs) != 2 {
		t.Fatalf("select against restored runtime corpus: %d %+v", code, resp)
	}

	// Re-creating over an existing store with records must refuse, not
	// silently drop the records.
	s3 := New(cfg)
	if err := s3.AddCorpus("main", testRecords(5)); err == nil {
		t.Fatal("create-with-records over an existing store must fail")
	}
	if err := s3.AddCorpus("main", nil); err != nil {
		t.Fatalf("records-free load must work: %v", err)
	}
	if err := s3.CloseStores(); err != nil {
		t.Fatal(err)
	}
}

// TestServeRejectsTraversalNames pins the DataDir containment guard: "."
// and ".." survive url.PathEscape unchanged, so they must be rejected
// outright or a durable corpus would be written outside its DataDir.
func TestServeRejectsTraversalNames(t *testing.T) {
	s := New(Config{Shards: 1, DataDir: t.TempDir()})
	for _, name := range []string{".", ".."} {
		if err := s.AddCorpus(name, testRecords(5)); err == nil {
			t.Fatalf("corpus name %q must be rejected", name)
		}
	}
	if err := s.AddCorpus("a/b", testRecords(5)); err != nil {
		t.Fatalf("slashes are path-escaped and must stay legal: %v", err)
	}
	if _, err := os.Stat(filepath.Join(s.cfg.DataDir, "a%2Fb")); err != nil {
		t.Fatalf("escaped corpus dir missing: %v", err)
	}
}
