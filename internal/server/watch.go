package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	approxsel "repro"
)

// This file is the serving face of approxwatch: POST /v1/watch registers a
// standing query over a served corpus and delivers its epoch-tagged
// match/unmatch events, either as a server-sent-event stream (mode "sse",
// the default) or as one long-poll page (mode "poll"). Both modes resume:
// the client passes the epoch vector it last saw and the missed window
// replays — from the WAL's replay window across a restart — before live
// events continue, each missed event exactly once.

// WatchRequest registers a standing query on a corpus.
type WatchRequest struct {
	Corpus    string  `json:"corpus,omitempty"`
	Predicate string  `json:"predicate"`
	Theta     float64 `json:"theta"`
	// Probes, when present, makes this an incremental join against the
	// fixed probe relation; absent means a self watch (online dedup).
	Probes []RecordJSON `json:"probes,omitempty"`
	// Resume is the per-shard epoch vector the client last saw; the missed
	// window replays first. Absent starts live-only at the current epoch.
	Resume []uint64 `json:"resume,omitempty"`
	// Mode selects the delivery shape: "sse" (default) streams frames until
	// the client disconnects or the server drains; "poll" returns one page
	// of events and closes the registration (stateless long-poll).
	Mode string `json:"mode,omitempty"`
	// MaxEvents caps one poll page (default 4096). The page only truncates
	// at a (shard, epoch) boundary, so the returned resume vector never
	// splits a mutation's events.
	MaxEvents int `json:"max_events,omitempty"`
	// WaitMS is how long a poll with no pending events waits for one
	// before returning an empty page (default 0, capped at 60s).
	WaitMS int `json:"wait_ms,omitempty"`
}

// WatchEpochFrame is the payload of an SSE "epoch" frame: sent once after
// registration (with the replayed-event count) and once more, with Final
// set, when the server drains the stream gracefully.
type WatchEpochFrame struct {
	Epochs   []uint64 `json:"epochs"`
	Replayed int      `json:"replayed,omitempty"`
	Final    bool     `json:"final,omitempty"`
}

// WatchPollResponse is one long-poll page. Resume is the vector to pass
// back to continue where this page ended; More reports that events beyond
// MaxEvents were already pending (poll again immediately).
type WatchPollResponse struct {
	Events []approxsel.WatchEvent `json:"events"`
	Epochs []uint64               `json:"epochs"`
	Resume []uint64               `json:"resume"`
	More   bool                   `json:"more,omitempty"`
}

const (
	// watchBuffer sizes the delivery channel of a served watch: burst
	// headroom between network flushes. A consumer that still falls behind
	// is disconnected with an error frame and resumes with its last vector.
	watchBuffer = 1 << 14
	// defaultPollEvents caps a poll page when the request does not.
	defaultPollEvents = 4096
	// maxPollWait bounds how long one long-poll request parks.
	maxPollWait = 60 * time.Second
)

// watchStatus maps a registration failure to its HTTP status: a resume
// vector older than the replayable window is 410 (the client must rebuild
// from a fresh join); everything else — unknown or non-watchable
// predicate, bad theta, malformed vector — is the request's fault.
func watchStatus(err error) int {
	if errors.Is(err, approxsel.ErrResumeTooOld) {
		return http.StatusGone
	}
	return http.StatusBadRequest
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req WatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("server: draining, not accepting watches"))
		return
	}
	if req.Predicate == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: missing predicate name"))
		return
	}
	h, err := s.corpus(req.Corpus)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	// Watches hold their handler for the stream's lifetime, so they are
	// admitted against their own cap, not the request semaphore.
	select {
	case s.watchSem <- struct{}{}:
		defer func() { <-s.watchSem }()
	default:
		s.met.rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, fmt.Errorf("server: at max concurrent watches (%d)", s.cfg.MaxWatches))
		return
	}
	var opts []approxsel.WatchOption
	if req.Probes != nil {
		opts = append(opts, approxsel.WithProbes(toRecords(req.Probes)...))
	}
	if req.Resume != nil {
		opts = append(opts, approxsel.WithResume(req.Resume))
	}
	opts = append(opts, approxsel.WithWatchBuffer(watchBuffer))
	switch req.Mode {
	case "", "sse":
		s.watchSSE(w, r, h, req, opts)
	case "poll":
		s.watchPoll(w, r, h, req, opts)
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("server: unknown watch mode %q", req.Mode))
	}
}

// deliveredVector seeds the consumer-progress vector feeding the lag stat:
// the resumed vector when the client presented one, the registration-time
// vector otherwise.
func deliveredVector(req WatchRequest, h *corpusHandle) []uint64 {
	if req.Resume != nil {
		out := make([]uint64, len(req.Resume))
		copy(out, req.Resume)
		return out
	}
	return h.sc.Epochs()
}

func sumEpochs(v []uint64) uint64 {
	var s uint64
	for _, e := range v {
		s += e
	}
	return s
}

// writeSSE emits one server-sent-event frame.
func writeSSE(w io.Writer, event string, v any) {
	data, _ := json.Marshal(v)
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// watchSSE streams the watch until the client disconnects, the consumer
// lags out, or the server drains. Frames: one initial "epoch" frame
// (registration vector + replayed count), then "match"/"unmatch" frames
// per event, then — on graceful drain — a final "epoch" frame with Final
// set, so the client knows the stream ended complete at that vector.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, h *corpusHandle, req WatchRequest, opts []approxsel.WatchOption) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("server: response writer cannot stream"))
		return
	}
	wa, err := h.sc.RegisterWatch(req.Predicate, req.Theta, opts...)
	if err != nil {
		s.fail(w, watchStatus(err), err)
		return
	}
	defer wa.Close()
	delivered := deliveredVector(req, h)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// len of the delivery channel right after registration is the replay
	// preload: live events cannot be in it yet — the watch was registered
	// under the hub lock and nothing has been read.
	writeSSE(w, "epoch", WatchEpochFrame{Epochs: h.sc.Epochs(), Replayed: len(wa.Events())})
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case e, open := <-wa.Events():
			if !open {
				if err := wa.Err(); err != nil {
					writeSSE(w, "error", map[string]string{"error": err.Error()})
				} else {
					writeSSE(w, "epoch", WatchEpochFrame{Epochs: h.sc.Epochs(), Final: true})
				}
				fl.Flush()
				return
			}
			writeSSE(w, string(e.Kind), e)
			if e.Epoch > delivered[e.Shard] {
				delivered[e.Shard] = e.Epoch
			}
			// Drain whatever else is already buffered before flushing, so a
			// burst costs one network write, not one per event.
			for more := true; more; {
				select {
				case e, open := <-wa.Events():
					if !open {
						more = false
						break
					}
					writeSSE(w, string(e.Kind), e)
					if e.Epoch > delivered[e.Shard] {
						delivered[e.Shard] = e.Epoch
					}
				default:
					more = false
				}
			}
			wa.SetDelivered(sumEpochs(delivered))
			fl.Flush()
		}
	}
}

// watchPoll serves one stateless page: replayed events first, then — when
// the page is empty and the request asked to wait — up to WaitMS for live
// ones. The registration closes with the response; the client continues by
// polling again with the returned resume vector.
func (s *Server) watchPoll(w http.ResponseWriter, r *http.Request, h *corpusHandle, req WatchRequest, opts []approxsel.WatchOption) {
	maxEvents := req.MaxEvents
	if maxEvents <= 0 {
		maxEvents = defaultPollEvents
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > maxPollWait {
		wait = maxPollWait
	}
	wa, err := h.sc.RegisterWatch(req.Predicate, req.Theta, opts...)
	if err != nil {
		s.fail(w, watchStatus(err), err)
		return
	}
	defer wa.Close()

	var evs []approxsel.WatchEvent
	drain := func() {
		for {
			select {
			case e, open := <-wa.Events():
				if !open {
					return
				}
				evs = append(evs, e)
			default:
				return
			}
		}
	}
	drain()
	if len(evs) == 0 && wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-r.Context().Done():
		case <-timer.C:
		case e, open := <-wa.Events():
			if open {
				evs = append(evs, e)
				drain()
			}
		}
	}

	// Truncate only at a (shard, epoch) boundary: the resume vector marks
	// whole mutations as seen, so splitting one would lose its tail.
	more := false
	if len(evs) > maxEvents {
		cut := maxEvents
		for cut < len(evs) && evs[cut].Shard == evs[cut-1].Shard && evs[cut].Epoch == evs[cut-1].Epoch {
			cut++
		}
		more = cut < len(evs)
		evs = evs[:cut]
	}
	resume := deliveredVector(req, h)
	for _, e := range evs {
		if e.Epoch > resume[e.Shard] {
			resume[e.Shard] = e.Epoch
		}
	}
	if evs == nil {
		evs = []approxsel.WatchEvent{}
	}
	writeJSON(w, http.StatusOK, WatchPollResponse{
		Events: evs,
		Epochs: h.sc.Epochs(),
		Resume: resume,
		More:   more,
	})
}
