package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	approxsel "repro"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/server/cache"
)

// This file is the server's face of approxcluster: it implements the
// replication Backend over the served corpora, mounts the node's RPC
// surface under /cluster/, forwards mutations arriving at followers to
// the leader, holds leader acknowledgements for a majority, and serves
// epoch-consistent reads — a client passes the epoch vector it last saw
// (min_epochs) and any replica at-or-past it may answer; a stale follower
// waits up to the request deadline.

// AttachCluster joins the server to a replication cluster: the node's RPC
// surface becomes reachable under /cluster/, every loaded corpus's
// replication observer feeds the node's re-ship history, mutations are
// leader-only (followers forward) and acknowledged only after a majority
// holds them. Call before serving traffic and before node.Start.
func (s *Server) AttachCluster(n *cluster.Node) {
	s.mu.Lock()
	s.cluster = n
	handles := make([]*corpusHandle, 0, len(s.corpora))
	for _, h := range s.corpora {
		handles = append(handles, h)
	}
	s.mu.Unlock()
	for _, h := range handles {
		s.wireReplication(h)
	}
	s.registerClusterMetrics()
}

// registerClusterMetrics adds the replication layer to the registry:
// the process-wide election/replication counters owned by the cluster
// package, plus live role/term/lag gauges read from the attached node.
func (s *Server) registerClusterMetrics() {
	reg := s.met.reg
	reg.RegisterCounter("approx_cluster_elections_total", "elections started by this node", cluster.MetricElections)
	reg.RegisterCounter("approx_cluster_leader_wins_total", "elections this node won", cluster.MetricLeaderWins)
	reg.RegisterCounter("approx_cluster_pulls_served_total", "replication pull RPCs served", cluster.MetricPullsServed)
	reg.RegisterCounter("approx_cluster_acks_recorded_total", "follower acknowledgements recorded", cluster.MetricAcksRecorded)
	reg.RegisterCounter("approx_cluster_heartbeats_sent_total", "leader heartbeats sent", cluster.MetricHeartbeatsSent)
	reg.RegisterCounter("approx_cluster_prevotes_total", "pre-vote rounds run before standing for election", cluster.MetricPreVotes)
	reg.RegisterCounter("approx_rpc_retries_total", "peer RPC retry attempts (forwards and pulls)", cluster.MetricRPCRetries)
	reg.RegisterHistogram("approx_rpc_backoff_ms", "jittered backoff sleeps between RPC retries (ms)", cluster.RPCBackoffMS)
	for _, k := range chaos.FaultKinds() {
		reg.RegisterCounter("approx_chaos_faults_total", "faults injected by the chaos layer",
			chaos.FaultCounter(k), obs.Label{Key: "kind", Value: string(k)})
	}
	reg.RegisterCounter("approx_chaos_store_faults_total", "store faults (fsync/torn append) injected by the chaos layer", chaos.MetricStoreFaults)
	reg.GaugeFunc("approx_chaos_active_rules", "chaos rules currently active in this process", func() float64 {
		return float64(chaos.ActiveRuleCount())
	})
	reg.GaugeFunc("approx_cluster_is_leader", "1 when this node is the leader", func() float64 {
		n := s.clusterNode()
		if n == nil {
			return 0
		}
		if role, _, _ := n.Role(); role == cluster.RoleLeader {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("approx_cluster_term", "current election term", func() float64 {
		n := s.clusterNode()
		if n == nil {
			return 0
		}
		_, term, _ := n.Role()
		return float64(term)
	})
	reg.GaugeFunc("approx_replication_lag_epochs", "widest follower lag in epochs, from the leader's vantage", func() float64 {
		n := s.clusterNode()
		if n == nil {
			return 0
		}
		if role, _, _ := n.Role(); role != cluster.RoleLeader {
			return 0
		}
		var max uint64
		for _, lag := range n.ReplicationLag() {
			if lag.MaxEpochs > max {
				max = lag.MaxEpochs
			}
		}
		return float64(max)
	})
}

// ClusterBackend returns the server's replication backend, the Backend a
// cluster.Node is constructed over.
func (s *Server) ClusterBackend() cluster.Backend { return &clusterBackend{s: s} }

func (s *Server) clusterNode() *cluster.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cluster
}

// wireReplication points the corpus's replication observer at the cluster
// node's history; a no-op until AttachCluster.
func (s *Server) wireReplication(h *corpusHandle) {
	n := s.clusterNode()
	if n == nil {
		return
	}
	name := h.name
	h.sc.SetReplicationObserver(func(b approxsel.ReplicationBatch) {
		n.Record(name, b)
	})
}

// clusterBackend adapts the server's corpus map to cluster.Backend.
type clusterBackend struct{ s *Server }

func (b *clusterBackend) Corpora() []string { return b.s.corpusNames() }

func (b *clusterBackend) Position(name string) (cluster.Position, bool) {
	h, err := b.s.corpus(name)
	if err != nil {
		return cluster.Position{}, false
	}
	return cluster.Position{Shards: h.sc.Shards(), Seq: h.sc.Seq(), Epochs: h.sc.Epochs()}, true
}

// Apply routes a replicated batch through the same mutation serialization
// as client mutations, so replication and local writes can never interleave
// mid-batch.
func (b *clusterBackend) Apply(name string, batch cluster.ReplicationBatch) error {
	h, err := b.s.corpus(name)
	if err != nil {
		return err
	}
	h.mmu.Lock()
	defer h.mmu.Unlock()
	return h.sc.ApplyReplicated(batch)
}

func (b *clusterBackend) WriteSnapshot(name string, w io.Writer) error {
	h, err := b.s.corpus(name)
	if err != nil {
		return err
	}
	return h.sc.WriteReplicaSnapshot(w)
}

// InstallSnapshot creates or replaces a corpus from a leader's snapshot
// stream — the join path for new and diverged followers. A replaced
// corpus's watches are closed (clients re-register against the installed
// state) and its store directory is re-materialized at the shipped
// version.
func (b *clusterBackend) InstallSnapshot(name string, r io.Reader) error {
	s := b.s
	s.mu.Lock()
	if s.creating[name] {
		s.mu.Unlock()
		return fmt.Errorf("server: corpus %q is being created", name)
	}
	s.creating[name] = true
	old := s.corpora[name]
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.creating, name)
		s.mu.Unlock()
	}()
	if old != nil {
		old.sc.CloseWatches()
		_ = old.sc.CloseStore()
	}
	dir := ""
	if s.cfg.DataDir != "" {
		dir = s.corpusDir(name)
	}
	sc, err := approxsel.OpenReplicaSnapshot(r, dir)
	if err != nil {
		// The local copy (if any) is gone with its store directory; drop
		// the handle so the sync loop re-joins from scratch.
		s.mu.Lock()
		delete(s.corpora, name)
		s.mu.Unlock()
		return err
	}
	h := &corpusHandle{name: name, sc: sc, preds: make(map[string]*predicateHandle)}
	if s.cfg.CacheEntries > 0 {
		h.cache = cache.New[[]core.Match](s.cfg.CacheEntries)
	}
	s.mu.Lock()
	s.corpora[name] = h
	s.mu.Unlock()
	s.wireReplication(h)
	return nil
}

// ---- epoch-consistent reads ----

// errStaleReplica marks an epoch wait that ran out the request deadline:
// this replica never caught up to the client's vector in time (504, so
// clients and load balancers retry elsewhere).
var errStaleReplica = errors.New("server: replica did not reach the requested epoch vector in time")

// awaitEpochs blocks until the corpus's epoch vector covers min, polling
// the lock-free vector; nil/empty min returns immediately. A vector of the
// wrong length can never be satisfied and is the caller's error.
func (h *corpusHandle) awaitEpochs(ctx context.Context, min []uint64) error {
	if len(min) == 0 {
		return nil
	}
	for {
		e := h.sc.Epochs()
		if len(min) != len(e) {
			return fmt.Errorf("server: min_epochs has %d entries, corpus %q has %d shards", len(min), h.name, len(e))
		}
		if vectorCovers(e, min) {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w (at %v, need %v)", errStaleReplica, e, min)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func vectorCovers(have, need []uint64) bool {
	for i := range need {
		if have[i] < need[i] {
			return false
		}
	}
	return true
}

// epochWaitStatus maps an awaitEpochs failure: deadline exhaustion is the
// replica's staleness (504); anything else is the request's fault (400).
func epochWaitStatus(err error) int {
	if errors.Is(err, errStaleReplica) {
		return http.StatusGatewayTimeout
	}
	return http.StatusBadRequest
}

// ---- result hashing (the cross-replica differential check) ----

// HashRequest asks for a canonical digest of one selection instead of the
// matches themselves — the cross-replica differential check: two replicas
// answering the same request at the same epoch vector must return the
// same hash, bit for bit.
type HashRequest struct {
	Corpus      string   `json:"corpus,omitempty"`
	Predicate   string   `json:"predicate"`
	Realization string   `json:"realization,omitempty"`
	Query       string   `json:"query"`
	Limit       int      `json:"limit,omitempty"`
	Threshold   *float64 `json:"threshold,omitempty"`
	// MinEpochs is the client's last-seen epoch vector; the reply is
	// computed at-or-past it (epoch-consistent read).
	MinEpochs []uint64 `json:"min_epochs,omitempty"`
}

// HashResponse reports the digest and the exact vector it was computed at.
type HashResponse struct {
	Hash      string   `json:"hash"`
	Count     int      `json:"count"`
	Epochs    []uint64 `json:"epochs"`
	ElapsedUS int64    `json:"elapsed_us"`
}

// resultHash digests a ranking and the epoch vector it was computed at:
// TIDs and IEEE-754 score bits in rank order, then the vector. Equal
// hashes mean bit-identical results at an identical version.
func resultHash(ms []core.Match, epochs []uint64) string {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(ms)))
	h.Write(b[:])
	for _, m := range ms {
		binary.LittleEndian.PutUint64(b[:], uint64(int64(m.TID)))
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(m.Score))
		h.Write(b[:])
	}
	for _, e := range epochs {
		binary.LittleEndian.PutUint64(b[:], e)
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Server) handleHash(w http.ResponseWriter, r *http.Request) {
	var req HashRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	req.Realization = normRealization(req.Realization)
	h, ph, ok := s.resolve(w, req.Corpus, req.Predicate, req.Realization)
	if !ok {
		return
	}
	opts, err := selectOptions(req.Limit, req.Threshold)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := h.awaitEpochs(r.Context(), req.MinEpochs); err != nil {
		s.fail(w, epochWaitStatus(err), err)
		return
	}
	if len(req.MinEpochs) == 0 {
		s.markStale(w)
	}
	start := time.Now()
	// The hash must name one exact version: retry the probe until the
	// vector is stable across it (mutations make this a short race).
	for {
		ms, epochs, _, err := h.probe(r.Context(), ph, req.Realization, req.Predicate, req.Query, opts)
		if err != nil {
			s.fail(w, status(err), err)
			return
		}
		if epochs != nil {
			writeJSON(w, http.StatusOK, HashResponse{
				Hash:      resultHash(ms, epochs),
				Count:     len(ms),
				Epochs:    epochs,
				ElapsedUS: time.Since(start).Microseconds(),
			})
			return
		}
		if err := r.Context().Err(); err != nil {
			s.fail(w, status(err), err)
			return
		}
	}
}

// staleHeader marks a response served by a degraded follower — one that
// exhausted its retry budget without leader contact. Its value is the
// leader-contact lag in milliseconds. Only reads WITHOUT min_epochs are
// ever stale-marked: a pinned read keeps its hard consistency contract
// (it waits or 504s), while an unpinned read prefers a possibly-stale
// answer over an error.
const staleHeader = "X-Approx-Stale"

// markStale stamps w when this node is degraded; call only on read paths
// without a min_epochs pin, before writing the response.
func (s *Server) markStale(w http.ResponseWriter) {
	n := s.clusterNode()
	if n == nil {
		return
	}
	if lag, degraded := n.Degraded(); degraded {
		w.Header().Set(staleHeader, strconv.FormatInt(lag.Milliseconds(), 10))
		s.met.staleReads.Add(1)
	}
}

// ---- write forwarding ----

// forwardHeader guards against forwarding loops: a node that receives an
// already-forwarded mutation while not leading answers 503 instead of
// bouncing it onward.
const forwardHeader = "X-Approxcluster-Forwarded"

// maxRetryAfter caps how long a leader-advertised Retry-After can hold a
// forwarding attempt (a misconfigured peer must not park requests).
const maxRetryAfter = 2 * time.Second

// forwardMutation routes a mutation arriving at a follower to the leader,
// relaying the response verbatim. It reports whether it handled the
// request (false = this node is the leader or no cluster is attached, the
// caller proceeds locally). Transient failures — no leader yet, transport
// errors, a target answering 503 — retry inside the cluster's backoff
// budget, re-resolving the leader each attempt and honoring Retry-After;
// any other status is the leader's authoritative answer.
func (s *Server) forwardMutation(w http.ResponseWriter, r *http.Request, body []byte) bool {
	n := s.clusterNode()
	if n == nil || n.IsLeader() {
		return false
	}
	if r.Header.Get(forwardHeader) != "" {
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("server: not the leader (forwarding loop)"))
		return true
	}
	budget := n.RetryBudget()
	var lastErr error
	retryAfter := time.Duration(0)
	for attempt := 0; attempt < budget; attempt++ {
		if attempt > 0 {
			d := n.Backoff(attempt)
			if retryAfter > d {
				d = retryAfter
			}
			if d > maxRetryAfter {
				d = maxRetryAfter
			}
			cluster.MetricRPCRetries.Inc()
			cluster.RPCBackoffMS.ObserveUS(uint64(d.Milliseconds()))
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("server: forwarding abandoned: %w", r.Context().Err()))
				return true
			}
		}
		retryAfter = 0
		// Re-resolve each attempt: elections move the leader mid-retry.
		leaderURL := n.LeaderURL()
		if leaderURL == "" {
			lastErr = fmt.Errorf("server: no leader elected")
			continue
		}
		target := leaderURL + r.URL.Path
		if r.URL.RawQuery != "" {
			target += "?" + r.URL.RawQuery
		}
		ctx, cancel := context.WithTimeout(r.Context(), n.AttemptTimeout())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
		if err != nil {
			cancel()
			s.fail(w, http.StatusInternalServerError, err)
			return true
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(forwardHeader, "1")
		// The cluster's own RPC client: bounded per-attempt deadlines, one
		// policy for all intra-cluster traffic (http.DefaultClient would
		// hang forever on a wedged leader).
		resp, err := n.Client().Do(req)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The target is not (or no longer) the leader; honor its
			// Retry-After hint on the next backoff.
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			cancel()
			lastErr = fmt.Errorf("server: leader %s answered 503", leaderURL)
			continue
		}
		// Authoritative answer (success or a real client error): relay it.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		resp.Body.Close()
		cancel()
		return true
	}
	w.Header().Set("Retry-After", "1")
	s.fail(w, http.StatusServiceUnavailable,
		fmt.Errorf("server: forwarding to leader failed after %d attempts: %w", budget, lastErr))
	return true
}

// readBody drains the (bounded) request body so it can be both decoded
// locally and forwarded verbatim.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body := r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	data, err := io.ReadAll(body)
	if err != nil {
		return nil, fmt.Errorf("server: bad request body: %w", err)
	}
	return data, nil
}

// waitQuorum holds a leader's mutation acknowledgement until a majority of
// the cluster holds it; without a cluster it returns immediately. On
// timeout the mutation is applied locally but NOT acknowledged — the
// client must retry and may observe it, which is exactly the replication
// contract ("acked implies majority").
func (s *Server) waitQuorum(ctx context.Context, h *corpusHandle, epochs []uint64) error {
	n := s.clusterNode()
	if n == nil {
		return nil
	}
	_, sp := obs.StartSpan(ctx, "quorum.wait")
	err := n.WaitCommitted(ctx, h.name, epochs, h.sc.Seq())
	sp.End()
	return err
}

// ---- cluster RPC mount and observability ----

// handleClusterRPC delegates /cluster/* to the attached node.
func (s *Server) handleClusterRPC(w http.ResponseWriter, r *http.Request) {
	n := s.clusterNode()
	if n == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no cluster attached"))
		return
	}
	n.Handler().ServeHTTP(w, r)
}

// ClusterStats is the cluster block of /v1/stats.
type ClusterStats struct {
	NodeID string `json:"node_id"`
	Role   string `json:"role"`
	Term   uint64 `json:"term"`
	Leader string `json:"leader,omitempty"`
	// Applied is this node's replication position per corpus — the epoch
	// vector and batch sequence number it has durably applied.
	Applied map[string]cluster.Position `json:"applied"`
	// Lag is the widest follower lag per corpus, from the leader's
	// vantage (followers report zero).
	Lag map[string]cluster.LagInfo `json:"lag,omitempty"`
	// Peers reports liveness per peer.
	Peers map[string]cluster.PeerStatus `json:"peers,omitempty"`
	// DegradedStaleReads counts reads served with the X-Approx-Stale marker
	// while this node could not reach a leader within its retry budget.
	DegradedStaleReads uint64 `json:"degraded_stale_reads"`
}

func (s *Server) clusterStats() *ClusterStats {
	n := s.clusterNode()
	if n == nil {
		return nil
	}
	st := n.StatusSnapshot()
	cs := &ClusterStats{
		NodeID:             st.ID,
		Role:               string(st.Role),
		Term:               st.Term,
		Leader:             st.Leader,
		Applied:            st.Position,
		Peers:              st.Peers,
		DegradedStaleReads: s.met.staleReads.Value(),
	}
	if st.Role == cluster.RoleLeader {
		cs.Lag = n.ReplicationLag()
	}
	return cs
}
