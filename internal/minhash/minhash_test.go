package minhash

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestDeterministic(t *testing.T) {
	f1 := NewFamily(8, 42)
	f2 := NewFamily(8, 42)
	tokens := []string{"$A", "AB", "B$"}
	s1 := f1.Signature(tokens)
	s2 := f2.Signature(tokens)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed must produce same signature; differ at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	f1 := NewFamily(8, 1)
	f2 := NewFamily(8, 2)
	tokens := []string{"$A", "AB", "B$"}
	s1 := f1.Signature(tokens)
	s2 := f2.Signature(tokens)
	same := true
	for i := range s1 {
		if s1[i] != s2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should (overwhelmingly) produce different signatures")
	}
}

func TestIdenticalSetsSimilarityOne(t *testing.T) {
	f := NewFamily(16, 7)
	tokens := []string{"x", "y", "z"}
	a := f.Signature(tokens)
	b := f.Signature([]string{"z", "y", "x"}) // order must not matter
	if got := Similarity(a, b); got != 1 {
		t.Fatalf("identical sets: similarity = %v, want 1", got)
	}
}

func TestEmptySets(t *testing.T) {
	f := NewFamily(4, 7)
	a := f.Signature(nil)
	b := f.Signature(nil)
	if got := Similarity(a, b); got != 1 {
		t.Fatalf("two empty sets: similarity = %v, want 1", got)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	f := NewFamily(8, 3)
	a := f.Signature([]string{"a", "b", "b", "b"})
	b := f.Signature([]string{"a", "a", "b"})
	if got := Similarity(a, b); got != 1 {
		t.Fatalf("min-hash is a set operation; duplicates must not matter, got %v", got)
	}
}

func TestKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFamily(0) should panic")
		}
	}()
	NewFamily(0, 1)
}

func TestMismatchedSignaturesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Similarity with mismatched lengths should panic")
		}
	}()
	Similarity(make([]uint64, 3), make([]uint64, 4))
}

// TestEstimatorAccuracy checks that the estimator converges to the true
// Jaccard similarity for large signatures: the paper relies on min-hash
// being a "provable approximation" of Jaccard.
func TestEstimatorAccuracy(t *testing.T) {
	f := NewFamily(512, 11)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 40 + rng.Intn(40)
		shared := rng.Intn(n)
		var a, b []string
		for i := 0; i < shared; i++ {
			tok := fmt.Sprintf("s%d-%d", trial, i)
			a = append(a, tok)
			b = append(b, tok)
		}
		for i := shared; i < n; i++ {
			a = append(a, fmt.Sprintf("a%d-%d", trial, i))
			b = append(b, fmt.Sprintf("b%d-%d", trial, i))
		}
		truth := float64(shared) / float64(2*n-shared)
		got := Similarity(f.Signature(a), f.Signature(b))
		if math.Abs(got-truth) > 0.12 {
			t.Errorf("trial %d: estimate %v too far from truth %v", trial, got, truth)
		}
	}
}

func BenchmarkSignature5(b *testing.B) {
	f := NewFamily(5, 1)
	tokens := make([]string, 40)
	for i := range tokens {
		tokens[i] = fmt.Sprintf("tok%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Signature(tokens)
	}
}
