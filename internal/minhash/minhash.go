// Package minhash implements min-wise independent permutations (Broder et
// al.), the signature scheme the paper uses to approximate the Jaccard
// similarity between word-token q-gram sets in the GESapx predicate
// (Eq. 4.8, Appendix B.4.2).
//
// A Family is a fixed set of k hash functions; the signature of a token set
// is the element-wise minimum of each hash over the set. The fraction of
// equal signature positions is an unbiased estimator of Jaccard similarity.
package minhash

import (
	"hash/fnv"
	"math/rand"
)

// Family is a set of k min-wise independent hash permutations. Families are
// deterministic for a given seed, so preprocessing is reproducible. A Family
// is safe for concurrent use once constructed.
type Family struct {
	muls []uint64
	adds []uint64
}

// NewFamily creates a family of k hash permutations seeded deterministically.
// k must be positive; the paper's experiments use k = 5 signatures.
func NewFamily(k int, seed int64) *Family {
	if k <= 0 {
		panic("minhash: family size must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Family{
		muls: make([]uint64, k),
		adds: make([]uint64, k),
	}
	for i := 0; i < k; i++ {
		// Odd multipliers give full-period multiplicative mixing over 2^64.
		f.muls[i] = rng.Uint64() | 1
		f.adds[i] = rng.Uint64()
	}
	return f
}

// K returns the number of hash functions (the signature length).
func (f *Family) K() int { return len(f.muls) }

// hash applies the i-th permutation to the FNV base hash of the token. The
// result is shifted into [0, 2^63) so values round-trip losslessly through
// int64 columns of the SQL engine (the declarative GESapx realization stores
// hash values in tables, mirroring the paper's BASE_HASHVALUE relation).
func (f *Family) hash(i int, base uint64) uint64 {
	return (base*f.muls[i] + f.adds[i]) >> 1
}

// HashValue returns the i-th permutation's hash of a single token. The
// min-hash signature is the per-slot minimum of HashValue over a token set,
// which is exactly how the declarative realization computes signatures with
// GROUP BY ... MIN.
func (f *Family) HashValue(i int, token string) uint64 {
	return f.hash(i, baseHash(token))
}

// baseHash computes a 64-bit FNV-1a hash of the token.
func baseHash(token string) uint64 {
	h := fnv.New64a()
	// fnv's Write never fails.
	_, _ = h.Write([]byte(token))
	return h.Sum64()
}

// Signature returns the min-hash signature of a token set. The signature has
// K() entries; for an empty set every entry is the maximum uint64, so two
// empty sets compare as identical.
func (f *Family) Signature(tokens []string) []uint64 {
	sig := make([]uint64, f.K())
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, t := range tokens {
		b := baseHash(t)
		for i := range sig {
			if h := f.hash(i, b); h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// Similarity estimates the Jaccard similarity of the two underlying sets as
// the fraction of matching signature entries. Signatures must come from the
// same Family and therefore have equal length.
func Similarity(a, b []uint64) float64 {
	if len(a) != len(b) {
		panic("minhash: signatures from different families")
	}
	if len(a) == 0 {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}
