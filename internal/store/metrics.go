package store

import "repro/internal/obs"

// Process-wide durability latency histograms, exposed by the server's
// /metrics registry as approx_wal_append_us, approx_wal_fsync_us,
// approx_snapshot_save_us and approx_snapshot_load_us. They are owned
// here so every Log in the process — per shard, per corpus — reports into
// one catalog; observation is two atomic adds, cheap enough to stay
// always-on in the mutation path.
var (
	// WALAppendUS times appendMutation: frame encoding plus the file write
	// that must land before a mutation is acknowledged.
	WALAppendUS = obs.NewHistogram()
	// WALFsyncUS times explicit WAL flushes (Sync/Close — the server's
	// graceful drain).
	WALFsyncUS = obs.NewHistogram()
	// SnapshotSaveUS times checkpoint segment writes (encode + fsync +
	// rename).
	SnapshotSaveUS = obs.NewHistogram()
	// SnapshotLoadUS times Open: newest-segment decode plus WAL replay
	// scan — the cold-start cost.
	SnapshotLoadUS = obs.NewHistogram()
)
