// Package store implements approxstore, the durable persistence layer of
// the shared corpus: versioned binary snapshot segments plus an
// epoch-stamped write-ahead log, under one data directory per corpus.
//
// Layout of a corpus directory:
//
//	snapshot-<epoch, 16 hex digits>.seg   // full corpus snapshot (internal/core segment format)
//	wal.log                               // mutation batches applied after that snapshot
//
// A sharded corpus persists as a root directory holding MANIFEST.json
// (format version, shard count, the shard-epoch vector at the last
// checkpoint) and one corpus directory per shard (shard-0000, shard-0001,
// ...).
//
// Durability contract: a mutation is acknowledged only after its WAL entry
// has been written to the file (the corpus's mutation hook runs before the
// new snapshot publishes, and an append failure aborts the mutation).
// Appends are plain writes — they survive a process crash immediately, and
// Sync/Close (the server's graceful drain) flushes them to stable storage
// against machine crashes. Checkpoint atomically writes a fresh segment
// and truncates the log while mutations are frozen, so the pair (segment,
// WAL) always replays to exactly the last acknowledged epoch.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

const (
	walName      = "wal.log"
	segPrefix    = "snapshot-"
	segSuffix    = ".seg"
	manifestName = "MANIFEST.json"
)

func segName(epoch uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, epoch, segSuffix)
}

// segEpoch parses a segment file name back into its epoch.
func segEpoch(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Exists reports whether dir holds a corpus store (at least one snapshot
// segment).
func Exists(dir string) bool {
	names, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range names {
		if _, ok := segEpoch(e.Name()); ok {
			return true
		}
	}
	return false
}

// Stats describes the durable state of one attached corpus.
type Stats struct {
	// Dir is the corpus's data directory.
	Dir string
	// SnapshotEpoch is the epoch of the segment a cold start would load.
	SnapshotEpoch uint64
	// SnapshotBytes is that segment's size on disk.
	SnapshotBytes int64
	// WALEntries counts the mutation batches currently in the log (they
	// replay on the next cold start; a checkpoint resets the count).
	WALEntries int
	// LastLoadDur is how long the last cold start (segment decode + WAL
	// replay) took; zero for a freshly created store.
	LastLoadDur time.Duration
}

// Log is the durable attachment of one core.Corpus to a data directory: it
// appends every mutation to the WAL through the corpus's mutation hook and
// checkpoints on demand.
type Log struct {
	dir string
	c   *core.Corpus

	mu        sync.Mutex
	f         *os.File
	off       int64 // end of the last fully-written WAL entry
	entries   int
	snapEpoch uint64
	snapBytes int64
	loadDur   time.Duration
	closed    bool

	// Cold-start replay window, captured by Open for the watch subsystem:
	// the record state the loaded segment decoded to, plus the replayed
	// mutation batches that advanced it to the current epoch. TakeReplay
	// hands both over (once) so a watch hub can rebuild its event history
	// across restarts; untaken windows are dropped on Close/Release.
	baseRecs []core.Record
	replay   []core.Mutation
	maxSeq   uint64
}

// Create initializes dir as the data directory of c: it writes a snapshot
// segment at the corpus's current epoch, creates an empty WAL, and
// attaches the mutation hook. An existing store in dir is replaced.
func Create(dir string, c *core.Corpus) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("approxstore: %w", err)
	}
	l := &Log{dir: dir, c: c}
	if err := c.Freeze(func(s *core.Snapshot) error {
		return l.checkpointLocked(s.Epoch)
	}); err != nil {
		return nil, err
	}
	c.SetMutationHook(l.appendMutation)
	return l, nil
}

// Save writes dir as a one-shot durable snapshot of c — segment at the
// current epoch plus an empty WAL — without attaching a mutation hook: the
// corpus keeps mutating un-logged afterwards. An existing store in dir is
// replaced. It is the facade's SaveCorpus.
func Save(dir string, c *core.Corpus) error {
	l, err := Create(dir, c)
	if err != nil {
		return err
	}
	l.Release()
	return nil
}

// Load restores the corpus stored in dir — newest valid segment plus WAL
// replay — without attaching a mutation hook or keeping the WAL open: a
// read-only restore whose corpus then mutates un-logged. It is the facade's
// LoadCorpus.
func Load(dir string) (*core.Corpus, Stats, error) {
	l, err := Open(dir)
	if err != nil {
		return nil, Stats{}, err
	}
	st := l.Stats()
	return l.Release(), st, nil
}

// Release detaches the log from its corpus without poisoning it: the
// mutation hook is removed (further mutations apply un-logged) and the WAL
// handle closes. It returns the corpus.
func (l *Log) Release() *core.Corpus {
	l.c.SetMutationHook(nil)
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		if l.f != nil {
			l.f.Close()
		}
	}
	l.baseRecs, l.replay = nil, nil
	return l.c
}

// Open restores the corpus stored in dir — newest valid segment, then WAL
// replay up to the last acknowledged epoch — and attaches the mutation
// hook so further mutations keep being logged. The restored corpus is
// bit-identical to the one that was saved and then mutated.
func Open(dir string) (*Log, error) {
	start := time.Now()
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("approxstore: %w", err)
	}
	type seg struct {
		epoch uint64
		name  string
	}
	var segs []seg
	for _, e := range names {
		if epoch, ok := segEpoch(e.Name()); ok {
			segs = append(segs, seg{epoch: epoch, name: e.Name()})
		}
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("approxstore: no snapshot segment in %s", dir)
	}
	// Newest first; an unreadable or corrupt segment falls back to the next
	// older one (its WAL entries are then replayed past it).
	sort.Slice(segs, func(i, j int) bool { return segs[i].epoch > segs[j].epoch })
	var (
		c       *core.Corpus
		loaded  seg
		size    int64
		lastErr error
	)
	for _, s := range segs {
		data, err := os.ReadFile(filepath.Join(dir, s.name))
		if err != nil {
			lastErr = err
			continue
		}
		lc, err := core.LoadSnapshot(data)
		if err != nil {
			lastErr = err
			continue
		}
		c, loaded, size = lc, s, int64(len(data))
		break
	}
	if c == nil {
		return nil, fmt.Errorf("approxstore: no loadable segment in %s: %w", dir, lastErr)
	}
	if c.Epoch() != loaded.epoch {
		return nil, fmt.Errorf("approxstore: segment %s decodes to epoch %d", loaded.name, c.Epoch())
	}

	f, entries, off, err := openWALForAppend(filepath.Join(dir, walName))
	if err != nil {
		return nil, fmt.Errorf("approxstore: %w", err)
	}
	// Replay: entries at or below the snapshot's epoch are the residue of a
	// checkpoint that crashed between segment rename and WAL truncation —
	// already contained in the snapshot, skipped (and excluded from the
	// entry count, which reports batches a cold start would replay). Above
	// it the sequence must be gap-free, and the whole tail applies as one
	// batched replay: per-entry record splices, one table assembly at the
	// final epoch — bit-identical to sequential mutations at a fraction of
	// the cost.
	base := c.Records()
	var muts []core.Mutation
	var maxSeq uint64
	for _, w := range entries {
		if w.epoch <= c.Epoch() {
			continue
		}
		muts = append(muts, core.Mutation{Kind: w.kind, Add: w.add, Del: w.del, Epoch: w.epoch, Seq: w.seq})
		if w.seq > maxSeq {
			maxSeq = w.seq
		}
	}
	replayed := len(muts)
	if err := c.ReplayMutations(muts); err != nil {
		f.Close()
		return nil, fmt.Errorf("approxstore: wal replay: %w", err)
	}
	// The newest segment's filename names the epoch the store once held
	// durably. If a corrupt newest segment forced a fallback and the WAL
	// (reset by that very checkpoint) could not replay back up to it, state
	// that was acknowledged is gone — fail loudly rather than serve an
	// older version as if healthy.
	if c.Epoch() < segs[0].epoch {
		f.Close()
		return nil, fmt.Errorf("approxstore: replay reached epoch %d, below segment %s — the store has lost acknowledged state", c.Epoch(), segName(segs[0].epoch))
	}
	l := &Log{
		dir:       dir,
		c:         c,
		f:         f,
		off:       off,
		entries:   replayed,
		snapEpoch: loaded.epoch,
		snapBytes: size,
		loadDur:   time.Since(start),
		baseRecs:  base,
		replay:    muts,
		maxSeq:    maxSeq,
	}
	SnapshotLoadUS.Observe(l.loadDur)
	c.SetMutationHook(l.appendMutation)
	return l, nil
}

// Corpus returns the attached corpus.
func (l *Log) Corpus() *core.Corpus { return l.c }

// TakeReplay hands over the cold-start replay window Open captured — the
// record state at the loaded segment plus the mutation batches replayed on
// top of it — and releases the log's reference to it. It returns nils for
// a freshly created store or once the window has been taken.
func (l *Log) TakeReplay() ([]core.Record, []core.Mutation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	base, muts := l.baseRecs, l.replay
	l.baseRecs, l.replay = nil, nil
	return base, muts
}

// MaxSeq returns the largest batch sequence number among the WAL entries a
// cold start replayed (zero for a fresh or fully checkpointed store) — the
// floor a sharded corpus's sequence counter resumes above.
func (l *Log) MaxSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.maxSeq
}

// Stats returns the durable-state counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Dir:           l.dir,
		SnapshotEpoch: l.snapEpoch,
		SnapshotBytes: l.snapBytes,
		WALEntries:    l.entries,
		LastLoadDur:   l.loadDur,
	}
}

// appendMutation is the corpus's mutation hook: it frames and writes the
// batch before the mutation publishes. A write failure aborts the
// mutation, so nothing is ever acknowledged that the log did not take —
// and a partial write is rolled back by truncating to the last good
// offset, so a torn frame can never sit in the middle of the log and make
// the replay scanner discard later acknowledged entries. If even the
// rollback fails, the log poisons itself: better to stop acknowledging
// than to acknowledge into a file that will not replay.
func (l *Log) appendMutation(m core.Mutation) error {
	start := time.Now()
	defer func() { WALAppendUS.Observe(time.Since(start)) }()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("approxstore: log is closed")
	}
	buf := encodeWALEntry(m)
	if len(buf) > maxWALEntrySize {
		return fmt.Errorf("approxstore: mutation batch (%d bytes) exceeds the %d-byte wal entry bound", len(buf), maxWALEntrySize)
	}
	if h := faultHook(); h != nil {
		if keep, herr := h.WALAppend(l.dir, buf); herr != nil {
			// Leave exactly the torn prefix a crash would: write keep bytes,
			// then poison the log. The mutation is not acknowledged, and the
			// replay scanner truncates the torn tail on the next open.
			if keep > 0 {
				if keep > len(buf) {
					keep = len(buf)
				}
				l.f.WriteAt(buf[:keep], l.off)
			}
			l.closed = true
			l.f.Close()
			return fmt.Errorf("approxstore: wal append failed (%v); log closed", herr)
		}
	}
	n, err := l.f.WriteAt(buf, l.off)
	if err != nil {
		if n > 0 {
			if terr := l.f.Truncate(l.off); terr != nil {
				l.closed = true
				l.f.Close()
				return fmt.Errorf("approxstore: wal append failed (%v) and rollback failed (%v); log closed", err, terr)
			}
		}
		return err
	}
	l.off += int64(len(buf))
	l.entries++
	return nil
}

// Checkpoint writes a fresh snapshot segment at the corpus's current epoch
// and truncates the WAL, atomically with respect to concurrent mutations
// (they are frozen for the duration; selections proceed unaffected). Older
// segments are removed after the new one is durable.
func (l *Log) Checkpoint() error {
	return l.c.Freeze(func(s *core.Snapshot) error {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.closed {
			return fmt.Errorf("approxstore: log is closed")
		}
		return l.checkpointLocked(s.Epoch)
	})
}

// checkpointLocked writes the segment for the corpus's current snapshot,
// fsyncs and renames it into place, then resets the WAL. Callers hold
// whatever locks make the snapshot stable (Freeze and/or l.mu).
func (l *Log) checkpointLocked(epoch uint64) error {
	start := time.Now()
	defer func() { SnapshotSaveUS.Observe(time.Since(start)) }()
	final := filepath.Join(l.dir, segName(epoch))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	if err := l.c.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("approxstore: %w", err)
	}
	if h := faultHook(); h != nil {
		if herr := h.Fsync(tmp); herr != nil {
			// The tmp segment never becomes durable: abort the checkpoint
			// cleanly, leaving the previous (segment, WAL) pair authoritative.
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("approxstore: %w", herr)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("approxstore: %w", err)
	}
	size, _ := f.Seek(0, 2)
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("approxstore: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("approxstore: %w", err)
	}
	syncDir(l.dir)

	// The segment is durable; reset the WAL. A crash before this point
	// replays the old pair; after it, stale entries (epoch <= snapshot) are
	// skipped on load.
	if l.f != nil {
		l.f.Close()
	}
	wf, err := createWAL(filepath.Join(l.dir, walName))
	if err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	l.f = wf
	l.off = walHeaderSize
	l.entries = 0
	l.snapEpoch = epoch
	l.snapBytes = size

	// Best-effort cleanup of superseded segments.
	if names, err := os.ReadDir(l.dir); err == nil {
		for _, e := range names {
			if se, ok := segEpoch(e.Name()); ok && se != epoch {
				os.Remove(filepath.Join(l.dir, e.Name()))
			}
		}
	}
	return nil
}

// Sync flushes appended WAL entries to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.f == nil {
		return nil
	}
	if h := faultHook(); h != nil {
		if herr := h.Fsync(l.dir); herr != nil {
			return herr
		}
	}
	start := time.Now()
	err := l.f.Sync()
	WALFsyncUS.Observe(time.Since(start))
	return err
}

// Close fsyncs and closes the WAL and detaches the mutation hook; further
// mutations on the corpus fail until a new log attaches. It is the
// graceful-drain path of the server.
func (l *Log) Close() error {
	l.c.SetMutationHook(func(core.Mutation) error {
		return fmt.Errorf("approxstore: log is closed")
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	start := time.Now()
	err := l.f.Sync()
	WALFsyncUS.Observe(time.Since(start))
	if err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// syncDir fsyncs a directory so a rename inside it is durable; best effort
// (not every filesystem supports it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// ---- sharded manifests ----

// Manifest records the layout of a sharded corpus store: the shard count
// and the shard-epoch vector at the last checkpoint. The vector identifies
// the global version the segments encode; per-shard WALs replay each shard
// past it to the last acknowledged state. Seq is the corpus-wide batch
// sequence number at the checkpoint — the floor the counter resumes above
// when the truncated WAL holds nothing newer (absent in pre-replication
// manifests, which decode as zero).
type Manifest struct {
	Version int      `json:"version"`
	Shards  int      `json:"shards"`
	Epochs  []uint64 `json:"epochs"`
	Seq     uint64   `json:"seq,omitempty"`
}

// ShardDir returns the data directory of shard i under root.
func ShardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%04d", i))
}

// HasManifest reports whether root holds a sharded corpus store.
func HasManifest(root string) bool {
	_, err := os.Stat(filepath.Join(root, manifestName))
	return err == nil
}

// WriteManifest atomically replaces root's manifest.
func WriteManifest(root string, m Manifest) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	tmp := filepath.Join(root, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(root, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("approxstore: %w", err)
	}
	syncDir(root)
	return nil
}

// MaterializeShard initializes dir as one shard's store holding exactly
// the given snapshot segment (already in the segment format, at the given
// epoch) and an empty write-ahead log — the install step of a replica
// joining from a full-snapshot transfer. An existing store in dir is
// replaced.
func MaterializeShard(dir string, segData []byte, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	final := filepath.Join(dir, segName(epoch))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, segData, 0o644); err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("approxstore: %w", err)
	}
	f, err := createWAL(filepath.Join(dir, walName))
	if err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	f.Close()
	syncDir(dir)
	return nil
}

// ReadManifest reads and validates root's manifest.
func ReadManifest(root string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(root, manifestName))
	if err != nil {
		return m, fmt.Errorf("approxstore: %w", err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("approxstore: bad manifest: %w", err)
	}
	if m.Version != 1 {
		return m, fmt.Errorf("approxstore: unsupported manifest version %d", m.Version)
	}
	if m.Shards < 1 {
		return m, fmt.Errorf("approxstore: manifest names %d shards", m.Shards)
	}
	if len(m.Epochs) != m.Shards {
		return m, fmt.Errorf("approxstore: manifest epoch vector has %d entries for %d shards", len(m.Epochs), m.Shards)
	}
	return m, nil
}

// nodeStateName is the file the cluster layer persists its election state
// in, next to the corpus manifest in the node's data directory.
const nodeStateName = "NODESTATE"

// NodeState is the durable election state of one cluster node: the highest
// term it has seen and the candidate it voted for in that term. A node must
// never vote twice in one term or regress its term across a restart, so
// both are fsynced before any vote or term bump takes effect.
type NodeState struct {
	Version  int    `json:"version"`
	Term     uint64 `json:"term"`
	VotedFor string `json:"voted_for,omitempty"`
}

// ReadNodeState reads the node's persisted election state; a missing file
// is a fresh node at term zero, not an error.
func ReadNodeState(root string) (NodeState, error) {
	data, err := os.ReadFile(filepath.Join(root, nodeStateName))
	if os.IsNotExist(err) {
		return NodeState{Version: 1}, nil
	}
	if err != nil {
		return NodeState{}, fmt.Errorf("approxstore: %w", err)
	}
	var st NodeState
	if err := json.Unmarshal(data, &st); err != nil {
		return NodeState{}, fmt.Errorf("approxstore: bad node state: %w", err)
	}
	if st.Version != 1 {
		return NodeState{}, fmt.Errorf("approxstore: unsupported node state version %d", st.Version)
	}
	return st, nil
}

// WriteNodeState atomically and durably replaces the node's persisted
// election state.
func WriteNodeState(root string, st NodeState) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	st.Version = 1
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	tmp := filepath.Join(root, nodeStateName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("approxstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("approxstore: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("approxstore: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(root, nodeStateName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("approxstore: %w", err)
	}
	syncDir(root)
	return nil
}
