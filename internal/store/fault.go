package store

import "sync"

// FaultHook intercepts the store's durability syscalls so tests and chaos
// drills can inject the failures a real disk produces: short (torn) WAL
// appends and failed fsyncs. The zero state — no hook installed — costs one
// RWMutex read per call. internal/chaos.StoreFaults implements it.
type FaultHook interface {
	// WALAppend is consulted before a WAL frame is written. Returning
	// (len(frame), nil) writes the frame normally. Returning (keep, err)
	// with err != nil writes only the first keep bytes — the torn tail a
	// crash mid-append leaves — and fails the mutation, so nothing torn is
	// ever acknowledged.
	WALAppend(dir string, frame []byte) (keep int, err error)
	// Fsync is consulted before fsyncing path (a WAL or a checkpoint's tmp
	// segment). A non-nil error is reported instead of syncing.
	Fsync(path string) error
}

var (
	faultMu   sync.RWMutex
	faultImpl FaultHook
)

// SetFaultHook installs (or with nil, removes) the process-wide fault hook.
func SetFaultHook(h FaultHook) {
	faultMu.Lock()
	defer faultMu.Unlock()
	faultImpl = h
}

func faultHook() FaultHook {
	faultMu.RLock()
	defer faultMu.RUnlock()
	return faultImpl
}
