package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
)

func storeRecords() []core.Record {
	texts := []string{
		"AT&T Incorporated", "IBM Incorporated", "Morgan Stanley Group Inc.",
		"Beijing Hotel", "Redwood Energy", "International Business Machines",
	}
	out := make([]core.Record, len(texts))
	for i, t := range texts {
		out[i] = core.Record{TID: i + 1, Text: t}
	}
	return out
}

func newTestCorpus(t *testing.T) *core.Corpus {
	t.Helper()
	c, err := core.NewCorpus(storeRecords(), core.DefaultConfig(), core.AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// assertSameRelation compares epoch and records — the store-level contract;
// bit-identical tables are proven by the internal/core round-trip tests and
// the facade's differential suite.
func assertSameRelation(t *testing.T, want, got *core.Corpus) {
	t.Helper()
	if want.Epoch() != got.Epoch() {
		t.Fatalf("epoch: want %d, got %d", want.Epoch(), got.Epoch())
	}
	if !reflect.DeepEqual(want.Records(), got.Records()) {
		t.Fatalf("records differ:\n%v\nvs\n%v", want.Records(), got.Records())
	}
}

func TestCreateOpenReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists must report a created store")
	}
	if err := c.Insert(core.Record{TID: 100, Text: "Beijing Hotel Group"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(core.Record{TID: 100, Text: "Beijing Hotel Group Ltd"}); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.SnapshotEpoch != 0 || st.WALEntries != 3 {
		t.Fatalf("stats after three mutations: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed log rejects further mutations: nothing can land unlogged.
	if err := c.Insert(core.Record{TID: 101, Text: "Never lands"}); err == nil {
		t.Fatal("mutation after Close must fail")
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertSameRelation(t, c, l2.Corpus())
	st = l2.Stats()
	if st.SnapshotEpoch != 0 || st.WALEntries != 3 || st.LastLoadDur <= 0 {
		t.Fatalf("stats after reopen: %+v", st)
	}
	// The reopened log keeps appending where the old one stopped.
	if err := l2.Corpus().Insert(core.Record{TID: 200, Text: "Appended after reopen"}); err != nil {
		t.Fatal(err)
	}
	if got := l2.Stats().WALEntries; got != 4 {
		t.Fatalf("wal entries after append: %d", got)
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := c.Insert(core.Record{TID: 100 + i, Text: "Checkpoint Fodder"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.SnapshotEpoch != 3 || st.WALEntries != 0 || st.SnapshotBytes <= 0 {
		t.Fatalf("stats after checkpoint: %+v", st)
	}
	// Superseded segments are gone; exactly the epoch-3 segment remains.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range names {
		if epoch, ok := segEpoch(e.Name()); ok {
			segs++
			if epoch != 3 {
				t.Fatalf("stale segment %s survived the checkpoint", e.Name())
			}
		}
	}
	if segs != 1 {
		t.Fatalf("%d segments after checkpoint", segs)
	}

	// Mutations after the checkpoint land in the fresh WAL and replay.
	if err := c.Delete(1); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertSameRelation(t, c, l2.Corpus())
	if st := l2.Stats(); st.SnapshotEpoch != 3 || st.WALEntries != 1 {
		t.Fatalf("stats after reopen: %+v", st)
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(core.Record{TID: 100, Text: "Survives the crash"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: half an entry frame at the tail.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertSameRelation(t, c, l2.Corpus())
	// The torn tail was truncated: the next append must produce a WAL every
	// future open still reads cleanly.
	if err := l2.Corpus().Insert(core.Record{TID: 101, Text: "After recovery"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if got := l3.Corpus().Epoch(); got != 2 {
		t.Fatalf("epoch after recovery and append: %d", got)
	}
}

func TestOpenSkipsStaleWALEntries(t *testing.T) {
	// The crash-between-checkpoint-steps window: the fresh segment was
	// renamed into place but the process died before the WAL reset, so the
	// log still holds entries the segment already contains.
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(core.Record{TID: 100, Text: "In both segment and wal"}); err != nil {
		t.Fatal(err)
	}
	// Hand-write the epoch-1 segment without touching the WAL.
	f, err := os.Create(filepath.Join(dir, segName(c.Epoch())))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertSameRelation(t, c, l2.Corpus())
	if st := l2.Stats(); st.SnapshotEpoch != 1 || st.WALEntries != 0 {
		t.Fatalf("open must pick the newest segment and not count stale entries: %+v", st)
	}
}

func TestOpenFallsBackToOlderSegment(t *testing.T) {
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(core.Record{TID: 100, Text: "Replayed from wal"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// A corrupt newer segment must not brick the store when the WAL still
	// covers its epoch: open falls back to the older segment and the
	// replay reaches the corrupt segment's named epoch exactly.
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("APXSNAP1garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertSameRelation(t, c, l2.Corpus())
}

func TestOpenRefusesEpochRegression(t *testing.T) {
	// The mirror case: the corrupt newest segment's epoch is NOT covered by
	// the WAL (the checkpoint that wrote it also reset the log), so the
	// fallback would serve state behind what was once acknowledged durably.
	// That must fail the open, not silently regress.
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, segName(7)), []byte("APXSNAP1garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("a fallback below the newest segment's epoch must fail the open")
	}
}

func TestOpenRecreatesTornWALHeader(t *testing.T) {
	// A crash between the checkpoint's O_TRUNC and the 12 header bytes
	// leaves a short wal.log. No entry can exist in it, so the open must
	// recreate the log instead of failing forever.
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, walName), []byte{0x41, 0x50, 0x58}, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	assertSameRelation(t, c, l2.Corpus())
	if st := l2.Stats(); st.WALEntries != 0 {
		t.Fatalf("torn header must recover to an empty log: %+v", st)
	}
	// The recreated log takes appends and replays them.
	if err := l2.Corpus().Insert(core.Record{TID: 100, Text: "After header recovery"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if l3.Corpus().Epoch() != 1 {
		t.Fatalf("epoch after recovery and append: %d", l3.Corpus().Epoch())
	}
}

func TestOpenRejectsWALGap(t *testing.T) {
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Append a frame claiming epoch 5 against a snapshot at epoch 0: a
	// gap means lost acknowledged mutations, which must be an error, not a
	// silent partial restore.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	entry := encodeWALEntry(core.Mutation{
		Kind:  core.MutationInsert,
		Add:   []core.Record{{TID: 100, Text: "From the future"}},
		Epoch: 5,
	})
	if _, err := f.Write(entry); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir); err == nil {
		t.Fatal("a wal gap must fail the open")
	}
}

func TestOpenEmptyDirFails(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err == nil {
		t.Fatal("open of a dir without segments must fail")
	}
	if Exists(dir) {
		t.Fatal("Exists must be false for an empty dir")
	}
}

func TestAppendFailureAbortsMutation(t *testing.T) {
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	// Close the log out from under the corpus: the hook now rejects, and the
	// write-ahead contract demands the mutation aborts with no state change.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(core.Record{TID: 100, Text: "Unlogged"}); err == nil {
		t.Fatal("mutation with a closed log must fail")
	}
	if c.Epoch() != 0 || c.Len() != len(storeRecords()) {
		t.Fatalf("rejected mutation changed state: epoch %d len %d", c.Epoch(), c.Len())
	}
}

func TestManifestRoundTrip(t *testing.T) {
	root := t.TempDir()
	if HasManifest(root) {
		t.Fatal("no manifest yet")
	}
	m := Manifest{Version: 1, Shards: 3, Epochs: []uint64{4, 0, 9}}
	if err := WriteManifest(root, m); err != nil {
		t.Fatal(err)
	}
	if !HasManifest(root) {
		t.Fatal("manifest must exist after write")
	}
	got, err := ReadManifest(root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("manifest round trip: %+v vs %+v", m, got)
	}
	if ShardDir(root, 2) != filepath.Join(root, "shard-0002") {
		t.Fatalf("shard dir layout: %s", ShardDir(root, 2))
	}

	// Validation: shard/epoch mismatches are rejected.
	if err := WriteManifest(root, Manifest{Version: 1, Shards: 2, Epochs: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(root); err == nil {
		t.Fatal("mismatched epoch vector must fail validation")
	}
	if err := os.WriteFile(filepath.Join(root, manifestName), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(root); err == nil {
		t.Fatal("malformed manifest must fail")
	}
	if err := WriteManifest(root, Manifest{Version: 2, Shards: 1, Epochs: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(root); err == nil {
		t.Fatal("a future manifest version must be rejected, like every other reader")
	}
}

func TestSegNameRoundTrip(t *testing.T) {
	for _, epoch := range []uint64{0, 1, 255, 1 << 40} {
		name := segName(epoch)
		got, ok := segEpoch(name)
		if !ok || got != epoch {
			t.Fatalf("segment name round trip: %s -> %d %v", name, got, ok)
		}
	}
	for _, bad := range []string{"wal.log", "snapshot-xyz.seg", "snapshot-00.seg", "snapshot-0000000000000000.tmp"} {
		if _, ok := segEpoch(bad); ok {
			t.Fatalf("%q must not parse as a segment", bad)
		}
	}
}
