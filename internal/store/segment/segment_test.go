package segment

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

const testMagic = "TESTSEG1"

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xdeadbeef)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(-7)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.Str("hello, 世界")
	e.Strs([]string{"", "a", "bb"})
	e.I32s([]int32{-1, 0, 1 << 30})
	e.Ints([]int{-5, 5})
	e.F64s([]float64{0, -0.5, math.MaxFloat64})
	e.U64s([]uint64{1, math.MaxUint64})

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 7 {
		t.Fatalf("u8: %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools")
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Fatalf("u32: %x", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Fatalf("u64: %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("i64: %d", got)
	}
	if got := d.Int(); got != -7 {
		t.Fatalf("int: %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("f64: %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Fatalf("f64 inf: %v", got)
	}
	if got := d.Str(); got != "hello, 世界" {
		t.Fatalf("str: %q", got)
	}
	if got := d.Strs(); len(got) != 3 || got[2] != "bb" {
		t.Fatalf("strs: %v", got)
	}
	if got := d.I32s(); len(got) != 3 || got[0] != -1 || got[2] != 1<<30 {
		t.Fatalf("i32s: %v", got)
	}
	if got := d.Ints(); len(got) != 2 || got[0] != -5 {
		t.Fatalf("ints: %v", got)
	}
	if got := d.F64s(); len(got) != 3 || got[1] != -0.5 {
		t.Fatalf("f64s: %v", got)
	}
	if got := d.U64s(); len(got) != 2 || got[1] != math.MaxUint64 {
		t.Fatalf("u64s: %v", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // truncated
	if d.Err() == nil {
		t.Fatal("want sticky error")
	}
	// Later reads stay poisoned and return zero values, never panic.
	if d.U32() != 0 || d.Str() != "" || d.F64s() != nil {
		t.Fatal("poisoned decoder must return zero values")
	}
	if d.Finish() == nil {
		t.Fatal("finish must report the sticky error")
	}
}

func TestDecoderHugeLengthRejected(t *testing.T) {
	e := NewEncoder(8)
	e.U32(1 << 31) // absurd element count with no backing bytes
	d := NewDecoder(e.Bytes())
	if got := d.F64s(); got != nil || d.Err() == nil {
		t.Fatalf("bogus count must fail cleanly, got %v err %v", got, d.Err())
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section(1, []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := w.Section(2, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(buf.Bytes(), testMagic)
	if err != nil {
		t.Fatal(err)
	}
	tag, payload, err := r.Next()
	if err != nil || tag != 1 || string(payload) != "alpha" {
		t.Fatalf("section 1: %d %q %v", tag, payload, err)
	}
	tag, payload, err = r.Next()
	if err != nil || tag != 2 || len(payload) != 0 {
		t.Fatalf("section 2: %d %q %v", tag, payload, err)
	}
	if _, _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after sentinel, got %v", err)
	}
	if _, _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF must be sticky, got %v", err)
	}
}

func TestReaderDetectsCorruption(t *testing.T) {
	build := func() []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, testMagic)
		_ = w.Section(1, []byte("payload-bytes"))
		_ = w.Close()
		return buf.Bytes()
	}

	// Bad magic.
	if _, err := NewReader(build(), "OTHERMAG"); err == nil {
		t.Fatal("bad magic must fail")
	}
	// Bit flip inside the payload.
	data := build()
	data[20] ^= 0x01
	r, err := NewReader(data, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil {
		t.Fatal("flipped payload must fail CRC")
	}
	// Truncated file (sentinel missing).
	data = build()
	r, err = NewReader(data[:len(data)-5], testMagic)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, err = r.Next(); err != nil {
			break
		}
	}
	if errors.Is(err, io.EOF) {
		t.Fatal("truncated segment must not reach clean EOF")
	}
	// Unsupported version.
	data = build()
	data[8] = 99
	if _, err := NewReader(data, testMagic); err == nil {
		t.Fatal("future version must fail")
	}
}

func TestWriterRejectsReservedTag(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section(EndTag, nil); err == nil {
		t.Fatal("reserved tag must be rejected")
	}
}
