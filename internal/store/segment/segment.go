// Package segment implements the low-level binary container of the
// approxstore persistence layer: a little-endian, CRC-framed sequence of
// tagged sections. A segment file starts with an 8-byte magic string and a
// format version, followed by sections — each a [tag u8][length u64]
// [payload][crc32(payload) u32] frame — and ends with an end-of-segment
// sentinel whose own frame is CRC-protected too, so a truncated or
// bit-flipped file is always detected before any of its content is trusted.
//
// The package knows nothing about corpora: internal/core encodes snapshots
// and internal/store encodes WAL entries and manifests on top of the same
// Encoder/Decoder primitives. Everything is fixed-width little-endian —
// decode speed is the point of the snapshot path (a cold start replays a
// segment instead of re-tokenizing the relation), and fixed-width fields
// decode with bounds-checked copies instead of per-element branching.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the current segment format version. Readers reject files
// written under a different major format.
const Version = 1

// EndTag terminates the section sequence of a segment.
const EndTag = 0xFF

// maxSectionSize bounds one section's payload (1 GiB): a corrupt length
// field must not drive the reader into allocating absurd buffers.
const maxSectionSize = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ---- encoder ----

// Encoder appends fixed-width little-endian primitives to a growing buffer.
// It is the single serialization vocabulary of the store: every section
// payload, WAL entry and manifest is built from these calls.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the current encoded size.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset empties the buffer, keeping its capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a fixed 32-bit value.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a fixed 64-bit value.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a signed 64-bit value.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as 64 bits.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 bit pattern — bit-exact round-tripping is the
// persistence contract, so floats are never formatted or re-parsed.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Strs appends a length-prefixed string slice.
func (e *Encoder) Strs(ss []string) {
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

// I32s appends a length-prefixed []int32.
func (e *Encoder) I32s(vs []int32) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U32(uint32(v))
	}
}

// Ints appends a length-prefixed []int as 64-bit values.
func (e *Encoder) Ints(vs []int) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.I64(int64(v))
	}
}

// F64s appends a length-prefixed []float64.
func (e *Encoder) F64s(vs []float64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// U64s appends a length-prefixed []uint64.
func (e *Encoder) U64s(vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// ---- decoder ----

// Decoder reads the Encoder's vocabulary back from a byte slice. Errors are
// sticky: the first bounds violation poisons the decoder, every later read
// returns zero values, and Err reports the failure — so decode call sites
// read as linearly as encode call sites and check one error at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over the payload.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish errors unless the payload was consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("segment: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("segment: truncated payload reading %s at offset %d", what, d.off)
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte as a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a fixed 32-bit value.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed 64-bit value.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads a 64-bit value as an int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := int(d.U32())
	b := d.take(n, "string")
	if b == nil {
		return ""
	}
	return string(b)
}

// sliceLen validates a length prefix against the remaining payload, given a
// minimum byte width per element, so a corrupt count cannot force a huge
// allocation before the bounds check catches it.
func (d *Decoder) sliceLen(width int, what string) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n*width > d.Remaining() {
		d.fail(what)
		return 0
	}
	return n
}

// Raw returns the next n bytes as a subslice of the payload, without
// copying. It is the bulk path of the snapshot decoder: fixed-width row
// arrays pay one bounds check here and then decode with direct indexing
// instead of a Decoder call per element.
func (d *Decoder) Raw(n int, what string) []byte { return d.take(n, what) }

// Strs reads a length-prefixed string slice.
func (d *Decoder) Strs() []string {
	n := d.sliceLen(4, "[]string")
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.Str()
	}
	return out
}

// I32s reads a length-prefixed []int32.
func (d *Decoder) I32s() []int32 {
	n := d.sliceLen(4, "[]int32")
	if d.err != nil {
		return nil
	}
	b := d.take(4*n, "[]int32")
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// Ints reads a length-prefixed []int.
func (d *Decoder) Ints() []int {
	n := d.sliceLen(8, "[]int")
	if d.err != nil {
		return nil
	}
	b := d.take(8*n, "[]int")
	if b == nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := d.sliceLen(8, "[]float64")
	if d.err != nil {
		return nil
	}
	b := d.take(8*n, "[]float64")
	if b == nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// F64sInto decodes a length-prefixed float64 array into dst, which must
// have exactly the prefixed length — the carving path for column groups
// whose total size the caller preallocated.
func (d *Decoder) F64sInto(dst []float64) error {
	n := d.sliceLen(8, "[]float64")
	if d.err != nil {
		return d.err
	}
	if n != len(dst) {
		return fmt.Errorf("segment: float column has %d entries, want %d", n, len(dst))
	}
	b := d.take(8*n, "[]float64")
	if d.err != nil {
		return d.err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return nil
}

// U64s reads a length-prefixed []uint64.
func (d *Decoder) U64s() []uint64 {
	n := d.sliceLen(8, "[]uint64")
	if d.err != nil {
		return nil
	}
	b := d.take(8*n, "[]uint64")
	if b == nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// ---- section frames ----

// Frame wraps one payload into a section frame: tag, length, payload, CRC.
func Frame(tag uint8, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+17)
	out = append(out, tag)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return out
}

// Writer writes a segment file: magic, version, framed sections, sentinel.
type Writer struct {
	w     io.Writer
	err   error
	magic string
}

// NewWriter writes the segment header (an 8-byte magic and the format
// version) and returns the section writer. The magic must be exactly 8
// bytes.
func NewWriter(w io.Writer, magic string) (*Writer, error) {
	if len(magic) != 8 {
		return nil, fmt.Errorf("segment: magic %q must be 8 bytes", magic)
	}
	sw := &Writer{w: w, magic: magic}
	var hdr []byte
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, Version)
	_, sw.err = w.Write(hdr)
	return sw, sw.err
}

// Section writes one CRC-framed section. Payloads over maxSectionSize are
// rejected at write time: the reader enforces the same bound, so writing a
// larger section would produce a segment that saves fine but can never be
// loaded — the checkpoint must fail instead, keeping the previous
// segment + WAL pair intact.
func (sw *Writer) Section(tag uint8, payload []byte) error {
	if sw.err != nil {
		return sw.err
	}
	if tag == EndTag {
		return fmt.Errorf("segment: tag 0x%02x is reserved", EndTag)
	}
	if len(payload) > maxSectionSize {
		sw.err = fmt.Errorf("segment: section 0x%02x payload (%d bytes) exceeds the %d-byte format bound", tag, len(payload), maxSectionSize)
		return sw.err
	}
	_, sw.err = sw.w.Write(Frame(tag, payload))
	return sw.err
}

// Close writes the end-of-segment sentinel. It does not close or sync the
// underlying writer — durability (fsync, rename) is the caller's layer.
func (sw *Writer) Close() error {
	if sw.err != nil {
		return sw.err
	}
	_, sw.err = sw.w.Write(Frame(EndTag, nil))
	return sw.err
}

// Reader validates and iterates a segment file read fully into memory.
type Reader struct {
	buf []byte
	off int
	end bool
}

// NewReader validates the header of a fully-read segment file.
func NewReader(data []byte, magic string) (*Reader, error) {
	if len(magic) != 8 {
		return nil, fmt.Errorf("segment: magic %q must be 8 bytes", magic)
	}
	if len(data) < 12 {
		return nil, fmt.Errorf("segment: file too short (%d bytes)", len(data))
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("segment: bad magic %q (want %q)", data[:8], magic)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return nil, fmt.Errorf("segment: unsupported format version %d (have %d)", v, Version)
	}
	return &Reader{buf: data, off: 12}, nil
}

// Next returns the next section's tag and payload, validating its CRC.
// After the end-of-segment sentinel it returns io.EOF; a malformed frame,
// CRC mismatch, or missing sentinel is an error.
func (r *Reader) Next() (uint8, []byte, error) {
	if r.end {
		return 0, nil, io.EOF
	}
	if r.off+9 > len(r.buf) {
		return 0, nil, fmt.Errorf("segment: truncated section header at offset %d", r.off)
	}
	tag := r.buf[r.off]
	n := binary.LittleEndian.Uint64(r.buf[r.off+1 : r.off+9])
	if n > maxSectionSize {
		return 0, nil, fmt.Errorf("segment: section 0x%02x claims %d bytes", tag, n)
	}
	body := r.off + 9
	if body+int(n)+4 > len(r.buf) {
		return 0, nil, fmt.Errorf("segment: truncated section 0x%02x at offset %d", tag, r.off)
	}
	payload := r.buf[body : body+int(n)]
	crc := binary.LittleEndian.Uint32(r.buf[body+int(n) : body+int(n)+4])
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, fmt.Errorf("segment: CRC mismatch in section 0x%02x at offset %d", tag, r.off)
	}
	r.off = body + int(n) + 4
	if tag == EndTag {
		r.end = true
		if r.off != len(r.buf) {
			return 0, nil, fmt.Errorf("segment: %d trailing bytes after end sentinel", len(r.buf)-r.off)
		}
		return 0, nil, io.EOF
	}
	return tag, payload, nil
}
