package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/core"
	"repro/internal/store/segment"
)

// The write-ahead log: an append-only file of epoch-stamped mutation
// batches. Every entry is individually CRC-framed, so a torn tail (the
// process died mid-append) is detected and truncated on the next open —
// every fully-written entry before it replays, nothing after it is
// trusted. Entries carry the epoch the corpus moved to when the batch
// applied; replay skips entries at or below the snapshot's epoch (the
// crash-between-checkpoint-steps window) and demands a gap-free sequence
// above it.

// WALMagic identifies a write-ahead log file.
const WALMagic = "APXWAL01"

const walHeaderSize = 12 // 8-byte magic + u32 version

// maxWALEntrySize bounds one entry's payload (1 GiB, the segment format's
// section bound). The frame length is a u32: a larger payload would wrap,
// write a frame the replay scanner mistakes for a torn tail, and silently
// lose the acknowledged batch — so the append must fail instead.
const maxWALEntrySize = 1 << 30

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// walEntry is one decoded mutation batch.
type walEntry struct {
	kind  core.MutationKind
	epoch uint64
	seq   uint64
	add   []core.Record
	del   []int
}

// encodeWALEntry frames one mutation batch: [len u32][payload][crc u32].
func encodeWALEntry(m core.Mutation) []byte {
	e := segment.NewEncoder(64 + 32*len(m.Add) + 8*len(m.Del))
	e.U8(uint8(m.Kind))
	e.U64(m.Epoch)
	e.U32(uint32(len(m.Add)))
	for _, r := range m.Add {
		e.I64(int64(r.TID))
		e.Str(r.Text)
	}
	e.U32(uint32(len(m.Del)))
	for _, tid := range m.Del {
		e.I64(int64(tid))
	}
	// The batch sequence number trails the entry so logs written before it
	// existed still decode (the reader treats a missing trailer as seq 0 and
	// falls back to the epoch).
	e.U64(m.Seq)
	payload := e.Bytes()
	out := make([]byte, 0, len(payload)+8)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, walCRC))
	return out
}

func decodeWALPayload(payload []byte) (walEntry, error) {
	d := segment.NewDecoder(payload)
	w := walEntry{kind: core.MutationKind(d.U8()), epoch: d.U64()}
	nAdd := int(d.U32())
	if err := d.Err(); err != nil {
		return w, err
	}
	if nAdd > d.Remaining()/12 {
		return w, fmt.Errorf("wal entry claims %d records", nAdd)
	}
	for i := 0; i < nAdd; i++ {
		w.add = append(w.add, core.Record{TID: int(d.I64()), Text: d.Str()})
	}
	nDel := int(d.U32())
	if err := d.Err(); err != nil {
		return w, err
	}
	if nDel > d.Remaining()/8 {
		return w, fmt.Errorf("wal entry claims %d deletes", nDel)
	}
	for i := 0; i < nDel; i++ {
		w.del = append(w.del, int(d.I64()))
	}
	if d.Remaining() >= 8 {
		w.seq = d.U64()
	}
	if err := d.Finish(); err != nil {
		return w, err
	}
	if w.seq == 0 {
		w.seq = w.epoch
	}
	switch w.kind {
	case core.MutationInsert, core.MutationDelete, core.MutationUpsert:
	default:
		return w, fmt.Errorf("wal entry has unknown op %d", w.kind)
	}
	return w, nil
}

// scanWAL decodes the entries of a WAL file's contents. It stops cleanly at
// a torn tail — a truncated frame or a CRC mismatch ends the scan — and
// returns the byte offset just past the last fully valid entry, so the
// opener can truncate the file there before appending. A malformed header
// is an error: that is not a torn write but a foreign or corrupted file.
func scanWAL(data []byte) (entries []walEntry, goodOffset int64, err error) {
	if len(data) < walHeaderSize {
		return nil, 0, fmt.Errorf("approxstore: wal header truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != WALMagic {
		return nil, 0, fmt.Errorf("approxstore: bad wal magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != segment.Version {
		return nil, 0, fmt.Errorf("approxstore: unsupported wal version %d", v)
	}
	off := int64(walHeaderSize)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return entries, off, nil
		}
		if len(rest) < 8 {
			return entries, off, nil // torn frame header
		}
		n := int(binary.LittleEndian.Uint32(rest[:4]))
		if n < 0 || 4+n+4 > len(rest) {
			return entries, off, nil // torn payload
		}
		payload := rest[4 : 4+n]
		crc := binary.LittleEndian.Uint32(rest[4+n : 8+n])
		if crc32.Checksum(payload, walCRC) != crc {
			return entries, off, nil // torn or corrupt entry: stop trusting the file here
		}
		entry, err := decodeWALPayload(payload)
		if err != nil {
			return entries, off, nil
		}
		entries = append(entries, entry)
		off += int64(8 + n)
	}
}

// createWAL writes a fresh, empty log (header only) and syncs it.
func createWAL(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr []byte
	hdr = append(hdr, WALMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, segment.Version)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// openWALForAppend opens an existing log (creating it when missing), scans
// its entries, truncates any torn tail, and returns the handle together
// with the append offset (the end of the last fully valid entry).
func openWALForAppend(path string) (*os.File, []walEntry, int64, error) {
	data, err := os.ReadFile(path)
	// A file shorter than the header is a torn header: the checkpoint's
	// O_TRUNC landed but the 12 header bytes did not all reach disk before
	// a crash. No entry can exist in such a file, so recreate it — the
	// same recovery the torn-entry path gets — instead of bricking the
	// store behind a permanent open error.
	if os.IsNotExist(err) || (err == nil && len(data) < walHeaderSize) {
		f, cerr := createWAL(path)
		return f, nil, walHeaderSize, cerr
	}
	if err != nil {
		return nil, nil, 0, err
	}
	entries, good, err := scanWAL(data)
	if err != nil {
		return nil, nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	if good < int64(len(data)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	return f, entries, good, nil
}
