package store

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// hookFaults is a minimal FaultHook: one-shot armed faults, mirroring what
// internal/chaos.StoreFaults injects during nemesis drills.
type hookFaults struct {
	failFsync bool
	tearKeep  int
	tearArmed bool
}

func (h *hookFaults) WALAppend(dir string, frame []byte) (int, error) {
	if !h.tearArmed {
		return len(frame), nil
	}
	h.tearArmed = false
	keep := h.tearKeep
	if keep > len(frame) {
		keep = len(frame)
	}
	return keep, errors.New("injected torn append")
}

func (h *hookFaults) Fsync(path string) error {
	if !h.failFsync {
		return nil
	}
	h.failFsync = false
	return errors.New("injected fsync failure")
}

// TestInjectedTornAppendReplaysToLastAck tears a WAL append mid-frame via
// the fault hook: the mutation must not be acknowledged, and a reopen must
// replay exactly the acknowledged epochs, truncating the torn tail.
func TestInjectedTornAppendReplaysToLastAck(t *testing.T) {
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(core.Record{TID: 100, Text: "Beijing Hotel Group"}); err != nil {
		t.Fatal(err)
	}
	ackedEpoch := c.Epoch()
	ackedRecs := len(c.Records())

	h := &hookFaults{tearArmed: true, tearKeep: 7}
	SetFaultHook(h)
	defer SetFaultHook(nil)
	if err := c.Insert(core.Record{TID: 101, Text: "Torn Mid Write Corp"}); err == nil {
		t.Fatal("append through torn-write fault must fail the mutation")
	}
	SetFaultHook(nil)
	// The log poisoned itself — no more acks into a torn file.
	if err := c.Insert(core.Record{TID: 102, Text: "After Poison Inc"}); err == nil {
		t.Fatal("mutation after poisoned log must fail")
	}
	_ = l

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn append: %v", err)
	}
	defer l2.Close()
	c2 := l2.Corpus()
	if c2.Epoch() != ackedEpoch {
		t.Fatalf("replayed epoch %d, want last acked %d", c2.Epoch(), ackedEpoch)
	}
	if got := len(c2.Records()); got != ackedRecs {
		t.Fatalf("replayed %d records, want %d", got, ackedRecs)
	}
	// The reopened store keeps working: the torn tail was truncated, so new
	// appends land after the last good frame.
	if err := c2.Insert(core.Record{TID: 103, Text: "Post Recovery Ltd"}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestInjectedFsyncFailureMidCheckpoint fails the tmp segment's fsync: the
// checkpoint must abort cleanly, the previous (segment, WAL) pair must stay
// authoritative, and a reopen must still reach the last acked epoch.
func TestInjectedFsyncFailureMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(core.Record{TID: 100, Text: "Beijing Hotel Group"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(core.Record{TID: 100, Text: "Beijing Hotel Group Ltd"}); err != nil {
		t.Fatal(err)
	}
	ackedEpoch := c.Epoch()

	h := &hookFaults{failFsync: true}
	SetFaultHook(h)
	defer SetFaultHook(nil)
	if err := l.Checkpoint(); err == nil {
		t.Fatal("checkpoint through fsync fault must fail")
	}
	SetFaultHook(nil)

	// The aborted checkpoint left the old pair intact: WAL entries still
	// pending, snapshot epoch unchanged.
	st := l.Stats()
	if st.SnapshotEpoch != 0 || st.WALEntries != 2 {
		t.Fatalf("stats after aborted checkpoint: %+v", st)
	}
	// The store still functions — a later checkpoint succeeds.
	if err := l.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after heal: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Corpus().Epoch(); got != ackedEpoch {
		t.Fatalf("replayed epoch %d, want last acked %d", got, ackedEpoch)
	}
}

// TestInjectedSyncFailureSurfaces verifies Sync reports an injected fsync
// error instead of claiming durability.
func TestInjectedSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	c := newTestCorpus(t)
	l, err := Create(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := c.Insert(core.Record{TID: 100, Text: "Beijing Hotel Group"}); err != nil {
		t.Fatal(err)
	}
	SetFaultHook(&hookFaults{failFsync: true})
	defer SetFaultHook(nil)
	if err := l.Sync(); err == nil {
		t.Fatal("Sync through fsync fault must report the error")
	}
	SetFaultHook(nil)
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after heal: %v", err)
	}
}
