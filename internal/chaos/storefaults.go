package chaos

import (
	"fmt"
	"sync"
)

// StoreFaults injects storage faults. It structurally implements
// store.FaultHook (chaos cannot import store without a cycle): install with
// store.SetFaultHook(sf). Faults are one-shot — arm one, trigger the write
// path, the fault fires once and disarms — so a test tears exactly the
// append or fsync it means to.
type StoreFaults struct {
	mu         sync.Mutex
	failFsync  bool
	tearArmed  bool
	tearKeep   int
	fsyncCount uint64
	tearCount  uint64
}

// FailNextFsync arms a one-shot fsync failure: the next Fsync call errors.
func (s *StoreFaults) FailNextFsync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failFsync = true
}

// TearNextAppend arms a one-shot torn WAL append: the next WALAppend keeps
// only the first keep bytes of the frame on disk and reports failure —
// the on-disk state a crash mid-write leaves behind.
func (s *StoreFaults) TearNextAppend(keep int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tearArmed = true
	s.tearKeep = keep
}

// WALAppend implements the store fault hook for WAL writes.
func (s *StoreFaults) WALAppend(dir string, frame []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.tearArmed {
		return len(frame), nil
	}
	s.tearArmed = false
	s.tearCount++
	MetricStoreFaults.Inc()
	keep := s.tearKeep
	if keep > len(frame) {
		keep = len(frame)
	}
	return keep, fmt.Errorf("chaos: injected torn append in %s (kept %d of %d bytes)", dir, keep, len(frame))
}

// Fsync implements the store fault hook for fsync calls.
func (s *StoreFaults) Fsync(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.failFsync {
		return nil
	}
	s.failFsync = false
	s.fsyncCount++
	MetricStoreFaults.Inc()
	return fmt.Errorf("chaos: injected fsync failure on %s", path)
}

// Counts reports how many fsync failures and torn appends have fired.
func (s *StoreFaults) Counts() (fsyncFails, tornAppends uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fsyncCount, s.tearCount
}
