// Package chaos implements approxchaos, the deterministic fault-injection
// layer behind the nemesis drills: a seeded, rule-driven http.RoundTripper
// (and matching inbound middleware) that injects network faults between
// named cluster peers — full and asymmetric one-way partitions, dropped
// requests, dropped replies, added latency, duplicated deliveries and
// slow-close response bodies — switchable at runtime, plus a store fault
// hook (StoreFaults) for failed fsyncs and torn WAL appends.
//
// Faults are injected at the sender: every node's cluster RPC client wraps
// its transport with Injector.Transport, so votes, heartbeats, replication
// pulls, snapshot joins AND the server's write forwarding all pass through
// one rule set. The transport stamps each peer request with the sender's
// node ID, which lets Injector.Inbound — mounted in front of a node's
// handler — drop inbound traffic by origin too, the listener-side half of
// a partition when the sender's process has no injector of its own.
//
// Everything is deterministic under a seed: the same rules over the same
// request sequence roll the same probabilistic faults.
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Kind names one fault a rule injects.
type Kind string

const (
	// KindPartition fails requests between From and To in both directions —
	// a full network partition between the two (wildcards isolate a node).
	KindPartition Kind = "partition"
	// KindOneWay fails requests From→To only; the reverse direction flows.
	// With From a follower and To its leader, the follower still hears
	// heartbeats while its own votes and pulls die — the asymmetric
	// partition of the election livelock regression.
	KindOneWay Kind = "oneway"
	// KindReplyDrop delivers the request but drops the response: the
	// receiver acts on the message, the sender never hears back. The other
	// half of an asymmetric partition ("leader cannot hear the follower").
	KindReplyDrop Kind = "replydrop"
	// KindDrop fails requests From→To with probability P — a lossy link.
	KindDrop Kind = "drop"
	// KindLatency delays requests From→To by LatencyMS before delivery.
	KindLatency Kind = "latency"
	// KindDuplicate delivers the request twice (the duplicate first, its
	// response discarded) — exercising idempotent application.
	KindDuplicate Kind = "duplicate"
	// KindSlowClose trickles the response body: every read stalls LatencyMS
	// (default 2ms) — a slow-close connection.
	KindSlowClose Kind = "slowclose"
)

// Kinds lists every fault kind in stable order (metrics registration and
// report keys iterate it).
func Kinds() []Kind {
	return []Kind{KindPartition, KindOneWay, KindReplyDrop, KindDrop, KindLatency, KindDuplicate, KindSlowClose}
}

func validKind(k Kind) bool {
	for _, v := range Kinds() {
		if k == v {
			return true
		}
	}
	return false
}

// Rule injects one fault between named peers. From and To match node IDs;
// "*" (or empty) matches any. P is the per-message probability, defaulting
// to 1. LatencyMS parameterizes KindLatency (added delay) and
// KindSlowClose (per-read stall).
type Rule struct {
	From      string  `json:"from"`
	To        string  `json:"to"`
	Kind      Kind    `json:"kind"`
	P         float64 `json:"p,omitempty"`
	LatencyMS int     `json:"latency_ms,omitempty"`
}

func peerMatch(pat, id string) bool { return pat == "*" || pat == "" || pat == id }

// matches reports whether the rule applies to a message from → to.
// Partitions are bidirectional; every other kind is directional.
func (r Rule) matches(from, to string) bool {
	if r.Kind == KindPartition && peerMatch(r.From, to) && peerMatch(r.To, from) {
		return true
	}
	return peerMatch(r.From, from) && peerMatch(r.To, to)
}

// ParseRules decodes a JSON rule array (the -chaos-rules wire format) and
// validates every kind.
func ParseRules(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	if err := json.Unmarshal([]byte(spec), &rules); err != nil {
		return nil, fmt.Errorf("chaos: bad rules %q: %w", spec, err)
	}
	for i, r := range rules {
		if !validKind(r.Kind) {
			return nil, fmt.Errorf("chaos: rule %d has unknown kind %q", i, r.Kind)
		}
		if r.P < 0 || r.P > 1 {
			return nil, fmt.Errorf("chaos: rule %d has probability %v outside [0,1]", i, r.P)
		}
	}
	return rules, nil
}

// peerHeader carries the sending node's ID on chaos-wrapped peer requests,
// so Inbound middleware on the receiver can attribute and filter by origin.
const peerHeader = "X-Approx-Chaos-Peer"

// Injector holds the active rule set and the seeded RNG behind the
// probabilistic faults. One Injector is shared by every transport and
// middleware of the process (or of the in-process nemesis cluster), so a
// single SetRules switches the whole topology at runtime.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rules  []Rule
	byHost map[string]string // URL host -> peer ID
}

// New returns an Injector with no rules; seed 0 selects 1 (chaos must stay
// reproducible, so there is no time-derived fallback).
func New(seed int64) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{rng: rand.New(rand.NewSource(seed)), byHost: make(map[string]string)}
}

// SetPeers registers the cluster's id → base-URL map; the transport
// resolves request hosts against it to name the destination peer. Requests
// to unregistered hosts (ordinary client traffic) are never touched.
func (in *Injector) SetPeers(peers map[string]string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.byHost = make(map[string]string, len(peers))
	for id, base := range peers {
		if u, err := url.Parse(base); err == nil && u.Host != "" {
			in.byHost[u.Host] = id
		}
	}
}

// SetRules replaces the active rule set atomically — the runtime switch a
// nemesis schedule (or POST /chaos/rules) flips between fault and heal.
func (in *Injector) SetRules(rules []Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	activeRules.Add(int64(len(rules) - len(in.rules)))
	in.rules = append([]Rule(nil), rules...)
}

// Rules returns a copy of the active rule set.
func (in *Injector) Rules() []Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Rule(nil), in.rules...)
}

func (in *Injector) peerID(host string) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.byHost[host]
}

// plan is the decided fault set for one message.
type plan struct {
	latency   time.Duration
	slowRead  time.Duration
	kill      Kind // partition, oneway or drop: fail before delivery
	dropReply bool
	dup       bool
}

// decide rolls the active rules for one message from → to. The first
// matching terminal fault (partition, oneway, drop) wins; latency,
// duplication, reply-drop and slow-close compose around delivery.
func (in *Injector) decide(from, to string) plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	var p plan
	for _, r := range in.rules {
		if !r.matches(from, to) {
			continue
		}
		if r.P > 0 && r.P < 1 && in.rng.Float64() >= r.P {
			continue
		}
		switch r.Kind {
		case KindPartition, KindOneWay, KindDrop:
			if p.kill == "" {
				p.kill = r.Kind
			}
		case KindReplyDrop:
			p.dropReply = true
		case KindLatency:
			p.latency += time.Duration(r.LatencyMS) * time.Millisecond
		case KindDuplicate:
			p.dup = true
		case KindSlowClose:
			p.slowRead = time.Duration(r.LatencyMS) * time.Millisecond
			if p.slowRead <= 0 {
				p.slowRead = 2 * time.Millisecond
			}
		}
	}
	return p
}

// InjectedError marks a fault injected by the chaos layer, so logs can
// tell injected failures from real ones.
type InjectedError struct {
	Kind     Kind
	From, To string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault %s -> %s", e.Kind, e.From, e.To)
}

// Transport wraps base (nil selects http.DefaultTransport) with the
// injector's rules, acting as node self. Requests to hosts that are not
// registered peers pass through untouched.
func (in *Injector) Transport(self string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, self: self, base: base}
}

type transport struct {
	in   *Injector
	self string
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	to := t.in.peerID(req.URL.Host)
	if to == "" || to == t.self {
		return t.base.RoundTrip(req)
	}
	req.Header.Set(peerHeader, t.self)
	p := t.in.decide(t.self, to)
	if p.latency > 0 {
		countFault(KindLatency)
		select {
		case <-time.After(p.latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if p.kill != "" {
		countFault(p.kill)
		return nil, &InjectedError{Kind: p.kill, From: t.self, To: to}
	}
	if p.dup && req.GetBody != nil {
		// Deliver a full duplicate first and discard its response — the
		// receiver sees the message twice, exactly a retransmitted delivery.
		if body, err := req.GetBody(); err == nil {
			countFault(KindDuplicate)
			dup := req.Clone(req.Context())
			dup.Body = body
			if resp, err := t.base.RoundTrip(dup); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if p.dropReply {
		// The request was delivered and processed; the sender never learns.
		countFault(KindReplyDrop)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &InjectedError{Kind: KindReplyDrop, From: t.self, To: to}
	}
	if p.slowRead > 0 {
		countFault(KindSlowClose)
		resp.Body = &slowBody{rc: resp.Body, delay: p.slowRead}
	}
	return resp, nil
}

// slowBody stalls every read — a connection whose peer trickles and
// slow-closes.
type slowBody struct {
	rc    io.ReadCloser
	delay time.Duration
}

func (s *slowBody) Read(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.rc.Read(p)
}

func (s *slowBody) Close() error { return s.rc.Close() }

// Inbound wraps a node's handler with the receiver-side half of the rules:
// peer requests whose origin is partitioned (or one-way blocked) toward
// self are refused before they reach the node. Origin is read from the
// header the chaos transport stamps; requests without it — ordinary client
// traffic, or peers without an injector — pass through.
func (in *Injector) Inbound(self string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		from := r.Header.Get(peerHeader)
		if from != "" && from != self {
			p := in.decide(from, self)
			if p.kill == KindPartition || p.kill == KindOneWay {
				countFault(p.kill)
				http.Error(w, (&InjectedError{Kind: p.kill, From: from, To: self}).Error(), http.StatusBadGateway)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}
