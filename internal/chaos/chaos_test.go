package chaos

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// twoPeers wires an injector between a fake sender "a" and a live server
// "b", returning the chaos-wrapped client and the request count at b.
func twoPeers(t *testing.T, inj *Injector) (*http.Client, *atomic.Int64, *httptest.Server) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(inj.Inbound("b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	})))
	t.Cleanup(srv.Close)
	inj.SetPeers(map[string]string{"b": srv.URL})
	client := &http.Client{Transport: inj.Transport("a", nil)}
	return client, &hits, srv
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(`[{"from":"a","to":"*","kind":"oneway"},{"kind":"drop","p":0.5}]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Kind != KindOneWay || rules[1].P != 0.5 {
		t.Fatalf("unexpected rules: %+v", rules)
	}
	if _, err := ParseRules(`[{"kind":"meteor"}]`); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseRules(`[{"kind":"drop","p":1.5}]`); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	if rules, err := ParseRules("  "); err != nil || rules != nil {
		t.Fatalf("blank spec: rules=%v err=%v", rules, err)
	}
}

func TestRuleMatching(t *testing.T) {
	part := Rule{From: "a", To: "b", Kind: KindPartition}
	if !part.matches("a", "b") || !part.matches("b", "a") {
		t.Fatal("partition must match both directions")
	}
	if part.matches("a", "c") {
		t.Fatal("partition matched unrelated pair")
	}
	ow := Rule{From: "a", To: "*", Kind: KindOneWay}
	if !ow.matches("a", "b") || ow.matches("b", "a") {
		t.Fatal("oneway must be directional")
	}
}

func TestPartitionBlocksBothDirections(t *testing.T) {
	inj := New(1)
	client, hits, _ := twoPeers(t, inj)
	inj.SetRules([]Rule{{From: "a", To: "b", Kind: KindPartition}})
	if _, err := client.Get("http://" + hostOf(t, inj) + "/x"); err == nil {
		t.Fatal("partitioned request succeeded")
	}
	if hits.Load() != 0 {
		t.Fatalf("request reached peer through partition: hits=%d", hits.Load())
	}
	// Heal at runtime and the same client goes through.
	inj.SetRules(nil)
	if _, err := client.Get("http://" + hostOf(t, inj) + "/x"); err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("healed hits=%d", hits.Load())
	}
}

func TestInboundBlocksByOrigin(t *testing.T) {
	// The receiver-side middleware enforces a partition even when the
	// sender direction is the one named blocked (bidirectional match).
	inj := New(1)
	client, hits, _ := twoPeers(t, inj)
	inj.SetRules(nil)
	// Send one clean request so the transport path is warm, then block b's
	// inbound from a via a rule written in the reverse direction.
	if _, err := client.Get("http://" + hostOf(t, inj) + "/x"); err != nil {
		t.Fatal(err)
	}
	inj.SetRules([]Rule{{From: "b", To: "a", Kind: KindPartition}})
	resp, err := client.Get("http://" + hostOf(t, inj) + "/x")
	if err == nil {
		resp.Body.Close()
		t.Fatal("expected injected failure")
	}
	if hits.Load() != 1 {
		t.Fatalf("blocked request reached handler: hits=%d", hits.Load())
	}
}

func TestOneWayAndReplyDrop(t *testing.T) {
	inj := New(1)
	client, hits, _ := twoPeers(t, inj)
	inj.SetRules([]Rule{{From: "a", To: "b", Kind: KindOneWay}})
	if _, err := client.Get("http://" + hostOf(t, inj) + "/x"); err == nil {
		t.Fatal("oneway a->b let the request through")
	}
	if hits.Load() != 0 {
		t.Fatal("oneway delivered the request")
	}
	// replydrop: delivered (hits increments) but the sender sees an error.
	inj.SetRules([]Rule{{From: "a", To: "b", Kind: KindReplyDrop}})
	if _, err := client.Get("http://" + hostOf(t, inj) + "/x"); err == nil {
		t.Fatal("replydrop returned a response")
	}
	if hits.Load() != 1 {
		t.Fatalf("replydrop did not deliver: hits=%d", hits.Load())
	}
}

func TestDropProbabilistic(t *testing.T) {
	inj := New(42)
	client, hits, _ := twoPeers(t, inj)
	inj.SetRules([]Rule{{Kind: KindDrop, P: 0.5}})
	var failed int
	for i := 0; i < 40; i++ {
		resp, err := client.Get("http://" + hostOf(t, inj) + "/x")
		if err != nil {
			failed++
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if failed == 0 || failed == 40 {
		t.Fatalf("p=0.5 drop failed %d/40 requests", failed)
	}
	if got := int(hits.Load()); got != 40-failed {
		t.Fatalf("delivered %d, expected %d", got, 40-failed)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	inj := New(1)
	client, hits, _ := twoPeers(t, inj)
	inj.SetRules([]Rule{{Kind: KindDuplicate}})
	resp, err := client.Post("http://"+hostOf(t, inj)+"/x", "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("duplicate rule delivered %d times, want 2", hits.Load())
	}
}

func TestLatencyAndSlowClose(t *testing.T) {
	inj := New(1)
	client, _, _ := twoPeers(t, inj)
	inj.SetRules([]Rule{{Kind: KindLatency, LatencyMS: 30}, {Kind: KindSlowClose, LatencyMS: 5}})
	start := time.Now()
	resp, err := client.Get("http://" + hostOf(t, inj) + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency rule not applied: %v", d)
	}
}

func TestNonPeerTrafficUntouched(t *testing.T) {
	inj := New(1)
	inj.SetRules([]Rule{{Kind: KindPartition}})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(peerHeader) != "" {
			t.Error("chaos header on non-peer request")
		}
		w.Write([]byte("ok"))
	}))
	defer srv.Close()
	client := &http.Client{Transport: inj.Transport("a", nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("non-peer request was chaos'd: %v", err)
	}
	resp.Body.Close()
}

func TestRulesRoundTripJSON(t *testing.T) {
	in := []Rule{{From: "n0", To: "*", Kind: KindPartition}, {Kind: KindLatency, P: 0.5, LatencyMS: 15}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseRules(string(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestStoreFaultsOneShot(t *testing.T) {
	var sf StoreFaults
	if err := sf.Fsync("x"); err != nil {
		t.Fatal("unarmed fsync failed")
	}
	sf.FailNextFsync()
	if err := sf.Fsync("x"); err == nil {
		t.Fatal("armed fsync succeeded")
	}
	if err := sf.Fsync("x"); err != nil {
		t.Fatal("fsync fault fired twice")
	}
	frame := []byte("0123456789")
	if keep, err := sf.WALAppend("d", frame); err != nil || keep != len(frame) {
		t.Fatalf("unarmed append: keep=%d err=%v", keep, err)
	}
	sf.TearNextAppend(3)
	keep, err := sf.WALAppend("d", frame)
	if err == nil || keep != 3 {
		t.Fatalf("torn append: keep=%d err=%v", keep, err)
	}
	if keep, err := sf.WALAppend("d", frame); err != nil || keep != len(frame) {
		t.Fatalf("tear fired twice: keep=%d err=%v", keep, err)
	}
	fs, tears := sf.Counts()
	if fs != 1 || tears != 1 {
		t.Fatalf("counts = (%d,%d), want (1,1)", fs, tears)
	}
}

func hostOf(t *testing.T, inj *Injector) string {
	t.Helper()
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for h := range inj.byHost {
		return h
	}
	t.Fatal("no peers registered")
	return ""
}
