package chaos

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Package-level fault counters, one per kind, exported by the server's
// registry as approx_chaos_faults_total{kind=...}. Package vars (not
// registry-owned) so in-process drills can read them without a server.
var faultCounters = func() map[Kind]*obs.Counter {
	m := make(map[Kind]*obs.Counter, len(Kinds()))
	for _, k := range Kinds() {
		m[k] = obs.NewCounter()
	}
	return m
}()

// MetricStoreFaults counts store faults (failed fsyncs, torn appends)
// injected through StoreFaults, exported as approx_chaos_store_faults_total.
var MetricStoreFaults = obs.NewCounter()

// activeRules tracks the total active rule count across all injectors,
// exported as the approx_chaos_active_rules gauge.
var activeRules atomic.Int64

// FaultKinds returns the kinds in stable registration order.
func FaultKinds() []Kind { return Kinds() }

// FaultCounter returns the injected-fault counter for one kind.
func FaultCounter(k Kind) *obs.Counter { return faultCounters[k] }

// FaultCounts snapshots every kind's injected-fault count.
func FaultCounts() map[Kind]uint64 {
	m := make(map[Kind]uint64, len(faultCounters))
	for k, c := range faultCounters {
		m[k] = c.Value()
	}
	return m
}

// TotalFaults sums injected faults across all kinds.
func TotalFaults() uint64 {
	var n uint64
	for _, c := range faultCounters {
		n += c.Value()
	}
	return n
}

// ActiveRuleCount reports the number of currently active rules across all
// injectors in the process.
func ActiveRuleCount() int64 { return activeRules.Load() }

func countFault(k Kind) {
	if c := faultCounters[k]; c != nil {
		c.Inc()
	}
}
