// Package watch is the standing-query subsystem: a watch installs a
// predicate + threshold pair over a live corpus and receives epoch-tagged
// match/unmatch events as the corpus mutates, instead of re-running a
// batch join. Only the delta record of each mutation is evaluated — via
// the hot-path Select for live inserts, via an equivalent pairwise scan
// for retractions and WAL replay — under a strict contract: folding a
// watch's emissions up to epoch E yields exactly the pair set and scores
// a from-scratch batch join would produce at epoch E.
//
// Delivery is resumable. Every event carries the (shard, epoch) the
// mutation moved the corpus to; a client that reconnects presents the
// epoch vector it last saw, the hub replays the missed window from its
// mutation history (seeded from the WAL on a cold start), and live
// delivery continues seamlessly — each missed event delivered exactly
// once.
package watch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// EventKind labels an event as asserting or retracting a match pair.
type EventKind string

const (
	// KindMatch asserts a pair: it entered the join result at this epoch.
	KindMatch EventKind = "match"
	// KindUnmatch retracts a pair: a delete or upsert removed it from the
	// join result at this epoch. Score is the score the pair had.
	KindUnmatch EventKind = "unmatch"
)

// Event is one incremental change to the watch's join result.
type Event struct {
	Kind EventKind `json:"kind"`
	// ProbeTID is the probe-side record: for a self watch, the mutated
	// record; for a join watch, the fixed probe record. BaseTID is the
	// corpus-side partner.
	ProbeTID int     `json:"probe_tid"`
	BaseTID  int     `json:"base_tid"`
	Score    float64 `json:"score"`
	// Shard and Epoch locate the mutation that caused the event; Seq is
	// the global batch sequence number (equal to Epoch on a plain corpus).
	Shard int    `json:"shard"`
	Epoch uint64 `json:"epoch"`
	Seq   uint64 `json:"seq"`
}

// SubMutation is one shard's slice of a logical mutation batch.
type SubMutation struct {
	Shard int
	Kind  core.MutationKind
	Add   []core.Record
	Del   []int
	Epoch uint64
}

// Batch is one logical mutation batch: every sub-batch the mutation
// applied, ordered by shard. A plain corpus always has one sub.
type Batch struct {
	Seq  uint64
	Subs []SubMutation
}

// ProbeFunc evaluates a delta record against the live corpus through the
// hot-path Select: every record whose similarity to query is >= theta,
// any order. The hub filters self-pairs and batch ordering itself.
type ProbeFunc func(query string, theta float64) ([]core.Match, error)

// Spec describes a watch registration.
type Spec struct {
	// Predicate names the similarity; it must be one of the stats-free
	// watchable predicates (see newScorer).
	Predicate string
	// Theta is the match threshold; must be positive.
	Theta float64
	// Probes, when non-nil, makes this a join watch: events track the
	// approximate join of this fixed probe relation against the corpus.
	// Nil means a self watch (online dedup over the corpus itself).
	Probes []core.Record
	// Resume is the per-shard epoch vector the client has already seen;
	// the missed window replays before live delivery. Nil starts live-only
	// at the current epoch.
	Resume []uint64
	// Buffer is the delivery channel capacity (default 1024). A consumer
	// that falls further behind than the buffer is disconnected with
	// ErrLagged and must resume.
	Buffer int
}

var (
	// ErrResumeTooOld reports a resume vector older than the hub's
	// replayable history window; the client must rebuild from a fresh join.
	ErrResumeTooOld = errors.New("watch: resume epoch predates the replayable window")
	// ErrLagged reports a consumer that fell behind its delivery buffer;
	// its watch is closed and it should re-register with its last vector.
	ErrLagged = errors.New("watch: consumer lagged past its delivery buffer")
	// ErrClosed reports registration on a hub that has been drained.
	ErrClosed = errors.New("watch: hub closed")
)

const (
	defaultHistory = 1024
	defaultBuffer  = 1024
	replaySlack    = 64
)

// Hub multiplexes a corpus's mutation stream to its registered watches.
// It keeps a bounded history of recent batches (seeded from the WAL
// replay window on a durable cold start) for resume, plus a TID → text
// view of the corpus used to derive retractions and replay windows.
type Hub struct {
	cfg     core.Config
	shards  int
	histCap int

	mu         sync.Mutex
	live       map[int]string // current corpus text by TID
	epochs     []uint64       // current per-shard epoch vector
	base       map[int]string // corpus text as of baseEpochs (history floor)
	baseEpochs []uint64
	hist       []Batch
	subs       map[*Watch]struct{}
	closed     bool

	emitted  uint64
	replayed uint64
	deriveNS int64
}

// NewHub builds a hub over a corpus currently at baseEpochs with the
// given records, plus the already-applied batches in hist (the WAL replay
// window on a durable cold start; nil for a fresh corpus). hist both
// seeds the resume history and advances the hub's view to the corpus's
// current state.
func NewHub(cfg core.Config, shards int, base []core.Record, baseEpochs []uint64, hist []Batch) *Hub {
	h := &Hub{
		cfg:        cfg,
		shards:     shards,
		histCap:    defaultHistory,
		live:       make(map[int]string, len(base)),
		base:       make(map[int]string, len(base)),
		epochs:     make([]uint64, shards),
		baseEpochs: make([]uint64, shards),
		subs:       make(map[*Watch]struct{}),
	}
	for _, r := range base {
		h.base[r.TID] = r.Text
		h.live[r.TID] = r.Text
	}
	copy(h.baseEpochs, baseEpochs)
	copy(h.epochs, baseEpochs)
	for _, b := range hist {
		h.hist = append(h.hist, b)
		for _, sub := range b.Subs {
			applySub(h.live, sub)
			h.epochs[sub.Shard] = sub.Epoch
		}
	}
	h.trimLocked()
	return h
}

// GroupBatches reassembles logical mutation batches from per-shard WAL
// replay windows, grouping entries written by the same logical mutation
// (same global sequence number) back into one Batch, ordered by sequence
// then shard. Logs written before sequence numbers existed fall back to
// grouping by epoch, which can merge unrelated cross-shard batches from
// that era; the fold of the replayed window is unaffected.
func GroupBatches(perShard [][]core.Mutation) []Batch {
	type tagged struct {
		shard int
		m     core.Mutation
	}
	var all []tagged
	for sh, muts := range perShard {
		for _, m := range muts {
			all = append(all, tagged{shard: sh, m: m})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].m.Seq != all[j].m.Seq {
			return all[i].m.Seq < all[j].m.Seq
		}
		return all[i].shard < all[j].shard
	})
	var out []Batch
	for _, t := range all {
		sub := SubMutation{Shard: t.shard, Kind: t.m.Kind, Add: t.m.Add, Del: t.m.Del, Epoch: t.m.Epoch}
		if n := len(out); n > 0 && out[n-1].Seq == t.m.Seq {
			out[n-1].Subs = append(out[n-1].Subs, sub)
			continue
		}
		out = append(out, Batch{Seq: t.m.Seq, Subs: []SubMutation{sub}})
	}
	return out
}

func applySub(view map[int]string, sub SubMutation) {
	for _, tid := range sub.Del {
		delete(view, tid)
	}
	for _, r := range sub.Add {
		view[r.TID] = r.Text
	}
}

// trimLocked folds history overflow into the base view, advancing the
// resume floor.
func (h *Hub) trimLocked() {
	for len(h.hist) > h.histCap {
		b := h.hist[0]
		h.hist = h.hist[1:]
		for _, sub := range b.Subs {
			applySub(h.base, sub)
			h.baseEpochs[sub.Shard] = sub.Epoch
		}
	}
}

// Shards returns the width of the hub's epoch vector.
func (h *Hub) Shards() int { return h.shards }

// Epochs returns the current per-shard epoch vector.
func (h *Hub) Epochs() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, len(h.epochs))
	copy(out, h.epochs)
	return out
}

// Register installs a watch. When spec.Resume is set, the missed window
// (every sub-batch above the resumed epoch) is derived from history and
// preloaded into the delivery channel before the watch goes live, so the
// replay→live transition loses and duplicates nothing.
func (h *Hub) Register(spec Spec, probe ProbeFunc) (*Watch, error) {
	sc, err := newScorer(spec.Predicate, h.cfg, spec.Theta)
	if err != nil {
		return nil, err
	}
	w := &Watch{hub: h, spec: spec, sc: sc, probe: probe}
	for _, r := range spec.Probes {
		w.probes = append(w.probes, probeRec{tid: r.TID, p: sc.prep(r.Text)})
	}
	sort.Slice(w.probes, func(i, j int) bool { return w.probes[i].tid < w.probes[j].tid })

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	var pending []Event
	if spec.Resume != nil {
		if len(spec.Resume) != h.shards {
			return nil, fmt.Errorf("watch: resume vector has %d epochs, corpus has %d shards", len(spec.Resume), h.shards)
		}
		for i, e := range spec.Resume {
			if e > h.epochs[i] {
				return nil, fmt.Errorf("watch: resume epoch %d for shard %d is ahead of the corpus (at %d)", e, i, h.epochs[i])
			}
			if e < h.baseEpochs[i] {
				return nil, fmt.Errorf("%w: shard %d epoch %d is below the history floor %d", ErrResumeTooOld, i, e, h.baseEpochs[i])
			}
		}
		pending = h.replayLocked(w, spec.Resume)
	}
	buf := spec.Buffer
	if buf <= 0 {
		buf = defaultBuffer
	}
	if buf < len(pending)+replaySlack {
		buf = len(pending) + replaySlack
	}
	w.ch = make(chan Event, buf)
	for _, e := range pending {
		w.ch <- e
	}
	h.replayed += uint64(len(pending))
	h.emitted += uint64(len(pending))
	w.queued = sumVec(h.epochs)
	if spec.Resume != nil {
		w.delivered.Store(sumVec(spec.Resume))
	} else {
		w.delivered.Store(w.queued)
	}
	h.subs[w] = struct{}{}
	return w, nil
}

// replayLocked derives this watch's events for the history window above
// resume. Covered sub-batches are applied to the walk's view without
// scanning; uncovered ones run the same canonical derivation live
// delivery uses, with the pairwise scorer standing in for Select.
func (h *Hub) replayLocked(w *Watch, resume []uint64) []Event {
	view := make(map[int]string, len(h.base))
	for k, v := range h.base {
		view[k] = v
	}
	var out []Event
	for _, b := range h.hist {
		st := newDeriveState(view, b)
		for _, sub := range b.Subs {
			if sub.Epoch > resume[sub.Shard] {
				evs, _ := st.processSub(sub, []*Watch{w}, false)
				out = append(out, evs[w]...)
			} else {
				st.applyOnly(sub)
			}
		}
	}
	return out
}

// OnBatch ingests one published mutation batch: it derives every
// registered watch's events for the batch, applies the batch to the live
// view and history, and delivers. It must be called under the corpus's
// mutation serialization, after the batch published — the hot-path probe
// reads the post-batch corpus state.
func (h *Hub) OnBatch(b Batch) {
	h.mu.Lock()
	defer h.mu.Unlock()
	start := time.Now()
	watches := make([]*Watch, 0, len(h.subs))
	for w := range h.subs {
		watches = append(watches, w)
	}

	st := newDeriveState(h.live, b)
	out := make(map[*Watch][]Event)
	var failed map[*Watch]error
	for _, sub := range b.Subs {
		evs, errs := st.processSub(sub, watches, true)
		for w, e := range evs {
			out[w] = append(out[w], e...)
		}
		for w, err := range errs {
			if failed == nil {
				failed = make(map[*Watch]error)
			}
			failed[w] = err
		}
		h.epochs[sub.Shard] = sub.Epoch
	}
	h.hist = append(h.hist, b)
	h.trimLocked()
	h.deriveNS += time.Since(start).Nanoseconds()
	if obs.TracingEnabled() {
		obs.RecordStage("watch.derive", time.Since(start))
	}

	qsum := sumVec(h.epochs)
	for _, w := range watches {
		if err, ok := failed[w]; ok {
			h.failLocked(w, err)
			continue
		}
		evs := out[w]
		h.emitted += uint64(len(evs))
		lagged := false
		for _, e := range evs {
			select {
			case w.ch <- e:
			default:
				lagged = true
			}
			if lagged {
				break
			}
		}
		w.queued = qsum
		if len(evs) == 0 && w.delivered.Load() < qsum {
			// Nothing to deliver at this epoch: the consumer is caught up
			// by construction.
			w.delivered.Store(qsum)
		}
		if lagged {
			h.failLocked(w, ErrLagged)
		}
	}
}

func (h *Hub) failLocked(w *Watch, err error) {
	if w.closed {
		return
	}
	w.closed = true
	w.err = err
	close(w.ch)
	delete(h.subs, w)
}

// CloseAll closes every watch cleanly (drain) and rejects further
// registrations. The hub keeps tracking mutations so stats stay honest.
func (h *Hub) CloseAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for w := range h.subs {
		h.failLocked(w, nil)
	}
}

// Stats is the hub's observability block.
type Stats struct {
	// Active is the number of registered watches.
	Active int
	// Emitted counts events delivered (or preloaded for replay) overall.
	Emitted uint64
	// Replayed counts events derived from the history window for
	// resuming clients.
	Replayed uint64
	// MaxLagEpochs is the widest gap, over active watches, between the
	// epoch sum enqueued and the epoch sum the consumer acknowledged.
	MaxLagEpochs uint64
	// DeriveNS is cumulative wall time spent deriving events in OnBatch —
	// the incremental cost mutations pay for standing queries.
	DeriveNS int64
}

// Stats reports the hub's counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Stats{Active: len(h.subs), Emitted: h.emitted, Replayed: h.replayed, DeriveNS: h.deriveNS}
	for w := range h.subs {
		if d := w.delivered.Load(); w.queued > d && w.queued-d > st.MaxLagEpochs {
			st.MaxLagEpochs = w.queued - d
		}
	}
	return st
}

func sumVec(v []uint64) uint64 {
	var s uint64
	for _, e := range v {
		s += e
	}
	return s
}

// ---- Watch handle ----

// probeRec is one prepared probe-side record of a join watch.
type probeRec struct {
	tid int
	p   *prepped
}

// Watch is one registered standing query. Consume Events until it
// closes, then check Err: nil means a clean close (Close or drain),
// ErrLagged means the consumer fell behind and should resume.
type Watch struct {
	hub    *Hub
	spec   Spec
	sc     scorer
	probe  ProbeFunc
	probes []probeRec

	ch     chan Event
	closed bool  // guarded by hub.mu
	err    error // guarded by hub.mu

	queued    uint64 // Σ epochs last enqueued, guarded by hub.mu
	delivered atomic.Uint64
}

// Events is the delivery channel. It closes when the watch ends.
func (w *Watch) Events() <-chan Event { return w.ch }

// Close unregisters the watch and closes its channel.
func (w *Watch) Close() {
	w.hub.mu.Lock()
	defer w.hub.mu.Unlock()
	w.hub.failLocked(w, nil)
}

// Err reports why the watch ended; nil while live or after a clean close.
func (w *Watch) Err() error {
	w.hub.mu.Lock()
	defer w.hub.mu.Unlock()
	return w.err
}

// SetDelivered records the consumer's progress as Σ of its per-shard
// delivered epoch vector, feeding the lag stat.
func (w *Watch) SetDelivered(sum uint64) {
	for {
		cur := w.delivered.Load()
		if sum <= cur || w.delivered.CompareAndSwap(cur, sum) {
			return
		}
	}
}

func (w *Watch) join() bool { return w.probes != nil }

// ---- canonical batch derivation ----

// deriveState walks one logical batch in canonical order (subs by shard
// ascending, records in batch position order) over a TID → text view,
// producing per-watch events. The same walk serves live delivery (view =
// the hub's live map, inserts probed through Select) and replay (a
// scratch view, everything scanned pairwise); both yield identical
// events by construction.
type deriveState struct {
	view      map[int]string
	batchAdds map[int]bool
	processed map[int]bool
	seq       uint64
}

func newDeriveState(view map[int]string, b Batch) *deriveState {
	adds := make(map[int]bool)
	for _, sub := range b.Subs {
		for _, r := range sub.Add {
			adds[r.TID] = true
		}
	}
	return &deriveState{view: view, batchAdds: adds, processed: make(map[int]bool), seq: b.Seq}
}

// applyOnly advances the view past a sub-batch without deriving events
// (replay of a window the client already saw).
func (st *deriveState) applyOnly(sub SubMutation) {
	for _, tid := range sub.Del {
		delete(st.view, tid)
	}
	for _, r := range sub.Add {
		st.view[r.TID] = r.Text
		st.processed[r.TID] = true
	}
}

// processSub derives events for one sub-batch and applies it to the
// view. Deletes retract the pairs the removed record participated in;
// upserts retract the old record's pairs, then both upserts and inserts
// assert the new record's matches. All watches scan each step against
// the same pre-step view before the view advances.
func (st *deriveState) processSub(sub SubMutation, watches []*Watch, live bool) (map[*Watch][]Event, map[*Watch]error) {
	out := make(map[*Watch][]Event, len(watches))
	var failed map[*Watch]error
	for _, tid := range sub.Del {
		old, ok := st.view[tid]
		if ok {
			for _, w := range watches {
				out[w] = append(out[w], st.retractStep(w, sub, tid, old)...)
			}
		}
		delete(st.view, tid)
	}
	for _, r := range sub.Add {
		if old, existed := st.view[r.TID]; existed {
			for _, w := range watches {
				out[w] = append(out[w], st.retractStep(w, sub, r.TID, old)...)
			}
		}
		for _, w := range watches {
			if failed[w] != nil {
				continue
			}
			evs, err := st.matchStep(w, sub, r, live)
			if err != nil {
				if failed == nil {
					failed = make(map[*Watch]error)
				}
				failed[w] = err
				continue
			}
			out[w] = append(out[w], evs...)
		}
		st.view[r.TID] = r.Text
		st.processed[r.TID] = true
	}
	return out, failed
}

// retractStep emits unmatch events for every pair the record's old text
// participated in. Partners already processed in this batch are skipped:
// their own match step ran against the post-step view, so no pair with
// this record's old text was ever asserted for them.
func (st *deriveState) retractStep(w *Watch, sub SubMutation, tid int, oldText string) []Event {
	oldP := w.sc.prep(oldText)
	var out []Event
	if w.join() {
		for _, pr := range w.probes {
			if s, ok := w.sc.score(pr.p, oldP); ok {
				out = append(out, Event{Kind: KindUnmatch, ProbeTID: pr.tid, BaseTID: tid, Score: s, Shard: sub.Shard, Epoch: sub.Epoch, Seq: st.seq})
			}
		}
		return out
	}
	for ptid, text := range st.view {
		if ptid == tid || st.processed[ptid] {
			continue
		}
		if s, ok := w.sc.score(oldP, w.sc.prep(text)); ok {
			out = append(out, Event{Kind: KindUnmatch, ProbeTID: tid, BaseTID: ptid, Score: s, Shard: sub.Shard, Epoch: sub.Epoch, Seq: st.seq})
		}
	}
	sortEvents(out)
	return out
}

// matchStep emits match events for the record's new text: against the
// fixed probe set for a join watch, against the corpus for a self watch —
// through the hot-path Select when live, through the pairwise scan during
// replay. Batch members not yet processed are excluded either way (their
// pairs with this record are asserted at their own, later step).
func (st *deriveState) matchStep(w *Watch, sub SubMutation, r core.Record, live bool) ([]Event, error) {
	var out []Event
	if w.join() {
		rp := w.sc.prep(r.Text)
		for _, pr := range w.probes {
			if s, ok := w.sc.score(pr.p, rp); ok {
				out = append(out, Event{Kind: KindMatch, ProbeTID: pr.tid, BaseTID: r.TID, Score: s, Shard: sub.Shard, Epoch: sub.Epoch, Seq: st.seq})
			}
		}
		return out, nil
	}
	if live {
		ms, err := w.probe(r.Text, w.spec.Theta)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			if m.TID == r.TID || (st.batchAdds[m.TID] && !st.processed[m.TID]) {
				continue
			}
			out = append(out, Event{Kind: KindMatch, ProbeTID: r.TID, BaseTID: m.TID, Score: m.Score, Shard: sub.Shard, Epoch: sub.Epoch, Seq: st.seq})
		}
		sortEvents(out)
		return out, nil
	}
	rp := w.sc.prep(r.Text)
	for ptid, text := range st.view {
		if ptid == r.TID || (st.batchAdds[ptid] && !st.processed[ptid]) {
			continue
		}
		if s, ok := w.sc.score(rp, w.sc.prep(text)); ok {
			out = append(out, Event{Kind: KindMatch, ProbeTID: r.TID, BaseTID: ptid, Score: s, Shard: sub.Shard, Epoch: sub.Epoch, Seq: st.seq})
		}
	}
	sortEvents(out)
	return out, nil
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].BaseTID != evs[j].BaseTID {
			return evs[i].BaseTID < evs[j].BaseTID
		}
		return evs[i].ProbeTID < evs[j].ProbeTID
	})
}
