package watch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/strutil"
	"repro/internal/tokenize"
)

// A watch promises that its incremental emissions are bit-identical to a
// from-scratch batch join at every epoch. That restricts the predicates it
// can serve: any similarity that reads collection statistics (IDF weights,
// average lengths, language models) changes the score of *existing* pairs
// whenever *any* record mutates, so an incremental evaluation that only
// touches the delta record can never stay exact. The watchable predicates
// are exactly the stats-free ones — Jaccard, IntersectSize and
// EditDistance — whose pair scores depend on the two strings alone.
//
// The pairwise scorer below re-derives those scores outside the posting
// machinery, for WAL replay and for retraction scans where the indexed
// corpus no longer holds the old text. It must mirror the hot path's
// observable behaviour exactly — same candidate reachability (a pair with
// no shared gram is never surfaced), same filters, same float operation
// order — so that a replayed window and a live window agree bit for bit.

// watchable lists the predicates a watch accepts, for error messages.
var watchable = []string{"Jaccard", "IntersectSize", "EditDistance"}

// prepped is one record's precomputed similarity inputs. Which fields are
// populated depends on the scorer that built it.
type prepped struct {
	set    map[string]struct{} // distinct padded q-grams (Jaccard, IntersectSize)
	norm   string              // edit-normalized text (EditDistance)
	nlen   int                 // rune length of norm
	counts map[string]int      // padded q-gram multiset (EditDistance)
	ngrams int                 // total padded q-grams (EditDistance)
}

// scorer scores one pair of prepared records exactly as the hot-path
// Select would. score returns the similarity and whether Select with
// Threshold θ would surface the pair at all (reachable and above θ).
type scorer interface {
	prep(text string) *prepped
	score(q, d *prepped) (float64, bool)
}

// newScorer validates a watch's predicate choice and builds its pairwise
// scorer. It enforces the delta-exactness whitelist and the configuration
// corners where even a whitelisted predicate loses exactness.
func newScorer(pred string, cfg core.Config, theta float64) (scorer, error) {
	if theta <= 0 {
		return nil, fmt.Errorf("watch: threshold must be positive, got %g (an unthresholded standing query would re-rank the whole corpus on every insert)", theta)
	}
	if cfg.PruneRate != 0 {
		return nil, fmt.Errorf("watch: corpus built with PruneRate=%g; watches require an unpruned index (pruning drops postings by collection frequency, which shifts with every mutation)", cfg.PruneRate)
	}
	switch pred {
	case "Jaccard":
		return &jaccardScorer{q: cfg.Q, theta: theta}, nil
	case "IntersectSize":
		return &intersectScorer{q: cfg.Q, theta: theta}, nil
	case "EditDistance":
		// The posting-driven Select only reaches candidates sharing at
		// least one q-gram with the query. Two strings within edit
		// distance k share a gram whenever k·q < max length, which a
		// threshold θ ≥ 1−1/q guarantees for every pair above θ; below
		// that, Select can miss pairs a from-scratch scan would score,
		// and the bit-identical contract breaks.
		min := 1 - 1/float64(cfg.Q)
		if theta < min {
			return nil, fmt.Errorf("watch: EditDistance watch needs threshold >= %g with q=%d (below it, pairs above the threshold can share no q-gram and the index cannot surface them)", min, cfg.Q)
		}
		return &editScorer{q: cfg.Q, theta: theta}, nil
	default:
		return nil, fmt.Errorf("watch: predicate %q is not incrementally exact (its scores read collection statistics that shift on every mutation); watchable predicates: %v", pred, watchable)
	}
}

// ---- Jaccard ----

type jaccardScorer struct {
	q     int
	theta float64
}

func (s *jaccardScorer) prep(text string) *prepped {
	p := &prepped{set: make(map[string]struct{})}
	for _, g := range tokenize.QGrams(text, s.q) {
		p.set[g] = struct{}{}
	}
	return p
}

func (s *jaccardScorer) score(q, d *prepped) (float64, bool) {
	small, large := q.set, d.set
	if len(large) < len(small) {
		small, large = large, small
	}
	inter := 0
	for g := range small {
		if _, ok := large[g]; ok {
			inter++
		}
	}
	if inter == 0 {
		return 0, false // no shared gram: Select never surfaces the pair
	}
	// Mirror the hot path's accumulator shape: den = Den[rec] + QSide − acc,
	// all exact small-integer floats, evaluated left to right.
	den := float64(len(d.set)) + float64(len(q.set)) - float64(inter)
	score := float64(inter) / den
	return score, score >= s.theta
}

// ---- IntersectSize ----

type intersectScorer struct {
	q     int
	theta float64
}

func (s *intersectScorer) prep(text string) *prepped {
	p := &prepped{set: make(map[string]struct{})}
	for _, g := range tokenize.QGrams(text, s.q) {
		p.set[g] = struct{}{}
	}
	return p
}

func (s *intersectScorer) score(q, d *prepped) (float64, bool) {
	small, large := q.set, d.set
	if len(large) < len(small) {
		small, large = large, small
	}
	inter := 0
	for g := range small {
		if _, ok := large[g]; ok {
			inter++
		}
	}
	if inter == 0 {
		return 0, false
	}
	score := float64(inter)
	return score, score >= s.theta
}

// ---- EditDistance ----

type editScorer struct {
	q     int
	theta float64
}

func (s *editScorer) prep(text string) *prepped {
	norm := tokenize.EditNormalize(text, s.q)
	counts := tokenize.Counts(tokenize.QGrams(text, s.q))
	total := 0
	for _, tf := range counts {
		total += tf
	}
	return &prepped{norm: norm, nlen: len([]rune(norm)), counts: counts, ngrams: total}
}

func (s *editScorer) score(q, d *prepped) (float64, bool) {
	// Multiset shared-gram count, as the TF-weighted posting scan
	// accumulates it: Σ min(qtf, dtf).
	c := 0
	for g, qtf := range q.counts {
		if dtf, ok := d.counts[g]; ok {
			if dtf < qtf {
				c += dtf
			} else {
				c += qtf
			}
		}
	}
	if c == 0 {
		return 0, false // unreachable through the posting lists
	}
	maxLen := q.nlen
	if d.nlen > maxLen {
		maxLen = d.nlen
	}
	if maxLen == 0 {
		return 1, true
	}
	k := int((1 - s.theta) * float64(maxLen))
	diff := q.nlen - d.nlen
	if diff < 0 {
		diff = -diff
	}
	if diff > k {
		return 0, false // length filter
	}
	maxG := q.ngrams
	if d.ngrams > maxG {
		maxG = d.ngrams
	}
	if c < maxG-k*s.q {
		return 0, false // count filter
	}
	dist, ok := strutil.LevenshteinWithin(q.norm, d.norm, k)
	if !ok {
		return 0, false
	}
	sim := 1 - float64(dist)/float64(maxLen)
	return sim, sim >= s.theta
}
