package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/native"
)

// This file implements the hot-path benchmark of the selection engine: the
// pre-optimization merge (per-query map accumulators, no pruning — the
// NaiveSelect reference path) against the dense score-at-a-time path with
// max-score early termination, per predicate, over the 5k-record zipf mix
// of the serving benchmark. The machine-readable result is
// BENCH_hotpath.json, the fourth committed artifact next to
// BENCH_preprocess/select/serve.json.

// HotPathOptions configure one hot-path benchmark run; zero fields select
// the committed-artifact scenario (5000 records, Limit 10, zipf 1.3).
type HotPathOptions struct {
	// Records is the relation size (default 5000).
	Records int
	// Distinct is the number of distinct queries in the mix (default 100).
	Distinct int
	// Queries is the number of timed queries per predicate (default 40).
	Queries int
	// HeavyQueries bounds the timed queries of the verification-heavy
	// predicates (GES class, SoftTFIDF, EditDistance), whose per-query
	// cost dwarfs the merge (default max(3, Queries/5)).
	HeavyQueries int
	// Limit is the pushed-down top-k (default 10).
	Limit int
	// ZipfS is the zipf skew of the query mix (default 1.3).
	ZipfS float64
	// Seed drives data generation and the query draw.
	Seed int64
	// Config holds predicate parameters.
	Config core.Config
}

func (o HotPathOptions) withDefaults() HotPathOptions {
	if o.Records <= 0 {
		o.Records = 5000
	}
	if o.Distinct <= 0 {
		o.Distinct = 100
	}
	if o.Queries <= 0 {
		o.Queries = 40
	}
	if o.HeavyQueries <= 0 {
		o.HeavyQueries = o.Queries / 5
		if o.HeavyQueries < 3 {
			o.HeavyQueries = 3
		}
	}
	if o.Limit <= 0 {
		o.Limit = 10
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Config == (core.Config{}) {
		o.Config = core.DefaultConfig()
	}
	return o
}

// heavyPredicates are dominated by per-candidate verification (dynamic
// programs), not the inverted-list merge this benchmark targets.
var heavyPredicates = map[string]bool{
	"EditDistance": true,
	"GES":          true,
	"GESJaccard":   true,
	"GESapx":       true,
	"SoftTFIDF":    true,
}

// predicateClass labels each predicate with its paper class.
func predicateClass(name string) string {
	switch name {
	case "IntersectSize", "Jaccard", "WeightedMatch", "WeightedJaccard":
		return "overlap"
	case "Cosine", "BM25":
		return "aggregate"
	case "LM", "HMM":
		return "langmodel"
	case "EditDistance":
		return "edit"
	default:
		return "combination"
	}
}

// HotPathEntry is one predicate's old-vs-new measurement.
type HotPathEntry struct {
	Predicate string `json:"predicate"`
	Class     string `json:"class"`
	Queries   int    `json:"queries"`
	// NaiveNSPerQuery times the map-accumulator reference merge;
	// OptimizedNSPerQuery the dense pruned hot path. Both paths return
	// bit-identical results (the run verifies a sample).
	NaiveNSPerQuery     int64   `json:"naive_ns_per_query"`
	OptimizedNSPerQuery int64   `json:"optimized_ns_per_query"`
	Speedup             float64 `json:"speedup"`
	// Allocations per query on each path, from runtime.MemStats deltas.
	NaiveAllocsPerQuery     float64 `json:"naive_allocs_per_query"`
	OptimizedAllocsPerQuery float64 `json:"optimized_allocs_per_query"`
	// Pruning counters of the optimized pass (engine-backed predicates
	// only; the verification-heavy class reports zeros).
	Pruning core.HotPathStats `json:"pruning"`
}

// HotPathReport is the full machine-readable hot-path benchmark result.
type HotPathReport struct {
	Records  int            `json:"records"`
	Distinct int            `json:"distinct_queries"`
	ZipfS    float64        `json:"zipf_s"`
	Limit    int            `json:"limit"`
	Seed     int64          `json:"seed"`
	Entries  []HotPathEntry `json:"entries"`
	// Pruning aggregates the optimized-pass counters across predicates,
	// and PruneRate is its skipped-list fraction.
	Pruning   core.HotPathStats `json:"pruning"`
	PruneRate float64           `json:"prune_rate"`
	// AggregateWeightedSpeedup is the minimum speedup over the
	// aggregate-weighted class (Cosine, BM25, LM) — the acceptance gate.
	AggregateWeightedSpeedup float64 `json:"aggregate_weighted_speedup"`
	// DifferentialOK records that the two paths returned identical
	// rankings on the verified sample.
	DifferentialOK bool `json:"differential_ok"`
}

// RunHotPath executes the hot-path benchmark.
func RunHotPath(o HotPathOptions) (HotPathReport, error) {
	o = o.withDefaults()
	r := HotPathReport{
		Records:  o.Records,
		Distinct: o.Distinct,
		ZipfS:    o.ZipfS,
		Limit:    o.Limit,
		Seed:     o.Seed,
	}
	ds, err := dblpDataset(o.Records, o.Seed)
	if err != nil {
		return r, err
	}
	// The zipf-skewed query mix of the serving benchmark: distinct record
	// texts drawn with skew, so hot queries repeat like production traffic.
	rng := rand.New(rand.NewSource(o.Seed + 29))
	perm := rng.Perm(len(ds.Records))
	distinct := o.Distinct
	if distinct > len(ds.Records) {
		distinct = len(ds.Records)
	}
	r.Distinct = distinct
	queries := make([]string, distinct)
	for i := range queries {
		queries[i] = ds.Records[perm[i]].Text
	}
	zrng := rand.New(rand.NewSource(o.Seed + 17))
	zipf := rand.NewZipf(zrng, o.ZipfS, 1, uint64(distinct-1))
	seq := make([]int, o.Queries)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}

	corpus, err := core.NewCorpus(ds.Records, o.Config, core.AllLayers)
	if err != nil {
		return r, err
	}
	opts := core.SelectOptions{Limit: o.Limit}
	ctx := context.Background()
	r.DifferentialOK = true
	minAgg := 0.0
	for _, name := range core.PredicateNames {
		p, err := native.Attach(name, corpus, o.Config)
		if err != nil {
			return r, err
		}
		cp := p.(core.ContextPredicate)
		qn := o.Queries
		if heavyPredicates[name] && qn > o.HeavyQueries {
			qn = o.HeavyQueries
		}
		e := HotPathEntry{Predicate: name, Class: predicateClass(name), Queries: qn}

		// Differential spot-check: both paths must return the identical
		// ranking for the first queries of the mix.
		for i := 0; i < qn && i < 3; i++ {
			want, err := native.NaiveSelect(p, queries[seq[i]], opts)
			if err != nil {
				return r, err
			}
			got, err := cp.SelectCtx(ctx, queries[seq[i]], opts)
			if err != nil {
				return r, err
			}
			if len(want) != len(got) {
				r.DifferentialOK = false
			} else {
				for j := range want {
					if want[j] != got[j] {
						r.DifferentialOK = false
						break
					}
				}
			}
		}

		naiveNS, naiveAllocs, err := timeHotPath(qn, func(i int) error {
			_, err := native.NaiveSelect(p, queries[seq[i]], opts)
			return err
		})
		if err != nil {
			return r, err
		}
		before := core.HotPathSnapshot()
		optNS, optAllocs, err := timeHotPath(qn, func(i int) error {
			_, err := cp.SelectCtx(ctx, queries[seq[i]], opts)
			return err
		})
		if err != nil {
			return r, err
		}
		e.Pruning = core.HotPathSnapshot().Sub(before)
		e.NaiveNSPerQuery = naiveNS
		e.OptimizedNSPerQuery = optNS
		e.NaiveAllocsPerQuery = naiveAllocs
		e.OptimizedAllocsPerQuery = optAllocs
		if optNS > 0 {
			e.Speedup = float64(naiveNS) / float64(optNS)
		}
		r.Entries = append(r.Entries, e)
		r.Pruning.Queries += e.Pruning.Queries
		r.Pruning.PrunedQueries += e.Pruning.PrunedQueries
		r.Pruning.Lists += e.Pruning.Lists
		r.Pruning.ListsSkipped += e.Pruning.ListsSkipped
		r.Pruning.ListsUpdateOnly += e.Pruning.ListsUpdateOnly
		r.Pruning.PostingsSkipped += e.Pruning.PostingsSkipped
		if name == "Cosine" || name == "BM25" || name == "LM" {
			if minAgg == 0 || e.Speedup < minAgg {
				minAgg = e.Speedup
			}
		}
	}
	r.PruneRate = r.Pruning.PruneRate()
	r.AggregateWeightedSpeedup = minAgg
	return r, nil
}

// timeHotPath runs fn over qn queries (after a short warmup) and reports
// ns/query and allocations/query.
func timeHotPath(qn int, fn func(i int) error) (int64, float64, error) {
	for i := 0; i < qn && i < 2; i++ {
		if err := fn(i); err != nil {
			return 0, 0, err
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < qn; i++ {
		if err := fn(i); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed.Nanoseconds() / int64(qn), float64(m1.Mallocs-m0.Mallocs) / float64(qn), nil
}

// WriteJSON writes the report as BENCH_hotpath.json in dir.
func (r HotPathReport) WriteJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "BENCH_hotpath.json"), r)
}

// Print writes a human-readable summary of the hot-path benchmark.
func (r HotPathReport) Print(w io.Writer) {
	t := &table{header: []string{"predicate", "class", "naive/q", "optimized/q", "speedup", "allocs naive→opt", "lists skipped"}}
	for _, e := range r.Entries {
		t.add(e.Predicate, e.Class,
			time.Duration(e.NaiveNSPerQuery).Round(time.Microsecond).String(),
			time.Duration(e.OptimizedNSPerQuery).Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", e.Speedup),
			fmt.Sprintf("%.0f→%.0f", e.NaiveAllocsPerQuery, e.OptimizedAllocsPerQuery),
			fmt.Sprintf("%d/%d", e.Pruning.ListsSkipped, e.Pruning.Lists))
	}
	t.write(w, fmt.Sprintf("Hot path — %d records, limit %d, zipf %.1f (prune rate %.1f%%, aggregate-weighted speedup %.1fx, differential ok=%v)",
		r.Records, r.Limit, r.ZipfS, 100*r.PruneRate, r.AggregateWeightedSpeedup, r.DifferentialOK))
}
