package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/watch"
)

// This file implements the standing-query benchmark of approxwatch: the
// per-insert cost of incremental delta evaluation (the watch hub deriving
// match events for just the mutated record) against the naive design that
// re-runs the batch self-join after every mutation. The machine-readable
// result is BENCH_watch.json, the sixth committed artifact. The acceptance
// bar: delta evaluation ≥ 10x cheaper per insert than a from-scratch
// re-join on the 5k-record corpus, with the fold of the emitted events
// bit-identical to that re-join.
//
// The wiring mirrors the facade's OpenCorpus + RegisterWatch composition
// on the internal packages directly: the facade cannot be imported here
// because the root package's benchmarks import this package.

// WatchOptions configure one watch benchmark run; zero fields select the
// committed-artifact scenario (5000 records, 100 streamed inserts,
// Jaccard at 0.6).
type WatchOptions struct {
	// Records is the seeded relation size (default 5000).
	Records int
	// Inserts is how many single-record mutations stream through the watch
	// (default 100).
	Inserts int
	// Theta is the watch's match threshold (default 0.6, Jaccard).
	Theta float64
	// Seed drives data generation and the insert draw.
	Seed int64
}

func (o WatchOptions) withDefaults() WatchOptions {
	if o.Records <= 0 {
		o.Records = 5000
	}
	if o.Inserts <= 0 {
		o.Inserts = 100
	}
	if o.Theta <= 0 {
		o.Theta = 0.6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// WatchReport is the full machine-readable watch benchmark result.
type WatchReport struct {
	Records int     `json:"records"`
	Inserts int     `json:"inserts"`
	Theta   float64 `json:"theta"`
	Seed    int64   `json:"seed"`
	// InsertNS is the average wall-clock cost of one insert on the watched
	// corpus — tokenization, publication and delta evaluation together.
	InsertNS int64 `json:"insert_ns"`
	// DeltaEvalNS is the average event-derivation cost one insert paid
	// inside the watch hub (the hot-path probe of just the delta record) —
	// the incremental price of keeping the standing query current.
	DeltaEvalNS int64 `json:"delta_eval_ns"`
	// RejoinNS is one from-scratch batch self-join at the final corpus
	// state — what the naive design pays per mutation instead.
	RejoinNS int64 `json:"rejoin_ns"`
	// EventsEmitted counts the match events the watch delivered.
	EventsEmitted uint64 `json:"events_emitted"`
	// EventsPerSec is delivery throughput against the derivation time.
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is RejoinNS / DeltaEvalNS — the acceptance gate (≥ 10x).
	Speedup float64 `json:"speedup"`
	// DifferentialOK records that folding the watch's emissions onto the
	// registration-time join reproduced the final batch join bit for bit.
	DifferentialOK bool `json:"differential_ok"`
}

// RunWatch executes the watch benchmark.
func RunWatch(o WatchOptions) (WatchReport, error) {
	o = o.withDefaults()
	r := WatchReport{Records: o.Records, Inserts: o.Inserts, Theta: o.Theta, Seed: o.Seed}
	ds, err := dblpDataset(o.Records, o.Seed)
	if err != nil {
		return r, err
	}
	cfg := core.DefaultConfig()
	c, err := core.NewCorpus(ds.Records, cfg, core.AllLayers)
	if err != nil {
		return r, err
	}
	hub := watch.NewHub(cfg, 1, ds.Records, []uint64{c.Epoch()}, nil)
	c.AddMutationObserver(func(m core.Mutation) {
		hub.OnBatch(watch.Batch{Seq: m.Seq, Subs: []watch.SubMutation{
			{Shard: 0, Kind: m.Kind, Add: m.Add, Del: m.Del, Epoch: m.Epoch},
		}})
	})

	// The fold starts from the batch join at registration time.
	fold, err := watchSelfJoin(ds.Records, o.Theta, cfg)
	if err != nil {
		return r, err
	}
	// The probe re-attaches when the corpus moves, the way the facade's
	// epoch-refreshing predicate view does — a pinned snapshot view would
	// never see earlier streamed inserts. Probe calls are serialized under
	// the hub lock, so the plain fields are safe.
	var (
		pred      core.Predicate
		predEpoch uint64
	)
	w, err := hub.Register(
		watch.Spec{Predicate: "Jaccard", Theta: o.Theta, Resume: hub.Epochs(), Buffer: 1 << 16},
		func(query string, theta float64) ([]core.Match, error) {
			if e := c.Epoch(); pred == nil || predEpoch != e {
				p, err := native.Attach("Jaccard", c, cfg)
				if err != nil {
					return nil, err
				}
				pred, predEpoch = p, e
			}
			return core.SelectWithOptions(context.Background(), pred, query,
				core.SelectOptions{Threshold: theta, HasThreshold: true})
		})
	if err != nil {
		return r, err
	}
	defer w.Close()

	// Stream single-record inserts (copies of existing titles, so events
	// actually fire) and time the mutation side.
	rng := rand.New(rand.NewSource(o.Seed + 23))
	start := time.Now()
	for i := 0; i < o.Inserts; i++ {
		rec := core.Record{TID: 1_000_000 + i, Text: ds.Records[rng.Intn(len(ds.Records))].Text}
		if err := c.Insert(rec); err != nil {
			return r, err
		}
	}
	insertTotal := time.Since(start).Nanoseconds()
	st := hub.Stats()
	r.InsertNS = insertTotal / int64(o.Inserts)
	r.DeltaEvalNS = st.DeriveNS / int64(o.Inserts)
	r.EventsEmitted = st.Emitted
	if st.DeriveNS > 0 {
		r.EventsPerSec = float64(st.Emitted) / (float64(st.DeriveNS) / 1e9)
	}

	// The naive alternative: one from-scratch self-join at the final state,
	// per mutation. Timing it once also produces the differential truth.
	final := c.Records()
	start = time.Now()
	want, err := watchSelfJoin(final, o.Theta, cfg)
	if err != nil {
		return r, err
	}
	r.RejoinNS = time.Since(start).Nanoseconds()
	if r.DeltaEvalNS > 0 {
		r.Speedup = float64(r.RejoinNS) / float64(r.DeltaEvalNS)
	}

	if err := watchFold(fold, drainEvents(w)); err != nil {
		return r, err
	}
	r.DifferentialOK = watchFoldsEqual(fold, want)
	return r, nil
}

// watchSelfJoin is the batch truth: a fresh one-shot Jaccard predicate
// self-joined at theta through the parallel probe pool, keyed by unordered
// pair with self pairs dropped — the same result the facade's SelfJoin
// produces.
func watchSelfJoin(recs []core.Record, theta float64, cfg core.Config) (map[[2]int]float64, error) {
	out := make(map[[2]int]float64)
	if len(recs) == 0 {
		return out, nil
	}
	p, err := native.Build("Jaccard", recs, cfg)
	if err != nil {
		return nil, err
	}
	opts := core.SelectOptions{Threshold: theta, HasThreshold: true}
	res := make([][]core.Match, len(recs))
	if _, err := core.RunJobs(context.Background(), len(recs), runtime.GOMAXPROCS(0), func(i int) error {
		ms, err := core.SelectWithOptions(context.Background(), p, recs[i].Text, opts)
		res[i] = ms
		return err
	}); err != nil {
		return nil, err
	}
	for i, ms := range res {
		for _, m := range ms {
			if m.TID == recs[i].TID {
				continue
			}
			k := [2]int{recs[i].TID, m.TID}
			if k[0] > k[1] {
				k[0], k[1] = k[1], k[0]
			}
			out[k] = m.Score
		}
	}
	return out, nil
}

func drainEvents(w *watch.Watch) []watch.Event {
	var out []watch.Event
	for {
		select {
		case e, ok := <-w.Events():
			if !ok {
				return out
			}
			out = append(out, e)
		default:
			return out
		}
	}
}

// watchFold applies events to the incremental join result under the
// stream's invariants (assert once, retract with the asserted score).
func watchFold(fold map[[2]int]float64, evs []watch.Event) error {
	for _, e := range evs {
		k := [2]int{e.ProbeTID, e.BaseTID}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		switch e.Kind {
		case watch.KindMatch:
			if _, dup := fold[k]; dup {
				return fmt.Errorf("experiments: pair %v asserted twice", k)
			}
			fold[k] = e.Score
		case watch.KindUnmatch:
			if s, ok := fold[k]; !ok || s != e.Score {
				return fmt.Errorf("experiments: pair %v retracted inconsistently", k)
			}
			delete(fold, k)
		}
	}
	return nil
}

func watchFoldsEqual(a, b map[[2]int]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, s := range a {
		if t, ok := b[k]; !ok || t != s {
			return false
		}
	}
	return true
}

// WriteJSON writes the report as BENCH_watch.json in dir.
func (r WatchReport) WriteJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "BENCH_watch.json"), r)
}

// Print writes a human-readable summary of the watch benchmark.
func (r WatchReport) Print(w io.Writer) {
	t := &table{header: []string{"path", "per mutation", "vs re-join"}}
	t.add("batch re-join", time.Duration(r.RejoinNS).Round(time.Microsecond).String(), "1.0x")
	t.add("incremental delta eval", time.Duration(r.DeltaEvalNS).Round(time.Microsecond).String(),
		fmt.Sprintf("%.0fx cheaper", r.Speedup))
	t.add("full insert incl. delta eval", time.Duration(r.InsertNS).Round(time.Microsecond).String(),
		fmt.Sprintf("%.0fx cheaper", safeRatio(r.RejoinNS, r.InsertNS)))
	t.write(w, fmt.Sprintf("Standing queries — %d records, %d streamed inserts, Jaccard >= %.2f: %d events at %.0f events/s (differential ok=%v)",
		r.Records, r.Inserts, r.Theta, r.EventsEmitted, r.EventsPerSec, r.DifferentialOK))
}
