package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/declarative"
	"repro/internal/native"
)

// This file implements the machine-readable benchmark mode of approxbench:
// one preprocess and one select timing record per (predicate, realization),
// written as BENCH_preprocess.json and BENCH_select.json so CI runs can
// record the performance trajectory across commits.

// BenchPreprocessEntry is one preprocessing measurement.
type BenchPreprocessEntry struct {
	Predicate   string `json:"predicate"`
	Realization string `json:"realization"`
	// TokenizeNS and WeightsNS are the §5.5.1 phases as reported by the
	// predicate; for corpus-attached natives the tokenize phase is the
	// shared corpus pass.
	TokenizeNS int64 `json:"tokenize_ns"`
	WeightsNS  int64 `json:"weights_ns"`
	// BuildNS is the wall-clock cost of this predicate's construction call
	// (for shared-corpus natives: the attach alone).
	BuildNS int64 `json:"build_ns"`
}

// BenchSelectEntry is one selection-latency measurement.
type BenchSelectEntry struct {
	Predicate   string `json:"predicate"`
	Realization string `json:"realization"`
	AvgSelectNS int64  `json:"avg_select_ns"`
	Queries     int    `json:"queries"`
}

// BenchReport is the full machine-readable benchmark result.
type BenchReport struct {
	Records int   `json:"records"`
	Queries int   `json:"queries"`
	Seed    int64 `json:"seed"`
	// SharedCorpusNS is the wall-clock cost of the single shared
	// tokenization/statistics pass all native predicates attach to.
	SharedCorpusNS int64                  `json:"shared_corpus_ns"`
	Preprocess     []BenchPreprocessEntry `json:"preprocess"`
	Select         []BenchSelectEntry     `json:"select"`
}

// RunBench times preprocessing and selection for every benchmark predicate
// under the requested realization ("native", "declarative" or "both").
// Native predicates are built through one shared corpus, so the report
// separates the shared pass (SharedCorpusNS) from the per-predicate attach
// cost (BuildNS).
func RunBench(o PerfOptions) (BenchReport, error) {
	r := BenchReport{Records: o.Size, Queries: o.Queries, Seed: o.Seed}
	ds, err := dblpDataset(o.Size, o.Seed)
	if err != nil {
		return r, err
	}
	texts, _ := sampleQueries(ds, o.Queries, o.Seed+5)
	r.Queries = len(texts)

	impls := []string{o.Impl}
	if o.Impl == "both" {
		impls = []string{"native", "declarative"}
	}
	for _, impl := range impls {
		var corpus *core.Corpus
		if impl == "native" {
			t0 := time.Now()
			corpus, err = core.NewCorpus(ds.Records, o.Config, core.AllLayers)
			if err != nil {
				return r, err
			}
			r.SharedCorpusNS = time.Since(t0).Nanoseconds()
		}
		for _, name := range core.PredicateNames {
			t0 := time.Now()
			var p core.Predicate
			if corpus != nil {
				p, err = native.Attach(name, corpus, o.Config)
			} else {
				p, err = declarative.Build(name, ds.Records, o.Config)
			}
			if err != nil {
				return r, fmt.Errorf("bench %s/%s: %w", impl, name, err)
			}
			buildNS := time.Since(t0).Nanoseconds()
			pre := BenchPreprocessEntry{Predicate: name, Realization: impl, BuildNS: buildNS}
			if ph, ok := p.(core.Phased); ok {
				tok, w := ph.PreprocessPhases()
				pre.TokenizeNS = tok.Nanoseconds()
				pre.WeightsNS = w.Nanoseconds()
			}
			r.Preprocess = append(r.Preprocess, pre)

			d, err := timeQueries(p, texts)
			if err != nil {
				return r, fmt.Errorf("bench %s/%s: %w", impl, name, err)
			}
			r.Select = append(r.Select, BenchSelectEntry{
				Predicate:   name,
				Realization: impl,
				AvgSelectNS: d.Nanoseconds(),
				Queries:     len(texts),
			})
		}
	}
	return r, nil
}

// WriteJSONFiles writes the report as BENCH_preprocess.json and
// BENCH_select.json in dir (created if missing).
func (r BenchReport) WriteJSONFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	type preFile struct {
		Records        int                    `json:"records"`
		Seed           int64                  `json:"seed"`
		SharedCorpusNS int64                  `json:"shared_corpus_ns"`
		Entries        []BenchPreprocessEntry `json:"entries"`
	}
	type selFile struct {
		Records int                `json:"records"`
		Queries int                `json:"queries"`
		Seed    int64              `json:"seed"`
		Entries []BenchSelectEntry `json:"entries"`
	}
	if err := writeJSON(filepath.Join(dir, "BENCH_preprocess.json"), preFile{
		Records: r.Records, Seed: r.Seed, SharedCorpusNS: r.SharedCorpusNS, Entries: r.Preprocess,
	}); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "BENCH_select.json"), selFile{
		Records: r.Records, Queries: r.Queries, Seed: r.Seed, Entries: r.Select,
	})
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Print writes a human-readable summary of the benchmark report.
func (r BenchReport) Print(w io.Writer) {
	t := &table{header: []string{"predicate", "realization", "build", "avg select"}}
	sel := make(map[string]time.Duration, len(r.Select))
	for _, e := range r.Select {
		sel[e.Realization+"/"+e.Predicate] = time.Duration(e.AvgSelectNS)
	}
	for _, e := range r.Preprocess {
		t.add(e.Predicate, e.Realization,
			time.Duration(e.BuildNS).Round(time.Microsecond).String(),
			sel[e.Realization+"/"+e.Predicate].Round(time.Microsecond).String())
	}
	t.write(w, fmt.Sprintf("Benchmark — %d records, %d queries (shared native corpus pass: %s)",
		r.Records, r.Queries, time.Duration(r.SharedCorpusNS).Round(time.Microsecond)))
}
