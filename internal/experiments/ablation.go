package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/declarative"
	"repro/internal/dirty"
	"repro/internal/native"
)

// Ablation experiments for the design choices DESIGN.md calls out. These go
// beyond the paper's tables but quantify claims it makes in prose.

// MinHashKResult sweeps the GESapx signature size. §5.4.1: "A small number
// of min hash signatures results in significant accuracy loss" while
// "increasing the number ... takes more time without having a significant
// impact on accuracy".
type MinHashKResult struct {
	Ks         []int
	MAP        []float64
	Preprocess []time.Duration
	GESJaccard float64 // the K→∞ reference: exact Jaccard filtering
}

// AblationMinHashK measures GESapx accuracy and preprocessing cost as the
// signature size grows, on the CU1 dataset.
func AblationMinHashK(o Options) (MinHashKResult, error) {
	r := MinHashKResult{Ks: []int{1, 2, 5, 10, 20}}
	spec := specsByName(o, "CU1")[0]
	ds, err := buildDataset(spec, o)
	if err != nil {
		return r, err
	}
	texts, relevant := sampleQueries(ds, o.Queries, o.Seed+spec.P.Seed)

	jac, err := native.Build("GESJaccard", ds.Records, o.Config)
	if err != nil {
		return r, err
	}
	s, err := measureAccuracy(jac, texts, relevant)
	if err != nil {
		return r, err
	}
	r.GESJaccard = s.MAP

	for _, k := range r.Ks {
		cfg := o.Config
		cfg.MinHashK = k
		start := time.Now()
		p, err := native.Build("GESapx", ds.Records, cfg)
		if err != nil {
			return r, err
		}
		r.Preprocess = append(r.Preprocess, time.Since(start))
		s, err := measureAccuracy(p, texts, relevant)
		if err != nil {
			return r, err
		}
		r.MAP = append(r.MAP, s.MAP)
	}
	return r, nil
}

// Print writes the min-hash ablation table.
func (r MinHashKResult) Print(w io.Writer) {
	t := &table{header: []string{"K", "MAP", "preprocess"}}
	for i, k := range r.Ks {
		t.add(fmt.Sprint(k), f3(r.MAP[i]), r.Preprocess[i].Round(time.Millisecond).String())
	}
	t.add("GESJaccard (exact)", f3(r.GESJaccard), "")
	t.write(w, "Ablation — GESapx min-hash signature size on CU1 (§5.4.1: small K loses accuracy, large K only costs time)")
}

// ImplOverheadResult compares the declarative (SQL) realization with the
// native one: the cost of declarativity the paper's introduction frames as
// the price of ease of deployment.
type ImplOverheadResult struct {
	Predicates  []string
	Native      []time.Duration
	Declarative []time.Duration
	Size        int
}

// AblationImplOverhead times both realizations on identical workloads.
func AblationImplOverhead(o PerfOptions) (ImplOverheadResult, error) {
	names := []string{"IntersectSize", "Jaccard", "Cosine", "BM25", "HMM", "LM"}
	r := ImplOverheadResult{Predicates: names, Size: o.Size}
	ds, err := dblpDataset(o.Size, o.Seed)
	if err != nil {
		return r, err
	}
	texts, _ := sampleQueries(ds, o.Queries, o.Seed+3)
	src, err := newPredicateSource("native", ds.Records, o.Config)
	if err != nil {
		return r, err
	}
	for _, name := range names {
		np, err := src.build(name, o.Config)
		if err != nil {
			return r, err
		}
		nd, err := timeQueries(np, texts)
		if err != nil {
			return r, err
		}
		r.Native = append(r.Native, nd)

		dp, err := declarative.Build(name, ds.Records, o.Config)
		if err != nil {
			return r, err
		}
		dd, err := timeQueries(dp, texts)
		if err != nil {
			return r, err
		}
		r.Declarative = append(r.Declarative, dd)
	}
	return r, nil
}

// Print writes the realization-overhead table.
func (r ImplOverheadResult) Print(w io.Writer) {
	t := &table{header: []string{"predicate", "native", "declarative", "ratio"}}
	for i, name := range r.Predicates {
		ratio := float64(r.Declarative[i]) / float64(maxDuration(r.Native[i], 1))
		t.add(name, r.Native[i].Round(time.Microsecond).String(),
			r.Declarative[i].Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", ratio))
	}
	t.write(w, fmt.Sprintf("Ablation — query time: declarative (SQL) vs native realization, %d records", r.Size))
}

func maxDuration(d time.Duration, floor time.Duration) time.Duration {
	if d > floor {
		return d
	}
	return floor
}

// QSweepResult extends the §5.3.3 study to a wider q range, an extension
// the paper hints at ("the accuracy further drops for higher values of q").
type QSweepResult struct {
	Qs         []int
	Predicates []string
	MAP        [][]float64
}

// AblationQSweep measures MAP for q ∈ {1,2,3,4} on the dirty class.
func AblationQSweep(o Options) (QSweepResult, error) {
	r := QSweepResult{Qs: []int{1, 2, 3, 4}, Predicates: []string{"Jaccard", "Cosine", "HMM", "BM25"}}
	specs := specsByName(o, "CU1", "CU2")
	for _, q := range r.Qs {
		opt := o
		opt.Config.Q = q
		sums := make([]float64, len(r.Predicates))
		for _, spec := range specs {
			res, err := datasetAccuracy(spec, r.Predicates, opt)
			if err != nil {
				return r, err
			}
			for i, name := range r.Predicates {
				sums[i] += res[name].MAP
			}
		}
		row := make([]float64, len(sums))
		for i := range sums {
			row[i] = sums[i] / float64(len(specs))
		}
		r.MAP = append(r.MAP, row)
	}
	return r, nil
}

// Print writes the q sweep table.
func (r QSweepResult) Print(w io.Writer) {
	t := &table{header: append([]string{"q"}, r.Predicates...)}
	for i, q := range r.Qs {
		row := []string{fmt.Sprint(q)}
		for _, v := range r.MAP[i] {
			row = append(row, f3(v))
		}
		t.add(row...)
	}
	t.write(w, "Ablation — MAP vs q over {1,2,3,4} on the dirty class (paper: accuracy drops beyond q=2)")
}

// DistributionResult checks §5.1's claim that the accuracy trend is stable
// across duplicate distributions: the same error configuration is generated
// with uniform, Zipfian and Poisson duplicate allocation.
type DistributionResult struct {
	Distributions []string
	Predicates    []string
	MAP           [][]float64 // [distIndex][predIndex]
}

// AblationDistributions measures MAP under each duplicate distribution.
func AblationDistributions(o Options) (DistributionResult, error) {
	r := DistributionResult{
		Distributions: []string{"uniform", "zipfian", "poisson"},
		Predicates:    []string{"Jaccard", "BM25", "HMM", "SoftTFIDF"},
	}
	dists := []dirty.Distribution{dirty.Uniform, dirty.Zipfian, dirty.Poisson}
	for di, dist := range dists {
		spec := specsByName(o, "CU5")[0]
		spec.P.Dist = dist
		spec.P.Seed += int64(1000 * (di + 1))
		res, err := datasetAccuracy(spec, r.Predicates, o)
		if err != nil {
			return r, err
		}
		row := make([]float64, len(r.Predicates))
		for i, name := range r.Predicates {
			row[i] = res[name].MAP
		}
		r.MAP = append(r.MAP, row)
	}
	return r, nil
}

// Print writes the distribution ablation table.
func (r DistributionResult) Print(w io.Writer) {
	t := &table{header: append([]string{"distribution"}, r.Predicates...)}
	for i, d := range r.Distributions {
		row := []string{d}
		for _, v := range r.MAP[i] {
			row = append(row, f3(v))
		}
		t.add(row...)
	}
	t.write(w, "Ablation — MAP per duplicate distribution on the CU5 configuration (§5.1: trends are distribution-stable)")
}
