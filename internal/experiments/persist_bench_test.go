package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

// BenchmarkSnapshotLoad times the cold-start restore path at the committed
// artifact's scale; pair with -cpuprofile to find decode hot spots.
func BenchmarkSnapshotLoad(b *testing.B) {
	ds, err := dblpDataset(5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := core.NewCorpus(ds.Records, core.DefaultConfig(), core.AllLayers)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := store.Save(dir, c); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := store.Load(dir); err != nil {
			b.Fatal(err)
		}
	}
}
