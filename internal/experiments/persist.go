package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/store"
)

// This file implements the persistence benchmark of approxstore: a cold
// build of the fully-layered corpus (one tokenization/statistics pass plus
// every derived table) against restoring the same corpus from a binary
// snapshot segment, and against a restore that additionally replays a
// write-ahead log tail. The machine-readable result is BENCH_persist.json,
// the fifth committed artifact next to BENCH_preprocess/select/serve/
// hotpath.json. The acceptance bar: snapshot load ≥ 5x faster than the
// cold build on the 5k-record zipf corpus.

// PersistOptions configure one persistence benchmark run; zero fields
// select the committed-artifact scenario (5000 records, 3 timed loads, 20
// replayed WAL entries).
type PersistOptions struct {
	// Records is the relation size (default 5000).
	Records int
	// Loads is how many timed snapshot loads to average (default 3).
	Loads int
	// WALEntries is the size of the mutation tail replayed by the
	// crash-recovery measurement (default 20).
	WALEntries int
	// ZipfS is the zipf skew of the differential query sample (default 1.3,
	// the serving benchmark's mix).
	ZipfS float64
	// Seed drives data generation and the query draw.
	Seed int64
	// Config holds predicate parameters.
	Config core.Config
}

func (o PersistOptions) withDefaults() PersistOptions {
	if o.Records <= 0 {
		o.Records = 5000
	}
	if o.Loads <= 0 {
		o.Loads = 3
	}
	if o.WALEntries <= 0 {
		o.WALEntries = 20
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Config == (core.Config{}) {
		o.Config = core.DefaultConfig()
	}
	return o
}

// PersistReport is the full machine-readable persistence benchmark result.
type PersistReport struct {
	Records int   `json:"records"`
	Seed    int64 `json:"seed"`
	// ColdBuildNS is the wall-clock cost of building the fully-layered
	// corpus from raw records — what every process start pays without a
	// store.
	ColdBuildNS int64 `json:"cold_build_ns"`
	// SnapshotLoadNS is the average wall-clock cost of restoring the corpus
	// from its snapshot segment (file read + decode, empty WAL).
	SnapshotLoadNS int64 `json:"snapshot_load_ns"`
	// ReplayLoadNS restores from the same segment plus a WALEntries-deep
	// mutation tail — the crash-recovery path.
	ReplayLoadNS int64 `json:"replay_load_ns"`
	WALEntries   int   `json:"wal_entries"`
	// SegmentBytes is the snapshot segment's size on disk.
	SegmentBytes int64 `json:"segment_bytes"`
	// Speedup is ColdBuildNS / SnapshotLoadNS — the acceptance gate (≥ 5x).
	Speedup float64 `json:"speedup"`
	// DifferentialOK records that the restored corpus answered the sampled
	// queries bit-identically to the never-persisted corpus, across every
	// native predicate, at the same epoch.
	DifferentialOK bool `json:"differential_ok"`
}

// RunPersist executes the persistence benchmark in a temporary directory.
func RunPersist(o PersistOptions) (PersistReport, error) {
	o = o.withDefaults()
	r := PersistReport{Records: o.Records, Seed: o.Seed, WALEntries: o.WALEntries}
	ds, err := dblpDataset(o.Records, o.Seed)
	if err != nil {
		return r, err
	}
	dir, err := os.MkdirTemp("", "approxstore-bench-")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dir)
	segDir := filepath.Join(dir, "corpus")

	// Cold build: the full one-pass tokenization plus every derived table.
	// Each timed phase starts from a collected heap — a real cold start runs
	// in a fresh process, so the previous phase's garbage must not bill the
	// next one.
	runtime.GC()
	start := time.Now()
	corpus, err := core.NewCorpus(ds.Records, o.Config, core.AllLayers)
	if err != nil {
		return r, err
	}
	r.ColdBuildNS = time.Since(start).Nanoseconds()

	if err := store.Save(segDir, corpus); err != nil {
		return r, err
	}
	if segs, err := filepath.Glob(filepath.Join(segDir, "snapshot-*.seg")); err == nil && len(segs) == 1 {
		if st, err := os.Stat(segs[0]); err == nil {
			r.SegmentBytes = st.Size()
		}
	}

	// Differential first (it needs the built corpus and a restored twin
	// live at once): every native predicate, zipf-sampled queries, restored
	// vs never-persisted — bit-identical rankings at the same epoch.
	loaded, _, err := store.Load(segDir)
	if err != nil {
		return r, err
	}
	r.DifferentialOK, err = persistDifferential(corpus, loaded, ds.Records, o)
	if err != nil {
		return r, err
	}

	// Prepare the crash-recovery store: the same segment plus a WAL tail.
	walDir := filepath.Join(dir, "replay")
	walCorpus, _, err := store.Load(segDir)
	if err != nil {
		return r, err
	}
	log, err := store.Create(walDir, walCorpus)
	if err != nil {
		return r, err
	}
	rng := rand.New(rand.NewSource(o.Seed + 41))
	for i := 0; i < o.WALEntries; i++ {
		tid := 1_000_000 + i
		text := ds.Records[rng.Intn(len(ds.Records))].Text
		if err := walCorpus.Insert(core.Record{TID: tid, Text: text}); err != nil {
			return r, err
		}
	}
	log.Release()

	// Timed snapshot loads (empty WAL), averaged. By now the built corpus,
	// the dataset and the WAL fixture are all dead: after the GC the heap
	// looks like a fresh process's — which is what a real cold start is.
	corpus, loaded, walCorpus, ds = nil, nil, nil, nil
	_ = corpus
	var totalLoad int64
	for i := 0; i < o.Loads; i++ {
		loaded = nil
		runtime.GC()
		start = time.Now()
		c, _, err := store.Load(segDir)
		if err != nil {
			return r, err
		}
		totalLoad += time.Since(start).Nanoseconds()
		loaded = c
	}
	r.SnapshotLoadNS = totalLoad / int64(o.Loads)
	if r.SnapshotLoadNS > 0 {
		r.Speedup = float64(r.ColdBuildNS) / float64(r.SnapshotLoadNS)
	}

	// Crash-recovery load: segment decode plus WAL replay to the tail's
	// exact epoch.
	loaded = nil
	runtime.GC()
	start = time.Now()
	replayed, _, err := store.Load(walDir)
	if err != nil {
		return r, err
	}
	r.ReplayLoadNS = time.Since(start).Nanoseconds()
	if replayed.Epoch() != uint64(o.WALEntries) {
		return r, fmt.Errorf("experiments: replay reached epoch %d, want %d", replayed.Epoch(), o.WALEntries)
	}
	return r, nil
}

// persistDifferential compares full rankings of every native predicate over
// a zipf-skewed query sample between the built and the restored corpus.
func persistDifferential(want, got *core.Corpus, records []core.Record, o PersistOptions) (bool, error) {
	if want.Epoch() != got.Epoch() {
		return false, nil
	}
	rng := rand.New(rand.NewSource(o.Seed + 17))
	zipf := rand.NewZipf(rng, o.ZipfS, 1, uint64(len(records)-1))
	queries := make([]string, 5)
	for i := range queries {
		queries[i] = records[zipf.Uint64()].Text
	}
	for _, name := range core.PredicateNames {
		wp, err := native.Attach(name, want, o.Config)
		if err != nil {
			return false, err
		}
		gp, err := native.Attach(name, got, o.Config)
		if err != nil {
			return false, err
		}
		for _, q := range queries {
			wms, err := wp.Select(q)
			if err != nil {
				return false, err
			}
			gms, err := gp.Select(q)
			if err != nil {
				return false, err
			}
			if len(wms) != len(gms) {
				return false, nil
			}
			for i := range wms {
				if wms[i] != gms[i] {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// WriteJSON writes the report as BENCH_persist.json in dir.
func (r PersistReport) WriteJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeJSON(filepath.Join(dir, "BENCH_persist.json"), r)
}

// Print writes a human-readable summary of the persistence benchmark.
func (r PersistReport) Print(w io.Writer) {
	t := &table{header: []string{"path", "wall time", "vs cold build"}}
	t.add("cold build", time.Duration(r.ColdBuildNS).Round(time.Millisecond).String(), "1.0x")
	t.add("snapshot load", time.Duration(r.SnapshotLoadNS).Round(time.Millisecond).String(),
		fmt.Sprintf("%.1fx faster", r.Speedup))
	t.add(fmt.Sprintf("load + %d-entry wal replay", r.WALEntries),
		time.Duration(r.ReplayLoadNS).Round(time.Millisecond).String(),
		fmt.Sprintf("%.1fx faster", safeRatio(r.ColdBuildNS, r.ReplayLoadNS)))
	t.write(w, fmt.Sprintf("Persistence — %d records, segment %.1f MiB (differential ok=%v)",
		r.Records, float64(r.SegmentBytes)/(1<<20), r.DifferentialOK))
}

func safeRatio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
