package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/native"
)

// Table51Result reproduces Table 5.1: statistics of the clean datasets.
type Table51Result struct {
	Company datasets.Stats
	DBLP    datasets.Stats
}

// Table51 generates the two clean relations at paper scale and describes
// them.
func Table51(o Options) Table51Result {
	return Table51Result{
		Company: datasets.Describe(datasets.CompanyNames(2139, o.Seed)),
		DBLP:    datasets.Describe(datasets.DBLPTitles(10425, o.Seed)),
	}
}

// Print writes the Table 5.1 reproduction.
func (r Table51Result) Print(w io.Writer) {
	t := &table{header: []string{"dataset", "#tuples", "avg tuple length", "#words/tuple"}}
	t.add("Company Names", fmt.Sprint(r.Company.Tuples), f3(r.Company.AvgTupleLen), f3(r.Company.WordsPerTuple))
	t.add("DBLP Titles", fmt.Sprint(r.DBLP.Tuples), f3(r.DBLP.AvgTupleLen), f3(r.DBLP.WordsPerTuple))
	t.write(w, "Table 5.1 — Statistics of Clean Datasets (paper: 2139/21.03/2.92 and 10425/33.55/4.53)")
}

// Table53Result reproduces Table 5.3: the generated benchmark datasets.
type Table53Result struct {
	Specs   []DatasetSpec
	Records []int // record counts actually generated
}

// Table53 generates every benchmark dataset and reports its configuration.
func Table53(o Options) (Table53Result, error) {
	specs := CompanySpecs(o)
	r := Table53Result{Specs: specs}
	for _, spec := range specs {
		ds, err := buildDataset(spec, o)
		if err != nil {
			return r, err
		}
		r.Records = append(r.Records, len(ds.Records))
	}
	return r, nil
}

// Print writes the Table 5.3 reproduction.
func (r Table53Result) Print(w io.Writer) {
	t := &table{header: []string{"class", "name", "erroneous%", "extent%", "swap%", "abbr%", "records"}}
	for i, s := range r.Specs {
		t.add(s.Class, s.Name,
			fmt.Sprintf("%.0f", s.P.ErroneousPct*100),
			fmt.Sprintf("%.0f", s.P.ErrorExtent*100),
			fmt.Sprintf("%.0f", s.P.TokenSwapPct*100),
			fmt.Sprintf("%.0f", s.P.AbbrPct*100),
			fmt.Sprint(r.Records[i]))
	}
	t.write(w, "Table 5.3 — Benchmark dataset classification")
}

// QGramSizeResult reproduces the §5.3.3 q-gram size study: MAP of four
// predicates on the dirty class for q ∈ {2, 3}.
type QGramSizeResult struct {
	Qs         []int
	Predicates []string
	// MAP[qIndex][predIndex]
	MAP [][]float64
}

// QGramSize measures accuracy as a function of q on the dirty datasets.
func QGramSize(o Options) (QGramSizeResult, error) {
	r := QGramSizeResult{
		Qs:         []int{2, 3},
		Predicates: []string{"Jaccard", "Cosine", "HMM", "BM25"},
	}
	dirtySpecs := []DatasetSpec{}
	for _, s := range CompanySpecs(o) {
		if s.Class == "Dirty" {
			dirtySpecs = append(dirtySpecs, s)
		}
	}
	for _, q := range r.Qs {
		opt := o
		opt.Config.Q = q
		sums := make([]float64, len(r.Predicates))
		for _, spec := range dirtySpecs {
			res, err := datasetAccuracy(spec, r.Predicates, opt)
			if err != nil {
				return r, err
			}
			for i, name := range r.Predicates {
				sums[i] += res[name].MAP
			}
		}
		row := make([]float64, len(sums))
		for i, s := range sums {
			row[i] = s / float64(len(dirtySpecs))
		}
		r.MAP = append(r.MAP, row)
	}
	return r, nil
}

// Print writes the q-gram size table (§5.3.3; paper: q=2 beats q=3).
func (r QGramSizeResult) Print(w io.Writer) {
	t := &table{header: append([]string{"q"}, r.Predicates...)}
	for i, q := range r.Qs {
		row := []string{fmt.Sprint(q)}
		for _, v := range r.MAP[i] {
			row = append(row, f3(v))
		}
		t.add(row...)
	}
	t.write(w, "§5.3.3 — MAP vs q-gram size on the dirty class (paper: q=2 best, e.g. Jaccard .736/.671)")
}

// AccuracyByDataset holds MAP (and mean max F1) per predicate per dataset.
type AccuracyByDataset struct {
	Datasets   []string
	Predicates []string
	// Summary[datasetIndex][pred name]
	Summary []map[string]eval.Summary
}

// accuracyOn runs the full predicate set over the named datasets.
func accuracyOn(names []string, specs []DatasetSpec, o Options) (AccuracyByDataset, error) {
	r := AccuracyByDataset{Predicates: names}
	for _, spec := range specs {
		res, err := datasetAccuracy(spec, names, o)
		if err != nil {
			return r, err
		}
		r.Datasets = append(r.Datasets, spec.Name)
		r.Summary = append(r.Summary, res)
	}
	return r, nil
}

func specsByName(o Options, names ...string) []DatasetSpec {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []DatasetSpec
	for _, s := range CompanySpecs(o) {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// Table55 reproduces Table 5.5: accuracy under abbreviation errors (F1) and
// token swap errors (F2) for every predicate.
func Table55(o Options) (AccuracyByDataset, error) {
	return accuracyOn(core.PredicateNames, specsByName(o, "F1", "F2"), o)
}

// PrintTable55 writes the Table 5.5 reproduction.
func PrintTable55(r AccuracyByDataset, w io.Writer) {
	t := &table{header: append([]string{"predicate"}, r.Datasets...)}
	for _, name := range r.Predicates {
		row := []string{name}
		for i := range r.Datasets {
			row = append(row, f3(r.Summary[i][name].MAP))
		}
		t.add(row...)
	}
	t.write(w, "Table 5.5 — MAP under abbreviation (F1) and token swap (F2) errors\n"+
		"(paper: weighted predicates ≈1.0 on both; Jaccard .96/1.0; edit distance .89/.77; GES 1.0/.94)")
}

// Table56 reproduces Table 5.6: accuracy under growing edit errors
// (datasets F3, F4, F5).
func Table56(o Options) (AccuracyByDataset, error) {
	return accuracyOn(core.PredicateNames, specsByName(o, "F3", "F4", "F5"), o)
}

// PrintTable56 writes the Table 5.6 reproduction.
func PrintTable56(r AccuracyByDataset, w io.Writer) {
	t := &table{header: append([]string{"predicate"}, r.Datasets...)}
	for _, name := range r.Predicates {
		row := []string{name}
		for i := range r.Datasets {
			row = append(row, f3(r.Summary[i][name].MAP))
		}
		t.add(row...)
	}
	t.write(w, "Table 5.6 — MAP under edit errors only (paper groups: GES ≥ BM25/HMM/LM/SoftTFIDF ≥ ED ≥ WM/WJ/Cosine ≥ Jaccard/Xect)")
}

// Figure51Result reproduces Figure 5.1: MAP per predicate per error class.
type Figure51Result struct {
	Classes    []string
	Predicates []string
	// MAP[classIndex][pred name]
	MAP []map[string]float64
}

// Figure51 averages MAP over the datasets of each class.
func Figure51(o Options) (Figure51Result, error) {
	r := Figure51Result{
		Classes:    []string{"Low", "Medium", "Dirty"},
		Predicates: core.PredicateNames,
	}
	byClass := map[string][]DatasetSpec{}
	for _, s := range CompanySpecs(o) {
		if s.Class != "-" {
			byClass[s.Class] = append(byClass[s.Class], s)
		}
	}
	for _, class := range r.Classes {
		sums := map[string]float64{}
		for _, spec := range byClass[class] {
			res, err := datasetAccuracy(spec, r.Predicates, o)
			if err != nil {
				return r, err
			}
			for name, s := range res {
				sums[name] += s.MAP
			}
		}
		avg := map[string]float64{}
		for name, s := range sums {
			avg[name] = s / float64(len(byClass[class]))
		}
		r.MAP = append(r.MAP, avg)
	}
	return r, nil
}

// Print writes the Figure 5.1 reproduction as a table (one series per
// class).
func (r Figure51Result) Print(w io.Writer) {
	t := &table{header: append([]string{"predicate"}, r.Classes...)}
	for _, name := range r.Predicates {
		row := []string{name}
		for i := range r.Classes {
			row = append(row, f3(r.MAP[i][name]))
		}
		t.add(row...)
	}
	t.write(w, "Figure 5.1 — MAP per class (paper: BM25/HMM/LM/SoftTFIDF best everywhere; ED/Xect/Jac worst)")
}

// Table57Result reproduces Table 5.7: GESJaccard / GESapx accuracy at
// different filter thresholds on CU1, with exact GES as the reference.
type Table57Result struct {
	Thetas     []float64
	GESJaccard []float64
	GESapx     []float64
	GESExact   float64
}

// Table57 runs the threshold sweep.
func Table57(o Options) (Table57Result, error) {
	r := Table57Result{Thetas: []float64{0.7, 0.8, 0.9}}
	spec := specsByName(o, "CU1")[0]
	ds, err := buildDataset(spec, o)
	if err != nil {
		return r, err
	}
	texts, relevant := sampleQueries(ds, o.Queries, o.Seed+spec.P.Seed)

	// The filter threshold is a scoring-level parameter, so the whole sweep
	// attaches to one shared corpus.
	corpus, err := core.NewCorpus(ds.Records, o.Config, core.AllLayers)
	if err != nil {
		return r, err
	}
	exact, err := native.Attach("GES", corpus, o.Config)
	if err != nil {
		return r, err
	}
	s, err := measureAccuracy(exact, texts, relevant)
	if err != nil {
		return r, err
	}
	r.GESExact = s.MAP

	for _, theta := range r.Thetas {
		cfg := o.Config
		cfg.GESThreshold = theta
		for _, name := range []string{"GESJaccard", "GESapx"} {
			p, err := native.Attach(name, corpus, cfg)
			if err != nil {
				return r, err
			}
			s, err := measureAccuracy(p, texts, relevant)
			if err != nil {
				return r, err
			}
			if name == "GESJaccard" {
				r.GESJaccard = append(r.GESJaccard, s.MAP)
			} else {
				r.GESapx = append(r.GESapx, s.MAP)
			}
		}
	}
	return r, nil
}

// Print writes the Table 5.7 reproduction.
func (r Table57Result) Print(w io.Writer) {
	t := &table{header: []string{"predicate", "θ=0.7", "θ=0.8", "θ=0.9"}}
	rowJ := []string{"GESJaccard"}
	rowA := []string{"GESapx"}
	for i := range r.Thetas {
		rowJ = append(rowJ, f3(r.GESJaccard[i]))
		rowA = append(rowA, f3(r.GESapx[i]))
	}
	t.add(rowJ...)
	t.add(rowA...)
	t.add("GES (no filter)", f3(r.GESExact), "", "")
	t.write(w, "Table 5.7 — GES filter thresholds on CU1 (paper: GES .697; GESJaccard .692/.683/.603; GESapx .678/.665/.608)")
}
