package experiments

import (
	"fmt"
	"io"
)

// RunAll executes every experiment (E1–E12 of DESIGN.md) and writes the
// paper-style tables to w. Accuracy experiments use the Options scale;
// performance experiments the PerfOptions scale.
func RunAll(w io.Writer, ao Options, po PerfOptions) error {
	fmt.Fprintf(w, "== Benchmarking Declarative Approximate Selection Predicates — full reproduction ==\n")
	fmt.Fprintf(w, "accuracy scale: %d tuples / %d clean / %d queries; performance scale: %d tuples / %d queries (%s)\n",
		ao.Size, ao.NumClean, ao.Queries, po.Size, po.Queries, po.Impl)

	Table51(ao).Print(w)

	t53, err := Table53(ao)
	if err != nil {
		return fmt.Errorf("table 5.3: %w", err)
	}
	t53.Print(w)

	qg, err := QGramSize(ao)
	if err != nil {
		return fmt.Errorf("q-gram size: %w", err)
	}
	qg.Print(w)

	t55, err := Table55(ao)
	if err != nil {
		return fmt.Errorf("table 5.5: %w", err)
	}
	PrintTable55(t55, w)

	t56, err := Table56(ao)
	if err != nil {
		return fmt.Errorf("table 5.6: %w", err)
	}
	PrintTable56(t56, w)

	f51, err := Figure51(ao)
	if err != nil {
		return fmt.Errorf("figure 5.1: %w", err)
	}
	f51.Print(w)

	t57, err := Table57(ao)
	if err != nil {
		return fmt.Errorf("table 5.7: %w", err)
	}
	t57.Print(w)

	f52, err := Figure52(po)
	if err != nil {
		return fmt.Errorf("figure 5.2: %w", err)
	}
	f52.Print(w)

	f53, err := Figure53(po)
	if err != nil {
		return fmt.Errorf("figure 5.3: %w", err)
	}
	f53.Print(w)

	f54, err := Figure54(po)
	if err != nil {
		return fmt.Errorf("figure 5.4: %w", err)
	}
	f54.Print(w)

	f55, err := Figure55(ao, po)
	if err != nil {
		return fmt.Errorf("figure 5.5: %w", err)
	}
	f55.Print(w)

	f56, err := Figure56(ao)
	if err != nil {
		return fmt.Errorf("figure 5.6: %w", err)
	}
	f56.Print(w)
	return nil
}
