package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunHotPathSmoke runs the hot-path benchmark at a tiny scale and
// checks the report's invariants: every predicate measured, both paths
// timed, the differential spot-check green, pruning counters wired, and
// the JSON artifact written and parseable.
func TestRunHotPathSmoke(t *testing.T) {
	r, err := RunHotPath(HotPathOptions{Records: 300, Distinct: 20, Queries: 6, HeavyQueries: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 13 {
		t.Fatalf("expected 13 predicate entries, got %d", len(r.Entries))
	}
	if !r.DifferentialOK {
		t.Fatal("optimized path diverged from the naive reference")
	}
	for _, e := range r.Entries {
		if e.NaiveNSPerQuery <= 0 || e.OptimizedNSPerQuery <= 0 {
			t.Fatalf("%s: missing timings: %+v", e.Predicate, e)
		}
	}
	if r.Pruning.Queries == 0 || r.Pruning.Lists == 0 {
		t.Fatalf("pruning counters not wired: %+v", r.Pruning)
	}
	if r.Pruning.ListsSkipped == 0 {
		t.Fatalf("expected some lists skipped at Limit=%d: %+v", r.Limit, r.Pruning)
	}
	if r.AggregateWeightedSpeedup <= 0 {
		t.Fatalf("aggregate-weighted speedup missing: %v", r.AggregateWeightedSpeedup)
	}

	dir := t.TempDir()
	if err := r.WriteJSON(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_hotpath.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back HotPathReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Records != r.Records || len(back.Entries) != len(r.Entries) {
		t.Fatal("artifact does not round-trip")
	}

	var buf bytes.Buffer
	r.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("Print produced nothing")
	}
}
