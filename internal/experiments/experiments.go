// Package experiments regenerates every table and figure of the paper's
// evaluation chapter (Ch. 5). Each experiment has a typed result so tests
// and the approxbench binary can assert on the reproduced shape, plus a
// printer producing a paper-style ASCII table.
//
// Accuracy experiments run the native predicates (differential tests
// guarantee score-identical behaviour with the declarative realizations, so
// MAP values are the same and the workload finishes in seconds, not hours);
// performance experiments run the declarative SQL realizations — the
// framework whose cost the paper measures.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dirty"
	"repro/internal/eval"
	"repro/internal/native"
)

// Options configure an experiment run.
type Options struct {
	// Size is the number of tuples per accuracy dataset (paper: 5000).
	Size int
	// NumClean is the number of clean source tuples (paper: 500).
	NumClean int
	// Queries is the number of random selection queries per accuracy
	// measurement (paper: 500).
	Queries int
	// Seed drives all data generation and query sampling.
	Seed int64
	// Config holds predicate parameters; zero-value means DefaultConfig.
	Config core.Config
}

// Defaults returns the paper-scale options.
func Defaults() Options {
	return Options{
		Size:     5000,
		NumClean: 500,
		Queries:  500,
		Seed:     1,
		Config:   core.DefaultConfig(),
	}
}

// Scaled returns options shrunk by the given divisor, for quick runs and
// benchmarks (the accuracy trend is stable under scaling, §5.1).
func Scaled(div int) Options {
	o := Defaults()
	if div <= 1 {
		return o
	}
	o.Size /= div
	o.NumClean /= div
	o.Queries /= div
	if o.NumClean < 10 {
		o.NumClean = 10
	}
	if o.Size < 10*o.NumClean {
		o.Size = 10 * o.NumClean
	}
	if o.Queries < 20 {
		o.Queries = 20
	}
	return o
}

// DatasetSpec names one benchmark dataset of Table 5.3.
type DatasetSpec struct {
	Name  string
	Class string // Dirty, Medium, Low, or "-" for the F datasets
	P     dirty.Params
}

// CompanySpecs returns the thirteen Table 5.3 configurations (CU1–CU8 and
// F1–F5) at the requested scale. Every CU dataset uses 20% token swap and
// 50% abbreviation error.
func CompanySpecs(o Options) []DatasetSpec {
	cu := func(name, class string, erroneous, extent float64, seedOff int64) DatasetSpec {
		return DatasetSpec{Name: name, Class: class, P: dirty.Params{
			Size: o.Size, NumClean: o.NumClean, Dist: dirty.Uniform,
			ErroneousPct: erroneous, ErrorExtent: extent,
			TokenSwapPct: 0.20, AbbrPct: 0.50, Seed: o.Seed + seedOff,
		}}
	}
	f := func(name string, erroneous, extent, swap, abbr float64, seedOff int64) DatasetSpec {
		return DatasetSpec{Name: name, Class: "-", P: dirty.Params{
			Size: o.Size, NumClean: o.NumClean, Dist: dirty.Uniform,
			ErroneousPct: erroneous, ErrorExtent: extent,
			TokenSwapPct: swap, AbbrPct: abbr, Seed: o.Seed + seedOff,
		}}
	}
	return []DatasetSpec{
		cu("CU1", "Dirty", 0.90, 0.30, 101),
		cu("CU2", "Dirty", 0.50, 0.30, 102),
		cu("CU3", "Medium", 0.30, 0.30, 103),
		cu("CU4", "Medium", 0.10, 0.30, 104),
		cu("CU5", "Medium", 0.90, 0.10, 105),
		cu("CU6", "Medium", 0.50, 0.10, 106),
		cu("CU7", "Low", 0.30, 0.10, 107),
		cu("CU8", "Low", 0.10, 0.10, 108),
		f("F1", 0.50, 0, 0, 0.50, 111),
		f("F2", 0.50, 0, 0.20, 0, 112),
		f("F3", 0.50, 0.10, 0, 0, 113),
		f("F4", 0.50, 0.20, 0, 0, 114),
		f("F5", 0.50, 0.30, 0, 0, 115),
	}
}

// buildDataset generates one benchmark dataset from the company source.
func buildDataset(spec DatasetSpec, o Options) (*dirty.Dataset, error) {
	clean := datasets.CompanyNames(maxInt(o.NumClean*2, 400), o.Seed)
	return dirty.Generate(clean, datasets.Abbreviations(), spec.P)
}

// sampleQueries draws n random records (clean and erroneous alike, §5.2)
// from the dataset, returning their texts and relevant TID sets.
func sampleQueries(ds *dirty.Dataset, n int, seed int64) ([]string, []map[int]bool) {
	rng := rand.New(rand.NewSource(seed))
	texts := make([]string, 0, n)
	relevant := make([]map[int]bool, 0, n)
	for i := 0; i < n; i++ {
		rec := ds.Records[rng.Intn(len(ds.Records))]
		texts = append(texts, rec.Text)
		rel := make(map[int]bool)
		for _, tid := range ds.Clusters[ds.Cluster[rec.TID]] {
			rel[tid] = true
		}
		relevant = append(relevant, rel)
	}
	return texts, relevant
}

// measureAccuracy runs one predicate over a query workload.
func measureAccuracy(p core.Predicate, texts []string, relevant []map[int]bool) (eval.Summary, error) {
	var acc eval.Accumulator
	for i, q := range texts {
		ms, err := p.Select(q)
		if err != nil {
			return eval.Summary{}, fmt.Errorf("%s.Select: %w", p.Name(), err)
		}
		ranked := make([]int, len(ms))
		for j, m := range ms {
			ranked[j] = m.TID
		}
		acc.Add(ranked, relevant[i])
	}
	return acc.Summary(), nil
}

// datasetAccuracy evaluates a set of predicates on one dataset.
func datasetAccuracy(spec DatasetSpec, names []string, o Options) (map[string]eval.Summary, error) {
	ds, err := buildDataset(spec, o)
	if err != nil {
		return nil, err
	}
	texts, relevant := sampleQueries(ds, o.Queries, o.Seed+spec.P.Seed)
	// One shared corpus per dataset: the predicate suite attaches to a
	// single tokenization/statistics pass instead of re-preprocessing the
	// relation once per predicate.
	corpus, err := core.NewCorpus(ds.Records, o.Config, core.AllLayers)
	if err != nil {
		return nil, err
	}
	out := make(map[string]eval.Summary, len(names))
	for _, name := range names {
		p, err := native.Attach(name, corpus, o.Config)
		if err != nil {
			return nil, err
		}
		s, err := measureAccuracy(p, texts, relevant)
		if err != nil {
			return nil, err
		}
		out[name] = s
	}
	return out, nil
}

// ---- small ASCII table writer ----

type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer, title string) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "\n%s\n", title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
