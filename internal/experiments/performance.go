package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/declarative"
	"repro/internal/dirty"
	"repro/internal/native"
	"repro/internal/tokenize"
	"repro/internal/weights"
)

// PerfOptions configure the performance experiments (§5.5). They default to
// reduced sizes so the full suite runs in minutes; pass paper-scale values
// to approxbench for the full reproduction.
type PerfOptions struct {
	// Size is the DBLP-like dataset size for Figures 5.2/5.3 (paper: 10000).
	Size int
	// Sizes is the scalability sweep of Figure 5.4 (paper: 10k–100k).
	Sizes []int
	// Queries is the number of timed selection queries (paper: 100).
	Queries int
	// Seed drives data generation and query sampling.
	Seed int64
	// Config holds predicate parameters.
	Config core.Config
	// Impl selects the measured realization: "declarative" (the paper's
	// framework, default) or "native" (in-memory ablation baseline).
	Impl string
}

// PerfDefaults returns reduced-size performance options.
func PerfDefaults() PerfOptions {
	return PerfOptions{
		Size:    2000,
		Sizes:   []int{1000, 2000, 4000},
		Queries: 20,
		Seed:    1,
		Config:  core.DefaultConfig(),
		Impl:    "declarative",
	}
}

// PaperPerfOptions returns the paper-scale settings (§5.5: 10k records for
// Figures 5.2/5.3, 10k–100k for Figure 5.4, 100 queries).
func PaperPerfOptions() PerfOptions {
	o := PerfDefaults()
	o.Size = 10000
	o.Sizes = []int{10000, 20000, 40000, 60000, 80000, 100000}
	o.Queries = 100
	return o
}

// dblpDataset generates the medium-error DBLP-like relation of §5.5 (70%
// erroneous duplicates, 20% extent, 20% token swap, no abbreviations).
func dblpDataset(size int, seed int64) (*dirty.Dataset, error) {
	numClean := size / 10
	if numClean < 10 {
		numClean = 10
	}
	clean := datasets.DBLPTitles(numClean, seed)
	return dirty.Generate(clean, nil, dirty.Params{
		Size: size, NumClean: numClean, Dist: dirty.Uniform,
		ErroneousPct: 0.70, ErrorExtent: 0.20, TokenSwapPct: 0.20,
		Seed: seed,
	})
}

func buildImpl(impl, name string, records []core.Record, cfg core.Config) (core.Predicate, error) {
	if impl == "native" {
		return native.Build(name, records, cfg)
	}
	return declarative.Build(name, records, cfg)
}

// predicateSource builds the predicates of one experiment over one dataset.
// For the native realization it opens a single shared corpus and attaches,
// so a thirteen-predicate experiment preprocesses the relation once; the
// declarative realization builds independently (the paper's framework is
// what the performance experiments measure, including its preprocessing).
type predicateSource struct {
	impl    string
	records []core.Record
	corpus  *core.Corpus
}

func newPredicateSource(impl string, records []core.Record, cfg core.Config) (*predicateSource, error) {
	s := &predicateSource{impl: impl, records: records}
	if impl == "native" {
		c, err := core.NewCorpus(records, cfg, core.AllLayers)
		if err != nil {
			return nil, err
		}
		s.corpus = c
	}
	return s, nil
}

func (s *predicateSource) build(name string, cfg core.Config) (core.Predicate, error) {
	if s.corpus != nil {
		return native.Attach(name, s.corpus, cfg)
	}
	return declarative.Build(name, s.records, cfg)
}

// Figure52Result reproduces Figure 5.2: preprocessing time per predicate,
// split into tokenization and weight-computation phases.
type Figure52Result struct {
	Predicates []string
	Tokenize   []time.Duration
	Weights    []time.Duration
	Size       int
	Impl       string
}

// Figure52 builds every predicate over the DBLP-like relation and reports
// its preprocessing phases.
func Figure52(o PerfOptions) (Figure52Result, error) {
	r := Figure52Result{Predicates: core.PredicateNames, Size: o.Size, Impl: o.Impl}
	ds, err := dblpDataset(o.Size, o.Seed)
	if err != nil {
		return r, err
	}
	src, err := newPredicateSource(o.Impl, ds.Records, o.Config)
	if err != nil {
		return r, err
	}
	for _, name := range r.Predicates {
		p, err := src.build(name, o.Config)
		if err != nil {
			return r, err
		}
		ph, ok := p.(core.Phased)
		if !ok {
			return r, fmt.Errorf("predicate %s does not report phases", name)
		}
		tok, w := ph.PreprocessPhases()
		r.Tokenize = append(r.Tokenize, tok)
		r.Weights = append(r.Weights, w)
	}
	return r, nil
}

// Print writes the Figure 5.2 reproduction.
func (r Figure52Result) Print(w io.Writer) {
	t := &table{header: []string{"predicate", "tokenization", "weights", "total"}}
	for i, name := range r.Predicates {
		t.add(name, r.Tokenize[i].Round(time.Millisecond).String(),
			r.Weights[i].Round(time.Millisecond).String(),
			(r.Tokenize[i] + r.Weights[i]).Round(time.Millisecond).String())
	}
	t.write(w, fmt.Sprintf("Figure 5.2 — Preprocessing time, %d records, %s realization\n"+
		"(paper: aggregate/LM predicates fast tokenization, slow weights; combination predicates slowest tokenization; GESapx slowest overall)",
		r.Size, r.Impl))
}

// Figure53Result reproduces Figure 5.3: average query time per predicate.
type Figure53Result struct {
	Predicates []string
	QueryTime  []time.Duration
	Size       int
	Queries    int
	Impl       string
}

// Figure53 measures mean Select latency over a random query workload.
func Figure53(o PerfOptions) (Figure53Result, error) {
	r := Figure53Result{Predicates: core.PredicateNames, Size: o.Size, Queries: o.Queries, Impl: o.Impl}
	ds, err := dblpDataset(o.Size, o.Seed)
	if err != nil {
		return r, err
	}
	texts, _ := sampleQueries(ds, o.Queries, o.Seed+7)
	src, err := newPredicateSource(o.Impl, ds.Records, o.Config)
	if err != nil {
		return r, err
	}
	for _, name := range r.Predicates {
		p, err := src.build(name, o.Config)
		if err != nil {
			return r, err
		}
		d, err := timeQueries(p, texts)
		if err != nil {
			return r, err
		}
		r.QueryTime = append(r.QueryTime, d)
	}
	return r, nil
}

func timeQueries(p core.Predicate, texts []string) (time.Duration, error) {
	start := time.Now()
	for _, q := range texts {
		if _, err := p.Select(q); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(len(texts)), nil
}

// Print writes the Figure 5.3 reproduction.
func (r Figure53Result) Print(w io.Writer) {
	t := &table{header: []string{"predicate", "avg query time"}}
	for i, name := range r.Predicates {
		t.add(name, r.QueryTime[i].Round(time.Microsecond).String())
	}
	t.write(w, fmt.Sprintf("Figure 5.3 — Query time, %d records, %d queries, %s realization\n"+
		"(paper: overlap/HMM/BM25 fastest; LM slower (3-table join); GES-based and SoftTFIDF slowest)",
		r.Size, r.Queries, r.Impl))
}

// Figure54Groups are the predicate groups of Figure 5.4.
var Figure54Groups = map[string][]string{
	"G1":           {"IntersectSize", "WeightedMatch", "HMM"},
	"G2":           {"Jaccard", "WeightedJaccard", "Cosine", "BM25"},
	"LM":           {"LM"},
	"STfIdf (w=3)": {"SoftTFIDF"},
	"GESJac (w=3)": {"GESJaccard"},
	"GESapx (w=3)": {"GESapx"},
}

// figure54GroupOrder fixes the display order.
var figure54GroupOrder = []string{"G1", "G2", "LM", "STfIdf (w=3)", "GESJac (w=3)", "GESapx (w=3)"}

// Figure54Result reproduces Figure 5.4: query time vs base table size.
type Figure54Result struct {
	Sizes  []int
	Groups []string
	// Time[groupIndex][sizeIndex]
	Time [][]time.Duration
	Impl string
}

// Figure54 sweeps the base table size. Combination predicates are queried
// with 3-word query strings, as in the paper; edit distance is excluded
// (the paper drops it for its poor accuracy).
func Figure54(o PerfOptions) (Figure54Result, error) {
	r := Figure54Result{Sizes: o.Sizes, Groups: figure54GroupOrder, Impl: o.Impl}
	r.Time = make([][]time.Duration, len(r.Groups))
	for si, size := range o.Sizes {
		ds, err := dblpDataset(size, o.Seed)
		if err != nil {
			return r, err
		}
		texts, _ := sampleQueries(ds, o.Queries, o.Seed+13)
		short := make([]string, len(texts))
		for i, q := range texts {
			short[i] = firstWords(q, 3)
		}
		src, err := newPredicateSource(o.Impl, ds.Records, o.Config)
		if err != nil {
			return r, err
		}
		for gi, group := range r.Groups {
			var total time.Duration
			members := Figure54Groups[group]
			for _, name := range members {
				p, err := src.build(name, o.Config)
				if err != nil {
					return r, err
				}
				workload := texts
				if strings.Contains(group, "w=3") {
					workload = short
				}
				d, err := timeQueries(p, workload)
				if err != nil {
					return r, err
				}
				total += d
			}
			if len(r.Time[gi]) != si {
				return r, fmt.Errorf("internal: size sweep out of order")
			}
			r.Time[gi] = append(r.Time[gi], total/time.Duration(len(members)))
		}
	}
	return r, nil
}

func firstWords(s string, n int) string {
	words := strings.Fields(s)
	if len(words) > n {
		words = words[:n]
	}
	return strings.Join(words, " ")
}

// Print writes the Figure 5.4 reproduction.
func (r Figure54Result) Print(w io.Writer) {
	header := []string{"group"}
	for _, s := range r.Sizes {
		header = append(header, fmt.Sprintf("%dk", s/1000))
	}
	t := &table{header: header}
	for gi, g := range r.Groups {
		row := []string{g}
		for _, d := range r.Time[gi] {
			row = append(row, d.Round(time.Microsecond).String())
		}
		t.add(row...)
	}
	t.write(w, fmt.Sprintf("Figure 5.4 — Query time vs base table size (%s realization)\n"+
		"(paper: G1 < G2 < LM ≪ combination predicates; all grow roughly linearly)", r.Impl))
}

// Figure55Result reproduces Figure 5.5: the effect of IDF pruning on MAP
// and on query time.
type Figure55Result struct {
	Rates      []float64
	Predicates []string
	// MAP[rateIndex][predIndex], Time[rateIndex][predIndex]
	MAP  [][]float64
	Time [][]time.Duration
}

// Figure55 sweeps the pruning rate over a dirty company dataset. MAP uses
// the native realization (scores are identical); time uses the configured
// implementation.
func Figure55(ao Options, po PerfOptions) (Figure55Result, error) {
	r := Figure55Result{
		Rates:      []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
		Predicates: []string{"IntersectSize", "Jaccard", "Cosine", "BM25", "HMM", "LM"},
	}
	spec := specsByName(ao, "CU1")[0]
	ds, err := buildDataset(spec, ao)
	if err != nil {
		return r, err
	}
	texts, relevant := sampleQueries(ds, ao.Queries, ao.Seed+spec.P.Seed)
	for _, rate := range r.Rates {
		cfg := ao.Config
		cfg.PruneRate = rate
		maps := make([]float64, len(r.Predicates))
		times := make([]time.Duration, len(r.Predicates))
		for i, name := range r.Predicates {
			np, err := native.Build(name, ds.Records, cfg)
			if err != nil {
				return r, err
			}
			s, err := measureAccuracy(np, texts, relevant)
			if err != nil {
				return r, err
			}
			maps[i] = s.MAP

			tp, err := buildImpl(po.Impl, name, ds.Records, cfg)
			if err != nil {
				return r, err
			}
			d, err := timeQueries(tp, texts[:minInt(po.Queries, len(texts))])
			if err != nil {
				return r, err
			}
			times[i] = d
		}
		r.MAP = append(r.MAP, maps)
		r.Time = append(r.Time, times)
	}
	return r, nil
}

// Print writes the Figure 5.5 reproduction.
func (r Figure55Result) Print(w io.Writer) {
	t := &table{header: append([]string{"rate"}, r.Predicates...)}
	for i, rate := range r.Rates {
		row := []string{fmt.Sprintf("%.1f", rate)}
		for _, v := range r.MAP[i] {
			row = append(row, f3(v))
		}
		t.add(row...)
	}
	t.write(w, "Figure 5.5(a) — MAP vs pruning rate (paper: unweighted predicates gain; weighted stable up to ≈0.3)")

	t2 := &table{header: append([]string{"rate"}, r.Predicates...)}
	for i, rate := range r.Rates {
		row := []string{fmt.Sprintf("%.1f", rate)}
		for _, d := range r.Time[i] {
			row = append(row, d.Round(time.Microsecond).String())
		}
		t2.add(row...)
	}
	t2.write(w, "Figure 5.5(b) — Query time vs pruning rate (paper: time falls as tokens are pruned)")
}

// Figure56Result reproduces Figure 5.6: the IDF distribution of 3-grams in
// the CU1 dataset, as a fixed-width histogram.
type Figure56Result struct {
	// BinUpper[i] is the inclusive upper idf bound of bin i.
	BinUpper []float64
	// Count[i] is the number of token occurrences whose gram idf falls in
	// bin i.
	Count []int
	Total int
}

// Figure56 histograms 3-gram IDFs over the CU1 dataset.
func Figure56(o Options) (Figure56Result, error) {
	r := Figure56Result{}
	spec := specsByName(o, "CU1")[0]
	ds, err := buildDataset(spec, o)
	if err != nil {
		return r, err
	}
	docs := make([][]string, len(ds.Records))
	for i, rec := range ds.Records {
		docs[i] = tokenize.QGrams(rec.Text, 3)
	}
	c := weights.Build(docs)
	minIDF, maxIDF := math.Inf(1), math.Inf(-1)
	idfOf := map[string]float64{}
	for _, doc := range docs {
		for _, t := range doc {
			if _, ok := idfOf[t]; !ok {
				v := c.IDF(t)
				idfOf[t] = v
				if v < minIDF {
					minIDF = v
				}
				if v > maxIDF {
					maxIDF = v
				}
			}
		}
	}
	const bins = 10
	width := (maxIDF - minIDF) / bins
	if width == 0 {
		width = 1
	}
	r.BinUpper = make([]float64, bins)
	r.Count = make([]int, bins)
	for i := 0; i < bins; i++ {
		r.BinUpper[i] = minIDF + width*float64(i+1)
	}
	for _, doc := range docs {
		for _, t := range doc {
			bin := int((idfOf[t] - minIDF) / width)
			if bin >= bins {
				bin = bins - 1
			}
			r.Count[bin]++
			r.Total++
		}
	}
	return r, nil
}

// Print writes the Figure 5.6 reproduction with a text bar chart.
func (r Figure56Result) Print(w io.Writer) {
	t := &table{header: []string{"idf ≤", "tokens", ""}}
	maxCount := 1
	for _, c := range r.Count {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, up := range r.BinUpper {
		bar := strings.Repeat("#", r.Count[i]*40/maxCount)
		t.add(fmt.Sprintf("%.2f", up), fmt.Sprint(r.Count[i]), bar)
	}
	t.write(w, fmt.Sprintf("Figure 5.6 — IDF distribution of 3-grams on CU1 (%d token occurrences; paper: heavy low-IDF mass)", r.Total))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
