package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyOptions keeps the accuracy experiments fast in unit tests.
func tinyOptions() Options {
	o := Defaults()
	o.Size = 400
	o.NumClean = 40
	o.Queries = 25
	return o
}

func tinyPerf() PerfOptions {
	p := PerfDefaults()
	p.Size = 300
	p.Sizes = []int{200, 400}
	p.Queries = 5
	return p
}

func TestScaledOptions(t *testing.T) {
	o := Scaled(10)
	if o.Size != 500 || o.NumClean != 50 || o.Queries != 50 {
		t.Fatalf("Scaled(10): %+v", o)
	}
	if o2 := Scaled(1); o2 != Defaults() {
		t.Fatalf("Scaled(1) should be Defaults")
	}
	// Floors.
	o3 := Scaled(1000)
	if o3.NumClean < 10 || o3.Queries < 20 || o3.Size < 10*o3.NumClean {
		t.Fatalf("Scaled floor: %+v", o3)
	}
}

func TestCompanySpecsMatchTable53(t *testing.T) {
	specs := CompanySpecs(Defaults())
	if len(specs) != 13 {
		t.Fatalf("want 13 datasets, got %d", len(specs))
	}
	byName := map[string]DatasetSpec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	cu1 := byName["CU1"]
	if cu1.Class != "Dirty" || cu1.P.ErroneousPct != 0.90 || cu1.P.ErrorExtent != 0.30 ||
		cu1.P.TokenSwapPct != 0.20 || cu1.P.AbbrPct != 0.50 {
		t.Fatalf("CU1 spec: %+v", cu1)
	}
	f2 := byName["F2"]
	if f2.P.ErrorExtent != 0 || f2.P.TokenSwapPct != 0.20 || f2.P.AbbrPct != 0 {
		t.Fatalf("F2 spec: %+v", f2)
	}
	classes := map[string]int{}
	for _, s := range specs {
		classes[s.Class]++
	}
	if classes["Dirty"] != 2 || classes["Medium"] != 4 || classes["Low"] != 2 || classes["-"] != 5 {
		t.Fatalf("class split: %v", classes)
	}
}

func TestTable51(t *testing.T) {
	r := Table51(Defaults())
	if r.Company.Tuples != 2139 || r.DBLP.Tuples != 10425 {
		t.Fatalf("Table 5.1 sizes: %+v", r)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Company Names") {
		t.Fatal("Table 5.1 print")
	}
}

func TestTable55ShapeHolds(t *testing.T) {
	// The paper's claim: on F1 (abbreviation errors) the weighted
	// predicates beat the unweighted overlap predicates, and on F2 (token
	// swaps) the q-gram predicates beat GES.
	o := tinyOptions()
	r, err := Table55(o)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, d := range r.Datasets {
		idx[d] = i
	}
	f1 := r.Summary[idx["F1"]]
	if !(f1["BM25"].MAP > f1["IntersectSize"].MAP-0.02) {
		t.Errorf("F1: BM25 %.3f should not trail IntersectSize %.3f",
			f1["BM25"].MAP, f1["IntersectSize"].MAP)
	}
	if f1["Cosine"].MAP < 0.9 {
		t.Errorf("F1: Cosine MAP %.3f unexpectedly low", f1["Cosine"].MAP)
	}
	f2 := r.Summary[idx["F2"]]
	if !(f2["Jaccard"].MAP > f2["GES"].MAP-0.02) {
		t.Errorf("F2: q-gram Jaccard %.3f should not trail GES %.3f",
			f2["Jaccard"].MAP, f2["GES"].MAP)
	}
	var buf bytes.Buffer
	PrintTable55(r, &buf)
	if !strings.Contains(buf.String(), "Table 5.5") {
		t.Fatal("print")
	}
}

func TestTable56EditErrorDegradation(t *testing.T) {
	o := tinyOptions()
	r, err := Table56(o)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy decreases (weakly) from F3 to F5 for the q-gram predicates.
	idx := map[string]int{}
	for i, d := range r.Datasets {
		idx[d] = i
	}
	for _, name := range []string{"Jaccard", "BM25", "Cosine"} {
		f3v := r.Summary[idx["F3"]][name].MAP
		f5v := r.Summary[idx["F5"]][name].MAP
		if f5v > f3v+0.05 {
			t.Errorf("%s: MAP should degrade with error extent (F3 %.3f → F5 %.3f)", name, f3v, f5v)
		}
	}
	var buf bytes.Buffer
	PrintTable56(r, &buf)
	if !strings.Contains(buf.String(), "Table 5.6") {
		t.Fatal("print")
	}
}

func TestFigure51ClassOrdering(t *testing.T) {
	o := tinyOptions()
	r, err := Figure51(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MAP) != 3 {
		t.Fatalf("classes: %v", r.Classes)
	}
	// Accuracy on the Low class dominates the Dirty class for the strong
	// predicates (more errors → harder).
	low, dirtyC := r.MAP[0], r.MAP[2]
	for _, name := range []string{"BM25", "HMM", "Cosine"} {
		if dirtyC[name] > low[name]+0.05 {
			t.Errorf("%s: dirty MAP %.3f should not exceed low MAP %.3f", name, dirtyC[name], low[name])
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 5.1") {
		t.Fatal("print")
	}
}

func TestTable57ThresholdMonotone(t *testing.T) {
	o := tinyOptions()
	r, err := Table57(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.GESJaccard) != 3 || len(r.GESapx) != 3 {
		t.Fatalf("threshold sweep: %+v", r)
	}
	// Higher thresholds prune more relevant records: accuracy must not
	// improve from θ=0.7 to θ=0.9 (paper: .692 → .603).
	if r.GESJaccard[2] > r.GESJaccard[0]+0.03 {
		t.Errorf("GESJaccard accuracy should fall with θ: %v", r.GESJaccard)
	}
	// The unfiltered GES bounds the filtered variants (up to noise).
	if r.GESJaccard[0] > r.GESExact+0.05 {
		t.Errorf("filter should not beat exact GES: %v vs %v", r.GESJaccard[0], r.GESExact)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Table 5.7") {
		t.Fatal("print")
	}
}

func TestQGramSize(t *testing.T) {
	o := tinyOptions()
	r, err := QGramSize(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MAP) != 2 || len(r.MAP[0]) != 4 {
		t.Fatalf("qgram result shape: %+v", r)
	}
	for qi := range r.MAP {
		for pi, v := range r.MAP[qi] {
			if v <= 0 || v > 1 {
				t.Errorf("MAP[%d][%d] = %v out of range", qi, pi, v)
			}
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "5.3.3") {
		t.Fatal("print")
	}
}

func TestFigure52And53(t *testing.T) {
	p := tinyPerf()
	f52, err := Figure52(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f52.Tokenize) != len(f52.Predicates) {
		t.Fatalf("figure 5.2 shape")
	}
	for i := range f52.Predicates {
		if f52.Tokenize[i] < 0 || f52.Weights[i] < 0 {
			t.Fatalf("negative duration for %s", f52.Predicates[i])
		}
	}
	f53, err := Figure53(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range f53.QueryTime {
		if d <= 0 {
			t.Fatalf("query time %v for %s", d, f53.Predicates[i])
		}
	}
	var buf bytes.Buffer
	f52.Print(&buf)
	f53.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 5.2") || !strings.Contains(buf.String(), "Figure 5.3") {
		t.Fatal("print")
	}
}

func TestFigure54GrowsWithSize(t *testing.T) {
	p := tinyPerf()
	r, err := Figure54(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Time) != len(r.Groups) {
		t.Fatalf("figure 5.4 shape")
	}
	for gi := range r.Groups {
		if len(r.Time[gi]) != len(p.Sizes) {
			t.Fatalf("group %s sweep incomplete", r.Groups[gi])
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 5.4") {
		t.Fatal("print")
	}
}

func TestFigure55PruningShape(t *testing.T) {
	ao := tinyOptions()
	ao.Queries = 15
	po := tinyPerf()
	po.Queries = 3
	r, err := Figure55(ao, po)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MAP) != len(r.Rates) || len(r.Time) != len(r.Rates) {
		t.Fatalf("figure 5.5 shape")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 5.5") {
		t.Fatal("print")
	}
}

func TestFigure56Histogram(t *testing.T) {
	// Histogramming only tokenizes, so full paper scale is cheap — and the
	// low-IDF skew the paper reports only emerges at scale.
	o := Defaults()
	r, err := Figure56(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Count) != 10 || r.Total == 0 {
		t.Fatalf("figure 5.6: %+v", r)
	}
	sum := 0
	for _, c := range r.Count {
		sum += c
	}
	if sum != r.Total {
		t.Fatalf("histogram total mismatch: %d vs %d", sum, r.Total)
	}
	// The paper's observation: low-IDF mass dominates. The lowest three
	// bins together should hold a large share of occurrences.
	lowMass := r.Count[0] + r.Count[1] + r.Count[2]
	if lowMass*3 < r.Total {
		t.Errorf("expected heavy low-IDF mass, got %d of %d in lowest 3 bins", lowMass, r.Total)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 5.6") {
		t.Fatal("print")
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	ao := tinyOptions()
	ao.Queries = 10
	po := tinyPerf()
	po.Queries = 2
	po.Sizes = []int{150}
	var buf bytes.Buffer
	if err := RunAll(&buf, ao, po); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 5.1", "Table 5.3", "Table 5.5", "Table 5.6",
		"Table 5.7", "Figure 5.1", "Figure 5.2", "Figure 5.3", "Figure 5.4",
		"Figure 5.5", "Figure 5.6"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("RunAll output missing %s", want)
		}
	}
}
