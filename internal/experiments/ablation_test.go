package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationMinHashK(t *testing.T) {
	o := tinyOptions()
	o.Queries = 20
	r, err := AblationMinHashK(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MAP) != len(r.Ks) || len(r.Preprocess) != len(r.Ks) {
		t.Fatalf("shape: %+v", r)
	}
	// §5.4.1: very small K loses accuracy relative to large K.
	if r.MAP[0] > r.MAP[len(r.MAP)-1]+0.05 {
		t.Errorf("K=1 MAP %.3f should not beat K=20 MAP %.3f", r.MAP[0], r.MAP[len(r.MAP)-1])
	}
	// Large K approaches the exact-Jaccard filter.
	if r.MAP[len(r.MAP)-1] < r.GESJaccard-0.1 {
		t.Errorf("K=20 MAP %.3f too far below GESJaccard %.3f", r.MAP[len(r.MAP)-1], r.GESJaccard)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "min-hash") {
		t.Fatal("print")
	}
}

func TestAblationImplOverhead(t *testing.T) {
	p := tinyPerf()
	r, err := AblationImplOverhead(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Predicates {
		if r.Native[i] <= 0 || r.Declarative[i] <= 0 {
			t.Fatalf("timings must be positive: %+v", r)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "declarative") {
		t.Fatal("print")
	}
}

func TestAblationDistributions(t *testing.T) {
	o := tinyOptions()
	o.Queries = 15
	r, err := AblationDistributions(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MAP) != 3 {
		t.Fatalf("distributions shape: %+v", r)
	}
	// §5.1: the accuracy trend is distribution-stable; BM25 should stay
	// strong under every distribution.
	for di, dist := range r.Distributions {
		for pi, v := range r.MAP[di] {
			if v <= 0 || v > 1 {
				t.Errorf("%s/%s MAP = %v", dist, r.Predicates[pi], v)
			}
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "distribution") {
		t.Fatal("print")
	}
}

func TestAblationQSweep(t *testing.T) {
	o := tinyOptions()
	o.Queries = 15
	r, err := AblationQSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MAP) != 4 {
		t.Fatalf("q sweep shape: %+v", r)
	}
	// q=2 should beat q=4 for the gram predicates (§5.3.3 trend).
	for pi, name := range r.Predicates {
		if r.MAP[3][pi] > r.MAP[1][pi]+0.05 {
			t.Errorf("%s: q=4 MAP %.3f should not beat q=2 MAP %.3f", name, r.MAP[3][pi], r.MAP[1][pi])
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "MAP vs q") {
		t.Fatal("print")
	}
}
