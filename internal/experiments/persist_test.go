package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunPersistSmall runs the persistence benchmark at a tiny scale: the
// differential must hold, the replay load must reach the WAL tail's epoch
// (RunPersist errors otherwise), and the artifact must round-trip.
func TestRunPersistSmall(t *testing.T) {
	r, err := RunPersist(PersistOptions{Records: 200, Loads: 2, WALEntries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !r.DifferentialOK {
		t.Fatal("restored corpus diverged from the built one")
	}
	if r.ColdBuildNS <= 0 || r.SnapshotLoadNS <= 0 || r.ReplayLoadNS <= 0 {
		t.Fatalf("timings must be positive: %+v", r)
	}
	if r.SegmentBytes <= 0 {
		t.Fatalf("segment size not measured: %+v", r)
	}
	if r.WALEntries != 5 {
		t.Fatalf("wal entries: %d", r.WALEntries)
	}

	dir := t.TempDir()
	if err := r.WriteJSON(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_persist.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back PersistReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Fatalf("artifact round trip: %+v vs %+v", back, r)
	}

	var buf bytes.Buffer
	r.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("snapshot load")) {
		t.Fatalf("summary missing: %s", buf.String())
	}
}
