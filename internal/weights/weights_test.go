package weights

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func testCorpus() *Corpus {
	return Build([][]string{
		{"a", "b", "b"},
		{"a", "c"},
		{"d"},
		{"a", "b", "c", "d"},
	})
}

func TestCorpusStats(t *testing.T) {
	c := testCorpus()
	if c.NumRecords() != 4 {
		t.Errorf("N = %d", c.NumRecords())
	}
	if c.DF("a") != 3 || c.DF("b") != 2 || c.DF("d") != 2 || c.DF("zz") != 0 {
		t.Errorf("df: a=%d b=%d d=%d", c.DF("a"), c.DF("b"), c.DF("d"))
	}
	if c.CF("b") != 3 {
		t.Errorf("cf(b) = %d", c.CF("b"))
	}
	if c.CS() != 10 {
		t.Errorf("cs = %d", c.CS())
	}
	if !approx(c.AvgDL(), 2.5) {
		t.Errorf("avgdl = %v", c.AvgDL())
	}
	if c.Tokens() != 4 {
		t.Errorf("tokens = %d", c.Tokens())
	}
	if !c.Known("a") || c.Known("zz") {
		t.Error("Known")
	}
}

func TestIDF(t *testing.T) {
	c := testCorpus()
	if !approx(c.IDF("a"), math.Log(4)-math.Log(3)) {
		t.Errorf("idf(a) = %v", c.IDF("a"))
	}
	// Unseen tokens get the average idf.
	want := (c.IDF("a") + c.IDF("b") + c.IDF("c") + c.IDF("d")) / 4
	if !approx(c.IDF("zz"), want) || !approx(c.AvgIDF(), want) {
		t.Errorf("unseen idf = %v, want %v", c.IDF("zz"), want)
	}
}

func TestRSWeight(t *testing.T) {
	c := testCorpus()
	// w(1)(a) = log((4-3+0.5)/(3+0.5)) = log(1.5/3.5) < 0 — frequent token.
	if got := c.RS("a"); !approx(got, math.Log(1.5)-math.Log(3.5)) {
		t.Errorf("RS(a) = %v", got)
	}
	if got := c.RS("d"); !approx(got, math.Log(2.5)-math.Log(2.5)) {
		t.Errorf("RS(d) = %v", got)
	}
	// Rare tokens weigh more than frequent ones.
	if c.RS("d") <= c.RS("a") {
		t.Error("RS should be decreasing in df")
	}
}

func TestPavg(t *testing.T) {
	c := testCorpus()
	// b: in doc0 pml=2/3, in doc3 pml=1/4; pavg = (2/3+1/4)/2
	if got := c.Pavg("b"); !approx(got, (2.0/3.0+0.25)/2) {
		t.Errorf("pavg(b) = %v", got)
	}
	if c.Pavg("zz") != 0 {
		t.Error("pavg of unseen should be 0")
	}
}

func TestCFCS(t *testing.T) {
	c := testCorpus()
	if !approx(c.CFCS("b"), 0.3) {
		t.Errorf("cfcs(b) = %v", c.CFCS("b"))
	}
	empty := Build(nil)
	if empty.CFCS("x") != 0 {
		t.Error("cfcs on empty corpus")
	}
}

func TestTFIDFNormalized(t *testing.T) {
	c := testCorpus()
	w := c.TFIDF(map[string]int{"a": 1, "b": 2})
	// The weight vector must have unit L2 norm.
	norm := 0.0
	for _, v := range w {
		norm += v * v
	}
	if !approx(norm, 1) {
		t.Errorf("tf-idf norm = %v", norm)
	}
	// Unknown tokens are excluded.
	w2 := c.TFIDF(map[string]int{"a": 1, "zz": 5})
	if _, ok := w2["zz"]; ok {
		t.Error("unknown token should be dropped")
	}
	// All-unknown record yields empty weights.
	if len(c.TFIDF(map[string]int{"zz": 1})) != 0 {
		t.Error("all-unknown record should have no weights")
	}
}

func TestTFIDFProportionalToTF(t *testing.T) {
	c := testCorpus()
	w1 := c.TFIDF(map[string]int{"a": 1, "d": 1})
	w2 := c.TFIDF(map[string]int{"a": 2, "d": 1})
	// Raising tf(a) raises a's relative weight.
	if !(w2["a"]/w2["d"] > w1["a"]/w1["d"]) {
		t.Error("tf-idf should grow with tf")
	}
}

func TestBM25DocWeights(t *testing.T) {
	c := testCorpus()
	p := DefaultBM25()
	counts := map[string]int{"a": 1, "b": 2}
	w := c.BM25Doc(counts, 3, p)
	kd := p.K1 * ((1 - p.B) + p.B*3/c.AvgDL())
	wantA := c.RS("a") * (p.K1 + 1) * 1 / (kd + 1)
	if !approx(w["a"], wantA) {
		t.Errorf("bm25 w(a) = %v, want %v", w["a"], wantA)
	}
	wantB := c.RS("b") * (p.K1 + 1) * 2 / (kd + 2)
	if !approx(w["b"], wantB) {
		t.Errorf("bm25 w(b) = %v, want %v", w["b"], wantB)
	}
}

func TestBM25Query(t *testing.T) {
	p := DefaultBM25()
	if !approx(BM25Query(1, p), (8.0+1)/(8.0+1)) {
		t.Errorf("BM25Query(1) = %v", BM25Query(1, p))
	}
	// Saturates with tf.
	if !(BM25Query(10, p) > BM25Query(1, p)) || BM25Query(10, p) > p.K3+1 {
		t.Error("BM25 query weight should increase and saturate")
	}
}

func TestDefaultBM25MatchesPaper(t *testing.T) {
	p := DefaultBM25()
	if p.K1 != 1.5 || p.K3 != 8 || p.B != 0.675 {
		t.Errorf("paper settings: %+v", p)
	}
}

func TestLMRecord(t *testing.T) {
	c := testCorpus()
	counts := map[string]int{"a": 1, "b": 2}
	rec := c.LM(counts, 3)
	// p̂ must be a probability in (0, 1) for in-record tokens.
	for tok, pm := range rec.PM {
		if pm <= 0 || pm >= 1 {
			t.Errorf("pm(%s) = %v out of (0,1)", tok, pm)
		}
	}
	// SumCompLog = Σ log(1-pm).
	want := 0.0
	for _, pm := range rec.PM {
		want += math.Log(1 - pm)
	}
	if !approx(rec.SumCompLog, want) {
		t.Errorf("SumCompLog = %v, want %v", rec.SumCompLog, want)
	}
	// pm is a risk-weighted geometric mean of pml and pavg, so it lies
	// between them.
	pmlA, pavgA := 1.0/3.0, c.Pavg("a")
	lo, hi := math.Min(pmlA, pavgA), math.Max(pmlA, pavgA)
	if rec.PM["a"] < lo-1e-12 || rec.PM["a"] > hi+1e-12 {
		t.Errorf("pm(a)=%v outside [%v,%v]", rec.PM["a"], lo, hi)
	}
	// Zero-length record.
	if got := c.LM(nil, 0); len(got.PM) != 0 || got.SumCompLog != 0 {
		t.Errorf("LM on empty record: %+v", got)
	}
}

func TestHMMWeights(t *testing.T) {
	c := testCorpus()
	w := c.HMM(map[string]int{"a": 1, "d": 1}, 2, 0.2)
	// weight = 1 + 0.8·(tf/dl) / (0.2·cf/cs)
	wantA := 1 + 0.8*(0.5)/(0.2*c.CFCS("a"))
	if !approx(w["a"], wantA) {
		t.Errorf("hmm w(a) = %v, want %v", w["a"], wantA)
	}
	// All weights exceed 1, so matching any token increases the score.
	for tok, v := range w {
		if v <= 1 {
			t.Errorf("hmm weight(%s) = %v, want > 1", tok, v)
		}
	}
	if got := c.HMM(nil, 0, 0.2); len(got) != 0 {
		t.Errorf("HMM on empty record: %v", got)
	}
}

func TestHMMRareTokensWeighMore(t *testing.T) {
	c := testCorpus()
	w := c.HMM(map[string]int{"a": 1, "d": 1}, 2, 0.2)
	// 'd' (cf=2) is rarer than 'a' (cf=3): same tf ⇒ higher weight.
	if !(w["d"] > w["a"]) {
		t.Errorf("rare token should weigh more: d=%v a=%v", w["d"], w["a"])
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	c := Build(nil)
	if c.NumRecords() != 0 || c.CS() != 0 || c.AvgDL() != 0 || c.AvgIDF() != 0 {
		t.Errorf("empty corpus stats: %+v", c)
	}
}

func TestPropertyPMBetweenBounds(t *testing.T) {
	c := testCorpus()
	f := func(tfRaw uint8, dlRaw uint8) bool {
		tf := int(tfRaw%5) + 1
		dl := tf + int(dlRaw%10)
		rec := c.LM(map[string]int{"a": tf}, dl)
		pm := rec.PM["a"]
		return pm > 0 && pm < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRSMonotoneInDF(t *testing.T) {
	// Build corpora of growing df for a probe token; RS must decrease.
	prev := math.Inf(1)
	for df := 1; df <= 8; df++ {
		docs := make([][]string, 10)
		for i := range docs {
			docs[i] = []string{"filler"}
		}
		for i := 0; i < df; i++ {
			docs[i] = append(docs[i], "probe")
		}
		c := Build(docs)
		rs := c.RS("probe")
		if rs >= prev {
			t.Fatalf("RS not decreasing at df=%d: %v >= %v", df, rs, prev)
		}
		prev = rs
	}
}
