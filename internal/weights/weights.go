// Package weights implements the token weighting schemes of the paper's
// framework chapter: idf and Robertson–Sparck Jones weights for the weighted
// overlap predicates (§3.1, §5.3.1), normalized tf-idf (§3.2.1), BM25
// (§3.2.2), the Ponte–Croft language model quantities (§3.3.1) and the
// two-state HMM weights (§3.3.2).
//
// A Corpus summarizes a tokenized base relation; the per-record weight
// functions mirror, term for term, the SQL preprocessing of Appendix B.
package weights

import (
	"fmt"
	"math"
	"sort"
)

// Corpus holds the collection statistics of a tokenized base relation.
type Corpus struct {
	n      int            // number of records
	df     map[string]int // records containing each token
	cf     map[string]int // total occurrences of each token
	cs     int            // total number of tokens in the collection
	sumPML map[string]float64
	avgdl  float64
	avgIDF float64
}

// Build computes corpus statistics from one token multiset per record.
func Build(docs [][]string) *Corpus {
	counts := make([]map[string]int, len(docs))
	dls := make([]int, len(docs))
	for i, doc := range docs {
		m := make(map[string]int, len(doc))
		for _, t := range doc {
			m[t]++
		}
		counts[i] = m
		dls[i] = len(doc)
	}
	return BuildFromCounts(counts, dls)
}

// BuildFromCounts computes corpus statistics from per-record token
// frequency maps and multiset sizes. It is the maintenance path of the
// shared corpus: after an insert or delete the statistics are recomputed
// from the cached per-record counts without re-tokenizing any string, and
// the result is bit-identical to Build over the same token multisets.
func BuildFromCounts(counts []map[string]int, dls []int) *Corpus {
	c := &Corpus{
		df:     make(map[string]int),
		cf:     make(map[string]int),
		sumPML: make(map[string]float64),
	}
	c.n = len(counts)
	totalDL := 0
	for i, m := range counts {
		dl := dls[i]
		totalDL += dl
		c.cs += dl
		for t, tf := range m {
			c.df[t]++
			c.cf[t] += tf
			if dl > 0 {
				c.sumPML[t] += float64(tf) / float64(dl)
			}
		}
	}
	if c.n > 0 {
		c.avgdl = float64(totalDL) / float64(c.n)
	}
	if len(c.df) > 0 {
		// Sorted iteration keeps the average bit-deterministic across runs.
		sum := 0.0
		for _, t := range c.SortedTokens() {
			sum += c.idfKnown(t)
		}
		c.avgIDF = sum / float64(len(c.df))
	}
	return c
}

// SortedTokens returns every distinct token of the base relation in sorted
// order — the canonical iteration order used wherever floating-point sums
// must be bit-deterministic.
func (c *Corpus) SortedTokens() []string {
	tokens := make([]string, 0, len(c.df))
	for t := range c.df {
		tokens = append(tokens, t)
	}
	sort.Strings(tokens)
	return tokens
}

// NumRecords returns N, the number of records in the base relation.
func (c *Corpus) NumRecords() int { return c.n }

// DF returns the document frequency of a token (records containing it).
func (c *Corpus) DF(token string) int { return c.df[token] }

// CF returns the collection frequency of a token (total occurrences).
func (c *Corpus) CF(token string) int { return c.cf[token] }

// CS returns the raw collection size: the total number of tokens.
func (c *Corpus) CS() int { return c.cs }

// AvgDL returns the average number of tokens per record.
func (c *Corpus) AvgDL() float64 { return c.avgdl }

// Known reports whether the token occurs anywhere in the base relation.
func (c *Corpus) Known(token string) bool { return c.df[token] > 0 }

// Tokens returns the number of distinct tokens in the corpus.
func (c *Corpus) Tokens() int { return len(c.df) }

func (c *Corpus) idfKnown(token string) float64 {
	return math.Log(float64(c.n)) - math.Log(float64(c.df[token]))
}

// IDF returns the inverse document frequency weight used by the tf-idf and
// combination predicates: log(N) − log(df). Tokens absent from the base
// relation receive the average idf over all known tokens, the paper's
// convention for unseen query tokens (§4.5).
func (c *Corpus) IDF(token string) float64 {
	if c.df[token] == 0 {
		return c.avgIDF
	}
	return c.idfKnown(token)
}

// AvgIDF returns the mean idf over all tokens of the base relation, the
// weight assigned to unseen query tokens.
func (c *Corpus) AvgIDF() float64 { return c.avgIDF }

// RS returns the modified Robertson–Sparck Jones weight of Eq. 3.5:
//
//	w(1)(t) = log((N − n_t + 0.5) / (n_t + 0.5))
//
// This is the weighting scheme the paper selects for the weighted overlap
// predicates (§5.3.1) and the idf part of BM25. It can be negative for
// tokens occurring in more than half the records.
func (c *Corpus) RS(token string) float64 {
	nt := float64(c.df[token])
	n := float64(c.n)
	return math.Log(n-nt+0.5) - math.Log(nt+0.5)
}

// Pavg returns the mean probability of the token in the records containing
// it (Eq. 3.8); zero for unseen tokens.
func (c *Corpus) Pavg(token string) float64 {
	df := c.df[token]
	if df == 0 {
		return 0
	}
	return c.sumPML[token] / float64(df)
}

// CFCS returns cf_t/cs, the background probability of a token (Eq. 3.7's
// "otherwise" branch); zero when the collection is empty.
func (c *Corpus) CFCS(token string) float64 {
	if c.cs == 0 {
		return 0
	}
	return float64(c.cf[token]) / float64(c.cs)
}

// TFIDF computes the normalized tf-idf weights of one record (§3.2.1):
//
//	w(t, S) = tf(t,S)·idf(t) / sqrt(Σ_t' (tf(t',S)·idf(t'))²)
//
// Only tokens known to the corpus participate, mirroring the SQL join with
// BASE_IDF; unknown tokens would otherwise distort the norm relative to the
// declarative realization.
func (c *Corpus) TFIDF(counts map[string]int) map[string]float64 {
	// Iterate tokens in sorted order so the float norm (and therefore every
	// weight) is bit-identical across calls regardless of map order.
	tokens := make([]string, 0, len(counts))
	for t := range counts {
		if c.Known(t) {
			tokens = append(tokens, t)
		}
	}
	sort.Strings(tokens)
	norm := 0.0
	for _, t := range tokens {
		w := float64(counts[t]) * c.idfKnown(t)
		norm += w * w
	}
	out := make(map[string]float64, len(tokens))
	if norm == 0 {
		return out
	}
	norm = math.Sqrt(norm)
	for _, t := range tokens {
		out[t] = float64(counts[t]) * c.idfKnown(t) / norm
	}
	return out
}

// ---- persistence ----

// StatsData is the flat, rank-indexed form of a Corpus used by the
// persistence layer: every map keyed by position in the sorted token order
// (the same order SortedTokens returns), so a statistics table serializes
// as three arrays instead of string-keyed maps.
type StatsData struct {
	N      int
	CS     int
	AvgDL  float64
	AvgIDF float64
	DF     []int64
	CF     []int64
	SumPML []float64
}

// Export flattens the corpus statistics over the given token order, which
// must be exactly SortedTokens() of this corpus.
func (c *Corpus) Export(tokens []string) StatsData {
	d := StatsData{
		N:      c.n,
		CS:     c.cs,
		AvgDL:  c.avgdl,
		AvgIDF: c.avgIDF,
		DF:     make([]int64, len(tokens)),
		CF:     make([]int64, len(tokens)),
		SumPML: make([]float64, len(tokens)),
	}
	for i, t := range tokens {
		d.DF[i] = int64(c.df[t])
		d.CF[i] = int64(c.cf[t])
		d.SumPML[i] = c.sumPML[t]
	}
	return d
}

// FromData rebuilds a Corpus from its flat form. The scalar statistics
// (including the float averages) are restored bit-exactly from the data
// rather than recomputed, so a restored corpus answers every weight lookup
// with the same bits as the corpus Export flattened.
func FromData(tokens []string, d StatsData) (*Corpus, error) {
	if len(d.DF) != len(tokens) || len(d.CF) != len(tokens) || len(d.SumPML) != len(tokens) {
		return nil, fmt.Errorf("weights: stats arrays (%d/%d/%d entries) do not match %d tokens",
			len(d.DF), len(d.CF), len(d.SumPML), len(tokens))
	}
	c := &Corpus{
		n:      d.N,
		cs:     d.CS,
		avgdl:  d.AvgDL,
		avgIDF: d.AvgIDF,
		df:     make(map[string]int, len(tokens)),
		cf:     make(map[string]int, len(tokens)),
		sumPML: make(map[string]float64, len(tokens)),
	}
	for i, t := range tokens {
		c.df[t] = int(d.DF[i])
		c.cf[t] = int(d.CF[i])
		c.sumPML[t] = d.SumPML[i]
	}
	return c, nil
}

// BM25Params are the free parameters of the BM25 predicate. The paper sets
// k1=1.5, k3=8 and b=0.675 (§5.3.2, mid-range of the TREC-4 settings).
type BM25Params struct {
	K1 float64
	K3 float64
	B  float64
}

// DefaultBM25 returns the paper's parameter settings.
func DefaultBM25() BM25Params { return BM25Params{K1: 1.5, K3: 8, B: 0.675} }

// BM25Doc computes the record-side BM25 weights w_d(t, D) of Eq. 3.4 for a
// record with token counts and total length dl:
//
//	w_d(t,D) = w(1)(t) · (k1+1)·tf / (K(D) + tf)
//	K(D)     = k1·((1−b) + b·|D|/avgdl)
func (c *Corpus) BM25Doc(counts map[string]int, dl int, p BM25Params) map[string]float64 {
	kd := p.K1 * ((1 - p.B) + p.B*float64(dl)/c.avgdl)
	out := make(map[string]float64, len(counts))
	for t, tf := range counts {
		tff := float64(tf)
		out[t] = c.RS(t) * (p.K1 + 1) * tff / (kd + tff)
	}
	return out
}

// BM25Query computes the query-side weight w_q(t, Q) = (k3+1)·tf/(k3+tf).
func BM25Query(tf int, p BM25Params) float64 {
	tff := float64(tf)
	return (p.K3 + 1) * tff / (p.K3 + tff)
}

// LMRecord holds the language-model quantities of one record (§3.3.1): the
// smoothed probability p̂(t|M_D) for each token of the record, and
// Σ_{t∈D} log(1 − p̂(t|M_D)), the term the declarative realization stores in
// BASE_SUMCOMPMBASE.
type LMRecord struct {
	PM         map[string]float64
	SumCompLog float64
}

// LM computes the language-model record quantities:
//
//	p̂(t|M_D) = p̂_ml(t,D)^(1−R̂) · p̂_avg(t)^R̂    for tf(t,D) > 0
//	R̂_t,D    = 1/(1+f̄) · (f̄/(1+f̄))^tf,  f̄ = p̂_avg(t)·dl_D
func (c *Corpus) LM(counts map[string]int, dl int) LMRecord {
	rec := LMRecord{PM: make(map[string]float64, len(counts))}
	if dl == 0 {
		return rec
	}
	// SumCompLog accumulates floats; sorted iteration keeps it
	// bit-deterministic, so incremental corpus maintenance reproduces a
	// fresh build exactly.
	tokens := make([]string, 0, len(counts))
	for t := range counts {
		tokens = append(tokens, t)
	}
	sort.Strings(tokens)
	for _, t := range tokens {
		tf := counts[t]
		pml := float64(tf) / float64(dl)
		pavg := c.Pavg(t)
		fbar := pavg * float64(dl)
		risk := (1.0 / (1.0 + fbar)) * math.Pow(fbar/(1.0+fbar), float64(tf))
		pm := math.Pow(pml, 1.0-risk) * math.Pow(pavg, risk)
		// A token that always occurs alone yields pm = 1 and an infinite
		// log(1−pm); clamp just below 1 so degenerate single-token records
		// stay rankable.
		if pm > 1-1e-12 {
			pm = 1 - 1e-12
		}
		rec.PM[t] = pm
		rec.SumCompLog += math.Log(1.0 - pm)
	}
	return rec
}

// HMM computes the per-token weights of the rewritten two-state HMM score
// (Eq. 4.6): weight(t) = 1 + a1·P(t|D) / (a0·P(t|GE)), with P(t|D) the
// maximum-likelihood estimate tf/dl and P(t|GE) = cf/cs. The similarity is
// the product over matched query tokens of these weights.
func (c *Corpus) HMM(counts map[string]int, dl int, a0 float64) map[string]float64 {
	a1 := 1 - a0
	out := make(map[string]float64, len(counts))
	if dl == 0 {
		return out
	}
	for t, tf := range counts {
		ptge := c.CFCS(t)
		if ptge == 0 {
			continue
		}
		pml := float64(tf) / float64(dl)
		out[t] = 1 + a1*pml/(a0*ptge)
	}
	return out
}
