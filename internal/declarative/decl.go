// Package declarative implements every benchmark predicate as SQL executed
// by the sqldb engine, following the statements of the thesis appendices
// (A: data preparation, B: per-predicate preprocessing and query SQL). It is
// the paper's contribution — approximate selections realized purely with
// declarative statements plus the UDFs the paper itself assumes (edit
// similarity, Jaro–Winkler, min-hash values).
//
// Every predicate here is differentially tested against its in-memory twin
// in package native: scores must agree to floating-point re-association.
package declarative

import (
	"fmt"
	"strings"
	"time"
	"unicode"

	"repro/internal/core"
	"repro/internal/sqldb"
)

// base carries the machinery shared by all declarative predicates: the
// database holding the relations, the configuration, and preprocessing
// phase timings.
type base struct {
	phases
	db  *sqldb.DB
	cfg core.Config
}

// normalize collapses whitespace runs to single spaces, mirroring the
// tokenizer contract of the native implementations. The SQL of Appendix A
// assumes single-space-separated strings.
func normalize(s string) string {
	return strings.Join(strings.FieldsFunc(s, unicode.IsSpace), " ")
}

// pad returns the q-gram pad sequence of q−1 '$' characters.
func pad(q int) string {
	if q <= 1 {
		return ""
	}
	return strings.Repeat("$", q-1)
}

// newBase loads the base relation and the INTEGERS helper table used by the
// Appendix A tokenization statements.
func newBase(records []core.Record, cfg core.Config) (*base, error) {
	if cfg.Q < 1 || cfg.WordQ < 1 {
		return nil, fmt.Errorf("declarative: q-gram sizes must be ≥ 1")
	}
	db := sqldb.New()
	if _, err := db.Exec("CREATE TABLE base_table (tid INT, string VARCHAR(255))"); err != nil {
		return nil, err
	}
	maxLen := 0
	rows := make([][]sqldb.Value, 0, len(records))
	seen := make(map[int]bool, len(records))
	for _, r := range records {
		if seen[r.TID] {
			return nil, fmt.Errorf("declarative: duplicate TID %d", r.TID)
		}
		seen[r.TID] = true
		text := normalize(r.Text)
		if n := len([]rune(text)); n > maxLen {
			maxLen = n
		}
		rows = append(rows, []sqldb.Value{sqldb.Int(int64(r.TID)), sqldb.String(text)})
	}
	if err := db.BulkInsert("base_table", rows); err != nil {
		return nil, err
	}
	if _, err := db.Exec("CREATE TABLE integers (i INT)"); err != nil {
		return nil, err
	}
	// Enough positions to cover padded, space-expanded strings.
	limit := (maxLen+2)*maxInt(cfg.Q, cfg.WordQ) + 4
	ints := make([][]sqldb.Value, 0, limit)
	for i := 1; i <= limit; i++ {
		ints = append(ints, []sqldb.Value{sqldb.Int(int64(i))})
	}
	if err := db.BulkInsert("integers", ints); err != nil {
		return nil, err
	}
	if _, err := db.Exec("CREATE TABLE query_table (string VARCHAR(255))"); err != nil {
		return nil, err
	}
	return &base{db: db, cfg: cfg}, nil
}

// exec runs a statement, failing loudly on error (used for preprocessing).
func (b *base) exec(sql string, args ...sqldb.Value) error {
	if _, err := b.db.Exec(sql, args...); err != nil {
		return fmt.Errorf("declarative: %w", err)
	}
	return nil
}

// qgramSQL tokenizes src(tid, string) into dst(tid, token) with the
// INTEGERS join of Appendix A.1.
func (b *base) qgramSQL(src, dst string, q int) error {
	p := pad(q)
	return b.exec(fmt.Sprintf(`
		INSERT INTO %s (tid, token)
		SELECT B.tid,
		       SUBSTRING(CONCAT(?, UPPER(REPLACE(B.string, ' ', ?)), ?), N.i, ?)
		FROM integers N INNER JOIN %s B
		  ON N.i <= LENGTH(REPLACE(B.string, ' ', ?)) + ?`, dst, src),
		sqldb.String(p), sqldb.String(p), sqldb.String(p), sqldb.Int(int64(q)),
		sqldb.String(p), sqldb.Int(int64(q-1)))
}

// wordSQL tokenizes src(tid, string) into dst(tid, token) word tokens with
// the LOCATE joins of Appendix A.2 (upper-cased, as the combination
// predicates compare words case-insensitively).
func (b *base) wordSQL(src, dst string) error {
	return b.exec(fmt.Sprintf(`
		INSERT INTO %[1]s (tid, token)
		SELECT tid, UPPER(SUBSTRING(string, 1, LOCATE(' ', string) - 1))
		FROM %[2]s WHERE LOCATE(' ', string) > 0
		UNION ALL
		SELECT B.tid, UPPER(SUBSTRING(B.string, N1.i + 1, N2.i - N1.i - 1))
		FROM %[2]s B, integers N1, integers N2
		WHERE N1.i = LOCATE(' ', B.string, N1.i)
		  AND N2.i = LOCATE(' ', B.string, N1.i + 1)
		UNION ALL
		SELECT tid, UPPER(SUBSTRING(string, LENGTH(string) - LOCATE(' ', REVERSE(string)) + 2))
		FROM %[2]s WHERE LOCATE(' ', string) > 0
		UNION ALL
		SELECT tid, UPPER(string)
		FROM %[2]s WHERE LOCATE(' ', string) = 0 AND LENGTH(string) > 0`, dst, src))
}

// setQuery replaces the query string tables: query_table holds the
// normalized query, query_tokens its q-gram multiset (tokenized in SQL with
// the same Appendix A.1 statement, tid-less).
func (b *base) setQuery(query string, q int) error {
	if err := b.exec("DELETE FROM query_table"); err != nil {
		return err
	}
	if err := b.exec("INSERT INTO query_table (string) VALUES (?)", sqldb.String(normalize(query))); err != nil {
		return err
	}
	if err := b.exec("DELETE FROM query_tokens"); err != nil {
		return err
	}
	p := pad(q)
	return b.exec(`
		INSERT INTO query_tokens (token)
		SELECT SUBSTRING(CONCAT(?, UPPER(REPLACE(B.string, ' ', ?)), ?), N.i, ?)
		FROM integers N INNER JOIN query_table B
		  ON N.i <= LENGTH(REPLACE(B.string, ' ', ?)) + ?`,
		sqldb.String(p), sqldb.String(p), sqldb.String(p), sqldb.Int(int64(q)),
		sqldb.String(p), sqldb.Int(int64(q-1)))
}

// setQueryWords replaces query_words with the word tokens of the query.
func (b *base) setQueryWords(query string) error {
	if err := b.exec("DELETE FROM query_table"); err != nil {
		return err
	}
	if err := b.exec("INSERT INTO query_table (string) VALUES (?)", sqldb.String(normalize(query))); err != nil {
		return err
	}
	if err := b.exec("DELETE FROM query_words"); err != nil {
		return err
	}
	// tid-less variant of wordSQL over the single-row query_table.
	return b.exec(`
		INSERT INTO query_words (token)
		SELECT UPPER(SUBSTRING(string, 1, LOCATE(' ', string) - 1))
		FROM query_table WHERE LOCATE(' ', string) > 0
		UNION ALL
		SELECT UPPER(SUBSTRING(B.string, N1.i + 1, N2.i - N1.i - 1))
		FROM query_table B, integers N1, integers N2
		WHERE N1.i = LOCATE(' ', B.string, N1.i)
		  AND N2.i = LOCATE(' ', B.string, N1.i + 1)
		UNION ALL
		SELECT UPPER(SUBSTRING(string, LENGTH(string) - LOCATE(' ', REVERSE(string)) + 2))
		FROM query_table WHERE LOCATE(' ', string) > 0
		UNION ALL
		SELECT UPPER(string)
		FROM query_table WHERE LOCATE(' ', string) = 0 AND LENGTH(string) > 0`)
}

// matches reads a (tid, score) result set into the Select contract.
// NULL scores (division by a zero denominator, as MySQL produces for
// degenerate weight sums) are dropped, matching the native realizations.
func matches(rows *sqldb.Rows) []core.Match {
	out := make([]core.Match, 0, len(rows.Data))
	for _, r := range rows.Data {
		if r[1].IsNull() {
			continue
		}
		out = append(out, core.Match{TID: int(r[0].AsInt()), Score: r[1].AsFloat()})
	}
	core.SortMatches(out)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// phases mirrors native's preprocessing phase timing.
type phases struct {
	tokDur, wDur time.Duration
}

// PreprocessPhases implements core.Phased.
func (p *phases) PreprocessPhases() (time.Duration, time.Duration) {
	return p.tokDur, p.wDur
}

// pruneSQL applies §5.6 IDF pruning to a token table: tokens with
// idf < min + rate·(max − min) are deleted, entirely in SQL, before any
// weight table is derived.
func (b *base) pruneSQL(tokTable string, rate float64) error {
	if rate <= 0 {
		return nil
	}
	stmts := []string{
		"CREATE TABLE prune_idf (token VARCHAR(16), idf DOUBLE)",
		fmt.Sprintf(`INSERT INTO prune_idf (token, idf)
			SELECT T.token, LOG(SZ.n) - LOG(COUNT(DISTINCT T.tid))
			FROM %s T, (SELECT COUNT(*) AS n FROM base_table) SZ
			GROUP BY T.token, SZ.n`, tokTable),
		"CREATE TABLE prune_bounds (lo DOUBLE, hi DOUBLE)",
		"INSERT INTO prune_bounds (lo, hi) SELECT MIN(idf), MAX(idf) FROM prune_idf",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return err
		}
	}
	err := b.exec(fmt.Sprintf(`DELETE FROM %s WHERE token IN (
			SELECT P.token FROM prune_idf P, prune_bounds B
			WHERE P.idf < B.lo + ? * (B.hi - B.lo))`, tokTable),
		sqldb.Float(rate))
	if err != nil {
		return err
	}
	if err := b.exec("DROP TABLE prune_idf"); err != nil {
		return err
	}
	return b.exec("DROP TABLE prune_bounds")
}

// Build constructs the named declarative predicate. Names match
// core.PredicateNames.
func Build(name string, records []core.Record, cfg core.Config) (core.Predicate, error) {
	switch name {
	case "IntersectSize":
		return NewIntersectSize(records, cfg)
	case "Jaccard":
		return NewJaccard(records, cfg)
	case "WeightedMatch":
		return NewWeightedMatch(records, cfg)
	case "WeightedJaccard":
		return NewWeightedJaccard(records, cfg)
	case "Cosine":
		return NewCosine(records, cfg)
	case "BM25":
		return NewBM25(records, cfg)
	case "LM":
		return NewLM(records, cfg)
	case "HMM":
		return NewHMM(records, cfg)
	case "EditDistance":
		return NewEditDistance(records, cfg)
	case "GES":
		return NewGES(records, cfg)
	case "GESJaccard":
		return NewGESJaccard(records, cfg)
	case "GESapx":
		return NewGESapx(records, cfg)
	case "SoftTFIDF":
		return NewSoftTFIDF(records, cfg)
	default:
		return nil, fmt.Errorf("declarative: unknown predicate %q", name)
	}
}

// Builders is the registration table of the declarative realization: one
// BuilderFunc per benchmark predicate, in terms of which the facade's
// registry resolves New with WithRealization(Declarative).
//
// Declarative predicates share mutable query tables inside their SQL
// database, so they deliberately do not implement core.ConcurrentProber:
// batch probing over them serializes onto a single worker.
func Builders() map[string]core.BuilderFunc {
	out := make(map[string]core.BuilderFunc, len(core.PredicateNames))
	for _, name := range core.PredicateNames {
		out[name] = func(records []core.Record, cfg core.Config) (core.Predicate, error) {
			return Build(name, records, cfg)
		}
	}
	return out
}
