package declarative

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/tokenize"
)

// randomRecords produces a small dirty-ish dataset: base names plus
// perturbed duplicates, the shape the benchmark works on.
func randomRecords(n int, seed int64) []core.Record {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"Morgan", "Stanley", "Group", "Inc", "Incorporated",
		"Beijing", "Hotel", "Labs", "Silicon", "Valley", "Global", "Data",
		"Systems", "Pacific", "Energy", "AT&T", "Widget"}
	perturb := func(s string) string {
		b := []rune(s)
		if len(b) == 0 {
			return s
		}
		switch rng.Intn(4) {
		case 0: // replace a character
			b[rng.Intn(len(b))] = rune('a' + rng.Intn(26))
		case 1: // delete a character
			i := rng.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		case 2: // insert a character
			i := rng.Intn(len(b) + 1)
			b = append(b[:i], append([]rune{rune('a' + rng.Intn(26))}, b[i:]...)...)
		case 3: // swap two adjacent characters
			if len(b) > 1 {
				i := rng.Intn(len(b) - 1)
				b[i], b[i+1] = b[i+1], b[i]
			}
		}
		return string(b)
	}
	var records []core.Record
	for i := 0; i < n; i++ {
		k := 2 + rng.Intn(3)
		var parts []string
		for j := 0; j < k; j++ {
			w := words[rng.Intn(len(words))]
			if rng.Float64() < 0.4 {
				w = perturb(w)
			}
			parts = append(parts, w)
		}
		records = append(records, core.Record{TID: i + 1, Text: strings.Join(parts, " ")})
	}
	return records
}

// scoresByTID converts matches to a map for tolerance-based comparison.
func scoresByTID(ms []core.Match) map[int]float64 {
	out := make(map[int]float64, len(ms))
	for _, m := range ms {
		out[m.TID] = m.Score
	}
	return out
}

// relClose compares scores allowing floating-point re-association noise.
func relClose(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff < 1e-9 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestDifferentialNativeVsDeclarative is the central correctness check of
// the reproduction: for every predicate, the SQL realization must produce
// the same (tid → score) mapping as the in-memory oracle, across a workload
// of clean, dirty and unseen queries.
func TestDifferentialNativeVsDeclarative(t *testing.T) {
	records := randomRecords(60, 42)
	queries := []string{
		records[0].Text,
		records[7].Text,
		"Morgan Stanley Group Inc",
		"Stanley Morgan Incorporated",
		"Beijinj Hotl",
		"zzz qqq",
		"Valley",
	}
	cfg := core.DefaultConfig()
	cfg.GESThreshold = 0.5
	cfg.EditTheta = 0.6

	for _, name := range core.PredicateNames {
		name := name
		t.Run(name, func(t *testing.T) {
			nat, err := native.Build(name, records, cfg)
			if err != nil {
				t.Fatalf("native build: %v", err)
			}
			dec, err := Build(name, records, cfg)
			if err != nil {
				t.Fatalf("declarative build: %v", err)
			}
			for _, q := range queries {
				nm, err := nat.Select(q)
				if err != nil {
					t.Fatalf("native select(%q): %v", q, err)
				}
				dm, err := dec.Select(q)
				if err != nil {
					t.Fatalf("declarative select(%q): %v", q, err)
				}
				ns, ds := scoresByTID(nm), scoresByTID(dm)
				if len(ns) != len(ds) {
					t.Fatalf("query %q: native returned %d records, declarative %d\nnative: %v\ndecl:   %v",
						q, len(ns), len(ds), ns, ds)
				}
				for tid, nscore := range ns {
					dscore, ok := ds[tid]
					if !ok {
						t.Fatalf("query %q: tid %d missing from declarative results", q, tid)
					}
					if !relClose(nscore, dscore) {
						t.Fatalf("query %q tid %d: native score %.15g, declarative %.15g",
							q, tid, nscore, dscore)
					}
				}
			}
		})
	}
}

// TestDifferentialWithPruning repeats the check for the token-based
// predicates with IDF pruning enabled (§5.6), since pruning changes every
// downstream weight table.
func TestDifferentialWithPruning(t *testing.T) {
	records := randomRecords(50, 7)
	queries := []string{records[3].Text, "Morgan Stanley", "Beijing Labs"}
	cfg := core.DefaultConfig()
	cfg.PruneRate = 0.25

	for _, name := range []string{"IntersectSize", "Jaccard", "WeightedMatch",
		"WeightedJaccard", "Cosine", "BM25", "LM", "HMM"} {
		name := name
		t.Run(name, func(t *testing.T) {
			nat, err := native.Build(name, records, cfg)
			if err != nil {
				t.Fatalf("native build: %v", err)
			}
			dec, err := Build(name, records, cfg)
			if err != nil {
				t.Fatalf("declarative build: %v", err)
			}
			for _, q := range queries {
				nm, _ := nat.Select(q)
				dm, err := dec.Select(q)
				if err != nil {
					t.Fatalf("declarative select: %v", err)
				}
				ns, ds := scoresByTID(nm), scoresByTID(dm)
				if len(ns) != len(ds) {
					t.Fatalf("query %q: native %d records, declarative %d", q, len(ns), len(ds))
				}
				for tid, nscore := range ns {
					if !relClose(nscore, ds[tid]) {
						t.Fatalf("query %q tid %d: native %.15g vs declarative %.15g",
							q, tid, nscore, ds[tid])
					}
				}
			}
		})
	}
}

func TestDeclarativeBuildUnknown(t *testing.T) {
	if _, err := Build("NoSuch", nil, core.DefaultConfig()); err == nil {
		t.Fatal("unknown predicate should error")
	}
}

func TestDeclarativeRejectsDuplicateTIDs(t *testing.T) {
	records := []core.Record{{TID: 1, Text: "a"}, {TID: 1, Text: "b"}}
	if _, err := NewJaccard(records, core.DefaultConfig()); err == nil {
		t.Fatal("duplicate TIDs should be rejected")
	}
}

func TestDeclarativePreprocessPhases(t *testing.T) {
	records := randomRecords(10, 3)
	p, err := NewBM25(records, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tok, w := p.PreprocessPhases()
	if tok <= 0 || w <= 0 {
		t.Fatalf("phases should be positive: %v %v", tok, w)
	}
}

func TestWordTokenizationSQLMatchesGo(t *testing.T) {
	// The Appendix A.2 SQL word tokenizer must agree with the Go tokenizer
	// on the word multiset per record.
	records := []core.Record{
		{TID: 1, Text: "Morgan Stanley Group Inc."},
		{TID: 2, Text: "single"},
		{TID: 3, Text: "a b c d e"},
		{TID: 4, Text: "  padded   spaces  "},
	}
	b, err := wordPrep(records, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := b.db.Query("SELECT tid, token FROM base_words ORDER BY tid, token")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int][]string{}
	for _, r := range rows.Data {
		tid := int(r[0].AsInt())
		got[tid] = append(got[tid], r[1].AsString())
	}
	for _, rec := range records {
		var want []string
		for _, w := range strings.Fields(strings.ToUpper(rec.Text)) {
			want = append(want, w)
		}
		gotWords := append([]string{}, got[rec.TID]...)
		if len(gotWords) != len(want) {
			t.Fatalf("tid %d: SQL words %v, want %v", rec.TID, gotWords, want)
		}
		wantSet := map[string]int{}
		for _, w := range want {
			wantSet[w]++
		}
		for _, w := range gotWords {
			wantSet[w]--
		}
		for w, c := range wantSet {
			if c != 0 {
				t.Fatalf("tid %d: word %q count mismatch (SQL %v vs Go %v)", rec.TID, w, gotWords, want)
			}
		}
	}
}

func TestQGramSQLMatchesGo(t *testing.T) {
	records := []core.Record{
		{TID: 1, Text: "db lab"},
		{TID: 2, Text: "AT&T  Inc."},
		{TID: 3, Text: "x"},
	}
	for _, q := range []int{1, 2, 3} {
		cfg := core.DefaultConfig()
		cfg.Q = q
		b, err := multisetPrep(records, cfg)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		rows, err := b.db.Query("SELECT tid, token FROM base_tokens ORDER BY tid, token")
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, r := range rows.Data {
			got[fmt.Sprintf("%d|%s", r[0].AsInt(), r[1].AsString())]++
		}
		want := map[string]int{}
		for _, rec := range records {
			for _, g := range qgramsGo(rec.Text, q) {
				want[fmt.Sprintf("%d|%s", rec.TID, g)]++
			}
		}
		if len(got) != len(want) {
			t.Fatalf("q=%d: SQL grams %v\nGo grams %v", q, got, want)
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("q=%d gram %s: SQL count %d, Go count %d", q, k, got[k], c)
			}
		}
	}
}

// qgramsGo mirrors the Go tokenizer for the comparison.
func qgramsGo(s string, q int) []string {
	return tokenize.QGrams(s, q)
}
