package declarative

import (
	"time"

	"repro/internal/core"
	"repro/internal/sqldb"
)

// The aggregate weighted predicates (Appendix B.2) keep token multisets
// (term frequency matters) and score with the single weighted join of
// Figure 4.3.

// multisetPrep tokenizes into base_tokens (multiset, pruned) and creates
// the query staging table.
func multisetPrep(records []core.Record, cfg core.Config) (*base, error) {
	b, err := newBase(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	if err := b.exec("CREATE TABLE base_tokens (tid INT, token VARCHAR(16))"); err != nil {
		return nil, err
	}
	if err := b.qgramSQL("base_table", "base_tokens", cfg.Q); err != nil {
		return nil, err
	}
	if err := b.pruneSQL("base_tokens", cfg.PruneRate); err != nil {
		return nil, err
	}
	b.tokDur = time.Since(t0)
	if err := b.exec("CREATE TABLE query_tokens (token VARCHAR(16))"); err != nil {
		return nil, err
	}
	return b, nil
}

// Cosine is the declarative tf-idf cosine similarity of Appendix B.2.1.
type Cosine struct{ *base }

// NewCosine builds the idf, tf, length and normalized weight tables.
func NewCosine(records []core.Record, cfg core.Config) (*Cosine, error) {
	b, err := multisetPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stmts := []string{
		"CREATE TABLE base_size (size INT)",
		"INSERT INTO base_size (size) SELECT COUNT(*) FROM base_table",
		"CREATE TABLE base_idf (token VARCHAR(16), idf DOUBLE)",
		`INSERT INTO base_idf (token, idf)
		 SELECT T.token, LOG(S.size) - LOG(COUNT(DISTINCT T.tid))
		 FROM base_tokens T, base_size S GROUP BY T.token, S.size`,
		"CREATE TABLE base_tf (tid INT, token VARCHAR(16), tf INT)",
		`INSERT INTO base_tf (tid, token, tf)
		 SELECT T.tid, T.token, COUNT(*) FROM base_tokens T GROUP BY T.tid, T.token`,
		"CREATE TABLE base_length (tid INT, len DOUBLE)",
		`INSERT INTO base_length (tid, len)
		 SELECT T.tid, SQRT(SUM(I.idf * I.idf * T.tf * T.tf))
		 FROM base_idf I, base_tf T WHERE I.token = T.token GROUP BY T.tid`,
		"CREATE TABLE base_weights (tid INT, token VARCHAR(16), weight DOUBLE)",
		`INSERT INTO base_weights (tid, token, weight)
		 SELECT T.tid, T.token, I.idf * T.tf / L.len
		 FROM base_idf I, base_tf T, base_length L
		 WHERE I.token = T.token AND T.tid = L.tid AND L.len > 0`,
		"CREATE INDEX bw_token ON base_weights (token)",
		"CREATE TABLE query_tf (token VARCHAR(16), tf INT)",
		"CREATE TABLE query_weights (token VARCHAR(16), weight DOUBLE)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	b.wDur = time.Since(t0)
	return &Cosine{base: b}, nil
}

// Name implements core.Predicate.
func (p *Cosine) Name() string { return "Cosine" }

// Select computes normalized query weights on the fly (only tokens known to
// the base relation participate, per the BASE_IDF join) and runs Figure 4.3.
func (p *Cosine) Select(query string) ([]core.Match, error) {
	if err := p.setQuery(query, p.cfg.Q); err != nil {
		return nil, err
	}
	steps := []string{
		"DELETE FROM query_tf",
		`INSERT INTO query_tf (token, tf)
		 SELECT T.token, COUNT(*) FROM query_tokens T GROUP BY T.token`,
		"DELETE FROM query_weights",
		`INSERT INTO query_weights (token, weight)
		 SELECT T.token, I.idf * T.tf / QL.len
		 FROM query_tf T, base_idf I,
		      (SELECT SQRT(SUM(I2.idf * I2.idf * T2.tf * T2.tf)) AS len
		       FROM query_tf T2, base_idf I2 WHERE T2.token = I2.token) QL
		 WHERE T.token = I.token AND QL.len > 0`,
	}
	for _, s := range steps {
		if err := p.exec(s); err != nil {
			return nil, err
		}
	}
	rows, err := p.db.Query(`
		SELECT R1W.tid, SUM(R1W.weight * R2W.weight) AS score
		FROM base_weights R1W, query_weights R2W
		WHERE R1W.token = R2W.token
		GROUP BY R1W.tid`)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}

// BM25 is the declarative BM25 of Appendix B.2.2.
type BM25 struct{ *base }

// NewBM25 builds the modified tf/idf weight tables of Appendix B.2.2.
func NewBM25(records []core.Record, cfg core.Config) (*BM25, error) {
	b, err := multisetPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stmts := []string{
		"CREATE TABLE base_size (size INT)",
		"INSERT INTO base_size (size) SELECT COUNT(*) FROM base_table",
		"CREATE TABLE base_tf (tid INT, token VARCHAR(16), tf INT)",
		`INSERT INTO base_tf (tid, token, tf)
		 SELECT T.tid, T.token, COUNT(*) FROM base_tokens T GROUP BY T.tid, T.token`,
		"CREATE TABLE base_bmidf (token VARCHAR(16), midf DOUBLE)",
		`INSERT INTO base_bmidf (token, midf)
		 SELECT T.token, LOG(S.size - COUNT(T.tid) + 0.5) - LOG(COUNT(T.tid) + 0.5)
		 FROM base_tf T, base_size S GROUP BY T.token, S.size`,
		"CREATE TABLE base_bmlen (tid INT, len INT)",
		`INSERT INTO base_bmlen (tid, len)
		 SELECT T.tid, SUM(T.tf) FROM base_tf T GROUP BY T.tid`,
		"CREATE TABLE base_bmavglen (avglen DOUBLE)",
		"INSERT INTO base_bmavglen (avglen) SELECT AVG(len) FROM base_bmlen",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	k1, bb := sqldb.Float(cfg.BM25K1), sqldb.Float(cfg.BM25B)
	err = b.exec(`
		CREATE TABLE base_modtf (tid INT, token VARCHAR(16), mtf DOUBLE)`)
	if err != nil {
		return nil, err
	}
	err = b.exec(`
		INSERT INTO base_modtf (tid, token, mtf)
		SELECT T.tid, T.token,
		       (T.tf * (? + 1)) / ((((1 - ?) + (? * L.len / A.avglen)) * ?) + T.tf)
		FROM base_bmlen L, base_bmavglen A, base_tf T
		WHERE L.tid = T.tid`, k1, bb, bb, k1)
	if err != nil {
		return nil, err
	}
	stmts = []string{
		"CREATE TABLE base_weights (tid INT, token VARCHAR(16), weight DOUBLE)",
		`INSERT INTO base_weights (tid, token, weight)
		 SELECT T.tid, T.token, T.mtf * I.midf
		 FROM base_modtf T, base_bmidf I WHERE T.token = I.token`,
		"CREATE INDEX bw_token ON base_weights (token)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	b.wDur = time.Since(t0)
	return &BM25{base: b}, nil
}

// Name implements core.Predicate.
func (p *BM25) Name() string { return "BM25" }

// Select computes query-side saturated tf weights on the fly and runs the
// weighted join of Figure 4.3.
func (p *BM25) Select(query string) ([]core.Match, error) {
	if err := p.setQuery(query, p.cfg.Q); err != nil {
		return nil, err
	}
	k3 := sqldb.Float(p.cfg.BM25K3)
	rows, err := p.db.Query(`
		SELECT B.tid, SUM(B.weight * S.mtf) AS score
		FROM base_weights B,
		     (SELECT T.token, COUNT(*) * (? + 1) / (? + COUNT(*)) AS mtf
		      FROM query_tokens T GROUP BY T.token) S
		WHERE B.token = S.token
		GROUP BY B.tid`, k3, k3)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}
