package declarative

import (
	"time"

	"repro/internal/core"
	"repro/internal/sqldb"
)

// LM is the declarative language modeling predicate of Appendix B.3.1: a
// chain of derived relations (tf, dl, pml, pavg, freq, risk, cfcs, pm) ending
// in BASE_PM and BASE_SUMCOMPMBASE, then the Figure 4.4 scoring query.
type LM struct{ *base }

// NewLM builds the language-model preprocessing chain.
func NewLM(records []core.Record, cfg core.Config) (*LM, error) {
	b, err := multisetPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stmts := []string{
		"CREATE TABLE base_tf (tid INT, token VARCHAR(16), tf INT)",
		`INSERT INTO base_tf (tid, token, tf)
		 SELECT T.tid, T.token, COUNT(*) FROM base_tokens T GROUP BY T.tid, T.token`,
		"CREATE TABLE base_dl (tid INT, dl INT)",
		`INSERT INTO base_dl (tid, dl)
		 SELECT T.tid, COUNT(*) FROM base_tokens T GROUP BY T.tid`,
		"CREATE TABLE base_pml (tid INT, token VARCHAR(16), pml DOUBLE)",
		`INSERT INTO base_pml (tid, token, pml)
		 SELECT T.tid, T.token, T.tf / D.dl FROM base_tf T, base_dl D WHERE T.tid = D.tid`,
		"CREATE TABLE base_pavg (token VARCHAR(16), pavg DOUBLE)",
		`INSERT INTO base_pavg (token, pavg)
		 SELECT P.token, AVG(P.pml) FROM base_pml P GROUP BY P.token`,
		"CREATE TABLE base_freq (tid INT, token VARCHAR(16), freq DOUBLE)",
		`INSERT INTO base_freq (tid, token, freq)
		 SELECT T.tid, T.token, P.pavg * D.dl
		 FROM base_tf T, base_pavg P, base_dl D
		 WHERE T.token = P.token AND T.tid = D.tid`,
		"CREATE TABLE base_risk (tid INT, token VARCHAR(16), risk DOUBLE)",
		`INSERT INTO base_risk (tid, token, risk)
		 SELECT T.tid, T.token, (1.0 / (1.0 + Q.freq)) * POWER(Q.freq / (1.0 + Q.freq), T.tf)
		 FROM base_tf T, base_freq Q
		 WHERE T.tid = Q.tid AND T.token = Q.token`,
		"CREATE TABLE base_tsize (size INT)",
		"INSERT INTO base_tsize (size) SELECT COUNT(*) FROM base_tokens",
		"CREATE TABLE base_cfcs (token VARCHAR(16), cfcs DOUBLE)",
		`INSERT INTO base_cfcs (token, cfcs)
		 SELECT T.token, COUNT(*) / S.size FROM base_tokens T, base_tsize S
		 GROUP BY T.token, S.size`,
		"CREATE TABLE base_pm (tid INT, token VARCHAR(16), pm DOUBLE, cfcs DOUBLE)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	// pm is clamped just below 1 (LEAST) so LOG(1−pm) stays finite for
	// degenerate always-alone tokens, matching weights.LM's clamp.
	err = b.exec(`
		INSERT INTO base_pm (tid, token, pm, cfcs)
		SELECT T.tid, T.token,
		       LEAST(POWER(M.pml, 1.0 - R.risk) * POWER(A.pavg, R.risk), ?),
		       C.cfcs
		FROM base_tf T, base_risk R, base_pml M, base_pavg A, base_cfcs C
		WHERE T.tid = R.tid AND T.token = R.token
		  AND T.tid = M.tid AND T.token = M.token
		  AND T.token = A.token AND T.token = C.token`,
		sqldb.Float(1-1e-12))
	if err != nil {
		return nil, err
	}
	stmts = []string{
		"CREATE TABLE base_sumcompm (tid INT, sumcompm DOUBLE)",
		`INSERT INTO base_sumcompm (tid, sumcompm)
		 SELECT P.tid, SUM(LOG(1.0 - P.pm)) FROM base_pm P GROUP BY P.tid`,
		"CREATE INDEX bpm_token ON base_pm (token)",
		"CREATE INDEX bsc_tid ON base_sumcompm (tid)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	b.wDur = time.Since(t0)
	return &LM{base: b}, nil
}

// Name implements core.Predicate.
func (p *LM) Name() string { return "LM" }

// Select runs the Figure 4.4 scoring query: the join term over shared
// tokens plus the stored Σ log(1−pm) per record.
func (p *LM) Select(query string) ([]core.Match, error) {
	if err := p.setQuery(query, p.cfg.Q); err != nil {
		return nil, err
	}
	rows, err := p.db.Query(`
		SELECT B1.tid, EXP(B1.score + B2.sumcompm) AS score
		FROM (SELECT P1.tid AS tid,
		             SUM(LOG(P1.pm)) - SUM(LOG(1.0 - P1.pm)) - SUM(LOG(P1.cfcs)) AS score
		      FROM base_pm P1, query_tokens T2
		      WHERE P1.token = T2.token
		      GROUP BY P1.tid) B1,
		     base_sumcompm B2
		WHERE B1.tid = B2.tid`)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}

// HMM is the declarative two-state HMM predicate of Appendix B.3.2 /
// Figure 4.5: per-(record, token) weights 1 + a1·pml/(a0·ptge) stored at
// preprocessing, and EXP(SUM(LOG(weight))) at query time.
type HMM struct{ *base }

// NewHMM builds the HMM weight table.
func NewHMM(records []core.Record, cfg core.Config) (*HMM, error) {
	b, err := multisetPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stmts := []string{
		"CREATE TABLE base_tf (tid INT, token VARCHAR(16), tf INT)",
		`INSERT INTO base_tf (tid, token, tf)
		 SELECT T.tid, T.token, COUNT(*) FROM base_tokens T GROUP BY T.tid, T.token`,
		"CREATE TABLE base_dl (tid INT, dl INT)",
		`INSERT INTO base_dl (tid, dl)
		 SELECT T.tid, COUNT(*) FROM base_tokens T GROUP BY T.tid`,
		"CREATE TABLE base_pml (tid INT, token VARCHAR(16), pml DOUBLE)",
		`INSERT INTO base_pml (tid, token, pml)
		 SELECT T.tid, T.token, T.tf / D.dl FROM base_tf T, base_dl D WHERE T.tid = D.tid`,
		"CREATE TABLE base_sumdl (sdl INT)",
		"INSERT INTO base_sumdl (sdl) SELECT SUM(dl) FROM base_dl",
		"CREATE TABLE base_ptge (token VARCHAR(16), ptge DOUBLE)",
		`INSERT INTO base_ptge (token, ptge)
		 SELECT T.token, SUM(T.tf) / D.sdl FROM base_tf T, base_sumdl D
		 GROUP BY T.token, D.sdl`,
		"CREATE TABLE base_weights (tid INT, token VARCHAR(16), weight DOUBLE)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	a0 := cfg.HMMA0
	err = b.exec(`
		INSERT INTO base_weights (tid, token, weight)
		SELECT M.tid, M.token, 1 + (? * M.pml) / (? * P.ptge)
		FROM base_ptge P, base_pml M
		WHERE P.token = M.token`,
		sqldb.Float(1-a0), sqldb.Float(a0))
	if err != nil {
		return nil, err
	}
	if err := b.exec("CREATE INDEX bw_token ON base_weights (token)"); err != nil {
		return nil, err
	}
	b.wDur = time.Since(t0)
	return &HMM{base: b}, nil
}

// Name implements core.Predicate.
func (p *HMM) Name() string { return "HMM" }

// Select runs the Figure 4.5 scoring query.
func (p *HMM) Select(query string) ([]core.Match, error) {
	if err := p.setQuery(query, p.cfg.Q); err != nil {
		return nil, err
	}
	rows, err := p.db.Query(`
		SELECT W1.tid, EXP(SUM(LOG(W1.weight))) AS score
		FROM base_weights W1, query_tokens T2
		WHERE W1.token = T2.token
		GROUP BY W1.tid`)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}
