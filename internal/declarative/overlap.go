package declarative

import (
	"time"

	"repro/internal/core"
)

// The overlap predicates (Appendix B.1) store distinct token tables for
// base and query (§5.5.1), and score with a single token join.

// overlapPrep runs the shared preprocessing: q-gram tokenization into
// base_tokens_all (multiset, pruned), distinct base_tokens with a token
// index, and the query-side staging tables.
func overlapPrep(records []core.Record, cfg core.Config) (*base, error) {
	b, err := newBase(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stmts := []string{
		"CREATE TABLE base_tokens_all (tid INT, token VARCHAR(16))",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	if err := b.qgramSQL("base_table", "base_tokens_all", cfg.Q); err != nil {
		return nil, err
	}
	if err := b.pruneSQL("base_tokens_all", cfg.PruneRate); err != nil {
		return nil, err
	}
	t1 := time.Now()
	stmts = []string{
		"CREATE TABLE base_tokens (tid INT, token VARCHAR(16))",
		`INSERT INTO base_tokens (tid, token)
		 SELECT T.tid, T.token FROM base_tokens_all T GROUP BY T.tid, T.token`,
		"CREATE INDEX bt_token ON base_tokens (token)",
		"CREATE TABLE query_tokens (token VARCHAR(16))",
		"CREATE TABLE query_tokens_d (token VARCHAR(16))",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	b.tokDur, b.wDur = t1.Sub(t0), time.Since(t1)
	return b, nil
}

// setDistinctQuery tokenizes the query and refreshes the distinct token
// table used by the overlap class.
func (b *base) setDistinctQuery(query string) error {
	if err := b.setQuery(query, b.cfg.Q); err != nil {
		return err
	}
	if err := b.exec("DELETE FROM query_tokens_d"); err != nil {
		return err
	}
	return b.exec(`INSERT INTO query_tokens_d (token)
		SELECT T.token FROM query_tokens T GROUP BY T.token`)
}

// IntersectSize is the declarative realization of Figure 4.1.
type IntersectSize struct{ *base }

// NewIntersectSize preprocesses the base relation per Appendix B.1.1.
func NewIntersectSize(records []core.Record, cfg core.Config) (*IntersectSize, error) {
	b, err := overlapPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	return &IntersectSize{base: b}, nil
}

// Name implements core.Predicate.
func (p *IntersectSize) Name() string { return "IntersectSize" }

// Select runs the Figure 4.1 scoring query.
func (p *IntersectSize) Select(query string) ([]core.Match, error) {
	if err := p.setDistinctQuery(query); err != nil {
		return nil, err
	}
	rows, err := p.db.Query(`
		SELECT R1.tid, COUNT(*) AS score
		FROM base_tokens R1, query_tokens_d R2
		WHERE R1.token = R2.token
		GROUP BY R1.tid`)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}

// Jaccard is the declarative realization of Figure 4.2 / Appendix B.1.2.
type Jaccard struct{ *base }

// NewJaccard preprocesses per Appendix B.1.2, storing per-record distinct
// token counts in base_tokensddl.
func NewJaccard(records []core.Record, cfg core.Config) (*Jaccard, error) {
	b, err := overlapPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stmts := []string{
		"CREATE TABLE base_ddl (tid INT, ddl INT)",
		`INSERT INTO base_ddl (tid, ddl)
		 SELECT T.tid, COUNT(*) FROM base_tokens T GROUP BY T.tid`,
		"CREATE TABLE base_tokensddl (tid INT, token VARCHAR(16), ddl INT)",
		`INSERT INTO base_tokensddl (tid, token, ddl)
		 SELECT T.tid, T.token, D.ddl FROM base_tokens T, base_ddl D WHERE T.tid = D.tid`,
		"CREATE INDEX btd_token ON base_tokensddl (token)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	b.wDur += time.Since(t0)
	return &Jaccard{base: b}, nil
}

// Name implements core.Predicate.
func (p *Jaccard) Name() string { return "Jaccard" }

// Select runs the Figure 4.2 scoring query.
func (p *Jaccard) Select(query string) ([]core.Match, error) {
	if err := p.setDistinctQuery(query); err != nil {
		return nil, err
	}
	rows, err := p.db.Query(`
		SELECT S1.tid, COUNT(*) / (S1.ddl + S2.ddl - COUNT(*)) AS score
		FROM base_tokensddl S1, query_tokens_d R2,
		     (SELECT COUNT(*) AS ddl FROM query_tokens_d) S2
		WHERE S1.token = R2.token
		GROUP BY S1.tid, S1.ddl, S2.ddl`)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}

// weightedOverlapPrep extends overlapPrep with the Robertson–Sparck Jones
// weight tables of Appendix B.1.3 (the weighting scheme §5.3.1 selects).
func weightedOverlapPrep(records []core.Record, cfg core.Config) (*base, error) {
	b, err := overlapPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stmts := []string{
		"CREATE TABLE base_size (size INT)",
		"INSERT INTO base_size (size) SELECT COUNT(*) FROM base_table",
		"CREATE TABLE base_tf (tid INT, token VARCHAR(16), tf INT)",
		`INSERT INTO base_tf (tid, token, tf)
		 SELECT T.tid, T.token, COUNT(*) FROM base_tokens_all T GROUP BY T.tid, T.token`,
		"CREATE TABLE base_bmidf (token VARCHAR(16), midf DOUBLE)",
		`INSERT INTO base_bmidf (token, midf)
		 SELECT T.token, LOG(S.size - COUNT(T.tid) + 0.5) - LOG(COUNT(T.tid) + 0.5)
		 FROM base_tf T, base_size S GROUP BY T.token, S.size`,
		"CREATE TABLE base_weights (tid INT, token VARCHAR(16), weight DOUBLE)",
		`INSERT INTO base_weights (tid, token, weight)
		 SELECT T.tid, T.token, I.midf FROM base_tokens T, base_bmidf I WHERE T.token = I.token`,
		"CREATE INDEX bw_token ON base_weights (token)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	b.wDur += time.Since(t0)
	return b, nil
}

// WeightedMatch is the declarative realization of Appendix B.1.3.
type WeightedMatch struct{ *base }

// NewWeightedMatch preprocesses RS-weighted distinct tokens.
func NewWeightedMatch(records []core.Record, cfg core.Config) (*WeightedMatch, error) {
	b, err := weightedOverlapPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	return &WeightedMatch{base: b}, nil
}

// Name implements core.Predicate.
func (p *WeightedMatch) Name() string { return "WeightedMatch" }

// Select sums the RS weights of shared distinct tokens.
func (p *WeightedMatch) Select(query string) ([]core.Match, error) {
	if err := p.setDistinctQuery(query); err != nil {
		return nil, err
	}
	rows, err := p.db.Query(`
		SELECT W1.tid, SUM(W1.weight) AS score
		FROM base_weights W1, query_tokens_d T2
		WHERE W1.token = T2.token
		GROUP BY W1.tid`)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}

// WeightedJaccard is the declarative realization of Appendix B.1.4, using
// RS weights on both sides per §5.3.1.
type WeightedJaccard struct{ *base }

// NewWeightedJaccard preprocesses RS-weighted tokens plus per-record summed
// weights (base_tokensddl with ddl = Σ weight).
func NewWeightedJaccard(records []core.Record, cfg core.Config) (*WeightedJaccard, error) {
	b, err := weightedOverlapPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	stmts := []string{
		"CREATE TABLE base_ddl (tid INT, ddl DOUBLE)",
		`INSERT INTO base_ddl (tid, ddl)
		 SELECT W.tid, SUM(W.weight) FROM base_weights W GROUP BY W.tid`,
		"CREATE TABLE base_tokensddl (tid INT, token VARCHAR(16), weight DOUBLE, ddl DOUBLE)",
		`INSERT INTO base_tokensddl (tid, token, weight, ddl)
		 SELECT W.tid, W.token, W.weight, D.ddl FROM base_weights W, base_ddl D WHERE W.tid = D.tid`,
		"CREATE INDEX btdw_token ON base_tokensddl (token)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	b.wDur += time.Since(t0)
	return &WeightedJaccard{base: b}, nil
}

// Name implements core.Predicate.
func (p *WeightedJaccard) Name() string { return "WeightedJaccard" }

// Select divides the shared weight by the union weight; query-side token
// weights come from the base relation's RS weight table.
func (p *WeightedJaccard) Select(query string) ([]core.Match, error) {
	if err := p.setDistinctQuery(query); err != nil {
		return nil, err
	}
	rows, err := p.db.Query(`
		SELECT S1.tid, SUM(S1.weight) / (S1.ddl + S2.ddl - SUM(S1.weight)) AS score
		FROM base_tokensddl S1, query_tokens_d R2,
		     (SELECT IFNULL(SUM(I.midf), 0.0) AS ddl
		      FROM base_bmidf I, query_tokens_d T
		      WHERE I.token = T.token) S2
		WHERE S1.token = R2.token
		GROUP BY S1.tid, S1.ddl, S2.ddl`)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}
