package declarative

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/minhash"
	"repro/internal/native"
	"repro/internal/sqldb"
	"repro/internal/strutil"
	"repro/internal/tokenize"
)

// The combination predicates (Appendix B.4) tokenize in two levels — words,
// then q-grams of words — and combine SQL token machinery with the UDFs the
// paper assumes: exact GES scoring and Jaro–Winkler.

// wordPrep creates base_words (word tokens, upper-cased) plus the word-idf
// tables shared by the whole class.
func wordPrep(records []core.Record, cfg core.Config) (*base, error) {
	b, err := newBase(records, cfg)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	if err := b.exec("CREATE TABLE base_words (tid INT, token VARCHAR(64))"); err != nil {
		return nil, err
	}
	if err := b.wordSQL("base_table", "base_words"); err != nil {
		return nil, err
	}
	t1 := time.Now()
	stmts := []string{
		"CREATE TABLE base_size (size INT)",
		"INSERT INTO base_size (size) SELECT COUNT(*) FROM base_table",
		"CREATE TABLE base_idf (token VARCHAR(64), idf DOUBLE)",
		`INSERT INTO base_idf (token, idf)
		 SELECT T.token, LOG(S.size) - LOG(COUNT(DISTINCT T.tid))
		 FROM base_words T, base_size S GROUP BY T.token, S.size`,
		"CREATE TABLE base_idfavg (idfavg DOUBLE)",
		"INSERT INTO base_idfavg (idfavg) SELECT AVG(I.idf) FROM base_idf I",
		"CREATE TABLE query_words (token VARCHAR(64))",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	b.tokDur, b.wDur = t1.Sub(t0), time.Since(t1)
	return b, nil
}

// idfTable is the Go-side mirror of base_idf/base_idfavg that the GES UDF
// consults (the paper computes exact GES scores in a UDF too, §4.5).
type idfTable struct {
	idf map[string]float64
	avg float64
}

func loadIDF(db *sqldb.DB) (*idfTable, error) {
	rows, err := db.Query("SELECT token, idf FROM base_idf")
	if err != nil {
		return nil, err
	}
	t := &idfTable{idf: make(map[string]float64, len(rows.Data))}
	for _, r := range rows.Data {
		t.idf[r[0].AsString()] = r[1].AsFloat()
	}
	avgRows, err := db.Query("SELECT idfavg FROM base_idfavg")
	if err != nil {
		return nil, err
	}
	if len(avgRows.Data) == 1 && !avgRows.Data[0][0].IsNull() {
		t.avg = avgRows.Data[0][0].AsFloat()
	}
	return t, nil
}

func (t *idfTable) weight(token string) float64 {
	if w, ok := t.idf[token]; ok {
		return w
	}
	return t.avg
}

// registerGESScore installs GESSCORE(query, record): the exact Eq. 3.14
// similarity, sharing native.GESCost so both realizations agree bit-for-bit
// on the kernel.
func registerGESScore(db *sqldb.DB, idf *idfTable, cins float64) {
	db.RegisterFunc("GESSCORE", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Null(), fmt.Errorf("GESSCORE takes 2 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		qws := tokenize.Words(normalizeUpper(args[0].AsString()))
		dws := tokenize.Words(normalizeUpper(args[1].AsString()))
		qWeights := make([]float64, len(qws))
		wtQ := 0.0
		for i, t := range qws {
			qWeights[i] = idf.weight(t)
			wtQ += qWeights[i]
		}
		dWeights := make([]float64, len(dws))
		for i, t := range dws {
			dWeights[i] = idf.weight(t)
		}
		cost := native.GESCost(qws, qWeights, dws, dWeights, cins)
		return sqldb.Float(native.GESScore(cost, wtQ)), nil
	})
}

func normalizeUpper(s string) string {
	return strings.ToUpper(normalize(s))
}

// GES is the declarative exact generalized edit similarity: word-level
// preprocessing in SQL, scoring via the GESSCORE UDF over the base relation.
type GES struct {
	*base
	queryArg func(string) sqldb.Value
}

// NewGES preprocesses word tokens and idf weights, and registers the UDF.
func NewGES(records []core.Record, cfg core.Config) (*GES, error) {
	b, err := wordPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	idf, err := loadIDF(b.db)
	if err != nil {
		return nil, err
	}
	registerGESScore(b.db, idf, cfg.GESCins)
	return &GES{
		base:     b,
		queryArg: func(q string) sqldb.Value { return sqldb.String(normalize(q)) },
	}, nil
}

// Name implements core.Predicate.
func (p *GES) Name() string { return "GES" }

// Select scores every record with the GESSCORE UDF.
func (p *GES) Select(query string) ([]core.Match, error) {
	if len(tokenize.Words(query)) == 0 {
		return nil, nil
	}
	rows, err := p.db.Query(
		"SELECT B.tid, GESSCORE(?, B.string) AS score FROM base_table B",
		p.queryArg(query))
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}

// gesFilterTables creates the per-query staging tables shared by GESJaccard
// and GESapx.
func gesFilterTables(b *base) error {
	stmts := []string{
		"CREATE TABLE query_idf (token VARCHAR(64), idf DOUBLE)",
		"CREATE TABLE sum_idf (sumidf DOUBLE)",
		"CREATE TABLE maxsim_t (tid INT, token2 VARCHAR(64), maxsim DOUBLE)",
		"CREATE TABLE cand (tid INT, fscore DOUBLE)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return err
		}
	}
	return nil
}

// refreshQueryIDF fills query_idf (distinct query words with base idf or the
// average idf for unseen words) and sum_idf.
func (b *base) refreshQueryIDF() error {
	steps := []string{
		"DELETE FROM query_idf",
		`INSERT INTO query_idf (token, idf)
		 SELECT R.token, R.idf FROM query_words S, base_idf R
		 WHERE S.token = R.token GROUP BY R.token, R.idf
		 UNION ALL
		 SELECT S.token, A.idfavg FROM query_words S, base_idfavg A
		 WHERE S.token NOT IN (SELECT I.token FROM base_idf I)
		 GROUP BY S.token, A.idfavg`,
		"DELETE FROM sum_idf",
		"INSERT INTO sum_idf (sumidf) SELECT SUM(I.idf) FROM query_idf I",
	}
	for _, s := range steps {
		if err := b.exec(s); err != nil {
			return err
		}
	}
	return nil
}

// candidateScores runs the Eq. 4.7/4.8 filter aggregation over maxsim_t and
// returns the verified (exact GES) scores of surviving candidates.
func (b *base) candidateScores(query string, q int, theta float64) ([]core.Match, error) {
	if err := b.exec("DELETE FROM cand"); err != nil {
		return nil, err
	}
	err := b.exec(`
		INSERT INTO cand (tid, fscore)
		SELECT MS.tid, (1.0 / SI.sumidf) * SUM(QI.idf * (? * MS.maxsim + ?)) AS fscore
		FROM maxsim_t MS, query_idf QI, sum_idf SI
		WHERE MS.token2 = QI.token
		GROUP BY MS.tid, SI.sumidf
		HAVING fscore >= ?`,
		sqldb.Float(2.0/float64(q)), sqldb.Float(1-1.0/float64(q)), sqldb.Float(theta))
	if err != nil {
		return nil, err
	}
	rows, err := b.db.Query(`
		SELECT C.tid, GESSCORE(?, B.string) AS score
		FROM cand C, base_table B
		WHERE C.tid = B.tid`,
		sqldb.String(normalize(query)))
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}

// GESJaccard is the declarative filtered GES of Appendix B.4.1: word-token
// Jaccard over q-gram sets bounds GES from above; survivors are verified
// with the GESSCORE UDF.
type GESJaccard struct {
	*base
	theta float64
}

// NewGESJaccard builds the two-level tokenization and gram-set size tables.
func NewGESJaccard(records []core.Record, cfg core.Config) (*GESJaccard, error) {
	b, err := wordPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	// Second-level tokenization (q-grams of word tokens, Appendix A.3)
	// belongs to the tokenization phase: it is why the combination
	// predicates are the slowest tokenizers in Figure 5.2.
	t0 := time.Now()
	p := pad(cfg.WordQ)
	if err := b.exec("CREATE TABLE base_qgrams (tid INT, token VARCHAR(64), qgram VARCHAR(16))"); err != nil {
		return nil, err
	}
	err = b.exec(`
		INSERT INTO base_qgrams (tid, token, qgram)
		SELECT T.tid, T.token,
		       SUBSTRING(CONCAT(?, UPPER(T.token), ?), N.i, ?) AS qgram
		FROM integers N INNER JOIN base_words T ON N.i <= LENGTH(T.token) + ?
		GROUP BY T.tid, T.token, qgram`,
		sqldb.String(p), sqldb.String(p), sqldb.Int(int64(cfg.WordQ)), sqldb.Int(int64(cfg.WordQ-1)))
	if err != nil {
		return nil, err
	}
	b.tokDur += time.Since(t0)
	t0 = time.Now()
	stmts := []string{
		"CREATE TABLE base_tokensize (tid INT, token VARCHAR(64), size INT)",
		`INSERT INTO base_tokensize (tid, token, size)
		 SELECT T.tid, T.token, COUNT(*) FROM base_qgrams T GROUP BY T.tid, T.token`,
		"CREATE TABLE base_qgramstokensize (tid INT, token VARCHAR(64), qgram VARCHAR(16), size INT)",
		`INSERT INTO base_qgramstokensize (tid, token, qgram, size)
		 SELECT T.tid, T.token, T.qgram, S.size
		 FROM base_qgrams T, base_tokensize S
		 WHERE T.tid = S.tid AND T.token = S.token`,
		"CREATE INDEX bqts_qgram ON base_qgramstokensize (qgram)",
		"CREATE TABLE query_qgrams (token VARCHAR(64), qgram VARCHAR(16))",
		"CREATE TABLE query_qgramsize (token VARCHAR(64), size INT)",
		"CREATE TABLE jac_sim (tid INT, token2 VARCHAR(64), sim DOUBLE)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	if err := gesFilterTables(b); err != nil {
		return nil, err
	}
	idf, err := loadIDF(b.db)
	if err != nil {
		return nil, err
	}
	registerGESScore(b.db, idf, cfg.GESCins)
	b.wDur += time.Since(t0)
	return &GESJaccard{base: b, theta: cfg.GESThreshold}, nil
}

// Name implements core.Predicate.
func (p *GESJaccard) Name() string { return "GESJaccard" }

// Select runs the B.4.1 filtering pipeline and verifies candidates.
func (p *GESJaccard) Select(query string) ([]core.Match, error) {
	if err := p.setQueryWords(query); err != nil {
		return nil, err
	}
	q := p.cfg.WordQ
	padArg := sqldb.String(pad(q))
	steps := []struct {
		sql  string
		args []sqldb.Value
	}{
		{sql: "DELETE FROM query_qgrams"},
		{
			sql: `INSERT INTO query_qgrams (token, qgram)
			      SELECT T.token, SUBSTRING(CONCAT(?, UPPER(T.token), ?), N.i, ?) AS qgram
			      FROM integers N INNER JOIN query_words T ON N.i <= LENGTH(T.token) + ?
			      GROUP BY T.token, qgram`,
			args: []sqldb.Value{padArg, padArg, sqldb.Int(int64(q)), sqldb.Int(int64(q - 1))},
		},
		{sql: "DELETE FROM query_qgramsize"},
		{sql: `INSERT INTO query_qgramsize (token, size)
		       SELECT T.token, COUNT(*) FROM query_qgrams T GROUP BY T.token`},
		{sql: "DELETE FROM jac_sim"},
		{sql: `INSERT INTO jac_sim (tid, token2, sim)
		       SELECT BS.tid, Q.token, COUNT(*) / (BS.size + QS.size - COUNT(*))
		       FROM base_qgramstokensize BS, query_qgrams Q, query_qgramsize QS
		       WHERE BS.qgram = Q.qgram AND Q.token = QS.token
		       GROUP BY BS.tid, BS.token, Q.token, BS.size, QS.size`},
		{sql: "DELETE FROM maxsim_t"},
		{sql: `INSERT INTO maxsim_t (tid, token2, maxsim)
		       SELECT J.tid, J.token2, MAX(J.sim) FROM jac_sim J GROUP BY J.tid, J.token2`},
	}
	for _, s := range steps {
		if err := p.exec(s.sql, s.args...); err != nil {
			return nil, err
		}
	}
	if err := p.refreshQueryIDF(); err != nil {
		return nil, err
	}
	return p.candidateScores(query, q, p.theta)
}

// GESapx is the declarative min-hash variant of Appendix B.4.2: signatures
// are computed in SQL as per-slot minima of a hash UDF (standing in for the
// paper's CONV/HEX arithmetic hash, see DESIGN.md), stored like
// BASE_MINHASHSIGNATURE, and compared with a fid/value equi-join.
type GESapx struct {
	*base
	theta float64
	k     int
}

// NewGESapx builds signatures for every (record, word) pair.
func NewGESapx(records []core.Record, cfg core.Config) (*GESapx, error) {
	if cfg.MinHashK <= 0 {
		cfg.MinHashK = core.DefaultConfig().MinHashK
	}
	b, err := wordPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	family := minhash.NewFamily(cfg.MinHashK, cfg.MinHashSeed)
	b.db.RegisterFunc("MHASH", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Null(), fmt.Errorf("MHASH takes 2 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Int(int64(family.HashValue(int(args[0].AsInt()), args[1].AsString()))), nil
	})
	t0 := time.Now()
	p := pad(cfg.WordQ)
	if err := b.exec("CREATE TABLE base_qgrams (tid INT, token VARCHAR(64), qgram VARCHAR(16))"); err != nil {
		return nil, err
	}
	err = b.exec(`
		INSERT INTO base_qgrams (tid, token, qgram)
		SELECT T.tid, T.token,
		       SUBSTRING(CONCAT(?, UPPER(T.token), ?), N.i, ?) AS qgram
		FROM integers N INNER JOIN base_words T ON N.i <= LENGTH(T.token) + ?
		GROUP BY T.tid, T.token, qgram`,
		sqldb.String(p), sqldb.String(p), sqldb.Int(int64(cfg.WordQ)), sqldb.Int(int64(cfg.WordQ-1)))
	if err != nil {
		return nil, err
	}
	b.tokDur += time.Since(t0)
	t0 = time.Now()
	if err := b.exec("CREATE TABLE fids (fid INT)"); err != nil {
		return nil, err
	}
	fidRows := make([][]sqldb.Value, cfg.MinHashK)
	for i := range fidRows {
		fidRows[i] = []sqldb.Value{sqldb.Int(int64(i))}
	}
	if err := b.db.BulkInsert("fids", fidRows); err != nil {
		return nil, err
	}
	stmts := []string{
		"CREATE TABLE base_mh (tid INT, token VARCHAR(64), fid INT, value BIGINT)",
		`INSERT INTO base_mh (tid, token, fid, value)
		 SELECT Q.tid, Q.token, F.fid, MIN(MHASH(F.fid, Q.qgram))
		 FROM base_qgrams Q, fids F
		 GROUP BY Q.tid, Q.token, F.fid`,
		"CREATE INDEX bmh_value ON base_mh (value)",
		"CREATE TABLE query_qgrams (token VARCHAR(64), qgram VARCHAR(16))",
		"CREATE TABLE query_mh (token VARCHAR(64), fid INT, value BIGINT)",
		"CREATE TABLE mh_sim (tid INT, token2 VARCHAR(64), sim DOUBLE)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	if err := gesFilterTables(b); err != nil {
		return nil, err
	}
	idf, err := loadIDF(b.db)
	if err != nil {
		return nil, err
	}
	registerGESScore(b.db, idf, cfg.GESCins)
	b.wDur += time.Since(t0)
	return &GESapx{base: b, theta: cfg.GESThreshold, k: cfg.MinHashK}, nil
}

// Name implements core.Predicate.
func (p *GESapx) Name() string { return "GESapx" }

// Select estimates word similarities from signature agreement and verifies
// surviving candidates with exact GES.
func (p *GESapx) Select(query string) ([]core.Match, error) {
	if err := p.setQueryWords(query); err != nil {
		return nil, err
	}
	q := p.cfg.WordQ
	padArg := sqldb.String(pad(q))
	steps := []struct {
		sql  string
		args []sqldb.Value
	}{
		{sql: "DELETE FROM query_qgrams"},
		{
			sql: `INSERT INTO query_qgrams (token, qgram)
			      SELECT T.token, SUBSTRING(CONCAT(?, UPPER(T.token), ?), N.i, ?) AS qgram
			      FROM integers N INNER JOIN query_words T ON N.i <= LENGTH(T.token) + ?
			      GROUP BY T.token, qgram`,
			args: []sqldb.Value{padArg, padArg, sqldb.Int(int64(q)), sqldb.Int(int64(q - 1))},
		},
		{sql: "DELETE FROM query_mh"},
		{sql: `INSERT INTO query_mh (token, fid, value)
		       SELECT Q.token, F.fid, MIN(MHASH(F.fid, Q.qgram))
		       FROM query_qgrams Q, fids F
		       GROUP BY Q.token, F.fid`},
		{sql: "DELETE FROM mh_sim"},
		{
			sql: `INSERT INTO mh_sim (tid, token2, sim)
			      SELECT B.tid, Q.token, COUNT(*) / ?
			      FROM base_mh B, query_mh Q
			      WHERE B.fid = Q.fid AND B.value = Q.value
			      GROUP BY B.tid, B.token, Q.token`,
			args: []sqldb.Value{sqldb.Float(float64(p.k))},
		},
		{sql: "DELETE FROM maxsim_t"},
		{sql: `INSERT INTO maxsim_t (tid, token2, maxsim)
		       SELECT M.tid, M.token2, MAX(M.sim) FROM mh_sim M GROUP BY M.tid, M.token2`},
	}
	for _, s := range steps {
		if err := p.exec(s.sql, s.args...); err != nil {
			return nil, err
		}
	}
	if err := p.refreshQueryIDF(); err != nil {
		return nil, err
	}
	return p.candidateScores(query, q, p.theta)
}

// SoftTFIDF is the declarative realization of Appendix B.4.3: normalized
// tf-idf word weights, a Jaro–Winkler UDF cross product for CLOSE, and the
// MAXSIM/MAXTOKEN aggregation of Figure 4.7.
type SoftTFIDF struct {
	*base
	theta float64
}

// NewSoftTFIDF builds word tf-idf weight tables and registers JAROWINKLER.
func NewSoftTFIDF(records []core.Record, cfg core.Config) (*SoftTFIDF, error) {
	b, err := wordPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	b.db.RegisterFunc("JAROWINKLER", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Null(), fmt.Errorf("JAROWINKLER takes 2 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Float(strutil.JaroWinkler(args[0].AsString(), args[1].AsString())), nil
	})
	t0 := time.Now()
	stmts := []string{
		"CREATE TABLE base_tf (tid INT, token VARCHAR(64), tf INT)",
		`INSERT INTO base_tf (tid, token, tf)
		 SELECT T.tid, T.token, COUNT(*) FROM base_words T GROUP BY T.tid, T.token`,
		"CREATE TABLE base_length (tid INT, len DOUBLE)",
		`INSERT INTO base_length (tid, len)
		 SELECT T.tid, SQRT(SUM(I.idf * I.idf * T.tf * T.tf))
		 FROM base_idf I, base_tf T WHERE I.token = T.token GROUP BY T.tid`,
		"CREATE TABLE base_weights (tid INT, token VARCHAR(64), weight DOUBLE)",
		`INSERT INTO base_weights (tid, token, weight)
		 SELECT T.tid, T.token, I.idf * T.tf / L.len
		 FROM base_idf I, base_tf T, base_length L
		 WHERE I.token = T.token AND T.tid = L.tid AND L.len > 0`,
		"CREATE TABLE query_tf (token VARCHAR(64), tf INT)",
		"CREATE TABLE query_weights (token VARCHAR(64), weight DOUBLE)",
		"CREATE TABLE close_sim (tid INT, token1 VARCHAR(64), token2 VARCHAR(64), sim DOUBLE)",
		"CREATE TABLE maxsim_t (tid INT, token2 VARCHAR(64), maxsim DOUBLE)",
		"CREATE TABLE maxtoken (tid INT, token1 VARCHAR(64), token2 VARCHAR(64), maxsim DOUBLE)",
	}
	for _, s := range stmts {
		if err := b.exec(s); err != nil {
			return nil, err
		}
	}
	b.wDur += time.Since(t0)
	return &SoftTFIDF{base: b, theta: cfg.SoftTFIDFTheta}, nil
}

// Name implements core.Predicate.
func (p *SoftTFIDF) Name() string { return "SoftTFIDF" }

// Select runs the Figure 4.7 pipeline: CLOSE via the UDF cross product,
// per-query-word maxima, argmax rows, then the weighted sum.
func (p *SoftTFIDF) Select(query string) ([]core.Match, error) {
	if err := p.setQueryWords(query); err != nil {
		return nil, err
	}
	steps := []struct {
		sql  string
		args []sqldb.Value
	}{
		{sql: "DELETE FROM query_tf"},
		{sql: `INSERT INTO query_tf (token, tf)
		       SELECT T.token, COUNT(*) FROM query_words T GROUP BY T.token`},
		{sql: "DELETE FROM query_weights"},
		{sql: `INSERT INTO query_weights (token, weight)
		       SELECT T.token, I.idf * T.tf / QL.len
		       FROM query_tf T, base_idf I,
		            (SELECT SQRT(SUM(I2.idf * I2.idf * T2.tf * T2.tf)) AS len
		             FROM query_tf T2, base_idf I2 WHERE T2.token = I2.token) QL
		       WHERE T.token = I.token AND QL.len > 0`},
		{sql: "DELETE FROM close_sim"},
		{
			sql: `INSERT INTO close_sim (tid, token1, token2, sim)
			      SELECT R1.tid, R1.token, R2.token, JAROWINKLER(R1.token, R2.token)
			      FROM base_words R1, query_words R2
			      WHERE JAROWINKLER(R1.token, R2.token) >= ?`,
			args: []sqldb.Value{sqldb.Float(p.theta)},
		},
		{sql: "DELETE FROM maxsim_t"},
		{sql: `INSERT INTO maxsim_t (tid, token2, maxsim)
		       SELECT C.tid, C.token2, MAX(C.sim) FROM close_sim C GROUP BY C.tid, C.token2`},
		{sql: "DELETE FROM maxtoken"},
		{sql: `INSERT INTO maxtoken (tid, token1, token2, maxsim)
		       SELECT CS.tid, CS.token1, CS.token2, MS.maxsim
		       FROM close_sim CS, maxsim_t MS
		       WHERE CS.tid = MS.tid AND CS.token2 = MS.token2 AND MS.maxsim = CS.sim`},
	}
	for _, s := range steps {
		if err := p.exec(s.sql, s.args...); err != nil {
			return nil, err
		}
	}
	rows, err := p.db.Query(`
		SELECT TM.tid, SUM(WQ.weight * WB.weight * TM.maxsim) AS score
		FROM maxtoken TM, query_weights WQ, base_weights WB
		WHERE TM.token2 = WQ.token AND TM.tid = WB.tid AND TM.token1 = WB.token
		GROUP BY TM.tid`)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}
