package declarative

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sqldb"
	"repro/internal/strutil"
)

// EditDistance is the declarative edit predicate (§4.4, following Gravano
// et al. [11]): q-gram count and length filters expressed in SQL generate a
// candidate set with no false negatives, and an edit-similarity UDF verifies
// exact scores — the same UDF-based design the paper uses.
type EditDistance struct {
	*base
	theta float64
}

// NewEditDistance tokenizes the base relation and stores the normalized
// strings plus gram counts used by the filters.
func NewEditDistance(records []core.Record, cfg core.Config) (*EditDistance, error) {
	b, err := multisetPrep(records, cfg)
	if err != nil {
		return nil, err
	}
	registerEditSim(b.db)
	t0 := time.Now()
	p := pad(cfg.Q)
	stmts := []struct {
		sql  string
		args []sqldb.Value
	}{
		{sql: "CREATE TABLE base_edit (tid INT, norm VARCHAR(255), len INT, grams INT)"},
		{
			// norm replaces spaces with the pad sequence and upper-cases,
			// exactly the string whose padded windows are base_tokens.
			sql: `INSERT INTO base_edit (tid, norm, len, grams)
			      SELECT tid, REPLACE(UPPER(string), ' ', ?),
			             LENGTH(REPLACE(UPPER(string), ' ', ?)),
			             LENGTH(REPLACE(UPPER(string), ' ', ?)) + ?
			      FROM base_table`,
			args: []sqldb.Value{
				sqldb.String(p), sqldb.String(p), sqldb.String(p),
				sqldb.Int(int64(cfg.Q - 1)),
			},
		},
		{sql: "CREATE TABLE query_edit (norm VARCHAR(255), len INT, grams INT)"},
		{sql: "CREATE INDEX bt_token ON base_tokens (token)"},
		{sql: "CREATE INDEX be_tid ON base_edit (tid)"},
	}
	for _, s := range stmts {
		if err := b.exec(s.sql, s.args...); err != nil {
			return nil, err
		}
	}
	b.wDur = time.Since(t0)
	return &EditDistance{base: b, theta: cfg.EditTheta}, nil
}

// registerEditSim installs the edit-similarity UDF: 1 − lev(a,b)/max(|a|,|b|).
func registerEditSim(db *sqldb.DB) {
	db.RegisterFunc("EDITSIM", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Null(), fmt.Errorf("EDITSIM takes 2 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Float(strutil.EditSimilarity(args[0].AsString(), args[1].AsString())), nil
	})
}

// Name implements core.Predicate.
func (p *EditDistance) Name() string { return "EditDistance" }

// Select generates candidates with the SQL count/length filters (θ > 0) or
// scores the whole base relation (θ = 0), verifying with the UDF.
func (p *EditDistance) Select(query string) ([]core.Match, error) {
	if err := p.setQuery(query, p.cfg.Q); err != nil {
		return nil, err
	}
	padArg := sqldb.String(pad(p.cfg.Q))
	steps := []struct {
		sql  string
		args []sqldb.Value
	}{
		{sql: "DELETE FROM query_edit"},
		{
			sql: `INSERT INTO query_edit (norm, len, grams)
			      SELECT REPLACE(UPPER(string), ' ', ?),
			             LENGTH(REPLACE(UPPER(string), ' ', ?)),
			             LENGTH(REPLACE(UPPER(string), ' ', ?)) + ?
			      FROM query_table`,
			args: []sqldb.Value{padArg, padArg, padArg, sqldb.Int(int64(p.cfg.Q - 1))},
		},
	}
	for _, s := range steps {
		if err := p.exec(s.sql, s.args...); err != nil {
			return nil, err
		}
	}

	if p.theta <= 0 {
		rows, err := p.db.Query(`
			SELECT BE.tid, EDITSIM(QE.norm, BE.norm) AS score
			FROM base_edit BE, query_edit QE`)
		if err != nil {
			return nil, err
		}
		return matches(rows), nil
	}

	theta := sqldb.Float(p.theta)
	q := sqldb.Int(int64(p.cfg.Q))
	rows, err := p.db.Query(`
		SELECT F.tid, EDITSIM(QE.norm, BE.norm) AS score
		FROM (SELECT R1.tid AS tid, COUNT(*) AS common
		      FROM base_tokens R1, query_tokens R2
		      WHERE R1.token = R2.token
		      GROUP BY R1.tid) F,
		     base_edit BE, query_edit QE
		WHERE BE.tid = F.tid
		  AND ABS(BE.len - QE.len) <= FLOOR((1.0 - ?) * GREATEST(BE.len, QE.len))
		  AND F.common >= GREATEST(BE.grams, QE.grams)
		                  - ? * FLOOR((1.0 - ?) * GREATEST(BE.len, QE.len))
		  AND EDITSIM(QE.norm, BE.norm) >= ?`,
		theta, q, theta, theta)
	if err != nil {
		return nil, err
	}
	return matches(rows), nil
}
