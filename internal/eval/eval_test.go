package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAveragePrecisionPerfectRanking(t *testing.T) {
	ranked := []int{1, 2, 3, 9, 8}
	relevant := map[int]bool{1: true, 2: true, 3: true}
	if got := AveragePrecision(ranked, relevant); !approx(got, 1) {
		t.Errorf("perfect ranking AP = %v, want 1", got)
	}
}

func TestAveragePrecisionWorstRanking(t *testing.T) {
	// Relevant records never retrieved: AP = 0.
	if got := AveragePrecision([]int{4, 5}, map[int]bool{1: true}); got != 0 {
		t.Errorf("AP = %v, want 0", got)
	}
}

func TestAveragePrecisionKnownValue(t *testing.T) {
	// Ranking: R N R with 2 relevant (both retrieved):
	// AP = (1/1 + 2/3)/2 = 5/6.
	ranked := []int{1, 9, 2}
	relevant := map[int]bool{1: true, 2: true}
	if got := AveragePrecision(ranked, relevant); !approx(got, 5.0/6) {
		t.Errorf("AP = %v, want %v", got, 5.0/6)
	}
}

func TestAveragePrecisionPenalizesMissing(t *testing.T) {
	// One of two relevant records missing: AP = (1/1)/2 = 0.5.
	ranked := []int{1}
	relevant := map[int]bool{1: true, 2: true}
	if got := AveragePrecision(ranked, relevant); !approx(got, 0.5) {
		t.Errorf("AP = %v, want 0.5", got)
	}
}

func TestAveragePrecisionEmptyRelevant(t *testing.T) {
	if got := AveragePrecision([]int{1}, nil); got != 0 {
		t.Errorf("AP with no relevant = %v", got)
	}
}

func TestMaxF1PerfectRanking(t *testing.T) {
	ranked := []int{1, 2, 9}
	relevant := map[int]bool{1: true, 2: true}
	if got := MaxF1(ranked, relevant); !approx(got, 1) {
		t.Errorf("max F1 = %v, want 1", got)
	}
}

func TestMaxF1KnownValue(t *testing.T) {
	// Ranking: R N R, 2 relevant. At rank 1: P=1, R=0.5, F1=2/3.
	// At rank 3: P=2/3, R=1, F1=0.8. Max = 0.8.
	ranked := []int{1, 9, 2}
	relevant := map[int]bool{1: true, 2: true}
	if got := MaxF1(ranked, relevant); !approx(got, 0.8) {
		t.Errorf("max F1 = %v, want 0.8", got)
	}
}

func TestMaxF1NoneRetrieved(t *testing.T) {
	if got := MaxF1([]int{7, 8}, map[int]bool{1: true}); got != 0 {
		t.Errorf("max F1 = %v, want 0", got)
	}
	if got := MaxF1(nil, map[int]bool{1: true}); got != 0 {
		t.Errorf("max F1 on empty ranking = %v", got)
	}
}

func TestPrecisionRecallAt(t *testing.T) {
	ranked := []int{1, 9, 2, 8}
	relevant := map[int]bool{1: true, 2: true, 3: true}
	if got := PrecisionAt(ranked, relevant, 2); !approx(got, 0.5) {
		t.Errorf("P@2 = %v", got)
	}
	if got := RecallAt(ranked, relevant, 3); !approx(got, 2.0/3) {
		t.Errorf("R@3 = %v", got)
	}
	if got := PrecisionAt(ranked, relevant, 0); got != 0 {
		t.Errorf("P@0 = %v", got)
	}
	if got := PrecisionAt(ranked, relevant, 100); !approx(got, 0.5) {
		t.Errorf("P@100 clamps to list length: %v", got)
	}
}

func TestAccumulator(t *testing.T) {
	var acc Accumulator
	acc.Add([]int{1}, map[int]bool{1: true})    // AP 1, F1 1
	acc.Add([]int{9, 1}, map[int]bool{1: true}) // AP 0.5, F1 2/3
	s := acc.Summary()
	if s.Queries != 2 {
		t.Fatalf("queries = %d", s.Queries)
	}
	if !approx(s.MAP, 0.75) {
		t.Errorf("MAP = %v, want 0.75", s.MAP)
	}
	if !approx(s.MeanMaxF1, (1+2.0/3)/2) {
		t.Errorf("mean max F1 = %v", s.MeanMaxF1)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if s := acc.Summary(); s.MAP != 0 || s.MeanMaxF1 != 0 || s.Queries != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestMetricsInUnitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		ranked := r.Perm(n)
		relevant := map[int]bool{}
		for i := 0; i < n; i++ {
			if r.Float64() < 0.3 {
				relevant[i] = true
			}
		}
		ap := AveragePrecision(ranked, relevant)
		f1 := MaxF1(ranked, relevant)
		return ap >= 0 && ap <= 1 && f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, &quick.Config{Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestAPBetterRankingScoresHigher(t *testing.T) {
	relevant := map[int]bool{1: true, 2: true}
	good := AveragePrecision([]int{1, 2, 7, 8}, relevant)
	bad := AveragePrecision([]int{7, 8, 1, 2}, relevant)
	if !(good > bad) {
		t.Errorf("AP should reward early hits: good=%v bad=%v", good, bad)
	}
}
