// Package eval implements the accuracy methodology of §5.2: Average
// Precision and Maximum F1 over a similarity ranking, and their means over a
// query workload (MAP and mean max F1). Rankings are never thresholded —
// the evaluation is deliberately independent of any similarity cutoff.
package eval

// AveragePrecision computes Eq. 5.1 for one ranked result list:
//
//	AP = Σ_r P(r)·rel(r) / |relevant|
//
// where P(r) is precision at rank r. Relevant records that were never
// retrieved contribute nothing to the numerator but stay in the
// denominator, so missing results are penalized.
func AveragePrecision(ranked []int, relevant map[int]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	for r, tid := range ranked {
		if relevant[tid] {
			hits++
			sum += float64(hits) / float64(r+1)
		}
	}
	return sum / float64(len(relevant))
}

// MaxF1 computes Eq. 5.2: the maximum, over ranks r, of the harmonic mean
// of precision and recall at r.
func MaxF1(ranked []int, relevant map[int]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	best := 0.0
	hits := 0
	for r, tid := range ranked {
		if relevant[tid] {
			hits++
		}
		precision := float64(hits) / float64(r+1)
		recall := float64(hits) / float64(len(relevant))
		if precision+recall > 0 {
			if f1 := 2 * precision * recall / (precision + recall); f1 > best {
				best = f1
			}
		}
	}
	return best
}

// PrecisionAt returns the precision of the top-k prefix of the ranking.
func PrecisionAt(ranked []int, relevant map[int]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, tid := range ranked[:k] {
		if relevant[tid] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAt returns the recall of the top-k prefix of the ranking.
func RecallAt(ranked []int, relevant map[int]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	for _, tid := range ranked[:k] {
		if relevant[tid] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// Summary aggregates per-query metrics over a workload.
type Summary struct {
	MAP       float64
	MeanMaxF1 float64
	Queries   int
}

// Accumulator builds a Summary incrementally.
type Accumulator struct {
	apSum, f1Sum float64
	n            int
}

// Add records one query's ranking.
func (a *Accumulator) Add(ranked []int, relevant map[int]bool) {
	a.apSum += AveragePrecision(ranked, relevant)
	a.f1Sum += MaxF1(ranked, relevant)
	a.n++
}

// Summary returns the means accumulated so far.
func (a *Accumulator) Summary() Summary {
	if a.n == 0 {
		return Summary{}
	}
	return Summary{
		MAP:       a.apSum / float64(a.n),
		MeanMaxF1: a.f1Sum / float64(a.n),
		Queries:   a.n,
	}
}
