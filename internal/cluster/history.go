package cluster

import (
	"sync"

	approxsel "repro"
)

// History is one corpus's in-memory replication log: the tail of applied
// mutation batches a node can re-ship to followers, bounded by entry count
// and bytes. Everything older than the retained window is only reachable
// through a full snapshot join. The window is keyed by the shard-epoch
// vector — Since(from) returns every retained batch not fully covered by
// `from`, and reports tooOld when `from` predates the window's base (the
// follower must snapshot-join; replication never skips epochs).
//
// Each entry additionally carries the election term of the leader that
// created the batch — the lineage tag. Epoch vectors name positions
// numerically, but two diverged replicas can sit at the same numeric
// position with different content (a deposed leader's unacknowledged
// suffix vs the new leader's batches at the same epochs). The (seq, term)
// pair disambiguates: a leader creates at most one batch per sequence
// number per term, so matching (seq, term) implies matching content, and
// LineageOK turns a mismatch into a detected fork instead of a silent
// divergence.
type History struct {
	mu sync.Mutex
	// base is the epoch vector immediately before the oldest retained
	// batch: a follower at-or-past base can catch up from history alone.
	base []uint64
	// baseSeq/baseTerm name the batch that produced the base state. A zero
	// baseTerm means the lineage there is unknown (e.g. state recovered
	// from a WAL, which carries no terms) and claims against it are
	// trusted.
	baseSeq  uint64
	baseTerm uint64
	// cur is the epoch vector after the newest retained batch.
	cur     []uint64
	entries []histEntry
	bytes   int64

	maxEntries int
	maxBytes   int64

	// signal is closed and replaced on every append, waking long-polling
	// pulls.
	signal chan struct{}
}

// histEntry is one retained batch with its lineage term and size estimate.
type histEntry struct {
	batch approxsel.ReplicationBatch
	term  uint64
	size  int
}

// NewHistory returns an empty history whose window starts at the given
// position (epoch vector, sequence number and lineage term; a zero term
// marks the base lineage unknown). maxEntries/maxBytes bound the retained
// tail; values < 1 select defaults (4096 batches, 64 MiB).
func NewHistory(base Position, maxEntries int, maxBytes int64) *History {
	if maxEntries < 1 {
		maxEntries = 4096
	}
	if maxBytes < 1 {
		maxBytes = 64 << 20
	}
	h := &History{
		base:       append([]uint64(nil), base.Epochs...),
		cur:        append([]uint64(nil), base.Epochs...),
		baseSeq:    base.Seq,
		baseTerm:   base.Term,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		signal:     make(chan struct{}),
	}
	return h
}

// batchBytes estimates the wire size of one batch for the byte bound.
func batchBytes(b approxsel.ReplicationBatch) int {
	n := 32
	for _, sub := range b.Subs {
		n += 48
		for _, r := range sub.Add {
			n += 24 + len(r.Text)
		}
		n += 8 * len(sub.Del)
	}
	return n
}

// Append records one applied batch — created under the given leader term —
// at the window's head, trimming the tail past the entry/byte bounds (the
// base position advances over trimmed batches).
func (h *History) Append(b approxsel.ReplicationBatch, term uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, sub := range b.Subs {
		if sub.Shard >= 0 && sub.Shard < len(h.cur) {
			h.cur[sub.Shard] = sub.Epoch
		}
	}
	sz := batchBytes(b)
	h.entries = append(h.entries, histEntry{batch: b, term: term, size: sz})
	h.bytes += int64(sz)
	for len(h.entries) > h.maxEntries || (h.bytes > h.maxBytes && len(h.entries) > 1) {
		old := h.entries[0]
		for _, sub := range old.batch.Subs {
			if sub.Shard >= 0 && sub.Shard < len(h.base) {
				h.base[sub.Shard] = sub.Epoch
			}
		}
		h.baseSeq, h.baseTerm = old.batch.Seq, old.term
		h.bytes -= int64(old.size)
		h.entries = h.entries[1:]
	}
	close(h.signal)
	h.signal = make(chan struct{})
}

// Since returns every retained batch not fully covered by the follower's
// epoch vector, in apply order with the terms they were created under,
// capped at limit (0 = no cap). tooOld reports a vector predating the
// window — the follower must join from a full snapshot; batches the
// follower partially holds are re-shipped whole (application is idempotent
// per shard, so over-delivery after a torn WAL tail re-applies only what
// was lost and never skips).
func (h *History) Since(from []uint64, limit int) (batches []approxsel.ReplicationBatch, terms []uint64, tooOld bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(from) != len(h.base) {
		return nil, nil, true
	}
	for i := range from {
		if from[i] < h.base[i] {
			return nil, nil, true
		}
	}
	for _, e := range h.entries {
		for _, sub := range e.batch.Subs {
			if sub.Shard >= 0 && sub.Shard < len(from) && sub.Epoch > from[sub.Shard] {
				batches = append(batches, e.batch)
				terms = append(terms, e.term)
				break
			}
		}
		if limit > 0 && len(batches) >= limit {
			break
		}
	}
	return batches, terms, false
}

// Head reports the newest lineage point this history has produced: the
// sequence number and term of the last retained batch, or the base
// position of an empty window.
func (h *History) Head() (seq, term uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n := len(h.entries); n > 0 {
		return h.entries[n-1].batch.Seq, h.entries[n-1].term
	}
	return h.baseSeq, h.baseTerm
}

// LineageOK reports whether a follower claiming to have last applied the
// batch (seq, term) is on this history's lineage. False means the claim
// names a batch this stream never produced — the follower holds a
// conflicting fork (typically a deposed leader's unacknowledged suffix at
// the same numeric position) and must discard its copy and snapshot-join;
// the epoch-blind idempotent apply downstream would otherwise silently
// skip the conflicting batches. A zero term is an unknown lineage (state
// recovered from a WAL, or a pre-term peer) and is trusted as long as the
// claimed sequence number does not exceed this history's head.
func (h *History) LineageOK(seq, term uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	head := h.baseSeq
	if n := len(h.entries); n > 0 {
		head = h.entries[n-1].batch.Seq
	}
	if seq > head {
		// The follower claims batches this node never produced: even with
		// an unknown term that is a fork (an unacknowledged suffix).
		return false
	}
	if term == 0 {
		return true
	}
	if seq == h.baseSeq {
		return h.baseTerm == 0 || h.baseTerm == term
	}
	for i := len(h.entries) - 1; i >= 0; i-- {
		switch e := h.entries[i]; {
		case e.batch.Seq == seq:
			return e.term == 0 || e.term == term
		case e.batch.Seq < seq:
			return true // sequence gap in the window: nothing to refute
		}
	}
	// Pre-window claim: the epoch-vector check decides tooOld; lineage is
	// unverifiable that far back.
	return true
}

// Chan returns a channel closed on the next Append — the long-poll hook.
func (h *History) Chan() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.signal
}

// Window reports the history's current extent: the base and head epoch
// vectors, the retained batch count and byte volume.
func (h *History) Window() (base, cur []uint64, entries int, bytes int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.base...), append([]uint64(nil), h.cur...), len(h.entries), h.bytes
}
