package cluster

import (
	"sync"

	approxsel "repro"
)

// History is one corpus's in-memory replication log: the tail of applied
// mutation batches a node can re-ship to followers, bounded by entry count
// and bytes. Everything older than the retained window is only reachable
// through a full snapshot join. The window is keyed by the shard-epoch
// vector — Since(from) returns every retained batch not fully covered by
// `from`, and reports tooOld when `from` predates the window's base (the
// follower must snapshot-join; replication never skips epochs).
type History struct {
	mu sync.Mutex
	// base is the epoch vector immediately before the oldest retained
	// batch: a follower at-or-past base can catch up from history alone.
	base []uint64
	// cur is the epoch vector after the newest retained batch.
	cur     []uint64
	entries []approxsel.ReplicationBatch
	sizes   []int
	bytes   int64

	maxEntries int
	maxBytes   int64

	// signal is closed and replaced on every append, waking long-polling
	// pulls.
	signal chan struct{}
}

// NewHistory returns an empty history whose window starts at the given
// epoch vector. maxEntries/maxBytes bound the retained tail; values < 1
// select defaults (4096 batches, 64 MiB).
func NewHistory(base []uint64, maxEntries int, maxBytes int64) *History {
	if maxEntries < 1 {
		maxEntries = 4096
	}
	if maxBytes < 1 {
		maxBytes = 64 << 20
	}
	h := &History{
		base:       append([]uint64(nil), base...),
		cur:        append([]uint64(nil), base...),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		signal:     make(chan struct{}),
	}
	return h
}

// batchBytes estimates the wire size of one batch for the byte bound.
func batchBytes(b approxsel.ReplicationBatch) int {
	n := 32
	for _, sub := range b.Subs {
		n += 48
		for _, r := range sub.Add {
			n += 24 + len(r.Text)
		}
		n += 8 * len(sub.Del)
	}
	return n
}

// Append records one applied batch at the window's head, trimming the tail
// past the entry/byte bounds (the base vector advances over trimmed
// batches).
func (h *History) Append(b approxsel.ReplicationBatch) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, sub := range b.Subs {
		if sub.Shard >= 0 && sub.Shard < len(h.cur) {
			h.cur[sub.Shard] = sub.Epoch
		}
	}
	sz := batchBytes(b)
	h.entries = append(h.entries, b)
	h.sizes = append(h.sizes, sz)
	h.bytes += int64(sz)
	for len(h.entries) > h.maxEntries || (h.bytes > h.maxBytes && len(h.entries) > 1) {
		old := h.entries[0]
		for _, sub := range old.Subs {
			if sub.Shard >= 0 && sub.Shard < len(h.base) {
				h.base[sub.Shard] = sub.Epoch
			}
		}
		h.bytes -= int64(h.sizes[0])
		h.entries = h.entries[1:]
		h.sizes = h.sizes[1:]
	}
	close(h.signal)
	h.signal = make(chan struct{})
}

// Since returns every retained batch not fully covered by the follower's
// epoch vector, in apply order, capped at limit (0 = no cap). tooOld
// reports a vector predating the window — the follower must join from a
// full snapshot; batches the follower partially holds are re-shipped whole
// (application is idempotent per shard, so over-delivery after a torn WAL
// tail re-applies only what was lost and never skips).
func (h *History) Since(from []uint64, limit int) (batches []approxsel.ReplicationBatch, tooOld bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(from) != len(h.base) {
		return nil, true
	}
	for i := range from {
		if from[i] < h.base[i] {
			return nil, true
		}
	}
	for _, b := range h.entries {
		for _, sub := range b.Subs {
			if sub.Shard >= 0 && sub.Shard < len(from) && sub.Epoch > from[sub.Shard] {
				batches = append(batches, b)
				break
			}
		}
		if limit > 0 && len(batches) >= limit {
			break
		}
	}
	return batches, false
}

// Chan returns a channel closed on the next Append — the long-poll hook.
func (h *History) Chan() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.signal
}

// Window reports the history's current extent: the base and head epoch
// vectors, the retained batch count and byte volume.
func (h *History) Window() (base, cur []uint64, entries int, bytes int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.base...), append([]uint64(nil), h.cur...), len(h.entries), h.bytes
}
