package cluster

import "repro/internal/obs"

// Process-wide replication/election counters, exposed by the server's
// /metrics registry when a cluster node is attached. Owned here so the
// cluster layer stays free of any registry wiring; the server bridges
// them (plus per-node gauges like role, term and replication lag) at
// AttachCluster time.
var (
	// MetricElections counts elections this node has started.
	MetricElections = obs.NewCounter()
	// MetricLeaderWins counts elections this node has won.
	MetricLeaderWins = obs.NewCounter()
	// MetricPullsServed counts replication pull RPCs served to followers.
	MetricPullsServed = obs.NewCounter()
	// MetricAcksRecorded counts follower position acknowledgements
	// recorded (from pulls and heartbeat responses).
	MetricAcksRecorded = obs.NewCounter()
	// MetricHeartbeatsSent counts heartbeat RPCs sent as leader.
	MetricHeartbeatsSent = obs.NewCounter()
	// MetricPreVotes counts pre-vote rounds run before real elections.
	MetricPreVotes = obs.NewCounter()
	// MetricRPCRetries counts peer RPC retry attempts (forwarded mutations
	// and replication pulls; first attempts are not retries).
	MetricRPCRetries = obs.NewCounter()
	// RPCBackoffMS distributes the jittered backoff sleeps between retry
	// attempts, in milliseconds.
	RPCBackoffMS = obs.NewHistogram()
)
