package cluster

import "time"

// Backoff computes the jittered exponential delay before retry attempt
// (attempt >= 1, i.e. before the second try): full jitter over a window
// that doubles per attempt, from RPCTimeout/8 up to RPCTimeout. Jitter
// draws from the node's seeded RNG, so drills stay reproducible.
func (n *Node) Backoff(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	base := n.cfg.RPCTimeout / 8
	if base < time.Millisecond {
		base = time.Millisecond
	}
	window := base
	for i := 1; i < attempt && window < n.cfg.RPCTimeout; i++ {
		window *= 2
	}
	if window > n.cfg.RPCTimeout {
		window = n.cfg.RPCTimeout
	}
	n.mu.Lock()
	d := base/2 + time.Duration(n.rng.Int63n(int64(window)))
	n.mu.Unlock()
	if d > n.cfg.RPCTimeout {
		d = n.cfg.RPCTimeout
	}
	return d
}

// sleepBackoff records and serves the backoff before retry attempt; it
// returns false if the node stopped while sleeping.
func (n *Node) sleepBackoff(attempt int) bool {
	d := n.Backoff(attempt)
	MetricRPCRetries.Inc()
	RPCBackoffMS.ObserveUS(uint64(d.Milliseconds()))
	select {
	case <-time.After(d):
		return true
	case <-n.stopCh:
		return false
	}
}

// retry runs op up to RetryBudget times with jittered backoff between
// attempts, returning nil on the first success or the last error.
func (n *Node) retry(op func() error) error {
	var err error
	for attempt := 0; attempt < n.cfg.RetryBudget; attempt++ {
		if attempt > 0 && !n.sleepBackoff(attempt) {
			return err
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}

// RetryBudget reports the configured per-operation attempt cap.
func (n *Node) RetryBudget() int { return n.cfg.RetryBudget }

// AttemptTimeout reports the per-attempt RPC deadline, derived from
// ElectionTimeout (see Config.RPCTimeout).
func (n *Node) AttemptTimeout() time.Duration { return n.cfg.RPCTimeout }
