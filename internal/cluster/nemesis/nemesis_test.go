package nemesis

import (
	"testing"
)

// TestNemesisSmoke runs a single-step drill — partition the leader, force a
// re-election, heal, converge — with the full client/audit machinery: this
// is the CI (-race) face of the chaos harness.
func TestNemesisSmoke(t *testing.T) {
	rep, err := Run(Options{
		Records: 120,
		Seed:    11,
		Steps:   []string{"partition_leader"},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("nemesis run: %v", err)
	}
	if rep.AckedWriteLoss != 0 {
		t.Fatalf("acked write loss: %d of %d", rep.AckedWriteLoss, rep.AckedWrites)
	}
	if !rep.HashOK {
		t.Fatal("replica hashes diverged")
	}
	if rep.HashChecks == 0 {
		t.Fatal("no hash checks ran")
	}
	if !rep.WatchExactlyOnce {
		t.Fatal("watch resume was not exactly-once")
	}
	if rep.TotalFaults == 0 {
		t.Fatal("no faults were injected")
	}
	if rep.MetricsFaultsTotal == 0 {
		t.Fatal("chaos fault counters missing from /metrics export")
	}
	if len(rep.Steps) != 1 || rep.Steps[0].Step != "partition_leader" {
		t.Fatalf("unexpected steps: %+v", rep.Steps)
	}
	if rep.Steps[0].ReelectionMS <= 0 {
		t.Fatalf("no re-election measured: %+v", rep.Steps[0])
	}
}
