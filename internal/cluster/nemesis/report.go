package nemesis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// StepResult records one nemesis step: which faults it injected, how long
// re-election took when the step deposed a leader, and how long the
// cluster took to reconverge — identical /v1/hash on every replica at a
// pinned epoch vector — after the heal.
type StepResult struct {
	Step          string   `json:"step"`
	FaultKinds    []string `json:"fault_kinds,omitempty"`
	ReelectionMS  int64    `json:"reelection_ms,omitempty"`
	ConvergenceMS int64    `json:"convergence_ms"`
	HashOK        bool     `json:"hash_ok"`
}

// Report is the machine-readable result of one nemesis drill, written as
// BENCH_chaos.json.
type Report struct {
	Nodes   int   `json:"nodes"`
	Records int   `json:"records"`
	Seed    int64 `json:"seed"`

	Steps []StepResult `json:"steps"`

	// FaultsInjected counts injected faults per kind over the whole drill.
	FaultsInjected     map[string]uint64 `json:"faults_injected"`
	TotalFaults        uint64            `json:"total_faults"`
	DistinctFaultKinds int               `json:"distinct_fault_kinds"`

	MedianReelectionMS  int64 `json:"median_reelection_ms"`
	MedianConvergenceMS int64 `json:"median_convergence_ms"`

	// AckedWrites is the number of client writes acknowledged during the
	// drill; AckedWriteLoss counts those missing from any replica at the
	// final converged vector (the invariant: always 0).
	AckedWrites    int `json:"acked_writes"`
	AckedWriteLoss int `json:"acked_write_loss"`

	// HashChecks counts replica hash probes across all convergence
	// checkpoints; HashOK is false if any replica ever disagreed.
	HashChecks int  `json:"hash_checks"`
	HashOK     bool `json:"hash_ok"`

	// WatchEvents / WatchExactlyOnce report the post-drill watch resume
	// check: every replica replays the identical event list, no event
	// delivered twice.
	WatchEvents      int  `json:"watch_events"`
	WatchExactlyOnce bool `json:"watch_exactly_once"`

	// RollingRestart* cover the final staggered-restart drill; the
	// invariant is zero failed client requests (retries allowed).
	RollingRestartRequests int `json:"rolling_restart_requests"`
	RollingRestartFailures int `json:"rolling_restart_failures"`

	ClientRequests     int `json:"client_requests"`
	ClientRetries      int `json:"client_retries"`
	ClientFailures     int `json:"client_failures"`
	StaleReadsObserved int `json:"stale_reads_observed"`

	// MetricsFaultsTotal is the approx_chaos_faults_total sum scraped from
	// a node's /metrics before teardown — proof the fault counters export.
	MetricsFaultsTotal uint64 `json:"metrics_faults_total"`
}

func median(ms []int64) int64 {
	if len(ms) == 0 {
		return 0
	}
	s := append([]int64(nil), ms...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// WriteJSON writes the report as BENCH_chaos.json in dir (created if
// missing).
func (r Report) WriteJSON(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_chaos.json"), append(data, '\n'), 0o644)
}

// Print writes a human-readable summary.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "Nemesis drill — %d nodes, %d records, seed %d\n", r.Nodes, r.Records, r.Seed)
	for _, s := range r.Steps {
		fmt.Fprintf(w, "  %-18s faults=%v", s.Step, s.FaultKinds)
		if s.ReelectionMS > 0 {
			fmt.Fprintf(w, "  reelect %v", time.Duration(s.ReelectionMS)*time.Millisecond)
		}
		fmt.Fprintf(w, "  converge %v  hash ok=%v\n", time.Duration(s.ConvergenceMS)*time.Millisecond, s.HashOK)
	}
	fmt.Fprintf(w, "  faults injected: %d total across %d kinds %v\n", r.TotalFaults, r.DistinctFaultKinds, r.FaultsInjected)
	fmt.Fprintf(w, "  median reelection %v, median convergence %v\n",
		time.Duration(r.MedianReelectionMS)*time.Millisecond, time.Duration(r.MedianConvergenceMS)*time.Millisecond)
	fmt.Fprintf(w, "  acked writes %d (loss %d), hash checks %d ok=%v, watch events %d exactly-once=%v\n",
		r.AckedWrites, r.AckedWriteLoss, r.HashChecks, r.HashOK, r.WatchEvents, r.WatchExactlyOnce)
	fmt.Fprintf(w, "  client: %d requests, %d retries, %d failures, %d stale reads observed; rolling restart: %d requests, %d failures\n",
		r.ClientRequests, r.ClientRetries, r.ClientFailures, r.StaleReadsObserved, r.RollingRestartRequests, r.RollingRestartFailures)
}
