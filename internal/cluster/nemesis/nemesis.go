// Package nemesis is the approxchaos drill harness: it drives an
// in-process replicated cluster through randomized fault schedules —
// partitions (full, asymmetric, majority-severing), lossy and slow links,
// duplicated deliveries, crash+rejoin, clock-skew-style lease expiry and a
// final rolling restart — while a concurrent client keeps writing and
// reading. After every heal it asserts the paper's replicated contract:
// identical /v1/hash on every replica at a pinned epoch vector, no
// acknowledged write lost, and watch resume delivering every event exactly
// once on every node. Results land in BENCH_chaos.json.
package nemesis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	approxsel "repro"
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/server"
)

// Cluster timings: fast enough for a drill, slow enough for -race CI.
// RPCTimeout defaults to 2×ElectionTimeout = 300ms, so a follower's
// degraded budget (RetryBudget × RPCTimeout) is 900ms.
const (
	heartbeatInterval = 25 * time.Millisecond
	electionTimeout   = 150 * time.Millisecond
	pullWait          = 100 * time.Millisecond
	retryBudget       = 3
)

// Catalog names every scheduled step; a randomized schedule shuffles all
// of them (so every fault kind fires) and always ends in rolling_restart.
var Catalog = []string{
	"partition_leader",
	"partition_follower",
	"asym_partition",
	"flaky_network",
	"dup_deliver",
	"skewed_lease",
	"crash_rejoin",
}

// Options configure one drill.
type Options struct {
	// Nodes is the cluster size (default 3).
	Nodes int
	// Records is the initial corpus size (default 400).
	Records int
	// Shards is the per-corpus shard count (default 2).
	Shards int
	// Seed drives data generation, chaos rolls and the schedule shuffle.
	Seed int64
	// Steps, when set, runs exactly this schedule (names from Catalog plus
	// "rolling_restart"); empty runs the shuffled full catalog ending in a
	// rolling restart.
	Steps []string
	// Logf, when set, receives one line per step.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Records <= 0 {
		o.Records = 400
	}
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// mutableHandler lets the httptest listener outlive the server instance it
// fronts (restarts swap the handler under the same URL).
type mutableHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (p *mutableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	h := p.h
	p.mu.Unlock()
	if h == nil {
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (p *mutableHandler) set(h http.Handler) {
	p.mu.Lock()
	p.h = h
	p.mu.Unlock()
}

// nmNode is one cluster member: a fixed identity and listener, with the
// server+node pair behind it replaceable across crashes and restarts.
type nmNode struct {
	id    string
	idx   int
	hs    *httptest.Server
	proxy *mutableHandler

	mu   sync.Mutex
	srv  *server.Server
	node *cluster.Node
	up   bool
}

func (n *nmNode) isUp() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

func (n *nmNode) clusterNode() *cluster.Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.node
}

type harness struct {
	o      Options
	inj    *chaos.Injector
	rng    *rand.Rand
	nodes  []*nmNode
	peers  map[string]string
	client *http.Client
	logf   func(string, ...any)

	// pauseMu serializes client writes against convergence checks: the
	// client holds it per write, a checkpoint holds it for the whole check
	// so the pinned vector stays the cluster's final vector.
	pauseMu    sync.Mutex
	clientStop chan struct{}
	clientDone chan struct{}

	mu        sync.Mutex
	acked     map[int]string // TID -> text, for every acknowledged write
	requests  int
	retries   int
	failures  int
	staleSeen int
	nextTID   int
	sentinel  int

	queries    []string
	hashChecks int
	hashOK     bool
}

// Run executes one nemesis drill and returns its report.
func Run(o Options) (Report, error) {
	o = o.withDefaults()
	h := &harness{
		o:          o,
		inj:        chaos.New(o.Seed),
		rng:        rand.New(rand.NewSource(o.Seed + 77)),
		peers:      make(map[string]string, o.Nodes),
		client:     &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 8}},
		clientStop: make(chan struct{}),
		clientDone: make(chan struct{}),
		acked:      make(map[int]string),
		nextTID:    100000,
		hashOK:     true,
		logf:       func(string, ...any) {},
	}
	if o.Logf != nil {
		h.logf = o.Logf
	}
	rep := Report{Nodes: o.Nodes, Records: o.Records, Seed: o.Seed, HashOK: true, WatchExactlyOnce: true}
	faultsBefore := chaos.FaultCounts()

	if err := h.setup(); err != nil {
		return rep, err
	}
	defer h.teardown()

	schedule := o.Steps
	if len(schedule) == 0 {
		schedule = append([]string(nil), Catalog...)
		h.rng.Shuffle(len(schedule), func(i, j int) { schedule[i], schedule[j] = schedule[j], schedule[i] })
		schedule = append(schedule, "rolling_restart")
	}

	go h.clientLoop()
	var reelections, convergences []int64
	for _, step := range schedule {
		h.logf("nemesis: step %s", step)
		res, err := h.runStep(step, &rep)
		if err != nil {
			close(h.clientStop)
			<-h.clientDone
			return rep, fmt.Errorf("nemesis: step %s: %w", step, err)
		}
		rep.Steps = append(rep.Steps, res)
		if res.ReelectionMS > 0 {
			reelections = append(reelections, res.ReelectionMS)
		}
		convergences = append(convergences, res.ConvergenceMS)
	}
	close(h.clientStop)
	<-h.clientDone

	// Final convergence, then the acked-write and watch-resume audits.
	if _, ok, err := h.converge(time.Now()); err != nil {
		return rep, err
	} else if !ok {
		h.hashOK = false
	}
	loss, err := h.auditAckedWrites()
	if err != nil {
		return rep, err
	}
	events, exactlyOnce, err := h.watchCheck()
	if err != nil {
		return rep, err
	}

	h.mu.Lock()
	rep.AckedWrites = len(h.acked)
	rep.AckedWriteLoss = loss
	rep.ClientRequests = h.requests
	rep.ClientRetries = h.retries
	rep.ClientFailures = h.failures
	rep.StaleReadsObserved = h.staleSeen
	rep.HashChecks = h.hashChecks
	rep.HashOK = h.hashOK
	h.mu.Unlock()
	rep.WatchEvents = events
	rep.WatchExactlyOnce = exactlyOnce
	rep.MedianReelectionMS = median(reelections)
	rep.MedianConvergenceMS = median(convergences)

	rep.FaultsInjected = make(map[string]uint64)
	for k, v := range chaos.FaultCounts() {
		if d := v - faultsBefore[k]; d > 0 {
			rep.FaultsInjected[string(k)] = d
			rep.TotalFaults += d
		}
	}
	rep.DistinctFaultKinds = len(rep.FaultsInjected)
	rep.MetricsFaultsTotal = h.scrapeFaultMetrics()
	return rep, nil
}

// setup builds the cluster, elects a leader and loads the corpus through
// the replicated write path.
func (h *harness) setup() error {
	h.nodes = make([]*nmNode, h.o.Nodes)
	for i := range h.nodes {
		proxy := &mutableHandler{}
		hs := httptest.NewServer(proxy)
		id := fmt.Sprintf("n%d", i)
		h.nodes[i] = &nmNode{id: id, idx: i, hs: hs, proxy: proxy}
		h.peers[id] = hs.URL
	}
	h.inj.SetPeers(h.peers)
	for i := range h.nodes {
		if err := h.startNode(i); err != nil {
			return err
		}
	}
	if _, err := h.awaitLeader("", 15*time.Second); err != nil {
		return err
	}

	ds, err := approxsel.GenerateDirty(approxsel.CompanyNames(h.o.Records/4+20, 7), approxsel.Abbreviations(), approxsel.DirtyParams{
		Size: h.o.Records, NumClean: h.o.Records / 4, Dist: approxsel.Uniform,
		ErroneousPct: 0.8, ErrorExtent: 0.10, TokenSwapPct: 0.2, AbbrPct: 0.3, Seed: h.o.Seed,
	})
	if err != nil {
		return err
	}
	wire := make([]server.RecordJSON, len(ds.Records))
	for i, rec := range ds.Records {
		wire[i] = server.RecordJSON{TID: rec.TID, Text: rec.Text}
	}
	for i := 0; i < 3 && i < len(ds.Records); i++ {
		h.queries = append(h.queries, ds.Records[i*7%len(ds.Records)].Text)
	}
	body, _ := json.Marshal(server.CreateCorpusRequest{Name: "main", Shards: h.o.Shards, Records: wire})
	if err := h.postRetry("/v1/corpora", body, 20*time.Second, nil); err != nil {
		return fmt.Errorf("creating corpus: %w", err)
	}
	return nil
}

func (h *harness) teardown() {
	h.inj.SetRules(nil)
	for _, n := range h.nodes {
		if nd := n.clusterNode(); nd != nil && n.isUp() {
			nd.Stop()
		}
		n.hs.Close()
	}
}

// startNode builds a fresh server + cluster node behind the member's fixed
// listener: the cold-join path (state replicates back via snapshot join).
func (h *harness) startNode(idx int) error {
	n := h.nodes[idx]
	srv := server.New(server.Config{Shards: h.o.Shards, CacheEntries: 64, MaxInFlight: 64})
	node, err := cluster.NewNode(cluster.Config{
		ID:                n.id,
		Peers:             h.peers,
		Backend:           srv.ClusterBackend(),
		HeartbeatInterval: heartbeatInterval,
		ElectionTimeout:   electionTimeout,
		PullWait:          pullWait,
		RetryBudget:       retryBudget,
		Seed:              h.o.Seed + int64(idx) + 1,
		Client:            &http.Client{Transport: h.inj.Transport(n.id, &http.Transport{MaxIdleConnsPerHost: 4})},
	})
	if err != nil {
		return err
	}
	srv.AttachCluster(node)
	n.mu.Lock()
	n.srv, n.node, n.up = srv, node, true
	n.mu.Unlock()
	n.proxy.set(h.inj.Inbound(n.id, srv.Handler()))
	node.Start()
	return nil
}

// stopNode crashes (or gracefully retires) the member: its node loops
// stop, its listener answers 503.
func (h *harness) stopNode(idx int) {
	n := h.nodes[idx]
	n.mu.Lock()
	node := n.node
	n.up = false
	n.mu.Unlock()
	n.proxy.set(nil)
	if node != nil {
		node.Stop()
	}
}

func (h *harness) upNodes() []*nmNode {
	var out []*nmNode
	for _, n := range h.nodes {
		if n.isUp() {
			out = append(out, n)
		}
	}
	return out
}

// leaderNode returns the current leader among up members, or nil.
func (h *harness) leaderNode() *nmNode {
	for _, n := range h.upNodes() {
		if nd := n.clusterNode(); nd != nil && nd.IsLeader() {
			return n
		}
	}
	return nil
}

// awaitLeader waits for a leader among up members, excluding one id.
func (h *harness) awaitLeader(exclude string, timeout time.Duration) (*nmNode, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if l := h.leaderNode(); l != nil && l.id != exclude {
			return l, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("no leader (excluding %q) within %v", exclude, timeout)
}

// follower picks an up non-leader, preferring a deterministic rotation.
func (h *harness) follower() *nmNode {
	leader := h.leaderNode()
	ups := h.upNodes()
	for _, n := range ups {
		if leader == nil || n.id != leader.id {
			return n
		}
	}
	return nil
}

// ---- client traffic ----

// clientLoop is the concurrent workload: unique-text inserts with
// multi-node retry, plus unpinned reads that watch for the degraded-mode
// stale marker.
func (h *harness) clientLoop() {
	defer close(h.clientDone)
	i := 0
	for {
		select {
		case <-h.clientStop:
			return
		default:
		}
		h.pauseMu.Lock()
		h.mu.Lock()
		tid := h.nextTID
		h.nextTID++
		h.mu.Unlock()
		text := fmt.Sprintf("nemesis record w%d x%d y%d", tid, tid*7%9973, tid*13%9967)
		h.write(tid, text, 30*time.Second)
		h.pauseMu.Unlock()
		if i%5 == 4 {
			h.probeStale(h.nodes[i%len(h.nodes)])
		}
		i++
		select {
		case <-h.clientStop:
			return
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// write inserts one record, rotating across up nodes and honoring
// Retry-After, until acknowledged or the deadline passes. Only a deadline
// exhaustion counts as a failed client request.
func (h *harness) write(tid int, text string, timeout time.Duration) bool {
	body, _ := json.Marshal(server.MutateRequest{Corpus: "main", Records: []server.RecordJSON{{TID: tid, Text: text}}})
	h.mu.Lock()
	h.requests++
	h.mu.Unlock()
	deadline := time.Now().Add(timeout)
	attempt := 0
	for time.Now().Before(deadline) {
		ups := h.upNodes()
		if len(ups) == 0 {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		n := ups[attempt%len(ups)]
		attempt++
		resp, err := h.client.Post(n.hs.URL+"/v1/insert", "application/json", bytes.NewReader(body))
		if err != nil {
			h.countRetry()
			time.Sleep(25 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			var mr server.MutateResponse
			derr := json.NewDecoder(resp.Body).Decode(&mr)
			resp.Body.Close()
			if derr == nil {
				h.mu.Lock()
				h.acked[tid] = text
				h.mu.Unlock()
				return true
			}
			h.countRetry()
			continue
		}
		wait := 25 * time.Millisecond
		if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
			if d := time.Duration(secs) * time.Second; d < 500*time.Millisecond {
				wait = d
			} else {
				wait = 500 * time.Millisecond
			}
		}
		rb, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		// At-least-once anomaly: under duplicate delivery a retried (or
		// chaos-duplicated) forwarded insert can apply before the attempt
		// whose response we see. The TID is this client's unique key, so
		// "existing TID" means an earlier delivery was applied and
		// majority-acked — the write succeeded.
		if resp.StatusCode == http.StatusBadRequest && strings.Contains(string(rb), "insert of existing TID") {
			h.mu.Lock()
			h.acked[tid] = text
			h.mu.Unlock()
			return true
		}
		h.countRetry()
		time.Sleep(wait)
	}
	h.mu.Lock()
	h.failures++
	h.mu.Unlock()
	return false
}

func (h *harness) countRetry() {
	h.mu.Lock()
	h.retries++
	h.mu.Unlock()
}

// probeStale issues one unpinned read and records an X-Approx-Stale
// sighting — the degraded follower's graceful answer.
func (h *harness) probeStale(n *nmNode) {
	if !n.isUp() || len(h.queries) == 0 {
		return
	}
	body, _ := json.Marshal(server.SelectRequest{Corpus: "main", Predicate: "Jaccard", Query: h.queries[0], Limit: 3})
	resp, err := h.client.Post(n.hs.URL+"/v1/select", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.Header.Get("X-Approx-Stale") != "" {
		h.mu.Lock()
		h.staleSeen++
		h.mu.Unlock()
	}
}

// postRetry POSTs to up nodes in rotation, retrying transient statuses
// (503 leaderless, 504 catching up) until the deadline.
func (h *harness) postRetry(path string, body []byte, timeout time.Duration, out any) error {
	deadline := time.Now().Add(timeout)
	attempt := 0
	var lastErr error
	for time.Now().Before(deadline) {
		ups := h.upNodes()
		if len(ups) == 0 {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		n := ups[attempt%len(ups)]
		attempt++
		resp, err := h.client.Post(n.hs.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			time.Sleep(25 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
			defer resp.Body.Close()
			if out != nil {
				return json.NewDecoder(resp.Body).Decode(out)
			}
			_, err := io.Copy(io.Discard, resp.Body)
			return err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusGatewayTimeout {
			lastErr = fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, b)
			time.Sleep(25 * time.Millisecond)
			continue
		}
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, b)
	}
	return fmt.Errorf("POST %s: deadline exhausted: %w", path, lastErr)
}

// pinSentinel inserts one unique sentinel record through the replicated
// write path and returns the acked epoch vector — the version every
// replica must reach for a convergence check.
func (h *harness) pinSentinel() ([]uint64, error) {
	h.mu.Lock()
	h.sentinel++
	sn := h.sentinel
	h.mu.Unlock()
	tid := (1 << 30) + sn
	text := fmt.Sprintf("nemesis sentinel s%d t%d", sn, sn*3+1)
	body, _ := json.Marshal(server.MutateRequest{Corpus: "main", Records: []server.RecordJSON{{TID: tid, Text: text}}})
	var mr server.MutateResponse
	if err := h.postRetry("/v1/insert", body, 20*time.Second, &mr); err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.acked[tid] = text
	h.mu.Unlock()
	return mr.Epochs, nil
}

// converge pauses the client, pins the cluster's final vector with a
// sentinel write, and requires every up replica to answer every probe
// query with the identical /v1/hash at that vector. Returns the time from
// healedAt to full agreement.
func (h *harness) converge(healedAt time.Time) (int64, bool, error) {
	h.pauseMu.Lock()
	defer h.pauseMu.Unlock()
	if _, err := h.awaitLeader("", 15*time.Second); err != nil {
		return 0, false, err
	}
	pin, err := h.pinSentinel()
	if err != nil {
		return 0, false, err
	}
	ok := true
	for _, q := range h.queries {
		want := ""
		for _, n := range h.upNodes() {
			hb, _ := json.Marshal(server.HashRequest{Corpus: "main", Predicate: "Jaccard", Query: q, Limit: 5, MinEpochs: pin})
			var hr server.HashResponse
			if err := h.nodeRetry(n, "/v1/hash", hb, 20*time.Second, &hr); err != nil {
				return 0, false, fmt.Errorf("hash on %s: %w", n.id, err)
			}
			h.mu.Lock()
			h.hashChecks++
			h.mu.Unlock()
			if want == "" {
				want = hr.Hash
			} else if hr.Hash != want {
				ok = false
				h.logf("nemesis: hash divergence on %s for %q", n.id, q)
			}
		}
	}
	if !ok {
		h.mu.Lock()
		h.hashOK = false
		h.mu.Unlock()
	}
	return time.Since(healedAt).Milliseconds(), ok, nil
}

// nodeRetry POSTs to one specific node, retrying 503/504 (the node may
// still be catching up past the pinned vector).
func (h *harness) nodeRetry(n *nmNode, path string, body []byte, timeout time.Duration, out any) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := h.client.Post(n.hs.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			time.Sleep(25 * time.Millisecond)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			defer resp.Body.Close()
			return json.NewDecoder(resp.Body).Decode(out)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		lastErr = fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, b)
		if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusGatewayTimeout {
			return lastErr
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("node %s: deadline exhausted: %w", n.id, lastErr)
}

// ---- steps ----

func (h *harness) runStep(step string, rep *Report) (StepResult, error) {
	switch step {
	case "partition_leader":
		return h.stepPartitionLeader()
	case "partition_follower":
		return h.stepPartitionFollower()
	case "asym_partition":
		return h.stepAsymPartition()
	case "flaky_network":
		return h.stepRules(step, []chaos.Rule{
			{Kind: chaos.KindDrop, P: 0.25},
			{Kind: chaos.KindLatency, P: 0.5, LatencyMS: 15},
		}, time.Second)
	case "dup_deliver":
		return h.stepRules(step, []chaos.Rule{
			{Kind: chaos.KindDuplicate, P: 0.5},
			{Kind: chaos.KindSlowClose, P: 0.3, LatencyMS: 2},
		}, 800*time.Millisecond)
	case "skewed_lease":
		return h.stepSkewedLease()
	case "crash_rejoin":
		return h.stepCrashRejoin()
	case "rolling_restart":
		return h.stepRollingRestart(rep)
	default:
		return StepResult{}, fmt.Errorf("unknown step %q", step)
	}
}

// stepPartitionLeader isolates the leader until the rest elect a
// replacement, measures re-election, heals and converges.
func (h *harness) stepPartitionLeader() (StepResult, error) {
	res := StepResult{Step: "partition_leader", FaultKinds: []string{"partition"}}
	leader, err := h.awaitLeader("", 15*time.Second)
	if err != nil {
		return res, err
	}
	start := time.Now()
	h.inj.SetRules([]chaos.Rule{{From: leader.id, To: "*", Kind: chaos.KindPartition}})
	next, err := h.awaitLeader(leader.id, 15*time.Second)
	if err != nil {
		return res, err
	}
	res.ReelectionMS = time.Since(start).Milliseconds()
	h.logf("nemesis: leader moved %s -> %s in %dms", leader.id, next.id, res.ReelectionMS)
	time.Sleep(300 * time.Millisecond)
	healed := time.Now()
	h.inj.SetRules(nil)
	res.ConvergenceMS, res.HashOK, err = h.converge(healed)
	return res, err
}

// stepPartitionFollower severs one follower past its degraded budget and
// observes the stale-marked reads it serves meanwhile.
func (h *harness) stepPartitionFollower() (StepResult, error) {
	res := StepResult{Step: "partition_follower", FaultKinds: []string{"partition"}}
	if _, err := h.awaitLeader("", 15*time.Second); err != nil {
		return res, err
	}
	f := h.follower()
	if f == nil {
		return res, fmt.Errorf("no follower available")
	}
	h.inj.SetRules([]chaos.Rule{{From: f.id, To: "*", Kind: chaos.KindPartition}})
	// Degraded budget is RetryBudget × RPCTimeout = 900ms; probe after it.
	time.Sleep(1100 * time.Millisecond)
	for i := 0; i < 5; i++ {
		h.probeStale(f)
		time.Sleep(50 * time.Millisecond)
	}
	healed := time.Now()
	h.inj.SetRules(nil)
	var err error
	res.ConvergenceMS, res.HashOK, err = h.converge(healed)
	return res, err
}

// stepAsymPartition replays the pre-vote regression shape: full isolation
// (term must not inflate) then a one-way partition where the follower
// hears the leader but the leader never hears the follower.
func (h *harness) stepAsymPartition() (StepResult, error) {
	res := StepResult{Step: "asym_partition", FaultKinds: []string{"partition", "oneway", "replydrop"}}
	if _, err := h.awaitLeader("", 15*time.Second); err != nil {
		return res, err
	}
	f := h.follower()
	if f == nil {
		return res, fmt.Errorf("no follower available")
	}
	h.inj.SetRules([]chaos.Rule{{From: f.id, To: "*", Kind: chaos.KindPartition}})
	time.Sleep(450 * time.Millisecond)
	h.inj.SetRules([]chaos.Rule{
		{From: f.id, To: "*", Kind: chaos.KindOneWay},
		{From: "*", To: f.id, Kind: chaos.KindReplyDrop},
	})
	time.Sleep(600 * time.Millisecond)
	healed := time.Now()
	h.inj.SetRules(nil)
	var err error
	res.ConvergenceMS, res.HashOK, err = h.converge(healed)
	return res, err
}

// stepRules applies a static rule set to the whole mesh for a hold, then
// heals and converges — the lossy/slow/duplicating link steps.
func (h *harness) stepRules(name string, rules []chaos.Rule, hold time.Duration) (StepResult, error) {
	res := StepResult{Step: name}
	for _, r := range rules {
		res.FaultKinds = append(res.FaultKinds, string(r.Kind))
	}
	h.inj.SetRules(rules)
	time.Sleep(hold)
	healed := time.Now()
	h.inj.SetRules(nil)
	var err error
	res.ConvergenceMS, res.HashOK, err = h.converge(healed)
	return res, err
}

// stepSkewedLease delays every message the leader sends past its own lease
// timeout — the observable effect of a skewed clock under lease-based
// leadership: the cluster must re-elect and the stale leader must yield.
func (h *harness) stepSkewedLease() (StepResult, error) {
	res := StepResult{Step: "skewed_lease", FaultKinds: []string{"latency"}}
	leader, err := h.awaitLeader("", 15*time.Second)
	if err != nil {
		return res, err
	}
	start := time.Now()
	h.inj.SetRules([]chaos.Rule{{From: leader.id, To: "*", Kind: chaos.KindLatency, LatencyMS: 400}})
	next, err := h.awaitLeader(leader.id, 15*time.Second)
	if err != nil {
		return res, err
	}
	res.ReelectionMS = time.Since(start).Milliseconds()
	h.logf("nemesis: skewed lease moved leadership %s -> %s in %dms", leader.id, next.id, res.ReelectionMS)
	time.Sleep(300 * time.Millisecond)
	healed := time.Now()
	h.inj.SetRules(nil)
	res.ConvergenceMS, res.HashOK, err = h.converge(healed)
	return res, err
}

// stepCrashRejoin hard-crashes a follower (no graceful drain), holds the
// outage, then brings a blank member back under the same identity — the
// snapshot-join rejoin path.
func (h *harness) stepCrashRejoin() (StepResult, error) {
	res := StepResult{Step: "crash_rejoin", FaultKinds: []string{"crash"}}
	if _, err := h.awaitLeader("", 15*time.Second); err != nil {
		return res, err
	}
	f := h.follower()
	if f == nil {
		return res, fmt.Errorf("no follower available")
	}
	h.stopNode(f.idx)
	time.Sleep(500 * time.Millisecond)
	healed := time.Now()
	if err := h.startNode(f.idx); err != nil {
		return res, err
	}
	if err := h.awaitHealthy(f.idx, 20*time.Second); err != nil {
		return res, err
	}
	var err error
	res.ConvergenceMS, res.HashOK, err = h.converge(healed)
	return res, err
}

// stepRollingRestart retires and restarts every member in turn — the
// staggered-version upgrade drill. Each member must be healthy (serving
// the corpus) before the next goes down, and no client request may fail.
func (h *harness) stepRollingRestart(rep *Report) (StepResult, error) {
	res := StepResult{Step: "rolling_restart", FaultKinds: []string{"restart"}}
	h.mu.Lock()
	reqBefore, failBefore := h.requests, h.failures
	h.mu.Unlock()
	for idx := range h.nodes {
		if _, err := h.awaitLeader("", 15*time.Second); err != nil {
			return res, err
		}
		h.stopNode(idx)
		time.Sleep(200 * time.Millisecond)
		if err := h.startNode(idx); err != nil {
			return res, err
		}
		if err := h.awaitHealthy(idx, 20*time.Second); err != nil {
			return res, err
		}
	}
	healed := time.Now()
	var err error
	res.ConvergenceMS, res.HashOK, err = h.converge(healed)
	h.mu.Lock()
	rep.RollingRestartRequests = h.requests - reqBefore
	rep.RollingRestartFailures = h.failures - failBefore
	h.mu.Unlock()
	return res, err
}

// awaitHealthy waits until the member serves the corpus again (its
// snapshot join completed).
func (h *harness) awaitHealthy(idx int, timeout time.Duration) error {
	n := h.nodes[idx]
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := h.client.Get(n.hs.URL + "/v1/corpora")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Contains(string(b), `"main"`) {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("node %s did not become healthy within %v", n.id, timeout)
}

// ---- audits ----

// auditAckedWrites verifies every acknowledged write is present on every
// replica at the final converged vector: a pinned top-3 self-probe with
// the record's own (unique) text must rank it.
func (h *harness) auditAckedWrites() (int, error) {
	h.pauseMu.Lock()
	defer h.pauseMu.Unlock()
	pin, err := h.pinSentinel()
	if err != nil {
		return 0, err
	}
	h.mu.Lock()
	acked := make(map[int]string, len(h.acked))
	for tid, text := range h.acked {
		acked[tid] = text
	}
	h.mu.Unlock()
	loss := 0
	for tid, text := range acked {
		for _, n := range h.upNodes() {
			body, _ := json.Marshal(server.SelectRequest{
				Corpus: "main", Predicate: "Jaccard", Query: text, Limit: 3, MinEpochs: pin,
			})
			var sr server.SelectResponse
			if err := h.nodeRetry(n, "/v1/select", body, 20*time.Second, &sr); err != nil {
				return loss, fmt.Errorf("audit select on %s: %w", n.id, err)
			}
			found := false
			for _, m := range sr.Matches {
				if m.TID == tid {
					found = true
					break
				}
			}
			if !found {
				loss++
				h.logf("nemesis: ACKED WRITE LOST: tid %d missing on %s", tid, n.id)
			}
		}
	}
	return loss, nil
}

// watchCheck is the exactly-once resume audit: from a vector captured
// after the final heal, insert near-duplicate pairs, then poll-resume the
// watch on every replica — each must replay the identical event list with
// no duplicates.
func (h *harness) watchCheck() (int, bool, error) {
	h.pauseMu.Lock()
	defer h.pauseMu.Unlock()
	vecA, err := h.pinSentinel()
	if err != nil {
		return 0, false, err
	}
	for i := 0; i < 4; i++ {
		base := 500000 + i*2
		t1 := fmt.Sprintf("watchpair alpha beta gamma delta p%d", i)
		t2 := fmt.Sprintf("watchpair alpha beta gamma delta q%d", i)
		b1, _ := json.Marshal(server.MutateRequest{Corpus: "main", Records: []server.RecordJSON{{TID: base, Text: t1}}})
		b2, _ := json.Marshal(server.MutateRequest{Corpus: "main", Records: []server.RecordJSON{{TID: base + 1, Text: t2}}})
		if err := h.postRetry("/v1/insert", b1, 20*time.Second, nil); err != nil {
			return 0, false, err
		}
		if err := h.postRetry("/v1/insert", b2, 20*time.Second, nil); err != nil {
			return 0, false, err
		}
	}
	pin, err := h.pinSentinel()
	if err != nil {
		return 0, false, err
	}
	// Wait for every replica to reach the pinned vector before resuming.
	for _, n := range h.upNodes() {
		hb, _ := json.Marshal(server.HashRequest{Corpus: "main", Predicate: "Jaccard", Query: "watchpair", Limit: 1, MinEpochs: pin})
		var hr server.HashResponse
		if err := h.nodeRetry(n, "/v1/hash", hb, 20*time.Second, &hr); err != nil {
			return 0, false, err
		}
	}

	want := ""
	events := 0
	exactlyOnce := true
	for _, n := range h.upNodes() {
		evs, dup, err := h.pollWatch(n, vecA)
		if err != nil {
			return events, false, err
		}
		if dup {
			exactlyOnce = false
			h.logf("nemesis: duplicate watch event on %s", n.id)
		}
		canon := canonicalEvents(evs)
		if want == "" {
			want = canon
			events = len(evs)
		} else if canon != want {
			exactlyOnce = false
			h.logf("nemesis: watch replay differs on %s", n.id)
		}
	}
	if events == 0 {
		// The near-dup pairs must have produced match events somewhere.
		exactlyOnce = false
	}
	return events, exactlyOnce, nil
}

// pollWatch drains one node's watch pages from the resume vector and
// reports intra-node duplicates.
func (h *harness) pollWatch(n *nmNode, resume []uint64) ([]approxsel.WatchEvent, bool, error) {
	var all []approxsel.WatchEvent
	seen := make(map[string]bool)
	dup := false
	vec := resume
	for page := 0; page < 32; page++ {
		body, _ := json.Marshal(server.WatchRequest{Corpus: "main", Predicate: "Jaccard", Theta: 0.6, Mode: "poll", Resume: vec})
		var pr server.WatchPollResponse
		if err := h.nodeRetry(n, "/v1/watch", body, 20*time.Second, &pr); err != nil {
			return all, dup, err
		}
		for _, ev := range pr.Events {
			key := fmt.Sprintf("%s/%d/%d/%d/%d/%d", ev.Kind, ev.ProbeTID, ev.BaseTID, ev.Shard, ev.Epoch, ev.Seq)
			if seen[key] {
				dup = true
			}
			seen[key] = true
			all = append(all, ev)
		}
		if !pr.More {
			break
		}
		vec = pr.Resume
	}
	return all, dup, nil
}

// canonicalEvents renders an event list order-independently for
// cross-replica comparison.
func canonicalEvents(evs []approxsel.WatchEvent) string {
	lines := make([]string, len(evs))
	for i, ev := range evs {
		lines[i] = fmt.Sprintf("%s/%d/%d/%d/%d/%d/%.9f", ev.Kind, ev.ProbeTID, ev.BaseTID, ev.Shard, ev.Epoch, ev.Seq, ev.Score)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// scrapeFaultMetrics sums approx_chaos_faults_total across kinds from the
// first up node's /metrics export.
func (h *harness) scrapeFaultMetrics() uint64 {
	ups := h.upNodes()
	if len(ups) == 0 {
		return 0
	}
	resp, err := h.client.Get(ups[0].hs.URL + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0
	}
	var total uint64
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "approx_chaos_faults_total{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
			total += v
		}
	}
	return total
}
