package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	approxsel "repro"
)

// The cluster unit suite runs real multi-node clusters in-process: every
// node is a Node with an httptest server mounting its RPC handler and a
// ShardedCorpus-backed Backend. It proves election, streaming replication
// with bit-identical convergence, quorum acknowledgement, failover without
// acked-write loss, and snapshot joins for new and diverged nodes.

// testBackend adapts a map of ShardedCorpus replicas to the Backend
// interface, the same way the server does.
type testBackend struct {
	mu      sync.Mutex
	corpora map[string]*approxsel.ShardedCorpus
	node    *Node // set after NewNode; receives Record from observers
}

func newTestBackend() *testBackend {
	return &testBackend{corpora: make(map[string]*approxsel.ShardedCorpus)}
}

func (b *testBackend) get(name string) *approxsel.ShardedCorpus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.corpora[name]
}

// add registers a corpus and wires its replication observer to the node.
func (b *testBackend) add(name string, sc *approxsel.ShardedCorpus) {
	b.mu.Lock()
	b.corpora[name] = sc
	node := b.node
	b.mu.Unlock()
	if node != nil {
		sc.SetReplicationObserver(func(batch approxsel.ReplicationBatch) {
			node.Record(name, batch)
		})
	}
}

func (b *testBackend) Corpora() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.corpora))
	for n := range b.corpora {
		names = append(names, n)
	}
	return names
}

func (b *testBackend) Position(name string) (Position, bool) {
	sc := b.get(name)
	if sc == nil {
		return Position{}, false
	}
	return Position{Shards: sc.Shards(), Seq: sc.Seq(), Epochs: sc.Epochs()}, true
}

func (b *testBackend) Apply(name string, batch ReplicationBatch) error {
	sc := b.get(name)
	if sc == nil {
		return fmt.Errorf("no corpus %q", name)
	}
	return sc.ApplyReplicated(batch)
}

func (b *testBackend) WriteSnapshot(name string, w io.Writer) error {
	sc := b.get(name)
	if sc == nil {
		return fmt.Errorf("no corpus %q", name)
	}
	return sc.WriteReplicaSnapshot(w)
}

func (b *testBackend) InstallSnapshot(name string, r io.Reader) error {
	sc, err := approxsel.OpenReplicaSnapshot(r, "")
	if err != nil {
		return err
	}
	b.add(name, sc)
	return nil
}

// testNode bundles one cluster member's moving parts.
type testNode struct {
	id      string
	node    *Node
	backend *testBackend
	srv     *httptest.Server
	proxy   *handlerProxy
	gate    *gateTransport
}

// partition severs the node from the cluster both ways: its outgoing RPCs
// fail and incoming requests answer 503 — a network partition, not a
// crash (the node's loops keep running over its local state).
func (tn *testNode) partition(on bool) {
	tn.gate.mu.Lock()
	tn.gate.blocked = on
	tn.gate.mu.Unlock()
	tn.proxy.mu.Lock()
	tn.proxy.blocked = on
	tn.proxy.mu.Unlock()
}

// handlerProxy lets the httptest server exist before the node it serves,
// and simulates an inbound partition when blocked.
type handlerProxy struct {
	mu      sync.Mutex
	h       http.Handler
	blocked bool
}

func (p *handlerProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	h := p.h
	blocked := p.blocked
	p.mu.Unlock()
	if blocked {
		http.Error(w, "partitioned", http.StatusServiceUnavailable)
		return
	}
	if h == nil {
		http.Error(w, "node not up", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// gateTransport simulates an outbound partition: when blocked, every RPC
// the node issues fails at the transport.
type gateTransport struct {
	mu      sync.Mutex
	blocked bool
	base    http.RoundTripper
}

func (g *gateTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	g.mu.Lock()
	blocked := g.blocked
	g.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("partitioned")
	}
	return g.base.RoundTrip(r)
}

// startCluster brings up n members with fast test timings.
func startCluster(t *testing.T, count int) []*testNode {
	t.Helper()
	nodes := buildCluster(t, count)
	for _, tn := range nodes {
		tn.node.Start()
		t.Cleanup(tn.node.Stop)
	}
	return nodes
}

// buildCluster wires n members without starting them, so a test can
// control who joins the cluster when.
func buildCluster(t *testing.T, count int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, count)
	peers := make(map[string]string, count)
	for i := range nodes {
		proxy := &handlerProxy{}
		srv := httptest.NewServer(proxy)
		t.Cleanup(srv.Close)
		id := fmt.Sprintf("n%d", i)
		nodes[i] = &testNode{id: id, srv: srv, proxy: proxy, backend: newTestBackend()}
		peers[id] = srv.URL
	}
	for i, tn := range nodes {
		tn.gate = &gateTransport{base: http.DefaultTransport}
		node, err := NewNode(Config{
			ID:                tn.id,
			Peers:             peers,
			Backend:           tn.backend,
			HeartbeatInterval: 20 * time.Millisecond,
			ElectionTimeout:   120 * time.Millisecond,
			PullWait:          100 * time.Millisecond,
			Client:            &http.Client{Timeout: 5 * time.Second, Transport: tn.gate},
			Seed:              int64(i + 1),
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatalf("NewNode %s: %v", tn.id, err)
		}
		tn.node = node
		tn.backend.node = node
		tn.proxy.mu.Lock()
		tn.proxy.h = node.Handler()
		tn.proxy.mu.Unlock()
	}
	return nodes
}

// waitLeader blocks until exactly one live node leads and every live node
// agrees on it.
func waitLeader(t *testing.T, nodes []*testNode, dead map[string]bool) *testNode {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var leader *testNode
		agreed := true
		for _, tn := range nodes {
			if dead[tn.id] {
				continue
			}
			role, _, lid := tn.node.Role()
			if role == RoleLeader {
				if leader != nil {
					agreed = false
					break
				}
				leader = tn
			}
			if lid == "" || dead[lid] {
				agreed = false
			}
		}
		if leader != nil && agreed {
			for _, tn := range nodes {
				if dead[tn.id] {
					continue
				}
				if _, _, lid := tn.node.Role(); lid != leader.id {
					agreed = false
				}
			}
			if agreed {
				return leader
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no stable leader elected")
	return nil
}

func clusterData(t *testing.T) []approxsel.Record {
	t.Helper()
	ds, err := approxsel.GenerateDirty(approxsel.CompanyNames(60, 7), approxsel.Abbreviations(), approxsel.DirtyParams{
		Size: 160, NumClean: 30, Dist: approxsel.Uniform,
		ErroneousPct: 0.9, ErrorExtent: 0.08,
		TokenSwapPct: 0.20, AbbrPct: 0.40, Seed: 23,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds.Records
}

// waitConverged blocks until every live node's corpus is at-or-past the
// given position.
func waitConverged(t *testing.T, nodes []*testNode, dead map[string]bool, corpus string, epochs []uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, tn := range nodes {
			if dead[tn.id] {
				continue
			}
			p, ok := tn.backend.Position(corpus)
			if !ok || !vectorGE(p.Epochs, epochs) {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, tn := range nodes {
		if !dead[tn.id] {
			p, _ := tn.backend.Position(corpus)
			t.Logf("%s at %v", tn.id, p.Epochs)
		}
	}
	t.Fatalf("cluster did not converge to %v", epochs)
}

func assertIdentical(t *testing.T, a, b *approxsel.ShardedCorpus, queries []string) {
	t.Helper()
	ae, be := a.Epochs(), b.Epochs()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("epoch vectors differ: %v vs %v", ae, be)
		}
	}
	pa, err := a.Predicate("Jaccard")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Predicate("Jaccard")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ma, err := pa.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := pb.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ma) != len(mb) {
			t.Fatalf("select %q: %d vs %d matches", q, len(ma), len(mb))
		}
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("select %q match %d: %+v vs %+v", q, i, ma[i], mb[i])
			}
		}
	}
}

func TestSingleNodeBecomesLeader(t *testing.T) {
	nodes := startCluster(t, 1)
	leader := waitLeader(t, nodes, nil)
	if leader.id != "n0" {
		t.Fatalf("leader = %s", leader.id)
	}
	// Quorum of one: WaitCommitted returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := leader.node.WaitCommitted(ctx, "c", []uint64{5}, 5); err != nil {
		t.Fatalf("WaitCommitted: %v", err)
	}
}

// TestStrandedCorpusHeal covers the bootstrap race where empty members
// elect a leader before the one node carrying a preloaded corpus joins.
// Replication only flows leader→follower, so if the loaded node stayed a
// follower its corpus could never reach the rest of the cluster. The heal:
// heartbeats from a leader that does not cover a local corpus no longer
// defer the follower's candidacy, and voters depose a live leader for a
// candidate whose position is strictly ahead of it.
func TestStrandedCorpusHeal(t *testing.T) {
	recs := clusterData(t)
	nodes := buildCluster(t, 3)
	sc, err := approxsel.OpenShardedCorpus(recs[:40], 2)
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	nodes[0].backend.add("c", sc)

	// The empty members bootstrap first and elect one of themselves.
	for _, tn := range nodes[1:] {
		tn.node.Start()
		t.Cleanup(tn.node.Stop)
	}
	empty := waitLeader(t, nodes[1:], nil)
	if empty.id == "n0" {
		t.Fatalf("empty leader = %s", empty.id)
	}

	// The loaded node joins late; it must take leadership away from the
	// empty winner rather than idle as a stranded follower.
	nodes[0].node.Start()
	t.Cleanup(nodes[0].node.Stop)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if role, _, _ := nodes[0].node.Role(); role == RoleLeader {
			break
		}
		if time.Now().After(deadline) {
			role, term, lid := nodes[0].node.Role()
			t.Fatalf("loaded node never deposed the empty leader (role %s, term %d, leader %s)", role, term, lid)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And once it leads, the formerly stranded corpus replicates everywhere.
	waitConverged(t, nodes, nil, "c", sc.Epochs())
	var queries []string
	for _, r := range recs[:5] {
		queries = append(queries, r.Text)
	}
	for _, tn := range nodes[1:] {
		assertIdentical(t, sc, tn.backend.get("c"), queries)
	}
}

func TestThreeNodeReplicationAndFailover(t *testing.T) {
	recs := clusterData(t)
	nodes := startCluster(t, 3)

	// Every node starts with the same base relation (as approxserved nodes
	// started from the same -dataset would).
	for _, tn := range nodes {
		sc, err := approxsel.OpenShardedCorpus(recs[:50], 3)
		if err != nil {
			t.Fatalf("open corpus on %s: %v", tn.id, err)
		}
		tn.backend.add("c", sc)
	}
	leader := waitLeader(t, nodes, nil)

	// Mutate at the leader; every batch must be majority-acknowledged
	// before we call it acked.
	sc := leader.backend.get("c")
	var queries []string
	for i := 50; i < 70; i += 2 {
		if err := sc.Insert(recs[i : i+2]...); err != nil {
			t.Fatalf("insert: %v", err)
		}
		queries = append(queries, recs[i].Text)
	}
	if err := sc.Delete(recs[0].TID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := sc.Upsert(approxsel.Record{TID: recs[1].TID, Text: recs[100].Text}); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ackedVec, ackedSeq := sc.Epochs(), sc.Seq()
	if err := leader.node.WaitCommitted(ctx, "c", ackedVec, ackedSeq); err != nil {
		t.Fatalf("quorum: %v", err)
	}
	waitConverged(t, nodes, nil, "c", ackedVec)
	for _, tn := range nodes {
		if tn != leader {
			assertIdentical(t, sc, tn.backend.get("c"), queries)
		}
	}

	// Kill the leader without ceremony (Stop halts its loops; closing the
	// server severs it from the cluster — the SIGKILL analogue).
	dead := map[string]bool{leader.id: true}
	leader.node.Stop()
	leader.srv.Close()

	next := waitLeader(t, nodes, dead)
	if next.id == leader.id {
		t.Fatalf("dead node %s re-elected", leader.id)
	}
	// No acked mutation lost: the new leader holds the full acked vector.
	p, ok := next.backend.Position("c")
	if !ok || !vectorGE(p.Epochs, ackedVec) {
		t.Fatalf("new leader %s at %v, acked %v — acked write lost", next.id, p.Epochs, ackedVec)
	}
	assertIdentical(t, sc, next.backend.get("c"), queries)

	// The survivors keep accepting and replicating writes.
	sc2 := next.backend.get("c")
	if err := sc2.Insert(recs[120]); err != nil {
		t.Fatalf("post-failover insert: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := next.node.WaitCommitted(ctx2, "c", sc2.Epochs(), sc2.Seq()); err != nil {
		t.Fatalf("post-failover quorum: %v", err)
	}
	waitConverged(t, nodes, dead, "c", sc2.Epochs())
}

func TestLateJoinerSnapshots(t *testing.T) {
	recs := clusterData(t)
	nodes := startCluster(t, 3)

	// Only two nodes have the corpus; the third joins empty and must
	// snapshot in.
	for _, tn := range nodes[:2] {
		sc, err := approxsel.OpenShardedCorpus(recs[:50], 2)
		if err != nil {
			t.Fatal(err)
		}
		tn.backend.add("c", sc)
	}
	leader := waitLeader(t, nodes, nil)
	sc := leader.backend.get("c")
	if sc == nil {
		// The empty node won: it holds no corpus, so any candidate covers
		// it. Mutations must land on a corpus holder; redirect by making
		// the holder with the corpus the source of writes via replication
		// is out of contract — instead just verify the join path once a
		// holder leads. Force that by stopping the empty leader.
		dead := map[string]bool{leader.id: true}
		leader.node.Stop()
		leader.srv.Close()
		leader = waitLeader(t, nodes, dead)
		sc = leader.backend.get("c")
		if sc == nil {
			t.Fatal("no corpus-holding leader")
		}
		if err := sc.Insert(recs[50]); err != nil {
			t.Fatal(err)
		}
		waitConverged(t, nodes, dead, "c", sc.Epochs())
		return
	}
	if err := sc.Insert(recs[50:60]...); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, nodes, nil, "c", sc.Epochs())
	for _, tn := range nodes {
		if tn != leader {
			assertIdentical(t, sc, tn.backend.get("c"), []string{recs[52].Text, recs[55].Text})
		}
	}
}

func TestHistoryWindowAndSince(t *testing.T) {
	h := NewHistory(Position{Epochs: []uint64{2, 2}}, 3, 0)
	mk := func(seq, shard, epoch uint64) ReplicationBatch {
		return ReplicationBatch{Seq: seq, Subs: []approxsel.ReplicationSub{{Shard: int(shard), Epoch: epoch}}}
	}
	h.Append(mk(1, 0, 3), 1)
	h.Append(mk(2, 1, 3), 1)
	batches, terms, tooOld := h.Since([]uint64{2, 2}, 0)
	if tooOld || len(batches) != 2 || len(terms) != 2 {
		t.Fatalf("Since(base) = %d batches %d terms, tooOld=%v", len(batches), len(terms), tooOld)
	}
	batches, _, tooOld = h.Since([]uint64{3, 2}, 0)
	if tooOld || len(batches) != 1 || batches[0].Seq != 2 {
		t.Fatalf("partial Since = %+v, tooOld=%v", batches, tooOld)
	}
	// Overflow the 3-entry window: base advances, old vectors go stale.
	h.Append(mk(3, 0, 4), 2)
	h.Append(mk(4, 0, 5), 2)
	if _, _, tooOld = h.Since([]uint64{2, 2}, 0); !tooOld {
		t.Fatal("pre-window vector not reported tooOld")
	}
	if batches, terms, tooOld = h.Since([]uint64{3, 3}, 0); tooOld || len(batches) != 2 {
		t.Fatalf("in-window Since = %d batches, tooOld=%v", len(batches), tooOld)
	} else if terms[0] != 2 || terms[1] != 2 {
		t.Fatalf("shipped terms = %v, want [2 2]", terms)
	}
	// Length mismatch (different shard layout) is a snapshot case too.
	if _, _, tooOld = h.Since([]uint64{3}, 0); !tooOld {
		t.Fatal("layout mismatch not reported tooOld")
	}
}

func TestHistoryLineage(t *testing.T) {
	h := NewHistory(Position{Seq: 10, Epochs: []uint64{2}, Term: 3}, 3, 0)
	mk := func(seq, epoch uint64) ReplicationBatch {
		return ReplicationBatch{Seq: seq, Subs: []approxsel.ReplicationSub{{Shard: 0, Epoch: epoch}}}
	}
	h.Append(mk(11, 3), 3)
	h.Append(mk(12, 4), 5)

	if seq, term := h.Head(); seq != 12 || term != 5 {
		t.Fatalf("Head = (%d, %d), want (12, 5)", seq, term)
	}
	// On-lineage claims: matching (seq, term) pairs, including the base.
	for _, c := range []struct{ seq, term uint64 }{{10, 3}, {11, 3}, {12, 5}} {
		if !h.LineageOK(c.seq, c.term) {
			t.Fatalf("LineageOK(%d, %d) = false, want true", c.seq, c.term)
		}
	}
	// A fork: same sequence number, different term — a batch this stream
	// never produced.
	if h.LineageOK(12, 3) {
		t.Fatal("LineageOK accepted a conflicting term at the head")
	}
	if h.LineageOK(11, 4) {
		t.Fatal("LineageOK accepted a conflicting term mid-window")
	}
	// A follower claiming batches past the head holds an unacknowledged
	// suffix, even when its term is unknown.
	if h.LineageOK(13, 5) || h.LineageOK(13, 0) {
		t.Fatal("LineageOK accepted a claim past the head")
	}
	// Unknown lineage (zero term) is trusted up to the head; pre-window
	// claims are unverifiable and left to the epoch-vector check.
	if !h.LineageOK(11, 0) || !h.LineageOK(12, 0) {
		t.Fatal("LineageOK refused an unknown-term claim at a held position")
	}
	if !h.LineageOK(2, 7) {
		t.Fatal("LineageOK refused an unverifiable pre-window claim")
	}
	// Trimming moves the verified base forward with its term.
	h.Append(mk(13, 5), 5)
	h.Append(mk(14, 6), 5) // window of 3: batch 11 trimmed into the base
	if h.LineageOK(11, 4) {
		t.Fatal("trimmed base kept a conflicting term")
	}
	if !h.LineageOK(11, 3) {
		t.Fatal("trimmed base lost its lineage term")
	}
}

func TestPositionCoversTermDominates(t *testing.T) {
	fork := Position{Seq: 5, Epochs: []uint64{3}, Term: 1}  // deposed leader's suffix
	canon := Position{Seq: 5, Epochs: []uint64{3}, Term: 2} // new leader's lineage
	if fork.Covers(canon) {
		t.Fatal("old-term fork covers the new lineage at equal numeric position")
	}
	if !canon.Covers(fork) {
		t.Fatal("new lineage does not cover the old-term fork")
	}
	// Unknown terms fall back to the numeric comparison.
	a := Position{Seq: 5, Epochs: []uint64{3}}
	b := Position{Seq: 4, Epochs: []uint64{2}, Term: 9}
	if !a.Covers(b) || b.Covers(a) {
		t.Fatal("unknown-term positions did not compare numerically")
	}
}

// identicalResults is assertIdentical's non-fatal form, for polling.
func identicalResults(a, b *approxsel.ShardedCorpus, queries []string) bool {
	if a == nil || b == nil {
		return false
	}
	ae, be := a.Epochs(), b.Epochs()
	if len(ae) != len(be) {
		return false
	}
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	pa, err := a.Predicate("Jaccard")
	if err != nil {
		return false
	}
	pb, err := b.Predicate("Jaccard")
	if err != nil {
		return false
	}
	for _, q := range queries {
		ma, err := pa.Select(q)
		if err != nil {
			return false
		}
		mb, err := pb.Select(q)
		if err != nil {
			return false
		}
		if len(ma) != len(mb) {
			return false
		}
		for i := range ma {
			if ma[i] != mb[i] {
				return false
			}
		}
	}
	return true
}

// TestPullLineageHandshake drives the pull RPC directly: a follower's
// (seq, term) claim off this node's lineage — or past its head — must be
// refused as Diverged, and must not be recorded as a quorum
// acknowledgement; a mismatched shard layout is TooOld without an ack.
func TestPullLineageHandshake(t *testing.T) {
	recs := clusterData(t)
	tn := buildCluster(t, 1)[0]
	sc, err := approxsel.OpenShardedCorpus(recs[:40], 1)
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	base := sc.Epochs()
	tn.backend.add("c", sc)
	tn.node.mu.Lock()
	tn.node.term = 2 // the term the node "leads" at; Record stamps it
	tn.node.mu.Unlock()
	if err := sc.Insert(recs[40]); err != nil {
		t.Fatalf("insert: %v", err)
	}

	pull := func(req PullRequest) PullResponse {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		res, err := http.Post(tn.srv.URL+"/cluster/pull", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("pull: %v", err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("pull: HTTP %d", res.StatusCode)
		}
		var resp PullResponse
		if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	hasAck := func(peer string) bool {
		tn.node.mu.Lock()
		defer tn.node.mu.Unlock()
		_, ok := tn.node.acks[peer]["c"]
		return ok
	}

	// Healthy follower at the base: batches ship with their terms, ack
	// recorded.
	resp := pull(PullRequest{Node: "healthy", Corpus: "c", From: base, FromSeq: 0})
	if resp.TooOld || resp.Diverged || len(resp.Batches) != 1 {
		t.Fatalf("healthy pull = %+v", resp)
	}
	if len(resp.Terms) != 1 || resp.Terms[0] != 2 {
		t.Fatalf("shipped terms = %v, want [2]", resp.Terms)
	}
	if !hasAck("healthy") {
		t.Fatal("healthy pull not recorded as an ack")
	}

	// A fork: same sequence number, different term — the deposed-leader
	// shape. Refused, and never counted toward quorum.
	resp = pull(PullRequest{Node: "forked", Corpus: "c", From: sc.Epochs(), FromSeq: sc.Seq(), FromTerm: 1})
	if !resp.Diverged {
		t.Fatalf("forked pull not refused: %+v", resp)
	}
	if hasAck("forked") {
		t.Fatal("forked claim recorded as a quorum ack")
	}

	// A claim past this node's head is a fork even with an unknown term.
	resp = pull(PullRequest{Node: "ahead", Corpus: "c", From: sc.Epochs(), FromSeq: sc.Seq() + 1})
	if !resp.Diverged {
		t.Fatalf("ahead pull not refused: %+v", resp)
	}
	if hasAck("ahead") {
		t.Fatal("ahead claim recorded as a quorum ack")
	}

	// A mismatched shard layout is a snapshot case, not an ack.
	resp = pull(PullRequest{Node: "layout", Corpus: "c", From: []uint64{0, 0}, FromSeq: 0})
	if !resp.TooOld {
		t.Fatalf("layout-mismatch pull not TooOld: %+v", resp)
	}
	if hasAck("layout") {
		t.Fatal("layout-mismatch claim recorded as a quorum ack")
	}
}

// TestDeposedLeaderDiscardsUnackedFork is the partitioned-leader
// divergence scenario: the leader applies a mutation locally, is cut off
// before any follower sees it, and the majority side elects a new leader
// that accepts a different mutation at the same numeric epoch. The epoch
// vectors collide, so epoch-blind idempotent apply would silently skip
// the conflicting batch and the deposed leader would diverge forever —
// the lineage handshake must instead detect the fork on its first pull,
// discard the unacknowledged write via a snapshot re-join, and converge
// it bit-identically onto the acknowledged lineage.
func TestDeposedLeaderDiscardsUnackedFork(t *testing.T) {
	recs := clusterData(t)
	nodes := buildCluster(t, 3)
	for _, tn := range nodes {
		sc, err := approxsel.OpenShardedCorpus(recs[:40], 1) // one shard: the fork collides for certain
		if err != nil {
			t.Fatalf("open corpus on %s: %v", tn.id, err)
		}
		tn.backend.add("c", sc)
	}
	for _, tn := range nodes {
		tn.node.Start()
		t.Cleanup(tn.node.Stop)
	}
	leader := waitLeader(t, nodes, nil)
	fork := leader.backend.get("c")
	if err := fork.Insert(recs[40]); err != nil {
		t.Fatalf("base insert: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := leader.node.WaitCommitted(ctx, "c", fork.Epochs(), fork.Seq()); err != nil {
		t.Fatalf("base quorum: %v", err)
	}
	waitConverged(t, nodes, nil, "c", fork.Epochs())

	// Partition the leader; let in-flight long-polls drain (PullWait is
	// 100ms) so the fork write below is never shipped to a follower, then
	// apply it. It can never be acknowledged — the majority is gone.
	leader.partition(true)
	time.Sleep(200 * time.Millisecond)
	if err := fork.Insert(recs[50]); err != nil {
		t.Fatalf("fork insert: %v", err)
	}
	ackCtx, ackCancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer ackCancel()
	if err := leader.node.WaitCommitted(ackCtx, "c", fork.Epochs(), fork.Seq()); err == nil {
		t.Fatal("partitioned leader acknowledged a write without a majority")
	}

	// The majority elects a new leader, which accepts a conflicting write
	// at the same numeric epoch and acknowledges it with its quorum.
	dead := map[string]bool{leader.id: true}
	next := waitLeader(t, nodes, dead)
	canon := next.backend.get("c")
	if err := canon.Insert(recs[60]); err != nil {
		t.Fatalf("canon insert: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := next.node.WaitCommitted(ctx2, "c", canon.Epochs(), canon.Seq()); err != nil {
		t.Fatalf("canon quorum: %v", err)
	}

	// The fork is numerically invisible: identical epoch vectors, different
	// content. (If this fails the scenario didn't arm — a vacuous test.)
	forkVec, canonVec := fork.Epochs(), canon.Epochs()
	if !vectorGE(forkVec, canonVec) || !vectorGE(canonVec, forkVec) {
		t.Fatalf("test vacuous: fork %v vs canon %v do not collide", forkVec, canonVec)
	}

	// Heal the partition. The deposed leader must discard its
	// unacknowledged suffix and converge bit-identically onto the acked
	// lineage (the snapshot join replaces its corpus handle).
	leader.partition(false)
	queries := []string{recs[40].Text, recs[50].Text, recs[60].Text}
	deadline := time.Now().Add(10 * time.Second)
	for !identicalResults(leader.backend.get("c"), canon, queries) {
		if time.Now().After(deadline) {
			healed := leader.backend.get("c")
			var at []uint64
			if healed != nil {
				at = healed.Epochs()
			}
			t.Fatalf("deposed leader never converged onto the acked lineage (at %v, canon %v)", at, canon.Epochs())
		}
		time.Sleep(10 * time.Millisecond)
	}
	assertIdentical(t, canon, leader.backend.get("c"), queries)
}

func TestVoteRestrictionProtectsAckedWrites(t *testing.T) {
	ahead := map[string]Position{"c": {Shards: 2, Seq: 5, Epochs: []uint64{3, 2}}}
	behind := map[string]Position{"c": {Shards: 2, Seq: 4, Epochs: []uint64{2, 2}}}
	if candidateCurrent(behind, ahead) {
		t.Fatal("behind candidate accepted by ahead voter")
	}
	if !candidateCurrent(ahead, behind) {
		t.Fatal("ahead candidate rejected by behind voter")
	}
	if !candidateCurrent(ahead, ahead) {
		t.Fatal("equal candidate rejected")
	}
	// A voter without the corpus accepts either.
	if !candidateCurrent(behind, map[string]Position{}) {
		t.Fatal("corpus-less voter rejected candidate")
	}
}
