package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	approxsel "repro"
)

// The cluster unit suite runs real multi-node clusters in-process: every
// node is a Node with an httptest server mounting its RPC handler and a
// ShardedCorpus-backed Backend. It proves election, streaming replication
// with bit-identical convergence, quorum acknowledgement, failover without
// acked-write loss, and snapshot joins for new and diverged nodes.

// testBackend adapts a map of ShardedCorpus replicas to the Backend
// interface, the same way the server does.
type testBackend struct {
	mu      sync.Mutex
	corpora map[string]*approxsel.ShardedCorpus
	node    *Node // set after NewNode; receives Record from observers
}

func newTestBackend() *testBackend {
	return &testBackend{corpora: make(map[string]*approxsel.ShardedCorpus)}
}

func (b *testBackend) get(name string) *approxsel.ShardedCorpus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.corpora[name]
}

// add registers a corpus and wires its replication observer to the node.
func (b *testBackend) add(name string, sc *approxsel.ShardedCorpus) {
	b.mu.Lock()
	b.corpora[name] = sc
	node := b.node
	b.mu.Unlock()
	if node != nil {
		sc.SetReplicationObserver(func(batch approxsel.ReplicationBatch) {
			node.Record(name, batch)
		})
	}
}

func (b *testBackend) Corpora() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.corpora))
	for n := range b.corpora {
		names = append(names, n)
	}
	return names
}

func (b *testBackend) Position(name string) (Position, bool) {
	sc := b.get(name)
	if sc == nil {
		return Position{}, false
	}
	return Position{Shards: sc.Shards(), Seq: sc.Seq(), Epochs: sc.Epochs()}, true
}

func (b *testBackend) Apply(name string, batch ReplicationBatch) error {
	sc := b.get(name)
	if sc == nil {
		return fmt.Errorf("no corpus %q", name)
	}
	return sc.ApplyReplicated(batch)
}

func (b *testBackend) WriteSnapshot(name string, w io.Writer) error {
	sc := b.get(name)
	if sc == nil {
		return fmt.Errorf("no corpus %q", name)
	}
	return sc.WriteReplicaSnapshot(w)
}

func (b *testBackend) InstallSnapshot(name string, r io.Reader) error {
	sc, err := approxsel.OpenReplicaSnapshot(r, "")
	if err != nil {
		return err
	}
	b.add(name, sc)
	return nil
}

// testNode bundles one cluster member's moving parts.
type testNode struct {
	id      string
	node    *Node
	backend *testBackend
	srv     *httptest.Server
	proxy   *handlerProxy
}

// handlerProxy lets the httptest server exist before the node it serves.
type handlerProxy struct {
	mu sync.Mutex
	h  http.Handler
}

func (p *handlerProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	h := p.h
	p.mu.Unlock()
	if h == nil {
		http.Error(w, "node not up", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// startCluster brings up n members with fast test timings.
func startCluster(t *testing.T, count int) []*testNode {
	t.Helper()
	nodes := buildCluster(t, count)
	for _, tn := range nodes {
		tn.node.Start()
		t.Cleanup(tn.node.Stop)
	}
	return nodes
}

// buildCluster wires n members without starting them, so a test can
// control who joins the cluster when.
func buildCluster(t *testing.T, count int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, count)
	peers := make(map[string]string, count)
	for i := range nodes {
		proxy := &handlerProxy{}
		srv := httptest.NewServer(proxy)
		t.Cleanup(srv.Close)
		id := fmt.Sprintf("n%d", i)
		nodes[i] = &testNode{id: id, srv: srv, proxy: proxy, backend: newTestBackend()}
		peers[id] = srv.URL
	}
	for i, tn := range nodes {
		node, err := NewNode(Config{
			ID:                tn.id,
			Peers:             peers,
			Backend:           tn.backend,
			HeartbeatInterval: 20 * time.Millisecond,
			ElectionTimeout:   120 * time.Millisecond,
			PullWait:          100 * time.Millisecond,
			Seed:              int64(i + 1),
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatalf("NewNode %s: %v", tn.id, err)
		}
		tn.node = node
		tn.backend.node = node
		tn.proxy.mu.Lock()
		tn.proxy.h = node.Handler()
		tn.proxy.mu.Unlock()
	}
	return nodes
}

// waitLeader blocks until exactly one live node leads and every live node
// agrees on it.
func waitLeader(t *testing.T, nodes []*testNode, dead map[string]bool) *testNode {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var leader *testNode
		agreed := true
		for _, tn := range nodes {
			if dead[tn.id] {
				continue
			}
			role, _, lid := tn.node.Role()
			if role == RoleLeader {
				if leader != nil {
					agreed = false
					break
				}
				leader = tn
			}
			if lid == "" || dead[lid] {
				agreed = false
			}
		}
		if leader != nil && agreed {
			for _, tn := range nodes {
				if dead[tn.id] {
					continue
				}
				if _, _, lid := tn.node.Role(); lid != leader.id {
					agreed = false
				}
			}
			if agreed {
				return leader
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no stable leader elected")
	return nil
}

func clusterData(t *testing.T) []approxsel.Record {
	t.Helper()
	ds, err := approxsel.GenerateDirty(approxsel.CompanyNames(60, 7), approxsel.Abbreviations(), approxsel.DirtyParams{
		Size: 160, NumClean: 30, Dist: approxsel.Uniform,
		ErroneousPct: 0.9, ErrorExtent: 0.08,
		TokenSwapPct: 0.20, AbbrPct: 0.40, Seed: 23,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return ds.Records
}

// waitConverged blocks until every live node's corpus is at-or-past the
// given position.
func waitConverged(t *testing.T, nodes []*testNode, dead map[string]bool, corpus string, epochs []uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, tn := range nodes {
			if dead[tn.id] {
				continue
			}
			p, ok := tn.backend.Position(corpus)
			if !ok || !vectorGE(p.Epochs, epochs) {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, tn := range nodes {
		if !dead[tn.id] {
			p, _ := tn.backend.Position(corpus)
			t.Logf("%s at %v", tn.id, p.Epochs)
		}
	}
	t.Fatalf("cluster did not converge to %v", epochs)
}

func assertIdentical(t *testing.T, a, b *approxsel.ShardedCorpus, queries []string) {
	t.Helper()
	ae, be := a.Epochs(), b.Epochs()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("epoch vectors differ: %v vs %v", ae, be)
		}
	}
	pa, err := a.Predicate("Jaccard")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Predicate("Jaccard")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ma, err := pa.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := pb.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ma) != len(mb) {
			t.Fatalf("select %q: %d vs %d matches", q, len(ma), len(mb))
		}
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("select %q match %d: %+v vs %+v", q, i, ma[i], mb[i])
			}
		}
	}
}

func TestSingleNodeBecomesLeader(t *testing.T) {
	nodes := startCluster(t, 1)
	leader := waitLeader(t, nodes, nil)
	if leader.id != "n0" {
		t.Fatalf("leader = %s", leader.id)
	}
	// Quorum of one: WaitCommitted returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := leader.node.WaitCommitted(ctx, "c", []uint64{5}, 5); err != nil {
		t.Fatalf("WaitCommitted: %v", err)
	}
}

// TestStrandedCorpusHeal covers the bootstrap race where empty members
// elect a leader before the one node carrying a preloaded corpus joins.
// Replication only flows leader→follower, so if the loaded node stayed a
// follower its corpus could never reach the rest of the cluster. The heal:
// heartbeats from a leader that does not cover a local corpus no longer
// defer the follower's candidacy, and voters depose a live leader for a
// candidate whose position is strictly ahead of it.
func TestStrandedCorpusHeal(t *testing.T) {
	recs := clusterData(t)
	nodes := buildCluster(t, 3)
	sc, err := approxsel.OpenShardedCorpus(recs[:40], 2)
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	nodes[0].backend.add("c", sc)

	// The empty members bootstrap first and elect one of themselves.
	for _, tn := range nodes[1:] {
		tn.node.Start()
		t.Cleanup(tn.node.Stop)
	}
	empty := waitLeader(t, nodes[1:], nil)
	if empty.id == "n0" {
		t.Fatalf("empty leader = %s", empty.id)
	}

	// The loaded node joins late; it must take leadership away from the
	// empty winner rather than idle as a stranded follower.
	nodes[0].node.Start()
	t.Cleanup(nodes[0].node.Stop)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if role, _, _ := nodes[0].node.Role(); role == RoleLeader {
			break
		}
		if time.Now().After(deadline) {
			role, term, lid := nodes[0].node.Role()
			t.Fatalf("loaded node never deposed the empty leader (role %s, term %d, leader %s)", role, term, lid)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And once it leads, the formerly stranded corpus replicates everywhere.
	waitConverged(t, nodes, nil, "c", sc.Epochs())
	var queries []string
	for _, r := range recs[:5] {
		queries = append(queries, r.Text)
	}
	for _, tn := range nodes[1:] {
		assertIdentical(t, sc, tn.backend.get("c"), queries)
	}
}

func TestThreeNodeReplicationAndFailover(t *testing.T) {
	recs := clusterData(t)
	nodes := startCluster(t, 3)

	// Every node starts with the same base relation (as approxserved nodes
	// started from the same -dataset would).
	for _, tn := range nodes {
		sc, err := approxsel.OpenShardedCorpus(recs[:50], 3)
		if err != nil {
			t.Fatalf("open corpus on %s: %v", tn.id, err)
		}
		tn.backend.add("c", sc)
	}
	leader := waitLeader(t, nodes, nil)

	// Mutate at the leader; every batch must be majority-acknowledged
	// before we call it acked.
	sc := leader.backend.get("c")
	var queries []string
	for i := 50; i < 70; i += 2 {
		if err := sc.Insert(recs[i : i+2]...); err != nil {
			t.Fatalf("insert: %v", err)
		}
		queries = append(queries, recs[i].Text)
	}
	if err := sc.Delete(recs[0].TID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := sc.Upsert(approxsel.Record{TID: recs[1].TID, Text: recs[100].Text}); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ackedVec, ackedSeq := sc.Epochs(), sc.Seq()
	if err := leader.node.WaitCommitted(ctx, "c", ackedVec, ackedSeq); err != nil {
		t.Fatalf("quorum: %v", err)
	}
	waitConverged(t, nodes, nil, "c", ackedVec)
	for _, tn := range nodes {
		if tn != leader {
			assertIdentical(t, sc, tn.backend.get("c"), queries)
		}
	}

	// Kill the leader without ceremony (Stop halts its loops; closing the
	// server severs it from the cluster — the SIGKILL analogue).
	dead := map[string]bool{leader.id: true}
	leader.node.Stop()
	leader.srv.Close()

	next := waitLeader(t, nodes, dead)
	if next.id == leader.id {
		t.Fatalf("dead node %s re-elected", leader.id)
	}
	// No acked mutation lost: the new leader holds the full acked vector.
	p, ok := next.backend.Position("c")
	if !ok || !vectorGE(p.Epochs, ackedVec) {
		t.Fatalf("new leader %s at %v, acked %v — acked write lost", next.id, p.Epochs, ackedVec)
	}
	assertIdentical(t, sc, next.backend.get("c"), queries)

	// The survivors keep accepting and replicating writes.
	sc2 := next.backend.get("c")
	if err := sc2.Insert(recs[120]); err != nil {
		t.Fatalf("post-failover insert: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := next.node.WaitCommitted(ctx2, "c", sc2.Epochs(), sc2.Seq()); err != nil {
		t.Fatalf("post-failover quorum: %v", err)
	}
	waitConverged(t, nodes, dead, "c", sc2.Epochs())
}

func TestLateJoinerSnapshots(t *testing.T) {
	recs := clusterData(t)
	nodes := startCluster(t, 3)

	// Only two nodes have the corpus; the third joins empty and must
	// snapshot in.
	for _, tn := range nodes[:2] {
		sc, err := approxsel.OpenShardedCorpus(recs[:50], 2)
		if err != nil {
			t.Fatal(err)
		}
		tn.backend.add("c", sc)
	}
	leader := waitLeader(t, nodes, nil)
	sc := leader.backend.get("c")
	if sc == nil {
		// The empty node won: it holds no corpus, so any candidate covers
		// it. Mutations must land on a corpus holder; redirect by making
		// the holder with the corpus the source of writes via replication
		// is out of contract — instead just verify the join path once a
		// holder leads. Force that by stopping the empty leader.
		dead := map[string]bool{leader.id: true}
		leader.node.Stop()
		leader.srv.Close()
		leader = waitLeader(t, nodes, dead)
		sc = leader.backend.get("c")
		if sc == nil {
			t.Fatal("no corpus-holding leader")
		}
		if err := sc.Insert(recs[50]); err != nil {
			t.Fatal(err)
		}
		waitConverged(t, nodes, dead, "c", sc.Epochs())
		return
	}
	if err := sc.Insert(recs[50:60]...); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, nodes, nil, "c", sc.Epochs())
	for _, tn := range nodes {
		if tn != leader {
			assertIdentical(t, sc, tn.backend.get("c"), []string{recs[52].Text, recs[55].Text})
		}
	}
}

func TestHistoryWindowAndSince(t *testing.T) {
	h := NewHistory([]uint64{2, 2}, 3, 0)
	mk := func(seq, shard, epoch uint64) ReplicationBatch {
		return ReplicationBatch{Seq: seq, Subs: []approxsel.ReplicationSub{{Shard: int(shard), Epoch: epoch}}}
	}
	h.Append(mk(1, 0, 3))
	h.Append(mk(2, 1, 3))
	batches, tooOld := h.Since([]uint64{2, 2}, 0)
	if tooOld || len(batches) != 2 {
		t.Fatalf("Since(base) = %d batches, tooOld=%v", len(batches), tooOld)
	}
	batches, tooOld = h.Since([]uint64{3, 2}, 0)
	if tooOld || len(batches) != 1 || batches[0].Seq != 2 {
		t.Fatalf("partial Since = %+v, tooOld=%v", batches, tooOld)
	}
	// Overflow the 3-entry window: base advances, old vectors go stale.
	h.Append(mk(3, 0, 4))
	h.Append(mk(4, 0, 5))
	if _, tooOld = h.Since([]uint64{2, 2}, 0); !tooOld {
		t.Fatal("pre-window vector not reported tooOld")
	}
	if batches, tooOld = h.Since([]uint64{3, 3}, 0); tooOld || len(batches) != 2 {
		t.Fatalf("in-window Since = %d batches, tooOld=%v", len(batches), tooOld)
	}
	// Length mismatch (different shard layout) is a snapshot case too.
	if _, tooOld = h.Since([]uint64{3}, 0); !tooOld {
		t.Fatal("layout mismatch not reported tooOld")
	}
}

func TestVoteRestrictionProtectsAckedWrites(t *testing.T) {
	ahead := map[string]Position{"c": {Shards: 2, Seq: 5, Epochs: []uint64{3, 2}}}
	behind := map[string]Position{"c": {Shards: 2, Seq: 4, Epochs: []uint64{2, 2}}}
	if candidateCurrent(behind, ahead) {
		t.Fatal("behind candidate accepted by ahead voter")
	}
	if !candidateCurrent(ahead, behind) {
		t.Fatal("ahead candidate rejected by behind voter")
	}
	if !candidateCurrent(ahead, ahead) {
		t.Fatal("equal candidate rejected")
	}
	// A voter without the corpus accepts either.
	if !candidateCurrent(behind, map[string]Position{}) {
		t.Fatal("corpus-less voter rejected candidate")
	}
}
