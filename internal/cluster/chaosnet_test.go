package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chaos"
)

// chaosCluster wires count members through one shared chaos.Injector: every
// node's RPC client goes through Transport(id) and every handler sits
// behind Inbound(id), so a single SetRules call reshapes the topology.
func chaosCluster(t *testing.T, count int, inj *chaos.Injector) []*testNode {
	t.Helper()
	nodes := make([]*testNode, count)
	peers := make(map[string]string, count)
	for i := range nodes {
		proxy := &handlerProxy{}
		srv := httptest.NewServer(proxy)
		t.Cleanup(srv.Close)
		id := fmt.Sprintf("n%d", i)
		nodes[i] = &testNode{id: id, srv: srv, proxy: proxy, backend: newTestBackend()}
		peers[id] = srv.URL
	}
	inj.SetPeers(peers)
	for i, tn := range nodes {
		node, err := NewNode(Config{
			ID:                tn.id,
			Peers:             peers,
			Backend:           tn.backend,
			HeartbeatInterval: 20 * time.Millisecond,
			ElectionTimeout:   120 * time.Millisecond,
			PullWait:          100 * time.Millisecond,
			Client:            &http.Client{Transport: inj.Transport(tn.id, nil)},
			Seed:              int64(i + 1),
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatalf("NewNode %s: %v", tn.id, err)
		}
		tn.node = node
		tn.backend.node = node
		tn.proxy.mu.Lock()
		tn.proxy.h = inj.Inbound(tn.id, node.Handler())
		tn.proxy.mu.Unlock()
		node.Start()
		t.Cleanup(node.Stop)
	}
	return nodes
}

// TestOneWayPartitionNoEndlessReelection is the regression test for the
// pre-vote fix. The failure it guards against: a follower is first fully
// isolated (historically its election timer would ratchet its term far
// above the leader's), then the partition turns asymmetric — the follower
// hears the leader's heartbeats, but nothing the follower sends (votes,
// heartbeat replies) gets through. Pre-fix, the inflated term made the
// follower reject the heartbeats it could hear (no timer reset), and with
// its own vote requests lost it stood for election forever. With pre-vote,
// the isolated phase never inflates the term, so the asymmetric phase
// finds a follower that still accepts the leader's heartbeats and stays
// quietly in line.
func TestOneWayPartitionNoEndlessReelection(t *testing.T) {
	inj := chaos.New(11)
	nodes := chaosCluster(t, 3, inj)
	leader := waitLeader(t, nodes, nil)
	_, leaderTerm, _ := leader.node.Role()

	var follower *testNode
	for _, tn := range nodes {
		if tn != leader {
			follower = tn
			break
		}
	}
	faultsBefore := chaos.TotalFaults()
	preVotesBefore := MetricPreVotes.Value()

	// Phase 1: fully isolate the follower for ~5 election timeouts. Its
	// timer fires repeatedly; every stand must die in the pre-vote round
	// without touching its term.
	inj.SetRules([]chaos.Rule{{From: follower.id, To: "*", Kind: chaos.KindPartition}})
	time.Sleep(600 * time.Millisecond)
	if _, fterm, _ := follower.node.Role(); fterm != leaderTerm {
		t.Fatalf("isolated follower inflated its term to %d (leader at %d)", fterm, leaderTerm)
	}
	if MetricPreVotes.Value() == preVotesBefore {
		t.Fatal("isolated follower never ran a pre-vote round")
	}

	// Phase 2: asymmetric partition — the leader's requests reach the
	// follower, but every reply is dropped and everything the follower
	// originates is blocked. The follower must settle behind the leader it
	// can hear, at the leader's term, for the whole window.
	inj.SetRules([]chaos.Rule{
		{From: follower.id, To: "*", Kind: chaos.KindOneWay},
		{From: "*", To: follower.id, Kind: chaos.KindReplyDrop},
	})
	deadline := time.Now().Add(720 * time.Millisecond)
	settled := false
	for time.Now().Before(deadline) {
		role, fterm, flead := follower.node.Role()
		if fterm > leaderTerm {
			t.Fatalf("follower inflated its term to %d under asymmetric partition (leader at %d)", fterm, leaderTerm)
		}
		if lrole, lterm, _ := leader.node.Role(); lrole != RoleLeader || lterm != leaderTerm {
			t.Fatalf("leader destabilized: role=%s term=%d (was %d)", lrole, lterm, leaderTerm)
		}
		if role == RoleFollower && fterm == leaderTerm && flead == leader.id {
			settled = true
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !settled {
		t.Fatal("follower never settled behind the audible leader during the asymmetric phase")
	}

	// Heal: the same leader at the same term, and the follower in line.
	inj.SetRules(nil)
	healed := waitLeader(t, nodes, nil)
	if healed.id != leader.id {
		t.Fatalf("leadership moved to %s after heal (was %s)", healed.id, leader.id)
	}
	if _, term, _ := healed.node.Role(); term != leaderTerm {
		t.Fatalf("term inflated to %d across the drill (was %d)", term, leaderTerm)
	}
	if chaos.TotalFaults() == faultsBefore {
		t.Fatal("no chaos faults were counted")
	}
}
