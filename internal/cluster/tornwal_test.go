package cluster

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	approxsel "repro"
)

// TestTornWALTailReship covers the crash-mid-ship corner of satellite
// replication: a durable follower loses the tail of one shard's WAL (torn
// write), restarts at a regressed epoch vector, and must catch back up by
// re-requesting from the vector it actually holds — never by skipping.
// The leader's history re-ships whole batches; idempotent per-shard apply
// re-applies exactly what was lost.
func TestTornWALTailReship(t *testing.T) {
	recs := clusterData(t)
	src, err := approxsel.OpenShardedCorpus(recs[:40], 2)
	if err != nil {
		t.Fatalf("open source: %v", err)
	}
	hist := NewHistory(Position{Seq: src.Seq(), Epochs: src.Epochs()}, 0, 0)
	src.SetReplicationObserver(func(b approxsel.ReplicationBatch) { hist.Append(b, 1) })

	// A durable follower installed from the source's snapshot.
	dir := filepath.Join(t.TempDir(), "follower")
	var buf bytes.Buffer
	if err := src.WriteReplicaSnapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	fol, err := approxsel.OpenReplicaSnapshot(&buf, dir)
	if err != nil {
		t.Fatalf("install: %v", err)
	}

	// Six upserts of one record: six consecutive epochs on a single shard,
	// all shipped and applied (and WAL-logged) at the follower.
	for i := 0; i < 6; i++ {
		if err := src.Upsert(approxsel.Record{TID: recs[0].TID, Text: recs[60+i].Text}); err != nil {
			t.Fatalf("upsert: %v", err)
		}
	}
	batches, _, tooOld := hist.Since(fol.Epochs(), 0)
	if tooOld || len(batches) != 6 {
		t.Fatalf("ship: %d batches, tooOld=%v", len(batches), tooOld)
	}
	for _, b := range batches {
		if err := fol.ApplyReplicated(b); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	ackedVec := fol.Epochs()
	if err := fol.CloseStore(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the tail: truncate the mutated shard's WAL to its header plus a
	// few garbage bytes, as a crash mid-write would. The store's replay
	// must drop the torn tail, not refuse the shard.
	torn := false
	for i := 0; i < 2; i++ {
		wal := filepath.Join(dir, "shard-000"+string(rune('0'+i)), "wal.log")
		fi, err := os.Stat(wal)
		if err != nil {
			t.Fatalf("stat %s: %v", wal, err)
		}
		if fi.Size() > 16 {
			if err := os.Truncate(wal, 15); err != nil {
				t.Fatalf("truncate: %v", err)
			}
			torn = true
		}
	}
	if !torn {
		t.Fatal("test vacuous: no WAL grew past its header")
	}

	re, err := approxsel.OpenShardedCorpus(nil, 0, approxsel.WithDataDir(dir))
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	reVec := re.Epochs()
	if vectorGE(reVec, ackedVec) {
		t.Fatalf("test vacuous: reopened at %v, acked was %v", reVec, ackedVec)
	}

	// Never skip: applying only the newest shipped batch would jump the
	// regressed shard several epochs ahead — it must be refused as a gap.
	if err := re.ApplyReplicated(batches[len(batches)-1]); !errors.Is(err, approxsel.ErrReplicaGap) {
		t.Fatalf("skip-ahead apply: got %v, want ErrReplicaGap", err)
	}

	// Re-request from the vector the follower actually holds: the history
	// re-ships the lost window, idempotent apply replays exactly it.
	reship, _, tooOld := hist.Since(reVec, 0)
	if tooOld || len(reship) == 0 {
		t.Fatalf("re-request: %d batches, tooOld=%v", len(reship), tooOld)
	}
	for _, b := range reship {
		if err := re.ApplyReplicated(b); err != nil {
			t.Fatalf("re-apply: %v", err)
		}
	}
	got := re.Epochs()
	want := src.Epochs()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("converged to %v, source at %v", got, want)
		}
	}
	// Bit-identical content, not just matching vectors.
	sp, err := src.Predicate("Jaccard")
	if err != nil {
		t.Fatal(err)
	}
	rp, err := re.Predicate("Jaccard")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{recs[0].Text, recs[63].Text, recs[65].Text} {
		ms, err := sp.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		mr, err := rp.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != len(mr) {
			t.Fatalf("select %q: %d vs %d", q, len(ms), len(mr))
		}
		for i := range ms {
			if ms[i] != mr[i] {
				t.Fatalf("select %q match %d: %+v vs %+v", q, i, ms[i], mr[i])
			}
		}
	}
	if err := re.CloseStore(); err != nil {
		t.Fatalf("final close: %v", err)
	}
}
