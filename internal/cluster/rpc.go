package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// ---- wire types ----

// VoteRequest asks for this node's vote at the candidate's term. Position
// carries the candidate's replication position per corpus; a voter only
// grants to candidates at-or-past its own position, so an elected leader
// always holds every majority-acknowledged mutation.
type VoteRequest struct {
	Term      uint64              `json:"term"`
	Candidate string              `json:"candidate"`
	Position  map[string]Position `json:"position"`
	// PreVote marks a trial ballot: the candidate probes whether it could
	// win at Term before bumping its own term. Voters answer statelessly —
	// no term adoption, no votedFor consumption, no election-timer reset —
	// so an unwinnable candidacy (an isolated node) cannot inflate terms
	// and depose a healthy leader when the partition heals.
	PreVote bool `json:"pre_vote,omitempty"`
}

// VoteResponse reports the voter's term and whether the vote was granted.
type VoteResponse struct {
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted"`
}

// HeartbeatRequest asserts leadership at a term and advertises the
// leader's replication position (which is also how followers learn the
// corpus list to sync).
type HeartbeatRequest struct {
	Term     uint64              `json:"term"`
	Leader   string              `json:"leader"`
	Position map[string]Position `json:"position"`
}

// HeartbeatResponse acknowledges (or rejects, by returning a higher term)
// a heartbeat; Position reports the follower's applied position, the
// leader's acknowledgement and lag source.
type HeartbeatResponse struct {
	Term     uint64              `json:"term"`
	OK       bool                `json:"ok"`
	Position map[string]Position `json:"position"`
}

// PullRequest asks for the replication batches past the follower's epoch
// vector, long-polling up to WaitMS when the follower is caught up.
// FromSeq/FromTerm name the last batch the follower applied — the lineage
// handshake (a zero term is an unknown lineage, trusted as far as the
// numeric position allows).
type PullRequest struct {
	Node     string   `json:"node"`
	Corpus   string   `json:"corpus"`
	From     []uint64 `json:"from"`
	FromSeq  uint64   `json:"from_seq"`
	FromTerm uint64   `json:"from_term,omitempty"`
	WaitMS   int      `json:"wait_ms"`
}

// PullResponse carries the batches to apply in order, with Terms[i] the
// election term batch i was created under. TooOld reports a follower
// behind the retained history window; Diverged reports a follower whose
// (seq, term) claim is not on this node's lineage — a conflicting fork.
// Either way it must re-join from a full snapshot (replication never
// skips epochs, and never silently absorbs a fork).
type PullResponse struct {
	TooOld   bool               `json:"too_old,omitempty"`
	Diverged bool               `json:"diverged,omitempty"`
	Batches  []ReplicationBatch `json:"batches,omitempty"`
	Terms    []uint64           `json:"terms,omitempty"`
	Position Position           `json:"position"`
}

// Status is the /cluster/status payload.
type Status struct {
	ID       string                `json:"id"`
	Role     Role                  `json:"role"`
	Term     uint64                `json:"term"`
	Leader   string                `json:"leader,omitempty"`
	Peers    map[string]PeerStatus `json:"peers,omitempty"`
	Position map[string]Position   `json:"position"`
}

// PeerStatus is one peer's liveness entry in Status.
type PeerStatus struct {
	URL        string  `json:"url"`
	LastSeenMS int64   `json:"last_seen_ms"` // ms since last contact; -1 = never
	Alive      bool    `json:"alive"`
	Lag        LagInfo `json:"lag"`
}

// ---- peer client ----

// post issues one RPC attempt under the standard per-attempt deadline
// (Config.RPCTimeout, derived from ElectionTimeout).
func (n *Node) post(baseURL, path string, req, resp any) error {
	return n.postTimeout(baseURL, path, n.cfg.RPCTimeout, req, resp)
}

// postTimeout issues one RPC attempt bounded by the given deadline; the
// context cancellation tears down the connection, so a hung peer costs at
// most the deadline, never a stuck goroutine.
func (n *Node) postTimeout(baseURL, path string, timeout time.Duration, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	r, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	r.Header.Set("Content-Type", "application/json")
	res, err := n.cfg.Client.Do(r)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s%s: HTTP %d", baseURL, path, res.StatusCode)
	}
	return json.NewDecoder(res.Body).Decode(resp)
}

// ---- RPC handlers ----

// Handler returns the node's replication and election RPC surface, to be
// mounted under /cluster/ on the node's HTTP server.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/vote", n.handleVote)
	mux.HandleFunc("POST /cluster/heartbeat", n.handleHeartbeat)
	mux.HandleFunc("POST /cluster/pull", n.handlePull)
	mux.HandleFunc("GET /cluster/snapshot", n.handleSnapshot)
	mux.HandleFunc("GET /cluster/status", n.handleStatus)
	return mux
}

func rpcError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func rpcJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (n *Node) handleVote(w http.ResponseWriter, r *http.Request) {
	var req VoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	mine := n.positions()
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.PreVote {
		// Trial ballot: answer from current state without changing any of
		// it. The same refusal reasons as a real vote apply — a candidate
		// that would lose the real election must learn so here, before it
		// inflates its term.
		resp := VoteResponse{Term: n.term}
		switch {
		case req.Term < n.term:
			// Stale candidate.
		case n.leaderID != "" && n.leaderID != req.Candidate && time.Since(n.lastContact) < n.cfg.ElectionTimeout &&
			!strictlyAhead(req.Position, n.leaderPos):
			// A live leader exists (same suppression — and the same
			// stranded-corpus exception — as the real ballot below).
		case !candidateCurrent(req.Position, mine):
			// The candidate is behind us on some corpus.
		default:
			resp.Granted = true
		}
		rpcJSON(w, resp)
		return
	}
	if req.Term > n.term {
		n.term = req.Term
		n.votedFor = ""
		if n.role != RoleFollower {
			n.role = RoleFollower
		}
		n.persistLocked()
	}
	resp := VoteResponse{Term: n.term}
	switch {
	case req.Term < n.term:
		// Stale candidate.
	case n.votedFor != "" && n.votedFor != req.Candidate:
		// Already voted this term.
	case n.leaderID != "" && n.leaderID != req.Candidate && time.Since(n.lastContact) < n.cfg.ElectionTimeout &&
		!strictlyAhead(req.Position, n.leaderPos):
		// A live leader exists; don't let a flapping node disrupt it. The
		// exception is a candidate that provably holds corpora (or epochs)
		// the current leader lacks: deposing in its favour is the only way
		// a corpus stranded on a follower can reach a leader that will
		// replicate it.
	case !candidateCurrent(req.Position, mine):
		// The candidate is behind us on some corpus: electing it could lose
		// majority-acknowledged mutations.
		n.logf("cluster %s: refusing vote to %s at term %d: candidate position %v behind ours %v",
			n.id, req.Candidate, req.Term, req.Position, mine)
	default:
		n.votedFor = req.Candidate
		n.persistLocked()
		n.lastContact = time.Now()
		n.resetElectionLocked()
		resp.Granted = true
		n.logf("cluster %s: granting vote to %s at term %d (position %v, ours %v)",
			n.id, req.Candidate, req.Term, req.Position, mine)
	}
	rpcJSON(w, resp)
}

// candidateCurrent reports whether the candidate's position covers every
// corpus this node holds (extra candidate corpora are fine).
func candidateCurrent(cand, mine map[string]Position) bool {
	for name, p := range mine {
		cp, ok := cand[name]
		if !ok || !cp.Covers(p) {
			return false
		}
	}
	return true
}

// strictlyAhead reports whether cand covers everything in the leader's
// advertised position while holding at least one corpus (or epoch) the
// leader lacks.
func strictlyAhead(cand, leader map[string]Position) bool {
	return candidateCurrent(cand, leader) && !candidateCurrent(leader, cand)
}

func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	mine := n.positions()
	n.mu.Lock()
	resp := HeartbeatResponse{Term: n.term, Position: mine}
	if req.Term >= n.term {
		if req.Term > n.term {
			n.term = req.Term
			n.votedFor = ""
			n.persistLocked()
		}
		if n.role != RoleFollower {
			n.logf("cluster %s: yielding to leader %s at term %d", n.id, req.Leader, req.Term)
			n.role = RoleFollower
		}
		n.leaderID = req.Leader
		n.leaderPos = req.Position
		n.lastContact = time.Now()
		n.peerSeen[req.Leader] = time.Now()
		// A heartbeat defers this node's own candidacy only when the leader
		// covers every local corpus. A leader that does not (an empty
		// bootstrap winner while this node carries a preloaded corpus) can
		// never replicate what it has never seen, so the election timer
		// stays armed and this node stands to reclaim the corpus.
		if candidateCurrent(req.Position, mine) {
			n.stranded = false
			n.resetElectionLocked()
		} else if !n.stranded {
			n.stranded = true
			n.logf("cluster %s: leader %s does not cover local corpora (leader %v, ours %v); keeping election timer armed",
				n.id, req.Leader, req.Position, mine)
		}
		resp.OK = true
		resp.Term = n.term
	}
	n.mu.Unlock()
	rpcJSON(w, resp)
}

// maxPullWait caps a pull's long-poll regardless of the request.
const maxPullWait = 30 * time.Second

func (n *Node) handlePull(w http.ResponseWriter, r *http.Request) {
	MetricPullsServed.Inc()
	var req PullRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	pos, ok := n.position(req.Corpus)
	if !ok {
		rpcError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown corpus %q", req.Corpus))
		return
	}
	// A From vector of the wrong length is a different shard layout: the
	// follower must snapshot-join, and its claim is no acknowledgement.
	if len(req.From) != len(pos.Epochs) {
		rpcJSON(w, PullResponse{TooOld: true, Position: pos})
		return
	}
	h := n.ensureHistory(req.Corpus, pos)
	// Lineage handshake: the follower's (seq, term) must name a batch this
	// node's stream produced. A mismatch — or a follower claiming batches
	// past this node's head — is a conflicting fork (typically a deposed
	// leader's unacknowledged suffix at the same numeric position); it
	// must discard its copy and re-join from a snapshot. Without this
	// check the epoch-blind idempotent apply downstream would silently
	// skip the conflicting batches and the replica would diverge forever.
	if !h.LineageOK(req.FromSeq, req.FromTerm) {
		rpcJSON(w, PullResponse{Diverged: true, Position: pos})
		return
	}
	// The pull is the follower's acknowledgement: its From vector is
	// exactly what it has durably applied — recorded only now that the
	// corpus resolved, the shard layout matched and the lineage checked
	// out.
	n.recordAck(req.Node, map[string]Position{req.Corpus: {Seq: req.FromSeq, Epochs: req.From, Term: req.FromTerm}})
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxPullWait {
		wait = maxPullWait
	}
	deadline := time.Now().Add(wait)
	for {
		ch := h.Chan()
		batches, terms, tooOld := h.Since(req.From, n.cfg.MaxPullBatches)
		if tooOld || len(batches) > 0 || !time.Now().Before(deadline) {
			cur, _ := n.position(req.Corpus)
			rpcJSON(w, PullResponse{TooOld: tooOld, Batches: batches, Terms: terms, Position: cur})
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		case <-n.stopCh:
			// Stopping: answer with the current position instead of
			// spinning on the closed channel until the deadline.
			timer.Stop()
			cur, _ := n.position(req.Corpus)
			rpcJSON(w, PullResponse{Position: cur})
			return
		}
		timer.Stop()
	}
}

// Snapshot lineage headers: the (seq, term) of the serving node's history
// head when the response started. The joiner adopts the term as its
// lineage only if the installed snapshot lands at exactly that sequence
// number (a mutation racing the transfer makes the pair stale — the
// joiner then records an unknown lineage, which is safe).
const (
	snapshotSeqHeader  = "X-Approxcluster-Seq"
	snapshotTermHeader = "X-Approxcluster-Term"
)

func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	corpus := r.URL.Query().Get("corpus")
	if corpus == "" {
		rpcError(w, http.StatusBadRequest, fmt.Errorf("cluster: missing corpus"))
		return
	}
	if _, ok := n.cfg.Backend.Position(corpus); !ok {
		rpcError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown corpus %q", corpus))
		return
	}
	var headSeq, headTerm uint64
	if h := n.history(corpus); h != nil {
		headSeq, headTerm = h.Head()
	}
	w.Header().Set(snapshotSeqHeader, strconv.FormatUint(headSeq, 10))
	w.Header().Set(snapshotTermHeader, strconv.FormatUint(headTerm, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := n.cfg.Backend.WriteSnapshot(corpus, w); err != nil {
		// Headers are gone; the truncated stream fails the joiner's length
		// checks.
		n.logf("cluster %s: snapshot of %q: %v", n.id, corpus, err)
	}
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	rpcJSON(w, n.StatusSnapshot())
}

// StatusSnapshot assembles the node's cluster status.
func (n *Node) StatusSnapshot() Status {
	pos := n.positions()
	lag := n.ReplicationLag()
	n.mu.Lock()
	st := Status{
		ID:       n.id,
		Role:     n.role,
		Term:     n.term,
		Leader:   n.leaderID,
		Peers:    make(map[string]PeerStatus, len(n.peers)),
		Position: pos,
	}
	isLeader := n.role == RoleLeader
	for id, url := range n.peers {
		ps := PeerStatus{URL: url, LastSeenMS: -1}
		if t, ok := n.peerSeen[id]; ok && !t.IsZero() {
			ps.LastSeenMS = time.Since(t).Milliseconds()
			ps.Alive = time.Since(t) < n.cfg.LeaseTimeout
		}
		st.Peers[id] = ps
	}
	n.mu.Unlock()
	if isLeader {
		// Lag is meaningful from the leader's vantage: fold the widest
		// corpus lag into each live peer row (per-corpus detail is in the
		// stats endpoint).
		var worst LagInfo
		for _, l := range lag {
			if l.MaxEpochs > worst.MaxEpochs {
				worst = l
			}
		}
		for id, ps := range st.Peers {
			ps.Lag = worst
			st.Peers[id] = ps
		}
	}
	return st
}
