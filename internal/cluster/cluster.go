// Package cluster implements approxcluster, the replicated serving layer:
// N nodes, one elected leader accepting all mutations, followers pulling
// epoch-stamped WAL batches over a streaming replication RPC and applying
// them through the ordinary mutation path, so every replica is bit-identical
// — same scores, same tie order, same shard-epoch vector — at every version
// of the relation.
//
// The replication contract rides entirely on the shard-epoch vector:
//
//   - The unit of replication is the logical mutation batch exactly as the
//     write-ahead log stores it (one corpus-wide sequence number, one
//     epoch-stamped sub-mutation per touched shard).
//   - A follower pulls from its current vector; the leader re-ships every
//     batch not fully covered by it. Application is idempotent per shard,
//     so re-delivery after a torn WAL tail or a reconnect re-applies only
//     what was lost and never skips an epoch.
//   - Batches are tagged with the election term of the leader that
//     created them, and a pull opens with a (seq, term) lineage handshake:
//     epoch vectors name positions only numerically, so a deposed leader's
//     unacknowledged suffix can collide with the new leader's batches at
//     the same epochs — the term tag detects exactly that fork and routes
//     the replica through the snapshot re-join instead of letting
//     idempotent apply silently skip the conflicting batches.
//   - A follower whose vector predates the leader's retained history —
//     or whose state diverges — discards its copy and re-joins from a
//     full snapshot stream at an exact vector.
//
// Election is lease-based with term numbers (persisted through the store
// layer so a restarted node never votes twice in one term): followers
// time out into candidates, candidates need a majority, and a voter only
// grants to candidates whose replication position is at-or-past its own,
// with the lineage term dominating the numeric vector (Raft's last-log
// ordering) — combined with majority-acknowledged mutations, an
// acknowledged write survives any single-node failure, including the
// leader's, and a deposed leader's fork can never win an election over
// the acknowledged lineage.
package cluster

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	approxsel "repro"
	"repro/internal/store"
)

// ReplicationBatch is the unit of replication: one logical epoch-stamped
// mutation batch, exactly the write-ahead log's replay grouping.
type ReplicationBatch = approxsel.ReplicationBatch

// Role names a node's current election state.
type Role string

const (
	RoleFollower  Role = "follower"
	RoleCandidate Role = "candidate"
	RoleLeader    Role = "leader"
)

// Position is one corpus's replication position: the shard layout, the
// corpus-wide batch sequence number, the shard-epoch vector, and the
// election term under which the last batch was applied (zero = unknown,
// e.g. state recovered from a WAL, which carries no terms).
type Position struct {
	Shards int      `json:"shards"`
	Seq    uint64   `json:"seq"`
	Epochs []uint64 `json:"epochs"`
	Term   uint64   `json:"term,omitempty"`
}

// Covers reports whether position p is at-or-past q. When both sides know
// their lineage term, the newer term dominates outright (Raft's last-log
// ordering): two diverged replicas can sit at the same numeric epochs with
// different content, and only the position on the newer leader's lineage
// may hold majority-acknowledged batches — a deposed leader's
// unacknowledged fork must never out-vote it. With a term unknown on
// either side the comparison falls back to the numeric vector: every shard
// epoch and the sequence number at least as advanced.
func (p Position) Covers(q Position) bool {
	if p.Term != 0 && q.Term != 0 && p.Term != q.Term {
		return p.Term > q.Term
	}
	if len(p.Epochs) != len(q.Epochs) || p.Seq < q.Seq {
		return false
	}
	return vectorGE(p.Epochs, q.Epochs)
}

// vectorGE reports a >= b element-wise (false on length mismatch).
func vectorGE(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// Backend is the node's view of the serving layer it replicates: the
// loaded corpora, their positions, and the three replication verbs. The
// server implements it; Apply must route through the same mutation
// serialization as client mutations.
type Backend interface {
	// Corpora lists the loaded corpus names.
	Corpora() []string
	// Position reports one corpus's replication position; ok is false for
	// an unknown corpus.
	Position(name string) (Position, bool)
	// Apply applies one replicated batch. It returns approxsel.ErrReplicaGap
	// when the batch would skip an epoch (the follower re-pulls from its
	// current vector) and approxsel.ErrReplicaDiverged when the replica must
	// discard its state and re-join from a snapshot.
	Apply(name string, b ReplicationBatch) error
	// WriteSnapshot streams the corpus's full replica snapshot.
	WriteSnapshot(name string, w io.Writer) error
	// InstallSnapshot replaces (or creates) the corpus from a replica
	// snapshot stream.
	InstallSnapshot(name string, r io.Reader) error
}

// Config tunes one cluster node; ID, Peers and Backend are required.
type Config struct {
	// ID is this node's name; it must appear in Peers.
	ID string
	// Peers maps node ID to base URL ("http://host:port") for every cluster
	// member, including this node. A single-entry map is a cluster of one.
	Peers map[string]string
	// DataDir, when set, persists the election term and vote durably (a
	// restarted node never votes twice in one term). Empty keeps election
	// state in memory.
	DataDir string
	// Backend is the serving layer this node replicates.
	Backend Backend

	// HeartbeatInterval is the leader's heartbeat period; <= 0 selects 100ms.
	HeartbeatInterval time.Duration
	// ElectionTimeout is the base follower timeout before standing for
	// election (randomized to [T, 2T)); <= 0 selects 500ms.
	ElectionTimeout time.Duration
	// LeaseTimeout is how long a leader serves without majority contact
	// before stepping down; <= 0 selects 2×ElectionTimeout.
	LeaseTimeout time.Duration
	// PullWait bounds one replication long-poll; <= 0 selects 500ms.
	PullWait time.Duration
	// MaxPullBatches caps batches per pull response; < 1 selects 256.
	MaxPullBatches int
	// RPCTimeout bounds one vote, heartbeat or pull-handshake attempt;
	// <= 0 selects 2×ElectionTimeout — an answer that arrives later than
	// that is useless, because the election timer it should have reset has
	// already fired. Replication pulls get PullWait+RPCTimeout (the server
	// holds a long-poll for up to PullWait by design).
	RPCTimeout time.Duration
	// SnapshotTimeout bounds one snapshot-join stream; <= 0 selects
	// 120×ElectionTimeout. Joins ship the whole corpus, so they scale with
	// data size, not with election cadence — but they must still terminate.
	SnapshotTimeout time.Duration
	// RetryBudget caps attempts (with jittered exponential backoff) for
	// forwarded mutations and replication pulls; < 1 selects 4. Votes and
	// heartbeats never retry — the election and heartbeat loops re-fire
	// them every tick. A follower that exhausts the budget×RPCTimeout
	// window without leader contact reports Degraded, and the server
	// serves stale-marked reads instead of erroring.
	RetryBudget int
	// HistoryEntries / HistoryBytes bound the per-corpus re-ship window;
	// < 1 selects the History defaults.
	HistoryEntries int
	HistoryBytes   int64

	// Client issues the node's peer RPCs; nil selects a default with
	// sensible timeouts.
	Client *http.Client
	// Logf, when set, receives one line per role change and join.
	Logf func(format string, args ...any)
	// Seed randomizes election jitter deterministically in tests; 0 derives
	// a seed from the node ID.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 500 * time.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * c.ElectionTimeout
	}
	if c.PullWait <= 0 {
		c.PullWait = 500 * time.Millisecond
	}
	if c.MaxPullBatches < 1 {
		c.MaxPullBatches = 256
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * c.ElectionTimeout
	}
	if c.SnapshotTimeout <= 0 {
		c.SnapshotTimeout = 120 * c.ElectionTimeout
	}
	if c.RetryBudget < 1 {
		c.RetryBudget = 4
	}
	if c.Client == nil {
		// No flat client timeout: every RPC carries a per-attempt context
		// deadline derived from ElectionTimeout (RPCTimeout, PullWait+
		// RPCTimeout, or SnapshotTimeout depending on the call).
		c.Client = &http.Client{}
	}
	return c
}

// Node is one cluster member. Construct with NewNode, mount Handler under
// /cluster/ on the node's HTTP server, wire every corpus's replication
// observer to Record, then Start.
type Node struct {
	cfg   Config
	id    string
	peers map[string]string // excludes self

	mu          sync.Mutex
	role        Role
	term        uint64
	votedFor    string
	leaderID    string
	leaderPos   map[string]Position // from the last valid heartbeat
	stranded    bool                // current leader misses a local corpus
	lastContact time.Time           // last valid leader/candidate contact
	electionAt  time.Time           // when the follower stands for election
	peerSeen    map[string]time.Time
	hist        map[string]*History
	acks        map[string]map[string]Position
	ackCh       chan struct{}
	rng         *rand.Rand
	// corpusTerm is the election term under which each corpus's last batch
	// was applied — the lineage tag echoed in pull requests and vote
	// positions (Raft's last-log term). applyTerm is set by the sync loop
	// around Backend.Apply so Record stamps shipped batches with the term
	// their leader created them under, not this node's current term.
	corpusTerm map[string]uint64
	applyTerm  map[string]uint64

	stopCh  chan struct{}
	wg      sync.WaitGroup
	started bool
}

// NewNode validates the configuration and returns an unstarted node.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, fmt.Errorf("cluster: empty node ID")
	}
	if cfg.Backend == nil {
		return nil, fmt.Errorf("cluster: nil backend")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("cluster: node %q does not appear in its own peer map", cfg.ID)
	}
	seed := cfg.Seed
	if seed == 0 {
		for _, b := range []byte(cfg.ID) {
			seed = seed*131 + int64(b)
		}
		seed ^= time.Now().UnixNano()
	}
	n := &Node{
		cfg:        cfg,
		id:         cfg.ID,
		peers:      make(map[string]string),
		role:       RoleFollower,
		peerSeen:   make(map[string]time.Time),
		hist:       make(map[string]*History),
		acks:       make(map[string]map[string]Position),
		ackCh:      make(chan struct{}),
		corpusTerm: make(map[string]uint64),
		applyTerm:  make(map[string]uint64),
		rng:        rand.New(rand.NewSource(seed)),
		stopCh:     make(chan struct{}),
	}
	for id, url := range cfg.Peers {
		if id != cfg.ID {
			n.peers[id] = url
		}
	}
	if cfg.DataDir != "" {
		st, err := store.ReadNodeState(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		n.term, n.votedFor = st.Term, st.VotedFor
	}
	return n, nil
}

// ID returns the node's name.
func (n *Node) ID() string { return n.id }

// ClusterSize returns the member count (peers plus self).
func (n *Node) ClusterSize() int { return len(n.peers) + 1 }

// Client returns the HTTP client the node issues peer RPCs with — shared
// by the server's write forwarding so both obey one timeout policy.
func (n *Node) Client() *http.Client { return n.cfg.Client }

// majority returns the quorum size over all members.
func (n *Node) majority() int { return n.ClusterSize()/2 + 1 }

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Start launches the election and replication loops. A cluster of one
// becomes leader on its first election tick without any RPCs.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.lastContact = time.Now()
	n.resetElectionLocked()
	n.mu.Unlock()
	// Seed histories for corpora loaded before the node started, so a
	// follower at the same base can catch up without a snapshot join.
	for _, name := range n.cfg.Backend.Corpora() {
		if p, ok := n.position(name); ok {
			n.ensureHistory(name, p)
		}
	}
	n.wg.Add(2)
	go n.runElections()
	go n.runSync()
}

// Stop halts the node's loops. It does not unmount the RPC handlers.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	close(n.stopCh)
	n.mu.Unlock()
	n.wg.Wait()
}

// persistLocked durably records the current term and vote; it must precede
// any message revealing either (a node must never vote twice in one term).
func (n *Node) persistLocked() {
	if n.cfg.DataDir == "" {
		return
	}
	if err := store.WriteNodeState(n.cfg.DataDir, store.NodeState{Term: n.term, VotedFor: n.votedFor}); err != nil {
		n.logf("cluster %s: persisting term %d: %v", n.id, n.term, err)
	}
}

func (n *Node) resetElectionLocked() {
	jitter := time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
	n.electionAt = time.Now().Add(n.cfg.ElectionTimeout + jitter)
}

// stepDownLocked adopts a newer term as a follower.
func (n *Node) stepDownLocked(term uint64) {
	if term > n.term {
		n.term = term
		n.votedFor = ""
		n.persistLocked()
	}
	if n.role != RoleFollower {
		n.logf("cluster %s: stepping down to follower at term %d", n.id, n.term)
	}
	n.role = RoleFollower
	n.lastContact = time.Now()
	n.resetElectionLocked()
}

// Role returns the node's current role, term and known leader.
func (n *Node) Role() (Role, uint64, string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.term, n.leaderID
}

// IsLeader reports whether this node currently leads.
func (n *Node) IsLeader() bool {
	r, _, _ := n.Role()
	return r == RoleLeader
}

// LeaderURL returns the known leader's base URL ("" when leaderless or
// when this node leads).
func (n *Node) LeaderURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leaderID == "" || n.leaderID == n.id {
		return ""
	}
	return n.peers[n.leaderID]
}

// Degraded reports whether this node has gone longer than its full retry
// budget (RetryBudget × RPCTimeout) without valid leader contact — the
// point past which forwarding is hopeless and the server downgrades to
// stale-marked reads for requests without min_epochs pins. The returned
// duration is the current leader-contact lag.
func (n *Node) Degraded() (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started || n.role == RoleLeader {
		return 0, false
	}
	lag := time.Since(n.lastContact)
	budget := time.Duration(n.cfg.RetryBudget) * n.cfg.RPCTimeout
	return lag, lag > budget
}

// ---- replication source hooks ----

// ensureHistory returns the corpus's history, creating it at the given
// base position on first sight.
func (n *Node) ensureHistory(name string, base Position) *History {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hist[name]
	if !ok {
		h = NewHistory(base, n.cfg.HistoryEntries, n.cfg.HistoryBytes)
		n.hist[name] = h
	}
	return h
}

func (n *Node) history(name string) *History {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hist[name]
}

// Record feeds one applied batch into the corpus's replication history —
// the hook the server wires to every corpus's replication observer, on
// leaders and followers alike (a follower's history makes it a re-ship
// source the moment it wins an election). It is called under the corpus's
// mutation lock, so batches arrive in apply order. The batch is stamped
// with the term it was created under: the shipped term when the sync loop
// is applying replicated batches, this node's current term when the batch
// originated locally (the server only accepts mutations while leading, so
// a locally-originated batch's term is the leadership term).
func (n *Node) Record(corpus string, b ReplicationBatch) {
	n.mu.Lock()
	term, shipped := n.applyTerm[corpus]
	if !shipped {
		term = n.term
	}
	n.corpusTerm[corpus] = term
	h := n.hist[corpus]
	n.mu.Unlock()
	if h == nil {
		// First batch of a corpus created at runtime: the window's base is
		// the position just before this batch (untouched shards are at
		// their current epoch; touched shards one before their stamp).
		p, ok := n.cfg.Backend.Position(corpus)
		if !ok {
			return
		}
		base := append([]uint64(nil), p.Epochs...)
		for _, sub := range b.Subs {
			if sub.Shard >= 0 && sub.Shard < len(base) {
				base[sub.Shard] = sub.Epoch - 1
			}
		}
		seq := b.Seq
		if seq > 0 {
			seq--
		}
		h = n.ensureHistory(corpus, Position{Seq: seq, Epochs: base})
	}
	h.Append(b, term)
}

// ---- quorum acknowledgement ----

// recordAck notes a peer's replication position (learned from its pull
// requests and heartbeat responses) and wakes quorum waiters.
func (n *Node) recordAck(peer string, pos map[string]Position) {
	if peer == "" || peer == n.id {
		return
	}
	MetricAcksRecorded.Inc()
	n.mu.Lock()
	m := n.acks[peer]
	if m == nil {
		m = make(map[string]Position)
		n.acks[peer] = m
	}
	for name, p := range pos {
		cur, ok := m[name]
		// Positions only advance; an out-of-order ack never regresses one.
		if !ok || p.Covers(cur) {
			m[name] = p
		}
	}
	n.peerSeen[peer] = time.Now()
	close(n.ackCh)
	n.ackCh = make(chan struct{})
	n.mu.Unlock()
}

// verifiedAck filters a peer's reported positions through the local
// replication histories before recording them as acknowledgements: a
// position whose (seq, term) does not lie on this node's lineage belongs
// to a conflicting fork, and counting it toward quorum would acknowledge a
// write the peer does not actually hold. Liveness still updates even when
// every position is filtered.
func (n *Node) verifiedAck(peer string, pos map[string]Position) {
	ok := make(map[string]Position, len(pos))
	for name, p := range pos {
		if h := n.history(name); h != nil && !h.LineageOK(p.Seq, p.Term) {
			continue
		}
		ok[name] = p
	}
	n.recordAck(peer, ok)
}

// WaitCommitted blocks until a majority of the cluster (counting this
// node) holds the corpus at-or-past the given epoch vector, or the context
// expires. A mutation is acknowledged to the client only after this — so a
// leader killed mid-stream cannot lose an acked write: some majority node
// holds it, and the vote restriction makes exactly such a node the next
// leader.
func (n *Node) WaitCommitted(ctx context.Context, corpus string, epochs []uint64, seq uint64) error {
	target := Position{Seq: seq, Epochs: epochs}
	for {
		n.mu.Lock()
		count := 1 // self: the leader applied before waiting
		for peer := range n.peers {
			if p, ok := n.acks[peer][corpus]; ok && len(p.Epochs) == len(epochs) && vectorGE(p.Epochs, target.Epochs) {
				count++
			}
		}
		need := n.majority()
		ch := n.ackCh
		n.mu.Unlock()
		if count >= need {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: quorum wait for %s at %v: %w", corpus, epochs, ctx.Err())
		case <-ch:
		}
	}
}

// ReplicationLag reports, per corpus, the widest follower lag behind this
// node's position, in epochs (summed over shards) and history bytes.
func (n *Node) ReplicationLag() map[string]LagInfo {
	out := make(map[string]LagInfo)
	for _, name := range n.cfg.Backend.Corpora() {
		p, ok := n.cfg.Backend.Position(name)
		if !ok {
			continue
		}
		info := LagInfo{}
		n.mu.Lock()
		for peer := range n.peers {
			ack, ok := n.acks[peer][name]
			lag := uint64(0)
			if ok && len(ack.Epochs) == len(p.Epochs) {
				for i := range p.Epochs {
					if p.Epochs[i] > ack.Epochs[i] {
						lag += p.Epochs[i] - ack.Epochs[i]
					}
				}
			} else {
				for _, e := range p.Epochs {
					lag += e
				}
			}
			if lag > info.MaxEpochs {
				info.MaxEpochs = lag
			}
		}
		h := n.hist[name]
		n.mu.Unlock()
		if h != nil && info.MaxEpochs > 0 {
			_, _, _, bytes := h.Window()
			info.MaxBytes = bytes
		}
		out[name] = info
	}
	return out
}

// LagInfo is one corpus's replication lag summary.
type LagInfo struct {
	MaxEpochs uint64 `json:"max_epochs"`
	MaxBytes  int64  `json:"max_bytes"`
}

// PeerLiveness reports when each peer was last heard from (zero time =
// never).
func (n *Node) PeerLiveness() map[string]time.Time {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]time.Time, len(n.peers))
	for id := range n.peers {
		out[id] = n.peerSeen[id]
	}
	return out
}

// ---- election and heartbeat loops ----

func (n *Node) runElections() {
	defer n.wg.Done()
	tick := n.cfg.HeartbeatInterval / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var lastHB time.Time
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
		}
		n.mu.Lock()
		role := n.role
		switch role {
		case RoleLeader:
			// Lease: a leader that cannot reach a majority stops serving as
			// one, so a partitioned minority leader cannot acknowledge writes
			// forever.
			alive := 1
			for peer := range n.peers {
				if time.Since(n.peerSeen[peer]) < n.cfg.LeaseTimeout {
					alive++
				}
			}
			if alive < n.majority() {
				n.logf("cluster %s: lease lost (%d/%d reachable)", n.id, alive, n.ClusterSize())
				n.stepDownLocked(n.term)
				n.mu.Unlock()
				continue
			}
			n.mu.Unlock()
			if time.Since(lastHB) >= n.cfg.HeartbeatInterval {
				lastHB = time.Now()
				n.broadcastHeartbeats()
			}
		default:
			stand := time.Now().After(n.electionAt)
			n.mu.Unlock()
			if stand {
				n.startElection()
			}
		}
	}
}

// position reports one corpus's backend position decorated with the
// lineage term of its last applied batch.
func (n *Node) position(name string) (Position, bool) {
	p, ok := n.cfg.Backend.Position(name)
	if !ok {
		return Position{}, false
	}
	n.mu.Lock()
	p.Term = n.corpusTerm[name]
	n.mu.Unlock()
	return p, true
}

// positions snapshots the backend's replication position per corpus,
// decorated with lineage terms.
func (n *Node) positions() map[string]Position {
	out := make(map[string]Position)
	for _, name := range n.cfg.Backend.Corpora() {
		if p, ok := n.position(name); ok {
			out[name] = p
		}
	}
	return out
}

// preVote polls peers at term+1 without bumping the node's own term: a
// node that cannot win (isolated, behind, or facing a live leader) learns
// so without inflating its term. Without this, an asymmetrically
// partitioned follower — one that still hears the leader's heartbeats but
// whose own messages are lost — ratchets its term above the leader's,
// starts rejecting the heartbeats it can hear, and stands for election
// forever. Voters answer pre-votes statelessly (no term adoption, no
// votedFor, no timer reset), so a failed round perturbs nothing.
func (n *Node) preVote(term uint64, pos map[string]Position) bool {
	MetricPreVotes.Inc()
	req := VoteRequest{Term: term, Candidate: n.id, Position: pos, PreVote: true}
	type result struct {
		id   string
		resp VoteResponse
	}
	ch := make(chan result, len(n.peers))
	for id, url := range n.peers {
		id, url := id, url
		go func() {
			var resp VoteResponse
			if err := n.post(url, "/cluster/vote", req, &resp); err != nil {
				return
			}
			ch <- result{id, resp}
		}()
	}
	votes := 1 // self
	deadline := time.NewTimer(n.cfg.RPCTimeout)
	defer deadline.Stop()
	for range n.peers {
		select {
		case r := <-ch:
			n.mu.Lock()
			if r.resp.Term > n.term {
				n.stepDownLocked(r.resp.Term)
				n.mu.Unlock()
				return false
			}
			n.peerSeen[r.id] = time.Now()
			n.mu.Unlock()
			if r.resp.Granted {
				votes++
				if votes >= n.majority() {
					return true
				}
			}
		case <-deadline.C:
			return false
		case <-n.stopCh:
			return false
		}
	}
	return votes >= n.majority()
}

func (n *Node) startElection() {
	pos := n.positions()
	n.mu.Lock()
	// Reset the timer first: a failed pre-vote round must wait a full
	// randomized timeout before the next attempt, not busy-loop.
	n.resetElectionLocked()
	preTerm := n.term + 1
	solo := n.majority() == 1
	n.mu.Unlock()
	if !solo {
		if !n.preVote(preTerm, pos) {
			return
		}
		// The pre-vote round may have taken a while; if a valid leader
		// surfaced meanwhile, standing now would only disrupt it.
		n.mu.Lock()
		settled := n.role == RoleFollower && time.Since(n.lastContact) < n.cfg.ElectionTimeout && !n.stranded
		n.mu.Unlock()
		if settled {
			return
		}
	}
	MetricElections.Inc()
	n.mu.Lock()
	n.term++
	n.votedFor = n.id
	n.role = RoleCandidate
	n.leaderID = ""
	term := n.term
	n.persistLocked()
	n.resetElectionLocked()
	n.mu.Unlock()
	n.logf("cluster %s: standing for election at term %d", n.id, term)

	votes := 1 // self
	var vmu sync.Mutex
	if votes >= n.majority() {
		n.becomeLeader(term)
		return
	}
	req := VoteRequest{Term: term, Candidate: n.id, Position: pos}
	for id, url := range n.peers {
		id, url := id, url
		go func() {
			var resp VoteResponse
			if err := n.post(url, "/cluster/vote", req, &resp); err != nil {
				return
			}
			n.mu.Lock()
			if resp.Term > n.term {
				n.stepDownLocked(resp.Term)
				n.mu.Unlock()
				return
			}
			n.peerSeen[id] = time.Now()
			n.mu.Unlock()
			if !resp.Granted {
				return
			}
			vmu.Lock()
			votes++
			won := votes >= n.majority()
			vmu.Unlock()
			if won {
				n.becomeLeader(term)
			}
		}()
	}
}

func (n *Node) becomeLeader(term uint64) {
	n.mu.Lock()
	if n.term != term || n.role != RoleCandidate {
		n.mu.Unlock()
		return
	}
	n.role = RoleLeader
	n.leaderID = n.id
	for peer := range n.peers {
		n.peerSeen[peer] = time.Now()
	}
	n.mu.Unlock()
	MetricLeaderWins.Inc()
	n.logf("cluster %s: elected leader at term %d", n.id, term)
	n.broadcastHeartbeats()
}

func (n *Node) broadcastHeartbeats() {
	pos := n.positions()
	n.mu.Lock()
	if n.role != RoleLeader {
		n.mu.Unlock()
		return
	}
	term := n.term
	n.mu.Unlock()
	req := HeartbeatRequest{Term: term, Leader: n.id, Position: pos}
	for id, url := range n.peers {
		id, url := id, url
		MetricHeartbeatsSent.Inc()
		go func() {
			var resp HeartbeatResponse
			if err := n.post(url, "/cluster/heartbeat", req, &resp); err != nil {
				return
			}
			if resp.Term > term {
				n.mu.Lock()
				n.stepDownLocked(resp.Term)
				n.mu.Unlock()
				return
			}
			n.verifiedAck(id, resp.Position)
		}()
	}
}
