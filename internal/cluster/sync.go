package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"time"

	approxsel "repro"
)

// The follower sync loop: pull-based streaming replication. Each follower
// long-polls the leader per corpus from its own epoch vector; the leader
// re-ships every retained batch not fully covered by it. Apply is
// idempotent per shard, so redelivery is safe; a gap means the response
// raced history trimming and the follower simply re-pulls; divergence or
// a too-old vector sends the follower through the full-snapshot join.

func (n *Node) runSync() {
	defer n.wg.Done()
	idle := n.cfg.HeartbeatInterval
	for {
		select {
		case <-n.stopCh:
			return
		default:
		}
		n.mu.Lock()
		role := n.role
		leader := n.leaderID
		leaderURL := n.peers[leader]
		var corpora []string
		for name := range n.leaderPos {
			corpora = append(corpora, name)
		}
		n.mu.Unlock()
		if role != RoleFollower || leader == "" || leader == n.id || leaderURL == "" {
			select {
			case <-n.stopCh:
				return
			case <-time.After(idle):
			}
			continue
		}
		progressed := false
		for _, corpus := range corpora {
			ok, err := n.syncCorpus(leaderURL, corpus)
			if err != nil {
				n.logf("cluster %s: sync %q from %s: %v", n.id, corpus, leader, err)
			}
			progressed = progressed || ok
		}
		if !progressed {
			// Every pull long-polled and came back empty (or failed): yield
			// briefly so a dead leader doesn't spin this loop.
			select {
			case <-n.stopCh:
				return
			case <-time.After(idle / 2):
			}
		}
	}
}

// syncCorpus advances one corpus toward the leader: a full-snapshot join
// when the corpus is missing locally or behind the leader's history
// window, otherwise one pull+apply round. It reports whether any state
// changed.
func (n *Node) syncCorpus(leaderURL, corpus string) (bool, error) {
	local, ok := n.cfg.Backend.Position(corpus)
	if !ok {
		return true, n.joinCorpus(leaderURL, corpus)
	}
	req := PullRequest{
		Node:    n.id,
		Corpus:  corpus,
		From:    local.Epochs,
		FromSeq: local.Seq,
		WaitMS:  int(n.cfg.PullWait / time.Millisecond),
	}
	var resp PullResponse
	if err := n.post(leaderURL, "/cluster/pull", req, &resp); err != nil {
		return false, err
	}
	if resp.TooOld {
		return true, n.joinCorpus(leaderURL, corpus)
	}
	applied := false
	for _, b := range resp.Batches {
		err := n.cfg.Backend.Apply(corpus, b)
		switch {
		case err == nil:
			applied = true
		case errors.Is(err, approxsel.ErrReplicaGap):
			// The shipped window started past our vector (history trimmed
			// between Since and our apply, or shards raced). Re-pull from
			// the current vector — never skip.
			return applied, nil
		case errors.Is(err, approxsel.ErrReplicaDiverged):
			return true, n.joinCorpus(leaderURL, corpus)
		default:
			return applied, err
		}
	}
	return applied || len(resp.Batches) > 0, nil
}

// joinCorpus replaces the local corpus with a full snapshot streamed from
// the leader — the catch-up path for new nodes and followers behind the
// retained history window.
func (n *Node) joinCorpus(leaderURL, corpus string) error {
	n.logf("cluster %s: joining corpus %q from %s", n.id, corpus, leaderURL)
	resp, err := n.cfg.Client.Get(leaderURL + "/cluster/snapshot?corpus=" + url.QueryEscape(corpus))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: snapshot of %q: HTTP %d", corpus, resp.StatusCode)
	}
	if err := n.cfg.Backend.InstallSnapshot(corpus, resp.Body); err != nil {
		return fmt.Errorf("cluster: installing %q: %w", corpus, err)
	}
	if p, ok := n.cfg.Backend.Position(corpus); ok {
		n.mu.Lock()
		delete(n.hist, corpus)
		n.mu.Unlock()
		n.ensureHistory(corpus, p.Epochs)
	}
	return nil
}
