package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	approxsel "repro"
)

// cancelBody ties a request context's cancel to the response body's Close,
// so the snapshot stream's deadline is released exactly when the stream is.
type cancelBody struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Read(p []byte) (int, error) { return b.rc.Read(p) }

func (b *cancelBody) Close() error {
	err := b.rc.Close()
	b.cancel()
	return err
}

// The follower sync loop: pull-based streaming replication. Each follower
// long-polls the leader per corpus from its own epoch vector; the leader
// re-ships every retained batch not fully covered by it. Apply is
// idempotent per shard, so redelivery is safe; a gap means the response
// raced history trimming and the follower simply re-pulls; divergence or
// a too-old vector sends the follower through the full-snapshot join.

func (n *Node) runSync() {
	defer n.wg.Done()
	idle := n.cfg.HeartbeatInterval
	for {
		select {
		case <-n.stopCh:
			return
		default:
		}
		n.mu.Lock()
		role := n.role
		leader := n.leaderID
		leaderURL := n.peers[leader]
		var corpora []string
		for name := range n.leaderPos {
			corpora = append(corpora, name)
		}
		n.mu.Unlock()
		if role != RoleFollower || leader == "" || leader == n.id || leaderURL == "" {
			select {
			case <-n.stopCh:
				return
			case <-time.After(idle):
			}
			continue
		}
		progressed := false
		for _, corpus := range corpora {
			ok, err := n.syncCorpus(leaderURL, corpus)
			if err != nil {
				n.logf("cluster %s: sync %q from %s: %v", n.id, corpus, leader, err)
			}
			progressed = progressed || ok
		}
		if !progressed {
			// Every pull long-polled and came back empty (or failed): yield
			// briefly so a dead leader doesn't spin this loop.
			select {
			case <-n.stopCh:
				return
			case <-time.After(idle / 2):
			}
		}
	}
}

// syncCorpus advances one corpus toward the leader: a full-snapshot join
// when the corpus is missing locally or behind the leader's history
// window, otherwise one pull+apply round. It reports whether any state
// changed.
func (n *Node) syncCorpus(leaderURL, corpus string) (bool, error) {
	local, ok := n.position(corpus)
	if !ok {
		return true, n.joinCorpus(leaderURL, corpus)
	}
	req := PullRequest{
		Node:     n.id,
		Corpus:   corpus,
		From:     local.Epochs,
		FromSeq:  local.Seq,
		FromTerm: local.Term,
		WaitMS:   int(n.cfg.PullWait / time.Millisecond),
	}
	var resp PullResponse
	// The pull long-polls for up to PullWait on the serving side, so its
	// per-attempt deadline is PullWait+RPCTimeout; transient failures retry
	// with jittered backoff inside the budget.
	if err := n.retry(func() error {
		resp = PullResponse{}
		return n.postTimeout(leaderURL, "/cluster/pull", n.cfg.PullWait+n.cfg.RPCTimeout, req, &resp)
	}); err != nil {
		return false, err
	}
	if resp.TooOld || resp.Diverged {
		// Behind the retained window, or the leader refuted our lineage
		// claim (we hold a fork — e.g. this node led, applied a mutation it
		// never got acknowledged, and was deposed): discard and re-join.
		if resp.Diverged {
			n.logf("cluster %s: %q diverged from leader lineage (local seq %d term %d); re-joining",
				n.id, corpus, local.Seq, local.Term)
		}
		return true, n.joinCorpus(leaderURL, corpus)
	}
	applied := false
	for i, b := range resp.Batches {
		// Stamp the apply with the term the leader created the batch under,
		// so this node's history and lineage claims reproduce the leader's.
		var term uint64
		if i < len(resp.Terms) {
			term = resp.Terms[i]
		}
		n.mu.Lock()
		n.applyTerm[corpus] = term
		n.mu.Unlock()
		err := n.cfg.Backend.Apply(corpus, b)
		n.mu.Lock()
		delete(n.applyTerm, corpus)
		n.mu.Unlock()
		switch {
		case err == nil:
			applied = true
		case errors.Is(err, approxsel.ErrReplicaGap):
			// The shipped window started past our vector (history trimmed
			// between Since and our apply, or shards raced). Re-pull from
			// the current vector — never skip.
			return applied, nil
		case errors.Is(err, approxsel.ErrReplicaDiverged):
			return true, n.joinCorpus(leaderURL, corpus)
		default:
			return applied, err
		}
	}
	return applied || len(resp.Batches) > 0, nil
}

// joinCorpus replaces the local corpus with a full snapshot streamed from
// the leader — the catch-up path for new nodes and followers behind the
// retained history window.
func (n *Node) joinCorpus(leaderURL, corpus string) error {
	n.logf("cluster %s: joining corpus %q from %s", n.id, corpus, leaderURL)
	var resp *http.Response
	// The join streams a whole corpus: bounded by SnapshotTimeout (not
	// RPCTimeout), retried with backoff, and the context cancels with the
	// body so an abandoned stream never leaks.
	err := n.retry(func() error {
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.SnapshotTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			leaderURL+"/cluster/snapshot?corpus="+url.QueryEscape(corpus), nil)
		if err != nil {
			cancel()
			return err
		}
		r, err := n.cfg.Client.Do(req)
		if err != nil {
			cancel()
			return err
		}
		if r.StatusCode != http.StatusOK {
			r.Body.Close()
			cancel()
			return fmt.Errorf("cluster: snapshot of %q: HTTP %d", corpus, r.StatusCode)
		}
		r.Body = &cancelBody{rc: r.Body, cancel: cancel}
		resp = r
		return nil
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	hdrSeq, _ := strconv.ParseUint(resp.Header.Get(snapshotSeqHeader), 10, 64)
	hdrTerm, _ := strconv.ParseUint(resp.Header.Get(snapshotTermHeader), 10, 64)
	if err := n.cfg.Backend.InstallSnapshot(corpus, resp.Body); err != nil {
		return fmt.Errorf("cluster: installing %q: %w", corpus, err)
	}
	if p, ok := n.cfg.Backend.Position(corpus); ok {
		// Adopt the source's lineage term only when the installed state is
		// exactly the head the headers described; a mutation racing the
		// transfer leaves the lineage unknown, which is safe.
		term := uint64(0)
		if hdrTerm != 0 && hdrSeq == p.Seq {
			term = hdrTerm
		}
		n.mu.Lock()
		n.corpusTerm[corpus] = term
		delete(n.hist, corpus)
		n.mu.Unlock()
		p.Term = term
		n.ensureHistory(corpus, p)
	}
	return nil
}
