package datasets

import (
	"math"
	"strings"
	"testing"
)

func TestCompanyNamesStatistics(t *testing.T) {
	// Table 5.1: 2139 tuples, avg length ≈ 21.0, words/tuple ≈ 2.9.
	rows := CompanyNames(2139, 1)
	s := Describe(rows)
	if s.Tuples != 2139 {
		t.Fatalf("tuples = %d", s.Tuples)
	}
	if math.Abs(s.AvgTupleLen-21.0) > 3.0 {
		t.Errorf("avg length %v too far from Table 5.1's 21.0", s.AvgTupleLen)
	}
	if math.Abs(s.WordsPerTuple-2.92) > 0.5 {
		t.Errorf("words/tuple %v too far from Table 5.1's 2.92", s.WordsPerTuple)
	}
}

func TestDBLPTitlesStatistics(t *testing.T) {
	// Table 5.1: 10425 tuples, avg length ≈ 33.5, words/tuple ≈ 4.5.
	rows := DBLPTitles(10425, 1)
	s := Describe(rows)
	if s.Tuples != 10425 {
		t.Fatalf("tuples = %d", s.Tuples)
	}
	if math.Abs(s.AvgTupleLen-33.5) > 5.0 {
		t.Errorf("avg length %v too far from Table 5.1's 33.55", s.AvgTupleLen)
	}
	if math.Abs(s.WordsPerTuple-4.53) > 0.8 {
		t.Errorf("words/tuple %v too far from Table 5.1's 4.53", s.WordsPerTuple)
	}
}

func TestCompanyNamesDistinct(t *testing.T) {
	rows := CompanyNames(3000, 2)
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r] {
			t.Fatalf("duplicate clean company %q", r)
		}
		seen[r] = true
	}
}

func TestDBLPTitlesDistinct(t *testing.T) {
	rows := DBLPTitles(5000, 2)
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r] {
			t.Fatalf("duplicate title %q", r)
		}
		seen[r] = true
	}
}

func TestDeterministic(t *testing.T) {
	a := CompanyNames(100, 5)
	b := CompanyNames(100, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("CompanyNames not deterministic")
		}
	}
	c := DBLPTitles(100, 5)
	d := DBLPTitles(100, 5)
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("DBLPTitles not deterministic")
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	a := CompanyNames(50, 1)
	b := CompanyNames(50, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds should differ")
	}
}

func TestIncSuffixFrequent(t *testing.T) {
	// The §5.4 abbreviation argument needs Inc./Incorporated to be frequent.
	rows := CompanyNames(2000, 3)
	incish := 0
	for _, r := range rows {
		if strings.HasSuffix(r, "Inc.") || strings.HasSuffix(r, "Incorporated") {
			incish++
		}
	}
	if incish < len(rows)/5 {
		t.Errorf("only %d/%d companies carry Inc./Incorporated", incish, len(rows))
	}
}

func TestAbbreviationsBidirectionalPairs(t *testing.T) {
	for _, pair := range Abbreviations() {
		if pair[0] == "" || pair[1] == "" || pair[0] == pair[1] {
			t.Errorf("bad abbreviation pair %v", pair)
		}
	}
}

func TestDescribeEmpty(t *testing.T) {
	s := Describe(nil)
	if s.Tuples != 0 || s.AvgTupleLen != 0 || s.WordsPerTuple != 0 {
		t.Errorf("empty describe: %+v", s)
	}
}

func TestNoEmptyStringsGenerated(t *testing.T) {
	for _, r := range append(CompanyNames(500, 9), DBLPTitles(500, 9)...) {
		if strings.TrimSpace(r) == "" {
			t.Fatal("generated empty string")
		}
	}
}
