// Package datasets synthesizes the two clean sources of §5.1. The paper
// uses a proprietary company-names list (2139 tuples, avg 21.0 chars, 2.9
// words/tuple) and DBLP paper titles (10425 tuples, avg 33.6 chars, 4.5
// words/tuple); neither ships with this reproduction, so seeded generators
// produce relations matching those statistics — size, tuple length, words
// per tuple, and a Zipf-ish token frequency profile with very frequent
// suffix/stop words, which is what the similarity predicates actually see.
// The substitution is documented in DESIGN.md.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Company-name vocabulary. Suffixes are intentionally heavy-tailed: Inc.
// and Incorporated dominate, matching the paper's premise that they are
// frequent words in the company-names database (§5.4).
var (
	companyHeads = []string{
		"Morgan", "Stanley", "Pacific", "Global", "Atlas", "Vertex", "Orion",
		"Summit", "Redwood", "Cascade", "Pioneer", "Liberty", "Crescent",
		"Falcon", "Granite", "Harbor", "Juniper", "Keystone", "Lakeside",
		"Meridian", "Nimbus", "Olympic", "Quantum", "Sterling", "Titan",
		"Vanguard", "Willow", "Zenith", "Aurora", "Beacon", "Cobalt",
		"Dynamo", "Everest", "Frontier", "Gateway", "Horizon", "Ivory",
		"Jade", "Kodiak", "Lunar", "Monarch", "Nova", "Onyx", "Phoenix",
		"Quartz", "Raven", "Sapphire", "Tempest", "Umber", "Vortex",
		"Santa", "Monica", "Beijing", "Shanghai", "Berlin", "Lisbon",
		"Cairo", "Dublin", "Geneva", "Helsinki", "Istanbul", "Jakarta",
		"Kyoto", "Lima", "Madrid", "Nairobi", "Oslo", "Prague", "Quito",
		"Riga", "Seoul", "Tokyo", "Utrecht", "Vienna", "Warsaw", "York",
	}
	companyCores = []string{
		"Systems", "Data", "Energy", "Foods", "Steel", "Mills", "Freight",
		"Airways", "Media", "Tools", "Mining", "Textiles", "Widgets",
		"Software", "Networks", "Capital", "Partners", "Holdings",
		"Industries", "Logistics", "Materials", "Dynamics", "Electric",
		"Petroleum", "Pharmaceuticals", "Robotics", "Semiconductors",
		"Telecom", "Ventures", "Labs", "Hotel", "Bank", "Trust", "Motors",
		"Chemicals", "Plastics", "Optics", "Marine", "Aviation", "Rail",
	}
	companySuffixes = []struct {
		text   string
		weight int
	}{
		{"Inc.", 30}, {"Incorporated", 18}, {"Corp.", 12}, {"Corporation", 8},
		{"Ltd.", 8}, {"Limited", 5}, {"LLC", 6}, {"Group", 6}, {"Co.", 5},
		{"Company", 2},
	}
)

// zipfPick samples an index in [0, n) with probability ∝ 1/(rank+1)^s,
// giving the vocabulary the heavy-tailed frequency profile of real company
// names and titles (visible in the paper's Figure 5.6 IDF distribution).
// Rejection sampling over ranks keeps it allocation-free.
func zipfPick(rng *rand.Rand, n int, s float64) int {
	for {
		k := rng.Intn(n)
		if rng.Float64() < 1/math.Pow(float64(k+1), s) {
			return k
		}
	}
}

// Abbreviations returns the domain-specific long/short pairs the generator
// uses for company-name abbreviation errors (§5.1: "e.g., replacing Inc.
// with Incorporated and vice versa").
func Abbreviations() [][2]string {
	return [][2]string{
		{"Incorporated", "Inc."},
		{"Corporation", "Corp."},
		{"Limited", "Ltd."},
		{"Company", "Co."},
	}
}

// CompanyNames generates n distinct synthetic company names. The defaults
// track Table 5.1: with n = 2139 the relation averages ≈21 characters and
// ≈2.9 words per tuple.
func CompanyNames(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	suffixTotal := 0
	for _, s := range companySuffixes {
		suffixTotal += s.weight
	}
	pickSuffix := func() string {
		r := rng.Intn(suffixTotal)
		for _, s := range companySuffixes {
			r -= s.weight
			if r < 0 {
				return s.text
			}
		}
		return companySuffixes[0].text
	}
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		var parts []string
		parts = append(parts, companyHeads[zipfPick(rng, len(companyHeads), 0.7)])
		// ~25% get a second head word; ~70% a core word; ~95% a suffix.
		// These rates put the relation at Table 5.1's ≈21 chars and ≈2.9
		// words per tuple.
		if rng.Float64() < 0.25 {
			parts = append(parts, companyHeads[zipfPick(rng, len(companyHeads), 0.7)])
		}
		if rng.Float64() < 0.70 {
			parts = append(parts, companyCores[zipfPick(rng, len(companyCores), 0.8)])
		}
		if rng.Float64() < 0.95 {
			parts = append(parts, pickSuffix())
		}
		name := strings.Join(parts, " ")
		if seen[name] {
			// Disambiguate collisions with a numbered division, keeping
			// realistic shape.
			name = fmt.Sprintf("%s %d", name, rng.Intn(90)+10)
			if seen[name] {
				continue
			}
		}
		seen[name] = true
		out = append(out, name)
	}
	return out
}

// DBLP-like title vocabulary.
var (
	titleTopics = []string{
		"databases", "indexing", "queries", "joins", "views", "trees",
		"clustering", "retrieval", "caching", "hashing", "logs", "keys",
		"streams", "graphs", "networks", "learning", "tuning", "cubes",
		"compression", "replication", "recovery", "scheduling", "mining",
		"integration", "cleaning", "matching", "ranking", "sampling",
		"estimation", "aggregation", "partitioning", "privacy", "search",
		"provenance", "workflows", "semantics", "storage", "skyline",
		"sql", "xml", "olap", "etl", "triggers", "schemas", "cursors",
	}
	titleQualifiers = []string{
		"efficient", "scalable", "approximate", "adaptive", "distributed",
		"parallel", "incremental", "robust", "declarative", "probabilistic",
		"dynamic", "secure", "flexible", "optimal", "practical", "fast",
		"unified", "lazy", "streaming", "online", "hybrid", "exact",
	}
	titleConnectives = []string{"for", "of", "with", "in", "over", "under", "via"}
	// Pattern mix tuned to Table 5.1's ≈4.5 words and ≈33.5 characters.
	titlePatterns = []string{"QTcT", "QTcQT", "QQTcT", "aQTcT", "TcQT", "QQT", "QTcTcT"}
)

// DBLPTitles generates n synthetic paper titles. With n = 10425 the
// relation averages ≈33.5 characters and ≈4.5 words per tuple, matching
// Table 5.1.
func DBLPTitles(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		pattern := titlePatterns[rng.Intn(len(titlePatterns))]
		var parts []string
		for _, p := range pattern {
			switch p {
			case 'Q':
				parts = append(parts, titleQualifiers[zipfPick(rng, len(titleQualifiers), 0.8)])
			case 'T':
				parts = append(parts, titleTopics[zipfPick(rng, len(titleTopics), 0.8)])
			case 'c':
				parts = append(parts, titleConnectives[rng.Intn(len(titleConnectives))])
			case 'a':
				parts = append(parts, "towards")
			}
		}
		title := strings.Join(parts, " ")
		title = strings.ToUpper(title[:1]) + title[1:]
		if seen[title] {
			title = fmt.Sprintf("%s %d", title, rng.Intn(900)+100)
			if seen[title] {
				continue
			}
		}
		seen[title] = true
		out = append(out, title)
	}
	return out
}

// Stats summarizes a clean relation the way Table 5.1 does.
type Stats struct {
	Tuples        int
	AvgTupleLen   float64
	WordsPerTuple float64
}

// Describe computes Table 5.1-style statistics.
func Describe(rows []string) Stats {
	s := Stats{Tuples: len(rows)}
	if len(rows) == 0 {
		return s
	}
	chars, words := 0, 0
	for _, r := range rows {
		chars += len([]rune(r))
		words += len(strings.Fields(r))
	}
	s.AvgTupleLen = float64(chars) / float64(len(rows))
	s.WordsPerTuple = float64(words) / float64(len(rows))
	return s
}
