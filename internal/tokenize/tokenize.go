// Package tokenize implements the tokenization schemes of the paper's
// preprocessing phase (Appendix A): q-gram extraction with '$'-padding and
// whitespace folding (§5.3.3), word tokenization, and q-gram extraction from
// individual word tokens (used by the combination predicates).
package tokenize

import (
	"strings"
	"unicode"
)

// PadRune is the special symbol the paper inserts in place of whitespace and
// at string boundaries before q-gram extraction ("e.g. $", §5.3.3).
const PadRune = '$'

// QGrams returns the multiset of q-grams of s following the paper's scheme:
// q−1 pad symbols replace every whitespace run and are prepended/appended to
// the string, and the string is upper-cased, so that word order is fully
// decoupled from the grams ("Department of Computer Science" vs "Computer
// Science Department"). For q ≤ 1 the padded characters are omitted and the
// individual characters are returned.
//
// The result preserves duplicates (token frequency matters for tf-based
// predicates); use Counts to collapse it into a frequency map.
func QGrams(s string, q int) []string {
	if q <= 1 {
		runes := []rune(strings.ToUpper(collapseSpace(s)))
		out := make([]string, 0, len(runes))
		for _, r := range runes {
			if r != ' ' {
				out = append(out, string(r))
			}
		}
		return out
	}
	pad := strings.Repeat(string(PadRune), q-1)
	body := strings.ToUpper(collapseSpace(s))
	body = strings.ReplaceAll(body, " ", pad)
	padded := []rune(pad + body + pad)
	if len(padded) < q {
		return nil
	}
	out := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		out = append(out, string(padded[i:i+q]))
	}
	return out
}

// WordQGrams returns the q-grams of a single word token, padded with q−1 pad
// symbols on both sides and upper-cased. It is the per-word tokenization the
// combination predicates (GES variants, SoftTFIDF) use to compare word
// tokens (Appendix A.3).
func WordQGrams(word string, q int) []string {
	if q <= 1 {
		runes := []rune(strings.ToUpper(word))
		out := make([]string, 0, len(runes))
		for _, r := range runes {
			out = append(out, string(r))
		}
		return out
	}
	pad := strings.Repeat(string(PadRune), q-1)
	padded := []rune(pad + strings.ToUpper(word) + pad)
	if len(padded) < q {
		return nil
	}
	out := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		out = append(out, string(padded[i:i+q]))
	}
	return out
}

// EditNormalize prepares a string for edit-based comparison: whitespace
// runs collapse to the q-gram pad sequence (q−1 pad symbols, minimum one)
// and letters are upper-cased, so that a q-gram filter and the verified
// edit distance operate on the same text (§4.4).
func EditNormalize(s string, q int) string {
	n := q - 1
	if n < 1 {
		n = 1
	}
	sep := strings.Repeat(string(PadRune), n)
	return strings.ToUpper(strings.Join(strings.FieldsFunc(s, unicode.IsSpace), sep))
}

// Words splits s into word tokens on Unicode whitespace, dropping empty
// tokens (Appendix A.2). Case is preserved: word-level similarity functions
// such as Jaro–Winkler are case-sensitive in the paper's framework, and the
// weighted predicates look words up verbatim.
func Words(s string) []string {
	return strings.FieldsFunc(s, unicode.IsSpace)
}

// Counts collapses a token multiset into a token → frequency map.
func Counts(tokens []string) map[string]int {
	m := make(map[string]int, len(tokens))
	for _, t := range tokens {
		m[t]++
	}
	return m
}

// Distinct returns the distinct tokens of the multiset, in first-seen order.
func Distinct(tokens []string) []string {
	seen := make(map[string]struct{}, len(tokens))
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// collapseSpace trims s and replaces every run of Unicode whitespace with a
// single ASCII space, so that q-gram padding is insensitive to the flavour
// and number of separator characters.
func collapseSpace(s string) string {
	return strings.Join(strings.FieldsFunc(s, unicode.IsSpace), " ")
}
