package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestQGramsSimple(t *testing.T) {
	got := QGrams("ab", 2)
	want := []string{"$A", "AB", "B$"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams(ab,2) = %v, want %v", got, want)
	}
}

func TestQGramsWhitespaceFolding(t *testing.T) {
	// 'db lab' with q=3: whitespace becomes two pad chars, so word order is
	// captured only through the pads.
	got := QGrams("db lab", 3)
	want := []string{"$$D", "$DB", "DB$", "B$$", "$$L", "$LA", "LAB", "AB$", "B$$"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams(db lab,3) = %v, want %v", got, want)
	}
}

func TestQGramsUppercases(t *testing.T) {
	got := QGrams("aB", 2)
	want := []string{"$A", "AB", "B$"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams(aB,2) = %v, want %v", got, want)
	}
}

func TestQGramsMultipleSpaces(t *testing.T) {
	// Runs of whitespace collapse to one separator before padding.
	a := QGrams("db   lab", 2)
	b := QGrams("db lab", 2)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("whitespace runs should collapse: %v vs %v", a, b)
	}
}

func TestQGramsEmpty(t *testing.T) {
	if got := QGrams("", 3); len(got) != 2 {
		// "" pads to "$$$$" (2+2) giving 2 grams of "$$$".
		t.Errorf("QGrams(\"\",3) = %v, want two pad-only grams", got)
	}
	if got := QGrams("", 1); len(got) != 0 {
		t.Errorf("QGrams(\"\",1) = %v, want empty", got)
	}
}

func TestQGramsQ1(t *testing.T) {
	got := QGrams("ab c", 1)
	want := []string{"A", "B", "C"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("QGrams(ab c,1) = %v, want %v", got, want)
	}
}

func TestQGramsCountProperty(t *testing.T) {
	// For q>=2 the number of grams of a single word of n runes is n+q-1.
	f := func(raw string, qRaw uint8) bool {
		q := int(qRaw%3) + 2 // q in {2,3,4}
		word := sanitizeWord(raw)
		if word == "" {
			return true
		}
		got := QGrams(word, q)
		return len(got) == len([]rune(word))+q-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQGramsWordOrderIndependenceOfInnerGrams(t *testing.T) {
	// Every gram of "a b" that is fully inside a word also appears in "b a".
	a := Counts(QGrams("department computer", 3))
	b := Counts(QGrams("computer department", 3))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("full padding should make gram multiset order-independent:\n%v\n%v", a, b)
	}
}

func TestWordQGrams(t *testing.T) {
	got := WordQGrams("ab", 3)
	want := []string{"$$A", "$AB", "AB$", "B$$"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WordQGrams(ab,3) = %v, want %v", got, want)
	}
}

func TestWordQGramsQ1(t *testing.T) {
	got := WordQGrams("Ab", 1)
	want := []string{"A", "B"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WordQGrams(Ab,1) = %v, want %v", got, want)
	}
}

func TestWords(t *testing.T) {
	got := Words("  Morgan  Stanley\tGroup\nInc. ")
	want := []string{"Morgan", "Stanley", "Group", "Inc."}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
	if got := Words(""); len(got) != 0 {
		t.Errorf("Words(\"\") = %v, want empty", got)
	}
}

func TestCounts(t *testing.T) {
	got := Counts([]string{"a", "b", "a", "a"})
	want := map[string]int{"a": 3, "b": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Counts = %v, want %v", got, want)
	}
}

func TestDistinct(t *testing.T) {
	got := Distinct([]string{"b", "a", "b", "c", "a"})
	want := []string{"b", "a", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Distinct = %v, want %v", got, want)
	}
}

func TestCountsSumEqualsLen(t *testing.T) {
	f := func(raw string) bool {
		grams := QGrams(sanitize(raw), 2)
		total := 0
		for _, c := range Counts(grams) {
			total += c
		}
		return total == len(grams)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitizeWord keeps only letters/digits so q-gram counting is predictable.
func sanitizeWord(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == ' ' {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
