// Package strutil implements the character-level string similarity kernels
// used throughout the benchmark: Levenshtein edit distance and edit
// similarity (paper §3.4), and the Jaro and Jaro–Winkler measures used as
// the word-level similarity inside SoftTFIDF (paper §3.5, §5.3.2).
//
// All functions operate on Unicode code points (runes), not bytes, so that
// multi-byte characters count as single edit units.
package strutil

// Levenshtein returns the classic Levenshtein edit distance between a and b:
// the minimum number of single-character insertions, deletions and
// substitutions required to transform a into b. Copy has cost zero and all
// other operations unit cost, matching the paper's §3.4 cost model.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}
	// Single-row dynamic program: prev holds row i-1, cur is built in place.
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		ai := ra[i-1]
		for j := 1; j <= m; j++ {
			cost := 1
			if ai == rb[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost        // substitute / copy
			if v := prev[j] + 1; v < d { // delete
				d = v
			}
			if v := cur[j-1] + 1; v < d { // insert
				d = v
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// LevenshteinWithin computes the Levenshtein distance between a and b if it
// is at most k, using a banded dynamic program in O(k·min(n,m)) time. The
// boolean result reports whether the true distance is ≤ k; when it is false
// the returned distance is an unspecified value > k.
//
// This is the kernel behind the q-gram filtered edit predicate: candidates
// that survive count/length filtering are verified with a small band.
func LevenshteinWithin(a, b string, k int) (int, bool) {
	if k < 0 {
		return 0, false
	}
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n > m {
		ra, rb = rb, ra
		n, m = m, n
	}
	if m-n > k {
		return m - n, false
	}
	const inf = 1 << 29
	// Band of width 2k+1 around the diagonal.
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		if j <= k {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= n; i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > m {
			hi = m
		}
		if lo > 1 {
			cur[lo-1] = inf
		} else {
			cur[0] = i
		}
		ai := ra[i-1]
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ai == rb[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost
			if v := prev[j] + 1; v < d {
				d = v
			}
			if j > lo || lo == 1 {
				if v := cur[j-1] + 1; v < d {
					d = v
				}
			}
			cur[j] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if hi < m {
			cur[hi+1] = inf
		}
		if rowMin > k {
			return rowMin, false
		}
		prev, cur = cur, prev
	}
	if prev[m] > k {
		return prev[m], false
	}
	return prev[m], true
}

// EditSimilarity returns the edit similarity of the paper's Eq. 3.13:
//
//	sim_edit(Q, D) = 1 − tc(Q, D) / max{|Q|, |D|}
//
// where tc is the Levenshtein distance. Two empty strings have similarity 1.
// The result is always in [0, 1].
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	if maxLen == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// Jaro returns the Jaro similarity between a and b, in [0, 1]. Characters
// match if they are equal and no farther apart than
// ⌊max(|a|,|b|)/2⌋−1 positions; t is half the number of transpositions among
// matched characters:
//
//	jaro = (m/|a| + m/|b| + (m−t)/m) / 3
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchedA := make([]bool, la)
	matchedB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window
		if hi >= lb {
			hi = lb - 1
		}
		for j := lo; j <= hi; j++ {
			if !matchedB[j] && ra[i] == rb[j] {
				matchedA[i] = true
				matchedB[j] = true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters in order.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchedA[i] {
			continue
		}
		for !matchedB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(la) + m/float64(lb) + (m-t)/m) / 3
}

// JaroWinklerPrefixScale is the standard Winkler prefix scaling factor p.
const JaroWinklerPrefixScale = 0.1

// JaroWinklerMaxPrefix is the standard cap on the common-prefix length used
// by the Winkler adjustment.
const JaroWinklerMaxPrefix = 4

// JaroWinkler returns the Jaro–Winkler similarity between a and b:
// the Jaro similarity boosted by the length ℓ (≤ 4) of the common prefix,
//
//	jw = jaro + ℓ·p·(1 − jaro), p = 0.1
//
// This is the word-level predicate the paper pairs with SoftTFIDF (θ=0.8).
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	ra, rb := []rune(a), []rune(b)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < JaroWinklerMaxPrefix {
		if ra[prefix] != rb[prefix] {
			break
		}
		prefix++
	}
	return j + float64(prefix)*JaroWinklerPrefixScale*(1-j)
}
