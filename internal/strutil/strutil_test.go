package strutil

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"intention", "execution", 5},
		{"Saturday", "Sunday", 3},
		{"gumbo", "gambol", 2},
		{"Morgan Stanley", "Stanley Morgan", 14},
		{"a", "b", 1},
		{"ab", "ba", 2},
		{"日本語", "日本", 1},
		{"日本語", "本日語", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinIdentity(t *testing.T) {
	f := func(a string) bool {
		return Levenshtein(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinBounds(t *testing.T) {
	f := func(a, b string) bool {
		d := Levenshtein(a, b)
		la, lb := len([]rune(a)), len([]rune(b))
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		maxLen := la
		if lb > maxLen {
			maxLen = lb
		}
		return d >= diff && d <= maxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinWithinMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := "abcde"
	randStr := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for i := 0; i < 500; i++ {
		a := randStr(rng.Intn(12))
		b := randStr(rng.Intn(12))
		full := Levenshtein(a, b)
		for k := 0; k <= 12; k++ {
			d, ok := LevenshteinWithin(a, b, k)
			if ok != (full <= k) {
				t.Fatalf("LevenshteinWithin(%q,%q,%d): ok=%v, full=%d", a, b, k, ok, full)
			}
			if ok && d != full {
				t.Fatalf("LevenshteinWithin(%q,%q,%d) = %d, want %d", a, b, k, d, full)
			}
		}
	}
}

func TestLevenshteinWithinNegativeK(t *testing.T) {
	if _, ok := LevenshteinWithin("a", "a", -1); ok {
		t.Error("LevenshteinWithin with k<0 should report false")
	}
}

func TestEditSimilarityKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 1},
		{"abc", "abc", 1},
		{"abc", "abd", 1 - 1.0/3},
		{"abcd", "", 0},
	}
	for _, c := range cases {
		if got := EditSimilarity(c.a, c.b); !close(got, c.want) {
			t.Errorf("EditSimilarity(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEditSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		s := EditSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.944444},
		{"DIXON", "DICKSONX", 0.766667},
		{"JELLYFISH", "SMELLYFISH", 0.896296},
		{"", "", 1},
		{"a", "", 0},
		{"", "a", 0},
		{"abc", "abc", 1},
		{"abc", "xyz", 0},
	}
	for _, c := range cases {
		if got := Jaro(c.a, c.b); !close(got, c.want) {
			t.Errorf("Jaro(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.961111},
		{"DIXON", "DICKSONX", 0.813333},
		{"STANLEY", "VALLEY", 0.746032},
		{"abc", "abc", 1},
	}
	for _, c := range cases {
		if got := JaroWinkler(c.a, c.b); !close(got, c.want) {
			t.Errorf("JaroWinkler(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroSymmetryAndRange(t *testing.T) {
	f := func(a, b string) bool {
		s1, s2 := Jaro(a, b), Jaro(b, a)
		return close(s1, s2) && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerDominatesJaro(t *testing.T) {
	f := func(a, b string) bool {
		return JaroWinkler(a, b) >= Jaro(a, b)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaroWinklerRange(t *testing.T) {
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-5
}
