// Package dirty implements the benchmark's data generation scheme (§5.1):
// a modified and enhanced UIS database generator that injects controlled
// errors into a clean relation of string attributes while tracking which
// clean tuple each erroneous duplicate came from, so precision/recall can be
// computed exactly.
//
// Supported error knobs mirror the paper's: duplicate distribution (uniform,
// Zipfian, Poisson), percentage of erroneous duplicates, extent of character
// edit errors (insert/delete/replace/swap), token swap errors, and
// domain-specific abbreviation errors.
package dirty

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
)

// Distribution selects how duplicates are allocated across clean tuples.
type Distribution int

// Duplicate distributions of §5.1.
const (
	Uniform Distribution = iota
	Zipfian
	Poisson
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case Poisson:
		return "poisson"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Params control the generator; they correspond one-to-one to the §5.1
// bullet list. Fractions are in [0, 1].
type Params struct {
	// Size is the total number of tuples to generate (clean + duplicates).
	Size int
	// NumClean is the number of clean tuples used to seed clusters.
	NumClean int
	// Dist is the duplicate distribution across clean tuples.
	Dist Distribution
	// ErroneousPct is the fraction of duplicates that receive errors.
	ErroneousPct float64
	// ErrorExtent is the fraction of characters selected for character
	// edit errors in each erroneous duplicate.
	ErrorExtent float64
	// TokenSwapPct is the fraction of adjacent word pairs swapped in each
	// erroneous duplicate.
	TokenSwapPct float64
	// AbbrPct is the fraction of erroneous duplicates receiving a
	// domain-specific abbreviation substitution (e.g. Inc. ↔ Incorporated).
	AbbrPct float64
	// Seed makes generation deterministic.
	Seed int64
}

// Dataset is a generated dirty relation plus the ground truth needed by the
// accuracy evaluation: the cluster (source clean tuple) of every record.
type Dataset struct {
	Records []core.Record
	// Cluster maps TID → cluster id (one cluster per clean source tuple).
	Cluster map[int]int
	// Clusters maps cluster id → member TIDs.
	Clusters map[int][]int
}

// Generate builds a dirty dataset from clean source strings. abbrs holds
// bidirectional abbreviation pairs (long form, short form).
func Generate(clean []string, abbrs [][2]string, p Params) (*Dataset, error) {
	if p.NumClean <= 0 || p.NumClean > len(clean) {
		return nil, fmt.Errorf("dirty: NumClean %d out of range (have %d clean tuples)", p.NumClean, len(clean))
	}
	if p.Size < p.NumClean {
		return nil, fmt.Errorf("dirty: Size %d smaller than NumClean %d", p.Size, p.NumClean)
	}
	for _, frac := range []float64{p.ErroneousPct, p.ErrorExtent, p.TokenSwapPct, p.AbbrPct} {
		if frac < 0 || frac > 1 {
			return nil, fmt.Errorf("dirty: fraction parameter %v out of [0,1]", frac)
		}
	}
	rng := rand.New(rand.NewSource(p.Seed))

	counts := duplicateCounts(p, rng)
	ds := &Dataset{
		Cluster:  make(map[int]int, p.Size),
		Clusters: make(map[int][]int, p.NumClean),
	}
	tid := 1
	add := func(cluster int, text string) {
		ds.Records = append(ds.Records, core.Record{TID: tid, Text: text})
		ds.Cluster[tid] = cluster
		ds.Clusters[cluster] = append(ds.Clusters[cluster], tid)
		tid++
	}
	for c := 0; c < p.NumClean; c++ {
		src := normalizeSpace(clean[c])
		add(c, src) // the clean tuple itself
		for d := 0; d < counts[c]; d++ {
			dup := src
			if rng.Float64() < p.ErroneousPct {
				dup = injectErrors(dup, abbrs, p, rng)
			}
			add(c, dup)
		}
	}
	return ds, nil
}

// duplicateCounts allocates Size − NumClean duplicates across clusters
// according to the configured distribution.
func duplicateCounts(p Params, rng *rand.Rand) []int {
	total := p.Size - p.NumClean
	counts := make([]int, p.NumClean)
	switch p.Dist {
	case Zipfian:
		// Weight cluster k by 1/(k+1); assign proportionally, then spread
		// the rounding remainder over the head of the distribution.
		weights := make([]float64, p.NumClean)
		sum := 0.0
		for i := range weights {
			weights[i] = 1 / float64(i+1)
			sum += weights[i]
		}
		assigned := 0
		for i := range counts {
			counts[i] = int(float64(total) * weights[i] / sum)
			assigned += counts[i]
		}
		for i := 0; assigned < total; i = (i + 1) % p.NumClean {
			counts[i]++
			assigned++
		}
	case Poisson:
		// Sample Poisson(λ = mean duplicates) per cluster, then repair the
		// total by incrementing/decrementing random clusters.
		lambda := float64(total) / float64(p.NumClean)
		assigned := 0
		for i := range counts {
			counts[i] = poissonSample(lambda, rng)
			assigned += counts[i]
		}
		for assigned < total {
			counts[rng.Intn(p.NumClean)]++
			assigned++
		}
		for assigned > total {
			i := rng.Intn(p.NumClean)
			if counts[i] > 0 {
				counts[i]--
				assigned--
			}
		}
	default: // Uniform
		each := total / p.NumClean
		rem := total % p.NumClean
		for i := range counts {
			counts[i] = each
			if i < rem {
				counts[i]++
			}
		}
	}
	return counts
}

// poissonSample draws from Poisson(λ) by inversion (λ is small here).
func poissonSample(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// injectErrors applies, in order: abbreviation substitution, token swaps,
// then character edit errors — matching the sample tuples of Table 5.4
// where character noise degrades already-swapped words.
func injectErrors(s string, abbrs [][2]string, p Params, rng *rand.Rand) string {
	if p.AbbrPct > 0 && rng.Float64() < p.AbbrPct {
		s = applyAbbreviation(s, abbrs, rng)
	}
	if p.TokenSwapPct > 0 {
		s = swapTokens(s, p.TokenSwapPct, rng)
	}
	if p.ErrorExtent > 0 {
		s = editChars(s, p.ErrorExtent, rng)
	}
	return s
}

// applyAbbreviation replaces one long form with its short form or vice
// versa, if any pair matches a word of s.
func applyAbbreviation(s string, abbrs [][2]string, rng *rand.Rand) string {
	if len(abbrs) == 0 {
		return s
	}
	words := strings.Fields(s)
	// Try pairs in random order so repeated duplicates vary.
	order := rng.Perm(len(abbrs))
	for _, pi := range order {
		long, short := abbrs[pi][0], abbrs[pi][1]
		for wi, w := range words {
			if w == long {
				words[wi] = short
				return strings.Join(words, " ")
			}
			if w == short {
				words[wi] = long
				return strings.Join(words, " ")
			}
		}
	}
	return s
}

// swapTokens swaps a fraction of adjacent word pairs.
func swapTokens(s string, frac float64, rng *rand.Rand) string {
	words := strings.Fields(s)
	if len(words) < 2 {
		return s
	}
	pairs := len(words) - 1
	swaps := int(math.Round(frac * float64(pairs)))
	if swaps == 0 && rng.Float64() < frac*float64(pairs) {
		swaps = 1
	}
	for i := 0; i < swaps; i++ {
		j := rng.Intn(pairs)
		words[j], words[j+1] = words[j+1], words[j]
	}
	return strings.Join(words, " ")
}

// editChars injects extent·len character edit errors: insertion, deletion,
// replacement or adjacent swap, at random positions.
func editChars(s string, extent float64, rng *rand.Rand) string {
	runes := []rune(s)
	edits := int(math.Round(extent * float64(len(runes))))
	if edits == 0 && rng.Float64() < extent*float64(len(runes)) {
		edits = 1
	}
	for i := 0; i < edits; i++ {
		if len(runes) == 0 {
			break
		}
		pos := rng.Intn(len(runes))
		switch rng.Intn(4) {
		case 0: // insert
			c := randomChar(rng)
			runes = append(runes[:pos], append([]rune{c}, runes[pos:]...)...)
		case 1: // delete
			runes = append(runes[:pos], runes[pos+1:]...)
		case 2: // replace
			runes[pos] = randomChar(rng)
		case 3: // swap adjacent
			if pos+1 < len(runes) {
				runes[pos], runes[pos+1] = runes[pos+1], runes[pos]
			} else if pos > 0 {
				runes[pos], runes[pos-1] = runes[pos-1], runes[pos]
			}
		}
	}
	return normalizeSpace(string(runes))
}

func randomChar(rng *rand.Rand) rune {
	return rune('a' + rng.Intn(26))
}

func normalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
