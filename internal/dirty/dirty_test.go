package dirty

import (
	"math"
	"strings"
	"testing"

	"repro/internal/datasets"
)

func cleanSource() []string {
	return datasets.CompanyNames(200, 11)
}

func TestGenerateBasicShape(t *testing.T) {
	p := Params{Size: 500, NumClean: 50, Dist: Uniform, ErroneousPct: 0.5,
		ErrorExtent: 0.2, TokenSwapPct: 0.2, AbbrPct: 0.5, Seed: 1}
	ds, err := Generate(cleanSource(), datasets.Abbreviations(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 500 {
		t.Fatalf("got %d records, want 500", len(ds.Records))
	}
	if len(ds.Clusters) != 50 {
		t.Fatalf("got %d clusters, want 50", len(ds.Clusters))
	}
	total := 0
	for c, members := range ds.Clusters {
		total += len(members)
		for _, tid := range members {
			if ds.Cluster[tid] != c {
				t.Fatalf("cluster maps disagree for tid %d", tid)
			}
		}
	}
	if total != 500 {
		t.Fatalf("cluster membership totals %d", total)
	}
	// TIDs unique and 1..500.
	seen := map[int]bool{}
	for _, r := range ds.Records {
		if seen[r.TID] {
			t.Fatalf("duplicate tid %d", r.TID)
		}
		seen[r.TID] = true
		if r.Text == "" {
			t.Fatalf("empty record text for tid %d", r.TID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Size: 200, NumClean: 20, ErroneousPct: 0.9, ErrorExtent: 0.3, Seed: 7}
	a, err := Generate(cleanSource(), nil, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cleanSource(), nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("generation not deterministic at %d: %v vs %v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestNoErrorsMeansExactDuplicates(t *testing.T) {
	p := Params{Size: 100, NumClean: 10, ErroneousPct: 0, Seed: 3}
	src := cleanSource()
	ds, err := Generate(src, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		c := ds.Cluster[r.TID]
		if r.Text != strings.Join(strings.Fields(src[c]), " ") {
			t.Fatalf("tid %d: %q differs from clean source %q with 0%% errors", r.TID, r.Text, src[c])
		}
	}
}

func TestUniformDistributionBalanced(t *testing.T) {
	p := Params{Size: 1000, NumClean: 100, Dist: Uniform, Seed: 5}
	ds, err := Generate(cleanSource(), nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for c, members := range ds.Clusters {
		if len(members) != 10 {
			t.Fatalf("uniform cluster %d has %d members, want 10", c, len(members))
		}
	}
}

func TestZipfianSkewsHead(t *testing.T) {
	p := Params{Size: 1100, NumClean: 100, Dist: Zipfian, Seed: 5}
	ds, err := Generate(cleanSource(), nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if !(len(ds.Clusters[0]) > len(ds.Clusters[99])) {
		t.Fatalf("zipfian head %d should exceed tail %d",
			len(ds.Clusters[0]), len(ds.Clusters[99]))
	}
	total := 0
	for _, m := range ds.Clusters {
		total += len(m)
	}
	if total != 1100 {
		t.Fatalf("zipfian total %d", total)
	}
}

func TestPoissonTotalsExact(t *testing.T) {
	p := Params{Size: 777, NumClean: 70, Dist: Poisson, Seed: 9}
	ds, err := Generate(cleanSource(), nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 777 {
		t.Fatalf("poisson total %d, want 777", len(ds.Records))
	}
}

func TestAbbreviationOnlyError(t *testing.T) {
	// F1-style dataset: only abbreviation errors. Duplicates must differ
	// from their source only by a dictionary substitution.
	src := []string{"Pacific Mills Incorporated", "Atlas Freight Inc.", "Orion Foods Ltd."}
	p := Params{Size: 30, NumClean: 3, ErroneousPct: 1, AbbrPct: 1, Seed: 2}
	ds, err := Generate(src, datasets.Abbreviations(), p)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for _, r := range ds.Records {
		c := ds.Cluster[r.TID]
		if r.Text == src[c] {
			continue
		}
		changed++
		// The only difference must be a long/short swap.
		switch c {
		case 0:
			if r.Text != "Pacific Mills Inc." {
				t.Fatalf("unexpected abbr variant %q", r.Text)
			}
		case 1:
			if r.Text != "Atlas Freight Incorporated" {
				t.Fatalf("unexpected abbr variant %q", r.Text)
			}
		case 2:
			if r.Text != "Orion Foods Limited" {
				t.Fatalf("unexpected abbr variant %q", r.Text)
			}
		}
	}
	if changed == 0 {
		t.Fatal("no abbreviation errors applied")
	}
}

func TestTokenSwapOnlyError(t *testing.T) {
	src := []string{"alpha beta gamma delta"}
	p := Params{Size: 20, NumClean: 1, ErroneousPct: 1, TokenSwapPct: 0.5, Seed: 4}
	ds, err := Generate(src, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		words := strings.Fields(r.Text)
		if len(words) != 4 {
			t.Fatalf("token swap must preserve word count: %q", r.Text)
		}
		// Same multiset of words.
		set := map[string]int{}
		for _, w := range words {
			set[w]++
		}
		for _, w := range []string{"alpha", "beta", "gamma", "delta"} {
			if set[w] != 1 {
				t.Fatalf("token swap must preserve words: %q", r.Text)
			}
		}
	}
}

func TestEditErrorsChangeRoughlyExtent(t *testing.T) {
	src := []string{strings.Repeat("abcdefghij", 4)} // 40 chars
	p := Params{Size: 200, NumClean: 1, ErroneousPct: 1, ErrorExtent: 0.2, Seed: 8}
	ds, err := Generate(src, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	// Mean length change should stay well below the 8 edits injected
	// (inserts and deletes roughly cancel), and strings should differ.
	diffs := 0
	lenSum := 0.0
	for _, r := range ds.Records[1:] {
		if r.Text != src[0] {
			diffs++
		}
		lenSum += float64(len(r.Text))
	}
	if diffs < 190 {
		t.Fatalf("expected nearly all duplicates dirty, got %d/199", diffs)
	}
	mean := lenSum / 199
	if math.Abs(mean-40) > 5 {
		t.Fatalf("mean length drifted to %v", mean)
	}
}

func TestParamValidation(t *testing.T) {
	src := cleanSource()
	cases := []Params{
		{Size: 10, NumClean: 0},
		{Size: 10, NumClean: 1000},
		{Size: 5, NumClean: 10},
		{Size: 10, NumClean: 5, ErroneousPct: 1.5},
		{Size: 10, NumClean: 5, ErrorExtent: -0.1},
	}
	for _, p := range cases {
		if _, err := Generate(src, nil, p); err == nil {
			t.Errorf("params %+v should be rejected", p)
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" || Poisson.String() != "poisson" {
		t.Error("Distribution.String")
	}
	if !strings.Contains(Distribution(9).String(), "9") {
		t.Error("unknown distribution string")
	}
}
