package core

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"time"

	"repro/internal/minhash"
	"repro/internal/store/segment"
	"repro/internal/tokenize"
	"repro/internal/weights"
)

// This file implements corpus snapshot persistence: WriteSnapshot encodes
// the current immutable Snapshot — records, interned token tables, every
// derived posting/weight table, bound columns, epoch — into a versioned,
// CRC-framed binary segment, and LoadSnapshot decodes it back into a ready
// Corpus without re-tokenizing or re-assembling anything.
//
// The encoding strategy follows one rule: everything carrying floating
// point is serialized verbatim (bit patterns, never recomputed), and only
// purely structural state — rank maps, frequency maps, document lengths,
// the dense word-id space, TID index — is rebuilt from the serialized
// arrays with the exact integer arithmetic of the assembly path. That
// makes a loaded corpus bit-identical to the corpus that was saved: same
// epoch, same scores, same tie order, for every predicate. Strings are
// interned through the token tables on decode (a document's grams alias
// the TokenByRank entries), so a loaded snapshot is also more compact in
// memory than a freshly tokenized one.

// SnapshotMagic identifies a corpus snapshot segment file.
const SnapshotMagic = "APXSNAP1"

// Section tags of a snapshot segment.
const (
	secHeader   = 1
	secRecords  = 2
	secRawGrams = 3
	secEffGrams = 4
	secWords    = 5
	secNorms    = 6
)

// gramFlags say which derived tables a serialized gram layer carries; they
// mirror the assembly path, which builds tables on the effective layer and
// only the TF posting table on the raw layer when pruning splits the two.
type gramFlags struct {
	tokenIDs bool
	postings bool
	rs       bool
	tfidf    bool
	lm       bool
	tfpost   bool
}

func (f gramFlags) byte() uint8 {
	var b uint8
	set := func(bit uint8, on bool) {
		if on {
			b |= bit
		}
	}
	set(1, f.tokenIDs)
	set(2, f.postings)
	set(4, f.rs)
	set(8, f.tfidf)
	set(16, f.lm)
	set(32, f.tfpost)
	return b
}

func gramFlagsFrom(b uint8) gramFlags {
	return gramFlags{
		tokenIDs: b&1 != 0,
		postings: b&2 != 0,
		rs:       b&4 != 0,
		tfidf:    b&8 != 0,
		lm:       b&16 != 0,
		tfpost:   b&32 != 0,
	}
}

// effGramFlags derives the effective layer's table set from the corpus's
// materialized layers.
func (c *Corpus) effGramFlags(pruned bool) gramFlags {
	return gramFlags{
		tokenIDs: c.layers.Has(LayerTokenIDs),
		postings: c.layers.Has(LayerPostings),
		rs:       c.layers.Has(LayerRS),
		tfidf:    c.layers.Has(LayerTFIDF),
		lm:       c.layers.Has(LayerLM),
		tfpost:   c.layers.Has(LayerNorms) && !pruned,
	}
}

// WriteSnapshot serializes the corpus's current snapshot to w. The write
// works on the immutable snapshot and never blocks mutations or
// selections; pair it with Freeze when the byte stream must be atomic with
// respect to a write-ahead log (checkpointing).
func (c *Corpus) WriteSnapshot(w io.Writer) error {
	s := c.snap.Load()
	sw, err := segment.NewWriter(w, SnapshotMagic)
	if err != nil {
		return err
	}
	pruned := s.Grams != nil && s.Grams != s.RawGrams

	e := segment.NewEncoder(256)
	encodeConfig(e, c.cfg)
	e.U32(uint32(c.layers))
	e.U64(s.Epoch)
	e.Int(len(s.Records))
	e.Bool(pruned)
	if err := sw.Section(secHeader, e.Bytes()); err != nil {
		return err
	}

	e = segment.NewEncoder(32 * len(s.Records))
	for _, r := range s.Records {
		e.I64(int64(r.TID))
		e.Str(r.Text)
	}
	if err := sw.Section(secRecords, e.Bytes()); err != nil {
		return err
	}

	if c.layers.Has(LayerGrams) {
		if pruned {
			// The raw layer keeps only tokenization-level state (plus the
			// edit filter's TF posting table); the derived tables live on
			// the pruned effective layer.
			e = segment.NewEncoder(1 << 20)
			encodeGramLayer(e, s.RawGrams, gramFlags{tfpost: c.layers.Has(LayerNorms)})
			if err := sw.Section(secRawGrams, e.Bytes()); err != nil {
				return err
			}
			e = segment.NewEncoder(1 << 20)
			encodeGramLayer(e, s.Grams, c.effGramFlags(true))
			if err := sw.Section(secEffGrams, e.Bytes()); err != nil {
				return err
			}
		} else {
			e = segment.NewEncoder(1 << 20)
			encodeGramLayer(e, s.RawGrams, c.effGramFlags(false))
			if err := sw.Section(secRawGrams, e.Bytes()); err != nil {
				return err
			}
		}
	}
	if c.layers.Has(LayerWords) {
		e = segment.NewEncoder(1 << 20)
		encodeWordLayer(e, s.Words, c.layers)
		if err := sw.Section(secWords, e.Bytes()); err != nil {
			return err
		}
	}
	if c.layers.Has(LayerNorms) {
		e = segment.NewEncoder(16 * len(s.Norms))
		e.Strs(s.Norms)
		if err := sw.Section(secNorms, e.Bytes()); err != nil {
			return err
		}
	}
	return sw.Close()
}

// LoadSnapshot decodes a snapshot segment (the full file contents) into a
// ready corpus at the serialized epoch. The loaded corpus is bit-identical
// to the one WriteSnapshot captured and accepts mutations exactly like a
// freshly built corpus; its TokenizePasses counter stays at zero because
// no string is ever re-tokenized.
func LoadSnapshot(data []byte) (*Corpus, error) {
	r, err := segment.NewReader(data, SnapshotMagic)
	if err != nil {
		return nil, err
	}
	sections := make(map[uint8][]byte)
	for {
		tag, payload, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if _, dup := sections[tag]; dup {
			return nil, fmt.Errorf("approxsel: duplicate snapshot section 0x%02x", tag)
		}
		sections[tag] = payload
	}

	hdr, ok := sections[secHeader]
	if !ok {
		return nil, fmt.Errorf("approxsel: snapshot has no header section")
	}
	d := segment.NewDecoder(hdr)
	cfg := decodeConfig(d)
	layers := CorpusLayers(d.U32())
	epoch := d.U64()
	nrec := d.Int()
	pruned := d.Bool()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if nrec < 0 {
		return nil, fmt.Errorf("approxsel: snapshot claims %d records", nrec)
	}

	rec, ok := sections[secRecords]
	if !ok {
		return nil, fmt.Errorf("approxsel: snapshot has no records section")
	}
	d = segment.NewDecoder(rec)
	records := make([]Record, nrec)
	for i := range records {
		records[i] = Record{TID: int(d.I64()), Text: d.Str()}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}

	c := &Corpus{cfg: cfg, layers: layers}
	if c.layers.Has(LayerSigs) {
		c.fam = minhash.NewFamily(cfg.MinHashSize(), cfg.MinHashSeed)
	}
	s := &Snapshot{Epoch: epoch, Records: records, byTID: make(map[int]int, nrec)}
	for i, r := range records {
		s.byTID[r.TID] = i
	}
	if len(s.byTID) != nrec {
		return nil, fmt.Errorf("approxsel: snapshot records contain duplicate TIDs")
	}

	if layers.Has(LayerGrams) {
		raw, ok := sections[secRawGrams]
		if !ok {
			return nil, fmt.Errorf("approxsel: snapshot has no gram layer section")
		}
		rawFlags := gramFlags{tfpost: layers.Has(LayerNorms)}
		if !pruned {
			rawFlags = c.effGramFlags(false)
		}
		l, err := decodeGramLayer(raw, nrec, rawFlags)
		if err != nil {
			return nil, err
		}
		s.RawGrams, s.Grams = l, l
		if pruned {
			eff, ok := sections[secEffGrams]
			if !ok {
				return nil, fmt.Errorf("approxsel: pruned snapshot has no effective gram layer")
			}
			el, err := decodeGramLayer(eff, nrec, c.effGramFlags(true))
			if err != nil {
				return nil, err
			}
			s.Grams = el
		}
	}
	if layers.Has(LayerWords) {
		wl, ok := sections[secWords]
		if !ok {
			return nil, fmt.Errorf("approxsel: snapshot has no word layer section")
		}
		l, err := decodeWordLayer(wl, nrec, layers)
		if err != nil {
			return nil, err
		}
		s.Words = l
	}
	if layers.Has(LayerNorms) {
		nb, ok := sections[secNorms]
		if !ok {
			return nil, fmt.Errorf("approxsel: snapshot has no norms section")
		}
		d = segment.NewDecoder(nb)
		s.Norms = d.Strs()
		if err := d.Finish(); err != nil {
			return nil, err
		}
		if len(s.Norms) != nrec {
			return nil, fmt.Errorf("approxsel: norms column has %d entries for %d records", len(s.Norms), nrec)
		}
	}
	c.snap.Store(s)
	return c, nil
}

// ReplayMutations applies a gap-free sequence of mutation batches as one
// pass — the cold-start WAL replay path. Each batch splices the record
// list and the raw token layers exactly like Insert/Delete/Upsert
// (re-tokenizing only changed records), but the derived tables assemble
// once, at the final epoch, instead of once per batch: table assembly is a
// pure function of (records, raw layers), so the result is bit-identical
// to applying the batches one at a time while the cost stays near a
// single mutation's. The intermediate epochs are never observable during
// a cold start, and a validation failure anywhere in the sequence leaves
// the corpus unchanged. The mutation hook is not invoked — replayed
// batches are already in the log.
func (c *Corpus) ReplayMutations(muts []Mutation) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(muts) == 0 {
		return nil
	}
	old := c.snap.Load()
	recs := old.Records
	cur := c.rawFromSnapshot(old)
	byTID := old.byTID
	epoch := old.Epoch
	t0 := time.Now()
	for _, m := range muts {
		if m.Epoch != epoch+1 {
			return fmt.Errorf("approxsel: replay gap: batch at epoch %d after epoch %d", m.Epoch, epoch)
		}
		epoch++
		drop, replace, appended, err := splitBatch(byTID, m.Add, m.Del, m.Kind == MutationUpsert)
		if err != nil {
			return err
		}
		n := len(recs) - len(drop) + len(appended)
		next := c.newRawData(n)
		nrecs := make([]Record, 0, n)
		for i, r := range recs {
			if drop[r.TID] {
				continue
			}
			if nr, ok := replace[r.TID]; ok {
				nrecs = append(nrecs, nr)
				next.appendTokenized(c, nr.Text)
				continue
			}
			nrecs = append(nrecs, r)
			next.appendFromRaw(cur, i)
		}
		for _, r := range appended {
			nrecs = append(nrecs, r)
			next.appendTokenized(c, r.Text)
		}
		recs, cur = nrecs, next
		byTID = make(map[int]int, len(recs))
		for i, r := range recs {
			byTID[r.TID] = i
		}
	}
	c.snap.Store(c.assemble(recs, cur, epoch, time.Since(t0)))
	return nil
}

// rawFromSnapshot views a snapshot's raw token layers as rawData, the
// splice source of the first replayed batch.
func (c *Corpus) rawFromSnapshot(s *Snapshot) *rawData {
	r := &rawData{layers: c.layers}
	if c.layers.Has(LayerGrams) {
		r.docs = s.RawGrams.Docs
		r.counts = s.RawGrams.Counts
	}
	if c.layers.Has(LayerWords) {
		r.words = s.Words.Words
		r.wcounts = s.Words.Counts
		if c.layers.Has(LayerWordGrams) {
			r.vocab = s.Words.Vocab
			r.vgrams = s.Words.VocabGrams
			if c.layers.Has(LayerSigs) {
				r.sigs = s.Words.Sigs
			}
		}
	}
	if c.layers.Has(LayerNorms) {
		r.norms = s.Norms
	}
	return r
}

// appendFromRaw reuses the cached tokenization of one retained record from
// a prior splice round.
func (r *rawData) appendFromRaw(src *rawData, i int) {
	if r.layers.Has(LayerGrams) {
		r.docs = append(r.docs, src.docs[i])
		r.counts = append(r.counts, src.counts[i])
	}
	if r.layers.Has(LayerWords) {
		r.words = append(r.words, src.words[i])
		r.wcounts = append(r.wcounts, src.wcounts[i])
		if r.layers.Has(LayerWordGrams) {
			r.vocab = append(r.vocab, src.vocab[i])
			r.vgrams = append(r.vgrams, src.vgrams[i])
			if r.layers.Has(LayerSigs) {
				r.sigs = append(r.sigs, src.sigs[i])
			}
		}
	}
	if r.layers.Has(LayerNorms) {
		r.norms = append(r.norms, src.norms[i])
	}
}

// ---- config ----

// encodeConfig serializes every Config field in declaration order; the
// format version bumps if the struct grows.
func encodeConfig(e *segment.Encoder, cfg Config) {
	e.Int(cfg.Q)
	e.Int(cfg.WordQ)
	e.F64(cfg.BM25K1)
	e.F64(cfg.BM25K3)
	e.F64(cfg.BM25B)
	e.F64(cfg.HMMA0)
	e.F64(cfg.GESCins)
	e.F64(cfg.GESThreshold)
	e.F64(cfg.SoftTFIDFTheta)
	e.F64(cfg.EditTheta)
	e.Bool(cfg.EditPositional)
	e.Int(cfg.MinHashK)
	e.I64(cfg.MinHashSeed)
	e.F64(cfg.PruneRate)
}

func decodeConfig(d *segment.Decoder) Config {
	return Config{
		Q:              d.Int(),
		WordQ:          d.Int(),
		BM25K1:         d.F64(),
		BM25K3:         d.F64(),
		BM25B:          d.F64(),
		HMMA0:          d.F64(),
		GESCins:        d.F64(),
		GESThreshold:   d.F64(),
		SoftTFIDFTheta: d.F64(),
		EditTheta:      d.F64(),
		EditPositional: d.Bool(),
		MinHashK:       d.Int(),
		MinHashSeed:    d.I64(),
		PruneRate:      d.F64(),
	}
}

// ---- collection statistics ----

func encodeStats(e *segment.Encoder, l *GramLayer) {
	encodeStatsData(e, l.Stats.Export(l.TokenByRank))
}

func encodeStatsData(e *segment.Encoder, d weights.StatsData) {
	e.Int(d.N)
	e.Int(d.CS)
	e.F64(d.AvgDL)
	e.F64(d.AvgIDF)
	e.U32(uint32(len(d.DF)))
	for i := range d.DF {
		e.I64(d.DF[i])
		e.I64(d.CF[i])
		e.F64(d.SumPML[i])
	}
}

// decodeStatsInto reads the flat statistics written by encodeStats (and the
// word-layer encoder) and rebuilds the weights.Corpus over the given token
// order: scalars and float aggregates restored bit-exactly, maps rebuilt
// presized.
func decodeStatsInto(d *segment.Decoder, tokens []string) (*weights.Corpus, error) {
	sd := weights.StatsData{
		N:     d.Int(),
		CS:    d.Int(),
		AvgDL: d.F64(),
	}
	sd.AvgIDF = d.F64()
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != len(tokens) {
		return nil, fmt.Errorf("approxsel: statistics cover %d tokens, table has %d", n, len(tokens))
	}
	rows := d.Raw(24*n, "statistics rows")
	if err := d.Err(); err != nil {
		return nil, err
	}
	sd.DF = make([]int64, n)
	sd.CF = make([]int64, n)
	sd.SumPML = make([]float64, n)
	for i := 0; i < n; i++ {
		row := rows[24*i:]
		sd.DF[i] = int64(binary.LittleEndian.Uint64(row))
		sd.CF[i] = int64(binary.LittleEndian.Uint64(row[8:]))
		sd.SumPML[i] = math.Float64frombits(binary.LittleEndian.Uint64(row[16:]))
	}
	return weights.FromData(tokens, sd)
}

// ---- gram layers ----

func encodeGramLayer(e *segment.Encoder, l *GramLayer, f gramFlags) {
	e.U8(f.byte())
	e.Strs(l.TokenByRank)
	encodeStats(e, l)
	// Per-record gram multisets as dense ranks, preserving order (the edit
	// predicate's positional filter reads gram positions). The total gram
	// count leads, so the decoder carves every record's multiset from one
	// contiguous backing array.
	total := 0
	for _, doc := range l.Docs {
		total += len(doc)
	}
	e.Int(total)
	for _, doc := range l.Docs {
		e.U32(uint32(len(doc)))
		for _, g := range doc {
			e.U32(uint32(l.rank[g]))
		}
	}
	// Per-record distinct (rank, tf) pairs in ascending rank order: the
	// interned pair rows when LayerTokenIDs is on, and the decode source of
	// the frequency maps always. Total first, again for backing-array
	// carving.
	allPairs := make([][]RankTF, len(l.Counts))
	total = 0
	for i := range l.Counts {
		allPairs[i] = l.countPairs(i)
		total += len(allPairs[i])
	}
	e.Int(total)
	for _, pairs := range allPairs {
		e.U32(uint32(len(pairs)))
		for _, p := range pairs {
			e.U32(uint32(p.Rank))
			e.U32(uint32(p.TF))
		}
	}
	if f.tokenIDs {
		e.F64s(l.IDFByRank)
	}
	if f.postings {
		encodePostings(e, l.Postings)
	}
	if f.rs {
		e.F64s(l.RSByRank)
		hasLen := l.RSLen != nil
		e.Bool(hasLen)
		if hasLen {
			e.F64s(l.RSLen)
			e.F64(l.RSLenMin)
		}
	}
	if f.tfidf {
		encodeWPostTable(e, l.TFIDFPost)
		e.F64s(l.TFIDFMax)
		e.F64s(l.TFIDFMin)
	}
	if f.lm {
		encodeWPostTable(e, l.LMPost)
		e.F64s(l.LMMax)
		e.F64s(l.LMMin)
		e.F64s(l.LMSumComp)
		e.F64(l.LMCompMax)
	}
	if f.tfpost {
		encodeWPostTable(e, l.TFPost)
	}
}

// countPairs returns record i's distinct (rank, tf) pairs in ascending rank
// order: the precomputed interned rows when present, otherwise derived from
// the frequency map.
func (l *GramLayer) countPairs(i int) []RankTF {
	if l.Pairs != nil {
		return l.Pairs[i]
	}
	pairs := make([]RankTF, 0, len(l.Counts[i]))
	for t, tf := range l.Counts[i] {
		pairs = append(pairs, RankTF{Rank: l.rank[t], TF: int32(tf)})
	}
	sortRankTF(pairs)
	return pairs
}

func decodeGramLayer(payload []byte, nrec int, f gramFlags) (*GramLayer, error) {
	d := segment.NewDecoder(payload)
	if got := gramFlagsFrom(d.U8()); got != f {
		return nil, fmt.Errorf("approxsel: gram layer tables %+v do not match materialized layers %+v", got, f)
	}
	l := &GramLayer{TokenByRank: d.Strs()}
	l.rank = rankOf(l.TokenByRank)
	nTok := len(l.TokenByRank)

	stats, err := decodeStatsInto(d, l.TokenByRank)
	if err != nil {
		return nil, err
	}
	l.Stats = stats

	// Gram multisets: ranks back to interned strings (aliasing the token
	// table), document lengths derived from the multiset sizes, every
	// record's slice carved from one backing array.
	totalGrams := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if totalGrams < 0 || totalGrams > d.Remaining()/4 {
		return nil, fmt.Errorf("approxsel: gram multisets claim %d grams", totalGrams)
	}
	docBacking := make([]string, 0, totalGrams)
	l.Docs = make([][]string, nrec)
	l.DL = make([]int, nrec)
	for i := 0; i < nrec; i++ {
		n := int(d.U32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		rows := d.Raw(4*n, "gram multiset")
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(docBacking)+n > totalGrams {
			return nil, fmt.Errorf("approxsel: gram multiset of record %d overruns its table", i)
		}
		start := len(docBacking)
		for j := 0; j < n; j++ {
			id := binary.LittleEndian.Uint32(rows[4*j:])
			if id >= uint32(nTok) {
				return nil, fmt.Errorf("approxsel: gram rank %d out of range (%d tokens)", id, nTok)
			}
			docBacking = append(docBacking, l.TokenByRank[id])
		}
		l.Docs[i] = docBacking[start:len(docBacking):len(docBacking)]
		l.DL[i] = n
	}

	// Distinct (rank, tf) pairs: frequency maps always, interned pair rows
	// when the token-id layer is materialized.
	totalPairs := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if totalPairs < 0 || totalPairs > d.Remaining()/8 {
		return nil, fmt.Errorf("approxsel: count pairs claim %d rows", totalPairs)
	}
	var pairBacking []RankTF
	if f.tokenIDs {
		pairBacking = make([]RankTF, 0, totalPairs)
		l.Pairs = make([][]RankTF, nrec)
	}
	l.Counts = make([]map[string]int, nrec)
	for i := 0; i < nrec; i++ {
		n := int(d.U32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		rows := d.Raw(8*n, "count pairs")
		if err := d.Err(); err != nil {
			return nil, err
		}
		m := make(map[string]int, n)
		start := len(pairBacking)
		for j := 0; j < n; j++ {
			rank := binary.LittleEndian.Uint32(rows[8*j:])
			tf := binary.LittleEndian.Uint32(rows[8*j+4:])
			if rank >= uint32(nTok) {
				return nil, fmt.Errorf("approxsel: count rank %d out of range (%d tokens)", rank, nTok)
			}
			m[l.TokenByRank[rank]] = int(int32(tf))
			if f.tokenIDs {
				if len(pairBacking) == totalPairs {
					return nil, fmt.Errorf("approxsel: count pairs of record %d overrun their table", i)
				}
				pairBacking = append(pairBacking, RankTF{Rank: int32(rank), TF: int32(tf)})
			}
		}
		l.Counts[i] = m
		if f.tokenIDs {
			l.Pairs[i] = pairBacking[start:len(pairBacking):len(pairBacking)]
		}
	}

	if f.tokenIDs {
		l.IDFByRank = d.F64s()
		if len(l.IDFByRank) != nTok {
			return nil, fmt.Errorf("approxsel: idf column has %d entries for %d tokens", len(l.IDFByRank), nTok)
		}
	}
	if f.postings {
		l.Postings, err = decodePostings(d, nTok, nrec)
		if err != nil {
			return nil, err
		}
	}
	if f.rs {
		l.RSByRank = d.F64s()
		if len(l.RSByRank) != nTok {
			return nil, fmt.Errorf("approxsel: RS column has %d entries for %d tokens", len(l.RSByRank), nTok)
		}
		if d.Bool() {
			l.RSLen = d.F64s()
			l.RSLenMin = d.F64()
			if len(l.RSLen) != nrec {
				return nil, fmt.Errorf("approxsel: RS length column has %d entries for %d records", len(l.RSLen), nrec)
			}
		}
	}
	if f.tfidf {
		if l.TFIDFPost, err = decodeWPostTable(d, nTok, nrec); err != nil {
			return nil, err
		}
		l.TFIDFMax = d.F64s()
		l.TFIDFMin = d.F64s()
		if len(l.TFIDFMax) != nTok || len(l.TFIDFMin) != nTok {
			return nil, fmt.Errorf("approxsel: tf-idf bound columns do not match %d tokens", nTok)
		}
	}
	if f.lm {
		if l.LMPost, err = decodeWPostTable(d, nTok, nrec); err != nil {
			return nil, err
		}
		l.LMMax = d.F64s()
		l.LMMin = d.F64s()
		l.LMSumComp = d.F64s()
		l.LMCompMax = d.F64()
		if len(l.LMMax) != nTok || len(l.LMMin) != nTok || len(l.LMSumComp) != nrec {
			return nil, fmt.Errorf("approxsel: LM columns do not match %d tokens / %d records", nTok, nrec)
		}
	}
	if f.tfpost {
		if l.TFPost, err = decodeWPostTable(d, nTok, nrec); err != nil {
			return nil, err
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return l, nil
}

// encodePostings writes a rank-indexed posting table with its total, so the
// decoder can carve one contiguous backing array exactly like the builder.
func encodePostings(e *segment.Encoder, table [][]int32) {
	total := 0
	for _, l := range table {
		total += len(l)
	}
	e.Int(total)
	e.U32(uint32(len(table)))
	for _, l := range table {
		e.U32(uint32(len(l)))
		for _, v := range l {
			e.U32(uint32(v))
		}
	}
}

func decodePostings(d *segment.Decoder, nTok, nrec int) ([][]int32, error) {
	total := d.Int()
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != nTok {
		return nil, fmt.Errorf("approxsel: posting table has %d lists for %d tokens", n, nTok)
	}
	if total < 0 || total > d.Remaining()/4 {
		return nil, fmt.Errorf("approxsel: posting table claims %d postings", total)
	}
	backing := make([]int32, total)
	used := 0
	table := make([][]int32, n)
	for r := 0; r < n; r++ {
		cnt := int(d.U32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		rows := d.Raw(4*cnt, "posting list")
		if err := d.Err(); err != nil {
			return nil, err
		}
		if used+cnt > total {
			return nil, fmt.Errorf("approxsel: posting list %d overruns its table", r)
		}
		list := backing[used : used+cnt : used+cnt]
		for j := 0; j < cnt; j++ {
			rec := binary.LittleEndian.Uint32(rows[4*j:])
			if rec >= uint32(nrec) {
				return nil, fmt.Errorf("approxsel: posting record %d out of range (%d records)", rec, nrec)
			}
			list[j] = int32(rec)
		}
		used += cnt
		table[r] = list
	}
	return table, d.Err()
}

// encodeWPostTable writes a rank-indexed weighted posting table: record
// positions as 32-bit ints, weights as raw float64 bits.
func encodeWPostTable(e *segment.Encoder, table [][]WPost) {
	total := 0
	for _, l := range table {
		total += len(l)
	}
	e.Int(total)
	e.U32(uint32(len(table)))
	for _, l := range table {
		e.U32(uint32(len(l)))
		for _, p := range l {
			e.U32(uint32(p.Rec))
			e.F64(p.W)
		}
	}
}

func decodeWPostTable(d *segment.Decoder, nTok, nrec int) ([][]WPost, error) {
	total := d.Int()
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n != nTok {
		return nil, fmt.Errorf("approxsel: weighted posting table has %d lists for %d tokens", n, nTok)
	}
	if total < 0 || total > d.Remaining()/12 {
		return nil, fmt.Errorf("approxsel: weighted posting table claims %d postings", total)
	}
	backing := make([]WPost, total)
	used := 0
	table := make([][]WPost, n)
	for r := 0; r < n; r++ {
		cnt := int(d.U32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		rows := d.Raw(12*cnt, "weighted posting list")
		if err := d.Err(); err != nil {
			return nil, err
		}
		if used+cnt > total {
			return nil, fmt.Errorf("approxsel: weighted posting list %d overruns its table", r)
		}
		list := backing[used : used+cnt : used+cnt]
		for j := 0; j < cnt; j++ {
			rec := binary.LittleEndian.Uint32(rows[12*j:])
			if rec >= uint32(nrec) {
				return nil, fmt.Errorf("approxsel: weighted posting record %d out of range (%d records)", rec, nrec)
			}
			list[j] = WPost{Rec: int(rec), W: math.Float64frombits(binary.LittleEndian.Uint64(rows[12*j+4:]))}
		}
		used += cnt
		table[r] = list
	}
	return table, d.Err()
}

// ---- word layer ----

func encodeWordLayer(e *segment.Encoder, l *WordLayer, layers CorpusLayers) {
	// Invert the rank map into the sorted word order (rank r holds the word
	// with rank r), the string table everything else references.
	sorted := make([]string, len(l.rank))
	for t, r := range l.rank {
		sorted[r] = t
	}
	e.Strs(sorted)
	encodeStatsData(e, l.Stats.Export(sorted))

	// Word sequences lead with their total size, so the decoder carves the
	// per-record slices (and the idf-weight columns, which share the same
	// lengths) from contiguous backing arrays.
	total := 0
	for _, ws := range l.Words {
		total += len(ws)
	}
	e.Int(total)
	for _, ws := range l.Words {
		e.U32(uint32(len(ws)))
		for _, w := range ws {
			e.U32(uint32(l.rank[w]))
		}
	}
	for _, w := range l.IDFWeights {
		e.F64s(w)
	}
	if layers.Has(LayerWordTFIDF) {
		for _, m := range l.TFIDF {
			// Deterministic (rank, weight) rows in ascending rank order.
			pairs := make([]RankTF, 0, len(m))
			for t := range m {
				pairs = append(pairs, RankTF{Rank: l.rank[t]})
			}
			sortRankTF(pairs)
			e.U32(uint32(len(pairs)))
			for _, p := range pairs {
				e.U32(uint32(p.Rank))
				e.F64(m[sorted[p.Rank]])
			}
		}
	}
	if layers.Has(LayerWordGrams) {
		total = 0
		for _, vocab := range l.Vocab {
			total += len(vocab)
		}
		e.Int(total)
		for _, vocab := range l.Vocab {
			e.U32(uint32(len(vocab)))
			for _, w := range vocab {
				e.U32(uint32(l.rank[w]))
			}
		}
		// The word-gram string table: GramIndex keys in sorted order give
		// every distinct gram a dense id.
		grams := make([]string, 0, len(l.GramIndex))
		for g := range l.GramIndex {
			grams = append(grams, g)
		}
		sortStrings(grams)
		gramID := make(map[string]int32, len(grams))
		for i, g := range grams {
			gramID[g] = int32(i)
		}
		e.Strs(grams)
		total = 0
		for _, vgrams := range l.VocabGrams {
			for _, gs := range vgrams {
				total += len(gs)
			}
		}
		e.Int(total)
		for _, vgrams := range l.VocabGrams {
			e.U32(uint32(len(vgrams)))
			for _, gs := range vgrams {
				e.U32(uint32(len(gs)))
				for _, g := range gs {
					e.U32(uint32(gramID[g]))
				}
			}
		}
		total := 0
		for _, refs := range l.GramIndex {
			total += len(refs)
		}
		e.Int(total)
		for _, g := range grams {
			refs := l.GramIndex[g]
			e.U32(uint32(len(refs)))
			for _, ref := range refs {
				e.U32(uint32(ref.Rec))
				e.U32(uint32(ref.Word))
			}
		}
	}
	if layers.Has(LayerSigs) {
		total = 0
		for _, sigs := range l.Sigs {
			for _, sig := range sigs {
				total += len(sig)
			}
		}
		e.Int(total)
		for _, sigs := range l.Sigs {
			e.U32(uint32(len(sigs)))
			for _, sig := range sigs {
				e.U64s(sig)
			}
		}
		keys := make([]SigKey, 0, len(l.SigIndex))
		for k := range l.SigIndex {
			keys = append(keys, k)
		}
		sortSigKeys(keys)
		total := 0
		for _, refs := range l.SigIndex {
			total += len(refs)
		}
		e.Int(total)
		e.U32(uint32(len(keys)))
		for _, k := range keys {
			refs := l.SigIndex[k]
			e.U32(uint32(k.Slot))
			e.U64(k.Value)
			e.U32(uint32(len(refs)))
			for _, ref := range refs {
				e.U32(uint32(ref.Rec))
				e.U32(uint32(ref.Word))
			}
		}
	}
}

func decodeWordLayer(payload []byte, nrec int, layers CorpusLayers) (*WordLayer, error) {
	d := segment.NewDecoder(payload)
	sorted := d.Strs()
	l := &WordLayer{rank: rankOf(sorted)}
	nTok := len(sorted)

	stats, err := decodeStatsInto(d, sorted)
	if err != nil {
		return nil, err
	}
	l.Stats = stats

	totalWords := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if totalWords < 0 || totalWords > d.Remaining()/4 {
		return nil, fmt.Errorf("approxsel: word sequences claim %d words", totalWords)
	}
	wordBacking := make([]string, 0, totalWords)
	l.Words = make([][]string, nrec)
	l.Counts = make([]map[string]int, nrec)
	for i := 0; i < nrec; i++ {
		n := int(d.U32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		rows := d.Raw(4*n, "word sequence")
		if err := d.Err(); err != nil {
			return nil, err
		}
		if len(wordBacking)+n > totalWords {
			return nil, fmt.Errorf("approxsel: word sequence of record %d overruns its table", i)
		}
		start := len(wordBacking)
		for j := 0; j < n; j++ {
			id := binary.LittleEndian.Uint32(rows[4*j:])
			if id >= uint32(nTok) {
				return nil, fmt.Errorf("approxsel: word rank %d out of range (%d words)", id, nTok)
			}
			wordBacking = append(wordBacking, sorted[id])
		}
		ws := wordBacking[start:len(wordBacking):len(wordBacking)]
		l.Words[i] = ws
		// Frequency maps rebuild with the exact integer counting of the
		// tokenization path.
		l.Counts[i] = tokenize.Counts(ws)
	}
	// The idf-weight columns share the word sequences' lengths, so they
	// carve from one backing array of the same total size.
	idfBacking := make([]float64, totalWords)
	l.IDFWeights = make([][]float64, nrec)
	off := 0
	for i := 0; i < nrec; i++ {
		n := len(l.Words[i])
		col := idfBacking[off : off+n : off+n]
		if err := d.F64sInto(col); err != nil {
			return nil, fmt.Errorf("approxsel: idf weights of record %d do not match its words: %w", i, err)
		}
		l.IDFWeights[i] = col
		off += n
	}
	if layers.Has(LayerWordTFIDF) {
		l.TFIDF = make([]map[string]float64, nrec)
		for i := 0; i < nrec; i++ {
			n := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			rows := d.Raw(12*n, "tf-idf word map")
			if err := d.Err(); err != nil {
				return nil, err
			}
			m := make(map[string]float64, n)
			for j := 0; j < n; j++ {
				id := binary.LittleEndian.Uint32(rows[12*j:])
				w := math.Float64frombits(binary.LittleEndian.Uint64(rows[12*j+4:]))
				if id >= uint32(nTok) {
					return nil, fmt.Errorf("approxsel: tf-idf word rank %d out of range", id)
				}
				m[sorted[id]] = w
			}
			l.TFIDF[i] = m
		}
	}
	if layers.Has(LayerWordGrams) {
		totalVocab := d.Int()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if totalVocab < 0 || totalVocab > d.Remaining()/4 {
			return nil, fmt.Errorf("approxsel: vocabs claim %d words", totalVocab)
		}
		vocabBacking := make([]string, 0, totalVocab)
		l.Vocab = make([][]string, nrec)
		for i := 0; i < nrec; i++ {
			n := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			rows := d.Raw(4*n, "vocab")
			if err := d.Err(); err != nil {
				return nil, err
			}
			if len(vocabBacking)+n > totalVocab {
				return nil, fmt.Errorf("approxsel: vocab of record %d overruns its table", i)
			}
			start := len(vocabBacking)
			for j := 0; j < n; j++ {
				id := binary.LittleEndian.Uint32(rows[4*j:])
				if id >= uint32(nTok) {
					return nil, fmt.Errorf("approxsel: vocab word rank %d out of range", id)
				}
				vocabBacking = append(vocabBacking, sorted[id])
			}
			l.Vocab[i] = vocabBacking[start:len(vocabBacking):len(vocabBacking)]
		}
		grams := d.Strs()
		nGram := len(grams)
		totalWG := d.Int()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if totalWG < 0 || totalWG > d.Remaining()/4 {
			return nil, fmt.Errorf("approxsel: word grams claim %d entries", totalWG)
		}
		// Three backing arrays: the gram strings (totalWG entries), the
		// per-word gram slices (one per vocab word), and the gram sizes.
		wgBacking := make([]string, 0, totalWG)
		vgramsBacking := make([][]string, totalVocab)
		sizesBacking := make([]int, totalVocab)
		vused := 0
		l.VocabGrams = make([][][]string, nrec)
		l.GramSizes = make([][]int, nrec)
		for i := 0; i < nrec; i++ {
			nw := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			if nw != len(l.Vocab[i]) {
				return nil, fmt.Errorf("approxsel: vocab grams of record %d do not match its vocab", i)
			}
			vgrams := vgramsBacking[vused : vused+nw : vused+nw]
			sizes := sizesBacking[vused : vused+nw : vused+nw]
			vused += nw
			for j := 0; j < nw; j++ {
				ng := int(d.U32())
				if err := d.Err(); err != nil {
					return nil, err
				}
				rows := d.Raw(4*ng, "word grams")
				if err := d.Err(); err != nil {
					return nil, err
				}
				if len(wgBacking)+ng > totalWG {
					return nil, fmt.Errorf("approxsel: word grams of record %d overrun their table", i)
				}
				start := len(wgBacking)
				for k := 0; k < ng; k++ {
					id := binary.LittleEndian.Uint32(rows[4*k:])
					if id >= uint32(nGram) {
						return nil, fmt.Errorf("approxsel: word gram id %d out of range (%d grams)", id, nGram)
					}
					wgBacking = append(wgBacking, grams[id])
				}
				vgrams[j] = wgBacking[start:len(wgBacking):len(wgBacking)]
				sizes[j] = ng
			}
			l.VocabGrams[i] = vgrams
			l.GramSizes[i] = sizes
		}
		total := d.Int()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if total < 0 || total > d.Remaining()/8 {
			return nil, fmt.Errorf("approxsel: gram index claims %d references", total)
		}
		backing := make([]WordRef, 0, total)
		l.GramIndex = make(map[string][]WordRef, nGram)
		for gi := 0; gi < nGram; gi++ {
			cnt := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			rows := d.Raw(8*cnt, "gram index list")
			if err := d.Err(); err != nil {
				return nil, err
			}
			if len(backing)+cnt > total {
				return nil, fmt.Errorf("approxsel: gram index list %d overruns its table", gi)
			}
			start := len(backing)
			for j := 0; j < cnt; j++ {
				rec := binary.LittleEndian.Uint32(rows[8*j:])
				word := binary.LittleEndian.Uint32(rows[8*j+4:])
				if rec >= uint32(nrec) {
					return nil, fmt.Errorf("approxsel: gram index record %d out of range", rec)
				}
				backing = append(backing, WordRef{Rec: int(rec), Word: int(int32(word))})
			}
			l.GramIndex[grams[gi]] = backing[start:len(backing):len(backing)]
		}
		// The dense word-id space rebuilds with the exact integer
		// arithmetic of the assembly path.
		l.WordOff = make([]int32, nrec)
		off := 0
		for i, vocab := range l.Vocab {
			l.WordOff[i] = int32(off)
			off += len(vocab)
		}
		l.WordTotal = off
		l.WordRecOf = make([]int32, off)
		l.GramSizeOf = make([]int32, off)
		for i, sizes := range l.GramSizes {
			base := l.WordOff[i]
			for j, sz := range sizes {
				l.WordRecOf[base+int32(j)] = int32(i)
				l.GramSizeOf[base+int32(j)] = int32(sz)
			}
		}
	}
	if layers.Has(LayerSigs) {
		totalSig := d.Int()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if totalSig < 0 || totalSig > d.Remaining()/8 {
			return nil, fmt.Errorf("approxsel: signatures claim %d values", totalSig)
		}
		sigBacking := make([]uint64, 0, totalSig)
		l.Sigs = make([][][]uint64, nrec)
		for i := 0; i < nrec; i++ {
			nw := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			if nw > d.Remaining()/4 {
				return nil, fmt.Errorf("approxsel: signatures of record %d overrun payload", i)
			}
			sigs := make([][]uint64, nw)
			for j := 0; j < nw; j++ {
				k := int(d.U32())
				if err := d.Err(); err != nil {
					return nil, err
				}
				rows := d.Raw(8*k, "signature")
				if err := d.Err(); err != nil {
					return nil, err
				}
				if len(sigBacking)+k > totalSig {
					return nil, fmt.Errorf("approxsel: signatures of record %d overrun their table", i)
				}
				start := len(sigBacking)
				for v := 0; v < k; v++ {
					sigBacking = append(sigBacking, binary.LittleEndian.Uint64(rows[8*v:]))
				}
				sigs[j] = sigBacking[start:len(sigBacking):len(sigBacking)]
			}
			l.Sigs[i] = sigs
		}
		total := d.Int()
		nKeys := int(d.U32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		if total < 0 || total > d.Remaining()/8 || nKeys < 0 || nKeys > d.Remaining()/16 {
			return nil, fmt.Errorf("approxsel: signature index claims %d refs / %d keys", total, nKeys)
		}
		backing := make([]WordRef, 0, total)
		l.SigIndex = make(map[SigKey][]WordRef, nKeys)
		for ki := 0; ki < nKeys; ki++ {
			slot := int(d.U32())
			value := d.U64()
			cnt := int(d.U32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			rows := d.Raw(8*cnt, "signature index list")
			if err := d.Err(); err != nil {
				return nil, err
			}
			if len(backing)+cnt > total {
				return nil, fmt.Errorf("approxsel: signature index list %d overruns its table", ki)
			}
			start := len(backing)
			for j := 0; j < cnt; j++ {
				rec := binary.LittleEndian.Uint32(rows[8*j:])
				word := binary.LittleEndian.Uint32(rows[8*j+4:])
				if rec >= uint32(nrec) {
					return nil, fmt.Errorf("approxsel: signature index record %d out of range", rec)
				}
				backing = append(backing, WordRef{Rec: int(rec), Word: int(int32(word))})
			}
			l.SigIndex[SigKey{Slot: slot, Value: value}] = backing[start:len(backing):len(backing)]
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return l, nil
}

// ---- small deterministic sorts ----

func sortRankTF(pairs []RankTF) {
	slices.SortFunc(pairs, func(a, b RankTF) int { return int(a.Rank) - int(b.Rank) })
}

func sortStrings(ss []string) { slices.Sort(ss) }

func sortSigKeys(ks []SigKey) {
	slices.SortFunc(ks, func(a, b SigKey) int {
		if a.Slot != b.Slot {
			return a.Slot - b.Slot
		}
		switch {
		case a.Value < b.Value:
			return -1
		case a.Value > b.Value:
			return 1
		}
		return 0
	})
}
