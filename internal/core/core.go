// Package core defines the shared vocabulary of the benchmark: base
// records, approximate-selection results, the Predicate interface every
// similarity predicate implements (natively in package native, declaratively
// over SQL in package declarative), and the configuration knobs with the
// paper's recommended settings (§5.3.2).
package core

import (
	"sort"
	"time"
)

// Record is one tuple of the base relation R: a unique tuple identifier and
// a string attribute.
type Record struct {
	TID  int
	Text string
}

// Match is one result of an approximate selection: a base tuple and its
// similarity score to the query string.
type Match struct {
	TID   int
	Score float64
}

// Predicate is an approximate-selection predicate over a fixed base
// relation. Select returns every base tuple whose similarity to the query
// is defined under the predicate (for join-based predicates: tuples sharing
// at least one token with the query), ranked by decreasing score with ties
// broken by increasing TID. The accuracy methodology (§5.2) deliberately
// does not threshold this ranking.
type Predicate interface {
	Name() string
	Select(query string) ([]Match, error)
}

// Phased is implemented by predicates that track the two preprocessing
// phases of §5.5.1: tokenization and weight computation.
type Phased interface {
	// PreprocessPhases returns the time spent tokenizing the base relation
	// and the time spent computing and storing weights.
	PreprocessPhases() (tokenize, weights time.Duration)
}

// Config carries the tunable parameters for all predicates. The zero value
// is not useful; start from DefaultConfig.
type Config struct {
	// Q is the q-gram size used by the token-based predicates. The paper's
	// accuracy study selects q=2 (§5.3.3).
	Q int
	// WordQ is the q-gram size used to compare word tokens inside the
	// combination predicates (GES variants).
	WordQ int
	// BM25K1, BM25K3, BM25B are the BM25 parameters (§5.3.2: 1.5, 8, 0.675).
	BM25K1, BM25K3, BM25B float64
	// HMMA0 is the HMM "General English" transition probability (§5.3.2: 0.2).
	HMMA0 float64
	// GESCins is the GES token-insertion factor (§5.3.2: 0.5, from [4]).
	GESCins float64
	// GESThreshold is the candidate-filter threshold θ used by GESJaccard
	// and GESapx (§5.5.2 uses 0.8). Zero disables filtering (every record
	// sharing a word q-gram with the query is verified).
	GESThreshold float64
	// SoftTFIDFTheta is the Jaro–Winkler closeness threshold of SoftTFIDF
	// (§5.3.2: 0.8).
	SoftTFIDFTheta float64
	// EditTheta is the edit-similarity threshold driving the q-gram
	// filtering step of the edit predicate (§5.5.2 uses 0.7). Zero disables
	// filtering and ranks the entire base relation by edit similarity.
	EditTheta float64
	// EditPositional enables the position filter of Gravano et al. [11] in
	// the native edit predicate: shared grams only count when their
	// positions differ by at most the edit budget, tightening the candidate
	// set with no false negatives.
	EditPositional bool
	// MinHashK is the min-hash signature size for GESapx (§5.4.1: 5).
	MinHashK int
	// MinHashSeed seeds the min-wise permutation family deterministically.
	MinHashSeed int64
	// PruneRate is the IDF pruning rate of §5.6: base tokens with
	// idf < min(idf) + rate·(max(idf) − min(idf)) are dropped during
	// preprocessing. Zero disables pruning.
	PruneRate float64
}

// DefaultConfig returns the paper's parameter settings.
func DefaultConfig() Config {
	return Config{
		Q:              2,
		WordQ:          2,
		BM25K1:         1.5,
		BM25K3:         8,
		BM25B:          0.675,
		HMMA0:          0.2,
		GESCins:        0.5,
		GESThreshold:   0.8,
		SoftTFIDFTheta: 0.8,
		EditTheta:      0.7,
		MinHashK:       5,
		MinHashSeed:    1,
	}
}

// PredicateNames lists the canonical benchmark predicates in the order the
// paper presents them (Table 5.5 and Figures 5.1–5.4).
var PredicateNames = []string{
	"IntersectSize",
	"Jaccard",
	"WeightedMatch",
	"WeightedJaccard",
	"Cosine",
	"BM25",
	"LM",
	"HMM",
	"EditDistance",
	"GES",
	"GESJaccard",
	"GESapx",
	"SoftTFIDF",
}

// SortMatches orders matches by decreasing score, breaking ties by
// increasing TID, the ordering contract of Predicate.Select.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Score != ms[j].Score {
			return ms[i].Score > ms[j].Score
		}
		return ms[i].TID < ms[j].TID
	})
}
