package core

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Q != 2 || cfg.WordQ != 2 {
		t.Errorf("q-gram sizes: %+v", cfg)
	}
	if cfg.BM25K1 != 1.5 || cfg.BM25K3 != 8 || cfg.BM25B != 0.675 {
		t.Errorf("BM25 params: %+v", cfg)
	}
	if cfg.HMMA0 != 0.2 {
		t.Errorf("HMM a0: %v", cfg.HMMA0)
	}
	if cfg.GESCins != 0.5 || cfg.GESThreshold != 0.8 {
		t.Errorf("GES params: %+v", cfg)
	}
	if cfg.SoftTFIDFTheta != 0.8 || cfg.EditTheta != 0.7 {
		t.Errorf("thresholds: %+v", cfg)
	}
	if cfg.MinHashK != 5 {
		t.Errorf("min-hash K: %v", cfg.MinHashK)
	}
	if cfg.PruneRate != 0 {
		t.Errorf("pruning should default off: %v", cfg.PruneRate)
	}
}

func TestPredicateNamesComplete(t *testing.T) {
	if len(PredicateNames) != 13 {
		t.Fatalf("the paper benchmarks 13 predicates, got %d", len(PredicateNames))
	}
	want := []string{"IntersectSize", "Jaccard", "WeightedMatch", "WeightedJaccard",
		"Cosine", "BM25", "LM", "HMM", "EditDistance", "GES", "GESJaccard",
		"GESapx", "SoftTFIDF"}
	if !reflect.DeepEqual(PredicateNames, want) {
		t.Fatalf("PredicateNames = %v", PredicateNames)
	}
}

func TestSortMatchesContract(t *testing.T) {
	ms := []Match{
		{TID: 3, Score: 0.5},
		{TID: 1, Score: 0.5},
		{TID: 2, Score: 0.9},
		{TID: 4, Score: 0.1},
	}
	SortMatches(ms)
	want := []Match{{TID: 2, Score: 0.9}, {TID: 1, Score: 0.5}, {TID: 3, Score: 0.5}, {TID: 4, Score: 0.1}}
	if !reflect.DeepEqual(ms, want) {
		t.Fatalf("SortMatches: %v", ms)
	}
}

func TestSortMatchesProperty(t *testing.T) {
	f := func(scores []float64) bool {
		ms := make([]Match, len(scores))
		for i, s := range scores {
			ms[i] = Match{TID: i, Score: s}
		}
		SortMatches(ms)
		if !sort.SliceIsSorted(ms, func(i, j int) bool {
			if ms[i].Score != ms[j].Score {
				return ms[i].Score > ms[j].Score
			}
			return ms[i].TID < ms[j].TID
		}) {
			return false
		}
		return len(ms) == len(scores)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
