package core

import (
	"math"
	"math/bits"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// This file implements the score-at-a-time selection hot path shared by the
// native predicates: a dense term-at-a-time merge over precomputed posting
// lists, driven in descending-impact token order with max-score early
// termination (Turtle & Flood style, exact results only).
//
// The contract is strict exactness: for any options, the result is
// bit-identical — scores and tie order — to NaiveTermSelect over the same
// terms, which performs the classic full map merge. Pruning only ever
// avoids work whose absence is provable from precomputed per-list weight
// bounds:
//
//   - While "admission" is open, every posting of every list is applied.
//   - At each list boundary, the engine knows an upper bound on the total
//     score any not-yet-touched record could still reach (the suffix sum of
//     per-list maxima, plus the best per-record offset). Once that bound
//     falls strictly below the floor — the k-th best lower-bounded
//     candidate, or the pushed-down threshold — no new record can enter the
//     result, and admission closes.
//   - After closure, a remaining list either gets a cheap update-only walk
//     (only already-touched records accumulate; no insertions), or — when
//     the candidate set is smaller than the list — is skipped entirely:
//     the candidates' contributions from that list are recovered by binary
//     search into the (record-sorted) posting list, so every reported
//     score still sums exactly the same contributions in the same order.

// Term is one query token's posting-list contribution to a selection.
// Exactly one of W and Ids is set: W carries weighted postings (the
// contribution of posting p is Q·p.W), Ids carries unweighted postings
// (contribution Q each). Posting lists must be sorted by ascending record
// position, which is how every corpus/attach table is built.
type Term struct {
	// Q is the query-side factor of the token.
	Q   float64
	W   []WPost
	Ids []int32
	// MaxW and MinW bound the record-side weights of W (ignored for Ids,
	// whose implicit weight is 1). They are the precomputed per-rank bound
	// columns of the corpus snapshot or the attach-time weight tables.
	MaxW, MinW float64
}

// bounds returns the per-record contribution bounds of the term: ub ≥ any
// single record's gain from this list (clamped at 0 — absent records gain
// nothing), lb ≤ any single record's gain (clamped at 0).
func (t *Term) bounds() (ub, lb float64) {
	var hi, lo float64
	if t.Ids != nil {
		hi, lo = t.Q, t.Q
	} else {
		hi, lo = t.Q*t.MaxW, t.Q*t.MinW
		if lo > hi {
			hi, lo = lo, hi
		}
	}
	return math.Max(0, hi), math.Min(0, lo)
}

func (t *Term) size() int {
	if t.Ids != nil {
		return len(t.Ids)
	}
	return len(t.W)
}

// OrderTermsByImpact sorts terms by decreasing contribution upper bound,
// keeping the original (token-rank) order for ties. Both the optimized and
// the naive reference paths run over this order, so per-record
// floating-point accumulation order — and therefore every score bit — is
// shared by construction.
func OrderTermsByImpact(terms []Term) {
	slices.SortStableFunc(terms, func(a, b Term) int {
		ua, _ := a.bounds()
		ub, _ := b.bounds()
		switch {
		case ua > ub:
			return -1
		case ua < ub:
			return 1
		}
		return 0
	})
}

// Shape maps a record's accumulated mass to its final score. The zero
// value is the identity (score = accumulated sum).
type Shape struct {
	// Comp is a per-record additive offset applied before Exp (the LM
	// predicate's Σ log(1−pm) column); CompMax is its maximum over records
	// that can appear in a posting list — the snapshot bound column.
	Comp    []float64
	CompMax float64
	// Exp applies exp() to the offset sum (LM, HMM).
	Exp bool
	// Den switches to the ratio family (Jaccard, WeightedJaccard):
	// score = acc / (Den[rec] + QSide − acc), with DenMin the precomputed
	// minimum of Den over records. DenAtLeastAcc declares Den[rec] ≥ acc
	// for every reachable record (true for Jaccard, where the denominator
	// column counts a superset of the intersection), which tightens the
	// admission bound.
	Den           []float64
	DenMin        float64
	DenAtLeastAcc bool
	QSide         float64
}

func (sh *Shape) ratio() bool { return sh.Den != nil }

// pruneSlack is the relative safety margin applied to every pruning
// comparison. The suffix bounds and a candidate's own accumulation sum the
// same contributions in different association orders, so either float
// result may exceed the other by a few ulps (~2^-52 relative per
// addition); likewise exp/log are not exact inverses when a threshold is
// mapped into key space. Widening the bound side by 1e-12 — orders of
// magnitude above the achievable rounding error for any realistic term
// count, immeasurably below any real floor gap — makes every skip
// decision rigorous: rounding can only make pruning less aggressive,
// never drop a record the naive merge would keep.
const pruneSlack = 1e-12

// upBound inflates an upper bound computed from x (whose magnitude also
// caps the summation error of what it bounds).
func upBound(x, scale float64) float64 {
	return x + pruneSlack*(math.Abs(x)+math.Abs(scale)+1)
}

// downBound deflates a lower bound symmetrically.
func downBound(x, scale float64) float64 {
	return x - pruneSlack*(math.Abs(x)+math.Abs(scale)+1)
}

// final computes the exact final score of a touched record; ok=false drops
// the record (the ratio family's zero-denominator guard).
func (sh *Shape) final(rec int32, acc float64) (float64, bool) {
	if sh.Den != nil {
		den := sh.Den[rec] + sh.QSide - acc
		if den == 0 {
			return 0, false
		}
		return acc / den, true
	}
	k := acc
	if sh.Comp != nil {
		k += sh.Comp[rec]
	}
	if sh.Exp {
		return math.Exp(k), true
	}
	return k, true
}

// ratioBound returns an upper bound on the final score of any not-yet
// touched record whose remaining accumulable mass is at most x. +Inf means
// no finite bound is provable (pruning stays off).
func (sh *Shape) ratioBound(x float64) float64 {
	if sh.QSide <= 0 {
		return math.Inf(1)
	}
	if sh.DenAtLeastAcc && x > sh.QSide {
		x = sh.QSide
	}
	dm := sh.DenMin
	if sh.DenAtLeastAcc && x > dm {
		dm = x
	}
	den := dm + sh.QSide - x
	if den <= 0 {
		return math.Inf(1)
	}
	return x / den
}

// ---- engine ----

// MaxScoreSelect runs the score-at-a-time merge over terms (already in
// OrderTermsByImpact order) and returns the ranked matches under opts.
// The scratch must have been Reset for len(recs) records (GetScratch does).
func MaxScoreSelect(s *Scratch, recs []Record, terms []Term, sh Shape, opts SelectOptions) []Match {
	// Stage attribution (accumulator merge vs. materialize) feeds the
	// tracer's per-stage aggregates. The guard is one atomic load; with
	// tracing disabled (the default) the engine pays nothing else — the
	// allocation test asserts this path stays map- and alloc-free.
	traced := obs.TracingEnabled()
	var t0 time.Time
	if traced {
		t0 = time.Now()
	}
	nt := len(terms)
	pos, neg := s.suffixBounds(terms)

	prune := opts.Limit > 0 || opts.HasThreshold
	// Threshold in key space for the additive family: a key strictly below
	// thKey has a final score provably below θ. The conversion is deflated
	// by the pruning slack because log/exp are not exact inverses.
	thKey := math.Inf(-1)
	if opts.HasThreshold && !sh.ratio() {
		if sh.Exp {
			if opts.Threshold > 0 {
				thKey = downBound(math.Log(opts.Threshold), 0)
			}
		} else {
			thKey = downBound(opts.Threshold, 0)
		}
	}
	useHeap := prune && !sh.ratio() && opts.Limit > 0
	k := opts.Limit

	closed := false
	var skipped, updateOnly, postsSkipped uint64
	for i := range terms {
		t := &terms[i]
		if prune && !closed {
			if sh.ratio() {
				if opts.HasThreshold {
					bound := sh.ratioBound(upBound(pos[i], pos[i]))
					if upBound(bound, 0) < opts.Threshold {
						closed = true
					}
				}
			} else {
				unseen := upBound(pos[i]+sh.CompMax, pos[i])
				if unseen < thKey {
					closed = true
				} else if useHeap && len(s.hkeys) == k &&
					unseen < downBound(s.hkeys[0]+neg[i], neg[i]) {
					closed = true
				}
			}
		}
		if closed {
			// Admission is closed: this list can only adjust scores of
			// candidates that can still reach the result. First drop the
			// candidates that provably cannot (same bound argument as the
			// closure test, applied per record), then pick the cheaper
			// exact plan for the list — skip it entirely and recover the
			// surviving candidates' contributions by binary search, or
			// walk it in update-only mode.
			s.compactCandidates(&sh, opts, pos[i], neg[i], thKey, useHeap, k)
			n := t.size()
			if lookupCheaper(len(s.touched), n) {
				s.finishByLookup(t)
				skipped++
				postsSkipped += uint64(n)
			} else {
				s.walkUpdateOnly(t)
				updateOnly++
			}
			continue
		}
		if useHeap {
			s.walkFullHeap(t, sh.Comp, k)
		} else {
			s.walkFull(t)
		}
	}

	var t1 time.Time
	if traced {
		t1 = time.Now()
	}
	out := s.materialize(recs, &sh, opts)
	if traced {
		t2 := time.Now()
		obs.RecordStage("engine.accumulate", t1.Sub(t0))
		obs.RecordStage("engine.materialize", t2.Sub(t1))
	}

	hotPath.queries.Add(1)
	hotPath.lists.Add(uint64(nt))
	if closed {
		hotPath.prunedQueries.Add(1)
		hotPath.listsSkipped.Add(skipped)
		hotPath.listsUpdateOnly.Add(updateOnly)
		hotPath.postingsSkipped.Add(postsSkipped)
	}
	s.terms = terms[:0]
	return out
}

// NaiveTermSelect is the reference merge the optimized engine is
// differential-tested against, and the "old" side of BENCH_hotpath.json:
// a per-query map accumulator over every posting of every term, fully
// materialized, then sorted and truncated. Because it visits the same
// contributions in the same term order as MaxScoreSelect, the two paths
// agree bit for bit.
func NaiveTermSelect(recs []Record, terms []Term, sh Shape, opts SelectOptions) []Match {
	acc := make(map[int32]float64)
	for i := range terms {
		t := &terms[i]
		if t.Ids != nil {
			for _, r := range t.Ids {
				acc[r] += t.Q
			}
			continue
		}
		for _, p := range t.W {
			acc[int32(p.Rec)] += t.Q * p.W
		}
	}
	out := make([]Match, 0, len(acc))
	for r, a := range acc {
		score, ok := sh.final(r, a)
		if !ok || !opts.Keeps(score) {
			continue
		}
		out = append(out, Match{TID: recs[r].TID, Score: score})
	}
	return FinishMatches(out, opts)
}

// suffixBounds fills the scratch's suffix arrays: pos[i] (neg[i]) is the
// summed positive (negative) contribution bound of terms[i:].
func (s *Scratch) suffixBounds(terms []Term) (pos, neg []float64) {
	nt := len(terms)
	if cap(s.pos) < nt+1 {
		s.pos = make([]float64, nt+1)
		s.neg = make([]float64, nt+1)
	}
	pos = s.pos[:nt+1]
	neg = s.neg[:nt+1]
	pos[nt], neg[nt] = 0, 0
	for i := nt - 1; i >= 0; i-- {
		ub, lb := terms[i].bounds()
		pos[i] = pos[i+1] + ub
		neg[i] = neg[i+1] + lb
	}
	return pos, neg
}

// lookupCheaper decides between binary-search finishing (candidates × log
// posts) and an update-only walk (posts).
func lookupCheaper(candidates, posts int) bool {
	return candidates*(bits.Len(uint(posts))+1) < posts
}

func (s *Scratch) walkFull(t *Term) {
	q := t.Q
	if t.Ids != nil {
		for _, r := range t.Ids {
			s.Add(r, q)
		}
		return
	}
	for _, p := range t.W {
		s.Add(int32(p.Rec), q*p.W)
	}
}

// walkFullHeap is walkFull plus floor-heap maintenance: after each
// accumulation the record's key (accumulated mass plus its Comp offset)
// updates the k-sized min-heap whose root is the pruning floor.
func (s *Scratch) walkFullHeap(t *Term, comp []float64, k int) {
	q := t.Q
	if t.Ids != nil {
		for _, r := range t.Ids {
			s.Add(r, q)
			kv := s.f[r]
			if comp != nil {
				kv += comp[r]
			}
			s.heapFix(r, kv, k)
		}
		return
	}
	for _, p := range t.W {
		r := int32(p.Rec)
		s.Add(r, q*p.W)
		kv := s.f[r]
		if comp != nil {
			kv += comp[r]
		}
		s.heapFix(r, kv, k)
	}
}

func (s *Scratch) walkUpdateOnly(t *Term) {
	q := t.Q
	if t.Ids != nil {
		for _, r := range t.Ids {
			if s.stamp[r] == s.cur {
				s.f[r] += q
			}
		}
		return
	}
	for _, p := range t.W {
		r := int32(p.Rec)
		if s.stamp[r] == s.cur {
			s.f[r] += q * p.W
		}
	}
}

// compactCandidates drops candidates that provably cannot appear in the
// result: with a full floor heap, a candidate whose best possible final
// key (current key plus the remaining positive suffix) stays strictly
// below the heap members' worst possible final key is outside the top-k —
// the k members all outrank it; with a threshold, a candidate whose best
// possible final score stays below θ is filtered either way. Dropping is
// pure exclusion: surviving candidates keep accumulating every remaining
// contribution, so reported scores are untouched.
func (s *Scratch) compactCandidates(sh *Shape, opts SelectOptions, pos, neg, thKey float64, useHeap bool, k int) {
	if len(s.touched) == 0 {
		return
	}
	if sh.ratio() {
		if !opts.HasThreshold {
			return
		}
		kept := s.touched[:0]
		for _, r := range s.touched {
			x := upBound(s.f[r]+pos, pos)
			if sh.DenAtLeastAcc {
				if x > sh.Den[r] {
					x = sh.Den[r]
				}
				if x > sh.QSide {
					x = sh.QSide
				}
			}
			den := sh.Den[r] + sh.QSide - x
			if den <= 0 || upBound(x/den, 0) >= opts.Threshold {
				kept = append(kept, r)
			}
		}
		s.touched = kept
		return
	}
	// Floor over the heap members' current keys (update-only walks keep
	// accumulating into them, so recompute instead of trusting the root).
	floor := math.Inf(1)
	haveFloor := useHeap && len(s.hkeys) == k
	if haveFloor {
		for _, hr := range s.hrecs {
			kv := s.f[hr]
			if sh.Comp != nil {
				kv += sh.Comp[hr]
			}
			if kv < floor {
				floor = kv
			}
		}
	}
	haveTh := opts.HasThreshold && !math.IsInf(thKey, -1)
	if !haveFloor && !haveTh {
		return
	}
	floorLow := downBound(floor+neg, neg)
	kept := s.touched[:0]
	for _, r := range s.touched {
		kv := s.f[r]
		if sh.Comp != nil {
			kv += sh.Comp[r]
		}
		best := upBound(kv+pos, math.Abs(kv)+math.Abs(pos))
		if (haveFloor && best < floorLow) || (haveTh && best < thKey) {
			continue
		}
		kept = append(kept, r)
	}
	s.touched = kept
}

// finishByLookup recovers the candidates' contributions from a skipped
// list by binary search, in touched order — each record still receives its
// lists' contributions in list-processing order, so sums stay exact.
func (s *Scratch) finishByLookup(t *Term) {
	q := t.Q
	if t.Ids != nil {
		ids := t.Ids
		for _, r := range s.touched {
			lo, hi := 0, len(ids)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if ids[mid] < r {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(ids) && ids[lo] == r {
				s.f[r] += q
			}
		}
		return
	}
	posts := t.W
	for _, r := range s.touched {
		rec := int(r)
		lo, hi := 0, len(posts)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if posts[mid].Rec < rec {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(posts) && posts[lo].Rec == rec {
			s.f[r] += q * posts[lo].W
		}
	}
}

// materialize turns the touched set into the ranked result. With a limit
// the candidates stage through the scratch's match buffer and only the
// k-sized result is freshly allocated; without one the result itself is
// O(candidates) and allocated exactly.
func (s *Scratch) materialize(recs []Record, sh *Shape, opts SelectOptions) []Match {
	if opts.Limit > 0 {
		buf := s.ms[:0]
		for _, r := range s.touched {
			score, ok := sh.final(r, s.f[r])
			if !ok || !opts.Keeps(score) {
				continue
			}
			buf = append(buf, Match{TID: recs[r].TID, Score: score})
		}
		s.ms = buf
		if opts.Limit < len(buf) {
			return FinishMatches(buf, opts) // k-bounded heap, fresh k-slice
		}
		out := append([]Match(nil), buf...)
		SortMatches(out)
		return out
	}
	out := make([]Match, 0, len(s.touched))
	for _, r := range s.touched {
		score, ok := sh.final(r, s.f[r])
		if !ok || !opts.Keeps(score) {
			continue
		}
		out = append(out, Match{TID: recs[r].TID, Score: score})
	}
	SortMatches(out)
	return out
}

// ---- floor heap (min-heap over candidate keys, root = pruning floor) ----

// heapFix updates the floor heap after rec's key changed to kv: in-heap
// records re-sift in place, new records displace the root only when they
// strictly beat it. The root is always the minimum of k actual candidate
// keys, which makes it a valid lower bound on the true k-th best key.
func (s *Scratch) heapFix(r int32, kv float64, k int) {
	if p := int(s.hpos[r]); p >= 0 {
		s.hkeys[p] = kv
		if !s.heapDown(p) {
			s.heapUp(p)
		}
		return
	}
	if len(s.hkeys) < k {
		s.hkeys = append(s.hkeys, kv)
		s.hrecs = append(s.hrecs, r)
		s.hpos[r] = int32(len(s.hkeys) - 1)
		s.heapUp(len(s.hkeys) - 1)
		return
	}
	if kv > s.hkeys[0] {
		s.hpos[s.hrecs[0]] = -1
		s.hkeys[0] = kv
		s.hrecs[0] = r
		s.hpos[r] = 0
		s.heapDown(0)
	}
}

func (s *Scratch) heapSwap(i, j int) {
	s.hkeys[i], s.hkeys[j] = s.hkeys[j], s.hkeys[i]
	s.hrecs[i], s.hrecs[j] = s.hrecs[j], s.hrecs[i]
	s.hpos[s.hrecs[i]] = int32(i)
	s.hpos[s.hrecs[j]] = int32(j)
}

func (s *Scratch) heapDown(i int) bool {
	moved := false
	for {
		small := i
		if l := 2*i + 1; l < len(s.hkeys) && s.hkeys[l] < s.hkeys[small] {
			small = l
		}
		if r := 2*i + 2; r < len(s.hkeys) && s.hkeys[r] < s.hkeys[small] {
			small = r
		}
		if small == i {
			return moved
		}
		s.heapSwap(i, small)
		i = small
		moved = true
	}
}

func (s *Scratch) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if s.hkeys[i] >= s.hkeys[parent] {
			return
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

// ---- pruning statistics ----

// hotPathCounters aggregates process-wide max-score pruning counters. They
// are written once per query (not per posting) and surface through
// HotPathSnapshot, the /v1/stats hot_path block, and BENCH_hotpath.json.
var hotPath struct {
	queries         atomic.Uint64
	prunedQueries   atomic.Uint64
	lists           atomic.Uint64
	listsSkipped    atomic.Uint64
	listsUpdateOnly atomic.Uint64
	postingsSkipped atomic.Uint64
}

// HotPathStats is a snapshot of the hot path's pruning counters.
type HotPathStats struct {
	// Queries counts engine selections; PrunedQueries those where
	// admission closed before the last list.
	Queries       uint64 `json:"queries"`
	PrunedQueries uint64 `json:"pruned_queries"`
	// Lists counts posting lists presented to the engine; ListsSkipped the
	// ones never walked (candidates finished by binary search);
	// ListsUpdateOnly the ones walked without admitting new candidates.
	Lists           uint64 `json:"lists"`
	ListsSkipped    uint64 `json:"lists_skipped"`
	ListsUpdateOnly uint64 `json:"lists_update_only"`
	// PostingsSkipped sums the lengths of skipped lists.
	PostingsSkipped uint64 `json:"postings_skipped"`
}

// PruneRate is the fraction of posting lists skipped entirely.
func (st HotPathStats) PruneRate() float64 {
	if st.Lists == 0 {
		return 0
	}
	return float64(st.ListsSkipped) / float64(st.Lists)
}

// HotPathSnapshot returns the current pruning counters.
func HotPathSnapshot() HotPathStats {
	return HotPathStats{
		Queries:         hotPath.queries.Load(),
		PrunedQueries:   hotPath.prunedQueries.Load(),
		Lists:           hotPath.lists.Load(),
		ListsSkipped:    hotPath.listsSkipped.Load(),
		ListsUpdateOnly: hotPath.listsUpdateOnly.Load(),
		PostingsSkipped: hotPath.postingsSkipped.Load(),
	}
}

// ResetHotPathStats zeroes the pruning counters (benchmark harness hook).
func ResetHotPathStats() {
	hotPath.queries.Store(0)
	hotPath.prunedQueries.Store(0)
	hotPath.lists.Store(0)
	hotPath.listsSkipped.Store(0)
	hotPath.listsUpdateOnly.Store(0)
	hotPath.postingsSkipped.Store(0)
}

// Sub returns the counter deltas since an earlier snapshot.
func (st HotPathStats) Sub(prev HotPathStats) HotPathStats {
	return HotPathStats{
		Queries:         st.Queries - prev.Queries,
		PrunedQueries:   st.PrunedQueries - prev.PrunedQueries,
		Lists:           st.Lists - prev.Lists,
		ListsSkipped:    st.ListsSkipped - prev.ListsSkipped,
		ListsUpdateOnly: st.ListsUpdateOnly - prev.ListsUpdateOnly,
		PostingsSkipped: st.PostingsSkipped - prev.PostingsSkipped,
	}
}
