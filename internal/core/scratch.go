package core

import "sync"

// Scratch is the reusable dense accumulator of the selection hot path. It
// replaces the per-query map[int]float64 accumulators (and their secondary
// intersection/match maps) with one epoch-stamped float column plus a
// touched list: accumulating into a record is an array add, resetting
// between queries is a single epoch bump, and the backing arrays are
// recycled through a sync.Pool so concurrent Selects stop allocating
// O(candidates) maps per query.
//
// A Scratch is single-goroutine state: concurrent selections each check
// their own scratch out of the pool (GetScratch) and return it when the
// query's results have been materialized (Release).
type Scratch struct {
	f     []float64 // dense accumulator, valid where stamp matches cur
	slot  []int32   // per-record spill-row slot, valid where stamp matches cur
	stamp []uint32
	cur   uint32
	// touched lists the stamped records in first-touch order; its length is
	// the candidate count of the running query.
	touched []int32

	// Floor heap of the max-score engine: a min-heap over candidate keys
	// whose root is the k-th best key seen so far. hpos tracks each
	// record's heap position (-1 when absent), valid where stamp matches.
	hkeys []float64
	hrecs []int32
	hpos  []int32

	// Per-query side buffers reused across checkouts.
	terms []Term
	pos   []float64 // suffix sums of positive contribution bounds
	neg   []float64 // suffix sums of negative contribution bounds
	ms    []Match
	spill []float64 // flat stride-rows buffer (the GES filters' maxsim table)
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch checks a scratch out of the shared pool, reset for n records.
func GetScratch(n int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.Reset(n)
	return s
}

// Release returns the scratch (and its grown backing arrays) to the pool.
func (s *Scratch) Release() { scratchPool.Put(s) }

// Reset prepares the scratch for a fresh accumulation over records
// 0..n-1: the backing arrays grow to cover n and every previous stamp is
// invalidated by bumping the epoch (no O(n) clearing).
func (s *Scratch) Reset(n int) {
	if cap(s.stamp) < n {
		s.f = make([]float64, n)
		s.slot = make([]int32, n)
		s.stamp = make([]uint32, n)
		s.hpos = make([]int32, n)
		s.cur = 0
	} else {
		s.f = s.f[:cap(s.stamp)]
		s.slot = s.slot[:cap(s.stamp)]
		s.stamp = s.stamp[:cap(s.stamp)]
		s.hpos = s.hpos[:cap(s.stamp)]
	}
	s.cur++
	if s.cur == 0 {
		// Epoch wrap: stale stamps from 2^32 resets ago could alias the new
		// epoch, so clear them once and restart at 1.
		clear(s.stamp)
		s.cur = 1
	}
	s.touched = s.touched[:0]
	s.hkeys = s.hkeys[:0]
	s.hrecs = s.hrecs[:0]
}

// Add accumulates w into rec's score, stamping the record into the touched
// list on first contact. First touch stores w directly, which is exactly
// 0 + w, so the accumulated value is bit-identical to a map merge visiting
// the same contributions in the same order.
func (s *Scratch) Add(rec int32, w float64) {
	if s.stamp[rec] != s.cur {
		s.stamp[rec] = s.cur
		s.f[rec] = w
		s.hpos[rec] = -1
		s.touched = append(s.touched, rec)
		return
	}
	s.f[rec] += w
}

// Stamped reports whether rec has been touched since the last Reset.
func (s *Scratch) Stamped(rec int32) bool { return s.stamp[rec] == s.cur }

// Val returns rec's accumulated value (zero when untouched).
func (s *Scratch) Val(rec int32) float64 {
	if s.stamp[rec] != s.cur {
		return 0
	}
	return s.f[rec]
}

// Touched returns the stamped records in first-touch order. The slice is
// owned by the scratch and is invalidated by the next Reset.
func (s *Scratch) Touched() []int32 { return s.touched }

// TermBuf returns the scratch's reusable term buffer, empty. A nil scratch
// yields a nil buffer, so plan builders work without a scratch too.
func (s *Scratch) TermBuf() []Term {
	if s == nil {
		return nil
	}
	return s.terms[:0]
}

// RowFor returns rec's stride-sized row of the flat spill buffer, zeroing
// the row (and assigning the record a dense slot) on first touch. It backs
// the per-(record, query-token) maxsim tables of the GES filters, replacing
// their map[int][]float64 with one reusable flat array.
func (s *Scratch) RowFor(rec int32, stride int) []float64 {
	if s.stamp[rec] != s.cur {
		s.stamp[rec] = s.cur
		s.slot[rec] = int32(len(s.touched))
		s.touched = append(s.touched, rec)
		need := len(s.touched) * stride
		for cap(s.spill) < need {
			s.spill = append(s.spill[:cap(s.spill)], 0)
		}
		s.spill = s.spill[:cap(s.spill)]
		row := s.spill[need-stride : need]
		clear(row)
		return row
	}
	off := int(s.slot[rec]) * stride
	return s.spill[off : off+stride]
}
