package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func randomMatches(rng *rand.Rand, n int) []Match {
	ms := make([]Match, n)
	for i := range ms {
		// Coarse scores force plenty of ties so the TID tie-break is
		// exercised by the heap.
		ms[i] = Match{TID: i + 1, Score: float64(rng.Intn(10)) / 4}
	}
	rng.Shuffle(n, func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
	return ms
}

// TestFinishMatchesHeapEqualsSort checks the acceptance contract of the
// push-down: a k-bounded heap must return exactly sort-then-truncate.
func TestFinishMatchesHeapEqualsSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		base := randomMatches(rng, n)
		for _, k := range []int{0, 1, 2, 3, n / 2, n - 1, n, n + 5} {
			ref := append([]Match(nil), base...)
			SortMatches(ref)
			if k > 0 && k < len(ref) {
				ref = ref[:k]
			}
			in := append([]Match(nil), base...)
			got := FinishMatches(in, SelectOptions{Limit: k})
			if len(got) != len(ref) {
				t.Fatalf("n=%d k=%d: len %d, want %d", n, k, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("n=%d k=%d pos %d: %+v, want %+v", n, k, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestFinishMatchesKeepsContract(t *testing.T) {
	// Threshold filtering happens at materialization via Keeps; FinishMatches
	// only ranks what survived.
	opts := SelectOptions{Limit: 2, Threshold: 0.5, HasThreshold: true}
	var kept []Match
	for _, m := range []Match{{1, 0.9}, {2, 0.4}, {3, 0.8}, {4, 0.1}, {5, 0.7}} {
		if opts.Keeps(m.Score) {
			kept = append(kept, m)
		}
	}
	got := FinishMatches(kept, opts)
	if len(got) != 2 || got[0].TID != 1 || got[1].TID != 3 {
		t.Fatalf("threshold+limit: %+v", got)
	}
}

func TestApplySelectOptions(t *testing.T) {
	ranked := []Match{{1, 0.9}, {2, 0.8}, {3, 0.3}}
	got := ApplySelectOptions(ranked, SelectOptions{Limit: 2, Threshold: 0.5, HasThreshold: true})
	if len(got) != 2 || got[0].TID != 1 || got[1].TID != 2 {
		t.Fatalf("post-filter: %+v", got)
	}
	if got := ApplySelectOptions(ranked, SelectOptions{}); len(got) != 3 {
		t.Fatalf("zero options must keep everything: %+v", got)
	}
}

// plainPredicate exercises the shim path of SelectWithOptions (no
// ContextPredicate implementation).
type plainPredicate struct{ ms []Match }

func (p plainPredicate) Name() string                   { return "plain" }
func (p plainPredicate) Select(string) ([]Match, error) { return p.ms, nil }

func TestSelectWithOptionsShim(t *testing.T) {
	p := plainPredicate{ms: []Match{{1, 0.9}, {2, 0.5}}}
	got, err := SelectWithOptions(context.Background(), p, "q", SelectOptions{Limit: 1})
	if err != nil || len(got) != 1 || got[0].TID != 1 {
		t.Fatalf("shim: %v %+v", err, got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SelectWithOptions(ctx, p, "q", SelectOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: %v", err)
	}
}

func TestSelectWithOptionsRejectsNegativeLimit(t *testing.T) {
	p := plainPredicate{ms: []Match{{1, 0.9}}}
	if _, err := SelectWithOptions(context.Background(), p, "q", SelectOptions{Limit: -3}); err == nil {
		t.Fatal("negative limit must error, not behave as unlimited")
	}
	// Zero stays unlimited.
	got, err := SelectWithOptions(context.Background(), p, "q", SelectOptions{Limit: 0})
	if err != nil || len(got) != 1 {
		t.Fatalf("zero limit: %v %v", got, err)
	}
}

func TestConcurrentSafeDefault(t *testing.T) {
	if ConcurrentSafe(plainPredicate{}) {
		t.Fatal("predicates without the marker must report unsafe")
	}
}
