package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/minhash"
	"repro/internal/tokenize"
	"repro/internal/weights"
)

// This file implements the shared Corpus the paper's framework stores
// inside the DBMS: one set of precomputed token and weight tables that all
// thirteen predicates read, instead of one private copy per predicate.
// A Corpus tokenizes the base relation exactly once, materializes the
// layers the attached predicates need (q-gram and word token tables,
// collection statistics, shared weight/posting tables, min-hash
// signatures, edit-normalized strings), and supports epoch-versioned
// Insert/Delete/Upsert: mutations re-tokenize only the changed records,
// splice the cached per-record data, and publish a fresh immutable
// Snapshot under a new epoch. Predicates attach as lightweight views that
// re-read the snapshot when the epoch moves.

// CorpusLayers selects which precomputed layers a Corpus materializes.
// The facade's OpenCorpus builds AllLayers so that any predicate can
// attach; the one-shot construction path requests only what the single
// predicate reads, keeping New(name, records) as cheap as before.
type CorpusLayers uint16

const (
	// LayerGrams is the q-gram token layer: per-record gram multisets,
	// frequency maps, document lengths and collection statistics (plus the
	// IDF-pruned variant when Config.PruneRate > 0).
	LayerGrams CorpusLayers = 1 << iota
	// LayerPostings is the distinct-token inverted index shared by the
	// overlap predicates.
	LayerPostings
	// LayerRS is the Robertson–Sparck Jones weight table (Eq. 3.5).
	LayerRS
	// LayerTFIDF is the normalized tf-idf posting table (§3.2.1).
	LayerTFIDF
	// LayerLM is the language-model posting table: per-(token, record)
	// combined log terms and the per-record Σ log(1−pm) column (§3.3.1).
	LayerLM
	// LayerNorms is the edit-normalized string column (§4.4), together
	// with the raw-layer gram-frequency posting table the edit filter
	// scans.
	LayerNorms
	// LayerTokenIDs interns tokens as dense ranks: per-record rank-sorted
	// (rank, tf) pairs plus rank-indexed idf, so weight-table construction
	// does array arithmetic instead of string-map operations.
	LayerTokenIDs
	// LayerWords is the word token layer used by the combination
	// predicates, with per-position idf weights.
	LayerWords
	// LayerWordTFIDF is the per-record normalized tf-idf word weight maps
	// used by SoftTFIDF.
	LayerWordTFIDF
	// LayerWordGrams is the per-(record, distinct word) q-gram set layer
	// with its shared inverted index (GESJaccard's filter).
	LayerWordGrams
	// LayerSigs is the min-hash signature layer with its shared
	// (slot, value) index (GESapx's filter).
	LayerSigs
)

// AllLayers materializes every layer, so any registered predicate can
// attach to the corpus.
const AllLayers = LayerGrams | LayerPostings | LayerRS | LayerTFIDF | LayerLM |
	LayerNorms | LayerTokenIDs | LayerWords | LayerWordTFIDF | LayerWordGrams | LayerSigs

// withDeps closes a layer set under build dependencies (weight tables need
// their token layer; signatures need the word q-gram sets).
func (l CorpusLayers) withDeps() CorpusLayers {
	if l&(LayerTFIDF|LayerLM) != 0 {
		l |= LayerTokenIDs
	}
	if l&(LayerPostings|LayerRS|LayerTFIDF|LayerLM|LayerNorms|LayerTokenIDs) != 0 {
		l |= LayerGrams
	}
	if l&LayerSigs != 0 {
		l |= LayerWordGrams
	}
	if l&(LayerWordTFIDF|LayerWordGrams) != 0 {
		l |= LayerWords
	}
	return l
}

// Has reports whether every layer in want is present.
func (l CorpusLayers) Has(want CorpusLayers) bool { return l&want == want }

// WPost is one posting of a weighted inverted index: a record position and
// the record-side weight of the token in that record.
type WPost struct {
	Rec int
	W   float64
}

// WordRef locates one distinct word of one record in the word layer.
type WordRef struct {
	Rec  int
	Word int
}

// SigKey addresses one min-hash signature slot value, the join key of the
// declarative GESapx plan.
type SigKey struct {
	Slot  int
	Value uint64
}

// RankTF is one interned token occurrence of a record: the token's dense
// rank in the sorted token order and its frequency in the record.
type RankTF struct {
	Rank int32
	TF   int32
}

// RankTok pairs a query token with its corpus rank, the iteration unit of
// the rank-ordered query paths.
type RankTok struct {
	Tok  string
	Rank int32
}

// GramLayer is the q-gram token layer of a snapshot, together with the
// shared weight and posting tables derived from it. All fields are
// read-only once the snapshot is published.
type GramLayer struct {
	// Docs, Counts and DL are the per-record gram multisets, frequency
	// maps and multiset sizes.
	Docs   [][]string
	Counts []map[string]int
	DL     []int
	// Stats holds the collection statistics over the layer.
	Stats *weights.Corpus
	// rank maps each known token to its position in the sorted token
	// order, so per-query deterministic iteration sorts small ints
	// instead of strings; TokenByRank is the inverse.
	rank        map[string]int32
	TokenByRank []string
	// Pairs and IDFByRank are the interned token layer (LayerTokenIDs):
	// per-record rank-sorted (rank, tf) pairs and the idf of every rank.
	Pairs     [][]RankTF
	IDFByRank []float64
	// Postings is the distinct-token inverted index, indexed by token rank
	// (LayerPostings).
	Postings [][]int32
	// RSByRank is the Robertson–Sparck Jones weight table (LayerRS), and
	// RSLen the per-record summed RS weight over distinct tokens (the
	// weighted Jaccard union denominator), present when postings are too.
	// Each RS posting list has the uniform weight RSByRank[r], so the
	// weight table doubles as its own per-rank score bound; RSLenMin is
	// the denominator bound column of WeightedJaccard's admission test.
	RSByRank []float64
	RSLen    []float64
	RSLenMin float64
	// TFIDFPost is the normalized tf-idf posting table indexed by token
	// rank (LayerTFIDF); TFIDFMax and TFIDFMin are its per-rank weight
	// bound columns, the max-score pruning input of the hot path.
	TFIDFPost [][]WPost
	TFIDFMax  []float64
	TFIDFMin  []float64
	// LMPost and LMSumComp are the language-model posting table (indexed
	// by token rank) and the per-record Σ log(1−pm) column (LayerLM).
	// LMMax/LMMin bound the posting weights per rank and LMCompMax bounds
	// LMSumComp over records that can appear in a posting list.
	LMPost    [][]WPost
	LMMax     []float64
	LMMin     []float64
	LMSumComp []float64
	LMCompMax float64
	// TFPost is the gram-frequency posting table indexed by token rank
	// (LayerNorms, on the raw layer): the record-side multiset the edit
	// predicate's count filter scans.
	TFPost [][]WPost
}

// WordLayer is the word token layer of a snapshot. All fields are
// read-only once the snapshot is published.
type WordLayer struct {
	// Words, Counts are the per-record upper-cased word sequences and
	// frequency maps; Stats the collection statistics over them.
	Words  [][]string
	Counts []map[string]int
	Stats  *weights.Corpus
	rank   map[string]int32
	// IDFWeights carries the idf weight of every word position, the
	// weight vector of the GES transformation cost.
	IDFWeights [][]float64
	// TFIDF is the per-record normalized tf-idf word weight map
	// (LayerWordTFIDF).
	TFIDF []map[string]float64
	// Vocab, VocabGrams, GramSizes and GramIndex are the distinct-word
	// q-gram sets and their shared inverted index (LayerWordGrams).
	Vocab      [][]string
	VocabGrams [][][]string
	GramSizes  [][]int
	GramIndex  map[string][]WordRef
	// WordOff, WordRecOf and GramSizeOf flatten the distinct-word space
	// into dense ids (WordOff[rec]+word), so the GES filters accumulate
	// per-word match counts in a dense scratch instead of WordRef-keyed
	// maps. WordTotal is the id-space size.
	WordOff    []int32
	WordRecOf  []int32
	GramSizeOf []int32
	WordTotal  int
	// Sigs and SigIndex are the min-hash signatures and their shared
	// (slot, value) index (LayerSigs).
	Sigs     [][][]uint64
	SigIndex map[SigKey][]WordRef
}

// orderedKnown returns the tokens of a query-side map that are known to
// the rank table, ordered by the precomputed sorted token order. Score
// accumulation iterates tokens in this order so repeated Selects produce
// bit-identical results without re-sorting strings on every query.
func orderedKnown[V any](counts map[string]V, rank map[string]int32) []string {
	prs := orderedKnownRanks(counts, rank)
	out := make([]string, len(prs))
	for i, p := range prs {
		out[i] = p.Tok
	}
	return out
}

// orderedKnownRanks is orderedKnown keeping the ranks, for query paths
// that probe rank-indexed posting tables.
func orderedKnownRanks[V any](counts map[string]V, rank map[string]int32) []RankTok {
	out := make([]RankTok, 0, len(counts))
	for t := range counts {
		if r, ok := rank[t]; ok {
			out = append(out, RankTok{Tok: t, Rank: r})
		}
	}
	slices.SortFunc(out, func(a, b RankTok) int { return int(a.Rank) - int(b.Rank) })
	return out
}

// OrderedKnown returns the known tokens of a query frequency map in the
// corpus's sorted token order.
func (l *GramLayer) OrderedKnown(counts map[string]int) []string {
	return orderedKnown(counts, l.rank)
}

// OrderedKnownRanks returns the known tokens of a query frequency map with
// their ranks, in the corpus's sorted token order.
func (l *GramLayer) OrderedKnownRanks(counts map[string]int) []RankTok {
	return orderedKnownRanks(counts, l.rank)
}

// OrderedKnownRankWeights is OrderedKnownRanks for weight maps.
func (l *GramLayer) OrderedKnownRankWeights(w map[string]float64) []RankTok {
	return orderedKnownRanks(w, l.rank)
}

// Rank returns the dense rank of a token, or false for tokens unknown to
// the layer.
func (l *GramLayer) Rank(t string) (int32, bool) {
	r, ok := l.rank[t]
	return r, ok
}

// RankTable allocates a posting table indexed by token rank with one
// contiguous backing array: each rank's slice has zero length and exactly
// its document frequency as capacity, so filling the table appends without
// ever reallocating. Builders that skip some postings (zero-norm or
// zero-length records) simply leave capacity unused.
func (l *GramLayer) RankTable() [][]WPost {
	total := 0
	dfs := make([]int, len(l.TokenByRank))
	for r, t := range l.TokenByRank {
		d := l.Stats.DF(t)
		dfs[r] = d
		total += d
	}
	backing := make([]WPost, total)
	table := make([][]WPost, len(dfs))
	off := 0
	for r, d := range dfs {
		table[r] = backing[off : off : off+d]
		off += d
	}
	return table
}

// OrderedKnownWeights returns the known words of a query weight map in the
// corpus's sorted word order.
func (l *WordLayer) OrderedKnownWeights(w map[string]float64) []string {
	return orderedKnown(w, l.rank)
}

// Snapshot is one immutable version of a Corpus. Predicates attached to a
// corpus read exactly one snapshot; mutations publish a new snapshot under
// the next epoch and never touch an already-published one.
type Snapshot struct {
	Epoch   uint64
	Records []Record
	byTID   map[int]int
	// Grams is the effective q-gram scoring layer: the IDF-pruned layer
	// when Config.PruneRate > 0, the raw layer otherwise.
	Grams *GramLayer
	// RawGrams is always the unpruned layer — the edit predicate's q-gram
	// filter must see every gram to keep its no-false-negative guarantee.
	// It aliases Grams when pruning is off.
	RawGrams *GramLayer
	Words    *WordLayer
	// Norms is the edit-normalized string column (LayerNorms).
	Norms []string
	// TokDur and WeightDur are the tokenization and table-computation
	// times spent producing this snapshot (the §5.5.1 preprocessing
	// phases; a mutation's delta cost, not a cumulative total).
	TokDur    time.Duration
	WeightDur time.Duration
}

// Index returns the record position of a TID.
func (s *Snapshot) Index(tid int) (int, bool) {
	i, ok := s.byTID[tid]
	return i, ok
}

// Corpus is the shared, mutable token/weight store. It is safe for
// concurrent use: reads work on immutable snapshots, mutations are
// serialized and publish new snapshots atomically.
type Corpus struct {
	cfg    Config
	layers CorpusLayers
	fam    *minhash.Family

	mu     sync.Mutex // serializes mutations
	snap   atomic.Pointer[Snapshot]
	passes atomic.Int64 // full tokenization passes (test instrumentation)

	// hook, when set, observes every applied mutation under the mutation
	// lock — the write-ahead attachment point of the persistence layer.
	hook func(Mutation) error
	// obs are the post-publish mutation observers (the watch subsystem's
	// attachment point): called under the mutation lock after the snapshot
	// has published, so they see exactly the state the mutation produced and
	// cannot veto it.
	obs []func(Mutation)
	// seqSrc, when set, supplies the batch sequence number stamped on every
	// mutation. A sharded corpus installs one source across its shards so
	// that all sub-batches of one logical batch share a sequence number;
	// without a source the sequence equals the epoch (a plain corpus's WAL
	// is totally ordered already).
	seqSrc func() uint64
}

// PersistenceError marks a mutation aborted because the persistence layer
// could not log it (disk full, log sealed by a graceful drain). It is the
// server's cue to answer 5xx — the mutation itself was valid and is
// retryable — where plain validation errors stay client faults.
type PersistenceError struct{ Err error }

func (e *PersistenceError) Error() string {
	return fmt.Sprintf("approxsel: mutation rejected by persistence hook: %v", e.Err)
}

// Unwrap exposes the hook's underlying error.
func (e *PersistenceError) Unwrap() error { return e.Err }

// MutationKind names one of the three mutation operations.
type MutationKind uint8

const (
	// MutationInsert adds new records.
	MutationInsert MutationKind = iota + 1
	// MutationDelete removes records by TID.
	MutationDelete
	// MutationUpsert inserts records, replacing existing TIDs.
	MutationUpsert
)

// Mutation describes one validated mutation batch about to be published.
type Mutation struct {
	Kind MutationKind
	// Add holds the inserted or upserted records; Del the deleted TIDs.
	Add []Record
	Del []int
	// Epoch is the epoch the corpus moves to when this batch publishes.
	Epoch uint64
	// Seq is the global batch sequence number: all per-shard sub-batches of
	// one logical mutation on a sharded corpus share it, so a cold start can
	// re-associate and totally order them across shards. A plain corpus's
	// Seq equals its Epoch.
	Seq uint64
}

// SetMutationHook installs fn as the corpus's mutation observer. It is
// called under the mutation lock after a batch has validated and its new
// snapshot has been assembled, but before the snapshot publishes: an error
// from fn aborts the mutation with no visible state change. This is the
// write-ahead contract the WAL builds on — a mutation is acknowledged only
// after the hook has accepted it. Passing nil removes the hook.
func (c *Corpus) SetMutationHook(fn func(Mutation) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hook = fn
}

// AddMutationObserver registers fn as a post-publish mutation observer,
// fanning out alongside the store hook: it is called under the mutation
// lock after the new snapshot has published, so observers run serialized,
// in registration order, and read exactly the state the mutation produced.
// Unlike the write-ahead hook an observer cannot abort the mutation.
func (c *Corpus) AddMutationObserver(fn func(Mutation)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.obs = append(c.obs, fn)
}

// SetSeqSource installs the supplier of batch sequence numbers stamped on
// every mutation (and written to the WAL). A sharded corpus sets one
// source across its shards; a corpus without a source stamps Seq = Epoch.
func (c *Corpus) SetSeqSource(fn func() uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seqSrc = fn
}

// Freeze runs fn on the current snapshot while holding the mutation lock,
// so no mutation can land (or append to a WAL) while fn runs. The
// persistence layer checkpoints inside Freeze, making "write segment at
// epoch E, truncate the log" atomic against concurrent writers. Selections
// are unaffected — they read the published snapshot without the lock.
func (c *Corpus) Freeze(fn func(*Snapshot) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fn(c.snap.Load())
}

// CorpusBuilderFunc constructs a predicate attached to a shared corpus —
// the corpus-aware counterpart of BuilderFunc. The facade's registry
// resolves native built-ins to CorpusBuilderFuncs and adapts legacy
// BuilderFuncs (the declarative realization and Register-ed predicates)
// automatically, so every predicate can attach to a corpus.
type CorpusBuilderFunc func(c *Corpus, cfg Config) (Predicate, error)

// NewCorpus tokenizes the base relation once and materializes the
// requested layers (closed under dependencies). The facade's OpenCorpus
// passes AllLayers; the one-shot predicate constructors request only what
// they read.
func NewCorpus(records []Record, cfg Config, layers CorpusLayers) (*Corpus, error) {
	if err := validateCorpus(records, cfg); err != nil {
		return nil, err
	}
	c := &Corpus{cfg: cfg, layers: layers.withDeps()}
	if c.layers.Has(LayerSigs) {
		c.fam = minhash.NewFamily(cfg.MinHashSize(), cfg.MinHashSeed)
	}
	recs := append([]Record(nil), records...)
	t0 := time.Now()
	raw := c.tokenizeAll(recs)
	tokDur := time.Since(t0)
	c.passes.Add(1)
	c.snap.Store(c.assemble(recs, raw, 0, tokDur))
	return c, nil
}

// validateCorpus checks the invariants shared by all predicates.
func validateCorpus(records []Record, cfg Config) error {
	if cfg.Q < 1 {
		return fmt.Errorf("approxsel: q-gram size must be ≥ 1, got %d", cfg.Q)
	}
	if cfg.WordQ < 1 {
		return fmt.Errorf("approxsel: word q-gram size must be ≥ 1, got %d", cfg.WordQ)
	}
	if cfg.PruneRate < 0 || cfg.PruneRate >= 1 {
		return fmt.Errorf("approxsel: prune rate must be in [0, 1), got %v", cfg.PruneRate)
	}
	seen := make(map[int]bool, len(records))
	for _, r := range records {
		if seen[r.TID] {
			return fmt.Errorf("approxsel: duplicate TID %d in base relation", r.TID)
		}
		seen[r.TID] = true
	}
	return nil
}

// MinHashSize returns the effective min-hash signature size: MinHashK, or
// the paper's default of 5 when unset.
func (c Config) MinHashSize() int {
	if c.MinHashK > 0 {
		return c.MinHashK
	}
	return DefaultConfig().MinHashK
}

// Snapshot returns the current immutable snapshot.
func (c *Corpus) Snapshot() *Snapshot { return c.snap.Load() }

// Epoch returns the current mutation epoch; it increases with every
// applied Insert/Delete/Upsert.
func (c *Corpus) Epoch() uint64 { return c.snap.Load().Epoch }

// Config returns the corpus's tokenization configuration.
func (c *Corpus) Config() Config { return c.cfg }

// Layers returns the materialized layer set.
func (c *Corpus) Layers() CorpusLayers { return c.layers }

// Len returns the current number of records.
func (c *Corpus) Len() int { return len(c.snap.Load().Records) }

// Records returns a copy of the current base relation in storage order.
func (c *Corpus) Records() []Record {
	return append([]Record(nil), c.snap.Load().Records...)
}

// TokenizePasses returns how many times the full base relation has been
// tokenized — exactly once per corpus, however many predicates attach
// (mutations re-tokenize changed records only and do not count).
func (c *Corpus) TokenizePasses() int64 { return c.passes.Load() }

// CompatibleConfig checks that a predicate attaching with cfg agrees with
// the corpus on every tokenization-level parameter. Scoring parameters
// (BM25, HMM, thresholds, edit options) are per-attach and may differ.
func (c *Corpus) CompatibleConfig(cfg Config) error {
	o := c.cfg
	switch {
	case cfg.Q != o.Q:
		return fmt.Errorf("approxsel: predicate q=%d does not match corpus q=%d", cfg.Q, o.Q)
	case cfg.WordQ != o.WordQ:
		return fmt.Errorf("approxsel: predicate word q=%d does not match corpus word q=%d", cfg.WordQ, o.WordQ)
	case cfg.PruneRate != o.PruneRate:
		return fmt.Errorf("approxsel: predicate prune rate %v does not match corpus prune rate %v", cfg.PruneRate, o.PruneRate)
	case cfg.MinHashSize() != o.MinHashSize():
		return fmt.Errorf("approxsel: predicate min-hash size %d does not match corpus size %d", cfg.MinHashSize(), o.MinHashSize())
	case cfg.MinHashSeed != o.MinHashSeed:
		return fmt.Errorf("approxsel: predicate min-hash seed %d does not match corpus seed %d", cfg.MinHashSeed, o.MinHashSeed)
	}
	return nil
}

// ---- mutations ----

// Insert adds records to the corpus; inserting an existing TID is an
// error. Only the new records are tokenized.
func (c *Corpus) Insert(records ...Record) error {
	return c.mutate(records, nil, false)
}

// Upsert inserts records, replacing any existing record with the same
// TID. Only the touched records are tokenized.
func (c *Corpus) Upsert(records ...Record) error {
	return c.mutate(records, nil, true)
}

// Delete removes records by TID; deleting an unknown TID is an error.
func (c *Corpus) Delete(tids ...int) error {
	return c.mutate(nil, tids, false)
}

func (c *Corpus) mutate(add []Record, del []int, upsert bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(add) == 0 && len(del) == 0 {
		return nil
	}
	old := c.snap.Load()

	drop, replace, appended, err := splitBatch(old.byTID, add, del, upsert)
	if err != nil {
		return err
	}

	t0 := time.Now()
	n := len(old.Records) - len(drop) + len(appended)
	recs := make([]Record, 0, n)
	raw := c.newRawData(n)
	for i, r := range old.Records {
		if drop[r.TID] {
			continue
		}
		if nr, ok := replace[r.TID]; ok {
			recs = append(recs, nr)
			raw.appendTokenized(c, nr.Text)
			continue
		}
		recs = append(recs, r)
		raw.appendFrom(old, i)
	}
	for _, r := range appended {
		recs = append(recs, r)
		raw.appendTokenized(c, r.Text)
	}
	tokDur := time.Since(t0)
	next := c.assemble(recs, raw, old.Epoch+1, tokDur)
	kind := MutationInsert
	switch {
	case len(del) > 0:
		kind = MutationDelete
	case upsert:
		kind = MutationUpsert
	}
	seq := next.Epoch
	if c.seqSrc != nil {
		seq = c.seqSrc()
	}
	m := Mutation{Kind: kind, Add: add, Del: del, Epoch: next.Epoch, Seq: seq}
	if c.hook != nil {
		if err := c.hook(m); err != nil {
			return &PersistenceError{Err: err}
		}
	}
	c.snap.Store(next)
	for _, fn := range c.obs {
		fn(m)
	}
	return nil
}

// ---- tokenization (the single expensive pass) ----

// rawData carries the per-record tokenization products a snapshot is
// assembled from. Mutations splice these arrays, re-tokenizing only the
// changed records.
// splitBatch validates one mutation batch against the current TID index
// and splits it into the three splice groups: TIDs to drop, records to
// replace in place, and records to append.
func splitBatch(byTID map[int]int, add []Record, del []int, upsert bool) (map[int]bool, map[int]Record, []Record, error) {
	drop := make(map[int]bool, len(del))
	for _, tid := range del {
		if _, ok := byTID[tid]; !ok {
			return nil, nil, nil, fmt.Errorf("approxsel: delete of unknown TID %d", tid)
		}
		if drop[tid] {
			return nil, nil, nil, fmt.Errorf("approxsel: duplicate TID %d in delete", tid)
		}
		drop[tid] = true
	}
	replace := make(map[int]Record)
	var appended []Record
	seen := make(map[int]bool, len(add))
	for _, r := range add {
		if seen[r.TID] {
			return nil, nil, nil, fmt.Errorf("approxsel: duplicate TID %d in insert", r.TID)
		}
		seen[r.TID] = true
		if drop[r.TID] {
			return nil, nil, nil, fmt.Errorf("approxsel: TID %d both inserted and deleted", r.TID)
		}
		if _, ok := byTID[r.TID]; ok {
			if !upsert {
				return nil, nil, nil, fmt.Errorf("approxsel: insert of existing TID %d (use Upsert to replace)", r.TID)
			}
			replace[r.TID] = r
		} else {
			appended = append(appended, r)
		}
	}
	return drop, replace, appended, nil
}

type rawData struct {
	layers  CorpusLayers
	docs    [][]string
	counts  []map[string]int
	words   [][]string
	wcounts []map[string]int
	vocab   [][]string
	vgrams  [][][]string
	sigs    [][][]uint64
	norms   []string
}

func (c *Corpus) newRawData(n int) *rawData {
	r := &rawData{layers: c.layers}
	if c.layers.Has(LayerGrams) {
		r.docs = make([][]string, 0, n)
		r.counts = make([]map[string]int, 0, n)
	}
	if c.layers.Has(LayerWords) {
		r.words = make([][]string, 0, n)
		r.wcounts = make([]map[string]int, 0, n)
	}
	if c.layers.Has(LayerWordGrams) {
		r.vocab = make([][]string, 0, n)
		r.vgrams = make([][][]string, 0, n)
	}
	if c.layers.Has(LayerSigs) {
		r.sigs = make([][][]uint64, 0, n)
	}
	if c.layers.Has(LayerNorms) {
		r.norms = make([]string, 0, n)
	}
	return r
}

// appendTokenized tokenizes one record text into every materialized layer.
func (r *rawData) appendTokenized(c *Corpus, text string) {
	if r.layers.Has(LayerGrams) {
		doc := tokenize.QGrams(text, c.cfg.Q)
		r.docs = append(r.docs, doc)
		r.counts = append(r.counts, tokenize.Counts(doc))
	}
	if r.layers.Has(LayerWords) {
		ws := tokenize.Words(strings.ToUpper(text))
		r.words = append(r.words, ws)
		r.wcounts = append(r.wcounts, tokenize.Counts(ws))
		if r.layers.Has(LayerWordGrams) {
			vocab := tokenize.Distinct(ws)
			vgrams := make([][]string, len(vocab))
			for j, w := range vocab {
				vgrams[j] = tokenize.Distinct(tokenize.WordQGrams(w, c.cfg.WordQ))
			}
			r.vocab = append(r.vocab, vocab)
			r.vgrams = append(r.vgrams, vgrams)
			if r.layers.Has(LayerSigs) {
				sigs := make([][]uint64, len(vocab))
				for j := range vocab {
					sigs[j] = c.fam.Signature(vgrams[j])
				}
				r.sigs = append(r.sigs, sigs)
			}
		}
	}
	if r.layers.Has(LayerNorms) {
		r.norms = append(r.norms, tokenize.EditNormalize(text, c.cfg.Q))
	}
}

// appendFrom reuses the cached tokenization of one retained record.
func (r *rawData) appendFrom(s *Snapshot, i int) {
	if r.layers.Has(LayerGrams) {
		r.docs = append(r.docs, s.RawGrams.Docs[i])
		r.counts = append(r.counts, s.RawGrams.Counts[i])
	}
	if r.layers.Has(LayerWords) {
		r.words = append(r.words, s.Words.Words[i])
		r.wcounts = append(r.wcounts, s.Words.Counts[i])
		if r.layers.Has(LayerWordGrams) {
			r.vocab = append(r.vocab, s.Words.Vocab[i])
			r.vgrams = append(r.vgrams, s.Words.VocabGrams[i])
			if r.layers.Has(LayerSigs) {
				r.sigs = append(r.sigs, s.Words.Sigs[i])
			}
		}
	}
	if r.layers.Has(LayerNorms) {
		r.norms = append(r.norms, s.Norms[i])
	}
}

func (c *Corpus) tokenizeAll(records []Record) *rawData {
	raw := c.newRawData(len(records))
	for _, r := range records {
		raw.appendTokenized(c, r.Text)
	}
	return raw
}

// ---- assembly (statistics and shared tables, no string tokenization) ----
//
// Mutations re-run this phase over the whole relation: collection
// statistics (df/idf/avgdl) change globally on any insert or delete, and
// the differential contract — a mutated corpus is bit-identical to a fresh
// build — rules out approximate maintenance. Only string tokenization (the
// dominant preprocessing cost) is incremental; assembly is O(total cached
// tokens) of map/array work per mutation batch. Callers with bursts of
// updates should batch them into one Insert/Delete/Upsert call.

func (c *Corpus) assemble(records []Record, raw *rawData, epoch uint64, tokDur time.Duration) *Snapshot {
	start := time.Now()
	s := &Snapshot{Epoch: epoch, Records: records, byTID: make(map[int]int, len(records))}
	for i, r := range records {
		s.byTID[r.TID] = i
	}
	if c.layers.Has(LayerGrams) {
		rawLayer := buildGramLayer(raw.docs, raw.counts)
		s.RawGrams = rawLayer
		eff := rawLayer
		if c.cfg.PruneRate > 0 {
			pdocs := pruneDocs(raw.docs, rawLayer.Stats, c.cfg.PruneRate)
			pcounts := make([]map[string]int, len(pdocs))
			for i, doc := range pdocs {
				pcounts[i] = tokenize.Counts(doc)
			}
			eff = buildGramLayer(pdocs, pcounts)
		}
		s.Grams = eff
		c.buildGramTables(eff)
		if c.layers.Has(LayerNorms) {
			buildTFPost(rawLayer)
		}
	}
	if c.layers.Has(LayerNorms) {
		s.Norms = raw.norms
	}
	if c.layers.Has(LayerWords) {
		s.Words = c.buildWordLayer(raw)
	}
	s.TokDur, s.WeightDur = tokDur, time.Since(start)
	return s
}

func buildGramLayer(docs [][]string, counts []map[string]int) *GramLayer {
	dls := make([]int, len(docs))
	for i, doc := range docs {
		dls[i] = len(doc)
	}
	stats := weights.BuildFromCounts(counts, dls)
	sorted := stats.SortedTokens()
	return &GramLayer{
		Docs:        docs,
		Counts:      counts,
		DL:          dls,
		Stats:       stats,
		rank:        rankOf(sorted),
		TokenByRank: sorted,
	}
}

func rankOf(sorted []string) map[string]int32 {
	rank := make(map[string]int32, len(sorted))
	for i, t := range sorted {
		rank[t] = int32(i)
	}
	return rank
}

// pruneDocs drops tokens whose idf falls below the §5.6 pruning threshold
// min(idf) + rate·(max(idf) − min(idf)).
func pruneDocs(docs [][]string, stats *weights.Corpus, rate float64) [][]string {
	tokens := stats.SortedTokens()
	if len(tokens) == 0 {
		return docs
	}
	minIDF, maxIDF := math.Inf(1), math.Inf(-1)
	idfOf := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		idf := stats.IDF(t)
		idfOf[t] = idf
		if idf < minIDF {
			minIDF = idf
		}
		if idf > maxIDF {
			maxIDF = idf
		}
	}
	threshold := minIDF + rate*(maxIDF-minIDF)
	out := make([][]string, len(docs))
	for i, doc := range docs {
		kept := make([]string, 0, len(doc))
		for _, t := range doc {
			if idfOf[t] >= threshold {
				kept = append(kept, t)
			}
		}
		out[i] = kept
	}
	return out
}

// buildGramTables derives the shared weight/posting tables of the
// effective gram layer. The interned-token layer (rank-sorted pairs plus
// rank-indexed idf) lets the table builders do array arithmetic instead of
// string-map operations, and every floating-point accumulation iterates in
// sorted-token order, so a mutated corpus reproduces a fresh build
// bit-for-bit.
func (c *Corpus) buildGramTables(l *GramLayer) {
	if c.layers.Has(LayerTokenIDs) {
		l.IDFByRank = make([]float64, len(l.TokenByRank))
		for r, t := range l.TokenByRank {
			l.IDFByRank[r] = l.Stats.IDF(t)
		}
		l.Pairs = make([][]RankTF, len(l.Counts))
		for i, counts := range l.Counts {
			pairs := make([]RankTF, 0, len(counts))
			for t, tf := range counts {
				pairs = append(pairs, RankTF{Rank: l.rank[t], TF: int32(tf)})
			}
			sort.Slice(pairs, func(a, b int) bool { return pairs[a].Rank < pairs[b].Rank })
			l.Pairs[i] = pairs
		}
	}
	if c.layers.Has(LayerPostings) {
		// One contiguous backing array carved by document frequency, like
		// RankTable.
		total := 0
		dfs := make([]int, len(l.TokenByRank))
		for r, t := range l.TokenByRank {
			d := l.Stats.DF(t)
			dfs[r] = d
			total += d
		}
		backing := make([]int32, total)
		l.Postings = make([][]int32, len(dfs))
		off := 0
		for r, d := range dfs {
			l.Postings[r] = backing[off : off : off+d]
			off += d
		}
		for i, counts := range l.Counts {
			for t := range counts {
				r := l.rank[t]
				l.Postings[r] = append(l.Postings[r], int32(i))
			}
		}
	}
	if c.layers.Has(LayerRS) {
		l.RSByRank = make([]float64, len(l.TokenByRank))
		for r, t := range l.TokenByRank {
			l.RSByRank[r] = l.Stats.RS(t)
		}
		if c.layers.Has(LayerPostings) {
			// Per record, contributions arrive in ascending token order —
			// the same order an ordered per-record sum would use.
			l.RSLen = make([]float64, len(l.Counts))
			for r, w := range l.RSByRank {
				for _, i := range l.Postings[r] {
					l.RSLen[i] += w
				}
			}
			l.RSLenMin = 0
			for i, v := range l.RSLen {
				if i == 0 || v < l.RSLenMin {
					l.RSLenMin = v
				}
			}
		}
	}
	if c.layers.Has(LayerTFIDF) {
		l.TFIDFPost = l.RankTable()
		for i, pairs := range l.Pairs {
			// Mirrors weights.Corpus.TFIDF term for term: the norm sums
			// (tf·idf)² in sorted-token order.
			norm := 0.0
			for _, p := range pairs {
				w := float64(p.TF) * l.IDFByRank[p.Rank]
				norm += w * w
			}
			if norm == 0 {
				continue
			}
			norm = math.Sqrt(norm)
			for _, p := range pairs {
				w := float64(p.TF) * l.IDFByRank[p.Rank] / norm
				l.TFIDFPost[p.Rank] = append(l.TFIDFPost[p.Rank], WPost{Rec: i, W: w})
			}
		}
		l.TFIDFMax, l.TFIDFMin = PostingBounds(l.TFIDFPost)
	}
	if c.layers.Has(LayerLM) {
		// Mirrors weights.Corpus.LM term for term, with pavg and log(cf/cs)
		// precomputed per rank.
		pavg := make([]float64, len(l.TokenByRank))
		cfcsLog := make([]float64, len(l.TokenByRank))
		for r, t := range l.TokenByRank {
			pavg[r] = l.Stats.Pavg(t)
			cfcsLog[r] = math.Log(l.Stats.CFCS(t))
		}
		l.LMPost = l.RankTable()
		l.LMSumComp = make([]float64, len(l.Counts))
		for i, pairs := range l.Pairs {
			dl := float64(l.DL[i])
			if dl == 0 {
				continue
			}
			sum := 0.0
			for _, p := range pairs {
				tf := float64(p.TF)
				pml := tf / dl
				pa := pavg[p.Rank]
				fbar := pa * dl
				risk := (1.0 / (1.0 + fbar)) * powInt(fbar/(1.0+fbar), int(p.TF))
				pm := math.Pow(pml, 1.0-risk) * math.Pow(pa, risk)
				if pm > 1-1e-12 {
					pm = 1 - 1e-12
				}
				sum += math.Log(1.0 - pm)
				term := math.Log(pm) - math.Log(1.0-pm) - cfcsLog[p.Rank]
				l.LMPost[p.Rank] = append(l.LMPost[p.Rank], WPost{Rec: i, W: term})
			}
			l.LMSumComp[i] = sum
		}
		l.LMMax, l.LMMin = PostingBounds(l.LMPost)
		// The admission bound only has to cover records reachable through
		// a posting list, i.e. records with tokens; zero-length records
		// keep the neutral LMSumComp of 0, which would badly loosen the
		// bound (their Σ log(1−pm) would be far below 0 if they had any).
		first := true
		for i := range l.Counts {
			if l.DL[i] == 0 {
				continue
			}
			if first || l.LMSumComp[i] > l.LMCompMax {
				l.LMCompMax = l.LMSumComp[i]
			}
			first = false
		}
	}
}

// PostingBounds computes per-rank weight bound columns of a rank-indexed
// posting table: maxs[r] and mins[r] bound the record-side weights of rank
// r's list (both zero for empty lists). These are the score upper bounds
// max-score pruning consumes; they are rebuilt with the tables on every
// mutation epoch, so they can never drift out of sync with the postings.
func PostingBounds(table [][]WPost) (maxs, mins []float64) {
	maxs = make([]float64, len(table))
	mins = make([]float64, len(table))
	for r, posts := range table {
		if len(posts) == 0 {
			continue
		}
		mx, mn := posts[0].W, posts[0].W
		for _, p := range posts[1:] {
			if p.W > mx {
				mx = p.W
			}
			if p.W < mn {
				mn = p.W
			}
		}
		maxs[r], mins[r] = mx, mn
	}
	return maxs, mins
}

// powInt is x^n for small positive integer exponents (term frequencies):
// repeated multiplication is an order of magnitude cheaper than math.Pow
// and exact for the n=1 common case. Large exponents fall back to math.Pow.
func powInt(x float64, n int) float64 {
	switch {
	case n == 1:
		return x
	case n == 2:
		return x * x
	case n == 3:
		return x * x * x
	case n <= 8:
		out := x
		for i := 1; i < n; i++ {
			out *= x
		}
		return out
	default:
		return math.Pow(x, float64(n))
	}
}

// buildTFPost derives the raw layer's gram-frequency posting table, the
// record side of the edit predicate's count filter.
func buildTFPost(l *GramLayer) {
	l.TFPost = l.RankTable()
	for i, counts := range l.Counts {
		for t, tf := range counts {
			r := l.rank[t]
			l.TFPost[r] = append(l.TFPost[r], WPost{Rec: i, W: float64(tf)})
		}
	}
}

func (c *Corpus) buildWordLayer(raw *rawData) *WordLayer {
	wdls := make([]int, len(raw.words))
	for i, ws := range raw.words {
		wdls[i] = len(ws)
	}
	stats := weights.BuildFromCounts(raw.wcounts, wdls)
	l := &WordLayer{
		Words:  raw.words,
		Counts: raw.wcounts,
		Stats:  stats,
		rank:   rankOf(stats.SortedTokens()),
	}
	l.IDFWeights = make([][]float64, len(raw.words))
	for i, ws := range raw.words {
		w := make([]float64, len(ws))
		for j, t := range ws {
			w[j] = stats.IDF(t)
		}
		l.IDFWeights[i] = w
	}
	if c.layers.Has(LayerWordTFIDF) {
		l.TFIDF = make([]map[string]float64, len(raw.wcounts))
		for i, counts := range raw.wcounts {
			l.TFIDF[i] = stats.TFIDF(counts)
		}
	}
	if c.layers.Has(LayerWordGrams) {
		l.Vocab = raw.vocab
		l.VocabGrams = raw.vgrams
		l.GramSizes = make([][]int, len(raw.vgrams))
		// Two passes: count references per gram, carve one backing array,
		// fill. Incremental appends on a large map of small slices would
		// churn the allocator instead.
		counts := make(map[string]int)
		for i, vgrams := range raw.vgrams {
			sizes := make([]int, len(vgrams))
			for j, grams := range vgrams {
				sizes[j] = len(grams)
				for _, g := range grams {
					counts[g]++
				}
			}
			l.GramSizes[i] = sizes
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		backing := make([]WordRef, total)
		l.GramIndex = make(map[string][]WordRef, len(counts))
		off := 0
		for g, n := range counts {
			l.GramIndex[g] = backing[off : off : off+n]
			off += n
		}
		for i, vgrams := range raw.vgrams {
			for j, grams := range vgrams {
				for _, g := range grams {
					l.GramIndex[g] = append(l.GramIndex[g], WordRef{Rec: i, Word: j})
				}
			}
		}
		// Flatten the distinct-word space into dense ids so the GES
		// filters can count gram/signature matches in a dense scratch.
		l.WordOff = make([]int32, len(raw.vocab))
		off = 0
		for i, vocab := range raw.vocab {
			l.WordOff[i] = int32(off)
			off += len(vocab)
		}
		l.WordTotal = off
		l.WordRecOf = make([]int32, off)
		l.GramSizeOf = make([]int32, off)
		for i, sizes := range l.GramSizes {
			base := l.WordOff[i]
			for j, sz := range sizes {
				l.WordRecOf[base+int32(j)] = int32(i)
				l.GramSizeOf[base+int32(j)] = int32(sz)
			}
		}
	}
	if c.layers.Has(LayerSigs) {
		l.Sigs = raw.sigs
		counts := make(map[SigKey]int)
		for _, sigs := range raw.sigs {
			for _, sig := range sigs {
				for slot, v := range sig {
					counts[SigKey{Slot: slot, Value: v}]++
				}
			}
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		backing := make([]WordRef, total)
		l.SigIndex = make(map[SigKey][]WordRef, len(counts))
		off := 0
		for k, n := range counts {
			l.SigIndex[k] = backing[off : off : off+n]
			off += n
		}
		for i, sigs := range raw.sigs {
			for j, sig := range sigs {
				for slot, v := range sig {
					k := SigKey{Slot: slot, Value: v}
					l.SigIndex[k] = append(l.SigIndex[k], WordRef{Rec: i, Word: j})
				}
			}
		}
	}
	return l
}
