package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// mergeReference is the trivially-correct merge: concatenate, sort,
// truncate.
func mergeReference(lists [][]Match, limit int) []Match {
	var all []Match
	for _, l := range lists {
		all = append(all, l...)
	}
	SortMatches(all)
	if limit > 0 && limit < len(all) {
		all = all[:limit]
	}
	if all == nil {
		all = []Match{}
	}
	return all
}

func TestMergeRankedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nLists := rng.Intn(6)
		lists := make([][]Match, nLists)
		tid := 0
		for i := range lists {
			n := rng.Intn(8)
			l := make([]Match, n)
			for j := range l {
				// Coarse scores force cross-list ties broken by TID.
				l[j] = Match{TID: tid, Score: float64(rng.Intn(4))}
				tid++
			}
			SortMatches(l)
			lists[i] = l
		}
		for _, limit := range []int{0, 1, 3, 100} {
			got := MergeRanked(lists, limit)
			want := mergeReference(lists, limit)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d limit %d:\n got %v\nwant %v", trial, limit, got, want)
			}
		}
	}
}

func TestMergeRankedEdges(t *testing.T) {
	if got := MergeRanked(nil, 5); len(got) != 0 {
		t.Fatalf("empty merge: %v", got)
	}
	one := [][]Match{{{TID: 1, Score: 2}, {TID: 2, Score: 1}}}
	if got := MergeRanked(one, 1); len(got) != 1 || got[0].TID != 1 {
		t.Fatalf("single-list truncation: %v", got)
	}
	if got := MergeRanked([][]Match{nil, {}, one[0]}, 0); len(got) != 2 {
		t.Fatalf("nil/empty lists must be skipped: %v", got)
	}
}
