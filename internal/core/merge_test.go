package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// mergeReference is the trivially-correct merge: concatenate, sort,
// truncate.
func mergeReference(lists [][]Match, limit int) []Match {
	var all []Match
	for _, l := range lists {
		all = append(all, l...)
	}
	SortMatches(all)
	if limit > 0 && limit < len(all) {
		all = all[:limit]
	}
	if all == nil {
		all = []Match{}
	}
	return all
}

func TestMergeRankedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nLists := rng.Intn(6)
		lists := make([][]Match, nLists)
		tid := 0
		for i := range lists {
			n := rng.Intn(8)
			l := make([]Match, n)
			for j := range l {
				// Coarse scores force cross-list ties broken by TID.
				l[j] = Match{TID: tid, Score: float64(rng.Intn(4))}
				tid++
			}
			SortMatches(l)
			lists[i] = l
		}
		for _, limit := range []int{0, 1, 3, 100} {
			got := MergeRanked(lists, limit)
			want := mergeReference(lists, limit)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d limit %d:\n got %v\nwant %v", trial, limit, got, want)
			}
		}
	}
}

// TestMergeRankedEmptyShards covers the no-results fan-out: every shard
// returned nothing (nil or empty), in any mixture, at any limit.
func TestMergeRankedEmptyShards(t *testing.T) {
	for _, lists := range [][][]Match{
		{},
		{nil},
		{{}, {}, {}},
		{nil, {}, nil, {}},
	} {
		for _, limit := range []int{0, 1, 10} {
			got := MergeRanked(lists, limit)
			if got == nil || len(got) != 0 {
				t.Fatalf("empty shards (%d lists, limit %d) must merge to an empty non-nil ranking: %#v",
					len(lists), limit, got)
			}
		}
	}
}

// TestMergeRankedAllTiesAtLimit pins the tie contract at the truncation
// boundary: when every candidate ties on score, the merge must emit
// ascending TIDs and cut exactly like the global SortMatches order —
// regardless of which shard holds which TID.
func TestMergeRankedAllTiesAtLimit(t *testing.T) {
	// TIDs dealt round-robin across three shards, all scores equal.
	lists := make([][]Match, 3)
	for tid := 1; tid <= 9; tid++ {
		i := (tid - 1) % 3
		lists[i] = append(lists[i], Match{TID: tid, Score: 0.5})
	}
	for i := range lists {
		SortMatches(lists[i])
	}
	for limit := 0; limit <= 10; limit++ {
		got := MergeRanked(lists, limit)
		want := mergeReference(lists, limit)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("all-ties limit %d:\n got %v\nwant %v", limit, got, want)
		}
		for j := 1; j < len(got); j++ {
			if got[j-1].TID >= got[j].TID {
				t.Fatalf("all-ties limit %d: TIDs not ascending: %v", limit, got)
			}
		}
	}
}

// TestMergeRankedSingleShardPassthrough pins the one-shard identity: the
// merged ranking equals the shard's own ranking (truncated), element for
// element — the shards=1 bit-compatibility path of ShardedCorpus.
func TestMergeRankedSingleShardPassthrough(t *testing.T) {
	shard := []Match{{TID: 3, Score: 9}, {TID: 1, Score: 4}, {TID: 7, Score: 4}, {TID: 2, Score: 0.25}}
	for _, padded := range [][][]Match{
		{shard},
		{nil, shard, {}}, // empty siblings must not disturb the passthrough
	} {
		for _, limit := range []int{0, 2, 4, 99} {
			got := MergeRanked(padded, limit)
			want := shard
			if limit > 0 && limit < len(shard) {
				want = shard[:limit]
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("single-shard limit %d:\n got %v\nwant %v", limit, got, want)
			}
		}
	}
	// The passthrough must copy, not alias: mutating the merge result
	// cannot corrupt the shard's (cached) ranking.
	got := MergeRanked([][]Match{shard}, 0)
	got[0].TID = -1
	if shard[0].TID != 3 {
		t.Fatal("merge result aliases the shard ranking")
	}
}

func TestMergeRankedEdges(t *testing.T) {
	if got := MergeRanked(nil, 5); len(got) != 0 {
		t.Fatalf("empty merge: %v", got)
	}
	one := [][]Match{{{TID: 1, Score: 2}, {TID: 2, Score: 1}}}
	if got := MergeRanked(one, 1); len(got) != 1 || got[0].TID != 1 {
		t.Fatalf("single-list truncation: %v", got)
	}
	if got := MergeRanked([][]Match{nil, {}, one[0]}, 0); len(got) != 2 {
		t.Fatalf("nil/empty lists must be skipped: %v", got)
	}
}
