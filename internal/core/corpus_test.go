package core

import (
	"testing"
)

func corpusRecords() []Record {
	texts := []string{
		"AT&T Incorporated", "AT&T Inc.", "IBM Incorporated",
		"Morgan Stanley Group Inc.", "Stanley Morgan Group Inc.",
		"Beijing Hotel", "Hotel Beijing", "Beijing Labs", "Redwood Energy",
	}
	out := make([]Record, len(texts))
	for i, t := range texts {
		out[i] = Record{TID: i + 1, Text: t}
	}
	return out
}

func TestCorpusLayerDeps(t *testing.T) {
	if got := LayerRS.withDeps(); !got.Has(LayerGrams) {
		t.Fatalf("RS must pull in the gram layer: %b", got)
	}
	if got := LayerSigs.withDeps(); !got.Has(LayerWordGrams | LayerWords) {
		t.Fatalf("sigs must pull in word grams and words: %b", got)
	}
	if !AllLayers.Has(LayerLM | LayerNorms | LayerWordTFIDF) {
		t.Fatal("AllLayers must include every layer")
	}
}

func TestNewCorpusBuildsRequestedLayers(t *testing.T) {
	c, err := NewCorpus(corpusRecords(), DefaultConfig(), AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.Grams == nil || s.Grams.Postings == nil || s.Grams.RSByRank == nil ||
		s.Grams.TFIDFPost == nil || s.Grams.LMPost == nil {
		t.Fatal("gram layer tables missing")
	}
	if s.Words == nil || s.Words.TFIDF == nil || s.Words.GramIndex == nil || s.Words.SigIndex == nil {
		t.Fatal("word layer tables missing")
	}
	if len(s.Norms) != len(s.Records) {
		t.Fatalf("norms: %d", len(s.Norms))
	}
	if s.Grams != s.RawGrams {
		t.Fatal("without pruning the effective layer must alias the raw layer")
	}
	if c.TokenizePasses() != 1 {
		t.Fatalf("open must tokenize exactly once, got %d", c.TokenizePasses())
	}

	// A minimal corpus must not pay for layers nobody asked for.
	lean, err := NewCorpus(corpusRecords(), DefaultConfig(), LayerGrams)
	if err != nil {
		t.Fatal(err)
	}
	ls := lean.Snapshot()
	if ls.Words != nil || ls.Norms != nil || ls.Grams.TFIDFPost != nil {
		t.Fatal("lean corpus built unrequested layers")
	}
}

func TestCorpusPruningSplitsLayers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PruneRate = 0.3
	c, err := NewCorpus(corpusRecords(), cfg, LayerGrams|LayerPostings)
	if err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.Grams == s.RawGrams {
		t.Fatal("pruning must produce a distinct effective layer")
	}
	if s.Grams.Stats.Tokens() >= s.RawGrams.Stats.Tokens() {
		t.Fatalf("pruned vocabulary %d should be smaller than raw %d",
			s.Grams.Stats.Tokens(), s.RawGrams.Stats.Tokens())
	}
}

func TestCorpusValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Q = 0
	if _, err := NewCorpus(corpusRecords(), cfg, LayerGrams); err == nil {
		t.Error("q=0 must be rejected")
	}
	cfg = DefaultConfig()
	cfg.PruneRate = 1
	if _, err := NewCorpus(corpusRecords(), cfg, LayerGrams); err == nil {
		t.Error("prune rate 1 must be rejected")
	}
	dup := []Record{{TID: 1, Text: "a"}, {TID: 1, Text: "b"}}
	if _, err := NewCorpus(dup, DefaultConfig(), LayerGrams); err == nil {
		t.Error("duplicate TIDs must be rejected")
	}
}

func TestCorpusMutationEpochs(t *testing.T) {
	c, err := NewCorpus(corpusRecords(), DefaultConfig(), AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 0 {
		t.Fatalf("fresh corpus epoch = %d", c.Epoch())
	}
	if err := c.Insert(Record{TID: 100, Text: "Summit Tools Inc."}); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 1 || c.Len() != 10 {
		t.Fatalf("after insert: epoch %d len %d", c.Epoch(), c.Len())
	}
	if err := c.Delete(1, 2); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 2 || c.Len() != 8 {
		t.Fatalf("after delete: epoch %d len %d", c.Epoch(), c.Len())
	}
	if err := c.Upsert(Record{TID: 100, Text: "Summit Tools Incorporated"}, Record{TID: 101, Text: "Falcon Airways"}); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 3 || c.Len() != 9 {
		t.Fatalf("after upsert: epoch %d len %d", c.Epoch(), c.Len())
	}
	// Mutations must not re-tokenize the full relation.
	if c.TokenizePasses() != 1 {
		t.Fatalf("mutations re-tokenized the relation: %d passes", c.TokenizePasses())
	}
	// The snapshot's per-record data must track the record list.
	s := c.Snapshot()
	if len(s.Grams.Counts) != len(s.Records) || len(s.Norms) != len(s.Records) ||
		len(s.Words.Words) != len(s.Records) {
		t.Fatal("per-record arrays out of sync after mutations")
	}
	if i, ok := s.Index(100); !ok || s.Records[i].Text != "Summit Tools Incorporated" {
		t.Fatalf("upsert did not replace record 100: %+v", s.Records)
	}
}

func TestCorpusMutationErrors(t *testing.T) {
	c, err := NewCorpus(corpusRecords(), DefaultConfig(), LayerGrams)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Record{TID: 1, Text: "dup"}); err == nil {
		t.Error("inserting an existing TID must error")
	}
	if err := c.Delete(999); err == nil {
		t.Error("deleting an unknown TID must error")
	}
	if err := c.Insert(Record{TID: 50, Text: "a"}, Record{TID: 50, Text: "b"}); err == nil {
		t.Error("duplicate TIDs within one insert must error")
	}
	if c.Epoch() != 0 {
		t.Fatalf("failed mutations must not bump the epoch: %d", c.Epoch())
	}
	if err := c.Insert(); err != nil {
		t.Errorf("empty insert is a no-op: %v", err)
	}
}

// TestCorpusMutationMatchesFreshBuild is the core differential contract:
// after any mix of inserts, deletes and upserts, every layer must be
// bit-identical to a corpus freshly built over the updated record set.
func TestCorpusMutationMatchesFreshBuild(t *testing.T) {
	cfg := DefaultConfig()
	for _, rate := range []float64{0, 0.3} {
		cfg.PruneRate = rate
		c, err := NewCorpus(corpusRecords(), cfg, AllLayers)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(Record{TID: 20, Text: "Pacific Mills Inc."}, Record{TID: 21, Text: "Orion Foods"}); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(3, 7); err != nil {
			t.Fatal(err)
		}
		if err := c.Upsert(Record{TID: 5, Text: "Stanley Morgan Group Incorporated"}); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewCorpus(c.Records(), cfg, AllLayers)
		if err != nil {
			t.Fatal(err)
		}
		a, b := c.Snapshot(), fresh.Snapshot()
		if len(a.Records) != len(b.Records) {
			t.Fatalf("rate %v: record counts differ", rate)
		}
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				t.Fatalf("rate %v: record %d differs", rate, i)
			}
		}
		for r, tok := range a.Grams.TokenByRank {
			if a.Grams.Stats.IDF(tok) != b.Grams.Stats.IDF(tok) {
				t.Fatalf("rate %v: idf(%q) drifted", rate, tok)
			}
			if a.Grams.RSByRank[r] != b.Grams.RSByRank[r] {
				t.Fatalf("rate %v: RS(%q) drifted", rate, tok)
			}
		}
		if a.Grams.Stats.Tokens() != b.Grams.Stats.Tokens() {
			t.Fatalf("rate %v: vocabulary sizes differ", rate)
		}
		for i := range a.Grams.LMSumComp {
			if a.Grams.LMSumComp[i] != b.Grams.LMSumComp[i] {
				t.Fatalf("rate %v: LM sum-comp %d drifted", rate, i)
			}
		}
		for i := range a.Norms {
			if a.Norms[i] != b.Norms[i] {
				t.Fatalf("rate %v: norm %d differs", rate, i)
			}
		}
		for _, w := range a.Words.Stats.SortedTokens() {
			if a.Words.Stats.IDF(w) != b.Words.Stats.IDF(w) {
				t.Fatalf("rate %v: word idf(%q) drifted", rate, w)
			}
		}
	}
}

func TestCompatibleConfig(t *testing.T) {
	c, err := NewCorpus(corpusRecords(), DefaultConfig(), AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BM25K1 = 2.0 // scoring-level: fine
	cfg.EditTheta = 0
	if err := c.CompatibleConfig(cfg); err != nil {
		t.Fatalf("scoring params must not conflict: %v", err)
	}
	cfg = DefaultConfig()
	cfg.Q = 3
	if err := c.CompatibleConfig(cfg); err == nil {
		t.Error("q mismatch must be rejected")
	}
	cfg = DefaultConfig()
	cfg.PruneRate = 0.2
	if err := c.CompatibleConfig(cfg); err == nil {
		t.Error("prune rate mismatch must be rejected")
	}
	cfg = DefaultConfig()
	cfg.MinHashK = 9
	if err := c.CompatibleConfig(cfg); err == nil {
		t.Error("min-hash size mismatch must be rejected")
	}
}

func TestMinHashSize(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MinHashSize() != 5 {
		t.Fatalf("default min-hash size: %d", cfg.MinHashSize())
	}
	cfg.MinHashK = 0
	if cfg.MinHashSize() != 5 {
		t.Fatalf("zero must fall back to the paper's 5: %d", cfg.MinHashSize())
	}
	cfg.MinHashK = 7
	if cfg.MinHashSize() != 7 {
		t.Fatalf("explicit size: %d", cfg.MinHashSize())
	}
}
