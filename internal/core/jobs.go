package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunJobs runs fn(0), ..., fn(n-1) on a pool of up to workers goroutines —
// the worker pool behind the facade's SelectBatch, the shard fan-out of
// sharded selections, and parallel shard construction.
//
// Error reporting is deterministic: RunJobs returns the error of the
// lowest-indexed failing job, regardless of how jobs were scheduled across
// workers. To make that possible without evaluating everything, a failure
// at index i does not abort jobs below i (one of them could fail at a lower
// index and must get the chance to), while jobs above i are skipped — their
// outcome can never be reported. On success the returned index is -1.
//
// Cancelling ctx stops feeding new jobs; fn is expected to honor ctx
// itself for prompt in-flight cancellation. A job failing with the context
// error is reported like any other failure, so callers that prefer the bare
// context error should check ctx.Err() on return.
func RunJobs(ctx context.Context, n, workers int, fn func(i int) error) (int, error) {
	if n == 0 {
		return -1, nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path — no goroutines, no channel: the hot path of
		// single-shard fan-outs and serialized (declarative) batches.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return i, err
			}
			if err := fn(i); err != nil {
				return i, err
			}
		}
		return -1, nil
	}

	// minFail is the lowest failing index seen so far, n while none: jobs
	// at or above it are doomed to be irrelevant and are skipped.
	var (
		minFail atomic.Int64
		next    atomic.Int64
		mu      sync.Mutex
		failErr error
	)
	minFail.Store(int64(n))
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if int64(i) < minFail.Load() {
			minFail.Store(int64(i))
			failErr = err
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) >= minFail.Load() {
					continue
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()

	if idx := minFail.Load(); idx < int64(n) {
		return int(idx), failErr
	}
	return -1, nil
}
