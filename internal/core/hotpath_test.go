package core

import (
	"math"
	"math/rand"
	"testing"
)

// randomTerms builds a random but valid query plan over n records: sorted
// posting lists, mixed-sign weights, correct per-list bound columns.
func randomTerms(rng *rand.Rand, n, nt int, weighted, signed bool) []Term {
	terms := make([]Term, 0, nt)
	for t := 0; t < nt; t++ {
		df := 1 + rng.Intn(n)
		perm := rng.Perm(n)[:df]
		recs := append([]int(nil), perm...)
		// Posting lists must be sorted by record position.
		for i := 1; i < len(recs); i++ {
			for j := i; j > 0 && recs[j] < recs[j-1]; j-- {
				recs[j], recs[j-1] = recs[j-1], recs[j]
			}
		}
		q := rng.Float64() * 3
		if signed && rng.Intn(3) == 0 {
			q = -q
		}
		if !weighted {
			ids := make([]int32, len(recs))
			for i, r := range recs {
				ids[i] = int32(r)
			}
			terms = append(terms, Term{Q: q, Ids: ids})
			continue
		}
		posts := make([]WPost, len(recs))
		mx, mn := math.Inf(-1), math.Inf(1)
		for i, r := range recs {
			w := rng.Float64() * 2
			if signed && rng.Intn(4) == 0 {
				w = -w
			}
			posts[i] = WPost{Rec: r, W: w}
			mx = math.Max(mx, w)
			mn = math.Min(mn, w)
		}
		terms = append(terms, Term{Q: q, W: posts, MaxW: mx, MinW: mn})
	}
	OrderTermsByImpact(terms)
	return terms
}

func matchesIdentical(t *testing.T, label string, want, got []Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d\nwant %v\ngot  %v", label, len(want), len(got), want, got)
	}
	for i := range want {
		if want[i].TID != got[i].TID || want[i].Score != got[i].Score {
			t.Fatalf("%s: position %d: want %+v got %+v", label, i, want[i], got[i])
		}
	}
}

// TestMaxScoreMatchesNaive fuzzes the score-at-a-time engine against the
// naive reference merge across every shape family and option combination:
// the results must be bit-identical — scores and tie order — because
// pruning is only ever allowed to skip provably irrelevant work.
func TestMaxScoreMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{TID: 1000 - i} // non-monotone TIDs exercise tie order
	}
	comp := make([]float64, n)
	den := make([]float64, n)
	for i := range comp {
		comp[i] = -5 * rng.Float64()
		den[i] = rng.Float64() * 10
	}
	compMax := math.Inf(-1)
	denMin := math.Inf(1)
	for i := range comp {
		compMax = math.Max(compMax, comp[i])
		denMin = math.Min(denMin, den[i])
	}

	for trial := 0; trial < 200; trial++ {
		nt := 1 + rng.Intn(12)
		weighted := rng.Intn(2) == 0
		signed := rng.Intn(2) == 0
		terms := randomTerms(rng, n, nt, weighted, signed)

		var sh Shape
		var thresholds []float64
		switch trial % 4 {
		case 0: // identity (Cosine/BM25/WeightedMatch/IntersectSize)
			sh = Shape{}
			thresholds = []float64{0.5, 2, -1}
		case 1: // exp (HMM)
			sh = Shape{Exp: true}
			thresholds = []float64{1.5, 0.2}
		case 2: // exp with per-record offset (LM)
			sh = Shape{Exp: true, Comp: comp, CompMax: compMax}
			thresholds = []float64{0.05, 0.3}
		case 3: // ratio (Jaccard/WeightedJaccard)
			// A denominator column that dominates any achievable count
			// keeps DenAtLeastAcc honest for the unweighted case.
			rden := make([]float64, n)
			for i := range rden {
				rden[i] = den[i] + float64(nt)
			}
			sh = Shape{Den: rden, DenMin: denMin + float64(nt), DenAtLeastAcc: !signed && !weighted, QSide: float64(nt) + 1}
			thresholds = []float64{0.1, 0.4}
		}

		optsList := []SelectOptions{
			{},
			{Limit: 1},
			{Limit: 5},
			{Limit: n + 10},
			{Threshold: thresholds[0], HasThreshold: true},
			{Limit: 3, Threshold: thresholds[len(thresholds)-1], HasThreshold: true},
		}
		for _, opts := range optsList {
			want := NaiveTermSelect(recs, cloneTerms(terms), sh, opts)
			s := GetScratch(n)
			got := MaxScoreSelect(s, recs, cloneTerms(terms), sh, opts)
			s.Release()
			matchesIdentical(t, "engine vs naive", want, got)
		}
	}
}

// cloneTerms guards against the engine mutating the shared plan.
func cloneTerms(terms []Term) []Term {
	return append([]Term(nil), terms...)
}

// TestMaxScorePrunesSkewedLists checks that pruning actually happens on the
// workload shape it is designed for: a few rare high-weight lists followed
// by long low-weight ones, probed with a small limit.
func TestMaxScorePrunesSkewedLists(t *testing.T) {
	n := 2000
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{TID: i}
	}
	var terms []Term
	// Three short, heavy lists.
	for k := 0; k < 3; k++ {
		posts := make([]WPost, 0, 10)
		for r := k * 10; r < k*10+10; r++ {
			posts = append(posts, WPost{Rec: r, W: 5})
		}
		terms = append(terms, Term{Q: 1, W: posts, MaxW: 5, MinW: 5})
	}
	// Ten long, feather-weight lists covering every record.
	for k := 0; k < 10; k++ {
		posts := make([]WPost, n)
		for r := 0; r < n; r++ {
			posts[r] = WPost{Rec: r, W: 0.001}
		}
		terms = append(terms, Term{Q: 1, W: posts, MaxW: 0.001, MinW: 0.001})
	}
	OrderTermsByImpact(terms)

	before := HotPathSnapshot()
	s := GetScratch(n)
	got := MaxScoreSelect(s, recs, terms, Shape{}, SelectOptions{Limit: 5})
	s.Release()
	delta := HotPathSnapshot().Sub(before)

	want := NaiveTermSelect(recs, terms, Shape{}, SelectOptions{Limit: 5})
	matchesIdentical(t, "pruned top-k", want, got)
	if delta.PrunedQueries != 1 {
		t.Fatalf("admission must close on the skewed workload: %+v", delta)
	}
	if delta.ListsSkipped == 0 {
		t.Fatalf("long feather-weight lists must be skipped entirely: %+v", delta)
	}
	if delta.PostingsSkipped == 0 {
		t.Fatalf("postings skipped must be counted: %+v", delta)
	}
}

// TestScratchEpochWrap forces the 32-bit epoch counter to wrap and checks
// that stale stamps cannot leak into the new epoch.
func TestScratchEpochWrap(t *testing.T) {
	s := GetScratch(4)
	defer s.Release()
	s.Add(2, 1.5)
	if !s.Stamped(2) || s.Val(2) != 1.5 {
		t.Fatal("basic accumulate broken")
	}
	s.cur = ^uint32(0) // pretend 2^32-1 resets happened; stamp[2] aliases nothing yet
	s.stamp[2] = s.cur // simulate a record stamped at the wrap boundary
	s.Reset(4)
	if s.cur != 1 {
		t.Fatalf("epoch must restart at 1 after wrap, got %d", s.cur)
	}
	if s.Stamped(2) {
		t.Fatal("stale stamp survived the epoch wrap")
	}
	if s.Val(2) != 0 {
		t.Fatal("stale value visible after wrap")
	}
}

// TestScratchRowFor exercises the flat stride-row buffer the GES filters
// use for their per-(record, query word) maxsim tables.
func TestScratchRowFor(t *testing.T) {
	s := GetScratch(8)
	defer s.Release()
	r1 := s.RowFor(3, 4)
	r1[2] = 0.5
	r2 := s.RowFor(6, 4)
	r2[0] = 0.25
	again := s.RowFor(3, 4)
	if again[2] != 0.5 || again[0] != 0 {
		t.Fatalf("row not stable across touches: %v", again)
	}
	if got := s.RowFor(6, 4); got[0] != 0.25 {
		t.Fatalf("second record's row clobbered: %v", got)
	}
	if len(s.Touched()) != 2 {
		t.Fatalf("touched list: %v", s.Touched())
	}
	s.Reset(8)
	if row := s.RowFor(3, 4); row[2] != 0 {
		t.Fatal("row not zeroed after reset")
	}
}
