package core

// MergeRanked merges per-shard rankings — each already in the SortMatches
// order (decreasing score, ties by increasing TID) — into one global
// ranking in the same order. It is the merge hook of sharded selection:
// every shard contributes its own top-k heap output and the merge is a
// k-way heap walk that stops as soon as limit matches are emitted (limit
// <= 0 merges everything). The result is identical to concatenating the
// lists, sorting with SortMatches and truncating, for any shard count.
func MergeRanked(lists [][]Match, limit int) []Match {
	total := 0
	nonEmpty := 0
	for _, l := range lists {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
		}
	}
	if limit <= 0 || limit > total {
		limit = total
	}
	out := make([]Match, 0, limit)
	switch nonEmpty {
	case 0:
		return out
	case 1:
		for _, l := range lists {
			if len(l) > 0 {
				return append(out, l[:limit]...)
			}
		}
	}

	// A heap of cursors, one per non-empty list, ordered by the head match.
	type cursor struct {
		list []Match
		pos  int
	}
	h := make([]cursor, 0, nonEmpty)
	better := func(a, b cursor) bool {
		return worseRank(b.list[b.pos], a.list[a.pos])
	}
	down := func(i int) {
		for {
			best := i
			if l := 2*i + 1; l < len(h) && better(h[l], h[best]) {
				best = l
			}
			if r := 2*i + 2; r < len(h) && better(h[r], h[best]) {
				best = r
			}
			if best == i {
				return
			}
			h[i], h[best] = h[best], h[i]
			i = best
		}
	}
	for _, l := range lists {
		if len(l) > 0 {
			h = append(h, cursor{list: l})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(out) < limit {
		c := &h[0]
		out = append(out, c.list[c.pos])
		c.pos++
		if c.pos == len(c.list) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			if len(h) == 0 {
				break
			}
		}
		down(0)
	}
	return out
}
