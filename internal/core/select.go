package core

import (
	"context"
	"fmt"
)

// BuilderFunc constructs a predicate over a base relation. It is the unit
// of registration in the facade's predicate registry: both realizations
// expose their thirteen predicates as BuilderFuncs, and applications plug
// in new predicates by registering their own.
type BuilderFunc func(records []Record, cfg Config) (Predicate, error)

// SelectOptions carries per-selection limits that predicates may push down
// into candidate generation and ranking. The zero value selects everything,
// preserving the un-thresholded full-ranking contract of Predicate.Select.
type SelectOptions struct {
	// Limit > 0 keeps only the Limit best matches under the SortMatches
	// order (decreasing score, ties by increasing TID). Zero means
	// unlimited; negative limits are rejected by SelectWithOptions.
	Limit int
	// Threshold drops matches with Score < Threshold when HasThreshold is
	// set: the paper's sim(t_q, t) ≥ θ selection.
	Threshold    float64
	HasThreshold bool
}

// IsZero reports whether the options request the plain full ranking.
func (o SelectOptions) IsZero() bool { return o.Limit <= 0 && !o.HasThreshold }

// Keeps reports whether a score survives the threshold filter.
func (o SelectOptions) Keeps(score float64) bool {
	return !o.HasThreshold || score >= o.Threshold
}

// ContextPredicate is the optional interface of predicates that accept a
// context and selection options natively, so that limits are pushed down
// into ranking (a k-sized heap instead of a full sort) rather than applied
// as a post-filter. All native predicates implement it.
type ContextPredicate interface {
	Predicate
	SelectCtx(ctx context.Context, query string, opts SelectOptions) ([]Match, error)
}

// ConcurrentProber is the optional interface of predicates that declare
// whether Select may be called concurrently once the predicate is built.
// Native predicates are read-only after preprocessing and report true; the
// declarative realization shares mutable query tables in its SQL database
// and does not implement the interface, so batch probing serializes it.
type ConcurrentProber interface {
	ConcurrentProbeSafe() bool
}

// ConcurrentSafe reports whether p declares concurrent Selects safe.
func ConcurrentSafe(p Predicate) bool {
	cp, ok := p.(ConcurrentProber)
	return ok && cp.ConcurrentProbeSafe()
}

// SelectWithOptions runs one selection with options against any predicate.
// Predicates implementing ContextPredicate get the options pushed down;
// for the rest the full ranking is computed and the options are applied as
// a post-filter, preserving identical results. Options are validated
// before probing: a negative limit is an error, not "unlimited".
func SelectWithOptions(ctx context.Context, p Predicate, query string, opts SelectOptions) ([]Match, error) {
	if opts.Limit < 0 {
		return nil, fmt.Errorf("approxsel: negative selection limit %d", opts.Limit)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cp, ok := p.(ContextPredicate); ok {
		return cp.SelectCtx(ctx, query, opts)
	}
	ms, err := p.Select(query)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ApplySelectOptions(ms, opts), nil
}

// ApplySelectOptions applies threshold and limit to an already-ranked match
// slice — the shim path for predicates without push-down. Because the input
// respects the SortMatches order, truncation after filtering is exactly
// sort-then-truncate.
func ApplySelectOptions(ms []Match, opts SelectOptions) []Match {
	if opts.HasThreshold {
		out := make([]Match, 0, len(ms))
		for _, m := range ms {
			if m.Score >= opts.Threshold {
				out = append(out, m)
			}
		}
		ms = out
	}
	if opts.Limit > 0 && opts.Limit < len(ms) {
		ms = ms[:opts.Limit]
	}
	return ms
}

// FinishMatches turns an unordered match slice into the final ranking
// under opts: a full sort — or, when a limit smaller than the candidate set
// is given, a bounded heap in O(n log k). The slice is reordered in place.
// Threshold filtering is the caller's job (Keeps, applied before
// materializing each Match), so the filter lives in exactly one place.
func FinishMatches(ms []Match, opts SelectOptions) []Match {
	if opts.Limit > 0 && opts.Limit < len(ms) {
		return bestMatches(ms, opts.Limit)
	}
	SortMatches(ms)
	return ms
}

// worseRank reports whether a ranks strictly worse than b under the
// SortMatches order (lower score, or equal score and larger TID).
func worseRank(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.TID > b.TID
}

// bestMatches selects the k best matches with a k-sized min-heap whose root
// is the worst kept match, then sorts the survivors. The result is
// identical to SortMatches followed by truncation at k.
func bestMatches(ms []Match, k int) []Match {
	h := make([]Match, 0, k)
	for _, m := range ms {
		if len(h) < k {
			h = append(h, m)
			siftUp(h, len(h)-1)
			continue
		}
		if worseRank(h[0], m) {
			h[0] = m
			siftDown(h, 0)
		}
	}
	SortMatches(h)
	return h
}

func siftUp(h []Match, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worseRank(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Match, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && worseRank(h[l], h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && worseRank(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// ---- constructor options ----

// BuildSettings is the state assembled by constructor options before a
// predicate is built: the parameter Config, the realization name the
// facade resolves through its registry, and — when the WithCorpus option
// is given — the shared corpus the predicate attaches to instead of
// preprocessing its own copy of the relation.
type BuildSettings struct {
	Config      Config
	Realization string
	Corpus      *Corpus
	// DataDir, when set by the WithDataDir option, makes OpenCorpus and
	// OpenShardedCorpus durable: an existing approxstore in the directory is
	// loaded instead of building from records, and every later mutation is
	// write-ahead logged there.
	DataDir string
}

// BuildOption configures predicate construction. The facade's functional
// options (WithQ, WithRealization, ...) implement it, and Config itself is
// a BuildOption that replaces the whole configuration — which keeps the
// original New(name, records, cfg) call form compiling unchanged.
type BuildOption interface {
	ApplyBuild(*BuildSettings)
}

// ApplyBuild makes Config a BuildOption: the configuration is replaced
// wholesale, exactly like the pre-options constructors did.
func (c Config) ApplyBuild(s *BuildSettings) { s.Config = c }

// BuildOptionFunc adapts a function to the BuildOption interface.
type BuildOptionFunc func(*BuildSettings)

// ApplyBuild implements BuildOption.
func (f BuildOptionFunc) ApplyBuild(s *BuildSettings) { f(s) }
