package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// persistRecords builds a relation exercising every layer: repeated tokens,
// swapped word order, near-duplicates, an empty-ish record and TID gaps.
func persistRecords() []Record {
	texts := []string{
		"AT&T Incorporated", "AT&T Inc.", "IBM Incorporated",
		"Morgan Stanley Group Inc.", "Stanley Morgan Group Inc.",
		"Beijing Hotel", "Hotel Beijing", "Beijing Labs", "Redwood Energy",
		"x", "Redwood  Energy  Holdings", "International Business Machines",
		"internatinal busines machines", "AT&T Wireless Services Inc.",
	}
	out := make([]Record, len(texts))
	for i, t := range texts {
		out[i] = Record{TID: 3*i + 1, Text: t}
	}
	return out
}

// roundTrip saves c and loads the bytes back.
func roundTrip(t *testing.T, c *Corpus) *Corpus {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	lc, err := LoadSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	return lc
}

// assertSnapshotsIdentical compares two snapshots structurally, field by
// field — including every float table bit for bit (reflect.DeepEqual
// distinguishes float bit patterns via ==; NaNs do not appear in the
// tables). This is the strongest form of the persistence contract: not
// just equal scores, but equal state.
func assertSnapshotsIdentical(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if want.Epoch != got.Epoch {
		t.Fatalf("epoch: want %d, got %d", want.Epoch, got.Epoch)
	}
	if !reflect.DeepEqual(want.Records, got.Records) {
		t.Fatalf("records differ")
	}
	if !reflect.DeepEqual(want.byTID, got.byTID) {
		t.Fatalf("TID index differs")
	}
	if (want.Grams == want.RawGrams) != (got.Grams == got.RawGrams) {
		t.Fatalf("effective-layer aliasing differs")
	}
	if !reflect.DeepEqual(want.RawGrams, got.RawGrams) {
		t.Fatalf("raw gram layer differs:\n%s", diffGramLayer(want.RawGrams, got.RawGrams))
	}
	if !reflect.DeepEqual(want.Grams, got.Grams) {
		t.Fatalf("effective gram layer differs:\n%s", diffGramLayer(want.Grams, got.Grams))
	}
	if !reflect.DeepEqual(want.Words, got.Words) {
		t.Fatalf("word layer differs:\n%s", diffWordLayer(want.Words, got.Words))
	}
	if !reflect.DeepEqual(want.Norms, got.Norms) {
		t.Fatalf("norms differ")
	}
}

// diffGramLayer names the first differing field, so failures point at the
// field rather than dumping two multi-megabyte structs.
func diffGramLayer(a, b *GramLayer) string {
	if (a == nil) != (b == nil) {
		return "one layer is nil"
	}
	checks := []struct {
		name string
		x, y any
	}{
		{"Docs", a.Docs, b.Docs}, {"Counts", a.Counts, b.Counts}, {"DL", a.DL, b.DL},
		{"rank", a.rank, b.rank}, {"TokenByRank", a.TokenByRank, b.TokenByRank},
		{"Pairs", a.Pairs, b.Pairs}, {"IDFByRank", a.IDFByRank, b.IDFByRank},
		{"Postings", a.Postings, b.Postings},
		{"RSByRank", a.RSByRank, b.RSByRank}, {"RSLen", a.RSLen, b.RSLen},
		{"RSLenMin", a.RSLenMin, b.RSLenMin},
		{"TFIDFPost", a.TFIDFPost, b.TFIDFPost}, {"TFIDFMax", a.TFIDFMax, b.TFIDFMax},
		{"TFIDFMin", a.TFIDFMin, b.TFIDFMin},
		{"LMPost", a.LMPost, b.LMPost}, {"LMMax", a.LMMax, b.LMMax},
		{"LMMin", a.LMMin, b.LMMin}, {"LMSumComp", a.LMSumComp, b.LMSumComp},
		{"LMCompMax", a.LMCompMax, b.LMCompMax}, {"TFPost", a.TFPost, b.TFPost},
		{"Stats", a.Stats, b.Stats},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.x, c.y) {
			return "field " + c.name
		}
	}
	return "no field-level difference found"
}

func diffWordLayer(a, b *WordLayer) string {
	if (a == nil) != (b == nil) {
		return "one layer is nil"
	}
	checks := []struct {
		name string
		x, y any
	}{
		{"Words", a.Words, b.Words}, {"Counts", a.Counts, b.Counts},
		{"Stats", a.Stats, b.Stats}, {"rank", a.rank, b.rank},
		{"IDFWeights", a.IDFWeights, b.IDFWeights}, {"TFIDF", a.TFIDF, b.TFIDF},
		{"Vocab", a.Vocab, b.Vocab}, {"VocabGrams", a.VocabGrams, b.VocabGrams},
		{"GramSizes", a.GramSizes, b.GramSizes}, {"GramIndex", a.GramIndex, b.GramIndex},
		{"WordOff", a.WordOff, b.WordOff}, {"WordRecOf", a.WordRecOf, b.WordRecOf},
		{"GramSizeOf", a.GramSizeOf, b.GramSizeOf}, {"WordTotal", a.WordTotal, b.WordTotal},
		{"Sigs", a.Sigs, b.Sigs}, {"SigIndex", a.SigIndex, b.SigIndex},
	}
	for _, c := range checks {
		if !reflect.DeepEqual(c.x, c.y) {
			return "field " + c.name
		}
	}
	return "no field-level difference found"
}

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	c, err := NewCorpus(persistRecords(), DefaultConfig(), AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	lc := roundTrip(t, c)
	assertSnapshotsIdentical(t, c.Snapshot(), lc.Snapshot())
	if lc.TokenizePasses() != 0 {
		t.Fatalf("a loaded corpus must not tokenize, got %d passes", lc.TokenizePasses())
	}
	if lc.Config() != c.Config() {
		t.Fatalf("config not restored: %+v vs %+v", lc.Config(), c.Config())
	}
	if lc.Layers() != c.Layers() {
		t.Fatalf("layers not restored: %b vs %b", lc.Layers(), c.Layers())
	}
}

func TestSnapshotRoundTripAfterMutations(t *testing.T) {
	c, err := NewCorpus(persistRecords(), DefaultConfig(), AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Record{TID: 500, Text: "Beijing Hotel Group"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(4); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(Record{TID: 500, Text: "Beijing Hotel Group Ltd"}); err != nil {
		t.Fatal(err)
	}
	lc := roundTrip(t, c)
	assertSnapshotsIdentical(t, c.Snapshot(), lc.Snapshot())
	if lc.Epoch() != 3 {
		t.Fatalf("epoch after three mutations: %d", lc.Epoch())
	}
}

func TestSnapshotRoundTripPruned(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PruneRate = 0.2
	c, err := NewCorpus(persistRecords(), cfg, AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	if c.Snapshot().Grams == c.Snapshot().RawGrams {
		t.Fatal("precondition: pruning must split the layers")
	}
	lc := roundTrip(t, c)
	assertSnapshotsIdentical(t, c.Snapshot(), lc.Snapshot())
}

func TestSnapshotRoundTripLeanLayers(t *testing.T) {
	for _, layers := range []CorpusLayers{
		LayerGrams,
		(LayerTFIDF).withDeps(),
		(LayerRS | LayerPostings).withDeps(),
		(LayerSigs | LayerNorms).withDeps(),
	} {
		c, err := NewCorpus(persistRecords(), DefaultConfig(), layers)
		if err != nil {
			t.Fatal(err)
		}
		lc := roundTrip(t, c)
		assertSnapshotsIdentical(t, c.Snapshot(), lc.Snapshot())
		if lc.Layers() != c.Layers() {
			t.Fatalf("layers %b: restored %b", c.Layers(), lc.Layers())
		}
	}
}

// TestLoadedCorpusMutatesIdentically applies the same mutation batch to the
// original and the loaded corpus: the persistence layer's replay path runs
// mutations through exactly this code, so splicing cached tokenization from
// a decoded snapshot must behave like splicing from a fresh one.
func TestLoadedCorpusMutatesIdentically(t *testing.T) {
	c, err := NewCorpus(persistRecords(), DefaultConfig(), AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	lc := roundTrip(t, c)
	mutate := func(c *Corpus) {
		t.Helper()
		if err := c.Insert(Record{TID: 900, Text: "Stanley Morgan Incorporated"}); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(1, 7); err != nil {
			t.Fatal(err)
		}
		if err := c.Upsert(Record{TID: 10, Text: "Beijing Hotel International"}); err != nil {
			t.Fatal(err)
		}
	}
	mutate(c)
	mutate(lc)
	assertSnapshotsIdentical(t, c.Snapshot(), lc.Snapshot())
}

// TestReplayMutationsMatchesSequential pins the batched-replay contract:
// one ReplayMutations pass (splices per batch, one assembly at the end)
// produces a snapshot structurally identical — every float bit — to
// applying the same batches one mutation at a time.
func TestReplayMutationsMatchesSequential(t *testing.T) {
	sequential, err := NewCorpus(persistRecords(), DefaultConfig(), AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	batched := roundTrip(t, sequential)

	if err := sequential.Insert(Record{TID: 500, Text: "Beijing Hotel Group"}, Record{TID: 501, Text: "x y z"}); err != nil {
		t.Fatal(err)
	}
	if err := sequential.Delete(4, 10); err != nil {
		t.Fatal(err)
	}
	if err := sequential.Upsert(Record{TID: 500, Text: "Beijing Hotel Group Ltd"}); err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{
		{Kind: MutationInsert, Add: []Record{{TID: 500, Text: "Beijing Hotel Group"}, {TID: 501, Text: "x y z"}}, Epoch: 1},
		{Kind: MutationDelete, Del: []int{4, 10}, Epoch: 2},
		{Kind: MutationUpsert, Add: []Record{{TID: 500, Text: "Beijing Hotel Group Ltd"}}, Epoch: 3},
	}
	if err := batched.ReplayMutations(muts); err != nil {
		t.Fatal(err)
	}
	assertSnapshotsIdentical(t, sequential.Snapshot(), batched.Snapshot())

	// A gap or an invalid batch leaves the corpus untouched.
	before := batched.Snapshot()
	if err := batched.ReplayMutations([]Mutation{{Kind: MutationInsert, Add: []Record{{TID: 600, Text: "gap"}}, Epoch: 9}}); err == nil {
		t.Fatal("an epoch gap must fail the replay")
	}
	if err := batched.ReplayMutations([]Mutation{
		{Kind: MutationInsert, Add: []Record{{TID: 600, Text: "lands"}}, Epoch: 4},
		{Kind: MutationDelete, Del: []int{777777}, Epoch: 5},
	}); err == nil {
		t.Fatal("an invalid batch must fail the replay")
	}
	if batched.Snapshot() != before {
		t.Fatal("a failed replay must not publish a snapshot")
	}
}

func TestLoadSnapshotRejectsCorruption(t *testing.T) {
	c, err := NewCorpus(persistRecords(), DefaultConfig(), AllLayers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadSnapshot(data[:len(data)-10]); err == nil {
		t.Fatal("truncated snapshot must fail")
	}
	for _, off := range []int{5, 40, len(data) / 2, len(data) - 20} {
		mangled := append([]byte(nil), data...)
		mangled[off] ^= 0x40
		if _, err := LoadSnapshot(mangled); err == nil {
			t.Fatalf("bit flip at %d must fail the CRC or a bounds check", off)
		}
	}
}

func TestMutationHookWriteAheadContract(t *testing.T) {
	c, err := NewCorpus(persistRecords(), DefaultConfig(), LayerGrams)
	if err != nil {
		t.Fatal(err)
	}
	var seen []Mutation
	c.SetMutationHook(func(m Mutation) error {
		seen = append(seen, m)
		return nil
	})
	if err := c.Insert(Record{TID: 901, Text: "Hook Test One"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(901); err != nil {
		t.Fatal(err)
	}
	if err := c.Upsert(Record{TID: 1, Text: "Rewritten"}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("hook calls: %d", len(seen))
	}
	if seen[0].Kind != MutationInsert || seen[0].Epoch != 1 || len(seen[0].Add) != 1 {
		t.Fatalf("insert hook: %+v", seen[0])
	}
	if seen[1].Kind != MutationDelete || seen[1].Epoch != 2 || len(seen[1].Del) != 1 {
		t.Fatalf("delete hook: %+v", seen[1])
	}
	if seen[2].Kind != MutationUpsert || seen[2].Epoch != 3 {
		t.Fatalf("upsert hook: %+v", seen[2])
	}

	// A rejecting hook aborts the mutation with no visible state change:
	// the write-ahead guarantee (nothing is acknowledged that the log did
	// not accept).
	before := c.Snapshot()
	c.SetMutationHook(func(m Mutation) error { return fmt.Errorf("disk full") })
	if err := c.Insert(Record{TID: 902, Text: "Never lands"}); err == nil {
		t.Fatal("rejected mutation must error")
	}
	if c.Snapshot() != before {
		t.Fatal("rejected mutation must not publish a snapshot")
	}
	if c.Epoch() != 3 {
		t.Fatalf("epoch after rejected mutation: %d", c.Epoch())
	}

	// A nil hook detaches.
	c.SetMutationHook(nil)
	if err := c.Insert(Record{TID: 903, Text: "Lands again"}); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 4 {
		t.Fatalf("epoch: %d", c.Epoch())
	}
}

func TestFreezeSerializesAgainstMutations(t *testing.T) {
	c, err := NewCorpus(persistRecords(), DefaultConfig(), LayerGrams)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Freeze(func(s *Snapshot) error {
		if s.Epoch != 0 {
			t.Fatalf("frozen snapshot epoch: %d", s.Epoch)
		}
		return fmt.Errorf("propagated")
	})
	if err == nil || err.Error() != "propagated" {
		t.Fatalf("freeze must propagate fn's error, got %v", err)
	}
}
