package sqldb

// This file defines the abstract syntax tree produced by the parser.

// stmt is any parsed SQL statement.
type stmt interface{ isStmt() }

// columnDef is one column of a CREATE TABLE statement.
type columnDef struct {
	Name string
	Type Kind
}

type createTableStmt struct {
	Name        string
	IfNotExists bool
	Cols        []columnDef
}

type createIndexStmt struct {
	Name   string
	Table  string
	Column string
}

type dropTableStmt struct {
	Name     string
	IfExists bool
}

type deleteStmt struct {
	Table string
	Where expr // nil means all rows
}

type insertStmt struct {
	Table   string
	Columns []string    // optional explicit column list
	Rows    [][]expr    // VALUES form
	Select  *selectStmt // INSERT ... SELECT form
}

// selectStmt is a (possibly compound) SELECT.
type selectStmt struct {
	Distinct bool
	Items    []selectItem
	From     []tableRef
	Where    expr
	GroupBy  []expr
	Having   expr
	OrderBy  []orderItem
	Limit    expr // nil = no limit
	// Union chains additional SELECTs with UNION ALL semantics.
	Union *selectStmt
}

func (*createTableStmt) isStmt() {}
func (*createIndexStmt) isStmt() {}
func (*dropTableStmt) isStmt()   {}
func (*deleteStmt) isStmt()      {}
func (*insertStmt) isStmt()      {}
func (*selectStmt) isStmt()      {}

// selectItem is one projection in a SELECT list. Star items select every
// column of one table (T.*) or of the whole row (*).
type selectItem struct {
	Expr  expr
	Alias string
	Star  bool
	// StarTable qualifies a star item ("T.*"); empty for a bare "*".
	StarTable string
}

// tableRef is one entry in the FROM clause: either a named base table or a
// derived table (subquery), optionally with an INNER JOIN ... ON condition
// that attaches it to the refs to its left.
type tableRef struct {
	Name  string
	Sub   *selectStmt
	Alias string
	// On holds the ON condition when this ref was written with JOIN syntax.
	On expr
}

type orderItem struct {
	Expr expr
	Desc bool
}

// expr is any scalar or aggregate expression.
type expr interface{ isExpr() }

type literal struct{ Val Value }

// colRef references a column, optionally qualified with a table alias.
type colRef struct {
	Table string // lower-cased; empty if unqualified
	Name  string // lower-cased
}

type unaryExpr struct {
	Op string // "-" or "NOT"
	X  expr
}

type binaryExpr struct {
	Op   string // + - * / % = <> < <= > >= AND OR
	L, R expr
}

// funcCall is a scalar function, aggregate, or UDF call.
type funcCall struct {
	Name     string // upper-cased
	Args     []expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

// inExpr is "x IN (subquery)" or "x IN (e1, e2, ...)", with optional NOT.
type inExpr struct {
	X    expr
	Sub  *selectStmt
	List []expr
	Not  bool
}

// isNullExpr is "x IS [NOT] NULL".
type isNullExpr struct {
	X   expr
	Not bool
}

// caseExpr is a searched CASE: CASE WHEN c THEN v ... [ELSE e] END.
type caseExpr struct {
	Whens []whenClause
	Else  expr
}

type whenClause struct {
	Cond expr
	Then expr
}

func (*literal) isExpr()    {}
func (*colRef) isExpr()     {}
func (*unaryExpr) isExpr()  {}
func (*binaryExpr) isExpr() {}
func (*funcCall) isExpr()   {}
func (*inExpr) isExpr()     {}
func (*isNullExpr) isExpr() {}
func (*caseExpr) isExpr()   {}
