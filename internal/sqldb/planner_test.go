package sqldb

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// TestExpressionEquiJoin checks hash joins on computed keys — the feature
// the Appendix A.2 word tokenizer depends on.
func TestExpressionEquiJoin(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (y INT)")
	mustExec(t, db, "INSERT INTO a VALUES (1), (2), (3)")
	mustExec(t, db, "INSERT INTO b VALUES (2), (4), (6), (7)")
	rows := mustQuery(t, db, "SELECT a.x, b.y FROM a, b WHERE b.y = a.x * 2 ORDER BY a.x")
	if len(rows.Data) != 3 {
		t.Fatalf("expression join: %v", rows.Data)
	}
	for _, r := range rows.Data {
		if r[1].AsInt() != 2*r[0].AsInt() {
			t.Fatalf("join condition violated: %v", r)
		}
	}
}

// TestWordTokenizerSQLPlan runs the full Appendix A.2 statement shape on a
// multi-word relation and checks the planner handles the three-way join
// with LOCATE-computed keys.
func TestWordTokenizerSQLPlan(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE base_table (tid INT, string VARCHAR(64))")
	mustExec(t, db, "INSERT INTO base_table VALUES (1, 'a bb ccc dddd'), (2, 'solo')")
	mustExec(t, db, "CREATE TABLE integers (i INT)")
	for i := 1; i <= 20; i++ {
		mustExec(t, db, "INSERT INTO integers VALUES (?)", Int(int64(i)))
	}
	rows := mustQuery(t, db, `
		SELECT B.tid, SUBSTRING(B.string, N1.i + 1, N2.i - N1.i - 1) AS w
		FROM base_table B, integers N1, integers N2
		WHERE N1.i = LOCATE(' ', B.string, N1.i)
		  AND N2.i = LOCATE(' ', B.string, N1.i + 1)
		ORDER BY w`)
	var got []string
	for _, r := range rows.Data {
		got = append(got, r[1].AsString())
	}
	if !reflect.DeepEqual(got, []string{"bb", "ccc"}) {
		t.Fatalf("inner words: %v", got)
	}
}

// TestIndexJoinAndHashJoinAgree verifies the two join strategies produce
// identical results on random data.
func TestIndexJoinAndHashJoinAgree(t *testing.T) {
	build := func(indexed bool) *Rows {
		db := New()
		mustExec(t, db, "CREATE TABLE big (k INT, v INT)")
		mustExec(t, db, "CREATE TABLE small (k INT)")
		for i := 0; i < 200; i++ {
			mustExec(t, db, "INSERT INTO big VALUES (?, ?)", Int(int64(i%17)), Int(int64(i)))
		}
		for i := 0; i < 5; i++ {
			mustExec(t, db, "INSERT INTO small VALUES (?)", Int(int64(i*3)))
		}
		if indexed {
			mustExec(t, db, "CREATE INDEX big_k ON big (k)")
		}
		return mustQuery(t, db, `
			SELECT B.k, B.v FROM small S, big B WHERE S.k = B.k ORDER BY B.k, B.v`)
	}
	a, b := build(true), build(false)
	if !reflect.DeepEqual(a.Data, b.Data) {
		t.Fatalf("index join and hash join disagree:\n%v\n%v", a.Data, b.Data)
	}
}

// TestLargeIntJoinKeysNoCollision exercises the >2^53 join-key encoding the
// min-hash tables rely on.
func TestLargeIntJoinKeysNoCollision(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (v BIGINT)")
	mustExec(t, db, "CREATE TABLE b (v BIGINT)")
	// Two values that collide when squeezed through float64.
	v1 := int64(1) << 60
	v2 := v1 + 1
	mustExec(t, db, "INSERT INTO a VALUES (?)", Int(v1))
	mustExec(t, db, "INSERT INTO b VALUES (?), (?)", Int(v1), Int(v2))
	rows := mustQuery(t, db, "SELECT b.v FROM a, b WHERE a.v = b.v")
	if len(rows.Data) != 1 || rows.Data[0][0].AsInt() != v1 {
		t.Fatalf("large int join: %v", rows.Data)
	}
	// Same via an index.
	mustExec(t, db, "CREATE INDEX b_v ON b (v)")
	rows = mustQuery(t, db, "SELECT b.v FROM a, b WHERE a.v = b.v")
	if len(rows.Data) != 1 {
		t.Fatalf("large int index join: %v", rows.Data)
	}
}

// TestGroupByDistinctLargeInts checks COUNT(DISTINCT) over values beyond
// 2^53.
func TestGroupByDistinctLargeInts(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	v := int64(1) << 60
	mustExec(t, db, "INSERT INTO t VALUES (?), (?), (?)", Int(v), Int(v+1), Int(v))
	rows := mustQuery(t, db, "SELECT COUNT(DISTINCT v) FROM t")
	if rows.Data[0][0].AsInt() != 2 {
		t.Fatalf("distinct large ints: %v", rows.Data)
	}
}

func TestHashKeyConsistentWithCompare(t *testing.T) {
	// Equal values (per Compare) must have equal hash keys; distinct
	// numerics must not collide.
	f := func(i int64, g float64) bool {
		iv, fv := Int(i), Float(g)
		cmp, ok := Compare(iv, fv)
		if !ok {
			return true
		}
		keysEqual := iv.hashKey() == fv.hashKey()
		if cmp == 0 && !keysEqual {
			return false
		}
		if cmp != 0 && keysEqual {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 5000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHashKeyIntFloatBoundary(t *testing.T) {
	cases := []struct {
		a, b  Value
		equal bool
	}{
		{Int(1), Float(1.0), true},
		{Int(0), Float(0), true},
		{Int(-7), Float(-7), true},
		{Int(1 << 60), Int(1<<60 + 1), false},
		{Int(1 << 60), Float(float64(int64(1) << 60)), true},
		{String("x"), String("x"), true},
		{String("x"), String("y"), false},
		{Null(), Null(), true},
	}
	for _, c := range cases {
		if got := c.a.hashKey() == c.b.hashKey(); got != c.equal {
			t.Errorf("hashKey(%v) == hashKey(%v): got %v, want %v", c.a, c.b, got, c.equal)
		}
	}
}

func TestAppendKeyInjective(t *testing.T) {
	vals := []Value{
		Null(), Int(0), Int(1), Int(-1), Int(1 << 60), Int(1<<60 + 1),
		Float(0.5), Float(1.5), Float(-2.25), String(""), String("a"),
		String("ab"), String("b"), Int(42), Float(42),
	}
	enc := map[string]Value{}
	for _, v := range vals {
		k := string(appendKey(nil, v))
		if prev, ok := enc[k]; ok {
			// The only allowed coincidence is numeric equality.
			if cmp, okc := Compare(prev, v); !okc || cmp != 0 {
				t.Errorf("appendKey collision between %v and %v", prev, v)
			}
			continue
		}
		enc[k] = v
	}
}

func TestFilterPushdownBeforeJoin(t *testing.T) {
	// A single-relation filter combined with a join must not change results
	// relative to filtering after a cross product.
	db := New()
	mustExec(t, db, "CREATE TABLE l (x INT)")
	mustExec(t, db, "CREATE TABLE r (x INT, tag VARCHAR(4))")
	mustExec(t, db, "INSERT INTO l VALUES (1), (2), (3), (4)")
	mustExec(t, db, "INSERT INTO r VALUES (1,'a'), (2,'b'), (3,'c'), (4,'d')")
	rows := mustQuery(t, db, `
		SELECT r.tag FROM l, r WHERE l.x = r.x AND l.x > 2 ORDER BY r.tag`)
	var got []string
	for _, row := range rows.Data {
		got = append(got, row[0].AsString())
	}
	if !reflect.DeepEqual(got, []string{"c", "d"}) {
		t.Fatalf("pushdown: %v", got)
	}
}

func TestOrderByExpression(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT name FROM people ORDER BY age * -1, name")
	if rows.Data[0][0].AsString() != "carol" {
		t.Fatalf("order by expression: %v", rows.Data)
	}
}

func TestOrderByAliasSubstitution(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, `
		SELECT age, COUNT(*) AS cnt FROM people GROUP BY age ORDER BY cnt DESC, age`)
	if rows.Data[0][0].AsInt() != 25 {
		t.Fatalf("order by alias: %v", rows.Data)
	}
}

func TestGroupByAliasSubstitution(t *testing.T) {
	// Appendix A.3 shape: GROUP BY references a select alias.
	db := New()
	mustExec(t, db, "CREATE TABLE t (s VARCHAR(8))")
	mustExec(t, db, "INSERT INTO t VALUES ('ab'), ('ab'), ('cd')")
	rows := mustQuery(t, db, `
		SELECT UPPER(s) AS u, COUNT(*) FROM t GROUP BY u ORDER BY u`)
	if len(rows.Data) != 2 || rows.Data[0][0].AsString() != "AB" || rows.Data[0][1].AsInt() != 2 {
		t.Fatalf("group by alias: %v", rows.Data)
	}
}

func TestUDFErrorPropagates(t *testing.T) {
	db := newTestDB(t)
	db.RegisterFunc("BOOM", func(args []Value) (Value, error) {
		return Null(), fmt.Errorf("boom")
	})
	if _, err := db.Query("SELECT BOOM(id) FROM people"); err == nil {
		t.Fatal("UDF error should propagate")
	}
	// Also inside WHERE during a join filter.
	if _, err := db.Query("SELECT P1.id FROM people P1, people P2 WHERE BOOM(P1.id) = P2.id"); err == nil {
		t.Fatal("UDF error in join should propagate")
	}
}

func TestArityErrors(t *testing.T) {
	db := New()
	for _, q := range []string{
		"SELECT LOG()",
		"SELECT SQRT(1, 2)",
		"SELECT SUBSTRING('a')",
		"SELECT MOD(1)",
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("%s should fail arity check", q)
		}
	}
}

func TestLimitExpression(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT id FROM people ORDER BY id LIMIT 1 + 1")
	if len(rows.Data) != 2 {
		t.Fatalf("limit expression: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT id FROM people LIMIT 0")
	if len(rows.Data) != 0 {
		t.Fatalf("limit 0: %v", rows.Data)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := New()
	rows := mustQuery(t, db, "SELECT 1 + 2 AS three, 'x'")
	if len(rows.Data) != 1 || rows.Data[0][0].AsInt() != 3 {
		t.Fatalf("select without from: %v", rows.Data)
	}
	if rows.Cols[0] != "three" {
		t.Fatalf("alias: %v", rows.Cols)
	}
}

func TestNullJoinKeysNeverMatch(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (x INT)")
	mustExec(t, db, "CREATE TABLE b (x INT)")
	mustExec(t, db, "INSERT INTO a VALUES (NULL), (1)")
	mustExec(t, db, "INSERT INTO b VALUES (NULL), (1)")
	rows := mustQuery(t, db, "SELECT a.x FROM a, b WHERE a.x = b.x")
	if len(rows.Data) != 1 || rows.Data[0][0].AsInt() != 1 {
		t.Fatalf("NULL join keys: %v", rows.Data)
	}
	// Index path.
	mustExec(t, db, "CREATE INDEX b_x ON b (x)")
	rows = mustQuery(t, db, "SELECT a.x FROM a, b WHERE a.x = b.x")
	if len(rows.Data) != 1 {
		t.Fatalf("NULL index join keys: %v", rows.Data)
	}
}

func TestSumOverflowToFloatMix(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v DOUBLE)")
	mustExec(t, db, "INSERT INTO t VALUES (0.5), (1.5)")
	rows := mustQuery(t, db, "SELECT SUM(v), AVG(v) FROM t")
	if math.Abs(rows.Data[0][0].AsFloat()-2.0) > 1e-12 || math.Abs(rows.Data[0][1].AsFloat()-1.0) > 1e-12 {
		t.Fatalf("float aggregates: %v", rows.Data)
	}
}

func TestMinMaxStrings(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (s VARCHAR(4))")
	mustExec(t, db, "INSERT INTO t VALUES ('b'), ('a'), ('c')")
	rows := mustQuery(t, db, "SELECT MIN(s), MAX(s) FROM t")
	if rows.Data[0][0].AsString() != "a" || rows.Data[0][1].AsString() != "c" {
		t.Fatalf("string min/max: %v", rows.Data)
	}
}

func TestDeleteWithInSubquery(t *testing.T) {
	// The pruning SQL deletes by IN (subquery).
	db := New()
	mustExec(t, db, "CREATE TABLE toks (token VARCHAR(4))")
	mustExec(t, db, "CREATE TABLE bad (token VARCHAR(4))")
	mustExec(t, db, "INSERT INTO toks VALUES ('a'), ('b'), ('c'), ('b')")
	mustExec(t, db, "INSERT INTO bad VALUES ('b')")
	n := mustExec(t, db, "DELETE FROM toks WHERE token IN (SELECT token FROM bad)")
	if n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM toks")
	if rows.Data[0][0].AsInt() != 2 {
		t.Fatalf("remaining: %v", rows.Data)
	}
}

func TestCrossJoinOfThreeSmallTables(t *testing.T) {
	db := New()
	for _, name := range []string{"a", "b", "c"} {
		mustExec(t, db, fmt.Sprintf("CREATE TABLE %s (v INT)", name))
		mustExec(t, db, fmt.Sprintf("INSERT INTO %s VALUES (1), (2)", name))
	}
	rows := mustQuery(t, db, "SELECT a.v, b.v, c.v FROM a, b, c")
	if len(rows.Data) != 8 {
		t.Fatalf("3-way cross: %d rows", len(rows.Data))
	}
}

func TestGreatestLeastWithStrings(t *testing.T) {
	db := New()
	rows := mustQuery(t, db, "SELECT GREATEST('a', 'c', 'b'), LEAST(3, 1.5)")
	if rows.Data[0][0].AsString() != "c" || rows.Data[0][1].AsFloat() != 1.5 {
		t.Fatalf("greatest/least: %v", rows.Data)
	}
}

func TestLikeOperator(t *testing.T) {
	db := newTestDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"name LIKE 'a%'", 1},      // alice
		{"name LIKE '%o%'", 2},     // bob, carol
		{"name LIKE '_ob'", 1},     // bob
		{"name LIKE 'ALICE'", 1},   // case-insensitive
		{"name NOT LIKE '%a%'", 1}, // bob
		{"name LIKE '%'", 4},       // everything
		{"name LIKE ''", 0},        // nothing matches empty pattern
	}
	for _, c := range cases {
		rows := mustQuery(t, db, "SELECT id FROM people WHERE "+c.where)
		if len(rows.Data) != c.want {
			t.Errorf("WHERE %s: got %d rows, want %d", c.where, len(rows.Data), c.want)
		}
	}
}

func TestBetweenOperator(t *testing.T) {
	db := newTestDB(t)
	rows := mustQuery(t, db, "SELECT id FROM people WHERE age BETWEEN 25 AND 30 ORDER BY id")
	if len(rows.Data) != 3 {
		t.Fatalf("BETWEEN: %v", rows.Data)
	}
	rows = mustQuery(t, db, "SELECT id FROM people WHERE age NOT BETWEEN 25 AND 30")
	if len(rows.Data) != 1 || rows.Data[0][0].AsInt() != 3 {
		t.Fatalf("NOT BETWEEN: %v", rows.Data)
	}
	// BETWEEN binds tighter than logical AND.
	rows = mustQuery(t, db, "SELECT id FROM people WHERE age BETWEEN 25 AND 30 AND score > 2")
	if len(rows.Data) != 2 {
		t.Fatalf("BETWEEN + AND: %v", rows.Data)
	}
}

func TestLikeMatchUnit(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "h%o", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "%%c", true},
		{"abc", "a%b%c%", true},
		{"mississippi", "%iss%pi", true}, // the final "pi" satisfies the suffix
		{"mississippi", "%iss%pix", false},
		{"mississippi", "%iss%ppi", true},
	}
	for _, c := range cases {
		if got := likeMatch([]rune(c.s), []rune(c.pat)); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestModAndNegativeRounding(t *testing.T) {
	db := New()
	rows := mustQuery(t, db, "SELECT MOD(-7, 3), FLOOR(-1.5), CEIL(-1.5), ABS(-2.5)")
	if rows.Data[0][0].AsInt() != -1 { // Go/MySQL: sign of dividend
		t.Fatalf("mod: %v", rows.Data[0][0])
	}
	if rows.Data[0][1].AsInt() != -2 || rows.Data[0][2].AsInt() != -1 {
		t.Fatalf("floor/ceil: %v", rows.Data)
	}
	if rows.Data[0][3].AsFloat() != 2.5 {
		t.Fatalf("abs: %v", rows.Data)
	}
}
