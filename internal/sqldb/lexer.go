package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token categories.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // operators and punctuation: ( ) , + - * / % = < > <= >= <> != . ?
	tokParam // ? placeholder
)

type token struct {
	kind tokKind
	text string // upper-cased for identifiers? no: original text; matching is case-insensitive
	pos  int
}

// lexer tokenizes a SQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits src into tokens. It understands single-quoted strings with ”
// escaping, line comments (-- ...), and multi-character operators.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c == '`' || c == '"':
			// Quoted identifier.
			q := c
			l.pos++
			j := strings.IndexByte(l.src[l.pos:], q)
			if j < 0 {
				return nil, fmt.Errorf("sqldb: unterminated quoted identifier at offset %d", start)
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[l.pos : l.pos+j], pos: start})
			l.pos += j + 1
		case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(c):
			l.toks = append(l.toks, token{kind: tokIdent, text: l.lexIdent(), pos: start})
		case c == '?':
			l.pos++
			l.toks = append(l.toks, token{kind: tokParam, text: "?", pos: start})
		default:
			op, err := l.lexOp()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return sb.String(), nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			// Basic backslash escapes, MySQL style.
			l.pos++
			e := l.src[l.pos]
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(e)
			}
			l.pos++
			continue
		}
		sb.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sqldb: unterminated string literal at offset %d", start)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			// Exponent, possibly signed.
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return l.src[start:l.pos]
		}
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexOp() (string, error) {
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		return two, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '+', '-', '*', '/', '%', '=', '<', '>', '.', ';':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sqldb: unexpected character %q at offset %d", rune(c), l.pos)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}
