// Package sqldb is a small in-memory SQL engine built for the benchmark: it
// executes the declarative realizations of the paper's similarity predicates
// (the SQL of Appendix A/B) against in-memory tables, playing the role MySQL
// 5.0 plays in the original study.
//
// The engine supports the SQL subset the paper's statements need:
//
//   - CREATE TABLE / DROP TABLE / CREATE INDEX / DELETE / INSERT (VALUES and
//     INSERT ... SELECT)
//   - SELECT with multi-table FROM (comma joins and INNER JOIN ... ON),
//     derived tables (subqueries in FROM), WHERE, GROUP BY, HAVING,
//     ORDER BY, LIMIT, DISTINCT and UNION ALL
//   - aggregates COUNT(*) / COUNT / COUNT(DISTINCT) / SUM / AVG / MIN / MAX
//   - the scalar functions used by Appendix A/B (LOG, EXP, POWER, SQRT,
//     SUBSTRING, CONCAT, REPLACE, UPPER, LOCATE, REVERSE, LENGTH, ...)
//   - user-defined scalar functions (the paper relies on UDFs for edit
//     similarity and Jaro–Winkler), registered with RegisterFunc
//   - uncorrelated IN / NOT IN subqueries and ? placeholders
//
// Queries are planned with a small greedy join optimizer that prefers
// index nested-loop joins into indexed base tables and hash joins otherwise,
// mirroring how MySQL executes the paper's token-join queries when the
// token columns are indexed.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime value types of the engine.
type Kind uint8

// The supported value kinds. Integer and floating point values compare and
// join with numeric promotion, as in MySQL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// String returns a string value.
func String(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns the engine's representation of a boolean: 1 or 0, as MySQL.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts a numeric value to float64. Strings are parsed as numbers
// (MySQL-style best effort, defaulting to 0); NULL converts to 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindString:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// AsInt converts a numeric value to int64, truncating floats toward zero.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindString:
		i, err := strconv.ParseInt(v.S, 10, 64)
		if err != nil {
			return int64(v.AsFloat())
		}
		return i
	default:
		return 0
	}
}

// AsString renders the value as a string, the way MySQL coerces values in
// string context.
func (v Value) AsString() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	default:
		return "NULL"
	}
}

// Truthy reports whether the value is true in a boolean context: non-zero
// and non-NULL.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.AsFloat() != 0
	default:
		return false
	}
}

// String implements fmt.Stringer for debugging output.
func (v Value) String() string {
	if v.Kind == KindString {
		return strconv.Quote(v.S)
	}
	return v.AsString()
}

// numeric reports whether the value is an INT or DOUBLE.
func (v Value) numeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Compare orders two non-NULL values. Numeric values compare numerically
// with promotion; strings compare lexicographically; a numeric value and a
// string compare numerically (MySQL coercion). The boolean result is false
// when either side is NULL (three-valued logic: the comparison is unknown).
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.Kind == KindString && b.Kind == KindString {
		switch {
		case a.S < b.S:
			return -1, true
		case a.S > b.S:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		switch {
		case a.I < b.I:
			return -1, true
		case a.I > b.I:
			return 1, true
		default:
			return 0, true
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1, true
	case af > bf:
		return 1, true
	default:
		return 0, true
	}
}

// key is the normalized hash-key representation of a value used by joins,
// GROUP BY, DISTINCT and indexes. Numeric values that float64 can represent
// exactly normalize to float64 so that INT 1 and DOUBLE 1.0 land in the same
// bucket; integers beyond 2^53 (e.g. the min-hash values the GESapx
// realization stores) keep their exact int64 representation, as do integral
// floats in that range, so no distinct keys ever collide.
type key struct {
	kind byte // 'n' null, 'f' float-normalized, 'i' exact integer, 's' string
	f    float64
	i    int64
	s    string
}

const float64ExactInt = int64(1) << 53

func (v Value) hashKey() key {
	switch v.Kind {
	case KindInt:
		if v.I >= -float64ExactInt && v.I <= float64ExactInt {
			return key{kind: 'f', f: float64(v.I)}
		}
		return key{kind: 'i', i: v.I}
	case KindFloat:
		// Floats above 2^53 are all integral; represent them exactly as
		// int64 when possible so they join with equal-valued integers.
		const maxInt64Float = float64(1) * (1 << 62) * 2 // 2^63
		if v.F > float64(float64ExactInt) && v.F < maxInt64Float {
			return key{kind: 'i', i: int64(v.F)}
		}
		if v.F < -float64(float64ExactInt) && v.F >= -maxInt64Float {
			return key{kind: 'i', i: int64(v.F)}
		}
		return key{kind: 'f', f: v.F}
	case KindString:
		return key{kind: 's', s: v.S}
	default:
		return key{kind: 'n'}
	}
}

// coerce converts v to the column kind k on insert, mirroring MySQL's
// assignment coercions. NULL stays NULL.
func coerce(v Value, k Kind) Value {
	if v.IsNull() {
		return v
	}
	switch k {
	case KindInt:
		if v.Kind == KindInt {
			return v
		}
		return Int(v.AsInt())
	case KindFloat:
		if v.Kind == KindFloat {
			return v
		}
		return Float(v.AsFloat())
	case KindString:
		if v.Kind == KindString {
			return v
		}
		return String(v.AsString())
	default:
		return v
	}
}

// arith applies a binary arithmetic operator. Division always yields DOUBLE
// (the paper's score formulas depend on fractional division, as in MySQL);
// +, -, * stay integral when both operands are integers. Any NULL operand
// yields NULL.
func arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if op == "/" {
		den := b.AsFloat()
		if den == 0 {
			return Null(), nil // MySQL: division by zero yields NULL
		}
		return Float(a.AsFloat() / den), nil
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		switch op {
		case "+":
			return Int(a.I + b.I), nil
		case "-":
			return Int(a.I - b.I), nil
		case "*":
			return Int(a.I * b.I), nil
		case "%":
			if b.I == 0 {
				return Null(), nil
			}
			return Int(a.I % b.I), nil
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case "+":
		return Float(af + bf), nil
	case "-":
		return Float(af - bf), nil
	case "*":
		return Float(af * bf), nil
	case "%":
		if bf == 0 {
			return Null(), nil
		}
		return Float(math.Mod(af, bf)), nil
	}
	return Null(), fmt.Errorf("sqldb: unknown arithmetic operator %q", op)
}
